// Package nest is the root of an open-source reimplementation of NeST,
// the Grid storage appliance of Bent et al., "Flexibility,
// Manageability, and Performance in a Grid Storage Appliance"
// (HPDC 2002).
//
// The appliance lives in internal/core; the protocol modules (Chirp,
// HTTP, FTP, GridFTP, NFS), the transfer manager with its three
// concurrency models and scheduling policies, the storage manager with
// lots and ACLs, the ClassAd matchmaking substrate, and the experiment
// harness live in the other internal packages. See DESIGN.md for the
// system inventory and EXPERIMENTS.md for the paper-versus-measured
// record. The runnable entry points are under cmd/ and examples/.
package nest
