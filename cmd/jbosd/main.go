// Command jbosd runs the paper's baseline configuration: "Just a Bunch
// Of Servers" — independent native single-protocol servers over one
// shared directory, with no common dispatcher, transfer manager or
// cross-protocol scheduling (paper §3).
//
// Usage:
//
//	jbosd -data /srv/files -http :8080 -ftp :2121 -nfs :2049 -chirp :9094
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"nest/internal/acl"
	"nest/internal/chirp"
	"nest/internal/ftp"
	"nest/internal/gsi"
	"nest/internal/httpx"
	"nest/internal/jbos"
	"nest/internal/nfs"
	"nest/internal/protocol"
	"nest/internal/sim"
	"nest/internal/storage"
)

func main() {
	var (
		dataDir   = flag.String("data", "", "data directory (empty: in-memory)")
		capacity  = flag.Int64("capacity", 1<<30, "advertised capacity in bytes")
		httpAddr  = flag.String("http", "127.0.0.1:8080", "HTTP (Apache stand-in) address; empty disables")
		ftpAddr   = flag.String("ftp", "127.0.0.1:2121", "FTP (wu-ftpd stand-in) address; empty disables")
		nfsAddr   = flag.String("nfs", "127.0.0.1:2049", "NFS (nfsd stand-in) address; empty disables")
		chirpAddr = flag.String("chirp", "127.0.0.1:9094", "Chirp server address; empty disables")
	)
	flag.Parse()

	clock := sim.NewRealClock()
	var fs storage.FS
	if *dataDir != "" {
		local, err := storage.NewLocalFS(*dataDir, *capacity)
		if err != nil {
			log.Fatalf("jbosd: %v", err)
		}
		fs = local
	} else {
		fs = storage.NewMemFS(clock, *capacity)
	}
	// Native servers have no lot manager and rely on filesystem
	// permissions; the baseline grants everything.
	table := acl.NewTable(acl.AllRights, gsi.Anonymous)
	store := storage.NewManager(fs, table, nil)

	handlers := map[string]struct {
		addr    string
		handler protocol.Handler
	}{
		"http":  {*httpAddr, httpx.NewHandler()},
		"ftp":   {*ftpAddr, ftp.NewHandler(ftp.Options{AllowAnon: true})},
		"nfs":   {*nfsAddr, nfs.NewHandler()},
		"chirp": {*chirpAddr, chirp.NewHandler(nil, true)},
	}
	var servers []*jbos.Server
	for name, h := range handlers {
		if h.addr == "" {
			continue
		}
		ln, err := net.Listen("tcp", h.addr)
		if err != nil {
			log.Fatalf("jbosd: listen %s (%s): %v", h.addr, name, err)
		}
		srv := jbos.Serve(clock, store, h.handler, ln)
		servers = append(servers, srv)
		fmt.Printf("jbos %-6s %s\n", name, srv.Addr())
	}
	if len(servers) == 0 {
		log.Fatal("jbosd: no servers enabled")
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	for _, s := range servers {
		s.Close()
	}
}
