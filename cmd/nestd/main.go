// Command nestd runs a NeST storage appliance: one server speaking
// Chirp, HTTP, FTP, GridFTP and NFS concurrently over a shared
// dispatcher, storage manager and transfer manager.
//
// Usage:
//
//	nestd -name mysite -data /srv/nest -capacity 10737418240 \
//	      -chirp :9094 -http :8080 -ftp :2121 -gridftp :2811 -nfs :2049 \
//	      -sched stride -tickets nfs=200,gridftp=100 \
//	      -collector collector.example.org:9618
//
// An empty -data serves an in-memory filesystem (testing). The CA key
// file (-ca-key) seeds the GSI trust anchor; clients authenticate with
// credentials issued by the matching CA (see nestctl -issue).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"nest/internal/acl"
	"nest/internal/classad"
	"nest/internal/core"
	"nest/internal/gsi"
	"nest/internal/replica"
	"nest/internal/transfer"
)

func main() {
	var (
		name      = flag.String("name", "nest", "appliance name published in ClassAds")
		dataDir   = flag.String("data", "", "data directory (empty: in-memory)")
		capacity  = flag.Int64("capacity", 1<<30, "storage capacity in bytes")
		fsync     = flag.Bool("fsync", false, "fsync data files on close (durability over close latency)")
		chirpAddr = flag.String("chirp", "127.0.0.1:9094", "Chirp listen address (empty disables)")
		httpAddr  = flag.String("http", "127.0.0.1:8080", "HTTP listen address (empty disables)")
		ftpAddr   = flag.String("ftp", "127.0.0.1:2121", "FTP listen address (empty disables)")
		gftpAddr  = flag.String("gridftp", "127.0.0.1:2811", "GridFTP listen address (empty disables)")
		nfsAddr   = flag.String("nfs", "127.0.0.1:2049", "NFS listen address (empty disables)")
		schedName = flag.String("sched", "fifo", "transfer schedule: fifo, stride, cache-aware")
		tickets   = flag.String("tickets", "", "stride tickets, e.g. nfs=200,http=100")
		model     = flag.String("model", "adaptive", "concurrency model: threads, processes, events, adaptive")
		slots     = flag.Int("slots", 16, "concurrent transfer slots")
		caKey     = flag.String("ca-key", "", "file holding the CA secret key (empty: ephemeral CA)")
		caName    = flag.String("ca-name", "/O=NeST/CN=CA", "CA distinguished name")
		quotaOn   = flag.Bool("quotas", false, "enforce lots through the user-quota subsystem")
		nestLots  = flag.Bool("nest-lots", true, "NeST-managed lot accounting (false: quota-backed)")
		anonAll   = flag.Bool("open", false, "grant system:anyuser full rights at / (testing)")
		collector = flag.String("collector", "", "discovery collector address to publish into")
		interval  = flag.Duration("publish-every", 30*time.Second, "advertisement period")
		replicate = flag.Int("replicate", 0, "keep hot files on this many appliances (0 disables; needs -collector and gridftp)")
		replEvery = flag.Duration("replicate-every", 0, "replication demand-evaluation period (default 2s)")
		replWidth = flag.Int("replicate-stripes", 1, "stripe width for replication transfers (>1: MODE E)")
		slowTrace = flag.Duration("slow-trace", 0, "index root spans slower than this in the slow-trace ring (0: default 100ms)")
		maxConns  = flag.Int("max-conns", 0, "per-protocol connection quota (0: unlimited)")
		maxConnsU = flag.Int("max-conns-user", 0, "per-user connection quota (0: unlimited)")
		connIdle  = flag.Duration("conn-idle", 2*time.Minute, "reap connections idle longer than this (0: never)")
		shedQueue = flag.Int64("shed-queue", 0, "refuse new connections when transfer queue depth exceeds this (0: off)")
		shedP99   = flag.Duration("shed-p99", 0, "refuse new connections when request p99 exceeds this (0: off)")
		shedInFl  = flag.Int64("shed-inflight", 0, "refuse new connections when in-flight transfers exceed this (0: off)")
		noFront   = flag.Bool("no-conn-front", false, "disable the connection front end (goroutine per connection, no quotas)")
	)
	flag.Parse()

	cfg := core.Config{
		Name:         *name,
		DataDir:      *dataDir,
		Capacity:     *capacity,
		SyncOnClose:  *fsync,
		Scheduler:    core.SchedulerKind(*schedName),
		Model:        transfer.ModelKind(*model),
		Slots:        *slots,
		QuotaEnabled: *quotaOn,
		Protocols:    map[string]string{},
		SlowTrace:    *slowTrace,

		MaxConnsPerProto: *maxConns,
		MaxConnsPerUser:  *maxConnsU,
		ConnIdleTimeout:  *connIdle,
		ShedQueueDepth:   *shedQueue,
		ShedP99:          *shedP99,
		ShedInFlight:     *shedInFl,
		DisableConnFront: *noFront,
	}
	cfg.QuotaBackedLots = !*nestLots
	if *anonAll {
		cfg.RootRights = acl.AllRights
	}
	for proto, addr := range map[string]string{
		"chirp": *chirpAddr, "http": *httpAddr, "ftp": *ftpAddr,
		"gridftp": *gftpAddr, "nfs": *nfsAddr,
	} {
		if addr != "" {
			cfg.Protocols[proto] = addr
		}
	}
	if *tickets != "" {
		cfg.Tickets = map[string]int{}
		for _, part := range strings.Split(*tickets, ",") {
			kv := strings.SplitN(part, "=", 2)
			if len(kv) != 2 {
				log.Fatalf("nestd: malformed -tickets entry %q", part)
			}
			n, err := strconv.Atoi(kv[1])
			if err != nil {
				log.Fatalf("nestd: malformed ticket count %q", kv[1])
			}
			cfg.Tickets[strings.TrimSpace(kv[0])] = n
		}
	}
	if *caKey != "" {
		key, err := os.ReadFile(*caKey)
		if err != nil {
			log.Fatalf("nestd: reading CA key: %v", err)
		}
		cfg.CA = gsi.NewCA(*caName, key)
	}

	// The collector connection is shared by the publisher loop and the
	// replication manager; it serializes calls and redials after a
	// failure, so a collector restart costs one advertisement period
	// instead of silencing the appliance until its own restart.
	var pub *replica.RemoteCatalog
	if *collector != "" {
		pub = replica.NewRemoteCatalog(*collector)
		cfg.Publish = func(ad *classad.Ad) {
			if err := pub.Publish(ad); err != nil {
				log.Printf("nestd: publish failed: %v", err)
			}
		}
		cfg.PublishPeriod = *interval
	}

	srv, err := core.New(cfg)
	if err != nil {
		log.Fatalf("nestd: %v", err)
	}
	fmt.Printf("NeST %q serving:\n", srv.Name())
	for _, proto := range srv.Protocols() {
		fmt.Printf("  %-8s %s\n", proto, srv.Addr(proto))
	}

	var repl *replica.Manager
	if *replicate > 1 {
		if pub == nil {
			log.Fatalf("nestd: -replicate needs -collector")
		}
		if srv.Addr("gridftp") == "" {
			log.Fatalf("nestd: -replicate needs the gridftp protocol enabled")
		}
		cred := srv.CA().Issue("/O=NeST/OU=service/CN=replicator-"+srv.Name(), 24*time.Hour, true)
		repl, err = replica.NewManager(replica.Config{
			Name:        srv.Name(),
			Factor:      *replicate,
			Catalog:     pub,
			Hot:         srv.Disp.HotPaths,
			SelfGridFTP: srv.Addr("gridftp"),
			Cred:        cred,
			Interval:    *replEvery,
			StripeWidth: *replWidth,
			Logf:        log.Printf,
		})
		if err != nil {
			log.Fatalf("nestd: %v", err)
		}
		repl.SetTracer(srv.Disp.Tracer())
		repl.Register(srv.Obs())
		go repl.Run()
		fmt.Printf("  replicating hot files to %d appliances\n", *replicate)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("nestd: shutting down")
	if repl != nil {
		repl.Close()
	}
	srv.Close()
	if pub != nil {
		pub.Close()
	}
}
