// Command collectord runs the Grid discovery service NeSTs publish
// into (paper §2.1, §6): a ClassAd collector with expiry plus a
// matchmaker, the stand-in for the Condor collector/negotiator pair.
//
// Usage:
//
//	collectord -listen :9618 -ttl 5m
//
// The wire protocol is line-oriented (see internal/discovery):
// ADVERTISE/QUERY/MATCH, each followed by a length-prefixed ClassAd or
// constraint expression.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"nest/internal/discovery"
)

func main() {
	var (
		listen = flag.String("listen", "127.0.0.1:9618", "listen address")
		ttl    = flag.Duration("ttl", discovery.DefaultTTL, "advertisement freshness window")
	)
	flag.Parse()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("collectord: %v", err)
	}
	collector := discovery.NewCollector(nil, *ttl)
	srv := discovery.NewServer(collector, ln)
	fmt.Printf("collector listening on %s (ttl %v)\n", srv.Addr(), *ttl)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	srv.Close()
}
