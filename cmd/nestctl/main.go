// Command nestctl is the Chirp command-line client for a NeST
// appliance: file and directory operations, lot management, ACL
// manipulation, resource queries, and GSI credential issuing.
//
// Usage:
//
//	nestctl -server host:9094 [-cred cred.tok] <command> [args]
//
// Commands:
//
//	ls <dir>                     list a directory
//	stat <path>                  describe a file
//	get <path> [localfile]       download (default: stdout)
//	put <localfile> <path>       upload
//	rm <path> | mkdir <dir> | rmdir <dir>
//	lot-create <bytes> <seconds> reserve guaranteed space
//	lot-status <id> | lot-renew <id> <seconds> | lot-release <id>
//	acl-set <dir> <principal> <rights>   ("-" clears)
//	acl-get <dir>
//	statfs                       print the server's ClassAd
//	ping
//
//	status [statusz|metrics|healthz|conns]
//	                             fetch the appliance's observability
//	                             page over its HTTP endpoint (-http)
//
//	trace <hex id>               fetch one distributed trace's spans
//	                             from every appliance listed in -http
//	                             (comma separated), merge them, and
//	                             print the assembled span tree
//	traces [-slow]               print the appliance's recent (or slow)
//	                             trace trees
//
//	replicas <path>              ask the collector (-collector) which
//	                             appliances hold a file, ranked by
//	                             advertised health
//
//	issue -ca-key FILE -ca-name DN -subject DN -out cred.tok
//	                             mint a GSI credential (admin)
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"nest/internal/chirp"
	"nest/internal/classad"
	"nest/internal/gsi"
	"nest/internal/obs"
	"nest/internal/replica"
)

func main() {
	var (
		server     = flag.String("server", "127.0.0.1:9094", "Chirp address of the NeST")
		httpAddr   = flag.String("http", "127.0.0.1:8080", "HTTP address of the NeST (status command)")
		credF      = flag.String("cred", "", "GSI credential token file (empty: anonymous)")
		collectorF = flag.String("collector", "127.0.0.1:9618", "discovery collector address (replicas command)")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if args[0] == "issue" {
		issue(args[1:])
		return
	}
	if args[0] == "replicas" {
		if len(args) < 2 {
			log.Fatalf("nestctl: usage: replicas <path> (with -collector)")
		}
		replicas(*collectorF, args[1])
		return
	}
	if args[0] == "status" {
		page := "statusz"
		if len(args) > 1 {
			page = strings.TrimPrefix(args[1], "/")
		}
		status(*httpAddr, page)
		return
	}
	if args[0] == "trace" {
		if len(args) < 2 {
			log.Fatalf("nestctl: usage: trace <hex id> (with -http addr1,addr2,...)")
		}
		trace(*httpAddr, args[1])
		return
	}
	if args[0] == "traces" {
		page := "traces"
		if len(args) > 1 && args[1] == "-slow" {
			page = "traces/slow"
		}
		status(firstAddr(*httpAddr), page)
		return
	}

	var cred *gsi.Credential
	if *credF != "" {
		tok, err := os.ReadFile(*credF)
		if err != nil {
			log.Fatalf("nestctl: %v", err)
		}
		cred, err = gsi.ParseToken(string(tok))
		if err != nil {
			log.Fatalf("nestctl: %v", err)
		}
	}
	c, err := chirp.Dial(*server, cred)
	if err != nil {
		log.Fatalf("nestctl: %v", err)
	}
	defer c.Close()

	need := func(n int, usage string) {
		if len(args)-1 < n {
			log.Fatalf("nestctl: usage: %s", usage)
		}
	}
	switch args[0] {
	case "ping":
		if err := c.Ping(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("pong")
	case "ls":
		need(1, "ls <dir>")
		entries, err := c.List(args[1])
		if err != nil {
			log.Fatal(err)
		}
		for _, e := range entries {
			kind := "-"
			if e.IsDir {
				kind = "d"
			}
			fmt.Printf("%s %12d %s\n", kind, e.Size, e.Name)
		}
	case "stat":
		need(1, "stat <path>")
		e, err := c.Stat(args[1])
		if err != nil {
			log.Fatal(err)
		}
		kind := "file"
		if e.IsDir {
			kind = "directory"
		}
		fmt.Printf("%s %s, %d bytes\n", e.Name, kind, e.Size)
	case "get":
		need(1, "get <path> [localfile]")
		var out io.Writer = os.Stdout
		if len(args) >= 3 {
			f, err := os.Create(args[2])
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			out = f
		}
		if _, err := c.GetTo(args[1], out); err != nil {
			log.Fatal(err)
		}
	case "put":
		need(2, "put <localfile> <path>")
		f, err := os.Open(args[1])
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		info, err := f.Stat()
		if err != nil {
			log.Fatal(err)
		}
		n, err := c.Put(args[2], f, info.Size(), "")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("stored %d bytes\n", n)
	case "rm":
		need(1, "rm <path>")
		if err := c.Remove(args[1]); err != nil {
			log.Fatal(err)
		}
	case "mkdir":
		need(1, "mkdir <dir>")
		if err := c.Mkdir(args[1]); err != nil {
			log.Fatal(err)
		}
	case "rmdir":
		need(1, "rmdir <dir>")
		if err := c.Rmdir(args[1]); err != nil {
			log.Fatal(err)
		}
	case "lot-create":
		need(2, "lot-create <bytes> <seconds>")
		bytes, err1 := strconv.ParseInt(args[1], 10, 64)
		secs, err2 := strconv.ParseInt(args[2], 10, 64)
		if err1 != nil || err2 != nil {
			log.Fatal("nestctl: lot-create wants numeric bytes and seconds")
		}
		lot, err := c.LotCreate(bytes, time.Duration(secs)*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		printLot(lot)
	case "lot-status":
		need(1, "lot-status <id>")
		lot, err := c.LotStatus(args[1])
		if err != nil {
			log.Fatal(err)
		}
		printLot(lot)
	case "lot-renew":
		need(2, "lot-renew <id> <seconds>")
		secs, err := strconv.ParseInt(args[2], 10, 64)
		if err != nil {
			log.Fatal("nestctl: lot-renew wants numeric seconds")
		}
		lot, err := c.LotRenew(args[1], time.Duration(secs)*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		printLot(lot)
	case "lot-release":
		need(1, "lot-release <id>")
		if err := c.LotRelease(args[1]); err != nil {
			log.Fatal(err)
		}
	case "acl-set":
		need(3, "acl-set <dir> <principal> <rights>")
		if err := c.ACLSet(args[1], args[2], args[3]); err != nil {
			log.Fatal(err)
		}
	case "acl-get":
		need(1, "acl-get <dir>")
		lines, err := c.ACLGet(args[1])
		if err != nil {
			log.Fatal(err)
		}
		for _, l := range lines {
			fmt.Println(l)
		}
	case "statfs":
		ad, err := c.Statfs()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(ad)
	default:
		log.Fatalf("nestctl: unknown command %q", args[0])
	}
}

func printLot(lot chirp.Lot) {
	state := "active"
	if lot.BestEffort {
		state = "best-effort"
	}
	fmt.Printf("%s: %d/%d bytes used, %s, expires at +%s\n",
		lot.ID, lot.Used, lot.Capacity, state, lot.Expires)
}

// status fetches one observability page ("/statusz", "/metrics",
// "/healthz", "/conns" — the connection front end's per-protocol
// active/parked/refused/shed table) from the appliance's HTTP endpoint
// and prints the body.
func status(addr, page string) {
	body, err := fetchPage(addr, page)
	if err != nil {
		log.Fatalf("nestctl: status: %v", err)
	}
	os.Stdout.WriteString(body)
}

// fetchPage retrieves one observability page body over a hand-rolled
// HTTP/1.0 GET, matching the appliance's hand-rolled server: no
// net/http dependency on either side.
func fetchPage(addr, page string) (string, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return "", err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := fmt.Fprintf(conn, "GET /%s HTTP/1.0\r\n\r\n", page); err != nil {
		return "", err
	}
	br := bufio.NewReader(conn)
	statusLine, err := br.ReadString('\n')
	if err != nil {
		return "", err
	}
	parts := strings.Fields(statusLine)
	if len(parts) < 2 || parts[1] != "200" {
		return "", fmt.Errorf("server said %q", strings.TrimSpace(statusLine))
	}
	for { // skip headers
		line, err := br.ReadString('\n')
		if err != nil {
			return "", err
		}
		if strings.TrimRight(line, "\r\n") == "" {
			break
		}
	}
	var b strings.Builder
	if _, err := io.Copy(&b, br); err != nil {
		return "", err
	}
	return b.String(), nil
}

func firstAddr(addrs string) string {
	if i := strings.IndexByte(addrs, ','); i >= 0 {
		return addrs[:i]
	}
	return addrs
}

// trace fetches one trace's spans from every appliance in the
// comma-separated addr list, merges them, and prints the assembled
// tree. Each appliance records only the spans it executed, so the
// federated view of a cross-appliance request exists exactly here, at
// merge time.
func trace(addrs, hexID string) {
	id, err := strconv.ParseUint(hexID, 16, 64)
	if err != nil {
		log.Fatalf("nestctl: trace: bad id %q (want hex)", hexID)
	}
	var spans []obs.Span
	var reached int
	for _, addr := range strings.Split(addrs, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		body, err := fetchPage(addr, fmt.Sprintf("traces/%x", id))
		if err != nil {
			log.Printf("nestctl: trace: %s: %v", addr, err)
			continue
		}
		var part []obs.Span
		if err := json.Unmarshal([]byte(body), &part); err != nil {
			log.Printf("nestctl: trace: %s: %v", addr, err)
			continue
		}
		reached++
		spans = append(spans, part...)
	}
	if reached == 0 {
		log.Fatalf("nestctl: trace: no appliance reachable")
	}
	if len(spans) == 0 {
		fmt.Printf("trace %x: no spans found on %d appliance(s)\n", id, reached)
		os.Exit(1)
	}
	fmt.Printf("trace %x (%d spans from %d appliance(s))\n", id, len(spans), reached)
	os.Stdout.WriteString(obs.RenderTrace(spans))
}

// issue mints a GSI credential; run it wherever the CA key lives.
func issue(args []string) {
	fs := flag.NewFlagSet("issue", flag.ExitOnError)
	caKey := fs.String("ca-key", "", "file holding the CA secret key")
	caName := fs.String("ca-name", "/O=NeST/CN=CA", "CA distinguished name")
	subject := fs.String("subject", "", "credential subject, e.g. /O=Grid/CN=john")
	ttl := fs.Duration("ttl", 12*time.Hour, "credential lifetime")
	out := fs.String("out", "", "output token file (empty: stdout)")
	fs.Parse(args)
	if *caKey == "" || *subject == "" {
		log.Fatal("nestctl issue: -ca-key and -subject are required")
	}
	key, err := os.ReadFile(*caKey)
	if err != nil {
		log.Fatal(err)
	}
	ca := gsi.NewCA(*caName, key)
	tok := ca.Issue(*subject, *ttl, true).Token()
	if *out == "" {
		fmt.Println(tok)
		return
	}
	if err := os.WriteFile(*out, []byte(tok), 0o600); err != nil {
		log.Fatal(err)
	}
}

// replicas prints the fresh holders of one logical path, best replica
// first, with the health attributes the ranking used.
func replicas(collector, path string) {
	cat := replica.NewRemoteCatalog(collector)
	defer cat.Close()
	ads, err := cat.Replicas(path)
	if err != nil {
		log.Fatalf("nestctl: replicas: %v", err)
	}
	if len(ads) == 0 {
		fmt.Printf("no fresh appliance holds %s\n", path)
		os.Exit(1)
	}
	ranked := replica.Rank(ads, nil)
	fmt.Printf("%-16s %8s %10s %10s %6s  %s\n", "APPLIANCE", "SCORE", "BW(MB/s)", "P99(ms)", "QUEUE", "CHIRP")
	for _, ad := range ranked {
		bw := adReal(ad, "RecentBandwidthMBps")
		lat := adReal(ad, "P99LatencyMs")
		q := adReal(ad, "QueueDepth")
		fmt.Printf("%-16s %8.3f %10.2f %10.2f %6.0f  %s\n",
			replica.Name(ad), replica.Score(ad), bw, lat, q, replica.Addr(ad, "chirp"))
	}
}

func adReal(ad *classad.Ad, attr string) float64 {
	v := ad.EvalAttr(attr, nil)
	if r, ok := v.RealVal(); ok {
		return r
	}
	if i, ok := v.IntVal(); ok {
		return float64(i)
	}
	return 0
}
