// Command nestbench regenerates the paper's evaluation (Section 7):
// every figure plus the ablations DESIGN.md calls out. The experiments
// drive the real scheduler, transfer-manager, cache and quota code
// under the deterministic simulation substrate calibrated to the
// paper's 2002 testbed.
//
// Usage:
//
//	nestbench -experiment fig3|fig4|fig5|fig6|ablations|federation|trace|all
package main

import (
	"flag"
	"fmt"
	"log"

	"nest/internal/bench"
)

func main() {
	exp := flag.String("experiment", "all", "fig3, fig4, fig5, fig6, ablations, federation, trace, or all")
	flag.Parse()

	// The fig3 mixed-workload measurement doubles as the run's final
	// telemetry snapshot (same per-class counters /statusz exposes).
	var fig3Rows []bench.Fig3Row
	run := map[string]func(){
		"fig3": func() {
			fig3Rows = bench.RunFig3()
			fmt.Println(bench.FormatFig3(fig3Rows))
		},
		"fig4": func() { fmt.Println(bench.FormatFig4(bench.RunFig4())) },
		"fig5": func() { fmt.Println(bench.FormatFig5(bench.RunFig5())) },
		"fig6": func() {
			readOff, readOn := bench.RunFig6Reads()
			fmt.Println(bench.FormatFig6(bench.RunFig6(), readOff, readOn))
		},
		"ablations":  func() { fmt.Println(bench.FormatAblations()) },
		"federation": func() { fmt.Println(bench.FormatFederation(bench.FederationSweep())) },
		"trace": func() {
			off, on := bench.TraceOverhead()
			fmt.Println(bench.FormatTraceOverhead(off, on))
		},
	}
	if *exp == "all" {
		for _, name := range []string{"fig3", "fig4", "fig5", "fig6", "ablations", "federation", "trace"} {
			run[name]()
		}
		printTelemetry(fig3Rows)
		return
	}
	fn, ok := run[*exp]
	if !ok {
		log.Fatalf("nestbench: unknown experiment %q", *exp)
	}
	fn()
	printTelemetry(fig3Rows)
}

// printTelemetry prints the final metrics snapshot from the mixed
// NeST workload, if that experiment ran.
func printTelemetry(rows []bench.Fig3Row) {
	for _, r := range rows {
		if r.Workload == "mixed" {
			fmt.Println(bench.FormatTelemetry(r.NeST))
			return
		}
	}
}
