GO ?= go

.PHONY: all build test race bench bench-storage bench-sched bench-datapath bench-stripe bench-localfs bench-federation bench-trace bench-c100k figures examples clean status

# Observability endpoint of a running appliance (nestd -http).
NEST_HTTP ?= 127.0.0.1:8080

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One testing.B benchmark per paper figure/ablation (see bench_test.go).
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Data-plane storage benchmarks (extent allocator, two-tier locking);
# numbers recorded in docs/storage_bench.md and DESIGN.md §6.
bench-storage:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime=2s ./internal/storage/

# Scheduler admission benchmarks (incremental policies vs the retired
# snapshot baseline, plus manager-level quantum preemption); numbers
# recorded in docs/sched_bench.md and DESIGN.md §7.
bench-sched:
	$(GO) test -run '^$$' -bench 'BenchmarkSchedulerAdmit' -benchmem ./internal/sched/
	$(GO) test -run '^$$' -bench 'BenchmarkManagerQuantumPreemption' -benchmem ./internal/transfer/

# Zero-copy data path benchmarks: pooled pump vs extent handoff
# (pump-level) and end-to-end loopback GET throughput per protocol;
# numbers recorded in docs/data_path_bench.md and DESIGN.md §9.
bench-datapath:
	$(GO) test -run '^$$' -bench 'BenchmarkTransferThroughput' -benchmem -benchtime=2s ./internal/transfer/
	$(GO) test -run '^$$' -bench 'BenchmarkProtocolThroughput' -benchtime=2s ./internal/nesttest/

# Striped-transfer benchmarks: pump-level stripe-width scaling on a
# 64 MB GET, and end-to-end MODE E loopback GETs at widths 1/2/4;
# numbers recorded in docs/data_path_bench.md and DESIGN.md §12.
bench-stripe:
	$(GO) test -run '^$$' -bench 'BenchmarkStripedThroughput' -benchmem -benchtime=2s ./internal/transfer/
	$(GO) test -run '^$$' -bench 'BenchmarkProtocolThroughput/ftp-modee' -benchtime=2s ./internal/nesttest/

# Disk-backend benchmarks: extent-path LocalFS vs the seed baseline
# over the pump endpoints, plus the O(1) Free counter vs the tree
# walk; numbers recorded in docs/storage_bench.md and DESIGN.md §13.
# TMPDIR points at tmpfs so the numbers isolate the data path, not the
# disk underneath.
bench-localfs:
	TMPDIR=/dev/shm $(GO) test -run '^$$' -bench 'BenchmarkLocal' -benchmem -benchtime=2s ./internal/storage/

# Federation scaling sweep: aggregate GET throughput of 1/2/4-replica
# fleets behind health-ranked selection, plus the single-iteration
# BenchmarkFederatedGets figure; numbers recorded in
# docs/federation_bench.md and DESIGN.md §14.
bench-federation:
	$(GO) run ./cmd/nestbench -experiment federation
	$(GO) test -run '^$$' -bench 'BenchmarkFederatedGets' -benchtime=1x ./internal/bench/

# Distributed-tracing overhead check: the federation workload with
# span recording off vs on (must stay within 5%), a sample
# cross-appliance fed.get tree, and the span-record 0-alloc guard
# (DESIGN.md §15, docs/OBSERVABILITY.md).
bench-trace:
	$(GO) run ./cmd/nestbench -experiment trace
	$(GO) test -run 'TestSpanRecordZeroAlloc' -bench 'BenchmarkSpanRecord' -benchmem -benchtime=2s ./internal/obs/

# Connection front-end scale: park 100k simulated connections and
# report goroutines + bytes per connection, run the live epoll variant
# (sized to ulimit -n), and pin the overload shedder's saturation
# contract; numbers recorded in docs/c100k_bench.md and DESIGN.md §16.
bench-c100k:
	$(GO) test -run '^$$' -bench 'BenchmarkConnScale100kSim' -benchtime=3x ./internal/bench/
	$(GO) test -run 'TestConnScaleLiveIdle|TestSaturationShed' -v -count=1 ./internal/bench/

# Regenerate every figure of the paper's evaluation as tables.
figures:
	$(GO) run ./cmd/nestbench -experiment all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/multiprotocol
	$(GO) run ./examples/gridscenario
	$(GO) run ./examples/qos

# Print a running appliance's /statusz (metrics, latency quantiles,
# recent and slow traces). Point NEST_HTTP at the nestd -http address.
status:
	$(GO) run ./cmd/nestctl -http $(NEST_HTTP) status

clean:
	$(GO) clean ./...
