// Benchmarks regenerating the paper's evaluation (Section 7): one
// benchmark per figure plus the ablations DESIGN.md calls out. Each
// benchmark runs the corresponding experiment end to end in the
// deterministic simulation substrate and reports the figure's headline
// numbers as custom metrics. Run:
//
//	go test -bench=. -benchtime=1x
package nest_test

import (
	"testing"

	"nest/internal/bench"
	"nest/internal/transfer"
)

// BenchmarkFig3SingleProtocols reports NeST's per-protocol bandwidth
// against the native-server baselines (Figure 3, first bar pairs).
func BenchmarkFig3SingleProtocols(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, spec := range bench.AllSpecs() {
			nest := bench.RunSingleProtocol(spec, false)
			native := bench.RunSingleProtocol(spec, true)
			b.ReportMetric(nest.Total, spec.Name+"-nest-MB/s")
			b.ReportMetric(native.Total, spec.Name+"-native-MB/s")
		}
	}
}

// BenchmarkFig3Mixed reports the mixed four-protocol workload under
// NeST's FIFO transfer manager versus independent JBOS servers
// (Figure 3, last bars): totals are similar but FIFO NeST disfavors
// block-based NFS.
func BenchmarkFig3Mixed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		nest := bench.RunMixed(false)
		jbos := bench.RunMixed(true)
		b.ReportMetric(nest.Total, "nest-total-MB/s")
		b.ReportMetric(jbos.Total, "jbos-total-MB/s")
		b.ReportMetric(nest.PerClass["nfs"], "nest-nfs-MB/s")
		b.ReportMetric(jbos.PerClass["nfs"], "jbos-nfs-MB/s")
	}
}

// BenchmarkFig4Stride runs every proportional-share configuration of
// Figure 4 and reports Jain's fairness for each.
func BenchmarkFig4Stride(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, cfg := range bench.Fig4Configs() {
			row := bench.RunFig4Config(cfg)
			if cfg.Tickets == nil {
				b.ReportMetric(row.Result.Total, "fifo-total-MB/s")
				continue
			}
			b.ReportMetric(row.Fairness, "fairness-"+cfg.Label)
		}
	}
}

// BenchmarkFig5Solaris reports average small-request latency per
// concurrency model on the Solaris profile (Figure 5, left).
func BenchmarkFig5Solaris(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, m := range []transfer.ModelKind{transfer.Events, transfer.Threads, transfer.Adaptive} {
			b.ReportMetric(bench.RunFig5SolarisModel(m), string(m)+"-ms")
		}
	}
}

// BenchmarkFig5Linux reports large-file bandwidth per concurrency
// model on the Linux profile (Figure 5, right).
func BenchmarkFig5Linux(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, m := range []transfer.ModelKind{transfer.Events, transfer.Threads, transfer.Adaptive} {
			b.ReportMetric(bench.RunFig5LinuxModel(m), string(m)+"-MB/s")
		}
	}
}

// BenchmarkFig6LotOverhead reports quota-on/off write bandwidth at the
// sweep's endpoints (Figure 6).
func BenchmarkFig6LotOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		small := bench.RunFig6SinglePoint(20)
		large := bench.RunFig6SinglePoint(200)
		b.ReportMetric(small.QuotaOffMBps, "20MB-off-MB/s")
		b.ReportMetric(small.QuotaOnMBps, "20MB-on-MB/s")
		b.ReportMetric(large.QuotaOffMBps, "200MB-off-MB/s")
		b.ReportMetric(large.QuotaOnMBps, "200MB-on-MB/s")
	}
}

// BenchmarkAblationStrideRequestBased contrasts byte-based strides
// with the request-based ablation (DESIGN.md ablation 1).
func BenchmarkAblationStrideRequestBased(b *testing.B) {
	for i := 0; i < b.N; i++ {
		byteBased, requestBased := bench.AblationStrideCharging()
		b.ReportMetric(byteBased.Result.PerClass["nfs"], "bytes-nfs-MB/s")
		b.ReportMetric(requestBased.Result.PerClass["nfs"], "requests-nfs-MB/s")
	}
}

// BenchmarkAblationNonWorkConserving contrasts the work-conserving
// stride with the idle-wait variant on the failing 1:1:1:4 allocation
// (DESIGN.md ablation 2).
func BenchmarkAblationNonWorkConserving(b *testing.B) {
	for i := 0; i < b.N; i++ {
		wc, nwc := bench.AblationNonWorkConserving()
		b.ReportMetric(wc.Fairness, "work-conserving-fairness")
		b.ReportMetric(nwc.Fairness, "idle-wait-fairness")
		b.ReportMetric(wc.Result.Total, "work-conserving-MB/s")
		b.ReportMetric(nwc.Result.Total, "idle-wait-MB/s")
	}
}

// BenchmarkAblationProbePeriod sweeps the adaptation probe period
// (DESIGN.md ablation 3).
func BenchmarkAblationProbePeriod(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, p := range bench.AblationProbePeriod() {
			b.ReportMetric(p.LatencyMs, "probe-"+p.Period.String()+"-ms")
		}
	}
}

// BenchmarkAblationLotEnforcement contrasts quota-backed and
// NeST-managed lot enforcement (DESIGN.md ablation 4).
func BenchmarkAblationLotEnforcement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, r := range bench.AblationLotEnforcement() {
			b.ReportMetric(float64(r.Lot1UsedMB), r.Mode+"-lot1-usedMB")
			b.ReportMetric(r.WriteMBps, r.Mode+"-write-MB/s")
		}
	}
}

// BenchmarkCacheAware contrasts FIFO with cache-aware scheduling on a
// half-hot workload (DESIGN.md ablation 5).
func BenchmarkCacheAware(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, r := range bench.AblationCacheAware() {
			b.ReportMetric(r.AvgLatencyMs, r.Policy+"-latency-ms")
			b.ReportMetric(r.TotalMBps, r.Policy+"-MB/s")
		}
	}
}

// BenchmarkProtocolOverhead measures the virtual-protocol-layer parity
// claim directly: NeST-over-shared-framework versus a dedicated native
// server for the appliance's native protocol.
func BenchmarkProtocolOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		nest := bench.RunSingleProtocol(bench.SpecChirp, false)
		native := bench.RunSingleProtocol(bench.SpecChirp, true)
		b.ReportMetric(nest.Total/native.Total, "nest-to-native-ratio")
	}
}
