module nest

go 1.22
