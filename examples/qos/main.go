// QoS: proportional-share scheduling across protocols, the capability
// JBOS cannot offer (paper §4.2, Figure 4). The example runs the mixed
// Figure 3 workload in simulation twice — FIFO, then a 1:2:1:1 stride
// allocation favoring GridFTP — and prints the delivered bandwidths
// and Jain's fairness.
package main

import (
	"fmt"

	"nest/internal/bench"
	"nest/internal/sched"
)

func main() {
	fmt.Println("Mixed workload: 4 clients each of Chirp, GridFTP, HTTP, NFS")
	fmt.Println()

	fifo := bench.RunFig4Config(bench.Fig4Config{Label: "FIFO"})
	show("FIFO (no allocation control)", fifo, nil)

	tickets := map[string]int{"chirp": 100, "gridftp": 200, "http": 100, "nfs": 100}
	stride := bench.RunFig4Config(bench.Fig4Config{Label: "1:2:1:1", Tickets: tickets})
	show("Stride 1:2:1:1 (GridFTP favored)", stride, tickets)

	nfsHeavy := map[string]int{"chirp": 100, "gridftp": 100, "http": 100, "nfs": 400}
	failed := bench.RunFig4Config(bench.Fig4Config{Label: "1:1:1:4", Tickets: nfsHeavy})
	show("Stride 1:1:1:4 (NFS cannot consume its share)", failed, nfsHeavy)

	fixed := bench.RunFig4Config(bench.Fig4Config{
		Label: "1:1:1:4+wait", Tickets: nfsHeavy, NonWorkConserving: true})
	show("Same, non-work-conserving idle-wait variant", fixed, nfsHeavy)
}

func show(title string, row bench.Fig4Row, tickets map[string]int) {
	fmt.Println(title)
	for _, class := range sched.SortedClasses(row.Result.PerClass) {
		line := fmt.Sprintf("  %-8s %6.1f MB/s", class, row.Result.PerClass[class])
		if want, ok := row.Desired[class]; ok {
			line += fmt.Sprintf("   (desired %5.1f)", want)
		}
		fmt.Println(line)
	}
	if tickets != nil {
		fmt.Printf("  total %.1f MB/s, Jain fairness %.3f\n", row.Result.Total, row.Fairness)
	} else {
		fmt.Printf("  total %.1f MB/s\n", row.Result.Total)
	}
	fmt.Println()
}
