// Gridscenario executes the paper's Section 6 walkthrough (Figure 2)
// end to end with live servers: a user's input data lives on a NeST in
// Madison; a global execution manager discovers the Argonne NeST
// through the matchmaker, reserves a lot over Chirp, stages input with
// a GridFTP third-party transfer, runs jobs that read and write over
// NFS, stages the results home, and terminates the reservation.
package main

import (
	"bytes"
	"fmt"
	"log"
	"strings"
	"time"

	"nest/internal/chirp"
	"nest/internal/core"
	"nest/internal/discovery"
	"nest/internal/gridmgr"
	"nest/internal/gsi"
)

func main() {
	ca := gsi.NewCA("/O=Grid/CN=CA", []byte("scenario-secret"))
	cred := ca.Issue("/O=Grid/OU=wisc.edu/CN=john", time.Hour, true)

	site := func(name string, capacity int64) (*core.Server, gridmgr.Site) {
		s, err := core.New(core.Config{Name: name, CA: ca, Capacity: capacity})
		if err != nil {
			log.Fatal(err)
		}
		// Site admission policy (paper §5): access comes with a default
		// lot, which the anonymous NFS jobs write into.
		if _, err := s.GrantDefaultLot(gsi.Anonymous, 64<<20, time.Hour); err != nil {
			log.Fatal(err)
		}
		return s, gridmgr.Site{
			Name: name, Chirp: s.Addr("chirp"),
			GridFTP: s.Addr("gridftp"), NFS: s.Addr("nfs"),
		}
	}
	madisonSrv, madison := site("madison", 1<<30)
	argonneSrv, argonne := site("argonne", 2<<30)
	defer madisonSrv.Close()
	defer argonneSrv.Close()

	// (0) The home site holds the user's input data permanently.
	if _, err := madisonSrv.GrantDefaultLot("john", 256<<20, time.Hour); err != nil {
		log.Fatal(err)
	}
	cc, err := chirp.Dial(madison.Chirp, cred)
	if err != nil {
		log.Fatal(err)
	}
	defer cc.Close()
	input := bytes.Repeat([]byte("ATCGGCTA GENE SAMPLE ROW\n"), 40000) // ~1 MB
	if err := cc.PutBytes("/input.dat", input, ""); err != nil {
		log.Fatal(err)
	}
	if err := cc.Mkdir("/results"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("input staged at madison: %d bytes\n", len(input))

	// (1) Sites publish resource/data availability into the discovery
	// system; the execution manager matches the request against it.
	collector := discovery.NewCollector(nil, 0)
	for _, srv := range []*core.Server{madisonSrv, argonneSrv} {
		if err := collector.Advertise(srv.Advertisement()); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("discovery system has %d advertisements\n", collector.Len())

	mgr := gridmgr.NewManager(collector, []gridmgr.Site{madison, argonne})
	report, err := mgr.Execute(&gridmgr.Plan{
		Cred:       cred,
		Home:       madison,
		InputFiles: []string{"/input.dat"},
		Jobs: []gridmgr.Job{
			{
				Name: "linecount", Input: "/input.dat", Output: "/lines.out",
				Compute: func(in []byte) ([]byte, error) {
					return []byte(fmt.Sprintf("%d lines\n", bytes.Count(in, []byte("\n")))), nil
				},
			},
			{
				Name: "grep-gene", Input: "/input.dat", Output: "/genes.out",
				Compute: func(in []byte) ([]byte, error) {
					n := strings.Count(string(in), "GENE")
					return []byte(fmt.Sprintf("%d GENE markers\n", n)), nil
				},
			},
		},
		OutputDir:   "/results",
		NeedBytes:   128 << 20,
		LotDuration: time.Hour,
	})
	if err != nil {
		log.Fatalf("scenario failed: %v", err)
	}

	fmt.Printf("execution site: %s (lot %s)\n", report.Site, report.LotID)
	fmt.Printf("staged in %d bytes, staged out %d bytes\n", report.StagedIn, report.StagedOut)
	for name, r := range report.JobResults {
		status := "ok"
		if r.Err != nil {
			status = r.Err.Error()
		} else if r.Skipped {
			status = "skipped"
		}
		fmt.Printf("  %-22s %s\n", name, status)
	}

	// (6) Results are home; the remote reservation is gone.
	for _, out := range []string{"/results/lines.out", "/results/genes.out"} {
		data, err := cc.Get(out)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s -> %s", out, data)
	}
}
