// Multiprotocol: the appliance's signature trick — one file written
// over Chirp and immediately readable over HTTP, FTP, GridFTP (with
// parallel streams) and NFS, all from the same server, with one ACL
// change locking every protocol out at once.
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"

	"nest/internal/chirp"
	"nest/internal/core"
	"nest/internal/ftp"
	"nest/internal/gridftp"
	"nest/internal/gsi"
	"nest/internal/nfs"
)

func main() {
	ca := gsi.NewCA("/O=Example/CN=CA", []byte("multi-secret"))
	cred := ca.Issue("/O=Example/CN=alice", time.Hour, true)
	srv, err := core.New(core.Config{Name: "multiproto", CA: ca})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	// Stage a file over Chirp.
	cc, err := chirp.Dial(srv.Addr("chirp"), cred)
	if err != nil {
		log.Fatal(err)
	}
	defer cc.Close()
	if _, err := cc.LotCreate(64<<20, time.Hour); err != nil {
		log.Fatal(err)
	}
	payload := bytes.Repeat([]byte("multi-protocol-data."), 50000) // ~1 MB
	if err := cc.PutBytes("/dataset.bin", payload, ""); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("staged %d bytes over chirp\n", len(payload))

	// HTTP.
	resp, err := http.Get("http://" + srv.Addr("http") + "/dataset.bin")
	if err != nil {
		log.Fatal(err)
	}
	viaHTTP, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("http:    %d bytes, match=%v\n", len(viaHTTP), bytes.Equal(viaHTTP, payload))

	// FTP (anonymous).
	fc, err := ftp.Dial(srv.Addr("ftp"))
	if err != nil {
		log.Fatal(err)
	}
	defer fc.Quit()
	if err := fc.LoginAnonymous(); err != nil {
		log.Fatal(err)
	}
	var fbuf bytes.Buffer
	if _, err := fc.Retr("/dataset.bin", &fbuf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ftp:     %d bytes, match=%v\n", fbuf.Len(), bytes.Equal(fbuf.Bytes(), payload))

	// GridFTP in extended-block mode with four parallel streams.
	gc, err := gridftp.Dial(srv.Addr("gridftp"), cred)
	if err != nil {
		log.Fatal(err)
	}
	defer gc.Quit()
	gc.SetMode('E')
	gc.SetParallelism(4)
	var gbuf bytes.Buffer
	if _, err := gc.Retr("/dataset.bin", &gbuf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gridftp: %d bytes (4 parallel streams), match=%v\n",
		gbuf.Len(), bytes.Equal(gbuf.Bytes(), payload))

	// NFS, block by block.
	nc, err := nfs.Dial(srv.Addr("nfs"))
	if err != nil {
		log.Fatal(err)
	}
	defer nc.Close()
	root, err := nc.Mount("/")
	if err != nil {
		log.Fatal(err)
	}
	fh, _, err := nc.Lookup(root, "dataset.bin")
	if err != nil {
		log.Fatal(err)
	}
	viaNFS, err := nc.ReadAll(fh)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nfs:     %d bytes (8 KB blocks), match=%v\n",
		len(viaNFS), bytes.Equal(viaNFS, payload))

	// One ACL change gates every protocol at once.
	if err := cc.ACLSet("/", "alice", "rlidwa"); err != nil {
		log.Fatal(err)
	}
	if err := cc.ACLSet("/", "system:anyuser", "-"); err != nil {
		log.Fatal(err)
	}
	resp, err = http.Get("http://" + srv.Addr("http") + "/dataset.bin")
	if err != nil {
		log.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	fmt.Printf("after ACL change: anonymous HTTP gets %d (Forbidden), owner still reads over chirp: ", resp.StatusCode)
	again, err := cc.Get("/dataset.bin")
	fmt.Printf("%v (%d bytes)\n", err == nil, len(again))
}
