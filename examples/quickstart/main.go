// Quickstart: start an in-memory NeST, authenticate with GSI, reserve
// a lot, store and fetch a file over Chirp, and inspect the server's
// resource advertisement.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"nest/internal/chirp"
	"nest/internal/core"
	"nest/internal/gsi"
)

func main() {
	// A CA is the trust anchor; the appliance verifies credentials it
	// issued. Production deployments load the key from disk.
	ca := gsi.NewCA("/O=Example/CN=CA", []byte("quickstart-secret"))
	cred := ca.Issue("/O=Example/CN=alice", time.Hour, true)

	srv, err := core.New(core.Config{Name: "quickstart", CA: ca})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Println("NeST up; chirp at", srv.Addr("chirp"))

	c, err := chirp.Dial(srv.Addr("chirp"), cred)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	fmt.Println("authenticated as", c.User())

	// Writes need guaranteed space: reserve a 64 MB lot for an hour.
	lot, err := c.LotCreate(64<<20, time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lot %s: %d bytes guaranteed\n", lot.ID, lot.Capacity)

	payload := bytes.Repeat([]byte("hello, grid storage! "), 1000)
	if err := c.Mkdir("/demo"); err != nil {
		log.Fatal(err)
	}
	if _, err := c.Put("/demo/hello.txt", bytes.NewReader(payload), int64(len(payload)), lot.ID); err != nil {
		log.Fatal(err)
	}
	got, err := c.Get("/demo/hello.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round trip ok: %d bytes\n", len(got))

	status, err := c.LotStatus(lot.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lot usage: %d/%d bytes\n", status.Used, status.Capacity)

	ad, err := c.Statfs()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("server advertisement:")
	fmt.Println(" ", ad)
}
