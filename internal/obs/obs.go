// Package obs is NeST's appliance-wide observability layer: a
// stdlib-only metrics registry (atomic counters, gauges and
// log-bucketed latency histograms), a lock-free ring of recent request
// traces, and a plain-text exposition format served at /statusz and
// /metrics and folded into the published ClassAd (paper §2.1, §6: the
// advertisement should carry live load facts, not just static
// capacity).
//
// The recording discipline is zero-alloc and lock-free on the hot
// path: instruments are registered once at wiring time and held as
// struct fields, so recording is one or two uncontended atomic adds.
// Registry locks are taken only at registration and exposition time,
// never on record.
package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count. The zero value is
// ready to use, so counters embed by value in hot structs.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value that can move both ways.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Emit writes one exposition sample. The name may carry {label="v"}
// suffixes; values are formatted as integers when exact.
type Emit func(name string, value float64)

// metric is one registered exposition entry.
type metric struct {
	name string
	kind int // 0 counter, 1 gauge, 2 func, 3 histogram, 4 collector
	c    *Counter
	g    *Gauge
	fn   func() int64
	h    *Histogram
	coll func(Emit)
}

// Registry names instruments for exposition. Registration takes a
// lock; recording through the returned instruments never does.
type Registry struct {
	mu      sync.RWMutex
	metrics []metric
	byName  map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]int)}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok := r.byName[name]; ok {
		return r.metrics[i].c
	}
	c := &Counter{}
	r.addLocked(metric{name: name, kind: 0, c: c})
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok := r.byName[name]; ok {
		return r.metrics[i].g
	}
	g := &Gauge{}
	r.addLocked(metric{name: name, kind: 1, g: g})
	return g
}

// Func registers a pull-time gauge: fn is invoked at exposition, so
// components keep their own atomic counters and pay nothing extra on
// the hot path.
func (r *Registry) Func(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byName[name]; ok {
		return
	}
	r.addLocked(metric{name: name, kind: 2, fn: fn})
}

// Value reads the current value of a named counter, gauge or func
// metric (0 for unknown names and histograms/collectors, which have no
// single value). Exposition-by-name for tests and CLIs.
func (r *Registry) Value(name string) int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	i, ok := r.byName[name]
	if !ok {
		return 0
	}
	switch m := r.metrics[i]; m.kind {
	case 0:
		return m.c.Value()
	case 1:
		return m.g.Value()
	case 2:
		return m.fn()
	}
	return 0
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok := r.byName[name]; ok {
		return r.metrics[i].h
	}
	h := &Histogram{}
	r.addLocked(metric{name: name, kind: 3, h: h})
	return h
}

// Collect registers a dynamic collector: at exposition time fn is
// called with an emitter and may publish any number of samples (used
// for labeled families whose members appear at runtime, like
// per-protocol × per-op request counts).
func (r *Registry) Collect(fn func(Emit)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics = append(r.metrics, metric{kind: 4, coll: fn})
}

func (r *Registry) addLocked(m metric) {
	r.byName[m.name] = len(r.metrics)
	r.metrics = append(r.metrics, m)
}

// formatValue renders integers without an exponent and reals with
// enough precision to be scrape-friendly.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WriteText renders every registered metric as "name value" lines in
// registration order. Histograms expand to _count, _sum plus p50, p95
// and p99 quantile samples (all in the histogram's recording unit,
// nanoseconds for latency histograms by convention).
func (r *Registry) WriteText(w io.Writer) {
	r.mu.RLock()
	metrics := make([]metric, len(r.metrics))
	copy(metrics, r.metrics)
	r.mu.RUnlock()
	emit := func(name string, value float64) {
		fmt.Fprintf(w, "%s %s\n", name, formatValue(value))
	}
	for _, m := range metrics {
		switch m.kind {
		case 0:
			emit(m.name, float64(m.c.Value()))
		case 1:
			emit(m.name, float64(m.g.Value()))
		case 2:
			emit(m.name, float64(m.fn()))
		case 3:
			s := m.h.Snapshot()
			emit(m.name+"_count", float64(s.Count))
			emit(m.name+"_sum", float64(s.Sum))
			emit(m.name+"_p50", float64(s.Quantile(0.50)))
			emit(m.name+"_p95", float64(s.Quantile(0.95)))
			emit(m.name+"_p99", float64(s.Quantile(0.99)))
		case 4:
			m.coll(emit)
		}
	}
}

// Text renders WriteText into a string.
func (r *Registry) Text() string {
	var sb strings.Builder
	r.WriteText(&sb)
	return sb.String()
}
