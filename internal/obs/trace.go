package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// Trace is one request's trip through the appliance: an ID minted at
// protocol decode, identity fields, and the stage timings recorded as
// the request moves dispatch → storage/transfer → reply. All string
// fields are headers copied by value (protocol and op names are
// static; path/user share the request's backing memory), so recording
// never allocates.
type Trace struct {
	ID    uint64
	Proto string
	Op    string
	User  string
	Path  string
	// Code is the protocol reply code the request resolved to.
	Code int
	// Bytes is the data moved (transfers only).
	Bytes int64
	// Start is the appliance-clock time the request was decoded.
	Start time.Duration
	// Wait is time spent before execution began: storage-lock wait for
	// control-plane ops, scheduler queue time for transfers.
	Wait time.Duration
	// Service is execution time (storage op, or the data phase).
	Service time.Duration
	// Total is decode → reply-ready latency.
	Total time.Duration
}

// traceSlot is one ring entry. state is a per-slot claim flag: 0 free,
// 1 held by a writer or the snapshotter. Claiming through CAS gives
// the plain field accesses a happens-before edge, so the ring is both
// race-clean and lock-free — there is no global lock, and a stalled
// reader can delay at most the one writer aiming at its slot (who
// gives up and drops after a short spin).
type traceSlot struct {
	state atomic.Int32
	t     Trace
}

// Ring is a fixed-size lock-free buffer of recent traces. Writers
// claim slots round-robin with an atomic cursor; memory is bounded by
// the slot count forever. The zero Ring is not usable — call NewRing.
type Ring struct {
	mask   uint64
	cursor atomic.Uint64
	nextID atomic.Uint64
	drops  atomic.Int64
	slots  []traceSlot
}

// NewRing returns a ring holding the most recent n traces (rounded up
// to a power of two, minimum 8).
func NewRing(n int) *Ring {
	size := 8
	for size < n {
		size <<= 1
	}
	return &Ring{mask: uint64(size - 1), slots: make([]traceSlot, size)}
}

// NextID mints a fresh trace ID. IDs are dense and monotonic, so the
// snapshot can order entries newest-first without timestamps.
func (r *Ring) NextID() uint64 { return r.nextID.Add(1) }

// Record stores a copy of t, overwriting the oldest entry. It never
// blocks: if the claimed slot is briefly held by a concurrent
// snapshot, Record spins a few times and then drops the trace
// (counted in Drops). The record path performs no allocation.
func (r *Ring) Record(t *Trace) {
	s := &r.slots[(r.cursor.Add(1)-1)&r.mask]
	for try := 0; !s.state.CompareAndSwap(0, 1); try++ {
		if try == 16 {
			r.drops.Add(1)
			return
		}
	}
	s.t = *t
	s.state.Store(0)
}

// Drops reports traces discarded because their slot was contended.
func (r *Ring) Drops() int64 { return r.drops.Load() }

// Cap reports the ring capacity in entries.
func (r *Ring) Cap() int { return len(r.slots) }

// Snapshot copies the ring's current entries, newest first. Slots
// held by a concurrent writer are skipped rather than waited for.
func (r *Ring) Snapshot() []Trace {
	out := make([]Trace, 0, len(r.slots))
	for i := range r.slots {
		s := &r.slots[i]
		if !s.state.CompareAndSwap(0, 1) {
			continue
		}
		t := s.t
		s.state.Store(0)
		if t.ID != 0 {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID > out[j].ID })
	return out
}
