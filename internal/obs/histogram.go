package obs

import (
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the fixed bucket count of a Histogram: bucket b holds
// observations whose value has bit length b, i.e. bucket 0 holds the
// value 0 and bucket b >= 1 holds [2^(b-1), 2^b). Power-of-two
// bucketing makes recording a single bits.Len64 plus one atomic add,
// and bounds quantile error to a factor of two — plenty for p50/p95/
// p99 over request latencies spanning microseconds to minutes.
const NumBuckets = 65

// Histogram is a log-bucketed distribution with lock-free recording.
// The zero value is ready to use, so histograms embed by value in hot
// structs. Values are unit-free int64s; latency histograms record
// nanoseconds by convention.
type Histogram struct {
	sum     atomic.Int64
	buckets [NumBuckets]atomic.Int64
}

// Observe records one value. Negative values clamp to zero. The
// record path is two uncontended atomic adds and never allocates.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Quantile returns the q-quantile (0 < q <= 1) of the live histogram.
func (h *Histogram) Quantile(q float64) int64 { return h.Snapshot().Quantile(q) }

// Snapshot copies the histogram for consistent multi-quantile reads.
// Concurrent recording may skew a snapshot by the handful of
// observations in flight; exposition tolerates that.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Buckets[i] = n
		s.Count += n
	}
	s.Sum = h.sum.Load()
	return s
}

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	Buckets [NumBuckets]int64
	Count   int64
	Sum     int64
}

// bucketMax is the largest value bucket b can hold.
func bucketMax(b int) int64 {
	if b == 0 {
		return 0
	}
	if b >= 64 {
		return int64(^uint64(0) >> 1)
	}
	return int64(1)<<b - 1
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1):
// the top of the bucket holding the rank-q observation. The true
// quantile t satisfies t <= Quantile(q) < 2t, the log-bucket error
// bound the tests verify against a reference sort.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var seen int64
	for b := 0; b < NumBuckets; b++ {
		seen += s.Buckets[b]
		if seen >= rank {
			return bucketMax(b)
		}
	}
	return bucketMax(NumBuckets - 1)
}

// Mean returns the arithmetic mean of the observations.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Merge folds other into s bucket-by-bucket; log buckets align
// exactly, so merged quantiles keep the factor-of-two bound. Use it
// to derive an all-paths latency from per-path histograms.
func (s *HistSnapshot) Merge(other HistSnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += other.Buckets[i]
	}
	s.Count += other.Count
	s.Sum += other.Sum
}
