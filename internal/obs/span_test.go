package obs

import (
	"strings"
	"testing"
	"time"
)

func TestSpanRingRecordAndSnapshot(t *testing.T) {
	r := NewSpanRing(8)
	for i := 1; i <= 5; i++ {
		r.Record(&Span{Trace: 1, ID: uint64(i), Start: time.Duration(i)})
	}
	got := r.Snapshot()
	if len(got) != 5 {
		t.Fatalf("snapshot len = %d, want 5", len(got))
	}
	for i, s := range got {
		if s.ID != uint64(i+1) {
			t.Fatalf("snapshot[%d].ID = %d, want %d (oldest first)", i, s.ID, i+1)
		}
	}
	// Overflow keeps only the newest Cap() entries.
	for i := 6; i <= 20; i++ {
		r.Record(&Span{Trace: 1, ID: uint64(i), Start: time.Duration(i)})
	}
	got = r.Snapshot()
	if len(got) != r.Cap() {
		t.Fatalf("after overflow: len = %d, want %d", len(got), r.Cap())
	}
	if got[len(got)-1].ID != 20 {
		t.Fatalf("newest ID = %d, want 20", got[len(got)-1].ID)
	}
}

func TestTracerIDsDistinctAcrossAppliances(t *testing.T) {
	a := NewTracer("nest-a", 64)
	b := NewTracer("nest-b", 64)
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		for _, tr := range []*Tracer{a, b} {
			id := tr.NewTraceID()
			if id == 0 {
				t.Fatal("minted zero ID")
			}
			if seen[id] {
				t.Fatalf("duplicate ID %#x across appliances", id)
			}
			seen[id] = true
		}
	}
}

func TestTracerSlowRoots(t *testing.T) {
	tr := NewTracer("nest-0", 64)
	tr.SetSlowThreshold(10 * time.Millisecond)
	tr.Record(&Span{Trace: 1, ID: 1, Stage: "request", Dur: time.Millisecond})
	tr.Record(&Span{Trace: 2, ID: 2, Stage: "request", Dur: 20 * time.Millisecond})
	// Slow child spans do not index: only roots mark a trace slow.
	tr.Record(&Span{Trace: 3, ID: 3, Parent: 9, Stage: "data", Dur: time.Second})
	slow := tr.SlowRoots()
	if len(slow) != 1 || slow[0].Trace != 2 {
		t.Fatalf("slow roots = %+v, want exactly trace 2", slow)
	}
	if got := tr.Spans(2); len(got) != 1 || got[0].Appliance != "nest-0" {
		t.Fatalf("Spans(2) = %+v, want one span stamped nest-0", got)
	}
}

func TestAssembleTraceParentage(t *testing.T) {
	spans := []Span{
		{Trace: 7, ID: 1, Stage: "request", Start: 0, Appliance: "a"},
		{Trace: 7, ID: 2, Parent: 1, Stage: "sched.wait", Start: 1, Appliance: "a"},
		{Trace: 7, ID: 3, Parent: 1, Stage: "data", Start: 2, Appliance: "a"},
		{Trace: 7, ID: 4, Parent: 3, Stage: "stripe", Start: 2, Appliance: "a"},
		// A remote appliance's server-side span, parented under the
		// client's data span; plus a duplicate export to collapse.
		{Trace: 7, ID: 5, Parent: 3, Stage: "request", Start: 3, Appliance: "b"},
		{Trace: 7, ID: 5, Parent: 3, Stage: "request", Start: 3, Appliance: "b"},
		// An orphan (its parent fell out of a ring) surfaces as a root.
		{Trace: 7, ID: 6, Parent: 99, Stage: "data", Start: 4, Appliance: "b"},
	}
	roots := AssembleTrace(spans)
	if len(roots) != 2 {
		t.Fatalf("roots = %d, want 2 (true root + orphan)", len(roots))
	}
	root := roots[0]
	if root.Span.ID != 1 || len(root.Children) != 2 {
		t.Fatalf("root = %+v with %d children, want ID 1 with 2", root.Span, len(root.Children))
	}
	data := root.Children[1]
	if data.Span.ID != 3 || len(data.Children) != 2 {
		t.Fatalf("data node = %+v with %d children, want ID 3 with 2 (stripe + remote)", data.Span, len(data.Children))
	}
	text := RenderTrace(spans)
	if !strings.Contains(text, "[b] request") || !strings.Contains(text, "    ") {
		t.Fatalf("rendered tree missing remote span or indentation:\n%s", text)
	}
}

// TestSpanRecordZeroAlloc is the allocation guard on the record path:
// a full Span record through the Tracer must not allocate.
func TestSpanRecordZeroAlloc(t *testing.T) {
	tr := NewTracer("nest-0", 256)
	tr.SetSlowThreshold(time.Millisecond)
	s := Span{
		Trace: tr.NewTraceID(), ID: tr.NewSpanID(), Stage: "request",
		Proto: "chirp", Op: "get", User: "alice", Path: "/f",
		Bytes: 4096, Start: time.Second, Dur: 2 * time.Second,
		Notes: [2]SpanNote{{Key: "stripe", Num: 3}},
	}
	if n := testing.AllocsPerRun(100, func() { tr.Record(&s) }); n != 0 {
		t.Fatalf("Tracer.Record allocates %.1f times per op, want 0", n)
	}
}

// BenchmarkSpanRecord is the CI bench-smoke guard for the span record
// path: 0 allocs/op, a few nanoseconds.
func BenchmarkSpanRecord(b *testing.B) {
	tr := NewTracer("nest-0", 1024)
	s := Span{
		Trace: 1, ID: 2, Parent: 3, Stage: "data",
		Proto: "chirp", Op: "get", Path: "/bench", Bytes: 1 << 20,
		Start: time.Second, Dur: time.Millisecond,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ID = uint64(i + 1)
		tr.Record(&s)
	}
}
