package obs

import (
	"sort"
	"sync"
)

// HeatEntry is one key's accumulated activity in a HeatMap.
type HeatEntry struct {
	Key   string
	Count int64
	Bytes int64
}

// HeatMap accumulates per-key event and byte counts — the dispatcher
// uses one to track per-file GET demand ("heat") that the replication
// manager turns into mirroring decisions. The record path is a
// sync.Map hit plus two atomic adds; ranking pays at read time.
type HeatMap struct {
	m sync.Map // string -> *heatCell
}

type heatCell struct{ count, bytes Counter }

// NewHeatMap returns an empty heat map.
func NewHeatMap() *HeatMap { return &HeatMap{} }

// Touch records one event of n bytes against key.
func (h *HeatMap) Touch(key string, n int64) {
	v, ok := h.m.Load(key)
	if !ok {
		v, _ = h.m.LoadOrStore(key, &heatCell{})
	}
	c := v.(*heatCell)
	c.count.Inc()
	c.bytes.Add(n)
}

// Get returns the entry for one key.
func (h *HeatMap) Get(key string) (HeatEntry, bool) {
	v, ok := h.m.Load(key)
	if !ok {
		return HeatEntry{}, false
	}
	c := v.(*heatCell)
	return HeatEntry{Key: key, Count: c.count.Value(), Bytes: c.bytes.Value()}, true
}

// Len reports the number of tracked keys.
func (h *HeatMap) Len() int64 {
	var n int64
	h.m.Range(func(_, _ any) bool { n++; return true })
	return n
}

// Top returns the k hottest entries, ordered by event count (bytes,
// then key, as tie-breaks for determinism).
func (h *HeatMap) Top(k int) []HeatEntry {
	if k <= 0 {
		return nil
	}
	var all []HeatEntry
	h.m.Range(func(key, v any) bool {
		c := v.(*heatCell)
		all = append(all, HeatEntry{Key: key.(string), Count: c.count.Value(), Bytes: c.bytes.Value()})
		return true
	})
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		if all[i].Bytes != all[j].Bytes {
			return all[i].Bytes > all[j].Bytes
		}
		return all[i].Key < all[j].Key
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}
