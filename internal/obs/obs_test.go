package obs

import (
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramQuantileAgainstSort checks the log-bucket quantile
// against a reference sort: for every q the histogram answer must
// bound the true quantile from above by less than a factor of two.
func TestHistogramQuantileAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, dist := range []struct {
		name string
		gen  func() int64
	}{
		{"uniform", func() int64 { return rng.Int63n(1_000_000) }},
		{"exponentialish", func() int64 { return int64(1) << rng.Intn(30) }},
		{"latency-like", func() int64 { return 50_000 + rng.Int63n(10_000_000) }},
	} {
		t.Run(dist.name, func(t *testing.T) {
			var h Histogram
			vals := make([]int64, 10_000)
			for i := range vals {
				vals[i] = dist.gen()
				h.Observe(vals[i])
			}
			sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
			for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 1.0} {
				rank := int(q * float64(len(vals)))
				if rank < 1 {
					rank = 1
				}
				truth := vals[rank-1]
				got := h.Quantile(q)
				if got < truth {
					t.Errorf("q=%v: histogram %d below true quantile %d", q, got, truth)
				}
				if truth > 0 && got >= 2*truth {
					t.Errorf("q=%v: histogram %d exceeds 2x true quantile %d", q, got, truth)
				}
			}
			if h.Count() != int64(len(vals)) {
				t.Errorf("Count = %d, want %d", h.Count(), len(vals))
			}
		})
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	var h Histogram
	if h.Quantile(0.99) != 0 {
		t.Error("empty histogram quantile != 0")
	}
	h.Observe(0)
	h.Observe(-5) // clamps to zero
	if got := h.Quantile(1.0); got != 0 {
		t.Errorf("all-zero quantile = %d", got)
	}
	if h.Count() != 2 {
		t.Errorf("Count = %d", h.Count())
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Observe(10)
		b.Observe(1_000_000)
	}
	s := a.Snapshot()
	s.Merge(b.Snapshot())
	if s.Count != 200 {
		t.Fatalf("merged count = %d", s.Count)
	}
	// p50 lands in the low half, p99 in the high half.
	if p50 := s.Quantile(0.5); p50 >= 20 {
		t.Errorf("merged p50 = %d", p50)
	}
	if p99 := s.Quantile(0.99); p99 < 1_000_000 {
		t.Errorf("merged p99 = %d", p99)
	}
}

// TestRingWraparound fills a small ring far past capacity and checks
// that exactly the newest entries survive, newest first.
func TestRingWraparound(t *testing.T) {
	r := NewRing(8)
	if r.Cap() != 8 {
		t.Fatalf("Cap = %d", r.Cap())
	}
	const total = 100
	for i := 0; i < total; i++ {
		id := r.NextID()
		r.Record(&Trace{ID: id, Op: "stat", Total: time.Duration(i)})
	}
	snap := r.Snapshot()
	if len(snap) != 8 {
		t.Fatalf("snapshot len = %d, want 8", len(snap))
	}
	for i, tr := range snap {
		want := uint64(total - i)
		if tr.ID != want {
			t.Errorf("snap[%d].ID = %d, want %d (newest first, oldest evicted)", i, tr.ID, want)
		}
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 5000; i++ {
				r.Record(&Trace{ID: r.NextID(), Proto: "chirp", Op: "ping"})
			}
		}()
	}
	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.Snapshot()
			}
		}
	}()
	writers.Wait()
	close(stop)
	reader.Wait()
	snap := r.Snapshot()
	if len(snap) == 0 || len(snap) > 64 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].ID >= snap[i-1].ID {
			t.Fatalf("snapshot not newest-first at %d", i)
		}
	}
}

// TestRecordPathNoAllocs is the allocation guard: counter, gauge,
// histogram and trace-ring recording must not allocate.
func TestRecordPathNoAllocs(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c")
	g := reg.Gauge("g")
	h := reg.Histogram("h")
	ring := NewRing(64)
	tr := Trace{Proto: "chirp", Op: "get", User: "u", Path: "/p"}
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(7)
		h.Observe(123456)
		tr.ID = ring.NextID()
		ring.Record(&tr)
	}); n != 0 {
		t.Fatalf("record path allocates: %v allocs/op", n)
	}
}

func TestRegistryExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("nest_requests_total").Add(42)
	reg.Gauge("nest_queue_depth").Set(3)
	reg.Func("nest_free_bytes", func() int64 { return 1024 })
	h := reg.Histogram("nest_latency_ns")
	for i := 0; i < 100; i++ {
		h.Observe(1000)
	}
	reg.Collect(func(emit Emit) {
		emit(`nest_op_total{proto="http",op="get"}`, 7)
	})
	text := reg.Text()
	for _, want := range []string{
		"nest_requests_total 42",
		"nest_queue_depth 3",
		"nest_free_bytes 1024",
		"nest_latency_ns_count 100",
		"nest_latency_ns_sum 100000",
		"nest_latency_ns_p99 1023",
		`nest_op_total{proto="http",op="get"} 7`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}
	// Idempotent get-or-create hands back the same instrument.
	if reg.Counter("nest_requests_total").Value() != 42 {
		t.Error("Counter not idempotent")
	}
}
