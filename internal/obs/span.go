package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Distributed tracing: where Trace is a flat, single-appliance record
// of one request, a Span is one *stage* of one logical request — a
// dispatcher decode, a scheduler queue wait, a data phase, one stripe
// of a striped transfer, one replica-failover attempt, a gridmgr
// stage-in — identified by (trace ID, span ID, parent span ID) so the
// stages stitch into a causal tree at export time, even when they were
// recorded on different appliances. The recording discipline matches
// the trace ring exactly: fixed-size records, a lock-free bounded
// ring, zero allocation on the record path (string fields are header
// copies of static names or request-backed memory).

// SpanNote is one fixed annotation slot on a Span: a static key with
// either a string value (a header copy — peer address, model name) or
// a numeric one (stripe index, attempt number), rendered at export
// time so recording never formats.
type SpanNote struct {
	Key string
	Str string
	Num int64
}

// Span is one stage of one distributed request.
type Span struct {
	// Trace identifies the logical request; every span of the request,
	// on every appliance it touches, carries the same value.
	Trace uint64
	// ID is this span's fleet-unique identity; Parent is the span this
	// stage is causally nested under (0 for the root).
	ID     uint64
	Parent uint64
	// Stage names what the span measures ("request", "sched.wait",
	// "data", "stripe", "replica.fetch", "replica.attempt",
	// "stage.in"). Always a static string.
	Stage string
	// Appliance is the advertised name of the appliance that recorded
	// the span — the field that makes merged cross-appliance trees
	// readable.
	Appliance string
	// Request identity (root request spans; empty on interior spans).
	Proto string
	Op    string
	User  string
	Path  string
	// Code is the protocol reply code the stage resolved to (0 = ok);
	// Bytes is the payload moved, where the stage moves any.
	Code  int
	Bytes int64
	// Start is the recording appliance's clock at stage begin; Dur is
	// the stage latency (0 when the stage was not individually timed —
	// sampled-out control ops still record their identity).
	Start time.Duration
	Dur   time.Duration
	// Notes are the span's fixed annotation slots.
	Notes [2]SpanNote
}

// spanSlot is one SpanRing entry; see traceSlot for the claim-flag
// discipline.
type spanSlot struct {
	state atomic.Int32
	s     Span
}

// SpanRing is a fixed-size lock-free buffer of recent spans, with the
// same slot-claim discipline as Ring: writers claim round-robin via an
// atomic cursor, spin briefly against a concurrent snapshot, and drop
// (counted) rather than block. The zero SpanRing is not usable — call
// NewSpanRing.
type SpanRing struct {
	mask   uint64
	cursor atomic.Uint64
	drops  atomic.Int64
	slots  []spanSlot
}

// NewSpanRing returns a ring holding the most recent n spans (rounded
// up to a power of two, minimum 8).
func NewSpanRing(n int) *SpanRing {
	size := 8
	for size < n {
		size <<= 1
	}
	return &SpanRing{mask: uint64(size - 1), slots: make([]spanSlot, size)}
}

// Record stores a copy of s, overwriting the oldest entry. It never
// blocks and never allocates; a slot held by a concurrent snapshot is
// abandoned after a short spin and the span dropped (counted).
func (r *SpanRing) Record(s *Span) {
	slot := &r.slots[(r.cursor.Add(1)-1)&r.mask]
	for try := 0; !slot.state.CompareAndSwap(0, 1); try++ {
		if try == 16 {
			r.drops.Add(1)
			return
		}
	}
	slot.s = *s
	slot.state.Store(0)
}

// Drops reports spans discarded because their slot was contended.
func (r *SpanRing) Drops() int64 { return r.drops.Load() }

// Cap reports the ring capacity in entries.
func (r *SpanRing) Cap() int { return len(r.slots) }

// Snapshot copies the ring's current entries ordered oldest-first by
// start time (span IDs are minted across appliances, so time is the
// only meaningful order). Slots held by a concurrent writer are
// skipped rather than waited for.
func (r *SpanRing) Snapshot() []Span {
	out := make([]Span, 0, len(r.slots))
	for i := range r.slots {
		slot := &r.slots[i]
		if !slot.state.CompareAndSwap(0, 1) {
			continue
		}
		s := slot.s
		slot.state.Store(0)
		if s.ID != 0 {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Tracer mints trace and span identities and records spans for one
// appliance. IDs carry an appliance-derived tag in their high bits so
// identities minted independently across a federation do not collide;
// the low bits are a dense local counter.
type Tracer struct {
	appliance string // set at wiring time, before any recording
	idBase    uint64
	nextID    atomic.Uint64
	slowNs    atomic.Int64
	ring      *SpanRing
	slow      *SpanRing // root spans over the slow threshold
}

// spanIDBits is the width of the dense per-appliance counter; the bits
// above it hold the appliance tag.
const spanIDBits = 40

// NewTracer returns a tracer recording into a ring of n spans.
func NewTracer(appliance string, n int) *Tracer {
	t := &Tracer{
		ring: NewSpanRing(n),
		slow: NewSpanRing(n / 4),
	}
	t.SetAppliance(appliance)
	return t
}

// SetAppliance renames the tracer's appliance tag. Call at wiring
// time, before any goroutine records or mints — the fields are plain.
func (t *Tracer) SetAppliance(name string) {
	t.appliance = name
	// FNV-1a over the name seeds the ID tag; the counter keeps running
	// so a rename never reissues an ID.
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	h |= 1 << (64 - spanIDBits - 1) // never zero, even for the empty name
	t.idBase = h << spanIDBits
}

// Appliance returns the tracer's appliance name.
func (t *Tracer) Appliance() string { return t.appliance }

// NewTraceID mints a fleet-unique trace identity.
func (t *Tracer) NewTraceID() uint64 { return t.idBase | (t.nextID.Add(1) & (1<<spanIDBits - 1)) }

// NewSpanID mints a fleet-unique span identity (same space as trace
// IDs).
func (t *Tracer) NewSpanID() uint64 { return t.NewTraceID() }

// SetSlowThreshold sets the root-span duration above which a trace is
// indexed in the slow ring. Zero or negative disables slow indexing.
func (t *Tracer) SetSlowThreshold(d time.Duration) { t.slowNs.Store(int64(d)) }

// SlowThreshold returns the current slow-trace threshold.
func (t *Tracer) SlowThreshold() time.Duration { return time.Duration(t.slowNs.Load()) }

// Record stamps the appliance on s and stores it. Root spans (no
// parent) whose duration meets the slow threshold are additionally
// indexed in the slow ring. The record path performs no allocation.
func (t *Tracer) Record(s *Span) {
	s.Appliance = t.appliance
	t.ring.Record(s)
	if slow := t.slowNs.Load(); s.Parent == 0 && slow > 0 && int64(s.Dur) >= slow {
		t.slow.Record(s)
	}
}

// Drops reports spans discarded on ring contention.
func (t *Tracer) Drops() int64 { return t.ring.Drops() + t.slow.Drops() }

// Snapshot returns the ring's current spans, oldest first.
func (t *Tracer) Snapshot() []Span { return t.ring.Snapshot() }

// SlowRoots returns recent root spans that exceeded the slow
// threshold, oldest first.
func (t *Tracer) SlowRoots() []Span { return t.slow.Snapshot() }

// Spans returns the recorded spans of one trace, oldest first.
func (t *Tracer) Spans(trace uint64) []Span {
	var out []Span
	for _, s := range t.ring.Snapshot() {
		if s.Trace == trace {
			out = append(out, s)
		}
	}
	return out
}

// SpanNode is one node of an assembled trace tree.
type SpanNode struct {
	Span     Span
	Children []*SpanNode
}

// AssembleTrace stitches spans (from any number of appliances) into
// trees by parentage: children sort under their parent by start time,
// spans whose parent is absent become roots (a partial view — one
// appliance's ring rolled over — still renders). Duplicate span IDs
// (the same appliance exported twice) collapse to one node.
func AssembleTrace(spans []Span) []*SpanNode {
	byID := make(map[uint64]*SpanNode, len(spans))
	order := make([]*SpanNode, 0, len(spans))
	for i := range spans {
		s := spans[i]
		if byID[s.ID] != nil {
			continue
		}
		n := &SpanNode{Span: s}
		byID[s.ID] = n
		order = append(order, n)
	}
	var roots []*SpanNode
	for _, n := range order {
		if p := byID[n.Span.Parent]; p != nil && p != n {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	byStart := func(ns []*SpanNode) {
		sort.SliceStable(ns, func(i, j int) bool {
			if ns[i].Span.Start != ns[j].Span.Start {
				return ns[i].Span.Start < ns[j].Span.Start
			}
			return ns[i].Span.ID < ns[j].Span.ID
		})
	}
	for _, n := range order {
		byStart(n.Children)
	}
	byStart(roots)
	return roots
}

// WriteTree renders an assembled trace as indented text, one span per
// line, depth showing parentage.
func WriteTree(w io.Writer, roots []*SpanNode) {
	var walk func(n *SpanNode, depth int)
	walk = func(n *SpanNode, depth int) {
		s := n.Span
		fmt.Fprintf(w, "%s[%s] %s", strings.Repeat("  ", depth), s.Appliance, s.Stage)
		if s.Proto != "" || s.Op != "" {
			fmt.Fprintf(w, " %s.%s", s.Proto, s.Op)
		}
		if s.Path != "" {
			fmt.Fprintf(w, " %s", s.Path)
		}
		fmt.Fprintf(w, "  code=%d", s.Code)
		if s.Bytes != 0 {
			fmt.Fprintf(w, " bytes=%d", s.Bytes)
		}
		fmt.Fprintf(w, " start=%v dur=%v", s.Start, s.Dur)
		for _, note := range s.Notes {
			if note.Key == "" {
				continue
			}
			if note.Str != "" {
				fmt.Fprintf(w, " %s=%s", note.Key, note.Str)
			} else {
				fmt.Fprintf(w, " %s=%d", note.Key, note.Num)
			}
		}
		fmt.Fprintln(w)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
}

// RenderTrace assembles and renders spans as an indented tree.
func RenderTrace(spans []Span) string {
	var sb strings.Builder
	WriteTree(&sb, AssembleTrace(spans))
	return sb.String()
}
