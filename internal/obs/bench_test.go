package obs

import (
	"testing"
	"time"
)

// BenchmarkMetricsRecord measures the per-request recording cost the
// dispatcher pays on its hot path: one op counter, one latency
// histogram observation, one trace-ID mint. Allocations must report
// zero (TestRecordPathNoAllocs enforces it; this benchmark shows the
// nanoseconds).
func BenchmarkMetricsRecord(b *testing.B) {
	reg := NewRegistry()
	c := reg.Counter("ops")
	h := reg.Histogram("lat")
	ring := NewRing(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(int64(i) % 1_000_000)
		_ = ring.NextID()
	}
}

// BenchmarkTraceRecord measures a full sampled-trace ring write.
func BenchmarkTraceRecord(b *testing.B) {
	ring := NewRing(256)
	tr := Trace{Proto: "chirp", Op: "get", User: "alice", Path: "/data/file",
		Start: time.Millisecond, Wait: time.Microsecond, Service: time.Millisecond}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.ID = ring.NextID()
		ring.Record(&tr)
	}
}

// BenchmarkHistogramQuantile measures exposition-time quantile cost
// (never on the hot path).
func BenchmarkHistogramQuantile(b *testing.B) {
	var h Histogram
	for i := int64(0); i < 100_000; i++ {
		h.Observe(i * 37 % 10_000_000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Quantile(0.99)
	}
}
