// Package discovery implements the global Grid discovery system NeST
// publishes into (paper §2.1, §6): a collector that stores ClassAd
// advertisements with expiry, and a matchmaker that pairs request ads
// with the published storage ads using symmetric Requirements/Rank
// matching — the role the Condor collector/negotiator pair plays in
// the paper's deployment.
package discovery

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nest/internal/classad"
	"nest/internal/sim"
)

// DefaultTTL is how long an advertisement stays fresh without renewal.
const DefaultTTL = 5 * time.Minute

// Collector stores advertisements keyed by their Name attribute, plus
// the replica catalog derived from them (catalog.go): an inverted
// index from logical path to the appliances whose fresh ads list it.
type Collector struct {
	clock sim.Clock
	ttl   time.Duration
	mu    sync.Mutex
	ads   map[string]entry

	held    map[string][]string            // appliance -> advertised replica paths
	holders map[string]map[string]struct{} // path -> holding appliances
}

type entry struct {
	ad      *classad.Ad
	updated time.Duration
}

// NewCollector returns an empty collector.
func NewCollector(clock sim.Clock, ttl time.Duration) *Collector {
	if clock == nil {
		clock = sim.NewRealClock()
	}
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	return &Collector{
		clock:   clock,
		ttl:     ttl,
		ads:     make(map[string]entry),
		held:    make(map[string][]string),
		holders: make(map[string]map[string]struct{}),
	}
}

// Advertise inserts or refreshes an ad. Ads without a Name attribute
// are rejected.
func (c *Collector) Advertise(ad *classad.Ad) error {
	name, ok := ad.EvalAttr("Name", nil).StringVal()
	if !ok || name == "" {
		return fmt.Errorf("discovery: advertisement has no Name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ads[name] = entry{ad: ad.Copy(), updated: c.clock.Now()}
	c.indexReplicasLocked(name, ad)
	return nil
}

// sweepLocked drops expired ads.
func (c *Collector) sweepLocked() {
	now := c.clock.Now()
	for name, e := range c.ads {
		if now-e.updated > c.ttl {
			delete(c.ads, name)
			c.dropReplicasLocked(name)
		}
	}
}

// Query returns fresh ads whose evaluation of constraint is true. An
// empty constraint matches everything. Results are sorted by Name.
func (c *Collector) Query(constraint string) ([]*classad.Ad, error) {
	var expr classad.Expr
	if strings.TrimSpace(constraint) != "" {
		var err error
		expr, err = classad.ParseExpr(constraint)
		if err != nil {
			return nil, err
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked()
	var names []string
	for name := range c.ads {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []*classad.Ad
	for _, name := range names {
		ad := c.ads[name].ad
		if expr != nil {
			v := expr.Eval(&classad.Env{Self: ad})
			if !v.IsTrue() {
				continue
			}
		}
		out = append(out, ad.Copy())
	}
	return out, nil
}

// Match finds the published ad that best matches request (two-way
// Requirements, ranked by the request's Rank). nil means no match.
func (c *Collector) Match(request *classad.Ad) *classad.Ad {
	ads, _ := c.Query("")
	idx := classad.BestMatch(request, ads)
	if idx < 0 {
		return nil
	}
	return ads[idx]
}

// Remove deletes one ad by name.
func (c *Collector) Remove(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.ads, name)
	c.dropReplicasLocked(name)
}

// Len reports the number of fresh ads.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked()
	return len(c.ads)
}

// DefaultIdleTimeout is how long a collector connection may sit
// between requests before the server drops it. It defaults to the ad
// TTL so a publisher on the default advertisement period is never
// cut off mid-cadence, while a stalled or dead client cannot pin a
// connection (and its goroutine) forever.
const DefaultIdleTimeout = DefaultTTL

// Server exposes a collector over a line-oriented TCP protocol:
//
//	ADVERTISE <len>\n<ad bytes>          -> +OK
//	QUERY <len>\n<constraint bytes>      -> +OK <n>, then n of: <len>\n<ad>
//	MATCH <len>\n<request-ad bytes>      -> +OK <len>\n<ad> | -ERR no match
//	REPLICAS <len>\n<path bytes>         -> +OK <n>, then n of: <len>\n<ad>
type Server struct {
	collector *Collector
	ln        net.Listener
	wg        sync.WaitGroup
	closed    sync.Once
	idleNs    atomic.Int64
}

// NewServer serves collector on ln.
func NewServer(collector *Collector, ln net.Listener) *Server {
	s := &Server{collector: collector, ln: ln}
	s.idleNs.Store(int64(DefaultIdleTimeout))
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		var backoff time.Duration
		for {
			conn, err := ln.Accept()
			if err != nil {
				// Transient accept failures (ECONNABORTED, fd
				// exhaustion) must not kill the collector; back off and
				// retry, returning only when the listener is closed.
				var ne net.Error
				if !errors.Is(err, net.ErrClosed) && errors.As(err, &ne) {
					backoff = nextBackoff(backoff)
					time.Sleep(backoff)
					continue
				}
				return
			}
			backoff = 0
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer conn.Close()
				s.serve(conn)
			}()
		}
	}()
	return s
}

// nextBackoff doubles an accept-retry delay up to a 1s cap.
func nextBackoff(cur time.Duration) time.Duration {
	if cur <= 0 {
		return 5 * time.Millisecond
	}
	if cur >= time.Second/2 {
		return time.Second
	}
	return cur * 2
}

// SetIdleTimeout adjusts how long a connection may idle between
// requests; zero or negative disables the deadline.
func (s *Server) SetIdleTimeout(d time.Duration) { s.idleNs.Store(int64(d)) }

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() {
	s.closed.Do(func() { s.ln.Close() })
	s.wg.Wait()
}

func (s *Server) serve(conn net.Conn) {
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		// The deadline covers the whole request (command line plus
		// length-prefixed body) so a client that stalls mid-request
		// cannot pin the connection either.
		if idle := time.Duration(s.idleNs.Load()); idle > 0 {
			conn.SetReadDeadline(time.Now().Add(idle))
		}
		line, err := br.ReadString('\n')
		if err != nil {
			return
		}
		fields := strings.Fields(strings.TrimSpace(line))
		if len(fields) != 2 {
			fmt.Fprintf(bw, "-ERR malformed command\n")
			bw.Flush()
			continue
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 0 || n > 1<<20 {
			fmt.Fprintf(bw, "-ERR bad length\n")
			bw.Flush()
			continue
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(br, body); err != nil {
			return
		}
		switch strings.ToUpper(fields[0]) {
		case "ADVERTISE":
			ad, err := classad.Parse(string(body))
			if err == nil {
				err = s.collector.Advertise(ad)
			}
			if err != nil {
				fmt.Fprintf(bw, "-ERR %s\n", strings.ReplaceAll(err.Error(), "\n", " "))
			} else {
				fmt.Fprintf(bw, "+OK\n")
			}
		case "QUERY":
			ads, err := s.collector.Query(string(body))
			if err != nil {
				fmt.Fprintf(bw, "-ERR %s\n", strings.ReplaceAll(err.Error(), "\n", " "))
				break
			}
			writeAds(bw, ads)
		case "REPLICAS":
			writeAds(bw, s.collector.ReplicaAds(string(body)))
		case "MATCH":
			request, err := classad.Parse(string(body))
			if err != nil {
				fmt.Fprintf(bw, "-ERR %s\n", strings.ReplaceAll(err.Error(), "\n", " "))
				break
			}
			best := s.collector.Match(request)
			if best == nil {
				fmt.Fprintf(bw, "-ERR no match\n")
				break
			}
			text := best.String()
			fmt.Fprintf(bw, "+OK %d\n%s", len(text), text)
		default:
			fmt.Fprintf(bw, "-ERR unknown command %s\n", fields[0])
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// writeAds emits a "+OK <n>" count followed by n length-prefixed ads.
func writeAds(bw *bufio.Writer, ads []*classad.Ad) {
	fmt.Fprintf(bw, "+OK %d\n", len(ads))
	for _, ad := range ads {
		text := ad.String()
		fmt.Fprintf(bw, "%d\n%s", len(text), text)
	}
}

// Client talks to a collector server.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// DialClient connects to a collector.
func DialClient(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}, nil
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) send(cmd, body string) (string, error) {
	if _, err := fmt.Fprintf(c.bw, "%s %d\n%s", cmd, len(body), body); err != nil {
		return "", err
	}
	if err := c.bw.Flush(); err != nil {
		return "", err
	}
	line, err := c.br.ReadString('\n')
	if err != nil {
		return "", err
	}
	line = strings.TrimSpace(line)
	if strings.HasPrefix(line, "-ERR") {
		return "", fmt.Errorf("discovery: %s", strings.TrimPrefix(line, "-ERR "))
	}
	return strings.TrimSpace(strings.TrimPrefix(line, "+OK")), nil
}

// Publish advertises an ad.
func (c *Client) Publish(ad *classad.Ad) error {
	_, err := c.send("ADVERTISE", ad.String())
	return err
}

func (c *Client) readAd() (*classad.Ad, error) {
	line, err := c.br.ReadString('\n')
	if err != nil {
		return nil, err
	}
	n, err := strconv.Atoi(strings.TrimSpace(line))
	if err != nil {
		return nil, fmt.Errorf("discovery: bad ad length %q", line)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(c.br, body); err != nil {
		return nil, err
	}
	return classad.Parse(string(body))
}

func (c *Client) readAds(rest string) ([]*classad.Ad, error) {
	n, err := strconv.Atoi(rest)
	if err != nil {
		return nil, fmt.Errorf("discovery: bad count %q", rest)
	}
	ads := make([]*classad.Ad, 0, n)
	for i := 0; i < n; i++ {
		ad, err := c.readAd()
		if err != nil {
			return nil, err
		}
		ads = append(ads, ad)
	}
	return ads, nil
}

// Query fetches ads satisfying a constraint expression.
func (c *Client) Query(constraint string) ([]*classad.Ad, error) {
	rest, err := c.send("QUERY", constraint)
	if err != nil {
		return nil, err
	}
	return c.readAds(rest)
}

// Replicas asks the collector's replica catalog for the ads of the
// appliances currently holding the logical file path.
func (c *Client) Replicas(path string) ([]*classad.Ad, error) {
	rest, err := c.send("REPLICAS", path)
	if err != nil {
		return nil, err
	}
	return c.readAds(rest)
}

// Match asks the matchmaker for the best ad for a request.
func (c *Client) Match(request *classad.Ad) (*classad.Ad, error) {
	rest, err := c.send("MATCH", request.String())
	if err != nil {
		return nil, err
	}
	n, err := strconv.Atoi(rest)
	if err != nil {
		return nil, fmt.Errorf("discovery: bad ad length %q", rest)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(c.br, body); err != nil {
		return nil, err
	}
	return classad.Parse(string(body))
}
