// The replica catalog: the collector-side mapping of logical file
// names to the set of appliances currently holding a copy. It is not a
// separate service — each appliance's periodic ClassAd carries a
// Replicas attribute listing the files it serves, the collector
// maintains an inverted index over the fresh ads, and entries expire
// with the advertisement that produced them (an appliance that stops
// advertising — crash, partition, restart with an empty disk — drops
// out of every file's holder set within one ClassAd lifetime). This is
// the replica-catalog half of the EU DataGrid data-management split;
// the replication-manager half lives in internal/replica.
package discovery

import (
	"sort"

	"nest/internal/classad"
)

// ReplicasAttr is the ClassAd attribute through which an appliance
// advertises the logical files it holds: a list of path strings.
const ReplicasAttr = "Replicas"

// SetReplicas stores paths as the ad's replica list.
func SetReplicas(ad *classad.Ad, paths []string) {
	vals := make([]classad.Value, len(paths))
	for i, p := range paths {
		vals[i] = classad.Str(p)
	}
	ad.SetValue(ReplicasAttr, classad.List(vals...))
}

// ReplicaList extracts the advertised replica paths from an ad.
func ReplicaList(ad *classad.Ad) []string {
	vs, ok := ad.EvalAttr(ReplicasAttr, nil).ListVal()
	if !ok {
		return nil
	}
	out := make([]string, 0, len(vs))
	for _, v := range vs {
		if s, ok := v.StringVal(); ok && s != "" {
			out = append(out, s)
		}
	}
	return out
}

// indexReplicasLocked folds one appliance's advertised replica list
// into the inverted index, removing paths the previous ad listed but
// the new one does not (a deleted or evicted file stops being a
// replica on the next advertisement, not after the TTL).
func (c *Collector) indexReplicasLocked(name string, ad *classad.Ad) {
	paths := ReplicaList(ad)
	next := make(map[string]bool, len(paths))
	for _, p := range paths {
		next[p] = true
	}
	for _, p := range c.held[name] {
		if !next[p] {
			c.dropHolderLocked(p, name)
		}
	}
	for _, p := range paths {
		hs := c.holders[p]
		if hs == nil {
			hs = make(map[string]struct{})
			c.holders[p] = hs
		}
		hs[name] = struct{}{}
	}
	if len(paths) == 0 {
		delete(c.held, name)
	} else {
		c.held[name] = paths
	}
}

// dropReplicasLocked removes every catalog entry contributed by one
// appliance (its ad expired or was removed).
func (c *Collector) dropReplicasLocked(name string) {
	for _, p := range c.held[name] {
		c.dropHolderLocked(p, name)
	}
	delete(c.held, name)
}

func (c *Collector) dropHolderLocked(path, name string) {
	if hs := c.holders[path]; hs != nil {
		delete(hs, name)
		if len(hs) == 0 {
			delete(c.holders, path)
		}
	}
}

// ReplicaHolders returns the names of the fresh appliances holding
// path, sorted.
func (c *Collector) ReplicaHolders(path string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked()
	hs := c.holders[path]
	out := make([]string, 0, len(hs))
	for name := range hs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ReplicaAds returns the full fresh ads of the appliances holding
// path (sorted by name), so callers can rank candidate replicas by the
// advertised health attributes.
func (c *Collector) ReplicaAds(path string) []*classad.Ad {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked()
	hs := c.holders[path]
	names := make([]string, 0, len(hs))
	for name := range hs {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*classad.Ad, 0, len(names))
	for _, name := range names {
		if e, ok := c.ads[name]; ok {
			out = append(out, e.ad.Copy())
		}
	}
	return out
}

// CatalogSize reports the number of logical paths with at least one
// fresh holder.
func (c *Collector) CatalogSize() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked()
	return len(c.holders)
}
