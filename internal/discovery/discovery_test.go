package discovery

import (
	"net"
	"testing"
	"time"

	"nest/internal/classad"
	"nest/internal/sim"
)

func storageAd(name string, free int64, protos ...string) *classad.Ad {
	ad := classad.NewAd()
	ad.SetString("Type", "Storage")
	ad.SetString("Name", name)
	ad.SetInt("FreeDisk", free)
	vals := make([]classad.Value, len(protos))
	for i, p := range protos {
		vals[i] = classad.Str(p)
	}
	ad.SetValue("Protocols", classad.List(vals...))
	return ad
}

func TestAdvertiseAndQuery(t *testing.T) {
	c := NewCollector(nil, 0)
	if err := c.Advertise(storageAd("a", 100, "chirp")); err != nil {
		t.Fatal(err)
	}
	if err := c.Advertise(storageAd("b", 500, "chirp", "nfs")); err != nil {
		t.Fatal(err)
	}
	ads, err := c.Query("")
	if err != nil || len(ads) != 2 {
		t.Fatalf("Query(all) = %d ads, %v", len(ads), err)
	}
	ads, err = c.Query("FreeDisk > 200")
	if err != nil || len(ads) != 1 {
		t.Fatalf("Query(constraint) = %d ads, %v", len(ads), err)
	}
	if name, _ := ads[0].EvalAttr("Name", nil).StringVal(); name != "b" {
		t.Errorf("matched %q", name)
	}
	if _, err := c.Query("((("); err == nil {
		t.Error("bad constraint accepted")
	}
}

func TestAdvertiseRequiresName(t *testing.T) {
	c := NewCollector(nil, 0)
	if err := c.Advertise(classad.NewAd()); err == nil {
		t.Error("nameless ad accepted")
	}
}

func TestAdvertiseRefreshes(t *testing.T) {
	c := NewCollector(nil, 0)
	c.Advertise(storageAd("a", 100, "chirp"))
	c.Advertise(storageAd("a", 999, "chirp"))
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	ads, _ := c.Query("")
	if free, _ := ads[0].EvalAttr("FreeDisk", nil).IntVal(); free != 999 {
		t.Errorf("FreeDisk = %d, want refreshed 999", free)
	}
}

func TestExpiry(t *testing.T) {
	clock := sim.NewVirtualClock()
	clock.Run(func() {
		c := NewCollector(clock, time.Minute)
		c.Advertise(storageAd("old", 1, "chirp"))
		clock.Sleep(30 * time.Second)
		c.Advertise(storageAd("fresh", 1, "chirp"))
		clock.Sleep(45 * time.Second) // old: 75s > ttl; fresh: 45s
		if c.Len() != 1 {
			t.Fatalf("Len = %d, want 1 after expiry", c.Len())
		}
		ads, _ := c.Query("")
		if name, _ := ads[0].EvalAttr("Name", nil).StringVal(); name != "fresh" {
			t.Errorf("surviving ad = %q", name)
		}
	})
}

func TestMatchRanked(t *testing.T) {
	c := NewCollector(nil, 0)
	c.Advertise(storageAd("small", 100, "nfs", "gridftp"))
	c.Advertise(storageAd("big", 10000, "nfs", "gridftp"))
	c.Advertise(storageAd("noproto", 99999, "http"))
	request := classad.MustParse(`[
		NeedDisk = 50;
		Requirements = member("nfs", other.Protocols) && other.FreeDisk >= NeedDisk;
		Rank = other.FreeDisk
	]`)
	best := c.Match(request)
	if best == nil {
		t.Fatal("no match")
	}
	if name, _ := best.EvalAttr("Name", nil).StringVal(); name != "big" {
		t.Errorf("matched %q, want big (highest rank)", name)
	}
	// Unsatisfiable request.
	nomatch := classad.MustParse(`[ Requirements = other.FreeDisk > 1000000 ]`)
	if c.Match(nomatch) != nil {
		t.Error("impossible request matched")
	}
}

func TestRemove(t *testing.T) {
	c := NewCollector(nil, 0)
	c.Advertise(storageAd("x", 1, "chirp"))
	c.Remove("x")
	if c.Len() != 0 {
		t.Errorf("Len = %d after remove", c.Len())
	}
}

func startServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(NewCollector(nil, 0), ln)
	t.Cleanup(srv.Close)
	client, err := DialClient(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return srv, client
}

func TestWireProtocol(t *testing.T) {
	_, client := startServer(t)
	if err := client.Publish(storageAd("wire", 4242, "chirp", "nfs")); err != nil {
		t.Fatal(err)
	}
	ads, err := client.Query(`Type == "Storage"`)
	if err != nil || len(ads) != 1 {
		t.Fatalf("Query = %d ads, %v", len(ads), err)
	}
	if free, _ := ads[0].EvalAttr("FreeDisk", nil).IntVal(); free != 4242 {
		t.Errorf("FreeDisk = %d", free)
	}
	best, err := client.Match(classad.MustParse(`[ Requirements = member("nfs", other.Protocols) ]`))
	if err != nil {
		t.Fatal(err)
	}
	if name, _ := best.EvalAttr("Name", nil).StringVal(); name != "wire" {
		t.Errorf("matched %q", name)
	}
	// No match is an error, and the connection survives it.
	if _, err := client.Match(classad.MustParse(`[ Requirements = false ]`)); err == nil {
		t.Error("impossible match succeeded")
	}
	if err := client.Publish(storageAd("wire2", 1, "http")); err != nil {
		t.Errorf("connection dead after -ERR: %v", err)
	}
}

func TestWireErrors(t *testing.T) {
	_, client := startServer(t)
	// Malformed ad body.
	if _, err := client.send("ADVERTISE", "[[[["); err == nil {
		t.Error("malformed ad accepted")
	}
	if _, err := client.send("BOGUS", ""); err == nil {
		t.Error("unknown command accepted")
	}
}
