package discovery

import (
	"net"
	"testing"
	"time"

	"nest/internal/classad"
	"nest/internal/sim"
)

func replicaAd(name string, paths ...string) *classad.Ad {
	ad := storageAd(name, 1000, "chirp", "gridftp")
	SetReplicas(ad, paths)
	return ad
}

func TestCatalogIndexAndDiff(t *testing.T) {
	c := NewCollector(nil, 0)
	c.Advertise(replicaAd("a", "/x", "/y"))
	c.Advertise(replicaAd("b", "/x"))

	if got := c.ReplicaHolders("/x"); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("holders(/x) = %v", got)
	}
	if got := c.ReplicaHolders("/y"); len(got) != 1 || got[0] != "a" {
		t.Fatalf("holders(/y) = %v", got)
	}
	if c.CatalogSize() != 2 {
		t.Fatalf("CatalogSize = %d", c.CatalogSize())
	}

	// A refreshed ad that drops a path removes the holder immediately
	// (not after the TTL).
	c.Advertise(replicaAd("a", "/y"))
	if got := c.ReplicaHolders("/x"); len(got) != 1 || got[0] != "b" {
		t.Fatalf("holders(/x) after diff = %v", got)
	}

	ads := c.ReplicaAds("/y")
	if len(ads) != 1 {
		t.Fatalf("ReplicaAds(/y) = %d ads", len(ads))
	}
	if name, _ := ads[0].EvalAttr("Name", nil).StringVal(); name != "a" {
		t.Errorf("ReplicaAds(/y)[0] = %q", name)
	}

	c.Remove("b")
	if got := c.ReplicaHolders("/x"); len(got) != 0 {
		t.Errorf("holders(/x) after Remove = %v", got)
	}
	if c.CatalogSize() != 1 {
		t.Errorf("CatalogSize = %d after removals", c.CatalogSize())
	}
}

// TestCatalogExpiry is the federation liveness property: an appliance
// that stops advertising (crash, partition, restart) drops out of
// every file's holder set within one ClassAd lifetime, so replica
// selection stops routing clients at it.
func TestCatalogExpiry(t *testing.T) {
	clock := sim.NewVirtualClock()
	clock.Run(func() {
		c := NewCollector(clock, time.Minute)
		c.Advertise(replicaAd("dead", "/shared", "/only-dead"))
		clock.Sleep(30 * time.Second)
		c.Advertise(replicaAd("alive", "/shared"))

		if got := c.ReplicaHolders("/shared"); len(got) != 2 {
			t.Fatalf("holders(/shared) = %v before expiry", got)
		}

		clock.Sleep(45 * time.Second) // dead: 75s > TTL; alive: 45s

		if got := c.ReplicaHolders("/shared"); len(got) != 1 || got[0] != "alive" {
			t.Errorf("holders(/shared) after expiry = %v", got)
		}
		if got := c.ReplicaHolders("/only-dead"); len(got) != 0 {
			t.Errorf("holders(/only-dead) after expiry = %v", got)
		}
		if c.CatalogSize() != 1 {
			t.Errorf("CatalogSize = %d after expiry", c.CatalogSize())
		}
	})
}

func TestReplicasWireCommand(t *testing.T) {
	_, client := startServer(t)
	if err := client.Publish(replicaAd("s1", "/data/a", "/data/b")); err != nil {
		t.Fatal(err)
	}
	if err := client.Publish(replicaAd("s2", "/data/a")); err != nil {
		t.Fatal(err)
	}
	ads, err := client.Replicas("/data/a")
	if err != nil || len(ads) != 2 {
		t.Fatalf("Replicas(/data/a) = %d ads, %v", len(ads), err)
	}
	for i, want := range []string{"s1", "s2"} {
		if name, _ := ads[i].EvalAttr("Name", nil).StringVal(); name != want {
			t.Errorf("ads[%d] = %q, want %q", i, name, want)
		}
	}
	ads, err = client.Replicas("/nope")
	if err != nil || len(ads) != 0 {
		t.Errorf("Replicas(/nope) = %d ads, %v", len(ads), err)
	}
	// The connection survives and other verbs still work.
	if _, err := client.Query(""); err != nil {
		t.Errorf("Query after REPLICAS: %v", err)
	}
}

// TestServerIdleTimeout: a connection that goes quiet is dropped after
// the idle deadline, so abandoned clients cannot pin collector
// goroutines forever.
func TestServerIdleTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(NewCollector(nil, 0), ln)
	t.Cleanup(srv.Close)
	srv.SetIdleTimeout(50 * time.Millisecond)

	client, err := DialClient(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })

	// Active use within the deadline works...
	if err := client.Publish(storageAd("busy", 1, "chirp")); err != nil {
		t.Fatal(err)
	}
	// ...then the client goes idle past the deadline and the server
	// hangs up: the next request fails.
	time.Sleep(200 * time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := client.Publish(storageAd("busy", 2, "chirp")); err != nil {
			break // connection severed, as intended
		}
		if time.Now().After(deadline) {
			t.Fatal("idle connection never dropped")
		}
		time.Sleep(50 * time.Millisecond)
	}
}
