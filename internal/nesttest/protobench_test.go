package nesttest_test

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"testing"

	"nest/internal/chirp"
	"nest/internal/ftp"
	"nest/internal/gridftp"
	"nest/internal/gsi"
	"nest/internal/httpx"
	"nest/internal/nesttest"
)

// benchPayload is what one GET moves over loopback TCP per op: large
// enough that framing and data-path costs dominate per-request
// control-channel chatter, small enough to keep -benchtime reasonable.
const benchPayload = 4 << 20

func payload() []byte {
	p := make([]byte, benchPayload)
	for i := range p {
		p[i] = byte(i)
	}
	return p
}

// BenchmarkProtocolThroughput measures end-to-end GET throughput over
// loopback for each wire protocol, through the full appliance stack:
// protocol framing (vectored header+payload writes), dispatcher,
// transfer manager, and the zero-copy extent handoff out of storage.
// One op is a complete download of a 4 MB file.
func BenchmarkProtocolThroughput(b *testing.B) {
	b.Run("chirp", func(b *testing.B) {
		ca, cred := nesttest.NewCA("john")
		f := nesttest.Start(b, chirp.NewHandler(gsi.NewVerifier(ca), true), nesttest.Options{NoLots: true})
		c, err := chirp.Dial(f.Addr, cred)
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		if err := c.PutBytes("/bench", payload(), ""); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(benchPayload)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if n, err := c.GetTo("/bench", io.Discard); err != nil || n != benchPayload {
				b.Fatalf("GetTo = (%d, %v)", n, err)
			}
		}
	})

	b.Run("http", func(b *testing.B) {
		f := nesttest.Start(b, httpx.NewHandler(), nesttest.Options{NoLots: true})
		base := "http://" + f.Addr
		client := &http.Client{}
		req, _ := http.NewRequest(http.MethodPut, base+"/bench", bytes.NewReader(payload()))
		resp, err := client.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 201 {
			b.Fatalf("seed PUT status %d", resp.StatusCode)
		}
		b.SetBytes(benchPayload)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := client.Get(base + "/bench")
			if err != nil {
				b.Fatal(err)
			}
			n, err := io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if err != nil || n != benchPayload {
				b.Fatalf("GET body = (%d, %v)", n, err)
			}
		}
	})

	// ftp-modee scales the stripe width: width 1 is one sequential pump
	// on one data connection; wider runs fan the GET across that many
	// stripe pumps and data connections end to end (server stripes the
	// file, client reassembles by block offset).
	for _, par := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("ftp-modee/par-%d", par), func(b *testing.B) {
			f := nesttest.Start(b, ftp.NewHandler(ftp.Options{AllowAnon: true, EnableModeE: true}), nesttest.Options{NoLots: true})
			c, err := ftp.Dial(f.Addr)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Quit()
			if err := c.LoginAnonymous(); err != nil {
				b.Fatal(err)
			}
			if _, err := c.Stor("/bench", bytes.NewReader(payload())); err != nil {
				b.Fatal(err)
			}
			if err := c.SetMode('E'); err != nil {
				b.Fatal(err)
			}
			if err := c.SetParallelism(par); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(benchPayload)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if n, err := c.Retr("/bench", io.Discard); err != nil || n != benchPayload {
					b.Fatalf("Retr = (%d, %v)", n, err)
				}
			}
		})
	}

	b.Run("gridftp", func(b *testing.B) {
		ca, cred := nesttest.NewCA("john")
		f := nesttest.Start(b, gridftp.NewHandler(gsi.NewVerifier(ca)), nesttest.Options{NoLots: true})
		c, err := gridftp.Dial(f.Addr, cred)
		if err != nil {
			b.Fatal(err)
		}
		defer c.Quit()
		if _, err := c.Stor("/bench", bytes.NewReader(payload())); err != nil {
			b.Fatal(err)
		}
		if err := c.SetMode('E'); err != nil {
			b.Fatal(err)
		}
		if err := c.SetParallelism(2); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(benchPayload)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if n, err := c.Retr("/bench", io.Discard); err != nil || n != benchPayload {
				b.Fatalf("Retr = (%d, %v)", n, err)
			}
		}
	})
}
