// Package nesttest provides shared fixtures for protocol-level tests:
// a minimal live appliance (storage manager + transfer manager +
// dispatcher) listening on loopback TCP through a protocol handler
// under test.
package nesttest

import (
	"net"
	"testing"
	"time"

	"nest/internal/acl"
	"nest/internal/dispatch"
	"nest/internal/gsi"
	"nest/internal/lots"
	"nest/internal/protocol"
	"nest/internal/quota"
	"nest/internal/sim"
	"nest/internal/storage"
	"nest/internal/transfer"
)

// MB is a byte-count convenience.
const MB = sim.MB

// Fixture is a running single-protocol appliance.
type Fixture struct {
	Clock sim.Clock
	Store *storage.Manager
	Xfer  *transfer.Manager
	Disp  *dispatch.Dispatcher
	CA    *gsi.CA
	Addr  string
}

// Options tunes the fixture.
type Options struct {
	// RootRights is the ACL granted to system:anyuser at "/"
	// (default: all rights, so anonymous protocols can exercise every
	// path).
	RootRights acl.Rights
	// NoLots disables the lot manager (writes need no guarantee).
	NoLots bool
	// QuotaLots selects quota-backed enforcement (with an enabled
	// quota manager) instead of the default NeST-managed accounting.
	QuotaLots bool
	// Capacity is the filesystem/lot capacity (default 1 GB).
	Capacity int64
}

// Start assembles the appliance and serves handler on a fresh
// loopback listener. Cleanup is registered on t.
func Start(t testing.TB, handler protocol.Handler, o Options) *Fixture {
	t.Helper()
	clock := sim.NewRealClock()
	if o.Capacity == 0 {
		o.Capacity = 1 << 30
	}
	if o.RootRights == 0 {
		o.RootRights = acl.AllRights
	}
	fs := storage.NewMemFS(clock, o.Capacity)
	table := acl.NewTable(o.RootRights, gsi.Anonymous)
	var lotMgr *lots.Manager
	if !o.NoLots {
		if o.QuotaLots {
			lotMgr = lots.NewManager(clock, o.Capacity, lots.QuotaBacked, quota.NewManager(true))
		} else {
			lotMgr = lots.NewManager(clock, o.Capacity, lots.NeSTManaged, nil)
		}
	}
	store := storage.NewManager(fs, table, lotMgr)
	xfer := transfer.NewManager(transfer.Options{Clock: clock, Model: transfer.Threads, Slots: 16})
	disp := dispatch.New(clock, store, xfer)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go disp.ServeListener(ln, handler)
	t.Cleanup(func() {
		disp.Close()
		xfer.Close()
	})
	return &Fixture{
		Clock: clock,
		Store: store,
		Xfer:  xfer,
		Disp:  disp,
		Addr:  ln.Addr().String(),
	}
}

// NewCA returns a CA plus a credential for the named user.
func NewCA(user string) (*gsi.CA, *gsi.Credential) {
	ca := gsi.NewCA("/O=Grid/CN=NeST-Test-CA", []byte("nesttest-secret"))
	cred := ca.Issue("/O=Grid/OU=test/CN="+user, time.Hour, true)
	return ca, cred
}

// GrantLot creates a lot for user directly through the storage
// manager, for tests that need write admission without driving the
// Chirp lot verbs.
func (f *Fixture) GrantLot(t testing.TB, user string, capacity int64) string {
	t.Helper()
	info, err := f.Store.Lots().Create(user, capacity, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	return info.ID
}
