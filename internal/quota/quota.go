// Package quota implements the user-quota subsystem NeST uses as one
// of its two lot-enforcement mechanisms (paper §5). It stands in for
// the kernel (ext2) quota machinery: per-user block accounting with a
// hard limit, plus the per-write bookkeeping overhead the paper
// measures in Figure 6 (quota-tree updates roughly halve sequential
// write bandwidth in the worst case).
//
// Because quotas are accounted per user — not per lot — a user may
// overfill one lot and then be unable to fill another to capacity;
// NeST-managed enforcement (package lots) fixes this at the cost of
// monitoring writes itself.
package quota

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrOverQuota is returned when a charge would exceed the user's limit.
var ErrOverQuota = errors.New("quota: disk quota exceeded")

// DefaultWriteSlowdown is the multiplicative cost of quota bookkeeping
// on the disk write path, calibrated to the paper's Figure 6 worst
// case (~50% bandwidth loss under a single sequential write stream).
const DefaultWriteSlowdown = 1.9

// Manager tracks per-user limits and usage.
type Manager struct {
	mu       sync.RWMutex
	enabled  bool
	limits   map[string]int64
	used     map[string]int64
	slowdown float64

	// Admission counters (atomic: read lock-free by exposition).
	charges atomic.Int64
	rejects atomic.Int64
}

// Stats returns cumulative charge admissions and rejections.
func (m *Manager) Stats() (charges, rejects int64) {
	return m.charges.Load(), m.rejects.Load()
}

// NewManager returns a quota manager; enabled selects whether limits
// are enforced and write overhead charged.
func NewManager(enabled bool) *Manager {
	return &Manager{
		enabled:  enabled,
		limits:   make(map[string]int64),
		used:     make(map[string]int64),
		slowdown: DefaultWriteSlowdown,
	}
}

// Enabled reports whether quota enforcement is on.
func (m *Manager) Enabled() bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.enabled
}

// SetEnabled toggles enforcement at runtime (the Figure 6 experiment
// sweeps this).
func (m *Manager) SetEnabled(on bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.enabled = on
}

// WriteSlowdown returns the multiplicative disk-write cost factor the
// simulated filesystem applies while quotas are enabled (1.0 when
// disabled: reads are never affected, matching the paper).
func (m *Manager) WriteSlowdown() float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if !m.enabled {
		return 1.0
	}
	return m.slowdown
}

// SetWriteSlowdown overrides the bookkeeping cost factor.
func (m *Manager) SetWriteSlowdown(f float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f < 1 {
		f = 1
	}
	m.slowdown = f
}

// AddLimit raises user's quota limit by n bytes (lot creation under
// quota-backed enforcement).
func (m *Manager) AddLimit(user string, n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.limits[user] += n
}

// ReduceLimit lowers user's limit by n bytes, clamping at zero (lot
// release).
func (m *Manager) ReduceLimit(user string, n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.limits[user] -= n
	if m.limits[user] < 0 {
		m.limits[user] = 0
	}
}

// Limit returns user's current limit.
func (m *Manager) Limit(user string) int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.limits[user]
}

// Used returns user's accounted usage.
func (m *Manager) Used(user string) int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.used[user]
}

// Charge accounts n bytes against user, failing with ErrOverQuota if
// the limit would be exceeded while enforcement is enabled. Note the
// per-user granularity: the charge is not tied to any particular lot.
func (m *Manager) Charge(user string, n int64) error {
	if n < 0 {
		m.rejects.Add(1)
		return fmt.Errorf("quota: negative charge %d", n)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.enabled && m.used[user]+n > m.limits[user] {
		m.rejects.Add(1)
		return ErrOverQuota
	}
	m.used[user] += n
	m.charges.Add(1)
	return nil
}

// Release returns n bytes of user's usage (file removal).
func (m *Manager) Release(user string, n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.used[user] -= n
	if m.used[user] < 0 {
		m.used[user] = 0
	}
}
