package quota

import (
	"testing"
	"testing/quick"
)

func TestChargeWithinLimit(t *testing.T) {
	m := NewManager(true)
	m.AddLimit("john", 100)
	if err := m.Charge("john", 60); err != nil {
		t.Fatalf("Charge(60): %v", err)
	}
	if err := m.Charge("john", 40); err != nil {
		t.Fatalf("Charge(40): %v", err)
	}
	if err := m.Charge("john", 1); err != ErrOverQuota {
		t.Errorf("Charge over limit = %v, want ErrOverQuota", err)
	}
	if m.Used("john") != 100 {
		t.Errorf("Used = %d, want 100", m.Used("john"))
	}
}

func TestChargeDisabled(t *testing.T) {
	m := NewManager(false)
	if err := m.Charge("john", 1<<40); err != nil {
		t.Errorf("disabled quota rejected charge: %v", err)
	}
	if m.WriteSlowdown() != 1.0 {
		t.Errorf("disabled WriteSlowdown = %v, want 1.0", m.WriteSlowdown())
	}
}

func TestWriteSlowdown(t *testing.T) {
	m := NewManager(true)
	if m.WriteSlowdown() != DefaultWriteSlowdown {
		t.Errorf("WriteSlowdown = %v, want %v", m.WriteSlowdown(), DefaultWriteSlowdown)
	}
	m.SetWriteSlowdown(2.5)
	if m.WriteSlowdown() != 2.5 {
		t.Errorf("WriteSlowdown = %v, want 2.5", m.WriteSlowdown())
	}
	m.SetWriteSlowdown(0.1) // clamps at 1
	if m.WriteSlowdown() != 1.0 {
		t.Errorf("WriteSlowdown = %v, want clamp to 1", m.WriteSlowdown())
	}
	m.SetEnabled(false)
	if m.WriteSlowdown() != 1.0 {
		t.Errorf("disabled WriteSlowdown = %v", m.WriteSlowdown())
	}
}

func TestRelease(t *testing.T) {
	m := NewManager(true)
	m.AddLimit("u", 100)
	m.Charge("u", 80)
	m.Release("u", 30)
	if m.Used("u") != 50 {
		t.Errorf("Used = %d, want 50", m.Used("u"))
	}
	m.Release("u", 1000) // clamps at zero
	if m.Used("u") != 0 {
		t.Errorf("Used = %d, want 0", m.Used("u"))
	}
}

func TestReduceLimit(t *testing.T) {
	m := NewManager(true)
	m.AddLimit("u", 100)
	m.ReduceLimit("u", 40)
	if m.Limit("u") != 60 {
		t.Errorf("Limit = %d, want 60", m.Limit("u"))
	}
	m.ReduceLimit("u", 1000)
	if m.Limit("u") != 0 {
		t.Errorf("Limit = %d, want 0", m.Limit("u"))
	}
}

func TestNegativeCharge(t *testing.T) {
	m := NewManager(true)
	if err := m.Charge("u", -5); err == nil {
		t.Error("negative charge accepted")
	}
}

func TestPerUserIsolation(t *testing.T) {
	m := NewManager(true)
	m.AddLimit("a", 10)
	m.AddLimit("b", 20)
	if err := m.Charge("a", 10); err != nil {
		t.Fatal(err)
	}
	if err := m.Charge("b", 20); err != nil {
		t.Fatalf("b's quota affected by a: %v", err)
	}
}

// Property: used never exceeds limit while enabled.
func TestQuickUsedBounded(t *testing.T) {
	f := func(limit uint16, charges []uint8) bool {
		m := NewManager(true)
		m.AddLimit("u", int64(limit))
		for _, c := range charges {
			m.Charge("u", int64(c))
			if m.Used("u") > m.Limit("u") {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
