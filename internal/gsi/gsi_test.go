package gsi

import (
	"strings"
	"testing"
	"time"
)

func TestIssueVerify(t *testing.T) {
	ca := NewCA("/O=Grid/CN=TestCA", []byte("secret"))
	cred := ca.Issue("/O=Grid/OU=wisc.edu/CN=john", time.Hour, false)
	if err := ca.Verify(cred); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if cred.Issuer != ca.Name() {
		t.Errorf("Issuer = %q", cred.Issuer)
	}
}

func TestTokenRoundTrip(t *testing.T) {
	ca := NewCA("ca", []byte("secret"))
	cred := ca.Issue("/CN=alice", time.Hour, true)
	tok := cred.Token()
	parsed, err := ParseToken(tok)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Subject != cred.Subject || !parsed.Delegate {
		t.Errorf("parsed = %+v", parsed)
	}
	if err := ca.Verify(parsed); err != nil {
		t.Errorf("Verify parsed: %v", err)
	}
}

func TestVerifierAuthenticate(t *testing.T) {
	ca := NewCA("ca", []byte("secret"))
	v := NewVerifier(ca)
	tok := ca.Issue("/O=Grid/CN=john", time.Hour, false).Token()
	user, err := v.Authenticate(tok)
	if err != nil || user != "john" {
		t.Errorf("Authenticate = %q, %v; want john", user, err)
	}
}

func TestExpiredCredential(t *testing.T) {
	ca := NewCA("ca", []byte("secret"))
	cred := ca.Issue("/CN=old", -time.Minute, false)
	if err := ca.Verify(cred); err != ErrExpired {
		t.Errorf("Verify expired = %v, want ErrExpired", err)
	}
}

func TestWrongCA(t *testing.T) {
	ca1 := NewCA("ca1", []byte("secret1"))
	ca2 := NewCA("ca2", []byte("secret2"))
	cred := ca1.Issue("/CN=x", time.Hour, false)
	if err := ca2.Verify(cred); err != ErrWrongCA {
		t.Errorf("Verify foreign = %v, want ErrWrongCA", err)
	}
}

func TestForgedSignature(t *testing.T) {
	ca := NewCA("ca", []byte("secret"))
	forger := NewCA("ca", []byte("wrong-key")) // same name, different key
	cred := forger.Issue("/CN=mallory", time.Hour, false)
	if err := ca.Verify(cred); err != ErrBadSig {
		t.Errorf("Verify forged = %v, want ErrBadSig", err)
	}
}

func TestTamperedToken(t *testing.T) {
	ca := NewCA("ca", []byte("secret"))
	tok := ca.Issue("/CN=john", time.Hour, false).Token()
	// Re-encode with an altered subject.
	parsed, _ := ParseToken(tok)
	parsed.Subject = "/CN=root"
	if err := ca.Verify(parsed); err != ErrBadSig {
		t.Errorf("Verify tampered = %v, want ErrBadSig", err)
	}
}

func TestParseTokenErrors(t *testing.T) {
	// "aGVsbG8=" decodes to "hello": wrong field count.
	for _, tok := range []string{"", "!!!not-base64!!!", "aGVsbG8="} {
		if _, err := ParseToken(tok); err == nil {
			t.Errorf("ParseToken(%q) did not fail", tok)
		}
	}
}

func TestCommonName(t *testing.T) {
	cases := map[string]string{
		"/O=Grid/OU=wisc.edu/CN=john": "john",
		"/CN=alice":                   "alice",
		"bare-name":                   "bare-name",
	}
	for subj, want := range cases {
		if got := CommonName(subj); got != want {
			t.Errorf("CommonName(%q) = %q, want %q", subj, got, want)
		}
	}
}

func TestTokenIsBase64(t *testing.T) {
	ca := NewCA("ca", []byte("secret"))
	tok := ca.Issue("/CN=x", time.Hour, false).Token()
	if strings.ContainsAny(tok, " \n|") {
		t.Errorf("token contains raw separators: %q", tok)
	}
}
