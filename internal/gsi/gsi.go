// Package gsi simulates the Grid Security Infrastructure (Foster et
// al., CCS 1998) used by NeST for authentication over Chirp and
// GridFTP. Real GSI uses X.509 proxy certificates; this stand-in
// preserves the trust structure — a certificate authority issues
// credentials naming a subject, services verify them against the CA,
// and contexts are established by a token exchange on the control
// channel — using HMAC-SHA256 in place of public-key signatures.
package gsi

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/base64"
	"errors"
	"fmt"
	"strings"
	"time"
)

// Errors returned by credential verification.
var (
	ErrBadToken = errors.New("gsi: malformed token")
	ErrBadSig   = errors.New("gsi: signature verification failed")
	ErrExpired  = errors.New("gsi: credential expired")
	ErrWrongCA  = errors.New("gsi: credential issued by unknown CA")
)

// Anonymous is the identity of unauthenticated clients; protocols
// without GSI support (HTTP, FTP, NFS in NeST 0.9) are mapped to it.
const Anonymous = "anonymous"

// Credential names a subject and its validity window, signed by a CA.
type Credential struct {
	Subject  string // e.g. "/O=Grid/OU=wisc.edu/CN=john"
	Issuer   string
	Expires  time.Time
	Delegate bool // proxy credential usable for third-party transfers
	sig      []byte
}

// CA is a certificate authority: it issues and verifies credentials.
type CA struct {
	name string
	key  []byte
}

// NewCA creates an authority with the given name and secret key.
func NewCA(name string, key []byte) *CA {
	k := make([]byte, len(key))
	copy(k, key)
	return &CA{name: name, key: k}
}

// Name returns the CA's distinguished name.
func (ca *CA) Name() string { return ca.name }

// Issue signs a credential for subject valid for ttl.
func (ca *CA) Issue(subject string, ttl time.Duration, delegate bool) *Credential {
	c := &Credential{
		Subject:  subject,
		Issuer:   ca.name,
		Expires:  time.Now().Add(ttl),
		Delegate: delegate,
	}
	c.sig = ca.sign(c)
	return c
}

func (ca *CA) sign(c *Credential) []byte {
	m := hmac.New(sha256.New, ca.key)
	fmt.Fprintf(m, "%s|%s|%d|%t", c.Subject, c.Issuer, c.Expires.UnixNano(), c.Delegate)
	return m.Sum(nil)
}

// Verify checks a credential's signature, issuer and expiry.
func (ca *CA) Verify(c *Credential) error {
	if c.Issuer != ca.name {
		return ErrWrongCA
	}
	if !hmac.Equal(c.sig, ca.sign(c)) {
		return ErrBadSig
	}
	if time.Now().After(c.Expires) {
		return ErrExpired
	}
	return nil
}

// Token serializes the credential for transmission on a control
// channel (the ADAT exchange in GridFTP, the auth line in Chirp).
func (c *Credential) Token() string {
	raw := fmt.Sprintf("%s|%s|%d|%t|%s",
		c.Subject, c.Issuer, c.Expires.UnixNano(), c.Delegate,
		base64.StdEncoding.EncodeToString(c.sig))
	return base64.StdEncoding.EncodeToString([]byte(raw))
}

// ParseToken reconstructs a credential from its wire token. The result
// must still be verified against the CA.
func ParseToken(tok string) (*Credential, error) {
	raw, err := base64.StdEncoding.DecodeString(strings.TrimSpace(tok))
	if err != nil {
		return nil, ErrBadToken
	}
	parts := strings.Split(string(raw), "|")
	if len(parts) != 5 {
		return nil, ErrBadToken
	}
	var expires int64
	if _, err := fmt.Sscanf(parts[2], "%d", &expires); err != nil {
		return nil, ErrBadToken
	}
	sig, err := base64.StdEncoding.DecodeString(parts[4])
	if err != nil {
		return nil, ErrBadToken
	}
	return &Credential{
		Subject:  parts[0],
		Issuer:   parts[1],
		Expires:  time.Unix(0, expires),
		Delegate: parts[3] == "true",
		sig:      sig,
	}, nil
}

// CommonName extracts the CN component of a subject name, used as the
// NeST account name ("/O=Grid/CN=john" -> "john"). Subjects without a
// CN map to themselves.
func CommonName(subject string) string {
	for _, part := range strings.Split(subject, "/") {
		if strings.HasPrefix(part, "CN=") {
			return strings.TrimPrefix(part, "CN=")
		}
	}
	return subject
}

// Verifier authenticates wire tokens for a service that trusts one CA.
type Verifier struct {
	ca *CA
}

// NewVerifier returns a verifier trusting ca.
func NewVerifier(ca *CA) *Verifier { return &Verifier{ca: ca} }

// Authenticate parses and verifies tok, returning the authenticated
// account name (the credential's CN).
func (v *Verifier) Authenticate(tok string) (string, error) {
	c, err := ParseToken(tok)
	if err != nil {
		return "", err
	}
	if err := v.ca.Verify(c); err != nil {
		return "", err
	}
	return CommonName(c.Subject), nil
}
