// Package sunrpc implements the ONC/Sun RPC protocol (RFC 1057) over
// TCP with record marking, as the substrate for NeST's NFS and MOUNT
// services. It supports AUTH_NULL and AUTH_UNIX credentials.
package sunrpc

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"nest/internal/xdr"
)

// RPC message types.
const (
	msgCall  = 0
	msgReply = 1
)

// Reply status.
const (
	replyAccepted = 0
	replyDenied   = 1
)

// Accept status.
const (
	acceptSuccess      = 0
	acceptProgUnavail  = 1
	acceptProgMismatch = 2
	acceptProcUnavail  = 3
	acceptGarbageArgs  = 4
	acceptSystemErr    = 5
)

// Auth flavors.
const (
	AuthNull = 0
	AuthUnix = 1
)

// MaxRecord bounds a single RPC record (64 KB payload + headers).
const MaxRecord = 1 << 20

// Errors returned by the client for non-success accept states.
var (
	ErrProgUnavail = errors.New("sunrpc: program unavailable")
	ErrProcUnavail = errors.New("sunrpc: procedure unavailable")
	ErrGarbageArgs = errors.New("sunrpc: garbage arguments")
	ErrSystemErr   = errors.New("sunrpc: system error")
	ErrDenied      = errors.New("sunrpc: call denied")
)

// Cred carries the caller's credentials as presented on the wire.
type Cred struct {
	Flavor  uint32
	Machine string // AUTH_UNIX machine name
	UID     uint32
	GID     uint32
}

// Call is a decoded RPC call.
type Call struct {
	XID  uint32
	Prog uint32
	Vers uint32
	Proc uint32
	Cred Cred
	Args *xdr.Decoder
}

// Handler executes one procedure, encoding results into reply.
// Returning an error produces a SYSTEM_ERR accept status.
type Handler func(call *Call, reply *xdr.Encoder) error

// Server dispatches RPC calls to registered program handlers.
type Server struct {
	mu       sync.Mutex
	programs map[progVers]Handler
	ln       net.Listener
	closed   atomic.Bool
	wg       sync.WaitGroup
}

type progVers struct {
	prog, vers uint32
}

// NewServer returns a server with no registered programs.
func NewServer() *Server {
	return &Server{programs: make(map[progVers]Handler)}
}

// Register installs handler for (program, version).
func (s *Server) Register(prog, vers uint32, handler Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.programs[progVers{prog, vers}] = handler
}

// Serve accepts connections on ln until Close. Each connection is
// served by its own goroutine; calls on one connection execute
// sequentially in arrival order.
func (s *Server) Serve(ln net.Listener) {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

// Close stops accepting and waits for in-flight connections.
func (s *Server) Close() {
	if s.closed.Swap(true) {
		return
	}
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
}

func (s *Server) serveConn(conn net.Conn) {
	for {
		rec, err := xdr.ReadRecord(conn, MaxRecord)
		if err != nil {
			return
		}
		resp, err := s.dispatch(rec)
		if err != nil {
			return
		}
		if err := xdr.WriteRecord(conn, resp); err != nil {
			return
		}
	}
}

// ParseCall decodes one RPC call record. A nil call with a non-nil
// rejection record is returned for protocol-level rejections (RPC
// version mismatch).
func ParseCall(rec []byte) (call *Call, rejection []byte, err error) {
	d := xdr.NewDecoder(rec)
	xid, err := d.Uint32()
	if err != nil {
		return nil, nil, err
	}
	mtype, err := d.Uint32()
	if err != nil {
		return nil, nil, err
	}
	if mtype != msgCall {
		return nil, nil, fmt.Errorf("sunrpc: unexpected message type %d", mtype)
	}
	rpcvers, err := d.Uint32()
	if err != nil {
		return nil, nil, err
	}
	if rpcvers != 2 {
		return nil, denied(xid), nil
	}
	prog, err := d.Uint32()
	if err != nil {
		return nil, nil, err
	}
	vers, err := d.Uint32()
	if err != nil {
		return nil, nil, err
	}
	proc, err := d.Uint32()
	if err != nil {
		return nil, nil, err
	}
	cred, err := decodeAuth(d)
	if err != nil {
		return nil, nil, err
	}
	if _, err := decodeAuth(d); err != nil { // verifier, ignored
		return nil, nil, err
	}
	return &Call{XID: xid, Prog: prog, Vers: vers, Proc: proc, Cred: cred, Args: d}, nil, nil
}

// Reply-record builders for servers that drive RPC records directly
// (NeST's NFS protocol handler).

// SuccessReply frames results as an accepted, successful reply.
func SuccessReply(xid uint32, results []byte) []byte {
	return accepted(xid, acceptSuccess, results)
}

// ProgUnavailReply frames a PROG_UNAVAIL rejection.
func ProgUnavailReply(xid uint32) []byte { return accepted(xid, acceptProgUnavail, nil) }

// ProcUnavailReply frames a PROC_UNAVAIL rejection.
func ProcUnavailReply(xid uint32) []byte { return accepted(xid, acceptProcUnavail, nil) }

// GarbageArgsReply frames a GARBAGE_ARGS rejection.
func GarbageArgsReply(xid uint32) []byte { return accepted(xid, acceptGarbageArgs, nil) }

// SystemErrReply frames a SYSTEM_ERR rejection.
func SystemErrReply(xid uint32) []byte { return accepted(xid, acceptSystemErr, nil) }

// dispatch decodes one call record and produces the reply record.
func (s *Server) dispatch(rec []byte) ([]byte, error) {
	call, rejection, err := ParseCall(rec)
	if err != nil {
		return nil, err
	}
	if rejection != nil {
		return rejection, nil
	}
	s.mu.Lock()
	handler, ok := s.programs[progVers{call.Prog, call.Vers}]
	s.mu.Unlock()
	if !ok {
		return ProgUnavailReply(call.XID), nil
	}
	reply := xdr.NewEncoder()
	if err := handler(call, reply); err != nil {
		if errors.Is(err, ErrProcUnavail) {
			return ProcUnavailReply(call.XID), nil
		}
		if errors.Is(err, ErrGarbageArgs) {
			return GarbageArgsReply(call.XID), nil
		}
		return SystemErrReply(call.XID), nil
	}
	return SuccessReply(call.XID, reply.Bytes()), nil
}

// decodeAuth reads the credential (flavor + opaque body). The verifier
// is left for the caller.
func decodeAuth(d *xdr.Decoder) (Cred, error) {
	var c Cred
	flavor, err := d.Uint32()
	if err != nil {
		return c, err
	}
	c.Flavor = flavor
	body, err := d.Opaque(400)
	if err != nil {
		return c, err
	}
	if flavor == AuthUnix {
		bd := xdr.NewDecoder(body)
		if _, err := bd.Uint32(); err != nil { // stamp
			return c, err
		}
		if c.Machine, err = bd.String(255); err != nil {
			return c, err
		}
		if c.UID, err = bd.Uint32(); err != nil {
			return c, err
		}
		if c.GID, err = bd.Uint32(); err != nil {
			return c, err
		}
		// auxiliary gids ignored
	}
	return c, nil
}

func replyHeader(xid uint32) *xdr.Encoder {
	e := xdr.NewEncoder()
	e.Uint32(xid)
	e.Uint32(msgReply)
	return e
}

func accepted(xid uint32, stat uint32, results []byte) []byte {
	e := replyHeader(xid)
	e.Uint32(replyAccepted)
	e.Uint32(AuthNull) // verifier flavor
	e.Uint32(0)        // verifier length
	e.Uint32(stat)
	e.FixedOpaque(results)
	return e.Bytes()
}

func denied(xid uint32) []byte {
	e := replyHeader(xid)
	e.Uint32(replyDenied)
	e.Uint32(0) // RPC_MISMATCH
	e.Uint32(2) // low
	e.Uint32(2) // high
	return e.Bytes()
}

// Client issues RPC calls over a single TCP connection. It is safe for
// sequential use; calls are synchronous.
type Client struct {
	mu   sync.Mutex
	conn io.ReadWriteCloser
	xid  uint32
	Cred Cred // credentials attached to every call
}

// NewClient wraps an established connection.
func NewClient(conn io.ReadWriteCloser) *Client {
	return &Client{conn: conn, xid: 1, Cred: Cred{Flavor: AuthNull}}
}

// Dial connects to addr and returns a client.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// Close releases the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

// Call invokes (prog, vers, proc) with encoded args and returns a
// decoder over the results.
func (c *Client) Call(prog, vers, proc uint32, args []byte) (*xdr.Decoder, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.xid++
	e := xdr.NewEncoder()
	e.Uint32(c.xid)
	e.Uint32(msgCall)
	e.Uint32(2) // RPC version
	e.Uint32(prog)
	e.Uint32(vers)
	e.Uint32(proc)
	encodeAuth(e, c.Cred)
	e.Uint32(AuthNull) // verifier
	e.Uint32(0)
	e.FixedOpaque(args)
	if err := xdr.WriteRecord(c.conn, e.Bytes()); err != nil {
		return nil, err
	}
	rec, err := xdr.ReadRecord(c.conn, MaxRecord)
	if err != nil {
		return nil, err
	}
	d := xdr.NewDecoder(rec)
	xid, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if xid != c.xid {
		return nil, fmt.Errorf("sunrpc: reply xid %d, want %d", xid, c.xid)
	}
	if mtype, err := d.Uint32(); err != nil || mtype != msgReply {
		return nil, fmt.Errorf("sunrpc: bad reply message type (%v)", err)
	}
	stat, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if stat == replyDenied {
		return nil, ErrDenied
	}
	if _, err := d.Uint32(); err != nil { // verifier flavor
		return nil, err
	}
	if _, err := d.Opaque(400); err != nil { // verifier body
		return nil, err
	}
	astat, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	switch astat {
	case acceptSuccess:
		return d, nil
	case acceptProgUnavail, acceptProgMismatch:
		return nil, ErrProgUnavail
	case acceptProcUnavail:
		return nil, ErrProcUnavail
	case acceptGarbageArgs:
		return nil, ErrGarbageArgs
	}
	return nil, ErrSystemErr
}

func encodeAuth(e *xdr.Encoder, c Cred) {
	e.Uint32(c.Flavor)
	switch c.Flavor {
	case AuthUnix:
		body := xdr.NewEncoder()
		body.Uint32(0) // stamp
		body.String(c.Machine)
		body.Uint32(c.UID)
		body.Uint32(c.GID)
		body.Uint32(0) // no auxiliary gids
		e.Opaque(body.Bytes())
	default:
		e.Uint32(0) // empty body
	}
}
