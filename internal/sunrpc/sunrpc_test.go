package sunrpc

import (
	"net"
	"testing"

	"nest/internal/xdr"
)

// startServer runs a test RPC server with an echo-ish program 200000.
func startServer(t *testing.T) (addr string, srv *Server) {
	t.Helper()
	srv = NewServer()
	// proc 1: add two uint32s. proc 2: echo string. proc 3: report cred.
	srv.Register(200000, 1, func(call *Call, reply *xdr.Encoder) error {
		switch call.Proc {
		case 1:
			a, err := call.Args.Uint32()
			if err != nil {
				return ErrGarbageArgs
			}
			b, err := call.Args.Uint32()
			if err != nil {
				return ErrGarbageArgs
			}
			reply.Uint32(a + b)
			return nil
		case 2:
			s, err := call.Args.String(1024)
			if err != nil {
				return ErrGarbageArgs
			}
			reply.String(s)
			return nil
		case 3:
			reply.Uint32(call.Cred.Flavor)
			reply.String(call.Cred.Machine)
			reply.Uint32(call.Cred.UID)
			return nil
		}
		return ErrProcUnavail
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Close)
	return ln.Addr().String(), srv
}

func TestCallAdd(t *testing.T) {
	addr, _ := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	args := xdr.NewEncoder()
	args.Uint32(3)
	args.Uint32(4)
	d, err := c.Call(200000, 1, 1, args.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if sum, err := d.Uint32(); err != nil || sum != 7 {
		t.Errorf("sum = %d, %v; want 7", sum, err)
	}
}

func TestCallEchoRepeated(t *testing.T) {
	addr, _ := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i, s := range []string{"", "a", "hello world", string(make([]byte, 1000))} {
		args := xdr.NewEncoder()
		args.String(s)
		d, err := c.Call(200000, 1, 2, args.Bytes())
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if got, err := d.String(0); err != nil || got != s {
			t.Errorf("call %d: echo = %q, %v", i, got, err)
		}
	}
}

func TestAuthUnix(t *testing.T) {
	addr, _ := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Cred = Cred{Flavor: AuthUnix, Machine: "client1", UID: 501, GID: 100}
	d, err := c.Call(200000, 1, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	flavor, _ := d.Uint32()
	machine, _ := d.String(0)
	uid, _ := d.Uint32()
	if flavor != AuthUnix || machine != "client1" || uid != 501 {
		t.Errorf("cred = %d/%s/%d, want 1/client1/501", flavor, machine, uid)
	}
}

func TestProcUnavail(t *testing.T) {
	addr, _ := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(200000, 1, 99, nil); err != ErrProcUnavail {
		t.Errorf("unknown proc error = %v, want ErrProcUnavail", err)
	}
}

func TestProgUnavail(t *testing.T) {
	addr, _ := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(999999, 1, 1, nil); err != ErrProgUnavail {
		t.Errorf("unknown prog error = %v, want ErrProgUnavail", err)
	}
	if _, err := c.Call(200000, 9, 1, nil); err != ErrProgUnavail {
		t.Errorf("unknown version error = %v, want ErrProgUnavail", err)
	}
}

func TestGarbageArgs(t *testing.T) {
	addr, _ := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(200000, 1, 1, []byte{0, 0, 0, 1}); err != ErrGarbageArgs {
		t.Errorf("short args error = %v, want ErrGarbageArgs", err)
	}
}

func TestConcurrentConnections(t *testing.T) {
	addr, _ := startServer(t)
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		i := i
		go func() {
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < 20; j++ {
				args := xdr.NewEncoder()
				args.Uint32(uint32(i))
				args.Uint32(uint32(j))
				d, err := c.Call(200000, 1, 1, args.Bytes())
				if err != nil {
					errs <- err
					return
				}
				if sum, _ := d.Uint32(); sum != uint32(i+j) {
					errs <- ErrSystemErr
					return
				}
			}
			errs <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
