// Package lots implements NeST's storage-space guarantees (paper §5).
// A lot is defined by four characteristics: owner, capacity, duration
// and files. When a lot's duration expires its files are not deleted;
// the lot becomes *best-effort* and its space may be reclaimed later
// to admit a new lot. Files may span multiple lots when they do not
// fit in one.
//
// Two enforcement modes mirror the paper's discussion:
//
//   - QuotaBacked delegates to the kernel quota subsystem: lot
//     creation raises the owner's user quota. It is simple and covers
//     direct (non-NeST) filesystem access, but accounts per user, so a
//     user may overfill one lot and then be unable to fill another to
//     capacity.
//   - NeSTManaged accounts writes against individual lots inside NeST,
//     distinguishing lots correctly at the cost of monitoring write
//     operations.
package lots

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nest/internal/quota"
	"nest/internal/sim"
)

// EnforcementMode selects how lot capacity is policed.
type EnforcementMode int

// Enforcement modes.
const (
	QuotaBacked EnforcementMode = iota
	NeSTManaged
)

func (m EnforcementMode) String() string {
	if m == NeSTManaged {
		return "nest-managed"
	}
	return "quota-backed"
}

// Errors reported by the lot manager.
var (
	ErrNoSpace  = errors.New("lots: insufficient guaranteed space")
	ErrNoLot    = errors.New("lots: user holds no usable lot")
	ErrNotFound = errors.New("lots: no such lot")
	ErrNotOwner = errors.New("lots: not the lot owner")
	ErrLotFull  = errors.New("lots: lot capacity exhausted")
)

// Lot is one storage guarantee.
type Lot struct {
	ID         string
	Owner      string
	Capacity   int64
	Used       int64
	Created    time.Duration
	Expires    time.Duration
	BestEffort bool             // duration elapsed; space reclaimable
	Files      map[string]int64 // path -> bytes charged to this lot
	// Members may write into the lot (group lots — the paper's "next
	// release" feature). Only the owner releases, renews or edits
	// membership.
	Members map[string]bool
}

// usableBy reports whether user may charge writes to the lot.
func (l *Lot) usableBy(user string) bool {
	return l.Owner == user || l.Members[user]
}

// Info is a copyable snapshot of a lot.
type Info struct {
	ID         string
	Owner      string
	Capacity   int64
	Used       int64
	Expires    time.Duration
	BestEffort bool
	Files      []string
	Members    []string
}

// ReclaimPolicy orders best-effort lots for reclamation.
type ReclaimPolicy int

// Reclamation policies for best-effort space (paper §5: "currently
// investigating different selection policies").
const (
	// ReclaimOldestExpired victimizes the lot whose guarantee lapsed
	// longest ago.
	ReclaimOldestExpired ReclaimPolicy = iota
	// ReclaimLargest victimizes the biggest best-effort lot first,
	// minimizing the number of broken guarantees.
	ReclaimLargest
)

// Manager tracks all lots on one appliance.
type Manager struct {
	clock   sim.Clock
	mode    EnforcementMode
	quota   *quota.Manager
	policy  ReclaimPolicy
	mu      sync.RWMutex
	total   int64 // guaranteeable bytes
	lots    map[string]*Lot
	order   []string // creation order of lot IDs
	nextID  int
	removed func(lot *Lot) // callback when a lot is reclaimed

	// Admission counters (atomic: recorded on the write hot path,
	// read lock-free by the observability exposition).
	creates       atomic.Int64
	createRejects atomic.Int64
	chargeAdmits  atomic.Int64
	chargeRejects atomic.Int64
}

// Stats is a snapshot of lot admission activity.
type Stats struct {
	Creates       int64 // lots granted
	CreateRejects int64 // lot requests denied (no guaranteeable space)
	ChargeAdmits  int64 // write charges admitted against a guarantee
	ChargeRejects int64 // write charges rejected (lot full, over quota, no lot)
}

// Stats returns cumulative admission counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Creates:       m.creates.Load(),
		CreateRejects: m.createRejects.Load(),
		ChargeAdmits:  m.chargeAdmits.Load(),
		ChargeRejects: m.chargeRejects.Load(),
	}
}

// NewManager creates a lot manager over total guaranteeable bytes.
// qm is consulted only in QuotaBacked mode and may be nil otherwise.
func NewManager(clock sim.Clock, total int64, mode EnforcementMode, qm *quota.Manager) *Manager {
	return &Manager{
		clock: clock,
		mode:  mode,
		quota: qm,
		total: total,
		lots:  make(map[string]*Lot),
	}
}

// Mode returns the enforcement mode.
func (m *Manager) Mode() EnforcementMode { return m.mode }

// SetReclaimPolicy selects the best-effort reclamation order.
func (m *Manager) SetReclaimPolicy(p ReclaimPolicy) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.policy = p
}

// OnReclaim registers a callback invoked (without the lock held) with
// each lot whose space is reclaimed; the storage manager uses it to
// delete the victim's files.
func (m *Manager) OnReclaim(fn func(lot *Lot)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.removed = fn
}

// sweepLocked flips expired lots to best-effort.
func (m *Manager) sweepLocked() {
	now := m.clock.Now()
	for _, l := range m.lots {
		if !l.BestEffort && now >= l.Expires {
			l.BestEffort = true
		}
	}
}

// needSweepLocked reports whether any active lot has expired. Safe
// under either lock mode: it only reads.
func (m *Manager) needSweepLocked() bool {
	now := m.clock.Now()
	for _, l := range m.lots {
		if !l.BestEffort && now >= l.Expires {
			return true
		}
	}
	return false
}

// rlockSwept acquires the read lock with expired lots already swept,
// upgrading to the write lock only when a sweep is actually due — the
// common case (no expiry since the last check) stays on the shared
// path. The caller must RUnlock.
func (m *Manager) rlockSwept() {
	for {
		m.mu.RLock()
		if !m.needSweepLocked() {
			return
		}
		m.mu.RUnlock()
		m.mu.Lock()
		m.sweepLocked()
		m.mu.Unlock()
	}
}

// guaranteedLocked sums the capacity of active (non best-effort) lots.
func (m *Manager) guaranteedLocked() int64 {
	var g int64
	for _, l := range m.lots {
		if !l.BestEffort {
			g += l.Capacity
		}
	}
	return g
}

// commitmentLocked is the space a new guarantee must fit around:
// active lots commit their full capacity, while best-effort lots
// commit only the bytes their surviving files still occupy (those
// files remain until reclaimed, paper §5). exclude omits one lot, for
// renewal.
func (m *Manager) commitmentLocked(exclude *Lot) int64 {
	var g int64
	for _, l := range m.lots {
		if l == exclude {
			continue
		}
		if l.BestEffort {
			g += l.Used
		} else {
			g += l.Capacity
		}
	}
	return g
}

// Create guarantees capacity bytes for owner for the given duration.
// If guaranteeable space is short, best-effort lots are reclaimed
// according to the reclamation policy; if that is not enough, Create
// fails with ErrNoSpace.
func (m *Manager) Create(owner string, capacity int64, duration time.Duration) (Info, error) {
	if capacity <= 0 {
		m.createRejects.Add(1)
		return Info{}, fmt.Errorf("lots: non-positive capacity %d", capacity)
	}
	m.mu.Lock()
	m.sweepLocked()
	var victims []*Lot
	for m.commitmentLocked(nil)+capacity > m.total {
		v := m.pickVictimLocked()
		if v == nil {
			m.mu.Unlock()
			m.createRejects.Add(1)
			return Info{}, ErrNoSpace
		}
		m.deleteLocked(v)
		victims = append(victims, v)
	}
	m.nextID++
	now := m.clock.Now()
	l := &Lot{
		ID:       fmt.Sprintf("lot%04d", m.nextID),
		Owner:    owner,
		Capacity: capacity,
		Created:  now,
		Expires:  now + duration,
		Files:    make(map[string]int64),
		Members:  make(map[string]bool),
	}
	m.lots[l.ID] = l
	m.order = append(m.order, l.ID)
	removed := m.removed
	// Snapshot while still locked: the lot is published in m.lots, so a
	// concurrent ChargeWrite may mutate Used/Files the moment mu drops.
	info := snapshot(l)
	m.mu.Unlock()

	if m.mode == QuotaBacked && m.quota != nil {
		m.quota.AddLimit(owner, capacity)
	}
	if removed != nil {
		for _, v := range victims {
			removed(v)
		}
	}
	m.creates.Add(1)
	return info, nil
}

// pickVictimLocked chooses the next best-effort lot to reclaim, or nil.
func (m *Manager) pickVictimLocked() *Lot {
	var candidates []*Lot
	for _, id := range m.order {
		if l, ok := m.lots[id]; ok && l.BestEffort {
			candidates = append(candidates, l)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	switch m.policy {
	case ReclaimLargest:
		sort.Slice(candidates, func(i, j int) bool {
			if candidates[i].Used != candidates[j].Used {
				return candidates[i].Used > candidates[j].Used
			}
			return candidates[i].Expires < candidates[j].Expires
		})
	default: // ReclaimOldestExpired
		sort.Slice(candidates, func(i, j int) bool {
			return candidates[i].Expires < candidates[j].Expires
		})
	}
	return candidates[0]
}

func (m *Manager) deleteLocked(l *Lot) {
	delete(m.lots, l.ID)
	for i, id := range m.order {
		if id == l.ID {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	if m.mode == QuotaBacked && m.quota != nil {
		// Lock ordering: quota has its own lock and never calls back.
		m.quota.ReduceLimit(l.Owner, l.Capacity)
	}
}

// Release terminates a lot; its space becomes available immediately.
// Files charged to the lot are not deleted (they were the owner's to
// keep), but their guarantee vanishes.
func (m *Manager) Release(owner, id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	l, ok := m.lots[id]
	if !ok {
		return ErrNotFound
	}
	if l.Owner != owner {
		return ErrNotOwner
	}
	m.deleteLocked(l)
	return nil
}

// Renew extends a lot's duration from now; expired (best-effort) lots
// are reactivated if guaranteeable space permits.
func (m *Manager) Renew(owner, id string, duration time.Duration) (Info, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked()
	l, ok := m.lots[id]
	if !ok {
		return Info{}, ErrNotFound
	}
	if l.Owner != owner {
		return Info{}, ErrNotOwner
	}
	if l.BestEffort {
		if m.commitmentLocked(l)+l.Capacity > m.total {
			return Info{}, ErrNoSpace
		}
		l.BestEffort = false
	}
	l.Expires = m.clock.Now() + duration
	return snapshot(l), nil
}

// AddMember grants user write access to the owner's lot (group lots).
func (m *Manager) AddMember(owner, id, user string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	l, ok := m.lots[id]
	if !ok {
		return ErrNotFound
	}
	if l.Owner != owner {
		return ErrNotOwner
	}
	l.Members[user] = true
	return nil
}

// RemoveMember revokes user's write access to the owner's lot.
func (m *Manager) RemoveMember(owner, id, user string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	l, ok := m.lots[id]
	if !ok {
		return ErrNotFound
	}
	if l.Owner != owner {
		return ErrNotOwner
	}
	delete(l.Members, user)
	return nil
}

// UsableBy reports whether user may charge writes to the lot (owner or
// member).
func (m *Manager) UsableBy(id, user string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	l, ok := m.lots[id]
	return ok && l.usableBy(user)
}

// Lookup returns a snapshot of one lot.
func (m *Manager) Lookup(id string) (Info, error) {
	m.rlockSwept()
	defer m.mu.RUnlock()
	l, ok := m.lots[id]
	if !ok {
		return Info{}, ErrNotFound
	}
	return snapshot(l), nil
}

// Owned returns snapshots of owner's lots in creation order.
func (m *Manager) Owned(owner string) []Info {
	m.rlockSwept()
	defer m.mu.RUnlock()
	var out []Info
	for _, id := range m.order {
		if l := m.lots[id]; l != nil && l.Owner == owner {
			out = append(out, snapshot(l))
		}
	}
	return out
}

// Guaranteed returns the bytes currently promised to active lots.
func (m *Manager) Guaranteed() int64 {
	m.rlockSwept()
	defer m.mu.RUnlock()
	return m.guaranteedLocked()
}

// Total returns the guaranteeable capacity.
func (m *Manager) Total() int64 { return m.total }

// ChargeWrite accounts n new bytes of path written by owner,
// preferring lotID when given. In NeSTManaged mode the charge spills
// across the owner's lots when one fills (file spanning); in
// QuotaBacked mode the kernel quota is charged per user.
func (m *Manager) ChargeWrite(owner, lotID, path string, n int64) error {
	if n == 0 {
		return nil
	}
	if m.mode == QuotaBacked {
		if m.quota == nil {
			return nil
		}
		if err := m.quota.Charge(owner, n); err != nil {
			m.chargeRejects.Add(1)
			return err
		}
		m.recordFile(owner, lotID, path, n)
		m.chargeAdmits.Add(1)
		return nil
	}
	if err := m.chargeManaged(owner, lotID, path, n); err != nil {
		m.chargeRejects.Add(1)
		return err
	}
	m.chargeAdmits.Add(1)
	return nil
}

// recordFile best-effort attributes bytes to a lot for reporting in
// quota-backed mode (enforcement happened in the quota layer).
func (m *Manager) recordFile(owner, lotID, path string, n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var l *Lot
	if lotID != "" {
		l = m.lots[lotID]
	} else {
		for _, id := range m.order {
			if cand := m.lots[id]; cand != nil && cand.Owner == owner {
				l = cand
				break
			}
		}
	}
	if l != nil {
		l.Used += n
		l.Files[path] += n
	}
}

func (m *Manager) chargeManaged(owner, lotID, path string, n int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked()
	// Build the candidate list: the named lot first, then the owner's
	// other usable lots in creation order (a file may span lots).
	var candidates []*Lot
	if lotID != "" {
		l, ok := m.lots[lotID]
		if !ok {
			return ErrNotFound
		}
		if !l.usableBy(owner) {
			return ErrNotOwner
		}
		candidates = append(candidates, l)
	}
	for _, id := range m.order {
		l := m.lots[id]
		if l == nil || !l.usableBy(owner) || (lotID != "" && l.ID == lotID) {
			continue
		}
		candidates = append(candidates, l)
	}
	if len(candidates) == 0 {
		return ErrNoLot
	}
	remaining := n
	type charge struct {
		l *Lot
		n int64
	}
	var plan []charge
	for _, l := range candidates {
		free := l.Capacity - l.Used
		if free <= 0 {
			continue
		}
		take := remaining
		if take > free {
			take = free
		}
		plan = append(plan, charge{l, take})
		remaining -= take
		if remaining == 0 {
			break
		}
	}
	if remaining > 0 {
		if lotID != "" && len(candidates) == 1 {
			return ErrLotFull
		}
		return ErrNoSpace
	}
	for _, c := range plan {
		c.l.Used += c.n
		c.l.Files[path] += c.n
	}
	return nil
}

// UnchargeFile releases up to n bytes charged to path, unwinding the
// most recently charged lots first (partial-put settlement).
func (m *Manager) UnchargeFile(owner, path string, n int64) {
	if n <= 0 {
		return
	}
	m.mu.Lock()
	remaining := n
	var freed int64
	for i := len(m.order) - 1; i >= 0 && remaining > 0; i-- {
		l := m.lots[m.order[i]]
		if l == nil {
			continue
		}
		have, ok := l.Files[path]
		if !ok {
			continue
		}
		take := remaining
		if take > have {
			take = have
		}
		l.Files[path] -= take
		if l.Files[path] == 0 {
			delete(l.Files, path)
		}
		l.Used -= take
		remaining -= take
		freed += take
	}
	m.mu.Unlock()
	if m.mode == QuotaBacked && m.quota != nil && freed > 0 {
		m.quota.Release(owner, freed)
	}
}

// ReleaseFile returns path's bytes to whichever lots carried them (and
// to the user quota in quota-backed mode).
func (m *Manager) ReleaseFile(owner, path string) {
	m.mu.Lock()
	var freed int64
	for _, l := range m.lots {
		if n, ok := l.Files[path]; ok {
			l.Used -= n
			freed += n
			delete(l.Files, path)
		}
	}
	m.mu.Unlock()
	if m.mode == QuotaBacked && m.quota != nil && freed > 0 {
		m.quota.Release(owner, freed)
	}
}

func snapshot(l *Lot) Info {
	files := make([]string, 0, len(l.Files))
	for f := range l.Files {
		files = append(files, f)
	}
	sort.Strings(files)
	members := make([]string, 0, len(l.Members))
	for u := range l.Members {
		members = append(members, u)
	}
	sort.Strings(members)
	return Info{
		ID:         l.ID,
		Owner:      l.Owner,
		Capacity:   l.Capacity,
		Used:       l.Used,
		Expires:    l.Expires,
		BestEffort: l.BestEffort,
		Files:      files,
		Members:    members,
	}
}
