package lots

import (
	"testing"
	"time"

	"nest/internal/quota"
	"nest/internal/sim"
)

const mb = sim.MB

// run executes fn under a virtual clock.
func run(t *testing.T, fn func(c *sim.VirtualClock)) {
	t.Helper()
	c := sim.NewVirtualClock()
	c.Run(func() { fn(c) })
}

func TestCreateAndLookup(t *testing.T) {
	run(t, func(c *sim.VirtualClock) {
		m := NewManager(c, 100*mb, NeSTManaged, nil)
		info, err := m.Create("john", 40*mb, time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		if info.Owner != "john" || info.Capacity != 40*mb || info.BestEffort {
			t.Errorf("info = %+v", info)
		}
		got, err := m.Lookup(info.ID)
		if err != nil || got.ID != info.ID {
			t.Errorf("Lookup = %+v, %v", got, err)
		}
		if m.Guaranteed() != 40*mb {
			t.Errorf("Guaranteed = %d", m.Guaranteed())
		}
	})
}

func TestCreateOverCapacity(t *testing.T) {
	run(t, func(c *sim.VirtualClock) {
		m := NewManager(c, 100*mb, NeSTManaged, nil)
		if _, err := m.Create("a", 80*mb, time.Hour); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Create("b", 30*mb, time.Hour); err != ErrNoSpace {
			t.Errorf("over-capacity create = %v, want ErrNoSpace", err)
		}
	})
}

func TestExpiryBecomesBestEffort(t *testing.T) {
	run(t, func(c *sim.VirtualClock) {
		m := NewManager(c, 100*mb, NeSTManaged, nil)
		info, _ := m.Create("john", 40*mb, time.Minute)
		c.Sleep(2 * time.Minute)
		got, err := m.Lookup(info.ID)
		if err != nil {
			t.Fatal(err)
		}
		if !got.BestEffort {
			t.Error("expired lot not best-effort")
		}
		// Best-effort capacity no longer counts as guaranteed.
		if m.Guaranteed() != 0 {
			t.Errorf("Guaranteed = %d, want 0", m.Guaranteed())
		}
	})
}

func TestBestEffortFilesRemainUntilReclaim(t *testing.T) {
	run(t, func(c *sim.VirtualClock) {
		m := NewManager(c, 100*mb, NeSTManaged, nil)
		var reclaimed []*Lot
		m.OnReclaim(func(l *Lot) { reclaimed = append(reclaimed, l) })
		info, _ := m.Create("john", 60*mb, time.Minute)
		if err := m.ChargeWrite("john", info.ID, "/f1", 10*mb); err != nil {
			t.Fatal(err)
		}
		c.Sleep(2 * time.Minute) // lot expires; files remain
		if len(reclaimed) != 0 {
			t.Fatal("files reclaimed before space was needed")
		}
		// A lot that fits around the surviving 10MB does not reclaim.
		if _, err := m.Create("mary", 80*mb, time.Hour); err != nil {
			t.Fatal(err)
		}
		if len(reclaimed) != 0 {
			t.Fatal("reclaimed although the new lot fit")
		}
		// One that does not fit triggers reclamation.
		if _, err := m.Create("mary", 15*mb, time.Hour); err != nil {
			t.Fatal(err)
		}
		if len(reclaimed) != 1 || reclaimed[0].ID != info.ID {
			t.Errorf("reclaimed = %v", reclaimed)
		}
		if _, err := m.Lookup(info.ID); err != ErrNotFound {
			t.Errorf("reclaimed lot still present: %v", err)
		}
	})
}

func TestReclaimPolicies(t *testing.T) {
	run(t, func(c *sim.VirtualClock) {
		m := NewManager(c, 100*mb, NeSTManaged, nil)
		var order []string
		m.OnReclaim(func(l *Lot) { order = append(order, l.ID) })
		small, _ := m.Create("a", 20*mb, time.Minute)
		m.ChargeWrite("a", small.ID, "/s", 15*mb)
		big, _ := m.Create("b", 60*mb, 2*time.Minute)
		m.ChargeWrite("b", big.ID, "/b", 50*mb)
		c.Sleep(3 * time.Minute) // both expire; small expired first
		m.SetReclaimPolicy(ReclaimLargest)
		// 65MB of best-effort files occupy the disk; a 50MB guarantee
		// needs 15MB back. Largest-first victimizes big despite small
		// having expired earlier.
		if _, err := m.Create("c", 50*mb, time.Hour); err != nil {
			t.Fatal(err)
		}
		if len(order) != 1 || order[0] != big.ID {
			t.Errorf("largest-first reclaimed %v, want [%s]", order, big.ID)
		}
	})
}

func TestReclaimOldestExpired(t *testing.T) {
	run(t, func(c *sim.VirtualClock) {
		m := NewManager(c, 100*mb, NeSTManaged, nil)
		var order []string
		m.OnReclaim(func(l *Lot) { order = append(order, l.ID) })
		first, _ := m.Create("a", 30*mb, time.Minute)
		m.ChargeWrite("a", first.ID, "/a", 20*mb)
		second, _ := m.Create("b", 30*mb, 2*time.Minute)
		m.ChargeWrite("b", second.ID, "/b", 20*mb)
		c.Sleep(3 * time.Minute)
		// 40MB of best-effort files; a 90MB guarantee reclaims both,
		// in expiry order.
		if _, err := m.Create("c", 90*mb, time.Hour); err != nil {
			t.Fatal(err)
		}
		if len(order) != 2 || order[0] != first.ID || order[1] != second.ID {
			t.Errorf("reclaim order = %v", order)
		}
	})
}

func TestRenew(t *testing.T) {
	run(t, func(c *sim.VirtualClock) {
		m := NewManager(c, 100*mb, NeSTManaged, nil)
		info, _ := m.Create("john", 40*mb, time.Minute)
		c.Sleep(2 * time.Minute)
		renewed, err := m.Renew("john", info.ID, time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		if renewed.BestEffort {
			t.Error("renewed lot still best-effort")
		}
		if renewed.Expires != c.Now()+time.Hour {
			t.Errorf("Expires = %v", renewed.Expires)
		}
		if _, err := m.Renew("mary", info.ID, time.Hour); err != ErrNotOwner {
			t.Errorf("foreign renew = %v, want ErrNotOwner", err)
		}
	})
}

func TestRenewBlockedWhenSpaceGone(t *testing.T) {
	run(t, func(c *sim.VirtualClock) {
		m := NewManager(c, 100*mb, NeSTManaged, nil)
		old, _ := m.Create("a", 60*mb, time.Minute)
		c.Sleep(2 * time.Minute)
		// The guarantee lapsed and an empty best-effort lot commits no
		// space, so a big new lot is admitted without reclamation...
		if _, err := m.Create("b", 70*mb, time.Hour); err != nil {
			t.Fatal(err)
		}
		// ...and the old lot can no longer reactivate its guarantee.
		if _, err := m.Renew("a", old.ID, time.Hour); err != ErrNoSpace {
			t.Errorf("renew without space = %v, want ErrNoSpace", err)
		}
	})
}

func TestChargeSpansLots(t *testing.T) {
	run(t, func(c *sim.VirtualClock) {
		m := NewManager(c, 100*mb, NeSTManaged, nil)
		l1, _ := m.Create("john", 30*mb, time.Hour)
		l2, _ := m.Create("john", 30*mb, time.Hour)
		// 50MB does not fit in one lot: spans both (paper §5).
		if err := m.ChargeWrite("john", "", "/big", 50*mb); err != nil {
			t.Fatal(err)
		}
		i1, _ := m.Lookup(l1.ID)
		i2, _ := m.Lookup(l2.ID)
		if i1.Used != 30*mb || i2.Used != 20*mb {
			t.Errorf("span: used = %d, %d", i1.Used, i2.Used)
		}
		if err := m.ChargeWrite("john", "", "/more", 20*mb); err != ErrNoSpace {
			t.Errorf("over guarantee = %v, want ErrNoSpace", err)
		}
	})
}

func TestChargeNamedLotDoesNotSpill(t *testing.T) {
	run(t, func(c *sim.VirtualClock) {
		m := NewManager(c, 100*mb, NeSTManaged, nil)
		l1, _ := m.Create("john", 30*mb, time.Hour)
		m.Create("john", 30*mb, time.Hour)
		// A named lot is preferred but spills when the file cannot fit;
		// the spill is what lets a file span lots.
		if err := m.ChargeWrite("john", l1.ID, "/big", 40*mb); err != nil {
			t.Fatal(err)
		}
		i1, _ := m.Lookup(l1.ID)
		if i1.Used != 30*mb {
			t.Errorf("named lot used = %d", i1.Used)
		}
	})
}

func TestChargeNoLot(t *testing.T) {
	run(t, func(c *sim.VirtualClock) {
		m := NewManager(c, 100*mb, NeSTManaged, nil)
		if err := m.ChargeWrite("john", "", "/f", mb); err != ErrNoLot {
			t.Errorf("charge without lot = %v, want ErrNoLot", err)
		}
		if err := m.ChargeWrite("john", "lot9999", "/f", mb); err != ErrNotFound {
			t.Errorf("charge unknown lot = %v, want ErrNotFound", err)
		}
	})
}

func TestReleaseFile(t *testing.T) {
	run(t, func(c *sim.VirtualClock) {
		m := NewManager(c, 100*mb, NeSTManaged, nil)
		l, _ := m.Create("john", 30*mb, time.Hour)
		m.ChargeWrite("john", l.ID, "/f", 20*mb)
		m.ReleaseFile("john", "/f")
		got, _ := m.Lookup(l.ID)
		if got.Used != 0 {
			t.Errorf("Used after release = %d", got.Used)
		}
	})
}

func TestUnchargePartial(t *testing.T) {
	run(t, func(c *sim.VirtualClock) {
		m := NewManager(c, 100*mb, NeSTManaged, nil)
		l, _ := m.Create("john", 30*mb, time.Hour)
		m.ChargeWrite("john", l.ID, "/f", 20*mb)
		m.UnchargeFile("john", "/f", 5*mb)
		got, _ := m.Lookup(l.ID)
		if got.Used != 15*mb {
			t.Errorf("Used = %d, want 15MB", got.Used)
		}
	})
}

func TestQuotaBackedOverfillAnomaly(t *testing.T) {
	run(t, func(c *sim.VirtualClock) {
		qm := quota.NewManager(true)
		m := NewManager(c, 1000*mb, QuotaBacked, qm)
		l1, _ := m.Create("john", 100*mb, time.Hour)
		l2, _ := m.Create("john", 100*mb, time.Hour)
		// Quota-backed enforcement is per user: overfilling lot 1 to
		// 150MB succeeds (the paper's documented weakness)...
		if err := m.ChargeWrite("john", l1.ID, "/big", 150*mb); err != nil {
			t.Fatalf("overfill rejected: %v", err)
		}
		// ...and then lot 2 cannot be filled to capacity.
		if err := m.ChargeWrite("john", l2.ID, "/second", 100*mb); err != quota.ErrOverQuota {
			t.Errorf("second fill = %v, want ErrOverQuota", err)
		}
		if err := m.ChargeWrite("john", l2.ID, "/second", 50*mb); err != nil {
			t.Errorf("within user quota = %v", err)
		}
	})
}

func TestNeSTManagedFixesOverfill(t *testing.T) {
	run(t, func(c *sim.VirtualClock) {
		m := NewManager(c, 1000*mb, NeSTManaged, nil)
		l1, _ := m.Create("john", 100*mb, time.Hour)
		l2, _ := m.Create("john", 100*mb, time.Hour)
		// NeST-managed accounting spans the file across both lots...
		if err := m.ChargeWrite("john", l1.ID, "/big", 150*mb); err != nil {
			t.Fatal(err)
		}
		// ...so exactly the remaining 50MB of guarantee is available.
		if err := m.ChargeWrite("john", l2.ID, "/second", 51*mb); err == nil {
			t.Error("charge beyond total guarantee succeeded")
		}
		if err := m.ChargeWrite("john", l2.ID, "/second", 50*mb); err != nil {
			t.Errorf("remaining guarantee rejected: %v", err)
		}
		_ = l2
	})
}

func TestReleaseLot(t *testing.T) {
	run(t, func(c *sim.VirtualClock) {
		qm := quota.NewManager(true)
		m := NewManager(c, 100*mb, QuotaBacked, qm)
		info, _ := m.Create("john", 40*mb, time.Hour)
		if qm.Limit("john") != 40*mb {
			t.Errorf("quota limit = %d", qm.Limit("john"))
		}
		if err := m.Release("mary", info.ID); err != ErrNotOwner {
			t.Errorf("foreign release = %v", err)
		}
		if err := m.Release("john", info.ID); err != nil {
			t.Fatal(err)
		}
		if qm.Limit("john") != 0 {
			t.Errorf("quota limit after release = %d", qm.Limit("john"))
		}
		if m.Guaranteed() != 0 {
			t.Errorf("Guaranteed = %d", m.Guaranteed())
		}
	})
}

func TestOwned(t *testing.T) {
	run(t, func(c *sim.VirtualClock) {
		m := NewManager(c, 100*mb, NeSTManaged, nil)
		m.Create("a", 10*mb, time.Hour)
		m.Create("b", 10*mb, time.Hour)
		m.Create("a", 10*mb, time.Hour)
		owned := m.Owned("a")
		if len(owned) != 2 {
			t.Errorf("Owned = %v", owned)
		}
	})
}

func TestCreateInvalidCapacity(t *testing.T) {
	run(t, func(c *sim.VirtualClock) {
		m := NewManager(c, 100*mb, NeSTManaged, nil)
		if _, err := m.Create("a", 0, time.Hour); err == nil {
			t.Error("zero capacity accepted")
		}
		if _, err := m.Create("a", -5, time.Hour); err == nil {
			t.Error("negative capacity accepted")
		}
	})
}

func TestGroupLotMembership(t *testing.T) {
	run(t, func(c *sim.VirtualClock) {
		m := NewManager(c, 100*mb, NeSTManaged, nil)
		l, _ := m.Create("john", 50*mb, time.Hour)
		// Non-members cannot charge the lot.
		if err := m.ChargeWrite("mary", l.ID, "/f", mb); err != ErrNotOwner {
			t.Errorf("non-member charge = %v, want ErrNotOwner", err)
		}
		// Only the owner edits membership.
		if err := m.AddMember("mary", l.ID, "mary"); err != ErrNotOwner {
			t.Errorf("foreign AddMember = %v", err)
		}
		if err := m.AddMember("john", l.ID, "mary"); err != nil {
			t.Fatal(err)
		}
		if !m.UsableBy(l.ID, "mary") {
			t.Error("member not usable")
		}
		if err := m.ChargeWrite("mary", l.ID, "/f", mb); err != nil {
			t.Errorf("member charge = %v", err)
		}
		info, _ := m.Lookup(l.ID)
		if len(info.Members) != 1 || info.Members[0] != "mary" {
			t.Errorf("Members = %v", info.Members)
		}
		// Membership does not leak owner powers.
		if err := m.Release("mary", l.ID); err != ErrNotOwner {
			t.Errorf("member release = %v", err)
		}
		// Removal revokes access.
		if err := m.RemoveMember("john", l.ID, "mary"); err != nil {
			t.Fatal(err)
		}
		if err := m.ChargeWrite("mary", l.ID, "/g", mb); err != ErrNotOwner {
			t.Errorf("charge after removal = %v", err)
		}
	})
}

func TestGroupLotSpansForMembers(t *testing.T) {
	run(t, func(c *sim.VirtualClock) {
		m := NewManager(c, 100*mb, NeSTManaged, nil)
		l1, _ := m.Create("john", 20*mb, time.Hour)
		m.AddMember("john", l1.ID, "mary")
		// Mary's own lot plus her membership: a default-lot charge
		// (no named lot) can use both.
		m.Create("mary", 20*mb, time.Hour)
		if err := m.ChargeWrite("mary", "", "/big", 35*mb); err != nil {
			t.Errorf("member spanning charge = %v", err)
		}
	})
}
