// Package classad implements the ClassAd (classified advertisement)
// language used throughout NeST for access control, resource discovery
// and matchmaking, following the semantics of the Condor matchmaking
// framework (Raman et al., HPDC 1998): expressions evaluate over a
// three-valued logic with Undefined and Error, and two ads match when
// each ad's Requirements expression evaluates to true in the context of
// the other.
package classad

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the runtime types of ClassAd values.
type Kind int

// Value kinds.
const (
	UndefinedKind Kind = iota
	ErrorKind
	BoolKind
	IntKind
	RealKind
	StringKind
	ListKind
	AdKind
)

func (k Kind) String() string {
	switch k {
	case UndefinedKind:
		return "undefined"
	case ErrorKind:
		return "error"
	case BoolKind:
		return "boolean"
	case IntKind:
		return "integer"
	case RealKind:
		return "real"
	case StringKind:
		return "string"
	case ListKind:
		return "list"
	case AdKind:
		return "classad"
	}
	return "invalid"
}

// Value is a ClassAd runtime value.
type Value struct {
	kind Kind
	b    bool
	i    int64
	r    float64
	s    string
	list []Value
	ad   *Ad
}

// Constructors.

// Undefined returns the undefined value.
func Undefined() Value { return Value{kind: UndefinedKind} }

// ErrorVal returns the error value carrying a diagnostic message.
func ErrorVal(msg string) Value { return Value{kind: ErrorKind, s: msg} }

// Errorf returns an error value with a formatted diagnostic.
func Errorf(format string, args ...interface{}) Value {
	return ErrorVal(fmt.Sprintf(format, args...))
}

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{kind: BoolKind, b: b} }

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: IntKind, i: i} }

// Real returns a real (floating point) value.
func Real(r float64) Value { return Value{kind: RealKind, r: r} }

// String returns a string value.
func Str(s string) Value { return Value{kind: StringKind, s: s} }

// List returns a list value.
func List(vs ...Value) Value { return Value{kind: ListKind, list: vs} }

// AdValue wraps a nested ClassAd as a value.
func AdValue(ad *Ad) Value { return Value{kind: AdKind, ad: ad} }

// Accessors.

// Kind reports the value's runtime type.
func (v Value) Kind() Kind { return v.kind }

// IsUndefined reports whether v is undefined.
func (v Value) IsUndefined() bool { return v.kind == UndefinedKind }

// IsError reports whether v is the error value.
func (v Value) IsError() bool { return v.kind == ErrorKind }

// BoolVal returns the boolean content; ok is false for non-booleans.
func (v Value) BoolVal() (b, ok bool) { return v.b, v.kind == BoolKind }

// IntVal returns the integer content; ok is false for non-integers.
func (v Value) IntVal() (int64, bool) { return v.i, v.kind == IntKind }

// RealVal returns the real content; ok is false for non-reals.
func (v Value) RealVal() (float64, bool) { return v.r, v.kind == RealKind }

// StringVal returns the string content; ok is false for non-strings.
func (v Value) StringVal() (string, bool) { return v.s, v.kind == StringKind }

// ListVal returns the list content; ok is false for non-lists.
func (v Value) ListVal() ([]Value, bool) { return v.list, v.kind == ListKind }

// AdVal returns the nested ad; ok is false for non-ads.
func (v Value) AdVal() (*Ad, bool) { return v.ad, v.kind == AdKind }

// ErrMessage returns the diagnostic attached to an error value.
func (v Value) ErrMessage() string {
	if v.kind == ErrorKind {
		return v.s
	}
	return ""
}

// IsTrue reports whether v is the boolean true. Undefined, error and
// non-boolean values are not true.
func (v Value) IsTrue() bool { return v.kind == BoolKind && v.b }

// Number returns the value as a float64 for arithmetic, with ok false
// when v is not numeric (booleans promote: false=0, true=1).
func (v Value) Number() (float64, bool) {
	switch v.kind {
	case IntKind:
		return float64(v.i), true
	case RealKind:
		return v.r, true
	case BoolKind:
		if v.b {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// String renders the value in ClassAd source syntax.
func (v Value) String() string {
	switch v.kind {
	case UndefinedKind:
		return "undefined"
	case ErrorKind:
		return "error"
	case BoolKind:
		if v.b {
			return "true"
		}
		return "false"
	case IntKind:
		return strconv.FormatInt(v.i, 10)
	case RealKind:
		s := strconv.FormatFloat(v.r, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case StringKind:
		return quoteString(v.s)
	case ListKind:
		parts := make([]string, len(v.list))
		for i, e := range v.list {
			parts[i] = e.String()
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case AdKind:
		return v.ad.String()
	}
	return "error"
}

// quoteString renders s as a ClassAd string literal, escaping only the
// characters the ClassAd lexer understands (quotes, backslashes and
// common control characters); other bytes pass through as UTF-8.
func quoteString(s string) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			sb.WriteString(`\"`)
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		case '\t':
			sb.WriteString(`\t`)
		case '\r':
			sb.WriteString(`\r`)
		default:
			sb.WriteByte(c)
		}
	}
	sb.WriteByte('"')
	return sb.String()
}

// SameValue reports deep identity of two values (the =?= "is" operator
// semantics: case-sensitive for strings, never undefined).
func SameValue(a, b Value) bool {
	if a.kind != b.kind {
		return false
	}
	switch a.kind {
	case UndefinedKind, ErrorKind:
		return true
	case BoolKind:
		return a.b == b.b
	case IntKind:
		return a.i == b.i
	case RealKind:
		return a.r == b.r
	case StringKind:
		return a.s == b.s
	case ListKind:
		if len(a.list) != len(b.list) {
			return false
		}
		for i := range a.list {
			if !SameValue(a.list[i], b.list[i]) {
				return false
			}
		}
		return true
	case AdKind:
		return a.ad.String() == b.ad.String()
	}
	return false
}

// Ad is a ClassAd: an ordered set of attribute/expression bindings.
// Attribute names are case-insensitive (first-seen spelling preserved
// for display).
type Ad struct {
	names []string        // display order
	attrs map[string]Expr // lower-cased name -> expression
}

// NewAd returns an empty ClassAd.
func NewAd() *Ad {
	return &Ad{attrs: make(map[string]Expr)}
}

// Set binds name to expr, replacing any existing binding.
func (a *Ad) Set(name string, expr Expr) {
	key := strings.ToLower(name)
	if _, ok := a.attrs[key]; !ok {
		a.names = append(a.names, name)
	}
	a.attrs[key] = expr
}

// SetValue binds name to a literal value.
func (a *Ad) SetValue(name string, v Value) { a.Set(name, Lit(v)) }

// SetString binds name to a string literal.
func (a *Ad) SetString(name, s string) { a.SetValue(name, Str(s)) }

// SetInt binds name to an integer literal.
func (a *Ad) SetInt(name string, i int64) { a.SetValue(name, Int(i)) }

// SetReal binds name to a real literal.
func (a *Ad) SetReal(name string, r float64) { a.SetValue(name, Real(r)) }

// SetBool binds name to a boolean literal.
func (a *Ad) SetBool(name string, b bool) { a.SetValue(name, Bool(b)) }

// SetExprString parses src as an expression and binds it to name.
func (a *Ad) SetExprString(name, src string) error {
	e, err := ParseExpr(src)
	if err != nil {
		return err
	}
	a.Set(name, e)
	return nil
}

// Lookup returns the expression bound to name (case-insensitive).
func (a *Ad) Lookup(name string) (Expr, bool) {
	if a == nil {
		return nil, false
	}
	e, ok := a.attrs[strings.ToLower(name)]
	return e, ok
}

// Delete removes the binding for name, reporting whether it existed.
func (a *Ad) Delete(name string) bool {
	key := strings.ToLower(name)
	if _, ok := a.attrs[key]; !ok {
		return false
	}
	delete(a.attrs, key)
	for i, n := range a.names {
		if strings.ToLower(n) == key {
			a.names = append(a.names[:i], a.names[i+1:]...)
			break
		}
	}
	return true
}

// Names returns attribute names in insertion order.
func (a *Ad) Names() []string {
	out := make([]string, len(a.names))
	copy(out, a.names)
	return out
}

// Len reports the number of attributes.
func (a *Ad) Len() int { return len(a.attrs) }

// Copy returns a shallow copy (expressions are immutable, so sharing
// them is safe).
func (a *Ad) Copy() *Ad {
	c := NewAd()
	for _, n := range a.names {
		c.Set(n, a.attrs[strings.ToLower(n)])
	}
	return c
}

// EvalAttr evaluates the named attribute in the context of this ad,
// with other as the candidate match (may be nil). Missing attributes
// evaluate to undefined.
func (a *Ad) EvalAttr(name string, other *Ad) Value {
	e, ok := a.Lookup(name)
	if !ok {
		return Undefined()
	}
	env := &Env{Self: a, Other: other}
	return e.Eval(env)
}

// String renders the ad in ClassAd source syntax: [a = 1; b = "x"].
func (a *Ad) String() string {
	var sb strings.Builder
	sb.WriteString("[ ")
	for i, n := range a.names {
		if i > 0 {
			sb.WriteString("; ")
		}
		sb.WriteString(n)
		sb.WriteString(" = ")
		sb.WriteString(a.attrs[strings.ToLower(n)].String())
	}
	sb.WriteString(" ]")
	return sb.String()
}

// SortedNames returns attribute names sorted case-insensitively; useful
// for deterministic serialization in tests.
func (a *Ad) SortedNames() []string {
	out := a.Names()
	sort.Slice(out, func(i, j int) bool {
		return strings.ToLower(out[i]) < strings.ToLower(out[j])
	})
	return out
}
