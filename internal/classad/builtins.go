package classad

import (
	"math"
	"regexp"
	"strconv"
	"strings"
)

// builtinFunc is the implementation signature of a ClassAd builtin.
type builtinFunc func(args []Value) Value

// builtins maps lower-cased function names to implementations.
var builtins = map[string]builtinFunc{
	"strcat":      fnStrcat,
	"substr":      fnSubstr,
	"size":        fnSize,
	"length":      fnSize,
	"toupper":     fnToUpper,
	"tolower":     fnToLower,
	"member":      fnMember,
	"anycompare":  fnMember, // historical alias used by some NeST ads
	"isundefined": kindPredicate(UndefinedKind),
	"iserror":     kindPredicate(ErrorKind),
	"isstring":    kindPredicate(StringKind),
	"isinteger":   kindPredicate(IntKind),
	"isreal":      kindPredicate(RealKind),
	"isboolean":   kindPredicate(BoolKind),
	"islist":      kindPredicate(ListKind),
	"isclassad":   kindPredicate(AdKind),
	"int":         fnInt,
	"real":        fnReal,
	"string":      fnString,
	"floor":       fnFloor,
	"ceiling":     fnCeiling,
	"round":       fnRound,
	"min":         fnMin,
	"max":         fnMax,
	"regexp":      fnRegexp,
	"ifthenelse":  fnIfThenElse,
}

func propagate(args []Value) (Value, bool) {
	for _, a := range args {
		if a.IsError() {
			return a, true
		}
	}
	for _, a := range args {
		if a.IsUndefined() {
			return Undefined(), true
		}
	}
	return Value{}, false
}

func fnStrcat(args []Value) Value {
	if v, stop := propagate(args); stop {
		return v
	}
	var sb strings.Builder
	for _, a := range args {
		switch a.Kind() {
		case StringKind:
			s, _ := a.StringVal()
			sb.WriteString(s)
		case IntKind, RealKind, BoolKind:
			sb.WriteString(strings.Trim(a.String(), `"`))
		default:
			return ErrorVal("strcat: unsupported argument type " + a.Kind().String())
		}
	}
	return Str(sb.String())
}

func fnSubstr(args []Value) Value {
	if v, stop := propagate(args); stop {
		return v
	}
	if len(args) < 2 || len(args) > 3 {
		return ErrorVal("substr: want 2 or 3 arguments")
	}
	s, ok := args[0].StringVal()
	if !ok {
		return ErrorVal("substr: first argument must be string")
	}
	off, ok := args[1].IntVal()
	if !ok {
		return ErrorVal("substr: offset must be integer")
	}
	if off < 0 {
		off += int64(len(s))
	}
	if off < 0 {
		off = 0
	}
	if off > int64(len(s)) {
		off = int64(len(s))
	}
	end := int64(len(s))
	if len(args) == 3 {
		n, ok := args[2].IntVal()
		if !ok {
			return ErrorVal("substr: length must be integer")
		}
		if n < 0 {
			end = int64(len(s)) + n
		} else {
			end = off + n
		}
		if end < off {
			end = off
		}
		if end > int64(len(s)) {
			end = int64(len(s))
		}
	}
	return Str(s[off:end])
}

func fnSize(args []Value) Value {
	if v, stop := propagate(args); stop {
		return v
	}
	if len(args) != 1 {
		return ErrorVal("size: want 1 argument")
	}
	switch args[0].Kind() {
	case StringKind:
		s, _ := args[0].StringVal()
		return Int(int64(len(s)))
	case ListKind:
		l, _ := args[0].ListVal()
		return Int(int64(len(l)))
	case AdKind:
		ad, _ := args[0].AdVal()
		return Int(int64(ad.Len()))
	}
	return ErrorVal("size: unsupported argument type")
}

func fnToUpper(args []Value) Value {
	if v, stop := propagate(args); stop {
		return v
	}
	if len(args) != 1 {
		return ErrorVal("toUpper: want 1 argument")
	}
	s, ok := args[0].StringVal()
	if !ok {
		return ErrorVal("toUpper: argument must be string")
	}
	return Str(strings.ToUpper(s))
}

func fnToLower(args []Value) Value {
	if v, stop := propagate(args); stop {
		return v
	}
	if len(args) != 1 {
		return ErrorVal("toLower: want 1 argument")
	}
	s, ok := args[0].StringVal()
	if !ok {
		return ErrorVal("toLower: argument must be string")
	}
	return Str(strings.ToLower(s))
}

// fnMember reports whether args[0] occurs in the list args[1]. String
// comparison is case-insensitive, matching == semantics.
func fnMember(args []Value) Value {
	if len(args) != 2 {
		return ErrorVal("member: want 2 arguments")
	}
	if v, stop := propagate(args); stop {
		return v
	}
	list, ok := args[1].ListVal()
	if !ok {
		return ErrorVal("member: second argument must be list")
	}
	for _, e := range list {
		r := evalCompare("==", args[0], e)
		if r.IsTrue() {
			return Bool(true)
		}
	}
	return Bool(false)
}

func kindPredicate(k Kind) builtinFunc {
	return func(args []Value) Value {
		if len(args) != 1 {
			return ErrorVal("predicate: want 1 argument")
		}
		return Bool(args[0].Kind() == k)
	}
}

func fnInt(args []Value) Value {
	if v, stop := propagate(args); stop {
		return v
	}
	if len(args) != 1 {
		return ErrorVal("int: want 1 argument")
	}
	switch args[0].Kind() {
	case IntKind:
		return args[0]
	case RealKind:
		r, _ := args[0].RealVal()
		return Int(int64(r))
	case BoolKind:
		if args[0].IsTrue() {
			return Int(1)
		}
		return Int(0)
	case StringKind:
		s, _ := args[0].StringVal()
		i, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			return ErrorVal("int: cannot convert " + s)
		}
		return Int(i)
	}
	return ErrorVal("int: unsupported argument type")
}

func fnReal(args []Value) Value {
	if v, stop := propagate(args); stop {
		return v
	}
	if len(args) != 1 {
		return ErrorVal("real: want 1 argument")
	}
	switch args[0].Kind() {
	case RealKind:
		return args[0]
	case IntKind:
		i, _ := args[0].IntVal()
		return Real(float64(i))
	case BoolKind:
		if args[0].IsTrue() {
			return Real(1)
		}
		return Real(0)
	case StringKind:
		s, _ := args[0].StringVal()
		r, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return ErrorVal("real: cannot convert " + s)
		}
		return Real(r)
	}
	return ErrorVal("real: unsupported argument type")
}

func fnString(args []Value) Value {
	if v, stop := propagate(args); stop {
		return v
	}
	if len(args) != 1 {
		return ErrorVal("string: want 1 argument")
	}
	if args[0].Kind() == StringKind {
		return args[0]
	}
	return Str(strings.Trim(args[0].String(), `"`))
}

func realArg(name string, args []Value) (float64, Value) {
	if len(args) != 1 {
		return 0, ErrorVal(name + ": want 1 argument")
	}
	f, ok := args[0].Number()
	if !ok {
		return 0, ErrorVal(name + ": argument must be numeric")
	}
	return f, Value{}
}

func fnFloor(args []Value) Value {
	if v, stop := propagate(args); stop {
		return v
	}
	f, errv := realArg("floor", args)
	if errv.IsError() {
		return errv
	}
	return Int(int64(math.Floor(f)))
}

func fnCeiling(args []Value) Value {
	if v, stop := propagate(args); stop {
		return v
	}
	f, errv := realArg("ceiling", args)
	if errv.IsError() {
		return errv
	}
	return Int(int64(math.Ceil(f)))
}

func fnRound(args []Value) Value {
	if v, stop := propagate(args); stop {
		return v
	}
	f, errv := realArg("round", args)
	if errv.IsError() {
		return errv
	}
	return Int(int64(math.Round(f)))
}

func fnMinMax(name string, less func(a, b float64) bool) builtinFunc {
	return func(args []Value) Value {
		if v, stop := propagate(args); stop {
			return v
		}
		if len(args) == 0 {
			return Undefined()
		}
		// A single list argument is folded.
		if len(args) == 1 {
			if l, ok := args[0].ListVal(); ok {
				args = l
			}
		}
		best := args[0]
		bf, ok := best.Number()
		if !ok {
			return ErrorVal(name + ": arguments must be numeric")
		}
		isReal := best.Kind() == RealKind
		for _, a := range args[1:] {
			f, ok := a.Number()
			if !ok {
				return ErrorVal(name + ": arguments must be numeric")
			}
			if a.Kind() == RealKind {
				isReal = true
			}
			if less(f, bf) {
				best, bf = a, f
			}
		}
		if isReal {
			return Real(bf)
		}
		return best
	}
}

var (
	fnMin = fnMinMax("min", func(a, b float64) bool { return a < b })
	fnMax = fnMinMax("max", func(a, b float64) bool { return a > b })
)

func fnRegexp(args []Value) Value {
	if v, stop := propagate(args); stop {
		return v
	}
	if len(args) != 2 {
		return ErrorVal("regexp: want 2 arguments (pattern, target)")
	}
	pat, ok1 := args[0].StringVal()
	target, ok2 := args[1].StringVal()
	if !ok1 || !ok2 {
		return ErrorVal("regexp: arguments must be strings")
	}
	re, err := regexp.Compile(pat)
	if err != nil {
		return ErrorVal("regexp: bad pattern: " + err.Error())
	}
	return Bool(re.MatchString(target))
}

func fnIfThenElse(args []Value) Value {
	if len(args) != 3 {
		return ErrorVal("ifThenElse: want 3 arguments")
	}
	c := args[0]
	switch {
	case c.IsTrue():
		return args[1]
	case c.Kind() == BoolKind:
		return args[2]
	case c.IsUndefined():
		return Undefined()
	case c.IsError():
		return c
	}
	return ErrorVal("ifThenElse: condition must be boolean")
}
