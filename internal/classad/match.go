package classad

// Match reports whether ads a and b match symmetrically: each ad's
// Requirements expression must evaluate to true when the other ad is
// bound as the match candidate. A missing Requirements attribute is
// treated as an unconditional true, so purely descriptive ads match
// any requester that accepts them.
func Match(a, b *Ad) bool {
	return halfMatch(a, b) && halfMatch(b, a)
}

func halfMatch(a, other *Ad) bool {
	if _, ok := a.Lookup("Requirements"); !ok {
		return true
	}
	return a.EvalAttr("Requirements", other).IsTrue()
}

// Rank evaluates a's Rank expression against candidate other and
// returns it as a float. Undefined, error, missing or non-numeric
// ranks are 0, per Condor matchmaking semantics.
func Rank(a, other *Ad) float64 {
	v := a.EvalAttr("Rank", other)
	if f, ok := v.Number(); ok {
		return f
	}
	return 0
}

// BestMatch selects from candidates the ad that matches request with
// the highest request-side Rank (ties broken by candidate order).
// It returns -1 when nothing matches.
func BestMatch(request *Ad, candidates []*Ad) int {
	best := -1
	var bestRank float64
	for i, c := range candidates {
		if !Match(request, c) {
			continue
		}
		r := Rank(request, c)
		if best == -1 || r > bestRank {
			best, bestRank = i, r
		}
	}
	return best
}
