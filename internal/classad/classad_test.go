package classad

import (
	"strings"
	"testing"
	"testing/quick"
)

// evalString parses and evaluates an expression with no context.
func evalString(t *testing.T, src string) Value {
	t.Helper()
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("ParseExpr(%q): %v", src, err)
	}
	return e.Eval(&Env{})
}

func TestLiterals(t *testing.T) {
	cases := []struct {
		src  string
		want Value
	}{
		{"42", Int(42)},
		{"-7", Int(-7)},
		{"3.5", Real(3.5)},
		{"1e3", Real(1000)},
		{"2.5e-1", Real(0.25)},
		{`"hello"`, Str("hello")},
		{`"a\"b\n"`, Str("a\"b\n")},
		{"true", Bool(true)},
		{"FALSE", Bool(false)},
		{"undefined", Undefined()},
		{"UNDEFINED", Undefined()},
	}
	for _, c := range cases {
		got := evalString(t, c.src)
		if !SameValue(got, c.want) {
			t.Errorf("eval(%q) = %v, want %v", c.src, got, c.want)
		}
	}
	if !evalString(t, "error").IsError() {
		t.Error("eval(error) is not the error value")
	}
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want Value
	}{
		{"1 + 2 * 3", Int(7)},
		{"(1 + 2) * 3", Int(9)},
		{"10 / 3", Int(3)},
		{"10 % 3", Int(1)},
		{"10.0 / 4", Real(2.5)},
		{"1 + 2.5", Real(3.5)},
		{"2 - 5", Int(-3)},
		{`"foo" + "bar"`, Str("foobar")},
		{"-3 + 1", Int(-2)},
		{"1 + undefined", Undefined()},
		{"undefined * 2", Undefined()},
	}
	for _, c := range cases {
		got := evalString(t, c.src)
		if !SameValue(got, c.want) {
			t.Errorf("eval(%q) = %v, want %v", c.src, got, c.want)
		}
	}
	for _, src := range []string{"1/0", "1%0", `1 + "x"`, `"x" * 2`} {
		if !evalString(t, src).IsError() {
			t.Errorf("eval(%q) should be error", src)
		}
	}
}

func TestComparison(t *testing.T) {
	trueCases := []string{
		"1 < 2", "2 <= 2", "3 > 2", "3 >= 3", "2 == 2", "2 != 3",
		"1 == 1.0", "0.5 < 1",
		`"abc" == "ABC"`, // case-insensitive ==
		`"abc" < "abd"`,
		`"abc" =?= "abc"`, `"abc" =!= "ABC"`, // =?= is case-sensitive
		"undefined =?= undefined", "undefined =!= 1",
		"true == true", "true != false",
	}
	for _, src := range trueCases {
		if got := evalString(t, src); !got.IsTrue() {
			t.Errorf("eval(%q) = %v, want true", src, got)
		}
	}
	for _, src := range []string{"1 == undefined", "undefined < 2"} {
		if got := evalString(t, src); !got.IsUndefined() {
			t.Errorf("eval(%q) = %v, want undefined", src, got)
		}
	}
}

func TestLogicThreeValued(t *testing.T) {
	cases := []struct {
		src  string
		want Value
	}{
		{"true && true", Bool(true)},
		{"true && false", Bool(false)},
		{"false && undefined", Bool(false)},
		{"undefined && false", Bool(false)},
		{"true && undefined", Undefined()},
		{"undefined && undefined", Undefined()},
		{"true || undefined", Bool(true)},
		{"undefined || true", Bool(true)},
		{"false || undefined", Undefined()},
		{"undefined || undefined", Undefined()},
		{"!true", Bool(false)},
		{"!undefined", Undefined()},
	}
	for _, c := range cases {
		got := evalString(t, c.src)
		if !SameValue(got, c.want) {
			t.Errorf("eval(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestConditional(t *testing.T) {
	if got := evalString(t, "1 < 2 ? 10 : 20"); !SameValue(got, Int(10)) {
		t.Errorf("ternary true arm = %v", got)
	}
	if got := evalString(t, "1 > 2 ? 10 : 20"); !SameValue(got, Int(20)) {
		t.Errorf("ternary false arm = %v", got)
	}
	if got := evalString(t, "undefined ? 10 : 20"); !got.IsUndefined() {
		t.Errorf("ternary undefined condition = %v", got)
	}
}

func TestBuiltins(t *testing.T) {
	cases := []struct {
		src  string
		want Value
	}{
		{`strcat("a", "b", "c")`, Str("abc")},
		{`strcat("n=", 42)`, Str("n=42")},
		{`substr("hello", 1)`, Str("ello")},
		{`substr("hello", 1, 3)`, Str("ell")},
		{`substr("hello", -3)`, Str("llo")},
		{`substr("hello", 2, -1)`, Str("ll")},
		{`size("hello")`, Int(5)},
		{`size({1,2,3})`, Int(3)},
		{`toUpper("nest")`, Str("NEST")},
		{`toLower("NeST")`, Str("nest")},
		{`member(2, {1,2,3})`, Bool(true)},
		{`member("B", {"a","b"})`, Bool(true)},
		{`member(9, {1,2,3})`, Bool(false)},
		{`isUndefined(undefined)`, Bool(true)},
		{`isUndefined(1)`, Bool(false)},
		{`isError(error)`, Bool(true)},
		{`isString("x")`, Bool(true)},
		{`isInteger(3)`, Bool(true)},
		{`isReal(3.0)`, Bool(true)},
		{`isBoolean(true)`, Bool(true)},
		{`isList({1})`, Bool(true)},
		{`int(3.9)`, Int(3)},
		{`int("12")`, Int(12)},
		{`real(3)`, Real(3)},
		{`string(42)`, Str("42")},
		{`floor(3.7)`, Int(3)},
		{`ceiling(3.2)`, Int(4)},
		{`round(3.5)`, Int(4)},
		{`min(3, 1, 2)`, Int(1)},
		{`max(3, 1, 2)`, Int(3)},
		{`min({4, 2, 8})`, Int(2)},
		{`max(1, 2.5)`, Real(2.5)},
		{`regexp("^ne.*t$", "nest")`, Bool(true)},
		{`regexp("xyz", "nest")`, Bool(false)},
		{`ifThenElse(true, 1, 2)`, Int(1)},
		{`ifThenElse(false, 1, 2)`, Int(2)},
		{`strcat("a", undefined)`, Undefined()},
	}
	for _, c := range cases {
		got := evalString(t, c.src)
		if !SameValue(got, c.want) {
			t.Errorf("eval(%q) = %v, want %v", c.src, got, c.want)
		}
	}
	if !evalString(t, "nosuchfn(1)").IsError() {
		t.Error("unknown function should evaluate to error")
	}
}

func TestAdParseAndLookup(t *testing.T) {
	ad, err := Parse(`[ Type = "Storage"; TotalDisk = 100 * 1024; Free = TotalDisk - 512 ]`)
	if err != nil {
		t.Fatal(err)
	}
	if ad.Len() != 3 {
		t.Fatalf("Len = %d, want 3", ad.Len())
	}
	if v := ad.EvalAttr("type", nil); !SameValue(v, Str("Storage")) {
		t.Errorf("type = %v (case-insensitive lookup failed)", v)
	}
	if v := ad.EvalAttr("Free", nil); !SameValue(v, Int(100*1024-512)) {
		t.Errorf("Free = %v (internal attribute reference failed)", v)
	}
	if v := ad.EvalAttr("Missing", nil); !v.IsUndefined() {
		t.Errorf("missing attribute = %v, want undefined", v)
	}
}

func TestAdParseBare(t *testing.T) {
	ad, err := Parse(`a = 1; b = a + 1`)
	if err != nil {
		t.Fatal(err)
	}
	if v := ad.EvalAttr("b", nil); !SameValue(v, Int(2)) {
		t.Errorf("b = %v, want 2", v)
	}
}

func TestCircularReference(t *testing.T) {
	ad := MustParse(`[ a = b; b = a ]`)
	if v := ad.EvalAttr("a", nil); !v.IsError() {
		t.Errorf("circular reference = %v, want error", v)
	}
	// Self-recursion too.
	ad2 := MustParse(`[ x = x + 1 ]`)
	if v := ad2.EvalAttr("x", nil); !v.IsError() {
		t.Errorf("self recursion = %v, want error", v)
	}
}

func TestScopedReferences(t *testing.T) {
	machine := MustParse(`[ Memory = 512; Requirements = other.ImageSize < MY.Memory ]`)
	job := MustParse(`[ ImageSize = 128 ]`)
	if v := machine.EvalAttr("Requirements", job); !v.IsTrue() {
		t.Errorf("Requirements = %v, want true", v)
	}
	bigJob := MustParse(`[ ImageSize = 1024 ]`)
	if v := machine.EvalAttr("Requirements", bigJob); v.IsTrue() {
		t.Errorf("Requirements = %v, want false", v)
	}
	// TARGET alias.
	m2 := MustParse(`[ Requirements = TARGET.X == 5 ]`)
	if v := m2.EvalAttr("Requirements", MustParse(`[ X = 5 ]`)); !v.IsTrue() {
		t.Errorf("TARGET scope failed: %v", v)
	}
	// Unqualified names do not leak into the other ad.
	m3 := MustParse(`[ Requirements = Zork == 5 ]`)
	if v := m3.EvalAttr("Requirements", MustParse(`[ Zork = 5 ]`)); !v.IsUndefined() {
		t.Errorf("unqualified cross-ad lookup = %v, want undefined", v)
	}
}

func TestNestedRecordsAndSelection(t *testing.T) {
	ad := MustParse(`[ disk = [ total = 100; free = 40 ]; used = disk.total - disk.free ]`)
	if v := ad.EvalAttr("used", nil); !SameValue(v, Int(60)) {
		t.Errorf("used = %v, want 60", v)
	}
	if v := evalString(t, `[a = [b = 7]].a.b`); !SameValue(v, Int(7)) {
		t.Errorf("chained selection = %v, want 7", v)
	}
	if v := evalString(t, `1 . foo`); !v.IsError() {
		t.Errorf("selection on int = %v, want error", v)
	}
}

func TestMatchmaking(t *testing.T) {
	storage := MustParse(`[
		Type = "Storage";
		FreeDisk = 50000;
		Protocols = {"chirp", "nfs", "gridftp"};
		Requirements = other.NeedDisk <= MY.FreeDisk
	]`)
	request := MustParse(`[
		NeedDisk = 20000;
		Requirements = member("nfs", other.Protocols);
		Rank = other.FreeDisk
	]`)
	if !Match(request, storage) {
		t.Fatal("expected request/storage to match")
	}
	big := MustParse(`[ NeedDisk = 90000; Requirements = true ]`)
	if Match(big, storage) {
		t.Fatal("oversized request should not match")
	}
	if r := Rank(request, storage); r != 50000 {
		t.Errorf("Rank = %v, want 50000", r)
	}

	weak := MustParse(`[ Type = "Storage"; FreeDisk = 10; Protocols = {"nfs"} ]`) // no Requirements
	idx := BestMatch(request, []*Ad{weak, storage})
	if idx != 1 {
		t.Errorf("BestMatch = %d, want 1 (highest rank)", idx)
	}
	nomatch := MustParse(`[ NeedDisk = 1; Requirements = member("afs", other.Protocols) ]`)
	if BestMatch(nomatch, []*Ad{weak, storage}) != -1 {
		t.Error("BestMatch should report -1 for no match")
	}
}

func TestAdMutation(t *testing.T) {
	ad := NewAd()
	ad.SetInt("a", 1)
	ad.SetString("b", "x")
	ad.SetBool("c", true)
	ad.SetReal("d", 2.5)
	if err := ad.SetExprString("e", "a + 1"); err != nil {
		t.Fatal(err)
	}
	if got := ad.Names(); strings.Join(got, ",") != "a,b,c,d,e" {
		t.Errorf("Names = %v", got)
	}
	ad.SetInt("A", 10) // case-insensitive replace keeps position
	if got := ad.Names(); strings.Join(got, ",") != "a,b,c,d,e" {
		t.Errorf("Names after replace = %v", got)
	}
	if v := ad.EvalAttr("e", nil); !SameValue(v, Int(11)) {
		t.Errorf("e = %v, want 11", v)
	}
	if !ad.Delete("B") {
		t.Error("Delete(B) failed")
	}
	if ad.Delete("zzz") {
		t.Error("Delete(zzz) should report false")
	}
	cp := ad.Copy()
	cp.SetInt("a", 99)
	if v := ad.EvalAttr("a", nil); !SameValue(v, Int(10)) {
		t.Errorf("Copy is not independent: a = %v", v)
	}
}

func TestRoundTripString(t *testing.T) {
	srcs := []string{
		`[ a = 1; b = "x"; c = {1, 2.5, "s"}; d = [ e = true ]; f = a + b =?= undefined ]`,
		`[ Requirements = (other.X > 3) && member("p", MY.L) ]`,
	}
	for _, src := range srcs {
		ad, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		again, err := Parse(ad.String())
		if err != nil {
			t.Fatalf("reparse of %q: %v", ad.String(), err)
		}
		if ad.String() != again.String() {
			t.Errorf("round trip mismatch:\n%s\n%s", ad.String(), again.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "1 +", "(1", "[a = ]", "[1 = 2]", `"unterminated`, "a ? b", "{1,", "[a=1 b=2]extra",
		"foo(1,", "@", "1 2",
	}
	for _, src := range bad {
		if _, err := ParseExpr(src); err == nil {
			if _, err2 := Parse(src); err2 == nil {
				t.Errorf("expected parse error for %q", src)
			}
		}
	}
}

func TestComments(t *testing.T) {
	ad, err := Parse("[ a = 1; // line comment\n b = /* block */ 2 ]")
	if err != nil {
		t.Fatal(err)
	}
	if v := ad.EvalAttr("b", nil); !SameValue(v, Int(2)) {
		t.Errorf("b = %v, want 2", v)
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int(5), "5"},
		{Real(2.5), "2.5"},
		{Real(3), "3.0"},
		{Str("a"), `"a"`},
		{Bool(true), "true"},
		{Undefined(), "undefined"},
		{ErrorVal("boom"), "error"},
		{List(Int(1), Str("x")), `{1, "x"}`},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v-kind) = %q, want %q", c.v.Kind(), got, c.want)
		}
	}
}

// Property: integer arithmetic in the ClassAd evaluator agrees with Go.
func TestQuickIntArithmetic(t *testing.T) {
	f := func(a, b int32) bool {
		ad := NewAd()
		ad.SetInt("x", int64(a))
		ad.SetInt("y", int64(b))
		if err := ad.SetExprString("sum", "x + y"); err != nil {
			return false
		}
		if err := ad.SetExprString("prod", "x * y"); err != nil {
			return false
		}
		sum := ad.EvalAttr("sum", nil)
		prod := ad.EvalAttr("prod", nil)
		return SameValue(sum, Int(int64(a)+int64(b))) &&
			SameValue(prod, Int(int64(a)*int64(b)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: any string literal survives quoting and reparsing.
func TestQuickStringRoundTrip(t *testing.T) {
	f := func(s string) bool {
		ad := NewAd()
		ad.SetString("s", s)
		again, err := Parse(ad.String())
		if err != nil {
			return false
		}
		v := again.EvalAttr("s", nil)
		got, ok := v.StringVal()
		return ok && got == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: comparison trichotomy for integers.
func TestQuickComparisonTrichotomy(t *testing.T) {
	f := func(a, b int16) bool {
		ad := NewAd()
		ad.SetInt("a", int64(a))
		ad.SetInt("b", int64(b))
		lt := mustEval(ad, "a < b").IsTrue()
		gt := mustEval(ad, "a > b").IsTrue()
		eq := mustEval(ad, "a == b").IsTrue()
		n := 0
		for _, x := range []bool{lt, gt, eq} {
			if x {
				n++
			}
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func mustEval(ad *Ad, src string) Value {
	e, err := ParseExpr(src)
	if err != nil {
		panic(err)
	}
	return e.Eval(&Env{Self: ad})
}

// Property: Match is symmetric in its two ads.
func TestQuickMatchSymmetry(t *testing.T) {
	f := func(x, y uint8) bool {
		a := NewAd()
		a.SetInt("v", int64(x))
		_ = a.SetExprString("Requirements", "other.v >= 10")
		b := NewAd()
		b.SetInt("v", int64(y))
		_ = b.SetExprString("Requirements", "other.v < 200")
		return Match(a, b) == Match(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBestMatchTieKeepsFirst(t *testing.T) {
	a := MustParse(`[ Name = "a"; Rank = 0 ]`)
	b := MustParse(`[ Name = "b"; Rank = 0 ]`)
	req := MustParse(`[ Requirements = true; Rank = 1 ]`)
	if idx := BestMatch(req, []*Ad{a, b}); idx != 0 {
		t.Errorf("BestMatch tie = %d, want 0 (first)", idx)
	}
}

func TestRankNonNumericIsZero(t *testing.T) {
	a := MustParse(`[ Rank = "high" ]`)
	if r := Rank(a, nil); r != 0 {
		t.Errorf("non-numeric Rank = %v", r)
	}
	b := MustParse(`[ ]`)
	if r := Rank(b, nil); r != 0 {
		t.Errorf("missing Rank = %v", r)
	}
}

func TestMatchRequirementsError(t *testing.T) {
	// An erroring Requirements never matches.
	a := MustParse(`[ Requirements = 1/0 == 1 ]`)
	b := MustParse(`[ ]`)
	if Match(a, b) {
		t.Error("erroring Requirements matched")
	}
}

func TestDeepNesting(t *testing.T) {
	ad := MustParse(`[ a = [ b = [ c = [ d = 42 ] ] ]; v = a.b.c.d ]`)
	if got := ad.EvalAttr("v", nil); !SameValue(got, Int(42)) {
		t.Errorf("deep selection = %v", got)
	}
}
