package classad

import (
	"fmt"
	"strconv"
	"strings"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

// ParseExpr parses a single ClassAd expression from src.
func ParseExpr(src string) (Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, fmt.Errorf("classad: trailing input at %d: %q", p.cur().pos, p.cur().text)
	}
	return e, nil
}

// Parse parses a complete ClassAd record, with or without the
// surrounding brackets: `[a = 1; b = 2]` or `a = 1; b = 2`.
func Parse(src string) (*Ad, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var ad *Ad
	if p.at(tokOp, "[") {
		ad, err = p.parseAdBody()
	} else {
		ad, err = p.parseBindings()
	}
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, fmt.Errorf("classad: trailing input at %d: %q", p.cur().pos, p.cur().text)
	}
	return ad, nil
}

// MustParse is Parse that panics on error; for constants in tests.
func MustParse(src string) *Ad {
	ad, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return ad
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) at(k tokKind, text string) bool {
	t := p.cur()
	if t.kind != k {
		return false
	}
	return text == "" || t.text == text
}

func (p *parser) accept(k tokKind, text string) bool {
	if p.at(k, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(k tokKind, text string) (token, error) {
	t := p.cur()
	if !p.at(k, text) {
		return t, fmt.Errorf("classad: expected %q at %d, found %q", text, t.pos, t.text)
	}
	p.pos++
	return t, nil
}

// parseAdBody parses `[ name = expr ; ... ]` with the cursor on `[`.
func (p *parser) parseAdBody() (*Ad, error) {
	if _, err := p.expect(tokOp, "["); err != nil {
		return nil, err
	}
	ad := NewAd()
	for !p.at(tokOp, "]") {
		if err := p.parseBinding(ad); err != nil {
			return nil, err
		}
		if !p.accept(tokOp, ";") {
			break
		}
	}
	if _, err := p.expect(tokOp, "]"); err != nil {
		return nil, err
	}
	return ad, nil
}

// parseBindings parses a bare `name = expr; ...` sequence.
func (p *parser) parseBindings() (*Ad, error) {
	ad := NewAd()
	for !p.at(tokEOF, "") {
		if err := p.parseBinding(ad); err != nil {
			return nil, err
		}
		if !p.accept(tokOp, ";") {
			break
		}
	}
	return ad, nil
}

func (p *parser) parseBinding(ad *Ad) error {
	name := p.cur()
	if name.kind != tokIdent {
		return fmt.Errorf("classad: expected attribute name at %d, found %q", name.pos, name.text)
	}
	p.pos++
	if _, err := p.expect(tokOp, "="); err != nil {
		return err
	}
	e, err := p.parseExpr()
	if err != nil {
		return err
	}
	ad.Set(name.text, e)
	return nil
}

// Expression grammar, lowest to highest precedence:
//
//	expr    := or [ '?' expr ':' expr ]
//	or      := and { '||' and }
//	and     := eq { '&&' eq }
//	eq      := rel { ('=='|'!='|'=?='|'=!=') rel }
//	rel     := add { ('<'|'<='|'>'|'>=') add }
//	add     := mul { ('+'|'-') mul }
//	mul     := unary { ('*'|'/'|'%') unary }
//	unary   := ('!'|'-'|'+') unary | postfix
//	postfix := primary { '.' ident }
//	primary := literal | ident [ '(' args ')' ] | '(' expr ')' | '[' ad ']' | '{' list '}'
func (p *parser) parseExpr() (Expr, error) {
	c, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.accept(tokOp, "?") {
		t, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, ":"); err != nil {
			return nil, err
		}
		f, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return condExpr{c: c, t: t, f: f}, nil
	}
	return c, nil
}

func (p *parser) parseBinaryLevel(ops []string, next func() (Expr, error)) (Expr, error) {
	l, err := next()
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range ops {
			if p.at(tokOp, op) {
				p.pos++
				r, err := next()
				if err != nil {
					return nil, err
				}
				l = binaryExpr{op: op, l: l, r: r}
				matched = true
				break
			}
		}
		if !matched {
			return l, nil
		}
	}
}

func (p *parser) parseOr() (Expr, error) {
	return p.parseBinaryLevel([]string{"||"}, p.parseAnd)
}

func (p *parser) parseAnd() (Expr, error) {
	return p.parseBinaryLevel([]string{"&&"}, p.parseEq)
}

func (p *parser) parseEq() (Expr, error) {
	return p.parseBinaryLevel([]string{"==", "!=", "=?=", "=!="}, p.parseRel)
}

func (p *parser) parseRel() (Expr, error) {
	return p.parseBinaryLevel([]string{"<=", ">=", "<", ">"}, p.parseAdd)
}

func (p *parser) parseAdd() (Expr, error) {
	return p.parseBinaryLevel([]string{"+", "-"}, p.parseMul)
}

func (p *parser) parseMul() (Expr, error) {
	return p.parseBinaryLevel([]string{"*", "/", "%"}, p.parseUnary)
}

func (p *parser) parseUnary() (Expr, error) {
	for _, op := range []string{"!", "-", "+"} {
		if p.at(tokOp, op) {
			p.pos++
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return unaryExpr{op: op, x: x}, nil
		}
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.accept(tokOp, ".") {
		name := p.cur()
		if name.kind != tokIdent {
			return nil, fmt.Errorf("classad: expected attribute after '.' at %d", name.pos)
		}
		p.pos++
		// MY.x / self.x / TARGET.x / other.x are scope prefixes, not
		// record selection, when the base is a bare identifier.
		if a, ok := e.(attrExpr); ok && a.scope == "" {
			switch strings.ToLower(a.name) {
			case "my", "self":
				e = attrExpr{scope: "self", name: name.text}
				continue
			case "target", "other":
				e = attrExpr{scope: "other", name: name.text}
				continue
			}
		}
		e = selectExpr{base: e, name: name.text}
	}
	return e, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokInt:
		p.pos++
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("classad: bad integer %q at %d", t.text, t.pos)
		}
		return Lit(Int(i)), nil
	case tokReal:
		p.pos++
		r, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("classad: bad real %q at %d", t.text, t.pos)
		}
		return Lit(Real(r)), nil
	case tokString:
		p.pos++
		return Lit(Str(t.text)), nil
	case tokIdent:
		p.pos++
		switch strings.ToLower(t.text) {
		case "true":
			return Lit(Bool(true)), nil
		case "false":
			return Lit(Bool(false)), nil
		case "undefined":
			return Lit(Undefined()), nil
		case "error":
			return Lit(ErrorVal("literal")), nil
		}
		if p.at(tokOp, "(") {
			return p.parseCall(t.text)
		}
		return attrExpr{name: t.text}, nil
	case tokOp:
		switch t.text {
		case "(":
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
			return e, nil
		case "[":
			ad, err := p.parseAdBody()
			if err != nil {
				return nil, err
			}
			return adExpr{ad: ad}, nil
		case "{":
			return p.parseList()
		}
	}
	return nil, fmt.Errorf("classad: unexpected token %q at %d", t.text, t.pos)
}

func (p *parser) parseCall(name string) (Expr, error) {
	if _, err := p.expect(tokOp, "("); err != nil {
		return nil, err
	}
	var args []Expr
	if !p.at(tokOp, ")") {
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if !p.accept(tokOp, ",") {
				break
			}
		}
	}
	if _, err := p.expect(tokOp, ")"); err != nil {
		return nil, err
	}
	return callExpr{name: name, args: args}, nil
}

func (p *parser) parseList() (Expr, error) {
	if _, err := p.expect(tokOp, "{"); err != nil {
		return nil, err
	}
	var elems []Expr
	if !p.at(tokOp, "}") {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			elems = append(elems, e)
			if !p.accept(tokOp, ",") {
				break
			}
		}
	}
	if _, err := p.expect(tokOp, "}"); err != nil {
		return nil, err
	}
	return listExpr{elems: elems}, nil
}
