package classad

import (
	"math"
	"strings"
)

// Env is the evaluation context: the ad an expression belongs to
// (Self) and, during matchmaking, the candidate ad (Other).
type Env struct {
	Self  *Ad
	Other *Ad
	// inProgress guards against circular attribute references.
	inProgress map[string]bool
}

func (e *Env) enter(key string) bool {
	if e.inProgress == nil {
		e.inProgress = make(map[string]bool)
	}
	if e.inProgress[key] {
		return false
	}
	e.inProgress[key] = true
	return true
}

func (e *Env) leave(key string) { delete(e.inProgress, key) }

// Expr is a parsed ClassAd expression.
type Expr interface {
	// Eval evaluates the expression in env.
	Eval(env *Env) Value
	// String renders the expression in source syntax.
	String() string
}

// Lit wraps a constant value as an expression.
func Lit(v Value) Expr { return litExpr{v} }

type litExpr struct{ v Value }

func (l litExpr) Eval(*Env) Value { return l.v }
func (l litExpr) String() string  { return l.v.String() }

// attrExpr is an attribute reference, optionally scoped with MY./self.
// or TARGET./other. prefixes.
type attrExpr struct {
	scope string // "", "self", "other"
	name  string
}

func (a attrExpr) Eval(env *Env) Value {
	var ad *Ad
	var otherAd *Ad
	switch a.scope {
	case "self":
		ad, otherAd = env.Self, env.Other
	case "other":
		ad, otherAd = env.Other, env.Self
	default:
		// Unqualified: resolve in self only (Condor old-ClassAd
		// semantics; cross-ad references must be explicit).
		ad, otherAd = env.Self, env.Other
	}
	if ad == nil {
		return Undefined()
	}
	e, ok := ad.Lookup(a.name)
	if !ok {
		return Undefined()
	}
	key := a.scope + "\x00" + strings.ToLower(a.name)
	if !env.enter(key) {
		return ErrorVal("circular attribute reference: " + a.name)
	}
	defer env.leave(key)
	sub := &Env{Self: ad, Other: otherAd, inProgress: env.inProgress}
	return e.Eval(sub)
}

func (a attrExpr) String() string {
	switch a.scope {
	case "self":
		return "MY." + a.name
	case "other":
		return "TARGET." + a.name
	}
	return a.name
}

// Attr returns an unqualified attribute reference expression.
func Attr(name string) Expr { return attrExpr{name: name} }

// OtherAttr returns a TARGET-scoped attribute reference.
func OtherAttr(name string) Expr { return attrExpr{scope: "other", name: name} }

// selectExpr is record selection: base.attr where base evaluates to a
// nested ad.
type selectExpr struct {
	base Expr
	name string
}

func (s selectExpr) Eval(env *Env) Value {
	b := s.base.Eval(env)
	switch b.Kind() {
	case AdKind:
		ad, _ := b.AdVal()
		e, ok := ad.Lookup(s.name)
		if !ok {
			return Undefined()
		}
		return e.Eval(&Env{Self: ad, Other: env.Other, inProgress: env.inProgress})
	case UndefinedKind:
		return Undefined()
	}
	return ErrorVal("selection on non-classad value")
}

func (s selectExpr) String() string { return s.base.String() + "." + s.name }

// listExpr is a list constructor {e1, e2, ...}.
type listExpr struct{ elems []Expr }

func (l listExpr) Eval(env *Env) Value {
	vs := make([]Value, len(l.elems))
	for i, e := range l.elems {
		vs[i] = e.Eval(env)
	}
	return List(vs...)
}

func (l listExpr) String() string {
	parts := make([]string, len(l.elems))
	for i, e := range l.elems {
		parts[i] = e.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// adExpr is a nested record constructor [a = e; ...].
type adExpr struct{ ad *Ad }

func (a adExpr) Eval(env *Env) Value { return AdValue(a.ad) }
func (a adExpr) String() string      { return a.ad.String() }

// unaryExpr applies ! or unary -.
type unaryExpr struct {
	op string
	x  Expr
}

func (u unaryExpr) Eval(env *Env) Value {
	v := u.x.Eval(env)
	if v.IsError() {
		return v
	}
	switch u.op {
	case "!":
		switch v.Kind() {
		case BoolKind:
			b, _ := v.BoolVal()
			return Bool(!b)
		case UndefinedKind:
			return Undefined()
		}
		return ErrorVal("! applied to " + v.Kind().String())
	case "-":
		switch v.Kind() {
		case IntKind:
			i, _ := v.IntVal()
			return Int(-i)
		case RealKind:
			r, _ := v.RealVal()
			return Real(-r)
		case UndefinedKind:
			return Undefined()
		}
		return ErrorVal("unary - applied to " + v.Kind().String())
	case "+":
		switch v.Kind() {
		case IntKind, RealKind, UndefinedKind:
			return v
		}
		return ErrorVal("unary + applied to " + v.Kind().String())
	}
	return ErrorVal("unknown unary operator " + u.op)
}

func (u unaryExpr) String() string { return u.op + u.x.String() }

// binaryExpr applies an infix operator.
type binaryExpr struct {
	op   string
	l, r Expr
}

func (b binaryExpr) Eval(env *Env) Value {
	switch b.op {
	case "&&":
		return evalAnd(b.l, b.r, env)
	case "||":
		return evalOr(b.l, b.r, env)
	case "=?=":
		return Bool(SameValue(b.l.Eval(env), b.r.Eval(env)))
	case "=!=":
		return Bool(!SameValue(b.l.Eval(env), b.r.Eval(env)))
	}
	lv := b.l.Eval(env)
	rv := b.r.Eval(env)
	if lv.IsError() {
		return lv
	}
	if rv.IsError() {
		return rv
	}
	switch b.op {
	case "+", "-", "*", "/", "%":
		return evalArith(b.op, lv, rv)
	case "==", "!=", "<", "<=", ">", ">=":
		return evalCompare(b.op, lv, rv)
	}
	return ErrorVal("unknown operator " + b.op)
}

func (b binaryExpr) String() string {
	return "(" + b.l.String() + " " + b.op + " " + b.r.String() + ")"
}

func evalAnd(l, r Expr, env *Env) Value {
	lv := l.Eval(env)
	if lv.Kind() == BoolKind && !lv.IsTrue() {
		return Bool(false) // short circuit: False && x == False
	}
	if lv.IsError() {
		return lv
	}
	rv := r.Eval(env)
	if rv.Kind() == BoolKind && !rv.IsTrue() {
		return Bool(false)
	}
	if rv.IsError() {
		return rv
	}
	if lv.IsUndefined() || rv.IsUndefined() {
		return Undefined()
	}
	lb, lok := lv.BoolVal()
	rb, rok := rv.BoolVal()
	if !lok || !rok {
		return ErrorVal("&& applied to non-boolean")
	}
	return Bool(lb && rb)
}

func evalOr(l, r Expr, env *Env) Value {
	lv := l.Eval(env)
	if lv.IsTrue() {
		return Bool(true)
	}
	if lv.IsError() {
		return lv
	}
	rv := r.Eval(env)
	if rv.IsTrue() {
		return Bool(true)
	}
	if rv.IsError() {
		return rv
	}
	if lv.IsUndefined() || rv.IsUndefined() {
		return Undefined()
	}
	lb, lok := lv.BoolVal()
	rb, rok := rv.BoolVal()
	if !lok || !rok {
		return ErrorVal("|| applied to non-boolean")
	}
	return Bool(lb || rb)
}

func evalArith(op string, lv, rv Value) Value {
	if lv.IsUndefined() || rv.IsUndefined() {
		return Undefined()
	}
	if op == "+" && lv.Kind() == StringKind && rv.Kind() == StringKind {
		ls, _ := lv.StringVal()
		rs, _ := rv.StringVal()
		return Str(ls + rs)
	}
	if lv.Kind() == IntKind && rv.Kind() == IntKind {
		li, _ := lv.IntVal()
		ri, _ := rv.IntVal()
		switch op {
		case "+":
			return Int(li + ri)
		case "-":
			return Int(li - ri)
		case "*":
			return Int(li * ri)
		case "/":
			if ri == 0 {
				return ErrorVal("division by zero")
			}
			return Int(li / ri)
		case "%":
			if ri == 0 {
				return ErrorVal("modulus by zero")
			}
			return Int(li % ri)
		}
	}
	lf, lok := lv.Number()
	rf, rok := rv.Number()
	if !lok || !rok {
		return Errorf("%s applied to %s and %s", op, lv.Kind(), rv.Kind())
	}
	switch op {
	case "+":
		return Real(lf + rf)
	case "-":
		return Real(lf - rf)
	case "*":
		return Real(lf * rf)
	case "/":
		if rf == 0 {
			return ErrorVal("division by zero")
		}
		return Real(lf / rf)
	case "%":
		if rf == 0 {
			return ErrorVal("modulus by zero")
		}
		return Real(math.Mod(lf, rf))
	}
	return ErrorVal("unknown arithmetic operator " + op)
}

func evalCompare(op string, lv, rv Value) Value {
	if lv.IsUndefined() || rv.IsUndefined() {
		return Undefined()
	}
	// Strings compare case-insensitively under ==/!=/</... (old
	// ClassAd semantics; use =?= for case-sensitive identity).
	if lv.Kind() == StringKind && rv.Kind() == StringKind {
		ls, _ := lv.StringVal()
		rs, _ := rv.StringVal()
		c := strings.Compare(strings.ToLower(ls), strings.ToLower(rs))
		return cmpResult(op, c)
	}
	if lv.Kind() == BoolKind && rv.Kind() == BoolKind && (op == "==" || op == "!=") {
		lb, _ := lv.BoolVal()
		rb, _ := rv.BoolVal()
		if op == "==" {
			return Bool(lb == rb)
		}
		return Bool(lb != rb)
	}
	lf, lok := lv.Number()
	rf, rok := rv.Number()
	if !lok || !rok {
		return Errorf("%s applied to %s and %s", op, lv.Kind(), rv.Kind())
	}
	var c int
	switch {
	case lf < rf:
		c = -1
	case lf > rf:
		c = 1
	}
	return cmpResult(op, c)
}

func cmpResult(op string, c int) Value {
	switch op {
	case "==":
		return Bool(c == 0)
	case "!=":
		return Bool(c != 0)
	case "<":
		return Bool(c < 0)
	case "<=":
		return Bool(c <= 0)
	case ">":
		return Bool(c > 0)
	case ">=":
		return Bool(c >= 0)
	}
	return ErrorVal("unknown comparison " + op)
}

// condExpr is the ternary conditional c ? t : f.
type condExpr struct {
	c, t, f Expr
}

func (c condExpr) Eval(env *Env) Value {
	cv := c.c.Eval(env)
	switch {
	case cv.IsTrue():
		return c.t.Eval(env)
	case cv.Kind() == BoolKind:
		return c.f.Eval(env)
	case cv.IsUndefined():
		return Undefined()
	case cv.IsError():
		return cv
	}
	return ErrorVal("conditional on non-boolean")
}

func (c condExpr) String() string {
	return "(" + c.c.String() + " ? " + c.t.String() + " : " + c.f.String() + ")"
}

// callExpr is a builtin function application.
type callExpr struct {
	name string
	args []Expr
}

func (c callExpr) Eval(env *Env) Value {
	fn, ok := builtins[strings.ToLower(c.name)]
	if !ok {
		return ErrorVal("unknown function " + c.name)
	}
	args := make([]Value, len(c.args))
	for i, a := range c.args {
		args[i] = a.Eval(env)
	}
	return fn(args)
}

func (c callExpr) String() string {
	parts := make([]string, len(c.args))
	for i, a := range c.args {
		parts[i] = a.String()
	}
	return c.name + "(" + strings.Join(parts, ", ") + ")"
}
