package classad

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates lexical token types.
type tokKind int

const (
	tokEOF tokKind = iota
	tokInt
	tokReal
	tokString
	tokIdent
	tokOp // operators and punctuation
)

type token struct {
	kind tokKind
	text string
	pos  int
}

// lexer tokenizes ClassAd source text.
type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(tokEOF, "", l.pos)
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
			if err := l.lexNumber(start); err != nil {
				return nil, err
			}
		case c == '"':
			if err := l.lexString(start); err != nil {
				return nil, err
			}
		case isIdentStart(c):
			l.lexIdent(start)
		default:
			if err := l.lexOp(start); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) emit(k tokKind, text string, pos int) {
	l.toks = append(l.toks, token{kind: k, text: text, pos: pos})
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// Comments: // to end of line, /* ... */.
		if c == '/' && l.pos+1 < len(l.src) {
			switch l.src[l.pos+1] {
			case '/':
				for l.pos < len(l.src) && l.src[l.pos] != '\n' {
					l.pos++
				}
				continue
			case '*':
				end := strings.Index(l.src[l.pos+2:], "*/")
				if end < 0 {
					l.pos = len(l.src)
					continue
				}
				l.pos += 2 + end + 2
				continue
			}
		}
		return
	}
}

func (l *lexer) lexNumber(start int) error {
	isReal := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if isDigit(c) {
			l.pos++
			continue
		}
		if c == '.' && !isReal {
			isReal = true
			l.pos++
			continue
		}
		if (c == 'e' || c == 'E') && l.pos > start {
			next := l.pos + 1
			if next < len(l.src) && (l.src[next] == '+' || l.src[next] == '-') {
				next++
			}
			if next < len(l.src) && isDigit(l.src[next]) {
				isReal = true
				l.pos = next + 1
				continue
			}
		}
		break
	}
	text := l.src[start:l.pos]
	if isReal {
		l.emit(tokReal, text, start)
	} else {
		l.emit(tokInt, text, start)
	}
	return nil
}

func (l *lexer) lexString(start int) error {
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case '"':
			l.pos++
			l.emit(tokString, sb.String(), start)
			return nil
		case '\\':
			l.pos++
			if l.pos >= len(l.src) {
				return fmt.Errorf("classad: unterminated escape at %d", start)
			}
			switch l.src[l.pos] {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case 'r':
				sb.WriteByte('\r')
			case '\\':
				sb.WriteByte('\\')
			case '"':
				sb.WriteByte('"')
			default:
				sb.WriteByte(l.src[l.pos])
			}
			l.pos++
		default:
			sb.WriteByte(c)
			l.pos++
		}
	}
	return fmt.Errorf("classad: unterminated string at %d", start)
}

func (l *lexer) lexIdent(start int) {
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	l.emit(tokIdent, l.src[start:l.pos], start)
}

// multi-character operators, longest first.
var multiOps = []string{"=?=", "=!=", "==", "!=", "<=", ">=", "&&", "||"}

func (l *lexer) lexOp(start int) error {
	rest := l.src[l.pos:]
	for _, op := range multiOps {
		if strings.HasPrefix(rest, op) {
			l.pos += len(op)
			l.emit(tokOp, op, start)
			return nil
		}
	}
	c := l.src[l.pos]
	switch c {
	case '+', '-', '*', '/', '%', '<', '>', '!', '?', ':', '(', ')', '[', ']', '{', '}', ',', ';', '=', '.':
		l.pos++
		l.emit(tokOp, string(c), start)
		return nil
	}
	return fmt.Errorf("classad: unexpected character %q at %d", rune(c), start)
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || unicode.IsLetter(rune(c)) }
func isIdentPart(c byte) bool  { return c == '_' || unicode.IsLetter(rune(c)) || isDigit(c) }
