// Package bufpool provides size-keyed pools of byte buffers for the
// data plane. Transfer pumps and protocol clients move data in fixed
// chunk sizes (protocol.ChunkSize and friends); allocating a fresh
// chunk buffer per transfer or per call puts tens of kilobytes per
// operation on the garbage collector. The pool hands buffers back out
// keyed by exact capacity, so every distinct chunk size reuses its own
// free list.
package bufpool

import "sync"

// pools maps buffer capacity -> *sync.Pool of *[]byte. Pools are
// created on first use and live for the process; the set of distinct
// chunk sizes in the system is small and static.
var pools sync.Map

func poolFor(size int) *sync.Pool {
	if p, ok := pools.Load(size); ok {
		return p.(*sync.Pool)
	}
	p, _ := pools.LoadOrStore(size, &sync.Pool{
		New: func() interface{} {
			b := make([]byte, size)
			return &b
		},
	})
	return p.(*sync.Pool)
}

// Get returns a buffer of exactly size bytes (len == cap == size). The
// pointer form avoids an allocation when the buffer is returned with
// Put. Callers must not retain the buffer after Put.
func Get(size int) *[]byte {
	if size <= 0 {
		b := []byte{}
		return &b
	}
	return poolFor(size).Get().(*[]byte)
}

// Put returns a buffer obtained from Get to its size class. Buffers
// whose capacity was changed are dropped rather than pooled.
func Put(buf *[]byte) {
	if buf == nil || cap(*buf) == 0 {
		return
	}
	*buf = (*buf)[:cap(*buf)]
	poolFor(cap(*buf)).Put(buf)
}
