// Package bufpool provides size-keyed pools of byte buffers for the
// data plane. Transfer pumps and protocol clients move data in fixed
// chunk sizes (protocol.ChunkSize and friends); allocating a fresh
// chunk buffer per transfer or per call puts tens of kilobytes per
// operation on the garbage collector. The pool hands buffers back out
// keyed by exact capacity, so every distinct chunk size reuses its own
// free list.
package bufpool

import (
	"sync"
	"sync/atomic"
)

// pools maps buffer capacity -> *sync.Pool of *[]byte. Pools are
// created on first use and live for the process; the set of distinct
// chunk sizes in the system is small and static.
var pools sync.Map

// Package-wide counters behind Stats(). Atomic so the data plane pays
// one uncontended add per Get/Put; misses count pool refills (fresh
// allocations), so a high hit ratio means the free lists are doing
// their job.
var (
	statGets          atomic.Int64
	statPuts          atomic.Int64
	statMisses        atomic.Int64
	statBytesRecycled atomic.Int64
)

// PoolStats is a snapshot of the pool's cumulative activity.
type PoolStats struct {
	Gets          int64 // buffers handed out
	Puts          int64 // buffers returned
	Misses        int64 // Gets that had to allocate fresh
	BytesRecycled int64 // capacity of all returned buffers
}

// Stats returns cumulative pool counters (observability exposition).
func Stats() PoolStats {
	return PoolStats{
		Gets:          statGets.Load(),
		Puts:          statPuts.Load(),
		Misses:        statMisses.Load(),
		BytesRecycled: statBytesRecycled.Load(),
	}
}

func poolFor(size int) *sync.Pool {
	if p, ok := pools.Load(size); ok {
		return p.(*sync.Pool)
	}
	p, _ := pools.LoadOrStore(size, &sync.Pool{
		New: func() interface{} {
			statMisses.Add(1)
			b := make([]byte, size)
			return &b
		},
	})
	return p.(*sync.Pool)
}

// Get returns a buffer of exactly size bytes (len == cap == size). The
// pointer form avoids an allocation when the buffer is returned with
// Put. Callers must not retain the buffer after Put.
func Get(size int) *[]byte {
	if size <= 0 {
		b := []byte{}
		return &b
	}
	statGets.Add(1)
	return poolFor(size).Get().(*[]byte)
}

// minClass is the smallest GetAtLeast size class.
const minClass = 512

// GetAtLeast returns a buffer with len == size drawn from the nearest
// power-of-two size class >= size. Callers with variable-size needs
// (MODE E block payloads, whose length is whatever the sender framed)
// use it instead of Get so the pool keeps a bounded set of size
// classes rather than one permanent free list per distinct length
// ever seen. Put recycles by capacity, preserving class identity.
func GetAtLeast(size int) *[]byte {
	if size <= 0 {
		b := []byte{}
		return &b
	}
	class := minClass
	for class < size {
		class <<= 1
	}
	statGets.Add(1)
	bp := poolFor(class).Get().(*[]byte)
	*bp = (*bp)[:size]
	return bp
}

// Put returns a buffer obtained from Get to its size class. Buffers
// whose capacity was changed are dropped rather than pooled.
func Put(buf *[]byte) {
	if buf == nil || cap(*buf) == 0 {
		return
	}
	*buf = (*buf)[:cap(*buf)]
	statPuts.Add(1)
	statBytesRecycled.Add(int64(cap(*buf)))
	poolFor(cap(*buf)).Put(buf)
}
