package bufpool

import (
	"sync"
	"testing"
)

func TestGetSizes(t *testing.T) {
	for _, size := range []int{1, 512, 64 * 1024} {
		b := Get(size)
		if len(*b) != size || cap(*b) != size {
			t.Errorf("Get(%d): len=%d cap=%d", size, len(*b), cap(*b))
		}
		Put(b)
	}
}

func TestGetZero(t *testing.T) {
	b := Get(0)
	if len(*b) != 0 {
		t.Errorf("Get(0): len=%d", len(*b))
	}
	Put(b) // must not panic or pool the empty buffer
}

func TestReuseBySizeClass(t *testing.T) {
	// A buffer put back is served again for the same size and never
	// for a different size.
	b := Get(4096)
	(*b)[0] = 0xAB
	Put(b)
	other := Get(8192)
	if cap(*other) != 8192 {
		t.Errorf("cross-class buffer: cap=%d", cap(*other))
	}
	again := Get(4096)
	if cap(*again) != 4096 {
		t.Errorf("same-class buffer: cap=%d", cap(*again))
	}
}

func TestPutRestoresFullLength(t *testing.T) {
	b := Get(1024)
	*b = (*b)[:10] // caller shrank the view
	Put(b)
	c := Get(1024)
	if len(*c) != 1024 {
		t.Errorf("recycled buffer len=%d, want full length", len(*c))
	}
}

func TestConcurrentAccess(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				b := Get(64 * 1024)
				(*b)[0] = byte(j)
				Put(b)
			}
		}()
	}
	wg.Wait()
}

func TestStatsCounters(t *testing.T) {
	before := Stats()
	b := Get(2048) // fresh size class: must miss
	Put(b)
	Get(2048) // warm: pooled, no new miss expected from this class
	after := Stats()
	if got := after.Gets - before.Gets; got != 2 {
		t.Errorf("Gets delta = %d, want 2", got)
	}
	if got := after.Puts - before.Puts; got != 1 {
		t.Errorf("Puts delta = %d, want 1", got)
	}
	if after.Misses <= before.Misses {
		t.Error("fresh size class did not count a miss")
	}
	if got := after.BytesRecycled - before.BytesRecycled; got != 2048 {
		t.Errorf("BytesRecycled delta = %d, want 2048", got)
	}
	// Zero-size gets bypass the pools and stay uncounted.
	statsBefore := Stats()
	Put(Get(0))
	if s := Stats(); s.Gets != statsBefore.Gets || s.Puts != statsBefore.Puts {
		t.Error("zero-size Get/Put counted")
	}
}

func TestSteadyStateAllocs(t *testing.T) {
	// Warm the pool, then verify the get/put cycle allocates nothing.
	Put(Get(32 * 1024))
	allocs := testing.AllocsPerRun(100, func() {
		b := Get(32 * 1024)
		Put(b)
	})
	// A stray GC may victimize the pool once; steady state means the
	// cycle does not allocate on every run.
	if allocs >= 1 {
		t.Errorf("steady-state Get/Put allocates %v per run, want ~0", allocs)
	}
}
