package transfer

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"

	"nest/internal/sched"
	"nest/internal/sim"
	"nest/internal/storage"
)

// The striped equivalence suite is the accounting gate for intra-file
// parallelism: a striped transfer must produce byte-identical output
// and identical scheduler/obs byte charges — admissions, preemptions,
// class bytes, result bytes — as a single-pump transfer of the same
// file and quantum. It mirrors the PR 5 handoff-vs-pooled suite one
// level up: there the two data paths had to be interchangeable, here
// the two concurrency shapes must be.

// sliceWriter writes sequentially into its own region of a shared
// output buffer; disjoint stripe regions need no locking.
type sliceWriter struct {
	buf []byte
	n   int
}

func (w *sliceWriter) Write(p []byte) (int, error) {
	n := copy(w.buf[w.n:], p)
	w.n += n
	if n < len(p) {
		return n, io.ErrShortWrite
	}
	return n, nil
}

// runManagedModel is runManaged with a selectable concurrency model.
func runManagedModel(t testing.TB, tr *Transfer, quantum int64, model ModelKind) (ManagerStats, ClassStats, Result) {
	t.Helper()
	clock := sim.NewRealClock()
	m := NewManager(Options{
		Clock:   clock,
		Model:   model,
		Slots:   1,
		Quantum: quantum,
		Policy:  sched.NewStride(map[string]int{tr.Class: 100}),
	})
	var res Result
	done := make(chan struct{})
	tr.OnDone = func(r Result) { res = r; close(done) }
	m.Submit(tr)
	<-done
	m.Wait()
	stats := m.Stats()
	cls := m.Metrics().Class(tr.Class)
	m.Close()
	return stats, cls, res
}

// stripeTransfer builds a striped GET over f using an extent-aligned
// partition, writing each stripe into its region of out.
func stripeTransfer(f storage.File, size int64, width int, out []byte) *Transfer {
	tr := &Transfer{Class: "eq", Path: "/striped", Size: size}
	for _, r := range storage.PartitionStripes(0, size, width) {
		tr.Ranges = append(tr.Ranges, StripeRange{
			Offset: r.Off,
			Size:   r.N,
			Src:    storage.NewSectionReader(f, r.Off, r.N),
			Dst:    &sliceWriter{buf: out[r.Off : r.Off+r.N]},
		})
	}
	return tr
}

func TestStripedEquivalenceGet(t *testing.T) {
	const size = 10*64*1024 + 13 // ten full chunks plus a sub-chunk tail
	fs := storage.NewMemFS(nil, 1<<30)
	f, err := fs.Create("/striped", "u")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	data := make([]byte, size)
	rand.New(rand.NewSource(11)).Read(data)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}

	// Quanta chosen to hit chunk-aligned, unaligned, and unbounded
	// segmentation; widths cover even and uneven partitions.
	for _, quantum := range []int64{0, 192 * 1024, 100_000} {
		single := &Transfer{
			Class: "eq", Path: "/striped", Size: size,
			Src: storage.NewSectionReader(f, 0, size),
			Dst: &collectWriter{},
		}
		sStats, sCls, sRes := runManaged(t, single, quantum)
		if sRes.Err != nil {
			t.Fatalf("quantum %d: single-pump error %v", quantum, sRes.Err)
		}
		sOut := single.Dst.(*collectWriter).bytes()

		for _, width := range []int{2, 4} {
			out := make([]byte, size)
			tr := stripeTransfer(f, size, width, out)
			stats, cls, res := runManaged(t, tr, quantum)
			if res.Err != nil {
				t.Fatalf("quantum %d width %d: striped error %v", quantum, width, res.Err)
			}
			if !bytes.Equal(out, sOut) {
				t.Fatalf("quantum %d width %d: output differs from single pump", quantum, width)
			}
			if res.Bytes != sRes.Bytes {
				t.Fatalf("quantum %d width %d: result bytes %d, single %d", quantum, width, res.Bytes, sRes.Bytes)
			}
			if cls.Bytes != sCls.Bytes {
				t.Fatalf("quantum %d width %d: obs bytes %d, single %d", quantum, width, cls.Bytes, sCls.Bytes)
			}
			if stats.Admissions != sStats.Admissions || stats.Preemptions != sStats.Preemptions {
				t.Fatalf("quantum %d width %d: scheduler charges adm=%d pre=%d, single adm=%d pre=%d",
					quantum, width, stats.Admissions, stats.Preemptions, sStats.Admissions, sStats.Preemptions)
			}
		}
	}
}

func TestStripedEquivalencePut(t *testing.T) {
	const size = 10*64*1024 + 13
	data := make([]byte, size)
	rand.New(rand.NewSource(13)).Read(data)

	run := func(width int, quantum int64) ([]byte, ManagerStats, ClassStats, Result) {
		fs := storage.NewMemFS(nil, 1<<30)
		f, err := fs.Create("/out", "u")
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		tr := &Transfer{Class: "eq", Path: "/out", Size: size}
		if width <= 1 {
			tr.Src = bytes.NewReader(data)
			tr.Dst = storage.NewOffsetWriter(f, 0)
		} else {
			for _, r := range storage.PartitionStripes(0, size, width) {
				tr.Ranges = append(tr.Ranges, StripeRange{
					Offset: r.Off,
					Size:   r.N,
					Src:    bytes.NewReader(data[r.Off : r.Off+r.N]),
					Dst:    storage.NewOffsetWriter(f, r.Off),
				})
			}
		}
		stats, cls, res := runManaged(t, tr, quantum)
		out := make([]byte, f.Size())
		if _, err := f.ReadAt(out, 0); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		return out, stats, cls, res
	}

	for _, quantum := range []int64{0, 192 * 1024} {
		sOut, sStats, sCls, sRes := run(1, quantum)
		if sRes.Err != nil {
			t.Fatalf("quantum %d: single-pump error %v", quantum, sRes.Err)
		}
		out, stats, cls, res := run(4, quantum)
		if res.Err != nil {
			t.Fatalf("quantum %d: striped error %v", quantum, res.Err)
		}
		if !bytes.Equal(out, sOut) || !bytes.Equal(out, data) {
			t.Fatalf("quantum %d: stored contents differ", quantum)
		}
		if res.Bytes != sRes.Bytes || cls.Bytes != sCls.Bytes {
			t.Fatalf("quantum %d: byte charges differ: result %d/%d obs %d/%d",
				quantum, res.Bytes, sRes.Bytes, cls.Bytes, sCls.Bytes)
		}
		if stats.Admissions != sStats.Admissions || stats.Preemptions != sStats.Preemptions {
			t.Fatalf("quantum %d: scheduler charges differ: adm=%d/%d pre=%d/%d",
				quantum, stats.Admissions, sStats.Admissions, stats.Preemptions, sStats.Preemptions)
		}
	}
}

// TestStripedAcrossModels drives a striped transfer through every
// concurrency architecture: threads and processes take the concurrent
// segment runner, events and seda interleave stripes chunk-by-chunk on
// their single-threaded loops, adaptive composes them.
func TestStripedAcrossModels(t *testing.T) {
	const size = 20 * 64 * 1024
	fs := storage.NewMemFS(nil, 1<<30)
	f, err := fs.Create("/striped", "u")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	data := make([]byte, size)
	rand.New(rand.NewSource(17)).Read(data)
	f.WriteAt(data, 0)

	for _, model := range []ModelKind{Threads, Processes, Events, Seda, Adaptive} {
		for _, quantum := range []int64{0, 192 * 1024} {
			out := make([]byte, size)
			tr := stripeTransfer(f, size, 4, out)
			_, _, res := runManagedModel(t, tr, quantum, model)
			if res.Err != nil {
				t.Fatalf("%s quantum %d: %v", model, quantum, res.Err)
			}
			if res.Bytes != size || !bytes.Equal(out, data) {
				t.Fatalf("%s quantum %d: moved %d bytes, output match=%v",
					model, quantum, res.Bytes, bytes.Equal(out, data))
			}
		}
	}
}

// TestStripedTruncatedSource: the file is shorter than the promised
// size, so the stripes past EOF observe a short read. The transfer must
// fail with io.ErrUnexpectedEOF (the first failing stripe's error),
// charge only whole delivered chunks, and never charge more than the
// resident bytes — the PR 5 rules applied per stripe.
func TestStripedTruncatedSource(t *testing.T) {
	const fileSize = 4 * 64 * 1024
	const promised = 8 * 64 * 1024

	fs := storage.NewMemFS(nil, 1<<30)
	f, err := fs.Create("/t", "u")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.WriteAt(make([]byte, fileSize), 0)

	out := make([]byte, promised)
	tr := stripeTransfer(f, promised, 2, out)
	_, cls, res := runManaged(t, tr, 0)

	if !errors.Is(res.Err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", res.Err)
	}
	if res.Bytes > fileSize {
		t.Fatalf("charged %d > resident %d", res.Bytes, fileSize)
	}
	if res.Bytes%(64*1024) != 0 {
		t.Fatalf("charged %d not chunk-aligned: partial chunks must be uncharged", res.Bytes)
	}
	if cls.Bytes != res.Bytes {
		t.Fatalf("obs bytes %d != result bytes %d", cls.Bytes, res.Bytes)
	}
}

// TestStripedTruncationRace races a striped GET against a writer that
// truncates and regrows the file. Each stripe must observe a consistent
// short read: the transfer ends cleanly or with ErrUnexpectedEOF, and
// charged bytes never exceed bytes delivered to the stripe sinks.
func TestStripedTruncationRace(t *testing.T) {
	const size = 32 * 64 * 1024
	for _, width := range []int{2, 4} {
		fs := storage.NewMemFS(nil, 1<<30)
		f, err := fs.Create("/r", "u")
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, size)
		f.WriteAt(data, 0)

		w, err := fs.OpenRW("/r")
		if err != nil {
			t.Fatal(err)
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				w.Truncate(int64(size / 2))
				w.WriteAt(data[:4096], int64(size/2)-2048)
				w.Truncate(size)
			}
		}()

		tr := &Transfer{Class: "eq", Path: "/r", Size: size}
		sinks := make([]*collectWriter, 0, width)
		for _, r := range storage.PartitionStripes(0, size, width) {
			sink := &collectWriter{}
			sinks = append(sinks, sink)
			tr.Ranges = append(tr.Ranges, StripeRange{
				Offset: r.Off,
				Size:   r.N,
				Src:    storage.NewSectionReader(f, r.Off, r.N),
				Dst:    sink,
			})
		}
		_, _, res := runManaged(t, tr, 64*1024)
		close(stop)
		wg.Wait()
		w.Close()
		f.Close()

		if res.Err != nil && !errors.Is(res.Err, io.ErrUnexpectedEOF) {
			t.Fatalf("width %d: unexpected error %v", width, res.Err)
		}
		var delivered int64
		for _, s := range sinks {
			delivered += int64(len(s.bytes()))
		}
		if res.Bytes > delivered {
			t.Fatalf("width %d: charged %d > delivered %d", width, res.Bytes, delivered)
		}
	}
}

// TestStripedObservability checks the striped counters and the live
// registry: an in-flight striped pump is visible with its width and
// per-stripe progress, and release removes it.
func TestStripedObservability(t *testing.T) {
	const size = 8 * 64 * 1024
	fs := storage.NewMemFS(nil, 1<<30)
	f, err := fs.Create("/obs", "u")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.WriteAt(make([]byte, size), 0)

	total0, _ := StripedStats()
	out := make([]byte, size)
	tr := stripeTransfer(f, size, 4, out)
	tr.Class, tr.User = "gridftp", "alice"
	p := tr.ensurePump()

	total1, width := StripedStats()
	if total1 != total0+1 || width != 4 {
		t.Fatalf("StripedStats = (%d,%d), want (%d,4)", total1, width, total0+1)
	}
	found := false
	for _, st := range ActiveStriped() {
		if st.Path == "/striped" && st.Class == "gridftp" {
			found = true
			if len(st.Stripes) != 4 || st.Size != size || st.Moved != 0 {
				t.Fatalf("unexpected status %+v", st)
			}
		}
	}
	if !found {
		t.Fatal("in-flight striped transfer not in ActiveStriped")
	}

	clock := sim.NewRealClock()
	p.runSegment(clock, 0, 0)
	if p.err != nil || p.moved != size {
		t.Fatalf("run: moved=%d err=%v", p.moved, p.err)
	}
	for _, st := range ActiveStriped() {
		if st.Path == "/striped" && st.Moved != size {
			t.Fatalf("completed transfer reports moved=%d, want %d", st.Moved, size)
		}
	}
	p.release()
	for _, st := range ActiveStriped() {
		if st.Path == "/striped" && st.Class == "gridftp" {
			t.Fatal("released striped transfer still in ActiveStriped")
		}
	}
}

// TestStripedSimFSPathIndependent runs the same warmed GET over SimFS
// single-pump and striped under virtual time: the charging model is
// per-byte, so both must deliver identical bytes, and the striped run's
// virtual completion time must not exceed the single pump's (its
// memory-copy charges overlap across the stripe workers).
func TestStripedSimFSPathIndependent(t *testing.T) {
	const size = 16 * 64 * 1024
	run := func(width int) (int64, time.Duration) {
		clock := sim.NewVirtualClock()
		var moved int64
		var elapsed time.Duration
		clock.Run(func() {
			host := sim.NewHost(clock, sim.LinuxGbE())
			fs := storage.NewSimFS(host, 1<<30, nil)
			f, err := fs.Create("/s", "u")
			if err != nil {
				t.Error(err)
				return
			}
			defer f.Close()
			f.WriteAt(make([]byte, size), 0)
			if err := fs.Warm("/s"); err != nil {
				t.Error(err)
				return
			}
			tr := &Transfer{Class: "sim", Path: "/s", Size: size}
			if width <= 1 {
				tr.Src = storage.NewSectionReader(f, 0, size)
				tr.Dst = io.Discard
			} else {
				for _, r := range storage.PartitionStripes(0, size, width) {
					tr.Ranges = append(tr.Ranges, StripeRange{
						Offset: r.Off,
						Size:   r.N,
						Src:    storage.NewSectionReader(f, r.Off, r.N),
						Dst:    io.Discard,
					})
				}
			}
			p := tr.ensurePump()
			start := clock.Now()
			p.runSegment(clock, 0, 0)
			elapsed = clock.Now() - start
			moved = p.moved
			if p.err != nil {
				t.Errorf("width %d: %v", width, p.err)
			}
			p.release()
		})
		return moved, elapsed
	}

	singleMoved, singleTime := run(1)
	stripedMoved, stripedTime := run(4)
	if singleMoved != size || stripedMoved != size {
		t.Fatalf("moved: single=%d striped=%d, want %d", singleMoved, stripedMoved, size)
	}
	if singleTime <= 0 {
		t.Fatalf("single-pump run charged no virtual time")
	}
	if stripedTime > singleTime {
		t.Fatalf("striped virtual time %v exceeds single-pump %v", stripedTime, singleTime)
	}
}
