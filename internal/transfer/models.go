package transfer

import (
	"math/rand"
	"sync"
	"time"

	"nest/internal/sim"
)

// Model is a concurrency architecture executing admitted transfers.
// Implementations call the completion function exactly once per
// transfer. There is no single best model across platforms and
// workloads (paper §4.1), which is why NeST ships three and adapts.
type Model interface {
	Name() string
	// Start begins executing t; it must not block the caller beyond
	// brief queueing.
	Start(t *Transfer)
	// Close releases model resources (worker pools, event loops).
	Close()
}

// completion is invoked by models when a transfer finishes.
type completion func(t *Transfer, model string, bytes int64, err error)

// ModelKind selects a concurrency architecture.
type ModelKind string

// The concurrency architectures NeST implements.
const (
	Threads   ModelKind = "threads"
	Processes ModelKind = "processes"
	Events    ModelKind = "events"
	Adaptive  ModelKind = "adaptive"
	// Seda is the staged event-driven architecture the paper lists as
	// future work (§4.1).
	Seda ModelKind = "seda"
)

// threadModel runs one thread (goroutine) per transfer: creation cost
// per request, context-switch cost per chunk, full overlap of disk and
// network across transfers.
type threadModel struct {
	clock sim.Clock
	prof  sim.Profile
	done  completion
}

func newThreadModel(clock sim.Clock, prof sim.Profile, done completion) *threadModel {
	return &threadModel{clock: clock, prof: prof, done: done}
}

func (m *threadModel) Name() string { return string(Threads) }

func (m *threadModel) Start(t *Transfer) {
	m.clock.Go(func() {
		if m.prof.ThreadSpawn > 0 {
			m.clock.Sleep(m.prof.ThreadSpawn)
		}
		p := t.ensurePump()
		p.runSegment(m.clock, m.prof.CtxSwitch, t.quantum)
		m.done(t, m.Name(), p.moved, p.err)
	})
}

func (m *threadModel) Close() {}

// processModel runs a pre-forked pool of worker processes; each
// request pays a hand-off (fork/IPC) cost and each chunk a process
// context switch. Workers bound intra-model parallelism.
type processModel struct {
	clock   sim.Clock
	prof    sim.Profile
	done    completion
	queue   *sim.Queue[*Transfer]
	workers int
	wg      *sim.WaitGroup
	once    sync.Once
}

func newProcessModel(clock sim.Clock, prof sim.Profile, workers int, done completion) *processModel {
	if workers <= 0 {
		workers = 4
	}
	m := &processModel{
		clock:   clock,
		prof:    prof,
		done:    done,
		queue:   sim.NewQueue[*Transfer](clock),
		workers: workers,
		wg:      sim.NewWaitGroup(clock),
	}
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		clock.Go(m.worker)
	}
	return m
}

func (m *processModel) Name() string { return string(Processes) }

func (m *processModel) worker() {
	defer m.wg.Done()
	for {
		t, ok := m.queue.Pop()
		if !ok {
			return
		}
		if m.prof.ProcSpawn > 0 {
			m.clock.Sleep(m.prof.ProcSpawn)
		}
		p := t.ensurePump()
		p.runSegment(m.clock, m.prof.ProcSwitch, t.quantum)
		m.done(t, m.Name(), p.moved, p.err)
	}
}

func (m *processModel) Start(t *Transfer) { m.queue.Push(t) }

func (m *processModel) Close() {
	m.once.Do(func() {
		m.queue.Close()
		m.wg.Wait()
	})
}

// eventModel multiplexes all transfers on a single event loop: tiny
// dispatch cost per chunk, but a chunk that must touch the disk stalls
// every other transfer — the classic events-versus-threads tradeoff
// the adaptive scheme exploits (paper §4.1).
type eventModel struct {
	clock sim.Clock
	prof  sim.Profile
	done  completion
	queue *sim.Queue[*Transfer]
	wg    *sim.WaitGroup
	once  sync.Once
}

func newEventModel(clock sim.Clock, prof sim.Profile, done completion) *eventModel {
	m := &eventModel{
		clock: clock,
		prof:  prof,
		done:  done,
		queue: sim.NewQueue[*Transfer](clock),
		wg:    sim.NewWaitGroup(clock),
	}
	m.wg.Add(1)
	clock.Go(m.loop)
	return m
}

func (m *eventModel) Name() string { return string(Events) }

func (m *eventModel) Start(t *Transfer) { m.queue.Push(t) }

// eventEntry tracks one admitted transfer's segment budget in the
// event loop.
type eventEntry struct {
	p        *pump
	segStart int64
}

func (m *eventModel) loop() {
	defer m.wg.Done()
	var active []eventEntry
	next := 0
	admit := func(t *Transfer) {
		p := t.ensurePump()
		active = append(active, eventEntry{p: p, segStart: p.moved})
	}
	for {
		// Absorb all queued arrivals; block only when idle.
		if len(active) == 0 {
			t, ok := m.queue.Pop()
			if !ok {
				return
			}
			admit(t)
		}
		for {
			t, ok := m.queue.TryPop()
			if !ok {
				break
			}
			admit(t)
		}
		if next >= len(active) {
			next = 0
		}
		e := active[next]
		if m.prof.EventDispatch > 0 {
			m.clock.Sleep(m.prof.EventDispatch)
		}
		finished := e.p.step()
		quantum := e.p.t.quantum
		if finished || (quantum > 0 && e.p.moved-e.segStart >= quantum) {
			m.done(e.p.t, m.Name(), e.p.moved, e.p.err)
			active = append(active[:next], active[next+1:]...)
		} else {
			next++
		}
	}
}

func (m *eventModel) Close() {
	m.once.Do(func() {
		m.queue.Close()
		m.wg.Wait()
	})
}

// adaptiveModel selects among sub-models per request. It begins in a
// probe phase distributing requests round-robin, scores each model by
// observed per-request throughput (EWMA), then biases toward the best
// while still exploring occasionally and re-probing all models
// periodically — the probing is the adaptation cost visible in
// Figure 5.
type adaptiveModel struct {
	clock sim.Clock
	done  completion

	mu        sync.Mutex
	models    []Model
	score     []float64 // EWMA of (bytes+4K)/service-seconds
	samples   []int64
	rr        int
	probeLeft int
	lastProbe time.Duration
	started   map[*Transfer]adaptiveStart
	rng       *rand.Rand

	probePeriod time.Duration
	probeLen    int
	epsilon     float64
}

type adaptiveStart struct {
	model int
	at    time.Duration
}

// AdaptiveOptions tunes the adaptation loop.
type AdaptiveOptions struct {
	// Models lists the sub-architectures to adapt over; default is
	// threads, processes and events.
	Models []ModelKind
	// ProbePeriod is how often all models are re-tried (default 5s of
	// appliance time).
	ProbePeriod time.Duration
	// ProbeLen is how many requests per model each probe phase issues
	// (default 2).
	ProbeLen int
	// Epsilon is the residual exploration rate (default 0.05).
	Epsilon float64
	// Workers configures the process sub-model pool.
	Workers int
	// Seed makes exploration deterministic.
	Seed int64
}

func newAdaptiveModel(clock sim.Clock, prof sim.Profile, opts AdaptiveOptions, done completion) *adaptiveModel {
	if len(opts.Models) == 0 {
		opts.Models = []ModelKind{Threads, Processes, Events}
	}
	if opts.ProbePeriod <= 0 {
		opts.ProbePeriod = 5 * time.Second
	}
	if opts.ProbeLen <= 0 {
		opts.ProbeLen = 2
	}
	if opts.Epsilon <= 0 {
		opts.Epsilon = 0.05
	}
	a := &adaptiveModel{
		clock:       clock,
		done:        done,
		started:     make(map[*Transfer]adaptiveStart),
		rng:         rand.New(rand.NewSource(opts.Seed + 1)),
		probePeriod: opts.ProbePeriod,
		probeLen:    opts.ProbeLen,
		epsilon:     opts.Epsilon,
		lastProbe:   -1,
	}
	for _, kind := range opts.Models {
		var m Model
		switch kind {
		case Processes:
			m = newProcessModel(clock, prof, opts.Workers, a.subDone)
		case Events:
			m = newEventModel(clock, prof, a.subDone)
		case Seda:
			m = newSedaModel(clock, prof, opts.Workers, a.subDone)
		default:
			m = newThreadModel(clock, prof, a.subDone)
		}
		a.models = append(a.models, m)
		a.score = append(a.score, 0)
		a.samples = append(a.samples, 0)
	}
	return a
}

func (a *adaptiveModel) Name() string { return string(Adaptive) }

func (a *adaptiveModel) Start(t *Transfer) {
	a.mu.Lock()
	now := a.clock.Now()
	if a.lastProbe < 0 || now-a.lastProbe >= a.probePeriod {
		a.probeLeft = a.probeLen * len(a.models)
		a.lastProbe = now
	}
	var idx int
	switch {
	case a.probeLeft > 0:
		idx = a.rr % len(a.models)
		a.rr++
		a.probeLeft--
	case a.rng.Float64() < a.epsilon:
		idx = a.rng.Intn(len(a.models))
	default:
		idx = 0
		for i := 1; i < len(a.score); i++ {
			if a.score[i] > a.score[idx] {
				idx = i
			}
		}
	}
	a.started[t] = adaptiveStart{model: idx, at: now}
	model := a.models[idx]
	a.mu.Unlock()
	model.Start(t)
}

// subDone scores the sub-model then forwards completion, reporting the
// adaptive model's own name so metrics reflect the adaptive scheme.
func (a *adaptiveModel) subDone(t *Transfer, _ string, bytes int64, err error) {
	a.mu.Lock()
	if s, ok := a.started[t]; ok {
		delete(a.started, t)
		service := (a.clock.Now() - s.at).Seconds()
		if service > 0 {
			sample := (float64(bytes) + 4096) / service
			const alpha = 0.3
			if a.samples[s.model] == 0 {
				a.score[s.model] = sample
			} else {
				a.score[s.model] = alpha*sample + (1-alpha)*a.score[s.model]
			}
			a.samples[s.model]++
		}
	}
	a.mu.Unlock()
	a.done(t, a.Name(), bytes, err)
}

func (a *adaptiveModel) Close() {
	for _, m := range a.models {
		m.Close()
	}
}
