package transfer

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nest/internal/obs"
	"nest/internal/sched"
	"nest/internal/sim"
)

// Options configures a transfer Manager.
type Options struct {
	// Clock drives time; required.
	Clock sim.Clock
	// Policy orders pending transfers; nil means FIFO.
	Policy sched.Policy
	// Slots bounds concurrently executing transfers (default 8). The
	// bound is what makes FIFO queueing visible to block-based
	// protocols in mixed workloads (Figure 3).
	Slots int
	// Model selects the concurrency architecture (default Adaptive).
	Model ModelKind
	// Profile supplies concurrency-mechanism costs; the zero Profile
	// charges nothing (live mode: the costs are real).
	Profile sim.Profile
	// ProcWorkers sizes the process-model pool.
	ProcWorkers int
	// AdaptiveOptions tunes the adaptive model.
	AdaptiveOptions AdaptiveOptions
	// AdmitDelay models the user-level scheduler's per-admission cost
	// (wakeup, bookkeeping, context switch). It serializes admissions,
	// which is the "slight performance penalty" proportional-share
	// scheduling pays in Figure 4. Zero for live servers.
	AdmitDelay time.Duration
	// Quantum, when positive, preempts transfers every Quantum bytes:
	// the transfer yields its slot and re-enters the pending queue, so
	// the policy allocates bandwidth at byte-quantum granularity
	// rather than per whole transfer. Proportional-share scheduling
	// requires it; FIFO runs transfers to completion.
	Quantum int64
	// Classifier maps a transfer to the scheduling class the policy
	// sees. Nil classifies by protocol (the paper's configuration);
	// ClassifyByUser implements the per-user preferences the paper
	// plans as future work (§4.2).
	Classifier func(*Transfer) string
}

// ClassifyByProtocol is the default classifier: the protocol class.
func ClassifyByProtocol(t *Transfer) string { return t.Class }

// ClassifyByUser schedules by authenticated principal, enabling
// per-user proportional share (stride tickets keyed by user name).
func ClassifyByUser(t *Transfer) string {
	if t.User == "" {
		return "anonymous"
	}
	return t.User
}

// Manager is the transfer manager: it queues approved transfers,
// admits them under the scheduling policy, executes them under the
// concurrency model, and records metrics.
type Manager struct {
	clock      sim.Clock
	policy     sched.Policy
	slots      int
	model      Model
	metrics    *Metrics
	admitDelay time.Duration
	quantum    int64
	classify   func(*Transfer) string

	events    *sim.Queue[managerEvent]
	inFlight  *sim.WaitGroup
	closeOnce sync.Once

	// tracer, when set, receives sched.wait / data / stripe spans for
	// transfers carrying a trace identity. Atomic so SetTracer is safe
	// after the scheduling loop has started.
	tracer atomic.Pointer[obs.Tracer]

	mu      sync.Mutex
	nextSeq int64

	// Observability counters. queueDepth mirrors the scheduling loop's
	// private queued count so exposition can read it without touching
	// the loop; the others are cumulative.
	queueDepth  atomic.Int64
	submits     atomic.Int64
	admissions  atomic.Int64
	preemptions atomic.Int64
	active      atomic.Int64
}

// ManagerStats is a snapshot of the manager's scheduling activity.
type ManagerStats struct {
	QueueDepth  int64 // transfers pending admission right now
	Submits     int64 // transfers accepted via Submit
	Admissions  int64 // policy decisions granting a slot (incl. re-admissions)
	Preemptions int64 // quantum expiries that requeued a transfer
	Active      int64 // transfers submitted but not yet completed
}

// Stats returns current scheduling counters.
func (m *Manager) Stats() ManagerStats {
	return ManagerStats{
		QueueDepth:  m.queueDepth.Load(),
		Submits:     m.submits.Load(),
		Admissions:  m.admissions.Load(),
		Preemptions: m.preemptions.Load(),
		Active:      m.active.Load(),
	}
}

// QueueDepth returns the number of transfers awaiting admission.
func (m *Manager) QueueDepth() int64 { return m.queueDepth.Load() }

// Active returns the number of transfers in flight (queued or moving
// data) — one of the overload signals the connection front end sheds
// on.
func (m *Manager) Active() int64 { return m.active.Load() }

type managerEvent struct {
	kind  int // 0 submit, 1 done, 2 wake
	t     *Transfer
	model string
	bytes int64
	err   error
}

// NewManager builds and starts a transfer manager.
func NewManager(o Options) *Manager {
	if o.Clock == nil {
		panic("transfer: Options.Clock is required")
	}
	if o.Policy == nil {
		o.Policy = sched.NewFIFO()
	}
	if o.Slots <= 0 {
		o.Slots = 8
	}
	m := &Manager{
		clock:      o.Clock,
		policy:     o.Policy,
		slots:      o.Slots,
		metrics:    NewMetrics(o.Clock.Now()),
		events:     sim.NewQueue[managerEvent](o.Clock),
		inFlight:   sim.NewWaitGroup(o.Clock),
		admitDelay: o.AdmitDelay,
		quantum:    o.Quantum,
		classify:   o.Classifier,
	}
	if m.classify == nil {
		m.classify = ClassifyByProtocol
	}
	switch o.Model {
	case Threads:
		m.model = newThreadModel(o.Clock, o.Profile, m.complete)
	case Processes:
		m.model = newProcessModel(o.Clock, o.Profile, o.ProcWorkers, m.complete)
	case Events:
		m.model = newEventModel(o.Clock, o.Profile, m.complete)
	case Seda:
		m.model = newSedaModel(o.Clock, o.Profile, o.ProcWorkers, m.complete)
	default:
		m.model = newAdaptiveModel(o.Clock, o.Profile, o.AdaptiveOptions, m.complete)
	}
	o.Clock.Go(m.loop)
	return m
}

// Metrics returns the manager's statistics collector.
func (m *Manager) Metrics() *Metrics { return m.metrics }

// SetTracer installs (or clears, with nil) the span tracer: completed
// transfers that carry a trace identity then record their scheduler
// queue wait, data phase, and per-stripe progress as spans parented
// under the request's span.
func (m *Manager) SetTracer(t *obs.Tracer) { m.tracer.Store(t) }

// traceSpans records a finished transfer's stage spans. It runs on the
// scheduling goroutine, after the final done event, so the pump state
// it reads is quiescent.
func (m *Manager) traceSpans(t *Transfer, res Result) {
	tr := m.tracer.Load()
	if tr == nil || t.TraceID == 0 {
		return
	}
	code := 0
	if res.Err != nil {
		code = 1
	}
	tr.Record(&obs.Span{
		Trace: t.TraceID, ID: tr.NewSpanID(), Parent: t.Span,
		Stage: "sched.wait", Path: t.Path,
		Start: t.submitted, Dur: res.Queue,
	})
	dataID := tr.NewSpanID()
	tr.Record(&obs.Span{
		Trace: t.TraceID, ID: dataID, Parent: t.Span,
		Stage: "data", Path: t.Path, Code: code, Bytes: res.Bytes,
		Start: t.started, Dur: res.Service,
		Notes: [2]obs.SpanNote{{Key: "model", Str: res.Model}},
	})
	if t.p == nil || t.p.sub == nil {
		return
	}
	for i, s := range t.p.sub {
		scode := 0
		if s.err != nil {
			scode = 1
		}
		tr.Record(&obs.Span{
			Trace: t.TraceID, ID: tr.NewSpanID(), Parent: dataID,
			Stage: "stripe", Path: t.Path, Code: scode,
			Bytes: t.p.subMoved[i].Load(),
			Start: t.started, Dur: res.Service,
			Notes: [2]obs.SpanNote{
				{Key: "stripe", Num: int64(i)},
				{Key: "offset", Num: s.t.Offset},
			},
		})
	}
}

// Policy returns the active scheduling policy.
func (m *Manager) Policy() sched.Policy { return m.policy }

// ModelName returns the concurrency model in use.
func (m *Manager) ModelName() string { return m.model.Name() }

// Submit enqueues a transfer for scheduling. The transfer's OnDone (if
// set) fires when it completes.
func (m *Manager) Submit(t *Transfer) {
	m.mu.Lock()
	m.nextSeq++
	t.seq = m.nextSeq
	m.mu.Unlock()
	t.quantum = m.quantum
	t.submitted = m.clock.Now()
	t.started = -1
	m.submits.Add(1)
	m.active.Add(1)
	m.inFlight.Add(1)
	if !m.events.Push(managerEvent{kind: 0, t: t}) {
		m.active.Add(-1)
		m.inFlight.Done()
		if t.OnDone != nil {
			t.OnDone(Result{Transfer: t, Err: fmt.Errorf("transfer: manager closed")})
		}
	}
}

// complete is the completion callback handed to concurrency models.
func (m *Manager) complete(t *Transfer, model string, bytes int64, err error) {
	m.events.Push(managerEvent{kind: 1, t: t, model: model, bytes: bytes, err: err})
}

// Wait blocks until every submitted transfer has completed.
func (m *Manager) Wait() { m.inFlight.Wait() }

// Close drains the manager: no further submissions are accepted, and
// Close returns once in-flight transfers finish.
func (m *Manager) Close() {
	m.closeOnce.Do(func() {
		m.inFlight.Wait()
		m.events.Close()
		m.model.Close()
	})
}

// loop is the single scheduling goroutine. The policy indexes the
// pending set itself: submissions Add the transfer's embedded unit,
// quantum-expired transfers update that unit in place and re-Add it,
// and each admission is a single Next call — no per-schedule snapshot
// of the queue is ever built.
func (m *Manager) loop() {
	queued := 0
	running := 0
	wakeArmed := false

	schedule := func() {
		for running < m.slots && queued > 0 {
			now := m.clock.Now()
			u, wait := m.policy.Next(now)
			if u == nil {
				if wait > 0 && !wakeArmed {
					wakeArmed = true
					m.clock.Go(func() {
						m.clock.Sleep(wait)
						m.events.Push(managerEvent{kind: 2})
					})
				}
				return
			}
			queued--
			m.queueDepth.Add(-1)
			m.admissions.Add(1)
			t := u.Owner.(*Transfer)
			if m.admitDelay > 0 {
				m.clock.Sleep(m.admitDelay)
				now = m.clock.Now()
			}
			if t.started < 0 {
				t.started = now
			}
			running++
			m.model.Start(t)
		}
	}

	// enqueue (re-)indexes a transfer's embedded unit under the policy.
	enqueue := func(t *Transfer) {
		t.unit.Bytes = t.remaining()
		t.unit.Seq = t.seq
		m.policy.Add(&t.unit)
		queued++
		m.queueDepth.Add(1)
	}

	for {
		ev, ok := m.events.Pop()
		if !ok {
			return
		}
		switch ev.kind {
		case 0: // submit
			t := ev.t
			t.unit.Class = m.classify(t)
			t.unit.Path = t.Path
			t.unit.Offset = t.Offset
			t.unit.Owner = t
			enqueue(t)
		case 1: // done
			running--
			now := m.clock.Now()
			t := ev.t
			if ev.err == nil && t.p != nil && !t.p.done {
				// Quantum expired with work remaining: credit the
				// segment's bytes and re-enter the pending queue.
				m.metrics.addBytes(t.Class, ev.bytes-t.counted)
				t.counted = ev.bytes
				m.mu.Lock()
				m.nextSeq++
				t.seq = m.nextSeq
				m.mu.Unlock()
				m.preemptions.Add(1)
				enqueue(t)
				break
			}
			res := Result{
				Transfer: t,
				Bytes:    ev.bytes,
				Err:      ev.err,
				Model:    ev.model,
				Queue:    t.started - t.submitted,
				Service:  now - t.started,
				Latency:  now - t.submitted,
			}
			m.metrics.record(res, ev.bytes-t.counted)
			t.counted = ev.bytes
			m.traceSpans(t, res)
			if t.p != nil {
				// The transfer is finished for good: recycle its chunk
				// buffer for the next pump.
				t.p.release()
			}
			if t.OnDone != nil {
				t.OnDone(res)
			}
			m.active.Add(-1)
			m.inFlight.Done()
		case 2: // wake (non-work-conserving retry)
			wakeArmed = false
		}
		schedule()
	}
}
