package transfer

import (
	"io"
	"testing"

	"nest/internal/sched"
	"nest/internal/sim"
)

// zeroReader yields zero bytes forever without allocating.
type zeroReader struct{}

func (zeroReader) Read(p []byte) (int, error) { return len(p), nil }

// BenchmarkPumpAlloc measures steady-state allocations on the data
// pump: one op is a complete 1 MB transfer pumped in ChunkSize pieces,
// including chunk-buffer acquisition and release. Run with -benchmem;
// with the pooled buffer path only the transfer and pump descriptors
// remain (~200 B/op), not the 64 KB chunk buffer.
func BenchmarkPumpAlloc(b *testing.B) {
	clock := sim.NewRealClock()
	// Warm the pool so the first buffer is not charged to op 1.
	warm := &Transfer{Size: 0, Src: zeroReader{}, Dst: io.Discard}
	warm.ensurePump().release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := &Transfer{Class: "bench", Size: 1 << 20, Src: zeroReader{}, Dst: io.Discard}
		p := t.ensurePump()
		p.run(clock, 0)
		p.release()
	}
}

// BenchmarkManagerQuantumPreemption measures the manager's scheduling
// hot path under byte-quantum preemption: one op is a complete 256 KB
// stride-scheduled transfer that re-enters the pending queue every
// 64 KB, i.e. four admissions through the policy. All b.N transfers
// are submitted up front, so the pending queue is deep while the
// manager drains it — the regime where the retired snapshot scheduler
// (O(n) rebuild + scan per admission) went quadratic and the indexed
// policies stay logarithmic.
func BenchmarkManagerQuantumPreemption(b *testing.B) {
	clock := sim.NewVirtualClock()
	classes := []string{"chirp", "gridftp", "http", "nfs"}
	b.ReportAllocs()
	clock.Run(func() {
		m := NewManager(Options{
			Clock:   clock,
			Model:   Events,
			Slots:   1,
			Quantum: 64 * 1024,
			Policy: sched.NewStride(map[string]int{
				"chirp": 300, "gridftp": 100, "http": 200, "nfs": 400,
			}),
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Submit(&Transfer{
				Class: classes[i%len(classes)],
				Size:  256 * 1024,
				Src:   zeroReader{},
				Dst:   io.Discard,
			})
		}
		m.Wait()
		b.StopTimer()
		m.Close()
	})
}

// TestPumpChunkLoopAllocFree pins down that the chunk loop itself —
// readChunk/writeChunk over a pooled buffer — performs no per-chunk
// allocations.
func TestPumpChunkLoopAllocFree(t *testing.T) {
	clock := sim.NewRealClock()
	tr := &Transfer{Class: "t", Size: 1 << 20, Src: zeroReader{}, Dst: io.Discard}
	p := tr.ensurePump()
	defer p.release()
	allocs := testing.AllocsPerRun(10, func() {
		p.moved, p.done, p.err = 0, false, nil
		p.run(clock, 0)
	})
	if allocs >= 1 {
		t.Errorf("pump chunk loop allocates %v per 1MB transfer, want ~0", allocs)
	}
}
