package transfer

import (
	"fmt"
	"io"
	"testing"

	"nest/internal/sched"
	"nest/internal/sim"
	"nest/internal/storage"
)

// zeroReader yields zero bytes forever without allocating.
type zeroReader struct{}

func (zeroReader) Read(p []byte) (int, error) { return len(p), nil }

// BenchmarkPumpAlloc measures steady-state allocations on the data
// pump: one op is a complete 1 MB transfer pumped in ChunkSize pieces,
// including chunk-buffer acquisition and release. Run with -benchmem;
// with the pooled buffer path only the transfer and pump descriptors
// remain (~200 B/op), not the 64 KB chunk buffer.
func BenchmarkPumpAlloc(b *testing.B) {
	clock := sim.NewRealClock()
	// Warm the pool so the first buffer is not charged to op 1.
	warm := &Transfer{Size: 0, Src: zeroReader{}, Dst: io.Discard}
	warm.ensurePump().release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := &Transfer{Class: "bench", Size: 1 << 20, Src: zeroReader{}, Dst: io.Discard}
		p := t.ensurePump()
		p.run(clock, 0)
		p.release()
	}
}

// BenchmarkManagerQuantumPreemption measures the manager's scheduling
// hot path under byte-quantum preemption: one op is a complete 256 KB
// stride-scheduled transfer that re-enters the pending queue every
// 64 KB, i.e. four admissions through the policy. All b.N transfers
// are submitted up front, so the pending queue is deep while the
// manager drains it — the regime where the retired snapshot scheduler
// (O(n) rebuild + scan per admission) went quadratic and the indexed
// policies stay logarithmic.
func BenchmarkManagerQuantumPreemption(b *testing.B) {
	clock := sim.NewVirtualClock()
	classes := []string{"chirp", "gridftp", "http", "nfs"}
	b.ReportAllocs()
	clock.Run(func() {
		m := NewManager(Options{
			Clock:   clock,
			Model:   Events,
			Slots:   1,
			Quantum: 64 * 1024,
			Policy: sched.NewStride(map[string]int{
				"chirp": 300, "gridftp": 100, "http": 200, "nfs": 400,
			}),
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Submit(&Transfer{
				Class: classes[i%len(classes)],
				Size:  256 * 1024,
				Src:   zeroReader{},
				Dst:   io.Discard,
			})
		}
		m.Wait()
		b.StopTimer()
		m.Close()
	})
}

// copySink models the cost a real socket imposes on every delivered
// byte: each Write is copied into a fixed scratch buffer (as the
// kernel copies user memory into socket buffers). io.Discard would
// make both data paths look free; against copySink the pooled pump
// pays two copies per byte (extent -> chunk buffer -> scratch) and the
// zero-copy handoff pays one (extent -> scratch), so the benchmark
// measures the copy actually saved.
type copySink struct{ scratch [64 * 1024]byte }

func (s *copySink) Write(p []byte) (int, error) {
	n := 0
	for len(p) > 0 {
		c := copy(s.scratch[:], p)
		p = p[c:]
		n += c
	}
	return n, nil
}

// BenchmarkTransferThroughput compares the pooled pump against the
// zero-copy extent handoff, moving 16 MB per op in two regimes:
//
//   - hot: a 1 MB extent file (cache-resident) served 16 times — the
//     appliance's common case, popular content re-served from memory.
//     Here the stream and the copy the handoff eliminates live in the
//     same cache tier, so the saving shows at full strength.
//   - stream: one contiguous 16 MB transfer — bounded by last-level
//     cache / memory bandwidth in both paths, so the eliminated
//     (cache-hot) copy buys a smaller margin.
//
// The pooled baseline is forced by hiding the handoff capability
// behind a plain reader; -benchmem shows the handoff path's constant
// per-transfer allocation (no per-chunk buffers).
func BenchmarkTransferThroughput(b *testing.B) {
	const total = 16 << 20
	run := func(b *testing.B, fileSize int64, pooled bool) {
		fs := storage.NewMemFS(nil, 2*fileSize)
		f, err := fs.Create("/bench", "u")
		if err != nil {
			b.Fatal(err)
		}
		defer f.Close()
		if _, err := f.WriteAt(make([]byte, fileSize), 0); err != nil {
			b.Fatal(err)
		}
		passes := total / fileSize
		clock := sim.NewRealClock()
		sink := &copySink{}
		b.SetBytes(total)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := int64(0); j < passes; j++ {
				var src io.Reader = storage.NewSectionReader(f, 0, fileSize)
				if pooled {
					src = plainReader{src}
				}
				tr := &Transfer{Class: "bench", Size: fileSize, Src: src, Dst: sink}
				p := tr.ensurePump()
				p.run(clock, 0)
				if p.err != nil {
					b.Fatal(p.err)
				}
				p.release()
			}
		}
	}
	b.Run("hot/pooled", func(b *testing.B) { run(b, 1<<20, true) })
	b.Run("hot/zerocopy", func(b *testing.B) { run(b, 1<<20, false) })
	b.Run("stream/pooled", func(b *testing.B) { run(b, total, true) })
	b.Run("stream/zerocopy", func(b *testing.B) { run(b, total, false) })
}

// BenchmarkStripedThroughput is the headline number for intra-file
// parallelism: one op is a complete 64 MB GET from cache-resident
// extents, fanned across the given stripe width. Every stripe pays the
// same per-byte copy cost into its own copySink scratch (modeling one
// socket buffer per data connection), so the width-1 case is exactly
// the PR 5 zero-copy pump and the wider cases show how far concurrent
// extent handoff scales it. On a single-core runner the widths tie
// (modulo goroutine overhead); the >=1.5x-at-width-4 target is for
// multi-core.
func BenchmarkStripedThroughput(b *testing.B) {
	const total = 64 << 20
	fs := storage.NewMemFS(nil, 2*total)
	f, err := fs.Create("/big", "bench")
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 1<<20)
	for off := int64(0); off < total; off += 1 << 20 {
		if _, err := f.WriteAt(buf, off); err != nil {
			b.Fatal(err)
		}
	}
	clock := sim.NewRealClock()
	for _, width := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("width-%d", width), func(b *testing.B) {
			sinks := make([]*copySink, width)
			for i := range sinks {
				sinks[i] = &copySink{}
			}
			b.SetBytes(total)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr := &Transfer{Class: "bench", Path: "/big", Size: total}
				if width == 1 {
					tr.Src = storage.NewSectionReader(f, 0, total)
					tr.Dst = sinks[0]
				} else {
					for j, r := range storage.PartitionStripes(0, total, width) {
						tr.Ranges = append(tr.Ranges, StripeRange{
							Offset: r.Off,
							Size:   r.N,
							Src:    storage.NewSectionReader(f, r.Off, r.N),
							Dst:    sinks[j],
						})
					}
				}
				p := tr.ensurePump()
				p.runSegment(clock, 0, 0)
				if p.err != nil {
					b.Fatal(p.err)
				}
				if p.moved != total {
					b.Fatalf("moved %d, want %d", p.moved, total)
				}
				p.release()
			}
		})
	}
}

// TestHandoffReadPathAllocFree is the steady-state alloc guard for the
// zero-copy read path: a 64-chunk handoff transfer may allocate only
// its constant per-transfer descriptors (Transfer, pump,
// SectionReader), never anything per chunk. A per-chunk allocation
// would show up as >=64 allocs per run.
func TestHandoffReadPathAllocFree(t *testing.T) {
	clock := sim.NewRealClock()
	const size = 4 << 20
	fs := storage.NewMemFS(nil, size)
	f, err := fs.Create("/a", "u")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt(make([]byte, size), 0); err != nil {
		t.Fatal(err)
	}
	sink := &copySink{}
	allocs := testing.AllocsPerRun(10, func() {
		tr := &Transfer{Class: "t", Size: size, Src: storage.NewSectionReader(f, 0, size), Dst: sink}
		p := tr.ensurePump()
		if !p.handoff() {
			t.Fatal("expected handoff pump")
		}
		p.run(clock, 0)
		if p.err != nil {
			t.Fatal(p.err)
		}
		p.release()
	})
	if allocs >= 8 {
		t.Errorf("handoff read path allocates %v per 64-chunk transfer, want constant (<8)", allocs)
	}
}

// TestPumpChunkLoopAllocFree pins down that the chunk loop itself —
// readChunk/writeChunk over a pooled buffer — performs no per-chunk
// allocations.
func TestPumpChunkLoopAllocFree(t *testing.T) {
	clock := sim.NewRealClock()
	tr := &Transfer{Class: "t", Size: 1 << 20, Src: zeroReader{}, Dst: io.Discard}
	p := tr.ensurePump()
	defer p.release()
	allocs := testing.AllocsPerRun(10, func() {
		p.moved, p.done, p.err = 0, false, nil
		p.run(clock, 0)
	})
	if allocs >= 1 {
		t.Errorf("pump chunk loop allocates %v per 1MB transfer, want ~0", allocs)
	}
}
