package transfer

import (
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nest/internal/sim"
)

// Striped transfers: one Transfer fans a single file across W
// concurrent chunk-limited sub-pumps, each an independent endpoint pair
// over a disjoint byte range, while presenting exactly one unit of
// scheduler accounting. The parent pump owns the sub-pumps; the
// manager, the policy, and the metrics never see more than the one
// Transfer and its one sched.Unit.
//
// The accounting contract — gated by the striped equivalence suite —
// is that admissions, preemptions, and byte charges stay byte-identical
// in aggregate to a single-pump transfer of the same size and quantum:
//
//   - A scheduling segment grants ceil(quantum/chunk) whole-chunk moves
//     from a shared budget, the same greedy chunk count a single pump's
//     "step until moved >= quantum" loop performs.
//   - Each stripe's final partial chunk (the sub-chunk tail an
//     extent-aligned partition leaves only on the last stripe) is
//     deferred until every full chunk of every stripe has moved, so the
//     transfer's chunk-size sequence ends with the partial exactly as a
//     single pump's does — segment boundaries land on the same bytes.
//   - Per-stripe pumps inherit the PR 5 charging rules unchanged: a
//     chunk that fails mid-delivery is uncharged, a short source is
//     io.ErrUnexpectedEOF with the partial dropped.

// StripeRange is one stripe of a striped Transfer: an independent
// endpoint pair over the byte range [Offset, Offset+Size) of the file.
// Sources and sinks of different stripes run concurrently; each must be
// independently usable (its own SectionReader/OffsetWriter, MODE E
// stripe writer, ...), but none needs to be safe for sharing.
type StripeRange struct {
	// Offset is the absolute file offset of the stripe (reporting and
	// cache prediction; the endpoints are already positioned).
	Offset int64
	// Size is the stripe's byte length. The parent Transfer's Size must
	// equal the sum over all stripes.
	Size int64
	Src  io.Reader
	Dst  io.Writer
}

// Striped-transfer observability: cumulative count and last width are
// package-wide atomics (like the data-path chunk counters); the live
// registry backs /statusz per-stripe progress.
var (
	statStripedTransfers atomic.Int64
	statStripedWidth     atomic.Int64

	stripedMu   sync.Mutex
	stripedLive = make(map[*pump]struct{})
)

// StripedStats reports the cumulative striped-transfer count and the
// width of the most recently started one (the stripe width gauge).
func StripedStats() (total int64, lastWidth int64) {
	return statStripedTransfers.Load(), statStripedWidth.Load()
}

// StripeProgress is a point-in-time view of one stripe.
type StripeProgress struct {
	Offset int64
	Size   int64
	Moved  int64
}

// StripedStatus describes one in-flight striped transfer.
type StripedStatus struct {
	Class   string
	User    string
	Path    string
	Size    int64
	Moved   int64
	Stripes []StripeProgress
}

// ActiveStriped snapshots every in-flight striped transfer (pumps
// created but not yet released), sorted by path for stable display.
func ActiveStriped() []StripedStatus {
	stripedMu.Lock()
	defer stripedMu.Unlock()
	out := make([]StripedStatus, 0, len(stripedLive))
	for p := range stripedLive {
		st := StripedStatus{
			Class:   p.t.Class,
			User:    p.t.User,
			Path:    p.t.Path,
			Size:    p.t.Size,
			Stripes: make([]StripeProgress, len(p.sub)),
		}
		for i, s := range p.sub {
			moved := p.subMoved[i].Load()
			st.Stripes[i] = StripeProgress{Offset: s.t.Offset, Size: s.t.Size, Moved: moved}
			st.Moved += moved
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// newStripedPump builds the parent pump for a Transfer with two or more
// Ranges. Each stripe gets a full pump of its own over a shell Transfer
// sized to its range, so the zero-copy handoff detection and the
// per-chunk charging rules apply per stripe unchanged.
func newStripedPump(t *Transfer, chunk int64) *pump {
	p := &pump{t: t, chunk: chunk}
	p.sub = make([]*pump, len(t.Ranges))
	p.subMoved = make([]atomic.Int64, len(t.Ranges))
	for i, r := range t.Ranges {
		shell := &Transfer{
			Class:     t.Class,
			User:      t.User,
			Path:      t.Path,
			Offset:    r.Offset,
			Size:      r.Size,
			Src:       r.Src,
			Dst:       r.Dst,
			ChunkSize: int(chunk),
		}
		p.sub[i] = newPump(shell)
	}
	statStripedTransfers.Add(1)
	statStripedWidth.Store(int64(len(t.Ranges)))
	stripedMu.Lock()
	stripedLive[p] = struct{}{}
	stripedMu.Unlock()
	return p
}

// releaseStriped releases the sub-pumps and drops the parent from the
// live registry.
func (p *pump) releaseStriped() {
	for _, s := range p.sub {
		s.release()
	}
	stripedMu.Lock()
	delete(stripedLive, p)
	stripedMu.Unlock()
}

// aggregateStriped recomputes the parent's progress from its sub-pumps.
// Callers must have exclusive access to the sub-pumps: the
// single-threaded step loop, or the segment runner after its workers
// joined. The parent's error is the first failing stripe's by index,
// for deterministic reporting.
func (p *pump) aggregateStriped() {
	var moved int64
	done := true
	var firstErr error
	for _, s := range p.sub {
		moved += s.moved
		if !s.done {
			done = false
		}
		if firstErr == nil && s.err != nil {
			firstErr = s.err
		}
	}
	p.moved = moved
	p.err = firstErr
	p.done = done || firstErr != nil
}

// stripeReady reports whether sub-pump i may move its next chunk:
// finished stripes never, and a stripe down to its final partial chunk
// waits until no stripe anywhere has a full chunk left, so the partial
// lands last in the transfer's chunk sequence (see the package comment
// on segmentation equivalence). Single-threaded callers only.
func (p *pump) stripeReady(i int) bool {
	s := p.sub[i]
	if s.done {
		return false
	}
	if s.t.Size-s.moved < p.chunk {
		for j, o := range p.sub {
			if j != i && !o.done && o.t.Size-o.moved >= p.chunk {
				return false
			}
		}
	}
	return true
}

// stripedStep moves one chunk of one stripe, round-robin across the
// stripes with work left. It is the striped analogue of step() for the
// single-threaded architectures (events, seda): intra-file parallelism
// degrades gracefully to interleaving when the model has no concurrency
// to offer. Reports true when the whole transfer is finished.
func (p *pump) stripedStep() bool {
	if p.done {
		return true
	}
	n := len(p.sub)
	for k := 0; k < n; k++ {
		i := (p.subNext + k) % n
		if !p.stripeReady(i) {
			continue
		}
		s := p.sub[i]
		before := s.moved
		s.step()
		p.subMoved[i].Add(s.moved - before)
		p.subNext = i + 1
		p.aggregateStriped()
		return p.done
	}
	// Nothing ready: every stripe is finished.
	p.aggregateStriped()
	return true
}

// takeGrant atomically claims one whole-chunk grant from the segment
// budget.
func takeGrant(b *atomic.Int64) bool {
	for {
		v := b.Load()
		if v <= 0 {
			return false
		}
		if b.CompareAndSwap(v, v-1) {
			return true
		}
	}
}

// runStripedSegment drives all stripes concurrently until the transfer
// completes or the segment's grant budget is spent. Each worker owns
// one stripe (so sub-pump state stays single-writer) and draws
// whole-chunk grants from the shared budget; per-stripe progress is
// published through the parent's atomic counters for /statusz. Workers
// stop before their stripe's final partial chunk; the in-order tail
// pass below moves those after every full chunk, preserving single-pump
// segmentation. The first stripe error aborts the others at their next
// chunk boundary.
func (p *pump) runStripedSegment(clock sim.Clock, perChunk time.Duration, quantum int64) int64 {
	if p.done {
		return 0
	}
	start := p.moved
	unbounded := quantum <= 0
	var budget atomic.Int64
	if !unbounded {
		budget.Store((quantum + p.chunk - 1) / p.chunk)
	}
	var abort atomic.Bool
	wg := sim.NewWaitGroup(clock)
	for i := range p.sub {
		s := p.sub[i]
		if s.done {
			continue
		}
		idx := i
		wg.Add(1)
		clock.Go(func() {
			defer wg.Done()
			for !abort.Load() {
				rem := s.t.Size - s.moved
				if rem <= 0 || s.done {
					return
				}
				if rem < p.chunk {
					// Final partial chunk: deferred to the tail pass.
					return
				}
				if !unbounded && !takeGrant(&budget) {
					return
				}
				if perChunk > 0 {
					clock.Sleep(perChunk)
				}
				before := s.moved
				s.step()
				p.subMoved[idx].Add(s.moved - before)
				if s.err != nil {
					abort.Store(true)
					return
				}
			}
		})
	}
	wg.Wait()
	if !abort.Load() {
		// Tail pass: budget permitting, finish the sub-chunk tails in
		// stripe order. An extent-aligned partition leaves at most one,
		// on the last stripe.
		for i, s := range p.sub {
			if s.done {
				continue
			}
			if !unbounded && !takeGrant(&budget) {
				break
			}
			if perChunk > 0 {
				clock.Sleep(perChunk)
			}
			before := s.moved
			s.step()
			p.subMoved[i].Add(s.moved - before)
			if s.err != nil {
				break
			}
		}
	}
	p.aggregateStriped()
	return p.moved - start
}
