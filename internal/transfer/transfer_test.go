package transfer

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"nest/internal/sched"
	"nest/internal/sim"
	"nest/internal/storage"
)

// linkWriter charges a sim link for every write (a client's network).
type linkWriter struct{ link *sim.Link }

func (w linkWriter) Write(p []byte) (int, error) {
	w.link.Send(int64(len(p)))
	return len(p), nil
}

// slowReader yields data while charging a resource per read.
type slowReader struct {
	clock   sim.Clock
	perRead time.Duration
	n       int64
}

func (r *slowReader) Read(p []byte) (int, error) {
	if r.n <= 0 {
		return 0, io.EOF
	}
	if r.perRead > 0 {
		r.clock.Sleep(r.perRead)
	}
	n := int64(len(p))
	if n > r.n {
		n = r.n
	}
	r.n -= n
	return int(n), nil
}

func TestPumpCopiesExactly(t *testing.T) {
	clock := sim.NewVirtualClock()
	clock.Run(func() {
		src := strings.NewReader("hello world, this is nest")
		var dst bytes.Buffer
		m := NewManager(Options{Clock: clock, Model: Threads})
		done := make(chan Result, 1)
		m.Submit(&Transfer{
			Class: "chirp", Size: -1, Src: src, Dst: &dst, ChunkSize: 4,
			OnDone: func(r Result) { done <- r },
		})
		m.Wait()
		var r Result
		clock.BlockOn(func() { r = <-done })
		if r.Err != nil || r.Bytes != 25 {
			t.Fatalf("result = %+v", r)
		}
		if dst.String() != "hello world, this is nest" {
			t.Errorf("dst = %q", dst.String())
		}
		m.Close()
	})
}

func TestPumpSizeLimited(t *testing.T) {
	clock := sim.NewVirtualClock()
	clock.Run(func() {
		m := NewManager(Options{Clock: clock, Model: Threads})
		var dst bytes.Buffer
		m.Submit(&Transfer{
			Class: "chirp", Size: 10, Src: strings.NewReader("0123456789ABCDEF"),
			Dst: &dst, ChunkSize: 3,
		})
		m.Wait()
		if dst.String() != "0123456789" {
			t.Errorf("dst = %q", dst.String())
		}
		m.Close()
	})
}

func TestPumpShortSource(t *testing.T) {
	clock := sim.NewVirtualClock()
	clock.Run(func() {
		m := NewManager(Options{Clock: clock, Model: Threads})
		done := make(chan Result, 1)
		m.Submit(&Transfer{
			Class: "x", Size: 100, Src: strings.NewReader("short"),
			Dst: io.Discard, OnDone: func(r Result) { done <- r },
		})
		m.Wait()
		var r Result
		clock.BlockOn(func() { r = <-done })
		if !errors.Is(r.Err, io.ErrUnexpectedEOF) {
			t.Errorf("err = %v, want unexpected EOF", r.Err)
		}
		m.Close()
	})
}

func TestPumpWriteError(t *testing.T) {
	clock := sim.NewVirtualClock()
	clock.Run(func() {
		m := NewManager(Options{Clock: clock, Model: Events})
		done := make(chan Result, 1)
		m.Submit(&Transfer{
			Class: "x", Size: -1, Src: strings.NewReader("data"),
			Dst: failWriter{}, OnDone: func(r Result) { done <- r },
		})
		m.Wait()
		var r Result
		clock.BlockOn(func() { r = <-done })
		if r.Err == nil {
			t.Error("write error not surfaced")
		}
		m.Close()
	})
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("sink failed") }

func TestAllModelsComplete(t *testing.T) {
	for _, kind := range []ModelKind{Threads, Processes, Events, Adaptive} {
		t.Run(string(kind), func(t *testing.T) {
			clock := sim.NewVirtualClock()
			clock.Run(func() {
				m := NewManager(Options{Clock: clock, Model: kind, Profile: sim.LinuxGbE()})
				var mu sync.Mutex
				var total int64
				n := 20
				for i := 0; i < n; i++ {
					m.Submit(&Transfer{
						Class: "chirp", Size: -1,
						Src: &slowReader{clock: clock, n: 1000},
						Dst: io.Discard,
						OnDone: func(r Result) {
							mu.Lock()
							total += r.Bytes
							mu.Unlock()
						},
					})
				}
				m.Wait()
				if total != int64(n)*1000 {
					t.Errorf("total = %d, want %d", total, n*1000)
				}
				stats := m.Metrics().Class("chirp")
				if stats.Requests != int64(n) || stats.Errors != 0 {
					t.Errorf("stats = %+v", stats)
				}
				m.Close()
			})
		})
	}
}

func TestSlotsBoundConcurrency(t *testing.T) {
	clock := sim.NewVirtualClock()
	clock.Run(func() {
		m := NewManager(Options{Clock: clock, Model: Threads, Slots: 2})
		for i := 0; i < 6; i++ {
			m.Submit(&Transfer{
				Class: "x", Size: -1,
				Src: &slowReader{clock: clock, perRead: time.Second, n: 10},
				Dst: io.Discard,
			})
		}
		m.Wait()
		// 6 one-second transfers, 2 at a time: 3 seconds.
		if got := clock.Now(); got != 3*time.Second {
			t.Errorf("elapsed = %v, want 3s", got)
		}
		m.Close()
	})
}

func TestFIFOOrder(t *testing.T) {
	clock := sim.NewVirtualClock()
	clock.Run(func() {
		m := NewManager(Options{Clock: clock, Model: Threads, Slots: 1})
		var mu sync.Mutex
		var order []string
		submit := func(name string) {
			m.Submit(&Transfer{
				Class: name, Size: -1,
				Src: &slowReader{clock: clock, perRead: time.Millisecond, n: 1},
				Dst: io.Discard,
				OnDone: func(Result) {
					mu.Lock()
					order = append(order, name)
					mu.Unlock()
				},
			})
		}
		for _, name := range []string{"a", "b", "c", "d"} {
			submit(name)
		}
		m.Wait()
		if got := strings.Join(order, ""); got != "abcd" {
			t.Errorf("order = %q", got)
		}
		m.Close()
	})
}

// TestStrideProportions drives two classes through a slot-limited
// manager over a shared link and verifies delivered bandwidth follows
// the 2:1 ticket ratio.
func TestStrideProportions(t *testing.T) {
	clock := sim.NewVirtualClock()
	clock.Run(func() {
		host := sim.NewHost(clock, sim.LinuxGbE())
		policy := sched.NewStride(map[string]int{"fast": 200, "slow": 100})
		m := NewManager(Options{Clock: clock, Model: Threads, Slots: 1, Policy: policy})
		stop := false
		var offered sync.WaitGroup
		// Closed-loop clients resubmitting 1MB transfers.
		client := func(class string) {
			defer offered.Done()
			for !stop {
				done := make(chan struct{})
				m.Submit(&Transfer{
					Class: class, Path: "/" + class, Size: 1 * sim.MB,
					Src: &slowReader{clock: clock, n: 1 * sim.MB},
					Dst: linkWriter{host.Link},
					OnDone: func(Result) {
						clock.Unpark()
						done <- struct{}{}
					},
				})
				clock.Park()
				<-done
			}
		}
		for i := 0; i < 4; i++ {
			offered.Add(1)
			class := "fast"
			if i%2 == 1 {
				class = "slow"
			}
			clock.Go(func() { client(class) })
		}
		clock.Sleep(20 * time.Second)
		stop = true
		fast := m.Metrics().BandwidthMBps("fast", clock.Now())
		slow := m.Metrics().BandwidthMBps("slow", clock.Now())
		ratio := fast / slow
		if ratio < 1.7 || ratio > 2.3 {
			t.Errorf("fast/slow = %.2f (fast=%.1f slow=%.1f), want ~2", ratio, fast, slow)
		}
	})
}

// TestAdaptiveConvergesToEvents checks that with tiny in-cache
// requests on the Solaris profile the adaptive model routes most
// traffic to the event model.
func TestAdaptiveConvergesToEvents(t *testing.T) {
	clock := sim.NewVirtualClock()
	clock.Run(func() {
		prof := sim.Solaris100()
		wg := sim.NewWaitGroup(clock)
		a := newAdaptiveModel(clock, prof, AdaptiveOptions{
			Models:      []ModelKind{Threads, Events},
			ProbePeriod: time.Hour, // probe once at start
			ProbeLen:    3,
		}, func(t *Transfer, model string, bytes int64, err error) { wg.Done() })
		// Drive sequential small in-cache requests; each request's
		// service time is dominated by the model's per-request cost.
		for i := 0; i < 60; i++ {
			wg.Add(1)
			tr := &Transfer{Class: "chirp", Size: -1,
				Src: &slowReader{clock: clock, n: 1024}, Dst: io.Discard}
			a.Start(tr)
			wg.Wait() // sequential: isolates per-request model cost
		}
		// The event model must score higher than threads for this
		// workload (thread spawn dominates 1KB requests).
		var evIdx, thIdx int
		for i, m := range a.models {
			switch m.Name() {
			case string(Events):
				evIdx = i
			case string(Threads):
				thIdx = i
			}
		}
		if a.score[evIdx] <= a.score[thIdx] {
			t.Errorf("events score %.0f <= threads score %.0f", a.score[evIdx], a.score[thIdx])
		}
		a.Close()
	})
}

func TestMetricsBandwidth(t *testing.T) {
	m := NewMetrics(0)
	m.record(Result{Transfer: &Transfer{Class: "c"}, Bytes: 10 * sim.MB, Model: "threads"}, 10*sim.MB)
	if bw := m.BandwidthMBps("c", 2*time.Second); bw != 5 {
		t.Errorf("bandwidth = %v, want 5", bw)
	}
	if bw := m.BandwidthMBps("missing", time.Second); bw != 0 {
		t.Errorf("missing class bandwidth = %v", bw)
	}
	m.Reset(10 * time.Second)
	if bw := m.BandwidthMBps("c", 12*time.Second); bw != 0 {
		t.Errorf("bandwidth after reset = %v", bw)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	clock := sim.NewVirtualClock()
	clock.Run(func() {
		m := NewManager(Options{Clock: clock, Model: Threads})
		m.Close()
		done := make(chan Result, 1)
		m.Submit(&Transfer{Class: "x", Size: -1, Src: strings.NewReader("x"),
			Dst: io.Discard, OnDone: func(r Result) { done <- r }})
		var r Result
		clock.BlockOn(func() { r = <-done })
		if r.Err == nil {
			t.Error("submit after close did not error")
		}
	})
}

// TestPerUserStrideMeasured exercises the paper's future-work
// extension — proportional share keyed by user rather than protocol —
// via the manager's classifier hook, and measures the 3:1 allocation
// (metrics are labeled per user through the transfer Class).
func TestPerUserStrideMeasured(t *testing.T) {
	clock := sim.NewVirtualClock()
	clock.Run(func() {
		host := sim.NewHost(clock, sim.LinuxGbE())
		policy := sched.NewStride(map[string]int{"alice": 300, "bob": 100})
		m := NewManager(Options{
			Clock: clock, Model: Threads, Slots: 2, Policy: policy,
			Quantum: 64 * 1024, Classifier: ClassifyByUser,
		})
		stop := false
		client := func(user string) {
			for !stop {
				done := make(chan struct{})
				m.Submit(&Transfer{
					Class: user, User: user, Size: 1 * sim.MB,
					Src: &slowReader{clock: clock, n: 1 * sim.MB},
					Dst: linkWriter{host.Link},
					OnDone: func(Result) {
						clock.Unpark()
						done <- struct{}{}
					},
				})
				clock.Park()
				<-done
			}
		}
		for i := 0; i < 4; i++ {
			user := "alice"
			if i%2 == 1 {
				user = "bob"
			}
			clock.Go(func() { client(user) })
		}
		clock.Sleep(30 * time.Second)
		stop = true
		alice := m.Metrics().BandwidthMBps("alice", clock.Now())
		bob := m.Metrics().BandwidthMBps("bob", clock.Now())
		ratio := alice / bob
		if ratio < 2.5 || ratio > 3.5 {
			t.Errorf("alice/bob = %.2f (alice=%.1f bob=%.1f), want ~3", ratio, alice, bob)
		}
	})
}

// TestQuantumPreemption verifies a big transfer yields between quanta
// and still completes exactly.
func TestQuantumPreemption(t *testing.T) {
	clock := sim.NewVirtualClock()
	clock.Run(func() {
		m := NewManager(Options{Clock: clock, Model: Threads, Slots: 1, Quantum: 1000})
		var big, small Result
		done := make(chan struct{}, 2)
		m.Submit(&Transfer{
			Class: "big", Size: 10_000, ChunkSize: 500,
			Src: &slowReader{clock: clock, perRead: time.Millisecond, n: 10_000},
			Dst: io.Discard,
			OnDone: func(r Result) {
				big = r
				clock.Unpark()
				done <- struct{}{}
			},
		})
		m.Submit(&Transfer{
			Class: "small", Size: 500, ChunkSize: 500,
			Src: &slowReader{clock: clock, perRead: time.Millisecond, n: 500},
			Dst: io.Discard,
			OnDone: func(r Result) {
				small = r
				clock.Unpark()
				done <- struct{}{}
			},
		})
		for i := 0; i < 2; i++ {
			clock.Park()
			<-done
		}
		if big.Bytes != 10_000 || big.Err != nil {
			t.Errorf("big = %+v", big)
		}
		if small.Bytes != 500 || small.Err != nil {
			t.Errorf("small = %+v", small)
		}
		// With slots=1 and quantum=1000, the small transfer (submitted
		// second) must have finished before the 10KB transfer: the big
		// one yielded its slot.
		if small.Latency >= big.Latency {
			t.Errorf("small latency %v >= big latency %v: no preemption", small.Latency, big.Latency)
		}
	})
}

// TestQuantumMetricsExact: per-segment byte accounting sums to the
// transfer size exactly once.
func TestQuantumMetricsExact(t *testing.T) {
	clock := sim.NewVirtualClock()
	clock.Run(func() {
		m := NewManager(Options{Clock: clock, Model: Events, Slots: 4, Quantum: 700})
		for i := 0; i < 5; i++ {
			m.Submit(&Transfer{
				Class: "q", Size: 5000, ChunkSize: 300,
				Src: &slowReader{clock: clock, n: 5000}, Dst: io.Discard,
			})
		}
		m.Wait()
		stats := m.Metrics().Class("q")
		if stats.Bytes != 25000 {
			t.Errorf("Bytes = %d, want 25000 (no double counting across segments)", stats.Bytes)
		}
		if stats.Requests != 5 {
			t.Errorf("Requests = %d, want 5 (segments are not requests)", stats.Requests)
		}
		m.Close()
	})
}

// TestAdaptiveConvergesToThreads: with disk-bound large transfers the
// thread model's overlap wins, and the adaptive scorer must find it.
func TestAdaptiveConvergesToThreads(t *testing.T) {
	clock := sim.NewVirtualClock()
	clock.Run(func() {
		prof := sim.LinuxGbE()
		host := sim.NewHost(clock, prof)
		wg := sim.NewWaitGroup(clock)
		a := newAdaptiveModel(clock, prof, AdaptiveOptions{
			Models:      []ModelKind{Threads, Events},
			ProbePeriod: time.Hour,
			ProbeLen:    3,
		}, func(tr *Transfer, model string, bytes int64, err error) { wg.Done() })
		// Four concurrent waves of disk+link transfers: threads overlap
		// the two resources, the event loop serializes them.
		for wave := 0; wave < 12; wave++ {
			for i := 0; i < 4; i++ {
				wg.Add(1)
				name := "/f" + string(rune('a'+i))
				tr := &Transfer{Class: "chirp", Size: 2 * sim.MB, ChunkSize: 64 * 1024,
					Src: &diskReader{disk: host.Disk, name: name, n: 2 * sim.MB},
					Dst: linkWriter{host.Link}}
				a.Start(tr)
			}
			wg.Wait()
		}
		var thIdx, evIdx int
		for i, m := range a.models {
			switch m.Name() {
			case string(Threads):
				thIdx = i
			case string(Events):
				evIdx = i
			}
		}
		if a.score[thIdx] <= a.score[evIdx] {
			t.Errorf("threads score %.0f <= events score %.0f on disk-bound workload",
				a.score[thIdx], a.score[evIdx])
		}
		a.Close()
	})
}

// diskReader charges the disk for every read.
type diskReader struct {
	disk *sim.Disk
	name string
	n    int64
}

func (r *diskReader) Read(p []byte) (int, error) {
	if r.n <= 0 {
		return 0, io.EOF
	}
	n := int64(len(p))
	if n > r.n {
		n = r.n
	}
	r.disk.Read(r.name, n)
	r.n -= n
	return int(n), nil
}

// TestSedaModelCompletes: the staged pipeline moves every byte exactly
// once, in order, across all transfers.
func TestSedaModelCompletes(t *testing.T) {
	clock := sim.NewVirtualClock()
	clock.Run(func() {
		m := NewManager(Options{Clock: clock, Model: Seda, Profile: sim.LinuxGbE()})
		var mu sync.Mutex
		results := map[*Transfer]Result{}
		n := 16
		var bufs []*bytes.Buffer
		for i := 0; i < n; i++ {
			payload := bytes.Repeat([]byte{byte(i)}, 5000+i*13)
			dst := &bytes.Buffer{}
			bufs = append(bufs, dst)
			m.Submit(&Transfer{
				Class: "chirp", Size: int64(len(payload)), ChunkSize: 777,
				Src: bytes.NewReader(payload), Dst: dst,
				OnDone: func(r Result) {
					mu.Lock()
					results[r.Transfer] = r
					mu.Unlock()
				},
			})
		}
		m.Wait()
		mu.Lock()
		defer mu.Unlock()
		if len(results) != n {
			t.Fatalf("completed = %d, want %d", len(results), n)
		}
		for tr, r := range results {
			if r.Err != nil || r.Bytes != tr.Size {
				t.Errorf("result = %+v", r)
			}
		}
		for i, dst := range bufs {
			want := bytes.Repeat([]byte{byte(i)}, 5000+i*13)
			if !bytes.Equal(dst.Bytes(), want) {
				t.Errorf("transfer %d corrupted: %d bytes", i, dst.Len())
			}
		}
		m.Close()
	})
}

// TestSedaPipelinesAcrossTransfers: the staged pipeline overlaps one
// transfer's disk reads with another's network writes, finishing a
// disk+link workload faster than the fully serialized event loop.
func TestSedaPipelinesAcrossTransfers(t *testing.T) {
	elapsed := func(kind ModelKind) time.Duration {
		clock := sim.NewVirtualClock()
		var out time.Duration
		clock.Run(func() {
			host := sim.NewHost(clock, sim.LinuxGbE())
			m := NewManager(Options{Clock: clock, Model: kind, Slots: 8})
			start := clock.Now()
			for i := 0; i < 4; i++ {
				m.Submit(&Transfer{
					Class: "chirp", Size: 2 * sim.MB, ChunkSize: 64 * 1024,
					// One shared sequential stream name keeps the disk
					// from paying a positioning cost per chunk; the
					// comparison isolates stage overlap.
					Src: &diskReader{disk: host.Disk, name: "/seq", n: 2 * sim.MB},
					Dst: linkWriter{host.Link},
				})
			}
			m.Wait()
			out = clock.Now() - start
			m.Close()
		})
		return out
	}
	seda := elapsed(Seda)
	events := elapsed(Events)
	// Events serialize disk and link chunk by chunk; SEDA overlaps
	// them, approaching max(disk, link) instead of their sum.
	if float64(seda) > 0.8*float64(events) {
		t.Errorf("seda %v not faster than events %v", seda, events)
	}
}

// TestSedaWithQuantum: the staged model honors quantum preemption.
func TestSedaWithQuantum(t *testing.T) {
	clock := sim.NewVirtualClock()
	clock.Run(func() {
		m := NewManager(Options{Clock: clock, Model: Seda, Slots: 1, Quantum: 1000})
		var small Result
		done := make(chan struct{}, 2)
		m.Submit(&Transfer{
			Class: "big", Size: 20_000, ChunkSize: 500,
			Src: &slowReader{clock: clock, perRead: time.Millisecond, n: 20_000},
			Dst: io.Discard,
			OnDone: func(r Result) {
				clock.Unpark()
				done <- struct{}{}
			},
		})
		m.Submit(&Transfer{
			Class: "small", Size: 500, ChunkSize: 500,
			Src: &slowReader{clock: clock, perRead: time.Millisecond, n: 500},
			Dst: io.Discard,
			OnDone: func(r Result) {
				small = r
				clock.Unpark()
				done <- struct{}{}
			},
		})
		for i := 0; i < 2; i++ {
			clock.Park()
			<-done
		}
		// The small transfer did not wait for the whole 20KB transfer.
		if small.Latency > 15*time.Millisecond {
			t.Errorf("small latency = %v: quantum preemption failed", small.Latency)
		}
		m.Close()
	})
}

// TestPumpOverExtentFile moves data between the pump and the
// extent-backed storage File with a chunk size deliberately unaligned
// to the 64 KB extent size, so every few chunks straddle an extent
// boundary. Both directions must stay byte-exact: get (SectionReader
// over ReadAt, as the dispatcher wires it) and put (OffsetWriter over
// WriteAt).
func TestPumpOverExtentFile(t *testing.T) {
	clock := sim.NewVirtualClock()
	clock.Run(func() {
		fs := storage.NewMemFS(clock, 1<<30)
		size := int64(3*storage.ExtentSize + 12345)
		data := make([]byte, size)
		for i := range data {
			data[i] = byte(i*31 + i>>9)
		}
		src, err := fs.Create("/src", "o")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := src.WriteAt(data, 0); err != nil {
			t.Fatal(err)
		}

		// Get direction: storage -> client buffer.
		const chunk = 48_000 // not a multiple or divisor of ExtentSize
		var got bytes.Buffer
		m := NewManager(Options{Clock: clock, Model: Threads})
		done := make(chan Result, 2)
		m.Submit(&Transfer{
			Class: "ftp", Size: size, ChunkSize: chunk,
			Src:    io.NewSectionReader(src, 0, size),
			Dst:    &got,
			OnDone: func(r Result) { done <- r },
		})
		m.Wait()
		var r Result
		clock.BlockOn(func() { r = <-done })
		if r.Err != nil || r.Bytes != size {
			t.Fatalf("get result = %+v", r)
		}
		if !bytes.Equal(got.Bytes(), data) {
			t.Fatal("get direction corrupted data across extent boundaries")
		}

		// Put direction: client buffer -> storage.
		dst, err := fs.Create("/dst", "o")
		if err != nil {
			t.Fatal(err)
		}
		m.Submit(&Transfer{
			Class: "ftp", Size: size, ChunkSize: chunk,
			Src:    bytes.NewReader(data),
			Dst:    io.NewOffsetWriter(dst, 0),
			OnDone: func(r Result) { done <- r },
		})
		m.Wait()
		clock.BlockOn(func() { r = <-done })
		if r.Err != nil || r.Bytes != size {
			t.Fatalf("put result = %+v", r)
		}
		back := make([]byte, size)
		if _, err := dst.ReadAt(back, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, data) {
			t.Fatal("put direction corrupted data across extent boundaries")
		}
		src.Close()
		dst.Close()
		m.Close()
	})
}
