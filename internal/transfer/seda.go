package transfer

import (
	"sync"

	"nest/internal/sim"
)

// sedaModel is the staged event-driven architecture the paper lists as
// future work (§4.1, citing Welsh et al., SOSP 2001): transfers flow
// through a pipeline of stages — a disk-read stage and a network-write
// stage — each with its own bounded worker pool and event queue. A
// transfer occupies exactly one stage at a time, so its chunks stay
// ordered, while different transfers overlap across stages: one
// transfer's disk read proceeds while another's network write drains.
// The result combines most of the event model's low per-request cost
// with the thread model's I/O overlap.
type sedaModel struct {
	clock sim.Clock
	prof  sim.Profile
	done  completion

	readQ  *sim.Queue[*sedaJob]
	writeQ *sim.Queue[*sedaJob]
	wg     *sim.WaitGroup
	once   sync.Once
}

// sedaJob is one transfer's pipeline token: the pump plus the bytes
// read by stage one and not yet written by stage two.
type sedaJob struct {
	p        *pump
	n        int   // bytes buffered for the write stage
	segStart int64 // moved count when this quantum's segment began
}

// DefaultSedaWorkers sizes each stage's pool.
const DefaultSedaWorkers = 4

func newSedaModel(clock sim.Clock, prof sim.Profile, workers int, done completion) *sedaModel {
	if workers <= 0 {
		workers = DefaultSedaWorkers
	}
	m := &sedaModel{
		clock:  clock,
		prof:   prof,
		done:   done,
		readQ:  sim.NewQueue[*sedaJob](clock),
		writeQ: sim.NewQueue[*sedaJob](clock),
		wg:     sim.NewWaitGroup(clock),
	}
	for i := 0; i < workers; i++ {
		m.wg.Add(2)
		clock.Go(m.readWorker)
		clock.Go(m.writeWorker)
	}
	return m
}

func (m *sedaModel) Name() string { return string(Seda) }

func (m *sedaModel) Start(t *Transfer) {
	p := t.ensurePump()
	m.readQ.Push(&sedaJob{p: p, segStart: p.moved})
}

// finish reports the job's transfer back to the manager.
func (m *sedaModel) finish(j *sedaJob) {
	m.done(j.p.t, m.Name(), j.p.moved, j.p.err)
}

func (m *sedaModel) readWorker() {
	defer m.wg.Done()
	for {
		j, ok := m.readQ.Pop()
		if !ok {
			return
		}
		if m.prof.EventDispatch > 0 {
			m.clock.Sleep(m.prof.EventDispatch)
		}
		j.n = j.p.readChunk()
		if j.p.done && j.n == 0 {
			m.finish(j)
			continue
		}
		m.writeQ.Push(j)
	}
}

func (m *sedaModel) writeWorker() {
	defer m.wg.Done()
	for {
		j, ok := m.writeQ.Pop()
		if !ok {
			return
		}
		if m.prof.EventDispatch > 0 {
			m.clock.Sleep(m.prof.EventDispatch)
		}
		j.p.writeChunk(j.n)
		j.n = 0
		quantum := j.p.t.quantum
		switch {
		case j.p.done:
			m.finish(j)
		case quantum > 0 && j.p.moved-j.segStart >= quantum:
			// Segment budget exhausted: yield the slot.
			m.finish(j)
		default:
			m.readQ.Push(j)
		}
	}
}

func (m *sedaModel) Close() {
	m.once.Do(func() {
		m.readQ.Close()
		m.writeQ.Close()
		m.wg.Wait()
	})
}
