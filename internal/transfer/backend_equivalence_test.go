package transfer

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"sync"
	"testing"

	"nest/internal/storage"
)

// The backend equivalence suite is the PR 5 gate applied one layer
// down: where the handoff-vs-pooled suite proved the two data paths
// interchangeable over one store, this suite proves the two stores
// interchangeable under one data path. The same managed workloads run
// against MemFS and LocalFS and must produce byte-identical output and
// identical scheduler and obs accounting — the wire, the scheduler,
// and the metrics cannot tell which store served the transfer.

// eqBackends returns the stores under comparison; "memfs" is the
// reference implementation.
func eqBackends(t testing.TB) map[string]storage.FS {
	t.Helper()
	local, err := storage.NewLocalFS(t.TempDir(), 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]storage.FS{
		"memfs":   storage.NewMemFS(nil, 1<<30),
		"localfs": local,
	}
}

type eqOutcome struct {
	out   []byte
	stats ManagerStats
	cls   ClassStats
	res   Result
}

// compareOutcomes asserts every backend matched the memfs reference
// exactly: bytes, result charge, obs charge, admissions, preemptions.
func compareOutcomes(t *testing.T, got map[string]eqOutcome) {
	t.Helper()
	ref := got["memfs"]
	for name, o := range got {
		if name == "memfs" {
			continue
		}
		if !bytes.Equal(o.out, ref.out) {
			t.Errorf("%s: output differs from memfs (%d vs %d bytes)", name, len(o.out), len(ref.out))
		}
		if o.res.Bytes != ref.res.Bytes {
			t.Errorf("%s: result bytes %d, memfs %d", name, o.res.Bytes, ref.res.Bytes)
		}
		if o.cls.Bytes != ref.cls.Bytes {
			t.Errorf("%s: obs bytes %d, memfs %d", name, o.cls.Bytes, ref.cls.Bytes)
		}
		if o.stats.Admissions != ref.stats.Admissions || o.stats.Preemptions != ref.stats.Preemptions {
			t.Errorf("%s: scheduler charges adm=%d pre=%d, memfs adm=%d pre=%d",
				name, o.stats.Admissions, o.stats.Preemptions, ref.stats.Admissions, ref.stats.Preemptions)
		}
	}
}

func TestBackendEquivalenceSparseGet(t *testing.T) {
	const quantum = 192 * 1024
	got := make(map[string]eqOutcome)
	for name, fs := range eqBackends(t) {
		f, size := sparseFile(t, fs, "/f", 42)
		sink := &collectWriter{}
		tr := &Transfer{Class: "eq", Size: size, Src: storage.NewSectionReader(f, 0, size), Dst: sink}
		stats, cls, res := runManaged(t, tr, quantum)
		if res.Err != nil {
			t.Fatalf("%s: %v", name, res.Err)
		}
		f.Close()
		got[name] = eqOutcome{out: sink.bytes(), stats: stats, cls: cls, res: res}
	}
	if len(got["memfs"].out) == 0 {
		t.Fatal("no bytes moved")
	}
	compareOutcomes(t, got)
}

func TestBackendEquivalenceSparsePut(t *testing.T) {
	const quantum = 128 * 1024
	data := make([]byte, 900_000)
	rand.New(rand.NewSource(7)).Read(data)
	const putOff = 150_000 // sparse: hole below the write

	got := make(map[string]eqOutcome)
	for name, fs := range eqBackends(t) {
		f, err := fs.Create("/out", "u")
		if err != nil {
			t.Fatal(err)
		}
		tr := &Transfer{
			Class: "eq", Size: int64(len(data)),
			Src: bytes.NewReader(data),
			Dst: storage.NewOffsetWriter(f, putOff),
		}
		stats, cls, res := runManaged(t, tr, quantum)
		if res.Err != nil {
			t.Fatalf("%s: %v", name, res.Err)
		}
		out := make([]byte, f.Size())
		if _, err := f.ReadAt(out, 0); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		f.Close()
		got[name] = eqOutcome{out: out, stats: stats, cls: cls, res: res}
	}
	// The hole below putOff must come back as zeros from both stores.
	for i := 0; i < putOff; i++ {
		if got["memfs"].out[i] != 0 {
			t.Fatalf("memfs hole byte %d nonzero", i)
		}
	}
	compareOutcomes(t, got)
}

// TestBackendEquivalenceCancellation: the sink dies after a
// chunk-aligned budget; both stores must charge exactly the delivered
// bytes and surface the same error.
func TestBackendEquivalenceCancellation(t *testing.T) {
	const total = 16 * 64 * 1024
	const budget = 5 * 64 * 1024
	boom := errors.New("connection reset")

	got := make(map[string]eqOutcome)
	for name, fs := range eqBackends(t) {
		f, err := fs.Create("/c", "u")
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, total)
		rand.New(rand.NewSource(5)).Read(data)
		f.WriteAt(data, 0)

		sink := &failAfterWriter{budget: budget, err: boom}
		tr := &Transfer{Class: "eq", Size: total, Src: storage.NewSectionReader(f, 0, total), Dst: sink}
		stats, cls, res := runManaged(t, tr, 0)
		if !errors.Is(res.Err, boom) {
			t.Fatalf("%s: err = %v, want boom", name, res.Err)
		}
		if sink.got.Len() != budget {
			t.Fatalf("%s: sink received %d, want %d", name, sink.got.Len(), budget)
		}
		f.Close()
		got[name] = eqOutcome{out: append([]byte(nil), sink.got.Bytes()...), stats: stats, cls: cls, res: res}
	}
	compareOutcomes(t, got)
}

// TestBackendEquivalenceTruncationRace runs the reader-vs-truncator
// race against each store: the invariants (clean end or
// ErrUnexpectedEOF; charges never exceed delivery) must hold over the
// disk store's mmap/ftruncate discipline exactly as over MemFS extent
// recycling, and the race detector gets both lock disciplines.
func TestBackendEquivalenceTruncationRace(t *testing.T) {
	const size = 32 * 64 * 1024
	for name, fs := range eqBackends(t) {
		t.Run(name, func(t *testing.T) {
			f, err := fs.Create("/r", "u")
			if err != nil {
				t.Fatal(err)
			}
			data := make([]byte, size)
			f.WriteAt(data, 0)

			w, err := fs.OpenRW("/r")
			if err != nil {
				t.Fatal(err)
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					w.Truncate(int64(size / 2))
					w.WriteAt(data[:4096], int64(size/2)-2048)
					w.Truncate(size)
				}
			}()

			sink := &collectWriter{}
			tr := &Transfer{Class: "eq", Size: size, Src: storage.NewSectionReader(f, 0, size), Dst: sink}
			_, _, res := runManaged(t, tr, 64*1024)
			close(stop)
			wg.Wait()
			w.Close()
			f.Close()

			if res.Err != nil && !errors.Is(res.Err, io.ErrUnexpectedEOF) {
				t.Fatalf("unexpected error %v", res.Err)
			}
			if delivered := int64(len(sink.bytes())); res.Bytes > delivered {
				t.Fatalf("charged %d > delivered %d", res.Bytes, delivered)
			}
		})
	}
}

// TestBackendEquivalenceStriped drives striped GETs at widths 1/2/4
// through both stores: stripe sub-pumps hit the disk file's handoff
// path concurrently, and every width must match the memfs reference
// byte-for-byte and charge-for-charge.
func TestBackendEquivalenceStriped(t *testing.T) {
	const size = 10*64*1024 + 13
	const quantum = 192 * 1024
	data := make([]byte, size)
	rand.New(rand.NewSource(11)).Read(data)

	for _, width := range []int{1, 2, 4} {
		got := make(map[string]eqOutcome)
		for name, fs := range eqBackends(t) {
			f, err := fs.Create("/striped", "u")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteAt(data, 0); err != nil {
				t.Fatal(err)
			}
			var tr *Transfer
			out := make([]byte, size)
			if width <= 1 {
				sink := &collectWriter{}
				tr = &Transfer{Class: "eq", Path: "/striped", Size: size,
					Src: storage.NewSectionReader(f, 0, size), Dst: sink}
				stats, cls, res := runManaged(t, tr, quantum)
				copy(out, sink.bytes())
				got[name] = eqOutcome{out: out, stats: stats, cls: cls, res: res}
			} else {
				tr = stripeTransfer(f, size, width, out)
				stats, cls, res := runManaged(t, tr, quantum)
				got[name] = eqOutcome{out: out, stats: stats, cls: cls, res: res}
			}
			if got[name].res.Err != nil {
				t.Fatalf("%s width %d: %v", name, width, got[name].res.Err)
			}
			f.Close()
		}
		if !bytes.Equal(got["memfs"].out, data) {
			t.Fatalf("width %d: memfs reference output corrupt", width)
		}
		compareOutcomes(t, got)
	}
}
