// Package transfer implements NeST's transfer manager (paper §4): the
// protocol-agnostic machinery that moves data between storage and
// network for every protocol. It schedules concurrent transfers under
// a pluggable policy (package sched), executes them under one of three
// concurrency models — threads, processes, or events — and can adapt
// among the models at runtime by distributing requests equally at
// first, monitoring their progress, and slowly biasing toward the most
// effective choice (paper §4.1).
package transfer

import (
	"io"
	"sync"
	"sync/atomic"
	"time"

	"nest/internal/bufpool"
	"nest/internal/obs"
	"nest/internal/protocol"
	"nest/internal/sched"
	"nest/internal/sim"
)

// Transfer is one data-movement request handed to the manager after
// synchronous approval by the storage manager.
type Transfer struct {
	// Class is the protocol class for scheduling (e.g. "nfs").
	Class string
	// User is the authenticated principal on whose behalf the data
	// moves; per-user scheduling policies classify by it.
	User string
	// Path and Offset locate the data for cache-aware prediction.
	Path   string
	Offset int64
	// Size is the expected byte count, or -1 to pump until EOF.
	Size int64
	// Src and Dst are the endpoints; the pump copies Src to Dst in
	// ChunkSize pieces.
	Src io.Reader
	Dst io.Writer
	// Ranges, when it holds two or more entries, stripes the transfer:
	// each range is pumped concurrently over its own endpoints (Src and
	// Dst above are then ignored) while the transfer keeps exactly one
	// scheduling unit and one set of byte charges — see striped.go. Size
	// must equal the sum of the range sizes, and range boundaries should
	// be multiples of the chunk size (storage.PartitionStripes aligns
	// them to the extent size) so scheduler accounting stays
	// byte-identical to an unstriped transfer.
	Ranges []StripeRange
	// ChunkSize overrides the pump granularity (0 = protocol.ChunkSize).
	ChunkSize int
	// OnDone, if set, receives the result. It runs on the manager's
	// scheduling goroutine and must not block; hand heavy work off.
	OnDone func(Result)
	// TraceID carries the request trace identity minted at protocol
	// decode, so the transfer's timings land in the same trace record
	// as its dispatch (package obs).
	TraceID uint64
	// Span is the request span the transfer's stages nest under: when
	// the manager has a tracer, the queue wait, the data phase, and
	// each stripe record spans parented on it.
	Span uint64

	seq       int64
	submitted time.Duration
	started   time.Duration
	// unit is the transfer's persistent scheduling unit: the manager
	// fills it at submission, hands &unit to the policy, and updates
	// Bytes/Seq in place when quantum preemption re-queues the
	// transfer, so scheduling never rebuilds per-transfer state.
	unit sched.Unit
	// p is the transfer's pump, persistent across scheduling quanta.
	p *pump
	// counted tracks bytes already credited to metrics, so per-segment
	// accounting never double-counts.
	counted int64
	// quantum, when positive, bounds how many bytes one admission may
	// move before the transfer yields its slot and re-enters the
	// pending queue (stride scheduling's byte-quantum preemption).
	quantum int64
}

// ensurePump lazily creates the pump on first admission.
func (t *Transfer) ensurePump() *pump {
	if t.p == nil {
		t.p = newPump(t)
	}
	return t.p
}

// remaining estimates the bytes the next quantum will move, for the
// scheduler's byte-based accounting.
func (t *Transfer) remaining() int64 {
	var rem int64 = -1
	if t.Size >= 0 {
		rem = t.Size
		if t.p != nil {
			rem -= t.p.moved
		}
	}
	if t.quantum > 0 && (rem < 0 || rem > t.quantum) {
		return t.quantum
	}
	return rem
}

// Result reports a completed transfer.
type Result struct {
	Transfer *Transfer
	Bytes    int64
	Err      error
	Model    string        // concurrency model that executed it
	Queue    time.Duration // time waiting for admission
	Service  time.Duration // time executing
	Latency  time.Duration // Queue + Service (client-perceived)
}

// ClassStats aggregates per-protocol-class delivery. The latency
// quantiles come from a log-bucketed histogram, so each is an upper
// bound within a factor of two of the true quantile.
type ClassStats struct {
	Requests     int64
	Bytes        int64
	TotalLatency time.Duration
	TotalService time.Duration
	Errors       int64
	P50          time.Duration
	P95          time.Duration
	P99          time.Duration
}

// ModelStats aggregates per-concurrency-model execution.
type ModelStats struct {
	Requests     int64
	Bytes        int64
	TotalService time.Duration
}

// classCounters is the internal per-class accumulator. The bytes
// counter is the hot one — credited on every completed segment from
// concurrently completing transfers — so it is atomic and never takes
// the metrics lock; the cold completion fields are guarded by
// Metrics.mu.
type classCounters struct {
	bytes        atomic.Int64
	lat          obs.Histogram // client-perceived latency, nanoseconds
	requests     int64
	totalLatency time.Duration
	totalService time.Duration
	errors       int64
}

// snapshot copies the counters; call with Metrics.mu held (read or
// write) so the cold fields are stable.
func (cs *classCounters) snapshot() ClassStats {
	h := cs.lat.Snapshot()
	return ClassStats{
		Requests:     cs.requests,
		Bytes:        cs.bytes.Load(),
		TotalLatency: cs.totalLatency,
		TotalService: cs.totalService,
		Errors:       cs.errors,
		P50:          time.Duration(h.Quantile(0.50)),
		P95:          time.Duration(h.Quantile(0.95)),
		P99:          time.Duration(h.Quantile(0.99)),
	}
}

// Metrics collects transfer statistics for the experiment harness.
type Metrics struct {
	mu       sync.RWMutex
	start    time.Duration
	perClass map[string]*classCounters
	perModel map[string]*ModelStats
}

// NewMetrics returns empty metrics with the epoch at now.
func NewMetrics(now time.Duration) *Metrics {
	return &Metrics{
		start:    now,
		perClass: make(map[string]*classCounters),
		perModel: make(map[string]*ModelStats),
	}
}

// class returns the accumulator for a class, creating it on first
// touch. Steady state is a read-locked map lookup.
func (m *Metrics) class(class string) *classCounters {
	m.mu.RLock()
	cs := m.perClass[class]
	m.mu.RUnlock()
	if cs != nil {
		return cs
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if cs := m.perClass[class]; cs != nil {
		return cs
	}
	cs = &classCounters{}
	m.perClass[class] = cs
	return cs
}

// addBytes credits transferred bytes to a class as segments complete,
// so bandwidth over a measurement window reflects bytes actually moved
// rather than whole-transfer completions.
func (m *Metrics) addBytes(class string, n int64) {
	m.class(class).bytes.Add(n)
}

func (m *Metrics) record(r Result, byteDelta int64) {
	cs := m.class(r.Transfer.Class)
	cs.bytes.Add(byteDelta)
	cs.lat.Observe(int64(r.Latency))
	m.mu.Lock()
	defer m.mu.Unlock()
	cs.requests++
	cs.totalLatency += r.Latency
	cs.totalService += r.Service
	if r.Err != nil {
		cs.errors++
	}
	ms := m.perModel[r.Model]
	if ms == nil {
		ms = &ModelStats{}
		m.perModel[r.Model] = ms
	}
	ms.Requests++
	ms.Bytes += r.Bytes
	ms.TotalService += r.Service
}

// Class returns a copy of the stats for one protocol class.
func (m *Metrics) Class(class string) ClassStats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if cs := m.perClass[class]; cs != nil {
		return cs.snapshot()
	}
	return ClassStats{}
}

// Classes returns a copy of all per-class stats.
func (m *Metrics) Classes() map[string]ClassStats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make(map[string]ClassStats, len(m.perClass))
	for k, v := range m.perClass {
		out[k] = v.snapshot()
	}
	return out
}

// Models returns a copy of all per-model stats.
func (m *Metrics) Models() map[string]ModelStats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make(map[string]ModelStats, len(m.perModel))
	for k, v := range m.perModel {
		out[k] = *v
	}
	return out
}

// Reset clears counters and restarts the measurement epoch.
func (m *Metrics) Reset(now time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.start = now
	m.perClass = make(map[string]*classCounters)
	m.perModel = make(map[string]*ModelStats)
}

// LatencyQuantile returns an upper bound (within 2x) for the
// q-quantile of a class's client-perceived latency.
func (m *Metrics) LatencyQuantile(class string, q float64) time.Duration {
	m.mu.RLock()
	cs := m.perClass[class]
	m.mu.RUnlock()
	if cs == nil {
		return 0
	}
	return time.Duration(cs.lat.Quantile(q))
}

// LatencySnapshot returns the latency histogram of a class; merge the
// per-class snapshots for an all-traffic distribution.
func (m *Metrics) LatencySnapshot(class string) obs.HistSnapshot {
	m.mu.RLock()
	cs := m.perClass[class]
	m.mu.RUnlock()
	if cs == nil {
		return obs.HistSnapshot{}
	}
	return cs.lat.Snapshot()
}

// AvgLatency returns the mean client-perceived latency of a class.
func (m *Metrics) AvgLatency(class string) time.Duration {
	m.mu.RLock()
	defer m.mu.RUnlock()
	cs := m.perClass[class]
	if cs == nil || cs.requests == 0 {
		return 0
	}
	return cs.totalLatency / time.Duration(cs.requests)
}

// BandwidthMBps converts class bytes into MB/s over the window ending
// at now.
func (m *Metrics) BandwidthMBps(class string, now time.Duration) float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	elapsed := (now - m.start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	cs := m.perClass[class]
	if cs == nil {
		return 0
	}
	return float64(cs.bytes.Load()) / (1024 * 1024) / elapsed
}

// chunkWriterTo is the read-side zero-copy capability a source may
// expose (storage.SectionReader does): WriteNextTo hands the next run
// of resident bytes — at most limit — directly to the sink, with no
// intermediate buffer. Handoff gates the fast path: a false report
// means the implementation would have to stage through a buffer
// anyway, so the pump keeps its pooled loop (verbatim semantics).
type chunkWriterTo interface {
	WriteNextTo(w io.Writer, limit int64) (int64, error)
	Handoff() bool
}

// chunkReaderFrom is the write-side zero-copy capability a sink may
// expose (storage.OffsetWriter does): ReadNextFrom fills storage in
// place from the source, at most limit bytes per call.
type chunkReaderFrom interface {
	ReadNextFrom(r io.Reader, limit int64) (int64, error)
	Handoff() bool
}

// Data-path mode counters: chunks moved by the zero-copy handoff loop
// vs the pooled-buffer pump, exposed on /statusz via DataPathStats.
// Package-wide atomics for the same reason as the extent counters —
// the pools and pumps are process-shared machinery.
var (
	statHandoffChunks atomic.Int64
	statPooledChunks  atomic.Int64
)

// DataPathStats reports cumulative chunks moved via zero-copy extent
// handoff and via the pooled-buffer fallback, across all managers.
func DataPathStats() (handoff, pooled int64) {
	return statHandoffChunks.Load(), statPooledChunks.Load()
}

// countWriter is the accounting sink wrapped around Dst on the handoff
// read path: byte-charging credits what the sink actually accepted,
// independent of what the handoff implementation claims, so scheduler
// quanta and obs counters stay truthful even over partial writes.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// pump copies one transfer chunk-by-chunk so concurrency models can
// interleave transfers at chunk granularity. When an endpoint exposes
// the extent-handoff capability the pump skips the pooled buffer
// entirely and moves chunk-limited runs of extent memory straight
// between storage and the protocol framing; otherwise it stages
// through a pooled chunk buffer exactly as before.
type pump struct {
	t     *Transfer
	buf   []byte
	bufp  *[]byte         // pooled backing of buf, nil after release
	src   chunkWriterTo   // non-nil: zero-copy read handoff
	dst   chunkReaderFrom // non-nil: zero-copy write handoff
	cw    countWriter     // reused accounting sink for src handoffs
	chunk int64           // chunk granularity (scheduler quantum unit)
	moved int64
	err   error
	done  bool

	// Striped parent state (nil/unused on ordinary pumps): the
	// sub-pumps, their atomically published progress (for live status
	// snapshots while segment workers run), and the single-threaded
	// round-robin cursor. See striped.go.
	sub      []*pump
	subMoved []atomic.Int64
	subNext  int
}

func newPump(t *Transfer) *pump {
	size := t.ChunkSize
	if size <= 0 {
		size = protocol.ChunkSize
	}
	if len(t.Ranges) > 1 {
		return newStripedPump(t, int64(size))
	}
	p := &pump{t: t, chunk: int64(size)}
	if src, ok := t.Src.(chunkWriterTo); ok && src.Handoff() {
		p.src = src
		return p
	}
	if dst, ok := t.Dst.(chunkReaderFrom); ok && dst.Handoff() {
		p.dst = dst
		return p
	}
	bp := bufpool.Get(size)
	p.buf, p.bufp = *bp, bp
	return p
}

// handoff reports whether this pump runs the zero-copy loop.
func (p *pump) handoff() bool { return p.src != nil || p.dst != nil }

// handoffStep moves one chunk through the zero-copy path, preserving
// the pooled pump's accounting to the byte: a chunk that fails
// mid-delivery is not charged (writeChunk never advances moved on
// error), a source EOF short of the promised Size is
// io.ErrUnexpectedEOF with the final partial chunk uncharged
// (readChunk drops it), and an EOF that lands exactly on Size — or any
// EOF on an unbounded transfer — completes cleanly with the chunk
// charged.
func (p *pump) handoffStep() {
	limit := p.chunk
	if p.t.Size >= 0 {
		remaining := p.t.Size - p.moved
		if remaining <= 0 {
			p.done = true
			return
		}
		if remaining < limit {
			limit = remaining
		}
	}
	var n int64
	var err error
	if p.src != nil {
		p.cw.w, p.cw.n = p.t.Dst, 0
		_, err = p.src.WriteNextTo(&p.cw, limit)
		n = p.cw.n
		p.cw.w = nil
	} else {
		n, err = p.dst.ReadNextFrom(p.t.Src, limit)
	}
	if err != nil {
		p.done = true
		switch {
		case err != io.EOF:
			p.err = err
		case p.t.Size < 0, p.moved+n == p.t.Size:
			// Clean EOF: the chunk completes the transfer.
			p.moved += n
			if n > 0 {
				statHandoffChunks.Add(1)
			}
		default:
			p.err = io.ErrUnexpectedEOF
		}
		return
	}
	p.moved += n
	if n > 0 {
		statHandoffChunks.Add(1)
	}
	if p.t.Size >= 0 && p.moved >= p.t.Size {
		p.done = true
	}
}

// release returns the chunk buffer to the pool. The manager calls it
// once the transfer fully completes (never on quantum preemption: the
// buffer persists across scheduling segments).
func (p *pump) release() {
	if p.sub != nil {
		p.releaseStriped()
		return
	}
	if p.bufp == nil {
		return
	}
	bufpool.Put(p.bufp)
	p.bufp = nil
	p.buf = nil
}

// readChunk fills the pump buffer with the next chunk. It returns the
// byte count; the pump is marked done (with p.err set on failure) when
// the source is exhausted. Staged architectures call readChunk and
// writeChunk from different stages; step composes them. On a handoff
// pump there is no buffer to fill: readChunk performs the whole
// zero-copy chunk move (storage and sink touch the same memory, so
// read and write are one act — naturally in the disk stage) and
// returns 0, leaving writeChunk a no-op.
func (p *pump) readChunk() int {
	if p.done {
		return 0
	}
	if p.sub != nil {
		// Striped parent: one round-robin stripe chunk per read-stage
		// visit, like the handoff pump's whole-move-in-read.
		p.stripedStep()
		return 0
	}
	if p.handoff() {
		p.handoffStep()
		return 0
	}
	limit := int64(len(p.buf))
	if p.t.Size >= 0 {
		remaining := p.t.Size - p.moved
		if remaining <= 0 {
			p.done = true
			return 0
		}
		if remaining < limit {
			limit = remaining
		}
	}
	n, rerr := p.t.Src.Read(p.buf[:limit])
	if rerr != nil {
		if rerr != io.EOF {
			p.err = rerr
		} else if p.t.Size >= 0 && p.moved+int64(n) < p.t.Size {
			p.err = io.ErrUnexpectedEOF
		}
		p.done = true
	}
	return n
}

// writeChunk delivers the first n buffered bytes to the sink and
// advances the byte count.
func (p *pump) writeChunk(n int) {
	if n <= 0 {
		return
	}
	if _, werr := p.t.Dst.Write(p.buf[:n]); werr != nil {
		p.err = werr
		p.done = true
		return
	}
	p.moved += int64(n)
	statPooledChunks.Add(1)
	if p.t.Size >= 0 && p.moved >= p.t.Size {
		p.done = true
	}
}

// step moves one chunk; it reports true when the transfer is finished
// (p.err holds any failure).
func (p *pump) step() bool {
	if p.done {
		return true
	}
	if p.sub != nil {
		return p.stripedStep()
	}
	if p.handoff() {
		p.handoffStep()
		return p.done
	}
	n := p.readChunk()
	if p.err != nil {
		return true
	}
	p.writeChunk(n)
	return p.done
}

// run drives the pump to completion, charging perChunk model overhead
// before each chunk.
func (p *pump) run(clock sim.Clock, perChunk time.Duration) {
	p.runSegment(clock, perChunk, 0)
}

// runSegment drives the pump until completion or until quantum bytes
// have moved (quantum <= 0 means no bound). It returns the bytes moved
// by this segment.
func (p *pump) runSegment(clock sim.Clock, perChunk time.Duration, quantum int64) int64 {
	if p.sub != nil {
		return p.runStripedSegment(clock, perChunk, quantum)
	}
	start := p.moved
	for {
		if p.done || (quantum > 0 && p.moved-start >= quantum) {
			return p.moved - start
		}
		if perChunk > 0 {
			clock.Sleep(perChunk)
		}
		if p.step() {
			return p.moved - start
		}
	}
}
