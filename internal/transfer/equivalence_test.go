package transfer

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"sync"
	"testing"

	"nest/internal/sched"
	"nest/internal/sim"
	"nest/internal/storage"
)

// The equivalence suite proves the zero-copy handoff loop and the
// pooled-buffer pump are interchangeable: byte-identical output,
// identical scheduler byte-charges (admissions/preemptions under a
// byte quantum), and identical obs byte counters — across sparse
// files, truncation, and mid-transfer sink failure.
//
// The pooled path is forced by hiding the handoff capability behind
// plain wrapper types, so both runs drive the same endpoints.

// plainReader hides WriteNextTo/Handoff so the pump stages through its
// pooled buffer.
type plainReader struct{ r io.Reader }

func (p plainReader) Read(b []byte) (int, error) { return p.r.Read(b) }

// plainWriter hides ReadNextFrom/Handoff.
type plainWriter struct{ w io.Writer }

func (p plainWriter) Write(b []byte) (int, error) { return p.w.Write(b) }

// collectWriter is a concurrency-safe accumulating sink.
type collectWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (c *collectWriter) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.buf.Write(p)
}

func (c *collectWriter) bytes() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.buf.Bytes()...)
}

// sparseFile builds a file with data at scattered offsets and holes
// between them on any backend.
func sparseFile(t testing.TB, fs storage.FS, path string, seed int64) (storage.File, int64) {
	t.Helper()
	f, err := fs.Create(path, "u")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	// Runs landing across extent boundaries, with gaps.
	offs := []int64{0, 70_000, 200_000, 64 * 1024 * 5, 64*1024*7 + 13}
	for _, off := range offs {
		chunk := make([]byte, 30_000+rng.Intn(40_000))
		rng.Read(chunk)
		if _, err := f.WriteAt(chunk, off); err != nil {
			t.Fatal(err)
		}
	}
	return f, f.Size()
}

// runManaged submits one transfer through a fresh manager with a byte
// quantum and reports (output unavailable here), metrics bytes,
// admissions, preemptions, and the transfer result.
func runManaged(t testing.TB, tr *Transfer, quantum int64) (ManagerStats, ClassStats, Result) {
	t.Helper()
	clock := sim.NewRealClock()
	m := NewManager(Options{
		Clock:   clock,
		Model:   Threads,
		Slots:   1,
		Quantum: quantum,
		Policy:  sched.NewStride(map[string]int{tr.Class: 100}),
	})
	var res Result
	done := make(chan struct{})
	tr.OnDone = func(r Result) { res = r; close(done) }
	m.Submit(tr)
	<-done
	m.Wait()
	stats := m.Stats()
	cls := m.Metrics().Class(tr.Class)
	m.Close()
	return stats, cls, res
}

func TestEquivalenceSparseGet(t *testing.T) {
	const quantum = 192 * 1024 // three chunks per admission
	run := func(pooled bool) ([]byte, ManagerStats, ClassStats, Result) {
		fs := storage.NewMemFS(nil, 1<<30)
		f, size := sparseFile(t, fs, "/f", 42)
		defer f.Close()
		var src io.Reader = storage.NewSectionReader(f, 0, size)
		if pooled {
			src = plainReader{src}
		}
		sink := &collectWriter{}
		tr := &Transfer{Class: "eq", Size: size, Src: src, Dst: sink}
		stats, cls, res := runManaged(t, tr, quantum)
		return sink.bytes(), stats, cls, res
	}

	outH, statsH, clsH, resH := run(false)
	outP, statsP, clsP, resP := run(true)

	if resH.Err != nil || resP.Err != nil {
		t.Fatalf("errs: handoff=%v pooled=%v", resH.Err, resP.Err)
	}
	if !bytes.Equal(outH, outP) {
		t.Fatalf("output differs: handoff %d bytes, pooled %d bytes", len(outH), len(outP))
	}
	if resH.Bytes != resP.Bytes {
		t.Fatalf("result bytes differ: %d vs %d", resH.Bytes, resP.Bytes)
	}
	if clsH.Bytes != clsP.Bytes {
		t.Fatalf("obs byte counters differ: %d vs %d", clsH.Bytes, clsP.Bytes)
	}
	if statsH.Admissions != statsP.Admissions || statsH.Preemptions != statsP.Preemptions {
		t.Fatalf("scheduler charges differ: handoff adm=%d pre=%d, pooled adm=%d pre=%d",
			statsH.Admissions, statsH.Preemptions, statsP.Admissions, statsP.Preemptions)
	}
	// Sanity: the sparse file's holes came through as zeros.
	if int64(len(outH)) == 0 {
		t.Fatal("no bytes moved")
	}
}

func TestEquivalenceSparsePut(t *testing.T) {
	const quantum = 128 * 1024
	data := make([]byte, 900_000) // unaligned, crosses many extents
	rand.New(rand.NewSource(7)).Read(data)
	const putOff = 150_000 // sparse: hole below the write

	run := func(pooled bool) ([]byte, ManagerStats, ClassStats, Result) {
		fs := storage.NewMemFS(nil, 1<<30)
		f, err := fs.Create("/out", "u")
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		var dst io.Writer = storage.NewOffsetWriter(f, putOff)
		if pooled {
			dst = plainWriter{dst}
		}
		tr := &Transfer{Class: "eq", Size: int64(len(data)), Src: bytes.NewReader(data), Dst: dst}
		stats, cls, res := runManaged(t, tr, quantum)
		out := make([]byte, f.Size())
		if _, err := f.ReadAt(out, 0); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		return out, stats, cls, res
	}

	outH, statsH, clsH, resH := run(false)
	outP, statsP, clsP, resP := run(true)

	if resH.Err != nil || resP.Err != nil {
		t.Fatalf("errs: handoff=%v pooled=%v", resH.Err, resP.Err)
	}
	if !bytes.Equal(outH, outP) {
		t.Fatal("stored file contents differ between paths")
	}
	if resH.Bytes != resP.Bytes || clsH.Bytes != clsP.Bytes {
		t.Fatalf("byte charges differ: result %d/%d obs %d/%d",
			resH.Bytes, resP.Bytes, clsH.Bytes, clsP.Bytes)
	}
	if statsH.Admissions != statsP.Admissions || statsH.Preemptions != statsP.Preemptions {
		t.Fatalf("scheduler charges differ: handoff adm=%d pre=%d, pooled adm=%d pre=%d",
			statsH.Admissions, statsH.Preemptions, statsP.Admissions, statsP.Preemptions)
	}
}

// TestEquivalenceTruncatedSource: the file is shorter than the
// promised Size (chunk-aligned so the divergence-free comparison
// holds); both paths must deliver the same prefix, charge the same
// bytes, and fail with io.ErrUnexpectedEOF.
func TestEquivalenceTruncatedSource(t *testing.T) {
	const fileSize = 4 * 64 * 1024 // chunk-aligned resident data
	const promised = 8 * 64 * 1024 // transfer claims more

	run := func(pooled bool) ([]byte, ClassStats, Result) {
		fs := storage.NewMemFS(nil, 1<<30)
		f, err := fs.Create("/t", "u")
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		data := make([]byte, fileSize)
		rand.New(rand.NewSource(3)).Read(data)
		f.WriteAt(data, 0)

		var src io.Reader = storage.NewSectionReader(f, 0, promised)
		if pooled {
			src = plainReader{src}
		}
		sink := &collectWriter{}
		tr := &Transfer{Class: "eq", Size: promised, Src: src, Dst: sink}
		_, cls, res := runManaged(t, tr, 0)
		return sink.bytes(), cls, res
	}

	outH, clsH, resH := run(false)
	outP, clsP, resP := run(true)

	if !errors.Is(resH.Err, io.ErrUnexpectedEOF) || !errors.Is(resP.Err, io.ErrUnexpectedEOF) {
		t.Fatalf("errs: handoff=%v pooled=%v, want ErrUnexpectedEOF", resH.Err, resP.Err)
	}
	if !bytes.Equal(outH, outP) {
		t.Fatalf("truncated output differs: %d vs %d bytes", len(outH), len(outP))
	}
	if resH.Bytes != fileSize || resP.Bytes != fileSize {
		t.Fatalf("bytes: handoff=%d pooled=%d, want %d", resH.Bytes, resP.Bytes, fileSize)
	}
	if clsH.Bytes != clsP.Bytes {
		t.Fatalf("obs counters differ: %d vs %d", clsH.Bytes, clsP.Bytes)
	}
}

// failAfterWriter accepts exactly budget bytes, then rejects every
// write outright (accept-nothing), modeling a client that vanishes
// mid-transfer.
type failAfterWriter struct {
	budget int
	err    error
	got    bytes.Buffer
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if len(p) > w.budget {
		return 0, w.err
	}
	w.budget -= len(p)
	return w.got.Write(p)
}

// TestEquivalenceCancellation: the sink dies after a chunk-aligned
// byte budget; both paths must charge exactly the delivered bytes and
// surface the sink's error.
func TestEquivalenceCancellation(t *testing.T) {
	const total = 16 * 64 * 1024
	const budget = 5 * 64 * 1024
	boom := errors.New("connection reset")

	run := func(pooled bool) (ClassStats, Result, int) {
		fs := storage.NewMemFS(nil, 1<<30)
		f, err := fs.Create("/c", "u")
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		data := make([]byte, total)
		rand.New(rand.NewSource(5)).Read(data)
		f.WriteAt(data, 0)

		var src io.Reader = storage.NewSectionReader(f, 0, total)
		if pooled {
			src = plainReader{src}
		}
		sink := &failAfterWriter{budget: budget, err: boom}
		tr := &Transfer{Class: "eq", Size: total, Src: src, Dst: sink}
		_, cls, res := runManaged(t, tr, 0)
		return cls, res, sink.got.Len()
	}

	clsH, resH, gotH := run(false)
	clsP, resP, gotP := run(true)

	if !errors.Is(resH.Err, boom) || !errors.Is(resP.Err, boom) {
		t.Fatalf("errs: handoff=%v pooled=%v, want boom", resH.Err, resP.Err)
	}
	if gotH != budget || gotP != budget {
		t.Fatalf("sink received handoff=%d pooled=%d, want %d", gotH, gotP, budget)
	}
	if resH.Bytes != resP.Bytes || clsH.Bytes != clsP.Bytes {
		t.Fatalf("byte charges differ: result %d/%d obs %d/%d",
			resH.Bytes, resP.Bytes, clsH.Bytes, clsP.Bytes)
	}
}

// TestEquivalenceTruncationRace runs a reader transfer while a writer
// goroutine truncates and rewrites the file. There is no deterministic
// output to compare; the test pins the invariants that survive the
// race on both paths — the transfer ends (cleanly or with
// ErrUnexpectedEOF), charged bytes never exceed delivered bytes — and
// gives the race detector both lock disciplines to chew on.
func TestEquivalenceTruncationRace(t *testing.T) {
	for _, pooled := range []bool{false, true} {
		fs := storage.NewMemFS(nil, 1<<30)
		f, err := fs.Create("/r", "u")
		if err != nil {
			t.Fatal(err)
		}
		const size = 32 * 64 * 1024
		data := make([]byte, size)
		f.WriteAt(data, 0)

		w, err := fs.OpenRW("/r")
		if err != nil {
			t.Fatal(err)
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				w.Truncate(int64(size / 2))
				w.WriteAt(data[:4096], int64(size/2)-2048)
				w.Truncate(size)
			}
		}()

		var src io.Reader = storage.NewSectionReader(f, 0, size)
		if pooled {
			src = plainReader{src}
		}
		sink := &collectWriter{}
		tr := &Transfer{Class: "eq", Size: size, Src: src, Dst: sink}
		_, _, res := runManaged(t, tr, 64*1024)
		close(stop)
		wg.Wait()
		w.Close()
		f.Close()

		if res.Err != nil && !errors.Is(res.Err, io.ErrUnexpectedEOF) {
			t.Fatalf("pooled=%v: unexpected error %v", pooled, res.Err)
		}
		if delivered := int64(len(sink.bytes())); res.Bytes > delivered {
			t.Fatalf("pooled=%v: charged %d > delivered %d", pooled, res.Bytes, delivered)
		}
	}
}

// TestHandoffChunkCounters verifies the data-path mode split counters
// move with the right loop.
func TestHandoffChunkCounters(t *testing.T) {
	fs := storage.NewMemFS(nil, 1<<30)
	f, _ := fs.Create("/m", "u")
	data := make([]byte, 4*64*1024)
	f.WriteAt(data, 0)
	defer f.Close()

	h0, p0 := DataPathStats()
	tr := &Transfer{Class: "m", Size: int64(len(data)), Src: storage.NewSectionReader(f, 0, int64(len(data))), Dst: io.Discard}
	pp := tr.ensurePump()
	for !pp.step() {
	}
	pp.release()
	h1, p1 := DataPathStats()
	if h1-h0 != 4 || p1 != p0 {
		t.Fatalf("handoff get: counters moved handoff=%d pooled=%d, want 4/0", h1-h0, p1-p0)
	}

	tr = &Transfer{Class: "m", Size: int64(len(data)), Src: plainReader{storage.NewSectionReader(f, 0, int64(len(data)))}, Dst: io.Discard}
	pp = tr.ensurePump()
	for !pp.step() {
	}
	pp.release()
	h2, p2 := DataPathStats()
	if p2-p1 != 4 || h2 != h1 {
		t.Fatalf("pooled get: counters moved handoff=%d pooled=%d, want 0/4", h2-h1, p2-p1)
	}
}
