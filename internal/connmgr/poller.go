package connmgr

import "sync"

// platformPoller is the OS readiness facility (epoll on Linux). A nil
// platform poller means parked connections must carry the PollableConn
// capability or keep their goroutines.
type platformPoller interface {
	// add registers a parked connection for one readiness wake-up.
	add(p *parked) error
	// del undoes a registration whose wake was claimed by someone else
	// (idle reap, shutdown).
	del(p *parked)
	// close releases the poller.
	close()
}

// PollableConn is the readiness capability a connection without an OS
// descriptor (simulated connections in the connection-scale benches,
// in-memory test conns) implements so the probe poller can watch it.
// ReadReady must report, without blocking or consuming input, whether
// a Read would return promptly; hungup reports the peer is gone.
type PollableConn interface {
	ReadReady() (ready, hungup bool)
}

// probePoller is the portable fallback: a coarse timer wheel (the
// manager's sweeper tick) that polls each parked PollableConn for
// readiness. It exists so the parking architecture — and the 100k-
// connection simulation built on it — runs identically on every
// platform; real descriptors go through the platform poller instead.
type probePoller struct {
	m       *Manager
	mu      sync.Mutex
	entries map[uint64]probeEntry
}

type probeEntry struct {
	p  *parked
	rc PollableConn
}

func newProbePoller(m *Manager) *probePoller {
	return &probePoller{m: m, entries: make(map[uint64]probeEntry)}
}

// tryAdd registers p if its conn is pollable, reporting success.
func (pp *probePoller) tryAdd(p *parked) bool {
	rc, ok := p.conn.(PollableConn)
	if !ok {
		return false
	}
	pp.mu.Lock()
	pp.entries[p.tok] = probeEntry{p: p, rc: rc}
	pp.mu.Unlock()
	return true
}

func (pp *probePoller) remove(tok uint64) {
	pp.mu.Lock()
	delete(pp.entries, tok)
	pp.mu.Unlock()
}

// poll probes every watched connection once. Wakes go through the
// manager's claim path, which removes the entry.
func (pp *probePoller) poll() {
	pp.mu.Lock()
	if len(pp.entries) == 0 {
		pp.mu.Unlock()
		return
	}
	snap := make([]probeEntry, 0, len(pp.entries))
	for _, e := range pp.entries {
		snap = append(snap, e)
	}
	pp.mu.Unlock()
	for _, e := range snap {
		ready, hungup := e.rc.ReadReady()
		switch {
		case hungup:
			pp.m.wake(e.p.tok, WakeHangup)
		case ready:
			pp.m.wake(e.p.tok, WakeReadable)
		}
	}
}
