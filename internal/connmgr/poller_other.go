//go:build !linux

package connmgr

import "errors"

// newPlatformPoller reports no OS readiness facility on this platform:
// connections carrying the PollableConn capability park through the
// probe poller's timer wheel; plain descriptors keep their goroutines
// (today's behavior, just with admission control in front).
func newPlatformPoller(m *Manager) (platformPoller, error) {
	return nil, errors.New("connmgr: no platform poller on this OS")
}
