// Package connmgr is NeST's connection front end: explicit admission
// control, overload shedding, and event-driven parking of idle
// protocol connections.
//
// The paper's transfer manager abstracts concurrency models for the
// data plane (threads/processes/events, §4.1); this package extends
// that discipline to the control plane. A goroutine-per-connection
// accept loop collapses under heavy traffic twice over: every idle
// client pins a goroutine stack forever, and past saturation new work
// queues without bound instead of being refused. The manager here
// makes both costs explicit:
//
//   - Admission: per-protocol and per-user connection quotas decided
//     at accept/handshake time, so one protocol class or principal
//     cannot exhaust the appliance's descriptors.
//   - Shedding: a cached overload signal (transfer queue depth, merged
//     request p99, in-flight transfers — the facts obs already
//     exports) past whose thresholds new connections are fast-refused
//     with protocol-correct busy replies instead of queued.
//   - Parking: between requests an idle connection is registered with
//     a readiness poller (epoll on Linux, a deadline-probe wheel
//     elsewhere) and its serving goroutine is released; readiness
//     re-dispatches the session onto a bounded worker pool. An idle
//     parked connection costs a descriptor and this package's entry,
//     not a goroutine stack.
//
// The manager is clock-aware: pollers, workers and the idle sweeper
// run under sim.Clock, so connection-scale simulations drive the same
// code the live appliance runs.
package connmgr

import (
	"net"
	"sync"
	"sync/atomic"
	"time"

	"nest/internal/sim"
)

// Decision is the outcome of an admission check.
type Decision int

// Admission outcomes.
const (
	// Admitted grants the connection.
	Admitted Decision = iota
	// RefusedQuota denies it because a per-protocol or per-user
	// connection quota is exhausted.
	RefusedQuota
	// Shed denies it because the appliance is past its overload
	// thresholds (or shutting down) and is degrading predictably.
	Shed
)

// WakeReason tells a resumed session why it was woken.
type WakeReason int

// Wake reasons.
const (
	// WakeReadable: the connection has bytes (or a pending EOF) to
	// read; resume the request loop.
	WakeReadable WakeReason = iota
	// WakeHangup: the poller saw the peer close; resuming the read
	// path will observe EOF.
	WakeHangup
	// WakeReaped: the connection sat idle past the idle timeout.
	WakeReaped
	// WakeShutdown: the manager is closing.
	WakeShutdown
)

// Readable reports whether the wake should re-enter the request loop
// (true) or tear the session down (false).
func (r WakeReason) Readable() bool { return r == WakeReadable || r == WakeHangup }

// Signals are the live overload facts the shedder samples. Nil fields
// are ignored. They are polled at most once per SignalPeriod, so they
// may be moderately expensive (a histogram merge, a stats snapshot).
type Signals struct {
	// QueueDepth is the transfer manager's pending-admission depth.
	QueueDepth func() int64
	// P99 is the merged request p99 latency across dispatch paths.
	P99 func() time.Duration
	// InFlight is the number of transfers currently executing.
	InFlight func() int64
}

// Config parameterizes a Manager. The zero value (plus a clock)
// admits everything, never sheds, parks with no idle reaping.
type Config struct {
	// Clock drives pollers, workers and the sweeper; nil uses a real
	// clock.
	Clock sim.Clock

	// MaxPerProto caps concurrent connections per protocol class
	// (0: unlimited).
	MaxPerProto int
	// MaxPerUser caps concurrent connections per authenticated
	// principal (0: unlimited). The dispatcher exempts the anonymous
	// principal — anonymous load is governed by MaxPerProto.
	MaxPerUser int

	// IdleTimeout reaps parked connections idle longer than this
	// (0: never). It also bounds how long a resumed session may sit in
	// a partial request before its read deadline fires.
	IdleTimeout time.Duration

	// Shed thresholds: when any configured (non-zero) threshold is
	// exceeded by its signal, new connections are refused busy.
	ShedQueueDepth int64
	ShedP99        time.Duration
	ShedInFlight   int64
	// Signals supply the live values the thresholds are checked
	// against.
	Signals Signals
	// SignalPeriod caches the shed decision between signal polls
	// (default 100ms).
	SignalPeriod time.Duration

	// Workers bounds the resume pool: how many sessions woken from
	// park may execute concurrently (default 64).
	Workers int
	// PollInterval is the deadline-probe poller's tick for connections
	// the platform poller cannot watch (default 20ms).
	PollInterval time.Duration

	// Logf receives diagnostics; nil silences.
	Logf func(format string, args ...interface{})
}

// ProtoConns is one protocol's connection accounting.
type ProtoConns struct {
	Active  int64 // admitted, currently running a goroutine
	Parked  int64 // admitted, waiting in the poller
	Refused int64 // cumulative quota refusals
	Shed    int64 // cumulative overload refusals
}

// Stats is a snapshot of the manager's counters.
type Stats struct {
	Admitted int64 // cumulative admitted connections
	Refused  int64 // cumulative quota refusals
	Shed     int64 // cumulative overload refusals
	Parked   int64 // cumulative park operations
	Resumed  int64 // cumulative readiness resumes
	Reaped   int64 // cumulative idle reaps

	Active    int64 // connections currently running
	ParkedNow int64 // connections currently parked
}

type protoCount struct {
	active  atomic.Int64
	parked  atomic.Int64
	refused atomic.Int64
	shed    atomic.Int64
}

// parked is one connection waiting in a poller.
type parked struct {
	m      *Manager
	conn   net.Conn
	tok    uint64
	proto  string
	at     time.Duration // clock time the conn was parked
	reason WakeReason
	resume func(WakeReason)
	// claimed flips exactly once: whichever of readiness, reap or
	// shutdown wins owns the wake.
	claimed atomic.Bool
}

// Manager is the connection front end.
type Manager struct {
	cfg   Config
	clock sim.Clock

	// Admission accounting. The mutex covers the maps; the per-proto
	// blocks are atomic so exposition reads them without it. The
	// admission path is per-connection, not per-request, so a mutex is
	// ample.
	mu       sync.Mutex
	perProto map[string]*protoCount
	perUser  map[string]int
	closed   bool

	admitted atomic.Int64
	refused  atomic.Int64
	shed     atomic.Int64
	parkedC  atomic.Int64
	resumed  atomic.Int64
	reaped   atomic.Int64

	activeNow atomic.Int64
	parkedNow atomic.Int64

	// Cached shed decision, refreshed at most once per SignalPeriod.
	sigAt       atomic.Int64
	sigOverload atomic.Bool

	// Parking plane, started lazily on first Park. closedParkPlane is
	// guarded by pmu (Close and Park race on it).
	start           sync.Once
	pmu             sync.Mutex
	closedParkPlane bool
	parked          map[uint64]*parked
	tok             atomic.Uint64
	ready           *sim.Queue[*parked]
	// plat is atomic: the epoll wait loop (spawned inside platOnce)
	// claims wakes concurrently with the Park call that is still
	// publishing the poller.
	plat     atomic.Pointer[platformPoller]
	platOnce sync.Once
	probe    *probePoller
	loopsWG  sync.WaitGroup
}

// New builds a manager. Pollers and workers start lazily on first
// Park, so managers wired into dispatchers that never serve parkable
// protocols cost nothing.
func New(cfg Config) *Manager {
	if cfg.Clock == nil {
		cfg.Clock = sim.NewRealClock()
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 64
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 20 * time.Millisecond
	}
	if cfg.SignalPeriod <= 0 {
		cfg.SignalPeriod = 100 * time.Millisecond
	}
	m := &Manager{
		cfg:      cfg,
		clock:    cfg.Clock,
		perProto: make(map[string]*protoCount),
		perUser:  make(map[string]int),
		parked:   make(map[uint64]*parked),
	}
	m.sigAt.Store(-1 << 62)
	return m
}

func (m *Manager) logf(format string, args ...interface{}) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// IdleTimeout returns the configured idle deadline (0: none).
func (m *Manager) IdleTimeout() time.Duration { return m.cfg.IdleTimeout }

func (m *Manager) proto(p string) *protoCount {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.protoLocked(p)
}

func (m *Manager) protoLocked(p string) *protoCount {
	c := m.perProto[p]
	if c == nil {
		c = &protoCount{}
		m.perProto[p] = c
	}
	return c
}

// Overloaded evaluates (with SignalPeriod caching) whether any
// configured shed threshold is exceeded.
func (m *Manager) Overloaded() bool {
	cfg := &m.cfg
	if cfg.ShedQueueDepth <= 0 && cfg.ShedP99 <= 0 && cfg.ShedInFlight <= 0 {
		return false
	}
	now := int64(m.clock.Now())
	last := m.sigAt.Load()
	if now-last >= int64(cfg.SignalPeriod) && m.sigAt.CompareAndSwap(last, now) {
		over := false
		if cfg.ShedQueueDepth > 0 && cfg.Signals.QueueDepth != nil &&
			cfg.Signals.QueueDepth() > cfg.ShedQueueDepth {
			over = true
		}
		if !over && cfg.ShedP99 > 0 && cfg.Signals.P99 != nil &&
			cfg.Signals.P99() > cfg.ShedP99 {
			over = true
		}
		if !over && cfg.ShedInFlight > 0 && cfg.Signals.InFlight != nil &&
			cfg.Signals.InFlight() > cfg.ShedInFlight {
			over = true
		}
		m.sigOverload.Store(over)
	}
	return m.sigOverload.Load()
}

// Admit decides whether a freshly accepted connection of one protocol
// may proceed. Admitted connections count as active until Release.
func (m *Manager) Admit(proto string) Decision {
	if m.Overloaded() {
		m.shed.Add(1)
		m.proto(proto).shed.Add(1)
		return Shed
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.shed.Add(1)
		return Shed
	}
	c := m.protoLocked(proto)
	if m.cfg.MaxPerProto > 0 &&
		c.active.Load()+c.parked.Load() >= int64(m.cfg.MaxPerProto) {
		m.mu.Unlock()
		m.refused.Add(1)
		c.refused.Add(1)
		return RefusedQuota
	}
	c.active.Add(1)
	m.mu.Unlock()
	m.admitted.Add(1)
	m.activeNow.Add(1)
	return Admitted
}

// ShedOverflow records an overload refusal decided outside Admit: a
// full per-listener accept queue refuses the connection before it ever
// reaches admission.
func (m *Manager) ShedOverflow(proto string) {
	m.shed.Add(1)
	m.proto(proto).shed.Add(1)
}

// BindUser charges an admitted connection against its authenticated
// principal's quota, after the protocol handshake identifies it. A
// false return means the per-user quota is exhausted; the caller must
// refuse and Release with user "".
func (m *Manager) BindUser(user string) bool {
	if m.cfg.MaxPerUser <= 0 || user == "" {
		return true
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.perUser[user] >= m.cfg.MaxPerUser {
		m.refused.Add(1)
		return false
	}
	m.perUser[user]++
	return true
}

// Release returns an admitted connection's counts. user must be the
// principal previously bound with BindUser ("" if none/refused).
func (m *Manager) Release(proto, user string) {
	m.activeNow.Add(-1)
	m.proto(proto).active.Add(-1)
	if user != "" && m.cfg.MaxPerUser > 0 {
		m.mu.Lock()
		if n := m.perUser[user]; n <= 1 {
			delete(m.perUser, user)
		} else {
			m.perUser[user] = n - 1
		}
		m.mu.Unlock()
	}
}

// startLoops launches the resume workers, the idle sweeper and (if
// ever needed) the probe poller, exactly once.
func (m *Manager) startLoops() {
	m.start.Do(func() {
		m.ready = sim.NewQueue[*parked](m.clock)
		m.probe = newProbePoller(m)
		for i := 0; i < m.cfg.Workers; i++ {
			m.clock.Go(m.worker)
		}
		m.loopsWG.Add(1)
		m.clock.Go(m.sweeper)
	})
}

func (m *Manager) worker() {
	for {
		p, ok := m.ready.Pop()
		if !ok {
			return
		}
		p.resume(p.reason)
	}
}

// sweeper reaps parked connections idle past IdleTimeout and drives
// the probe poller's ticks.
func (m *Manager) sweeper() {
	defer m.loopsWG.Done()
	for {
		m.clock.Sleep(m.cfg.PollInterval)
		if m.isClosed() {
			return
		}
		m.Poll()
	}
}

// Poll runs one poller round synchronously: probe fd-less parked
// connections for readability and reap idle ones. The background
// sweeper calls it every PollInterval; tests and simulations may call
// it directly for deterministic stepping.
func (m *Manager) Poll() {
	if m.probe != nil {
		m.probe.poll()
	}
	idle := m.cfg.IdleTimeout
	if idle <= 0 {
		return
	}
	now := m.clock.Now()
	var expired []*parked
	m.pmu.Lock()
	for _, p := range m.parked {
		if now-p.at >= idle {
			expired = append(expired, p)
		}
	}
	m.pmu.Unlock()
	for _, p := range expired {
		if m.claim(p, WakeReaped) {
			m.reaped.Add(1)
			m.ready.Push(p)
		}
	}
}

// Park registers an idle connection for readiness wake-up and lets
// the calling goroutine return. resume is invoked from the worker
// pool with the wake reason; WakeReadable/WakeHangup re-enter the
// request loop, anything else tears the session down. A false return
// means the connection cannot be parked (manager closing, or the conn
// is neither platform-pollable nor manager-wrapped); the caller keeps
// its goroutine.
func (m *Manager) Park(conn net.Conn, proto string, resume func(WakeReason)) bool {
	m.startLoops()
	p := &parked{
		m:      m,
		conn:   conn,
		tok:    m.tok.Add(1),
		proto:  proto,
		at:     m.clock.Now(),
		resume: resume,
	}
	m.pmu.Lock()
	if m.closedParkPlane {
		m.pmu.Unlock()
		return false
	}
	m.parked[p.tok] = p
	m.pmu.Unlock()

	// Count the park before poller registration: readiness can fire
	// (and claim) the instant the fd is registered.
	m.parkedC.Add(1)
	m.parkedNow.Add(1)
	m.activeNow.Add(-1)
	pc := m.proto(proto)
	pc.parked.Add(1)
	pc.active.Add(-1)

	if m.platAdd(p) {
		return true
	}
	if m.probe.tryAdd(p) {
		return true
	}
	// Not pollable: undo and let the caller keep its goroutine.
	m.pmu.Lock()
	delete(m.parked, p.tok)
	m.pmu.Unlock()
	m.parkedC.Add(-1)
	m.parkedNow.Add(-1)
	m.activeNow.Add(1)
	pc.parked.Add(-1)
	pc.active.Add(1)
	return false
}

// platAdd tries the platform (epoll) poller; false means the conn is
// not platform-pollable here.
func (m *Manager) platAdd(p *parked) bool {
	m.platOnce.Do(func() {
		pl, err := newPlatformPoller(m)
		if err != nil {
			m.logf("connmgr: platform poller unavailable: %v", err)
			return
		}
		m.plat.Store(&pl)
	})
	pl := m.plat.Load()
	if pl == nil {
		return false
	}
	return (*pl).add(p) == nil
}

// claim transitions a parked conn to woken exactly once and removes
// it from the poller planes. It reports whether the caller won.
func (m *Manager) claim(p *parked, reason WakeReason) bool {
	if !p.claimed.CompareAndSwap(false, true) {
		return false
	}
	m.pmu.Lock()
	delete(m.parked, p.tok)
	m.pmu.Unlock()
	// The conn is registered with exactly one poller plane, but which
	// one is not recorded (a flag would race with the epoll loop's
	// claim): deregister from both, each a locked no-op for strangers.
	if pl := m.plat.Load(); pl != nil {
		(*pl).del(p)
	}
	if m.probe != nil {
		m.probe.remove(p.tok)
	}
	p.reason = reason
	m.parkedNow.Add(-1)
	m.activeNow.Add(1)
	pc := m.proto(p.proto)
	pc.parked.Add(-1)
	pc.active.Add(1)
	return true
}

// wake is the poller callback: readiness (or hangup) re-dispatches the
// session onto the worker pool.
func (m *Manager) wake(tok uint64, reason WakeReason) {
	m.pmu.Lock()
	p := m.parked[tok]
	m.pmu.Unlock()
	if p == nil {
		return
	}
	if m.claim(p, reason) {
		m.resumed.Add(1)
		m.ready.Push(p)
	}
}

func (m *Manager) isClosed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// Stats snapshots the counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Admitted:  m.admitted.Load(),
		Refused:   m.refused.Load(),
		Shed:      m.shed.Load(),
		Parked:    m.parkedC.Load(),
		Resumed:   m.resumed.Load(),
		Reaped:    m.reaped.Load(),
		Active:    m.activeNow.Load(),
		ParkedNow: m.parkedNow.Load(),
	}
}

// PerProto snapshots per-protocol connection accounting.
func (m *Manager) PerProto() map[string]ProtoConns {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]ProtoConns, len(m.perProto))
	for p, c := range m.perProto {
		out[p] = ProtoConns{
			Active:  c.active.Load(),
			Parked:  c.parked.Load(),
			Refused: c.refused.Load(),
			Shed:    c.shed.Load(),
		}
	}
	return out
}

// Close stops admissions, wakes every parked connection with
// WakeShutdown (their resume callbacks tear the sessions down
// inline), and stops the pollers and workers.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()

	m.pmu.Lock()
	alreadyClosed := m.closedParkPlane
	m.closedParkPlane = true
	ps := make([]*parked, 0, len(m.parked))
	for _, p := range m.parked {
		ps = append(ps, p)
	}
	m.pmu.Unlock()
	if alreadyClosed {
		return
	}
	for _, p := range ps {
		if m.claim(p, WakeShutdown) {
			p.resume(WakeShutdown)
		}
	}
	if m.ready != nil {
		m.ready.Close()
	}
	if pl := m.plat.Load(); pl != nil {
		(*pl).close()
	}
}
