//go:build linux

package connmgr

import (
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// tcpPair returns a connected loopback TCP pair.
func tcpPair(t *testing.T) (server, client net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { r.c.Close(); client.Close() })
	return r.c, client
}

// TestEpollParkResume drives the platform (epoll) poller with a real
// descriptor: a parked TCP conn must wake when the peer writes, with
// no Poll() call — the epoll wait loop delivers the event.
func TestEpollParkResume(t *testing.T) {
	server, client := tcpPair(t)
	m := New(Config{})
	defer m.Close()
	var woke atomic.Int32
	var reason atomic.Int32
	if !m.Park(server, "chirp", func(r WakeReason) {
		reason.Store(int32(r))
		woke.Add(1)
	}) {
		t.Fatal("park refused for a TCP conn on linux")
	}
	time.Sleep(10 * time.Millisecond)
	if woke.Load() != 0 {
		t.Fatal("woken before any bytes arrived")
	}
	if _, err := client.Write([]byte("get /x\n")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "epoll wake", func() bool { return woke.Load() == 1 })
	if r := WakeReason(reason.Load()); r != WakeReadable {
		t.Fatalf("reason = %v", r)
	}
}

// TestEpollParkHangup: closing the peer of a parked conn must deliver
// a hangup wake (EPOLLRDHUP/HUP), so dead clients are torn down by the
// poller rather than lingering until an idle reap.
func TestEpollParkHangup(t *testing.T) {
	server, client := tcpPair(t)
	m := New(Config{})
	defer m.Close()
	var woke atomic.Int32
	var reason atomic.Int32
	if !m.Park(server, "chirp", func(r WakeReason) {
		reason.Store(int32(r))
		woke.Add(1)
	}) {
		t.Fatal("park refused")
	}
	client.Close()
	waitFor(t, "hangup wake", func() bool { return woke.Load() == 1 })
	if r := WakeReason(reason.Load()); r != WakeHangup {
		t.Fatalf("reason = %v", r)
	}
}

// TestEpollManyParked parks a few hundred real conns and wakes them
// all, verifying tokens route each event to its own session.
func TestEpollManyParked(t *testing.T) {
	const n = 200
	m := New(Config{})
	defer m.Close()
	var woke atomic.Int32
	clients := make([]net.Conn, 0, n)
	for i := 0; i < n; i++ {
		server, client := tcpPair(t)
		if !m.Park(server, "chirp", func(WakeReason) { woke.Add(1) }) {
			t.Fatalf("park %d refused", i)
		}
		clients = append(clients, client)
	}
	if st := m.Stats(); st.ParkedNow != n {
		t.Fatalf("parked now = %d", st.ParkedNow)
	}
	for _, c := range clients {
		c.Write([]byte("x"))
	}
	waitFor(t, "all wakes", func() bool { return woke.Load() == n })
}
