package connmgr

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"nest/internal/sim"
)

// fakeConn is an in-memory connection carrying the PollableConn
// readiness capability, so parking runs through the probe poller on
// any platform (and at any scale — the 100k bench uses the same
// shape).
type fakeConn struct {
	pending atomic.Int32
	hup     atomic.Bool
	closed  atomic.Bool
}

func (c *fakeConn) Read(p []byte) (int, error)       { return 0, nil }
func (c *fakeConn) Write(p []byte) (int, error)      { return len(p), nil }
func (c *fakeConn) Close() error                     { c.closed.Store(true); return nil }
func (c *fakeConn) LocalAddr() net.Addr              { return nil }
func (c *fakeConn) RemoteAddr() net.Addr             { return nil }
func (c *fakeConn) SetDeadline(time.Time) error      { return nil }
func (c *fakeConn) SetReadDeadline(time.Time) error  { return nil }
func (c *fakeConn) SetWriteDeadline(time.Time) error { return nil }
func (c *fakeConn) ReadReady() (ready, hungup bool)  { return c.pending.Load() > 0, c.hup.Load() }

// bareConn has no readiness capability and no descriptor: it cannot
// be parked.
type bareConn struct{}

func (c *bareConn) Read(p []byte) (int, error)       { return 0, nil }
func (c *bareConn) Write(p []byte) (int, error)      { return len(p), nil }
func (c *bareConn) Close() error                     { return nil }
func (c *bareConn) LocalAddr() net.Addr              { return nil }
func (c *bareConn) RemoteAddr() net.Addr             { return nil }
func (c *bareConn) SetDeadline(time.Time) error      { return nil }
func (c *bareConn) SetReadDeadline(time.Time) error  { return nil }
func (c *bareConn) SetWriteDeadline(time.Time) error { return nil }

func TestPerProtoQuota(t *testing.T) {
	m := New(Config{MaxPerProto: 2})
	defer m.Close()
	if d := m.Admit("chirp"); d != Admitted {
		t.Fatalf("first admit = %v", d)
	}
	if d := m.Admit("chirp"); d != Admitted {
		t.Fatalf("second admit = %v", d)
	}
	if d := m.Admit("chirp"); d != RefusedQuota {
		t.Fatalf("third admit = %v, want RefusedQuota", d)
	}
	// Quotas are per protocol class: another protocol is unaffected.
	if d := m.Admit("http"); d != Admitted {
		t.Fatalf("other-proto admit = %v", d)
	}
	m.Release("chirp", "")
	if d := m.Admit("chirp"); d != Admitted {
		t.Fatalf("admit after release = %v", d)
	}
	st := m.Stats()
	if st.Admitted != 4 || st.Refused != 1 {
		t.Fatalf("stats = %+v, want 4 admitted / 1 refused", st)
	}
	pc := m.PerProto()["chirp"]
	if pc.Active != 2 || pc.Refused != 1 {
		t.Fatalf("chirp counts = %+v", pc)
	}
}

func TestPerUserQuota(t *testing.T) {
	m := New(Config{MaxPerUser: 1})
	defer m.Close()
	if !m.BindUser("alice") {
		t.Fatal("first bind refused")
	}
	if m.BindUser("alice") {
		t.Fatal("second bind admitted past quota")
	}
	if !m.BindUser("bob") {
		t.Fatal("other principal refused")
	}
	m.Admit("chirp")
	m.Release("chirp", "alice")
	if !m.BindUser("alice") {
		t.Fatal("bind after release refused")
	}
}

func TestShedThresholdAndCaching(t *testing.T) {
	depth := atomic.Int64{}
	m := New(Config{
		ShedQueueDepth: 5,
		Signals:        Signals{QueueDepth: depth.Load},
		SignalPeriod:   time.Hour, // decision must be cached after the first sample
	})
	defer m.Close()
	if d := m.Admit("chirp"); d != Admitted {
		t.Fatalf("unloaded admit = %v", d)
	}
	// Signal now reads over threshold, but the cached sample says
	// healthy: admission must not re-poll within SignalPeriod.
	depth.Store(100)
	if d := m.Admit("chirp"); d != Admitted {
		t.Fatalf("cached admit = %v, want Admitted (stale healthy sample)", d)
	}

	m2 := New(Config{
		ShedQueueDepth: 5,
		Signals:        Signals{QueueDepth: depth.Load},
		SignalPeriod:   time.Nanosecond,
	})
	defer m2.Close()
	if d := m2.Admit("chirp"); d != Shed {
		t.Fatalf("overloaded admit = %v, want Shed", d)
	}
	depth.Store(0)
	time.Sleep(time.Millisecond) // let the 1ns period lapse
	if d := m2.Admit("chirp"); d != Admitted {
		t.Fatalf("recovered admit = %v", d)
	}
	if st := m2.Stats(); st.Shed != 1 {
		t.Fatalf("shed count = %d", st.Shed)
	}
}

func TestShedOverflow(t *testing.T) {
	m := New(Config{})
	defer m.Close()
	m.ShedOverflow("http")
	if st := m.Stats(); st.Shed != 1 {
		t.Fatalf("shed = %d", st.Shed)
	}
	if pc := m.PerProto()["http"]; pc.Shed != 1 {
		t.Fatalf("http shed = %d", pc.Shed)
	}
}

// waitFor polls cond for up to a second.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestParkResumeOnReadiness(t *testing.T) {
	m := New(Config{})
	defer m.Close()
	m.Admit("chirp")
	conn := &fakeConn{}
	var woke atomic.Int32
	var reason atomic.Int32
	if !m.Park(conn, "chirp", func(r WakeReason) {
		reason.Store(int32(r))
		woke.Add(1)
	}) {
		t.Fatal("park refused")
	}
	if st := m.Stats(); st.ParkedNow != 1 || st.Active != 0 {
		t.Fatalf("after park: %+v", st)
	}
	// Idle polls must not wake it.
	m.Poll()
	if woke.Load() != 0 {
		t.Fatal("woken without readiness")
	}
	conn.pending.Store(1)
	m.Poll()
	waitFor(t, "resume", func() bool { return woke.Load() == 1 })
	if WakeReason(reason.Load()) != WakeReadable {
		t.Fatalf("reason = %v", WakeReason(reason.Load()))
	}
	st := m.Stats()
	if st.Parked != 1 || st.Resumed != 1 || st.ParkedNow != 0 || st.Active != 1 {
		t.Fatalf("after resume: %+v", st)
	}
}

func TestParkHangup(t *testing.T) {
	m := New(Config{})
	defer m.Close()
	conn := &fakeConn{}
	var reason atomic.Int32
	var woke atomic.Int32
	m.Park(conn, "chirp", func(r WakeReason) { reason.Store(int32(r)); woke.Add(1) })
	conn.hup.Store(true)
	m.Poll()
	waitFor(t, "hangup wake", func() bool { return woke.Load() == 1 })
	if r := WakeReason(reason.Load()); r != WakeHangup {
		t.Fatalf("reason = %v", r)
	}
	if !WakeHangup.Readable() {
		t.Fatal("hangup must re-enter the read path to observe the EOF")
	}
}

func TestIdleReap(t *testing.T) {
	clock := sim.NewVirtualClock()
	var reason atomic.Int32
	var woke atomic.Int32
	clock.Run(func() {
		m := New(Config{Clock: clock, IdleTimeout: time.Second, PollInterval: 100 * time.Millisecond})
		conn := &fakeConn{}
		if !m.Park(conn, "chirp", func(r WakeReason) { reason.Store(int32(r)); woke.Add(1) }) {
			t.Error("park refused")
			return
		}
		// The sweeper ticks under the virtual clock; past the idle
		// timeout it must claim and reap the connection.
		clock.Sleep(2 * time.Second)
		m.Close()
	})
	if woke.Load() != 1 {
		t.Fatalf("wake count = %d", woke.Load())
	}
	if r := WakeReason(reason.Load()); r != WakeReaped {
		t.Fatalf("reason = %v, want WakeReaped", r)
	}
}

func TestCloseWakesParkedWithShutdown(t *testing.T) {
	m := New(Config{})
	conn := &fakeConn{}
	var reason atomic.Int32
	var woke atomic.Int32
	m.Park(conn, "chirp", func(r WakeReason) { reason.Store(int32(r)); woke.Add(1) })
	m.Close()
	if woke.Load() != 1 {
		t.Fatalf("wake count = %d", woke.Load())
	}
	if r := WakeReason(reason.Load()); r != WakeShutdown {
		t.Fatalf("reason = %v, want WakeShutdown", r)
	}
	if m.Park(&fakeConn{}, "chirp", func(WakeReason) {}) {
		t.Fatal("park admitted after close")
	}
}

func TestParkRefusesUnpollableConn(t *testing.T) {
	m := New(Config{})
	defer m.Close()
	m.Admit("chirp")
	if m.Park(&bareConn{}, "chirp", func(WakeReason) {}) {
		t.Fatal("parked a connection with no readiness facility")
	}
	st := m.Stats()
	if st.ParkedNow != 0 || st.Active != 1 {
		t.Fatalf("counts not restored after failed park: %+v", st)
	}
	if pc := m.PerProto()["chirp"]; pc.Active != 1 || pc.Parked != 0 {
		t.Fatalf("proto counts not restored: %+v", pc)
	}
}

func TestWakeRace(t *testing.T) {
	// Readiness, reap and shutdown may race on one parked conn: the
	// claim CAS must hand the wake to exactly one of them.
	m := New(Config{IdleTimeout: time.Nanosecond})
	conn := &fakeConn{}
	conn.pending.Store(1)
	var woke atomic.Int32
	m.Park(conn, "chirp", func(WakeReason) { woke.Add(1) })
	done := make(chan struct{})
	go func() { m.Poll(); close(done) }()
	m.Poll()
	<-done
	m.Close()
	waitFor(t, "single wake", func() bool { return woke.Load() >= 1 })
	time.Sleep(10 * time.Millisecond)
	if n := woke.Load(); n != 1 {
		t.Fatalf("woke %d times, want exactly 1", n)
	}
}
