//go:build linux

package connmgr

import (
	"sync"
	"syscall"
)

// epollPoller watches parked connections' descriptors with epoll: one
// descriptor table and one waiting goroutine for any number of parked
// connections, the whole point of the event-driven front end. Conns
// register level-triggered one-shot for readability; readability,
// peer hangup and socket errors all wake the session (the resumed
// read path observes the data or the EOF/err).
type epollPoller struct {
	m    *Manager
	epfd int
	// Self-pipe: closing epfd does not unblock a thread inside
	// epoll_wait, so close() writes a byte here instead (the read end
	// is registered with the sentinel token 0; real tokens start at 1).
	wakeR, wakeW int

	mu     sync.Mutex
	fds    map[uint64]int // token -> fd, for deregistration
	closed bool
}

func newPlatformPoller(m *Manager) (platformPoller, error) {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return nil, err
	}
	var pfds [2]int
	if err := syscall.Pipe2(pfds[:], syscall.O_CLOEXEC|syscall.O_NONBLOCK); err != nil {
		syscall.Close(epfd)
		return nil, err
	}
	ep := &epollPoller{m: m, epfd: epfd, wakeR: pfds[0], wakeW: pfds[1], fds: make(map[uint64]int)}
	ev := syscall.EpollEvent{Events: syscall.EPOLLIN}
	putToken(&ev, 0)
	if err := syscall.EpollCtl(epfd, syscall.EPOLL_CTL_ADD, ep.wakeR, &ev); err != nil {
		syscall.Close(epfd)
		syscall.Close(pfds[0])
		syscall.Close(pfds[1])
		return nil, err
	}
	// The wait loop blocks in the kernel, not on clock primitives: a
	// plain goroutine, since epoll only ever watches real descriptors
	// (simulated connections go through the probe poller).
	go ep.loop()
	return ep, nil
}

// add registers p's descriptor. An error means the conn exposes no
// descriptor (or is already dead) and the caller should fall back.
func (ep *epollPoller) add(p *parked) error {
	sc, ok := p.conn.(syscall.Conn)
	if !ok {
		return syscall.ENOTSUP
	}
	raw, err := sc.SyscallConn()
	if err != nil {
		return err
	}
	var ctlErr error
	var regFD int
	err = raw.Control(func(fd uintptr) {
		ev := syscall.EpollEvent{
			Events: syscall.EPOLLIN | syscall.EPOLLRDHUP | syscall.EPOLLONESHOT,
		}
		putToken(&ev, p.tok)
		ctlErr = syscall.EpollCtl(ep.epfd, syscall.EPOLL_CTL_ADD, int(fd), &ev)
		regFD = int(fd)
	})
	if err == nil {
		err = ctlErr
	}
	if err != nil {
		return err
	}
	ep.mu.Lock()
	ep.fds[p.tok] = regFD
	ep.mu.Unlock()
	return nil
}

// del removes a registration whose wake was claimed elsewhere (idle
// reap, shutdown). Best-effort: a concurrently closed fd has already
// left the epoll set.
func (ep *epollPoller) del(p *parked) {
	ep.mu.Lock()
	fd, ok := ep.fds[p.tok]
	delete(ep.fds, p.tok)
	ep.mu.Unlock()
	if !ok {
		return
	}
	if sc, isSC := p.conn.(syscall.Conn); isSC {
		if raw, err := sc.SyscallConn(); err == nil {
			raw.Control(func(uintptr) {
				syscall.EpollCtl(ep.epfd, syscall.EPOLL_CTL_DEL, fd, nil)
			})
			return
		}
	}
	syscall.EpollCtl(ep.epfd, syscall.EPOLL_CTL_DEL, fd, nil)
}

func (ep *epollPoller) loop() {
	events := make([]syscall.EpollEvent, 128)
	for {
		n, err := syscall.EpollWait(ep.epfd, events, -1)
		if err == syscall.EINTR {
			continue
		}
		if err != nil {
			return
		}
		for i := 0; i < n; i++ {
			tok := getToken(&events[i])
			if tok == 0 { // close() wake-up
				ep.mu.Lock()
				closed := ep.closed
				ep.mu.Unlock()
				if closed {
					syscall.Close(ep.epfd)
					syscall.Close(ep.wakeR)
					return
				}
				continue
			}
			ep.mu.Lock()
			delete(ep.fds, tok)
			ep.mu.Unlock()
			reason := WakeReadable
			if events[i].Events&(syscall.EPOLLRDHUP|syscall.EPOLLHUP|syscall.EPOLLERR) != 0 {
				reason = WakeHangup
			}
			ep.m.wake(tok, reason)
		}
	}
}

func (ep *epollPoller) close() {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return
	}
	ep.closed = true
	ep.mu.Unlock()
	var one = [1]byte{1}
	syscall.Write(ep.wakeW, one[:]) // unblocks the wait loop
	syscall.Close(ep.wakeW)
}

// putToken/getToken pack the parked token into the event's 64 bits of
// user data (Fd + Pad on linux/amd64 and arm64).
func putToken(ev *syscall.EpollEvent, tok uint64) {
	ev.Fd = int32(tok)
	ev.Pad = int32(tok >> 32)
}

func getToken(ev *syscall.EpollEvent) uint64 {
	return uint64(uint32(ev.Fd)) | uint64(uint32(ev.Pad))<<32
}
