// Package acl implements NeST's AFS-style access control lists
// (paper §5): per-directory lists mapping principals (users, groups,
// system:anyuser) to rights, stored as a collection of ClassAds and
// enforced across every protocol the appliance speaks. Clients
// manipulate ACLs through any protocol with access-control semantics
// (in practice, Chirp).
package acl

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"nest/internal/classad"
)

// Rights is a bitmask of AFS-style directory rights.
type Rights uint8

// The AFS rights alphabet.
const (
	Read   Rights = 1 << iota // r: read file contents
	Lookup                    // l: list the directory, stat entries
	Insert                    // i: create new files
	Delete                    // d: remove files
	Write                     // w: modify existing files
	Admin                     // a: change the ACL itself
)

// AllRights grants everything.
const AllRights = Read | Lookup | Insert | Delete | Write | Admin

var rightLetters = []struct {
	r Rights
	c byte
}{
	{Read, 'r'}, {Lookup, 'l'}, {Insert, 'i'}, {Delete, 'd'}, {Write, 'w'}, {Admin, 'a'},
}

// ParseRights converts a rights string such as "rliw" to a mask.
func ParseRights(s string) (Rights, error) {
	var out Rights
	for i := 0; i < len(s); i++ {
		found := false
		for _, rl := range rightLetters {
			if rl.c == s[i] {
				out |= rl.r
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("acl: unknown right %q", s[i])
		}
	}
	return out, nil
}

// String renders the mask in canonical "rlidwa" order.
func (r Rights) String() string {
	var sb strings.Builder
	for _, rl := range rightLetters {
		if r&rl.r != 0 {
			sb.WriteByte(rl.c)
		}
	}
	return sb.String()
}

// Has reports whether r includes every right in need.
func (r Rights) Has(need Rights) bool { return r&need == need }

// AnyUser is the principal matching every client, authenticated or
// not.
const AnyUser = "system:anyuser"

// AuthUser is the principal matching every authenticated (non
// anonymous) client.
const AuthUser = "system:authuser"

// GroupPrefix marks group principals ("group:physics").
const GroupPrefix = "group:"

// Table holds per-directory ACLs plus group membership. The effective
// ACL of a path is the nearest ancestor directory with an explicit
// list; rights from all matching principals are unioned.
type Table struct {
	mu     sync.RWMutex
	dirs   map[string]map[string]Rights // dir -> principal -> rights
	groups map[string]map[string]bool   // group -> member set
	anon   string                       // the anonymous principal name
}

// NewTable returns a table whose root directory grants def to
// system:anyuser. anonymous names the unauthenticated principal.
func NewTable(def Rights, anonymous string) *Table {
	t := &Table{
		dirs:   make(map[string]map[string]Rights),
		groups: make(map[string]map[string]bool),
		anon:   anonymous,
	}
	t.Set("/", AnyUser, def)
	return t
}

// Set grants principal exactly rights on dir (replacing any previous
// grant; zero rights removes the entry).
func (t *Table) Set(dir, principal string, rights Rights) {
	dir = cleanDir(dir)
	t.mu.Lock()
	defer t.mu.Unlock()
	m, ok := t.dirs[dir]
	if !ok {
		m = make(map[string]Rights)
		t.dirs[dir] = m
	}
	if rights == 0 {
		delete(m, principal)
		if len(m) == 0 {
			delete(t.dirs, dir)
		}
		return
	}
	m[principal] = rights
}

// Get returns the explicit ACL entries for dir (not inherited ones),
// sorted by principal.
func (t *Table) Get(dir string) []Entry {
	dir = cleanDir(dir)
	t.mu.RLock()
	defer t.mu.RUnlock()
	m := t.dirs[dir]
	out := make([]Entry, 0, len(m))
	for p, r := range m {
		out = append(out, Entry{Dir: dir, Principal: p, Rights: r})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Principal < out[j].Principal })
	return out
}

// Entry is one ACL grant.
type Entry struct {
	Dir       string
	Principal string
	Rights    Rights
}

// AddGroupMember records user as a member of group (bare name, without
// the "group:" prefix).
func (t *Table) AddGroupMember(group, user string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	g, ok := t.groups[group]
	if !ok {
		g = make(map[string]bool)
		t.groups[group] = g
	}
	g[user] = true
}

// RemoveGroupMember drops user from group.
func (t *Table) RemoveGroupMember(group, user string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.groups[group], user)
}

// effective returns the unioned rights user holds on dir, walking up
// to the nearest ancestor with an explicit ACL.
func (t *Table) effective(user, dir string) Rights {
	dir = cleanDir(dir)
	t.mu.RLock()
	defer t.mu.RUnlock()
	for {
		if m, ok := t.dirs[dir]; ok {
			var r Rights
			for principal, rights := range m {
				if t.principalMatchesLocked(principal, user) {
					r |= rights
				}
			}
			return r
		}
		if dir == "/" {
			return 0
		}
		i := strings.LastIndexByte(dir, '/')
		if i <= 0 {
			dir = "/"
		} else {
			dir = dir[:i]
		}
	}
}

func (t *Table) principalMatchesLocked(principal, user string) bool {
	switch {
	case principal == AnyUser:
		return true
	case principal == AuthUser:
		return user != t.anon
	case strings.HasPrefix(principal, GroupPrefix):
		return t.groups[strings.TrimPrefix(principal, GroupPrefix)][user]
	}
	return principal == user
}

// Check reports whether user holds all of need on the directory
// containing path (for directory operations, pass the directory
// itself).
func (t *Table) Check(user, dir string, need Rights) bool {
	return t.effective(user, dir).Has(need)
}

// Ads exports the table as a collection of ClassAds, the storage
// manager's canonical persistence format (paper §5: "a generic
// framework built on top of collections of ClassAd").
func (t *Table) Ads() []*classad.Ad {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var dirs []string
	for d := range t.dirs {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	var out []*classad.Ad
	for _, d := range dirs {
		var principals []string
		for p := range t.dirs[d] {
			principals = append(principals, p)
		}
		sort.Strings(principals)
		for _, p := range principals {
			ad := classad.NewAd()
			ad.SetString("Type", "ACL")
			ad.SetString("Dir", d)
			ad.SetString("Principal", p)
			ad.SetString("Rights", t.dirs[d][p].String())
			out = append(out, ad)
		}
	}
	return out
}

// LoadAds replaces the table's ACL entries from a ClassAd collection
// produced by Ads.
func (t *Table) LoadAds(ads []*classad.Ad) error {
	entries := make(map[string]map[string]Rights)
	for _, ad := range ads {
		typ, _ := ad.EvalAttr("Type", nil).StringVal()
		if typ != "ACL" {
			continue
		}
		dir, ok1 := ad.EvalAttr("Dir", nil).StringVal()
		principal, ok2 := ad.EvalAttr("Principal", nil).StringVal()
		rightsStr, ok3 := ad.EvalAttr("Rights", nil).StringVal()
		if !ok1 || !ok2 || !ok3 {
			return fmt.Errorf("acl: malformed ACL ad %s", ad)
		}
		rights, err := ParseRights(rightsStr)
		if err != nil {
			return err
		}
		dir = cleanDir(dir)
		if entries[dir] == nil {
			entries[dir] = make(map[string]Rights)
		}
		entries[dir][principal] = rights
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.dirs = entries
	return nil
}

func cleanDir(dir string) string {
	if !strings.HasPrefix(dir, "/") {
		dir = "/" + dir
	}
	for len(dir) > 1 && strings.HasSuffix(dir, "/") {
		dir = strings.TrimSuffix(dir, "/")
	}
	return dir
}
