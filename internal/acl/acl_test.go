package acl

import (
	"testing"
)

func TestParseRights(t *testing.T) {
	r, err := ParseRights("rliw")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Has(Read | Lookup | Insert | Write) {
		t.Errorf("rights = %v", r)
	}
	if r.Has(Admin) || r.Has(Delete) {
		t.Errorf("unexpected rights present: %v", r)
	}
	if _, err := ParseRights("rx"); err == nil {
		t.Error("ParseRights accepted unknown letter")
	}
	if got := AllRights.String(); got != "rlidwa" {
		t.Errorf("AllRights.String() = %q, want rlidwa", got)
	}
	if r2, _ := ParseRights(""); r2 != 0 {
		t.Errorf("empty rights = %v, want 0", r2)
	}
}

func TestRootDefault(t *testing.T) {
	tab := NewTable(Read|Lookup, "anonymous")
	if !tab.Check("anyone", "/", Read) {
		t.Error("root default read denied")
	}
	if tab.Check("anyone", "/", Write) {
		t.Error("root default write allowed")
	}
}

func TestInheritance(t *testing.T) {
	tab := NewTable(Read|Lookup, "anonymous")
	tab.Set("/home/john", "john", AllRights)
	// Deep path inherits from the nearest ancestor with an ACL.
	if !tab.Check("john", "/home/john/sub/dir", Write) {
		t.Error("inherited write denied")
	}
	// Sibling paths fall back to root.
	if tab.Check("john", "/home/mary", Write) {
		t.Error("write allowed outside john's tree")
	}
	if !tab.Check("mary", "/home/mary", Read) {
		t.Error("root anyuser read denied where no nearer ACL exists")
	}
	// AFS semantics: the nearest explicit ACL *replaces* ancestors, so
	// mary gets nothing under /home/john unless granted there.
	if tab.Check("mary", "/home/john", Read) {
		t.Error("mary read allowed under john's explicit ACL")
	}
	if tab.Check("mary", "/home/john/sub", Read) {
		t.Error("mary read allowed under john's subtree")
	}
}

func TestUnionOfPrincipals(t *testing.T) {
	tab := NewTable(0, "anonymous")
	tab.Set("/data", AnyUser, Read)
	tab.Set("/data", "john", Insert)
	// john gets the union of anyuser and his own entry.
	if !tab.Check("john", "/data", Read|Insert) {
		t.Error("union of rights missing")
	}
	if tab.Check("mary", "/data", Insert) {
		t.Error("mary got john's insert right")
	}
}

func TestGroups(t *testing.T) {
	tab := NewTable(0, "anonymous")
	tab.Set("/proj", GroupPrefix+"physics", Read|Write)
	tab.AddGroupMember("physics", "alice")
	if !tab.Check("alice", "/proj", Read|Write) {
		t.Error("group member denied")
	}
	if tab.Check("bob", "/proj", Read) {
		t.Error("non-member allowed")
	}
	tab.RemoveGroupMember("physics", "alice")
	if tab.Check("alice", "/proj", Read) {
		t.Error("removed member still allowed")
	}
}

func TestAuthUser(t *testing.T) {
	tab := NewTable(0, "anonymous")
	tab.Set("/", AuthUser, Read)
	if !tab.Check("john", "/", Read) {
		t.Error("authenticated user denied")
	}
	if tab.Check("anonymous", "/", Read) {
		t.Error("anonymous treated as authenticated")
	}
}

func TestSetZeroRemoves(t *testing.T) {
	tab := NewTable(0, "anonymous")
	tab.Set("/d", "john", Read)
	tab.Set("/d", "john", 0)
	if len(tab.Get("/d")) != 0 {
		t.Errorf("Get after removal = %v", tab.Get("/d"))
	}
	// Directory with no entries falls back to ancestor.
	if tab.Check("john", "/d", Read) {
		t.Error("removed entry still effective")
	}
}

func TestGetSorted(t *testing.T) {
	tab := NewTable(0, "anonymous")
	tab.Set("/d", "zed", Read)
	tab.Set("/d", "abe", Write)
	got := tab.Get("/d")
	if len(got) != 2 || got[0].Principal != "abe" || got[1].Principal != "zed" {
		t.Errorf("Get = %v, want sorted by principal", got)
	}
}

func TestDirCleaning(t *testing.T) {
	tab := NewTable(0, "anonymous")
	tab.Set("data/", "john", Read) // missing leading /, trailing /
	if !tab.Check("john", "/data", Read) {
		t.Error("path cleaning failed")
	}
}

func TestAdsRoundTrip(t *testing.T) {
	tab := NewTable(Read|Lookup, "anonymous")
	tab.Set("/home/john", "john", AllRights)
	tab.Set("/proj", GroupPrefix+"physics", Read|Write)
	ads := tab.Ads()
	if len(ads) != 3 { // root + two
		t.Fatalf("len(ads) = %d, want 3", len(ads))
	}
	tab2 := NewTable(0, "anonymous")
	if err := tab2.LoadAds(ads); err != nil {
		t.Fatal(err)
	}
	if !tab2.Check("john", "/home/john/x", Admin) {
		t.Error("reloaded table lost john's admin right")
	}
	if !tab2.Check("anybody", "/", Read) {
		t.Error("reloaded table lost root default")
	}
	// Ads are typed.
	if typ, _ := ads[0].EvalAttr("Type", nil).StringVal(); typ != "ACL" {
		t.Errorf("ad Type = %q", typ)
	}
}

func TestLoadAdsIgnoresForeign(t *testing.T) {
	tab := NewTable(Read, "anonymous")
	ads := tab.Ads()
	foreign := tab.Ads()[0].Copy()
	foreign.SetString("Type", "Storage")
	if err := tab.LoadAds(append(ads, foreign)); err != nil {
		t.Fatalf("LoadAds with foreign ad: %v", err)
	}
}
