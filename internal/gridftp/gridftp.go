// Package gridftp configures NeST's FTP engine as a GridFTP endpoint
// (Allcock et al., 2001): GSI authentication is mandatory, extended
// block mode with parallel data streams is enabled, and third-party
// transfers between two servers can be orchestrated from a client that
// holds control connections to both — the mechanism the global
// execution manager uses to stage data between NeSTs (paper §6,
// step 3).
package gridftp

import (
	"fmt"
	"net"

	"nest/internal/ftp"
	"nest/internal/gsi"
)

// Proto is the protocol class name.
const Proto = "gridftp"

// NewHandler returns the GridFTP protocol module: the FTP engine with
// GSI required and MODE E enabled.
func NewHandler(v *gsi.Verifier) *ftp.Handler {
	return ftp.NewHandler(ftp.Options{
		ProtoName:   Proto,
		Verifier:    v,
		RequireGSI:  true,
		EnableModeE: true,
	})
}

// Dial connects to a GridFTP server and authenticates with cred.
func Dial(addr string, cred *gsi.Credential) (*ftp.Client, error) {
	c, err := ftp.Dial(addr)
	if err != nil {
		return nil, err
	}
	if err := c.LoginGSI(cred); err != nil {
		c.Quit()
		return nil, err
	}
	return c, nil
}

// ThirdParty moves srcPath on the src server to dstPath on the dst
// server without the data passing through the orchestrating client:
// dst is put into passive mode and told to STOR, src is pointed at
// dst's data port and told to RETR (classic FTP third-party transfer,
// which GridFTP inherits). Both control connections must already be
// authenticated.
func ThirdParty(src *ftp.Client, srcPath string, dst *ftp.Client, dstPath string) error {
	addr, err := dst.Pasv()
	if err != nil {
		return fmt.Errorf("gridftp: dst PASV: %w", err)
	}
	if err := dst.BeginStor(dstPath); err != nil {
		return fmt.Errorf("gridftp: dst STOR: %w", err)
	}
	if err := src.Port(addr); err != nil {
		abortReceiver(dst, addr)
		return fmt.Errorf("gridftp: src PORT: %w", err)
	}
	if err := src.BeginRetr(srcPath); err != nil {
		abortReceiver(dst, addr)
		return fmt.Errorf("gridftp: src RETR: %w", err)
	}
	if err := src.AwaitComplete(); err != nil {
		return fmt.Errorf("gridftp: src transfer: %w", err)
	}
	if err := dst.AwaitComplete(); err != nil {
		return fmt.Errorf("gridftp: dst transfer: %w", err)
	}
	return nil
}

// ThirdPartyStriped is ThirdParty with intra-file parallelism: both
// servers are put into MODE E at the given stripe width, the
// destination learns the file size up front (ALLO) so it can partition
// the file into stripe ranges, and SPAS/SPOR arrange the striped data
// channel — dst listens, src dials width connections and fans the
// file's byte ranges across them as offset-addressed blocks. Each side
// runs the transfer as W concurrent stripe pumps billed as one
// scheduler unit.
func ThirdPartyStriped(src *ftp.Client, srcPath string, dst *ftp.Client, dstPath string, width int) error {
	if width < 1 {
		return fmt.Errorf("gridftp: stripe width %d out of range (want >= 1)", width)
	}
	size, err := src.Size(srcPath)
	if err != nil {
		return fmt.Errorf("gridftp: src SIZE: %w", err)
	}
	for _, c := range []*ftp.Client{src, dst} {
		if err := c.SetMode('E'); err != nil {
			return fmt.Errorf("gridftp: MODE E: %w", err)
		}
		if err := c.SetParallelism(width); err != nil {
			return fmt.Errorf("gridftp: parallelism: %w", err)
		}
	}
	if err := dst.Allo(size); err != nil {
		return fmt.Errorf("gridftp: dst ALLO: %w", err)
	}
	addr, err := dst.Spas()
	if err != nil {
		return fmt.Errorf("gridftp: dst SPAS: %w", err)
	}
	if err := dst.BeginStor(dstPath); err != nil {
		return fmt.Errorf("gridftp: dst STOR: %w", err)
	}
	if err := src.Spor(addr); err != nil {
		abortReceiver(dst, addr)
		return fmt.Errorf("gridftp: src SPOR: %w", err)
	}
	if err := src.BeginRetr(srcPath); err != nil {
		abortReceiver(dst, addr)
		return fmt.Errorf("gridftp: src RETR: %w", err)
	}
	if err := src.AwaitComplete(); err != nil {
		return fmt.Errorf("gridftp: src transfer: %w", err)
	}
	if err := dst.AwaitComplete(); err != nil {
		return fmt.Errorf("gridftp: dst transfer: %w", err)
	}
	return nil
}

// abortReceiver unblocks a receiver waiting on its passive data port
// after the sender side failed: an immediately-closed data connection
// delivers EOF, completing the STOR with zero bytes so the control
// connection stays usable.
func abortReceiver(dst *ftp.Client, addr string) {
	if conn, err := net.Dial("tcp", addr); err == nil {
		conn.Close()
	}
	dst.AwaitComplete()
}
