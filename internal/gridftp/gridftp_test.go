package gridftp_test

import (
	"bytes"
	"testing"

	"nest/internal/ftp"
	"nest/internal/gridftp"
	"nest/internal/gsi"
	"nest/internal/nesttest"
)

func startServer(t *testing.T, ca *gsi.CA) *nesttest.Fixture {
	t.Helper()
	return nesttest.Start(t, gridftp.NewHandler(gsi.NewVerifier(ca)), nesttest.Options{})
}

func TestDialRequiresGSI(t *testing.T) {
	ca, cred := nesttest.NewCA("john")
	f := startServer(t, ca)
	c, err := gridftp.Dial(f.Addr, cred)
	if err != nil {
		t.Fatal(err)
	}
	c.Quit()
	// A credential from an untrusted CA is rejected.
	badCA := gsi.NewCA("bad", []byte("bad"))
	if _, err := gridftp.Dial(f.Addr, badCA.Issue("/CN=m", 1<<30, false)); err == nil {
		t.Fatal("untrusted credential accepted")
	}
}

func TestThirdPartyTransfer(t *testing.T) {
	ca, cred := nesttest.NewCA("john")
	madison := startServer(t, ca)
	argonne := startServer(t, ca)
	madison.GrantLot(t, "john", 100*nesttest.MB)
	argonne.GrantLot(t, "john", 100*nesttest.MB)

	// Stage input data at the home site.
	src, err := gridftp.Dial(madison.Addr, cred)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Quit()
	payload := bytes.Repeat([]byte("input-dataset-"), 30000)
	if _, err := src.Stor("/input.dat", bytes.NewReader(payload)); err != nil {
		t.Fatal(err)
	}

	// Third-party: madison -> argonne, data never touches the client.
	dst, err := gridftp.Dial(argonne.Addr, cred)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Quit()
	if err := gridftp.ThirdParty(src, "/input.dat", dst, "/staged.dat"); err != nil {
		t.Fatal(err)
	}

	// Verify at the destination.
	var buf bytes.Buffer
	n, err := dst.Retr("/staged.dat", &buf)
	if err != nil || n != int64(len(payload)) {
		t.Fatalf("Retr = %d, %v", n, err)
	}
	if !bytes.Equal(buf.Bytes(), payload) {
		t.Fatal("third-party transfer corrupted data")
	}
}

func TestThirdPartySourceMissing(t *testing.T) {
	ca, cred := nesttest.NewCA("john")
	a := startServer(t, ca)
	b := startServer(t, ca)
	b.GrantLot(t, "john", nesttest.MB)
	src, _ := gridftp.Dial(a.Addr, cred)
	defer src.Quit()
	dst, _ := gridftp.Dial(b.Addr, cred)
	defer dst.Quit()
	if err := gridftp.ThirdParty(src, "/missing", dst, "/out"); err == nil {
		t.Fatal("third-party of missing file succeeded")
	}
}

func TestParallelStreamsViaWrapper(t *testing.T) {
	ca, cred := nesttest.NewCA("john")
	f := startServer(t, ca)
	f.GrantLot(t, "john", 100*nesttest.MB)
	c, err := gridftp.Dial(f.Addr, cred)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Quit()
	if err := c.SetMode('E'); err != nil {
		t.Fatal(err)
	}
	if err := c.SetParallelism(3); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("xyz"), 200000)
	if _, err := c.Stor("/p", bytes.NewReader(payload)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := c.Retr("/p", &buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), payload) {
		t.Fatal("parallel round trip corrupted")
	}
	var _ *ftp.Client = c
}

// TestThirdPartyStriped stages a multi-extent file and moves it between
// two servers with intra-file parallelism: the destination listens
// (SPAS), the source dials four stripe connections in (SPOR) and fans
// the file's byte ranges across them. Data never touches the
// orchestrating client, and both appliances run the transfer as striped
// pumps billed as one scheduler unit each.
func TestThirdPartyStriped(t *testing.T) {
	ca, cred := nesttest.NewCA("john")
	madison := startServer(t, ca)
	argonne := startServer(t, ca)
	madison.GrantLot(t, "john", 100*nesttest.MB)
	argonne.GrantLot(t, "john", 100*nesttest.MB)

	src, err := gridftp.Dial(madison.Addr, cred)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Quit()
	payload := make([]byte, 7*64*1024+99) // 7 extents + a ragged tail
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	if _, err := src.Stor("/input.dat", bytes.NewReader(payload)); err != nil {
		t.Fatal(err)
	}

	dst, err := gridftp.Dial(argonne.Addr, cred)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Quit()
	if err := gridftp.ThirdPartyStriped(src, "/input.dat", dst, "/staged.dat", 4); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	n, err := dst.Retr("/staged.dat", &buf)
	if err != nil || n != int64(len(payload)) {
		t.Fatalf("Retr = %d, %v", n, err)
	}
	if !bytes.Equal(buf.Bytes(), payload) {
		t.Fatal("striped third-party transfer corrupted data")
	}

	// Width 0 is rejected before any wire traffic.
	if err := gridftp.ThirdPartyStriped(src, "/input.dat", dst, "/x", 0); err == nil {
		t.Fatal("width 0 accepted")
	}
}
