// Package gridmgr implements the Grid middleware of the paper's
// Section 6 scenario: a DAGMan-style directed-acyclic-graph job runner
// and a global execution manager that discovers a storage appliance
// through the matchmaker, guarantees space with a Chirp lot, stages
// input with a GridFTP third-party transfer, runs jobs that do their
// I/O over NFS, stages output home and terminates the reservation.
package gridmgr

import (
	"fmt"
	"sort"
	"sync"
)

// Node is one unit of work in a DAG.
type Node struct {
	// Name identifies the node; dependencies refer to it.
	Name string
	// Requires lists node names that must complete first.
	Requires []string
	// Run does the work. A nil Run is a no-op node.
	Run func() error
}

// DAG is a directed acyclic graph of jobs, executed with maximal
// parallelism subject to dependencies — the Condor DAGMan stand-in
// (paper §6: "many of the steps ... can be encapsulated within a
// request execution manager such as DAGMan").
type DAG struct {
	mu    sync.Mutex
	nodes map[string]*Node
	order []string
}

// NewDAG returns an empty DAG.
func NewDAG() *DAG {
	return &DAG{nodes: make(map[string]*Node)}
}

// Add inserts a node. Duplicate names are rejected.
func (d *DAG) Add(n *Node) error {
	if n.Name == "" {
		return fmt.Errorf("gridmgr: node without a name")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.nodes[n.Name]; ok {
		return fmt.Errorf("gridmgr: duplicate node %q", n.Name)
	}
	d.nodes[n.Name] = n
	d.order = append(d.order, n.Name)
	return nil
}

// AddFunc is a convenience wrapper for Add.
func (d *DAG) AddFunc(name string, run func() error, requires ...string) error {
	return d.Add(&Node{Name: name, Run: run, Requires: requires})
}

// validate checks for unknown dependencies and cycles.
func (d *DAG) validate() error {
	for _, n := range d.nodes {
		for _, dep := range n.Requires {
			if _, ok := d.nodes[dep]; !ok {
				return fmt.Errorf("gridmgr: node %q requires unknown node %q", n.Name, dep)
			}
		}
	}
	// Kahn's algorithm detects cycles.
	indeg := make(map[string]int)
	dependents := make(map[string][]string)
	for _, n := range d.nodes {
		indeg[n.Name] = len(n.Requires)
		for _, dep := range n.Requires {
			dependents[dep] = append(dependents[dep], n.Name)
		}
	}
	var queue []string
	for name, deg := range indeg {
		if deg == 0 {
			queue = append(queue, name)
		}
	}
	seen := 0
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		seen++
		for _, next := range dependents[name] {
			indeg[next]--
			if indeg[next] == 0 {
				queue = append(queue, next)
			}
		}
	}
	if seen != len(d.nodes) {
		return fmt.Errorf("gridmgr: dependency cycle detected")
	}
	return nil
}

// Result reports one node's outcome.
type Result struct {
	Name string
	Err  error
	// Skipped marks nodes not run because a dependency failed.
	Skipped bool
}

// Run executes the DAG with up to parallelism concurrent nodes
// (0 means unbounded). It returns per-node results keyed by name; the
// overall error is the first node failure (dependent nodes are
// skipped, independent subgraphs still run).
func (d *DAG) Run(parallelism int) (map[string]Result, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.validate(); err != nil {
		return nil, err
	}
	if parallelism <= 0 {
		parallelism = len(d.nodes)
	}
	type doneMsg struct {
		name string
		err  error
	}
	results := make(map[string]Result, len(d.nodes))
	done := make(chan doneMsg)
	running := 0
	launched := make(map[string]bool)

	ready := func() []string {
		var out []string
		for _, name := range d.order {
			if launched[name] {
				continue
			}
			if _, finished := results[name]; finished {
				continue
			}
			ok := true
			skip := false
			for _, dep := range d.nodes[name].Requires {
				r, finished := results[dep]
				if !finished {
					ok = false
					break
				}
				if r.Err != nil || r.Skipped {
					skip = true
				}
			}
			if !ok {
				continue
			}
			if skip {
				results[name] = Result{Name: name, Skipped: true}
				continue
			}
			out = append(out, name)
		}
		return out
	}

	var firstErr error
	for len(results) < len(d.nodes) {
		for _, name := range ready() {
			if running >= parallelism {
				break
			}
			launched[name] = true
			running++
			node := d.nodes[name]
			go func() {
				var err error
				if node.Run != nil {
					err = node.Run()
				}
				done <- doneMsg{name: node.Name, err: err}
			}()
		}
		if running == 0 {
			// Only skip-propagation remains; loop once more.
			if len(ready()) == 0 && len(results) < len(d.nodes) {
				// All remaining nodes became skipped in ready();
				// re-evaluate until fixpoint.
				before := len(results)
				ready()
				if len(results) == before {
					break
				}
			}
			continue
		}
		msg := <-done
		running--
		results[msg.name] = Result{Name: msg.name, Err: msg.err}
		if msg.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("gridmgr: node %q: %w", msg.name, msg.err)
		}
	}
	return results, firstErr
}

// Names returns node names in insertion order.
func (d *DAG) Names() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, len(d.order))
	copy(out, d.order)
	return out
}

// SortedSkipped lists skipped nodes from a result set (tests, logs).
func SortedSkipped(results map[string]Result) []string {
	var out []string
	for name, r := range results {
		if r.Skipped {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
