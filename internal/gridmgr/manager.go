package gridmgr

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"nest/internal/acl"
	"nest/internal/chirp"
	"nest/internal/classad"
	"nest/internal/discovery"
	"nest/internal/ftp"
	"nest/internal/gridftp"
	"nest/internal/gsi"
	"nest/internal/nfs"
	"nest/internal/obs"
	"nest/internal/replica"
)

// Site names one NeST's protocol endpoints as the manager needs them.
type Site struct {
	Name    string
	Chirp   string
	GridFTP string
	NFS     string
}

// Job is one remotely executed computation: it reads its input file
// and produces output bytes. Jobs access storage through NFS, like the
// paper's Argonne cluster jobs (paper §6, step 4).
type Job struct {
	Name   string
	Input  string // path on the execution site's NeST
	Output string // path on the execution site's NeST
	// Compute transforms input bytes to output bytes.
	Compute func(input []byte) ([]byte, error)
}

// Plan describes one scenario run.
type Plan struct {
	// User credential; the lot and all transfers run as this identity.
	Cred *gsi.Credential
	// Home is the site holding input data permanently.
	Home Site
	// InputFiles are paths on the home NeST to stage in.
	InputFiles []string
	// Jobs run at the execution site.
	Jobs []Job
	// OutputDir is where results land back home.
	OutputDir string
	// NeedBytes is the lot capacity to reserve at the execution site;
	// LotDuration its guarantee window.
	NeedBytes   int64
	LotDuration time.Duration
}

// Report summarizes a completed scenario.
type Report struct {
	Site       string // chosen execution site
	LotID      string
	StagedIn   int64
	StagedOut  int64
	JobResults map[string]Result
	// StageSources records which appliance each input was staged from
	// (replica selection may pick a healthier holder than home).
	StageSources map[string]string
}

// Manager is the global execution manager of the Section 6 walkthrough.
type Manager struct {
	collector *discovery.Collector
	sites     map[string]Site // name -> endpoints
	mu        sync.Mutex

	// tracer, when set, mints one trace per Execute and records
	// stage.in/stage.out spans, propagating context to every appliance
	// touched so the whole scenario assembles as one tree.
	tracer *obs.Tracer
	epoch  time.Time
}

// NewManager builds a manager over a discovery collector plus the
// endpoint directory for the sites it may choose.
func NewManager(collector *discovery.Collector, sites []Site) *Manager {
	m := &Manager{collector: collector, sites: make(map[string]Site)}
	for _, s := range sites {
		m.sites[s.Name] = s
	}
	return m
}

// SetTracer enables span recording for scenario runs. Call before
// Execute.
func (m *Manager) SetTracer(t *obs.Tracer) {
	m.tracer = t
	m.epoch = time.Now()
}

// span records one manager-side span when tracing is on.
func (m *Manager) span(s *obs.Span) {
	if m.tracer != nil {
		m.tracer.Record(s)
	}
}

// selectSite matches the plan's storage requirements against published
// advertisements (paper §6, the gateway "has previously published both
// its resource and data availability").
func (m *Manager) selectSite(p *Plan) (Site, error) {
	request := classad.NewAd()
	request.SetInt("NeedDisk", p.NeedBytes)
	if err := request.SetExprString("Requirements",
		fmt.Sprintf(`other.Type == "Storage" && other.Name != %q && `+
			`member("gridftp", other.Protocols) && member("nfs", other.Protocols) && `+
			`other.GuaranteeableSpace >= MY.NeedDisk`, p.Home.Name)); err != nil {
		return Site{}, err
	}
	if err := request.SetExprString("Rank", "other.GuaranteeableSpace"); err != nil {
		return Site{}, err
	}
	ad := m.collector.Match(request)
	if ad == nil {
		return Site{}, fmt.Errorf("gridmgr: no storage appliance satisfies the request")
	}
	name, _ := ad.EvalAttr("Name", nil).StringVal()
	site, ok := m.sites[name]
	if !ok {
		return Site{}, fmt.Errorf("gridmgr: matched site %q has no endpoint entry", name)
	}
	return site, nil
}

// stageSource picks the appliance to stage one input from: the
// best-health-ranked fresh holder in the collector's replica catalog
// that is not the execution site itself (staging from the destination
// would be a no-op copy), falling back to home. It returns the chosen
// appliance's name and GridFTP endpoint, resolved from the ad's
// Addr_gridftp attribute or the manager's site directory.
func (m *Manager) stageSource(input string, home Site, execSite string) (string, string) {
	ads := m.collector.ReplicaAds(input)
	for _, ad := range replica.Rank(ads, nil) {
		name := replica.Name(ad)
		if name == "" || name == execSite {
			continue
		}
		if name == home.Name {
			return home.Name, home.GridFTP
		}
		addr := replica.Addr(ad, "gridftp")
		if addr == "" {
			if site, ok := m.sites[name]; ok {
				addr = site.GridFTP
			}
		}
		if addr != "" {
			return name, addr
		}
	}
	return home.Name, home.GridFTP
}

// Execute runs the full six-step scenario as a DAG: (1) the jobs were
// submitted to us, (2) create a lot at the chosen site via Chirp,
// (3) GridFTP third-party stage-in, (4) run jobs over NFS, (5) GridFTP
// third-party stage-out, (6) terminate the lot.
func (m *Manager) Execute(p *Plan) (rep *Report, err error) {
	site, err := m.selectSite(p)
	if err != nil {
		return nil, err
	}
	report := &Report{Site: site.Name}

	// One trace spans the whole scenario: the execute root, a stage
	// span per transfer, and — via context propagation — the request
	// spans recorded inside every appliance touched.
	var trace, execID uint64
	if t := m.tracer; t != nil {
		trace, execID = t.NewTraceID(), t.NewSpanID()
		begin := time.Since(m.epoch)
		defer func() {
			code := 0
			if err != nil {
				code = 1
			}
			t.Record(&obs.Span{
				Trace: trace, ID: execID,
				Stage: "gridmgr.execute", Code: code,
				Start: begin, Dur: time.Since(m.epoch) - begin,
				Notes: [2]obs.SpanNote{{Key: "site", Str: site.Name}},
			})
		}()
	}

	// Step 2: guarantee space with a Chirp lot.
	cc, err := chirp.Dial(site.Chirp, p.Cred)
	if err != nil {
		return nil, fmt.Errorf("gridmgr: chirp to %s: %w", site.Name, err)
	}
	defer cc.Close()
	if trace != 0 {
		if _, err := cc.SetTraceContext(trace, execID); err != nil {
			return nil, fmt.Errorf("gridmgr: trace context to %s: %w", site.Name, err)
		}
	}
	lot, err := cc.LotCreate(p.NeedBytes, p.LotDuration)
	if err != nil {
		return nil, fmt.Errorf("gridmgr: lot creation: %w", err)
	}
	report.LotID = lot.ID

	// Jobs reach their files over NFS, which NeST serves anonymously
	// (paper §3), so the manager — holding admin rights through its
	// GSI identity — opens the execution site's namespace to the local
	// jobs before they start (paper §6: access was granted when the
	// site admitted the user).
	if err := cc.ACLSet("/", acl.AnyUser, "rliwd"); err != nil {
		return nil, fmt.Errorf("gridmgr: granting job access: %w", err)
	}

	dag := NewDAG()

	// Step 3: stage inputs (parallel third-party transfers). Each input
	// is pulled from the healthiest advertised holder in the replica
	// catalog; home is the fallback when the catalog knows no better
	// (or no) source, and when a chosen replica fails the transfer is
	// retried from home.
	report.StageSources = make(map[string]string, len(p.InputFiles))
	home, err := gridftp.Dial(p.Home.GridFTP, p.Cred)
	if err != nil {
		return nil, fmt.Errorf("gridmgr: gridftp home: %w", err)
	}
	defer home.Quit()
	remote, err := gridftp.Dial(site.GridFTP, p.Cred)
	if err != nil {
		return nil, fmt.Errorf("gridmgr: gridftp %s: %w", site.Name, err)
	}
	defer remote.Quit()
	var xferMu sync.Mutex // GridFTP control connections are serial
	srcConns := map[string]*ftp.Client{p.Home.GridFTP: home}
	defer func() {
		for addr, c := range srcConns {
			if addr != p.Home.GridFTP {
				c.Quit()
			}
		}
	}()
	// srcFor resolves (and caches a control connection to) the best
	// stage-in source for one input. Caller holds xferMu.
	srcFor := func(input string) (*ftp.Client, string) {
		name, addr := m.stageSource(input, p.Home, site.Name)
		if c, ok := srcConns[addr]; ok {
			return c, name
		}
		c, err := gridftp.Dial(addr, p.Cred)
		if err != nil {
			return home, p.Home.Name
		}
		srcConns[addr] = c
		return c, name
	}
	// setCtx re-points an endpoint's sticky trace context at one stage
	// span; best-effort, so peers without the extension run untraced.
	setCtx := func(parent uint64, conns ...*ftp.Client) {
		if trace == 0 {
			return
		}
		for _, c := range conns {
			_, _ = c.SetTraceContext(trace, parent)
		}
	}
	for _, input := range p.InputFiles {
		input := input
		name := "stage-in:" + input
		dag.AddFunc(name, func() error {
			xferMu.Lock()
			defer xferMu.Unlock()
			var stageID uint64
			var begin time.Duration
			if m.tracer != nil {
				stageID = m.tracer.NewSpanID()
				begin = time.Since(m.epoch)
			}
			src, srcName := srcFor(input)
			setCtx(stageID, src, remote)
			size, err := src.Size(input)
			if err == nil {
				err = gridftp.ThirdParty(src, input, remote, input)
			}
			if err != nil && src != home {
				// Replica failed mid-stage: fall back to home.
				src, srcName = home, p.Home.Name
				setCtx(stageID, src)
				if size, err = src.Size(input); err == nil {
					err = gridftp.ThirdParty(src, input, remote, input)
				}
			}
			if m.tracer != nil {
				code := 0
				if err != nil {
					code = 1
				}
				m.span(&obs.Span{
					Trace: trace, ID: stageID, Parent: execID,
					Stage: "stage.in", Proto: "gridftp", Op: "put", Path: input,
					Code: code, Bytes: size,
					Start: begin, Dur: time.Since(m.epoch) - begin,
					Notes: [2]obs.SpanNote{{Key: "src", Str: srcName}, {Key: "dst", Str: site.Name}},
				})
			}
			if err != nil {
				return err
			}
			m.mu.Lock()
			report.StagedIn += size
			report.StageSources[input] = srcName
			m.mu.Unlock()
			return nil
		})
	}
	stageIns := append([]string(nil), dag.Names()...)

	// Step 4: jobs access their files over NFS.
	nclient, err := nfs.Dial(site.NFS)
	if err != nil {
		return nil, fmt.Errorf("gridmgr: nfs %s: %w", site.Name, err)
	}
	defer nclient.Close()
	root, err := nclient.Mount("/")
	if err != nil {
		return nil, fmt.Errorf("gridmgr: nfs mount: %w", err)
	}
	var nfsMu sync.Mutex // one NFS client connection, serialized use
	var jobNames []string
	for _, job := range p.Jobs {
		job := job
		name := "job:" + job.Name
		jobNames = append(jobNames, name)
		dag.AddFunc(name, func() error {
			nfsMu.Lock()
			defer nfsMu.Unlock()
			dir, base := splitPath(job.Input)
			dirFH, err := walk(nclient, root, dir)
			if err != nil {
				return fmt.Errorf("input dir: %w", err)
			}
			fh, _, err := nclient.Lookup(dirFH, base)
			if err != nil {
				return fmt.Errorf("input: %w", err)
			}
			input, err := nclient.ReadAll(fh)
			if err != nil {
				return err
			}
			output, err := job.Compute(input)
			if err != nil {
				return err
			}
			odir, obase := splitPath(job.Output)
			odirFH, err := walk(nclient, root, odir)
			if err != nil {
				return fmt.Errorf("output dir: %w", err)
			}
			ofh, err := nclient.Create(odirFH, obase)
			if err != nil {
				return fmt.Errorf("output: %w", err)
			}
			return nclient.WriteAll(ofh, output)
		}, stageIns...)
	}

	// Step 5: stage outputs home.
	var stageOuts []string
	for _, job := range p.Jobs {
		job := job
		name := "stage-out:" + job.Output
		stageOuts = append(stageOuts, name)
		dag.AddFunc(name, func() error {
			xferMu.Lock()
			defer xferMu.Unlock()
			var stageID uint64
			var begin time.Duration
			if m.tracer != nil {
				stageID = m.tracer.NewSpanID()
				begin = time.Since(m.epoch)
			}
			setCtx(stageID, remote, home)
			dst := p.OutputDir + "/" + baseName(job.Output)
			err := gridftp.ThirdParty(remote, job.Output, home, dst)
			var size int64
			if err == nil {
				size, err = home.Size(dst)
			}
			if m.tracer != nil {
				code := 0
				if err != nil {
					code = 1
				}
				m.span(&obs.Span{
					Trace: trace, ID: stageID, Parent: execID,
					Stage: "stage.out", Proto: "gridftp", Op: "put", Path: job.Output,
					Code: code, Bytes: size,
					Start: begin, Dur: time.Since(m.epoch) - begin,
					Notes: [2]obs.SpanNote{{Key: "src", Str: site.Name}, {Key: "dst", Str: p.Home.Name}},
				})
			}
			if err != nil {
				return err
			}
			m.mu.Lock()
			report.StagedOut += size
			m.mu.Unlock()
			return nil
		}, jobNames...)
	}

	// Step 6: terminate the reservation.
	dag.AddFunc("lot-release", func() error {
		return cc.LotRelease(lot.ID)
	}, stageOuts...)

	results, err := dag.Run(4)
	report.JobResults = results
	if err != nil {
		return report, err
	}
	return report, nil
}

func splitPath(p string) (dir, base string) {
	last := -1
	for i := 0; i < len(p); i++ {
		if p[i] == '/' {
			last = i
		}
	}
	if last <= 0 {
		return "/", p[last+1:]
	}
	return p[:last], p[last+1:]
}

func baseName(p string) string {
	_, base := splitPath(p)
	return base
}

// walk resolves a slash path from root via NFS lookups.
func walk(c *nfs.Client, root nfs.FH, dir string) (nfs.FH, error) {
	fh := root
	for _, comp := range strings.Split(dir, "/") {
		if comp == "" {
			continue
		}
		var err error
		fh, _, err = c.Lookup(fh, comp)
		if err != nil {
			return fh, err
		}
	}
	return fh, nil
}
