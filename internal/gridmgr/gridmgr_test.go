package gridmgr_test

import (
	"bytes"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"nest/internal/chirp"
	"nest/internal/classad"
	"nest/internal/core"
	"nest/internal/discovery"
	"nest/internal/gridmgr"
	"nest/internal/gsi"
)

func TestDAGOrdering(t *testing.T) {
	d := gridmgr.NewDAG()
	var order []string
	var mu atomic.Int32
	record := func(name string) func() error {
		return func() error {
			for !mu.CompareAndSwap(0, 1) {
			}
			order = append(order, name)
			mu.Store(0)
			return nil
		}
	}
	d.AddFunc("c", record("c"), "a", "b")
	d.AddFunc("a", record("a"))
	d.AddFunc("b", record("b"), "a")
	results, err := d.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %v", results)
	}
	got := strings.Join(order, "")
	if got != "abc" {
		t.Errorf("order = %q, want abc", got)
	}
}

func TestDAGParallelIndependents(t *testing.T) {
	d := gridmgr.NewDAG()
	var n atomic.Int32
	var peak atomic.Int32
	work := func() error {
		cur := n.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
		n.Add(-1)
		return nil
	}
	for _, name := range []string{"w1", "w2", "w3", "w4"} {
		d.AddFunc(name, work)
	}
	if _, err := d.Run(0); err != nil {
		t.Fatal(err)
	}
	if peak.Load() < 2 {
		t.Errorf("peak parallelism = %d, want >= 2", peak.Load())
	}
}

func TestDAGFailureSkipsDependents(t *testing.T) {
	d := gridmgr.NewDAG()
	boom := errors.New("boom")
	d.AddFunc("bad", func() error { return boom })
	d.AddFunc("dep", func() error { t.Error("dependent ran"); return nil }, "bad")
	d.AddFunc("indep", func() error { return nil })
	results, err := d.Run(2)
	if err == nil {
		t.Fatal("DAG with failing node returned nil error")
	}
	if !results["dep"].Skipped {
		t.Error("dependent not marked skipped")
	}
	if results["indep"].Err != nil || results["indep"].Skipped {
		t.Error("independent subgraph affected by failure")
	}
	if skipped := gridmgr.SortedSkipped(results); len(skipped) != 1 || skipped[0] != "dep" {
		t.Errorf("skipped = %v", skipped)
	}
}

func TestDAGValidation(t *testing.T) {
	d := gridmgr.NewDAG()
	d.AddFunc("a", nil, "ghost")
	if _, err := d.Run(1); err == nil {
		t.Error("unknown dependency accepted")
	}
	d2 := gridmgr.NewDAG()
	d2.AddFunc("x", nil, "y")
	d2.AddFunc("y", nil, "x")
	if _, err := d2.Run(1); err == nil {
		t.Error("cycle accepted")
	}
	d3 := gridmgr.NewDAG()
	if err := d3.Add(&gridmgr.Node{}); err == nil {
		t.Error("nameless node accepted")
	}
	d3.AddFunc("dup", nil)
	if err := d3.AddFunc("dup", nil); err == nil {
		t.Error("duplicate node accepted")
	}
}

// TestGridScenario reproduces the paper's Figure 2 walkthrough with
// two live appliances, the matchmaker, a Chirp lot, GridFTP
// third-party staging, NFS job I/O and lot termination.
func TestGridScenario(t *testing.T) {
	ca := gsi.NewCA("/CN=grid-ca", []byte("grid-secret"))
	cred := ca.Issue("/O=Grid/OU=wisc.edu/CN=john", time.Hour, true)

	newSite := func(name string, capacity int64) (*core.Server, gridmgr.Site) {
		s, err := core.New(core.Config{Name: name, CA: ca, Capacity: capacity})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		// Site admission policy (paper §5): granting access comes with
		// a default lot, which the anonymous NFS jobs write into.
		if _, err := s.GrantDefaultLot(gsi.Anonymous, 64<<20, time.Hour); err != nil {
			t.Fatal(err)
		}
		return s, gridmgr.Site{
			Name:    name,
			Chirp:   s.Addr("chirp"),
			GridFTP: s.Addr("gridftp"),
			NFS:     s.Addr("nfs"),
		}
	}
	madisonSrv, madison := newSite("madison", 1<<30)
	_, argonne := newSite("argonne", 2<<30)

	// Both sites publish into the discovery system.
	collector := discovery.NewCollector(nil, 0)
	collector.Advertise(madisonSrv.Advertisement())
	argonneSrv := func() *core.Server { // fetch by re-advertising both
		return nil
	}
	_ = argonneSrv

	// Home site holds the input data permanently.
	if _, err := madisonSrv.GrantDefaultLot("john", 200<<20, time.Hour); err != nil {
		t.Fatal(err)
	}
	cc, err := chirp.Dial(madison.Chirp, cred)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	input := bytes.Repeat([]byte("gene-sequence-data\n"), 20000)
	if err := cc.PutBytes("/input.dat", input, ""); err != nil {
		t.Fatal(err)
	}
	if err := cc.Mkdir("/results"); err != nil {
		t.Fatal(err)
	}

	// Advertise the execution site (its ad carries guaranteeable
	// space, protocols and name).
	for _, site := range []gridmgr.Site{argonne} {
		srvAd, err := chirpStatfs(site.Chirp, cred)
		if err != nil {
			t.Fatal(err)
		}
		srvAd.SetString("Name", site.Name)
		addProtocols(srvAd)
		if err := collector.Advertise(srvAd); err != nil {
			t.Fatal(err)
		}
	}

	mgr := gridmgr.NewManager(collector, []gridmgr.Site{madison, argonne})
	report, err := mgr.Execute(&gridmgr.Plan{
		Cred:       cred,
		Home:       madison,
		InputFiles: []string{"/input.dat"},
		Jobs: []gridmgr.Job{
			{
				Name:   "count",
				Input:  "/input.dat",
				Output: "/count.out",
				Compute: func(in []byte) ([]byte, error) {
					n := bytes.Count(in, []byte("\n"))
					return []byte(strings.TrimSpace(strings.Repeat("x", 0)) +
						// a tiny "analysis": line count
						itoa(n) + "\n"), nil
				},
			},
			{
				Name:   "upper",
				Input:  "/input.dat",
				Output: "/upper.out",
				Compute: func(in []byte) ([]byte, error) {
					return bytes.ToUpper(in[:32]), nil
				},
			},
		},
		OutputDir:   "/results",
		NeedBytes:   50 << 20,
		LotDuration: time.Hour,
	})
	if err != nil {
		t.Fatalf("Execute: %v (report %+v)", err, report)
	}
	if report.Site != "argonne" {
		t.Errorf("chosen site = %q", report.Site)
	}
	if report.StagedIn != int64(len(input)) {
		t.Errorf("StagedIn = %d, want %d", report.StagedIn, len(input))
	}

	// The outputs are back home.
	got, err := cc.Get("/results/count.out")
	if err != nil || strings.TrimSpace(string(got)) != itoa(20000) {
		t.Errorf("count.out = %q, %v", got, err)
	}
	up, err := cc.Get("/results/upper.out")
	if err != nil || string(up) != "GENE-SEQUENCE-DATA\nGENE-SEQUENCE" {
		t.Errorf("upper.out = %q, %v", up, err)
	}

	// The lot was terminated (step 6).
	acc, err := chirp.Dial(argonne.Chirp, cred)
	if err != nil {
		t.Fatal(err)
	}
	defer acc.Close()
	if _, err := acc.LotStatus(report.LotID); err == nil {
		t.Error("execution-site lot still exists after scenario")
	}
}

func TestScenarioNoMatchingSite(t *testing.T) {
	collector := discovery.NewCollector(nil, 0)
	mgr := gridmgr.NewManager(collector, nil)
	_, err := mgr.Execute(&gridmgr.Plan{
		Home:      gridmgr.Site{Name: "home"},
		NeedBytes: 1 << 40,
	})
	if err == nil {
		t.Fatal("scenario without sites succeeded")
	}
}

// chirpStatfs fetches a site's storage ad over Chirp.
func chirpStatfs(addr string, cred *gsi.Credential) (*classad.Ad, error) {
	c, err := chirp.Dial(addr, cred)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	return c.Statfs()
}

func addProtocols(ad *classad.Ad) {
	ad.SetExprString("Protocols", `{"chirp", "http", "ftp", "gridftp", "nfs"}`)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}
