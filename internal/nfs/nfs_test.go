package nfs_test

import (
	"bytes"
	"fmt"
	"testing"

	"nest/internal/gsi"
	"nest/internal/nesttest"
	"nest/internal/nfs"
)

func start(t *testing.T) (*nesttest.Fixture, *nfs.Client, nfs.FH) {
	t.Helper()
	f := nesttest.Start(t, nfs.NewHandler(), nesttest.Options{})
	f.GrantLot(t, gsi.Anonymous, 100*nesttest.MB)
	c, err := nfs.Dial(f.Addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	root, err := c.Mount("/")
	if err != nil {
		t.Fatal(err)
	}
	return f, c, root
}

func TestMountAndGetattr(t *testing.T) {
	_, c, root := start(t)
	attr, err := c.Getattr(root)
	if err != nil {
		t.Fatal(err)
	}
	if !attr.IsDir {
		t.Error("root is not a directory")
	}
}

func TestMountMissing(t *testing.T) {
	_, c, _ := start(t)
	if _, err := c.Mount("/no/such/dir"); err == nil {
		t.Error("mount of missing dir succeeded")
	}
}

func TestCreateWriteReadBack(t *testing.T) {
	_, c, root := start(t)
	fh, err := c.Create(root, "data.bin")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("nfs-block-data."), 2000) // 30 KB, multi-block
	if err := c.WriteAll(fh, payload); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadAll(fh)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip corrupted: %d bytes", len(got))
	}
	attr, err := c.Getattr(fh)
	if err != nil || attr.Size != int64(len(payload)) {
		t.Errorf("Getattr = %+v, %v", attr, err)
	}
}

func TestLookup(t *testing.T) {
	_, c, root := start(t)
	fh, _ := c.Create(root, "f")
	c.Write(fh, 0, []byte("hello"))
	got, attr, err := c.Lookup(root, "f")
	if err != nil {
		t.Fatal(err)
	}
	if got != fh {
		t.Error("lookup returned different handle than create")
	}
	if attr.Size != 5 || attr.IsDir {
		t.Errorf("attr = %+v", attr)
	}
	if _, _, err := c.Lookup(root, "missing"); err == nil {
		t.Error("lookup of missing name succeeded")
	}
}

func TestMkdirReaddirRmdir(t *testing.T) {
	_, c, root := start(t)
	dir, err := c.Mkdir(root, "sub")
	if err != nil {
		t.Fatal(err)
	}
	c.Create(dir, "a")
	c.Create(dir, "b")
	names, err := c.Readdir(dir)
	if err != nil || len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Readdir = %v, %v", names, err)
	}
	if err := c.Rmdir(root, "sub"); err == nil {
		t.Error("rmdir of non-empty dir succeeded")
	}
	c.Remove(dir, "a")
	c.Remove(dir, "b")
	if err := c.Rmdir(root, "sub"); err != nil {
		t.Fatal(err)
	}
}

func TestPartialBlockRead(t *testing.T) {
	_, c, root := start(t)
	fh, _ := c.Create(root, "small")
	c.Write(fh, 0, []byte("0123456789"))
	block, err := c.Read(fh, 2, 4)
	if err != nil || string(block) != "2345" {
		t.Errorf("Read = %q, %v", block, err)
	}
	// Reading past EOF returns the available bytes.
	block, err = c.Read(fh, 8, 100)
	if err != nil || string(block) != "89" {
		t.Errorf("Read past EOF = %q, %v", block, err)
	}
}

func TestStaleHandle(t *testing.T) {
	_, c, _ := start(t)
	var bogus nfs.FH
	copy(bogus[:], bytes.Repeat([]byte{0xee}, nfs.FHSize))
	if _, err := c.Getattr(bogus); err == nil {
		t.Error("getattr on fabricated handle succeeded")
	} else if ne, ok := err.(*nfs.Error); !ok || ne.Status != nfs.ErrStale {
		t.Errorf("error = %v, want stale", err)
	}
}

func TestStatfs(t *testing.T) {
	_, c, root := start(t)
	r, err := c.Statfs(root)
	if err != nil {
		t.Fatal(err)
	}
	if r.BlockSize == 0 || r.Blocks == 0 {
		t.Errorf("Statfs = %+v", r)
	}
}

func TestWriteOverQuotaLot(t *testing.T) {
	f := nesttest.Start(t, nfs.NewHandler(), nesttest.Options{})
	f.GrantLot(t, gsi.Anonymous, 16*1024) // 16 KB lot
	c, err := nfs.Dial(f.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	root, err := c.Mount("/")
	if err != nil {
		t.Fatal(err)
	}
	fh, err := c.Create(root, "big")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 64*1024)
	err = c.WriteAll(fh, payload)
	if err == nil {
		t.Fatal("write over lot capacity succeeded")
	}
	if ne, ok := err.(*nfs.Error); !ok || ne.Status != nfs.ErrDQuot {
		t.Errorf("error = %v, want DQUOT", err)
	}
}

func TestUnmountAndNull(t *testing.T) {
	_, c, _ := start(t)
	if err := c.Unmount("/"); err != nil {
		t.Errorf("Unmount: %v", err)
	}
}

func TestSequentialSessions(t *testing.T) {
	f, c, root := start(t)
	fh, _ := c.Create(root, "shared")
	c.Write(fh, 0, []byte("persistent"))
	// Handles are stable across connections (deterministic handles).
	c2, err := nfs.Dial(f.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	root2, err := c2.Mount("/")
	if err != nil {
		t.Fatal(err)
	}
	fh2, attr, err := c2.Lookup(root2, "shared")
	if err != nil || fh2 != fh || attr.Size != 10 {
		t.Errorf("second session lookup = %v, %+v", err, attr)
	}
}

func TestReaddirCookiePaging(t *testing.T) {
	_, c, root := start(t)
	dir, err := c.Mkdir(root, "paged")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c", "d", "e"}
	for _, name := range want {
		if _, err := c.Create(dir, name); err != nil {
			t.Fatal(err)
		}
	}
	// The high-level Readdir walks from cookie 0.
	names, err := c.Readdir(dir)
	if err != nil || len(names) != len(want) {
		t.Fatalf("Readdir = %v, %v", names, err)
	}
	for i, n := range names {
		if n != want[i] {
			t.Errorf("entry %d = %q, want %q", i, n, want[i])
		}
	}
}

func TestSetattrIsAcceptedSubset(t *testing.T) {
	// SETATTR is part of the restricted subset: accepted, attribute
	// changes ignored, current attributes returned.
	f, c, root := start(t)
	_ = f
	fh, _ := c.Create(root, "sa")
	c.Write(fh, 0, []byte("12345"))
	attr, err := c.Getattr(fh)
	if err != nil || attr.Size != 5 {
		t.Fatalf("Getattr = %+v, %v", attr, err)
	}
}

func TestWriteAtOffsetSparse(t *testing.T) {
	_, c, root := start(t)
	fh, _ := c.Create(root, "sparse")
	if _, err := c.Write(fh, 100, []byte("tail")); err != nil {
		t.Fatal(err)
	}
	attr, _ := c.Getattr(fh)
	if attr.Size != 104 {
		t.Errorf("size = %d, want 104", attr.Size)
	}
	// The hole reads back as zeros.
	block, err := c.Read(fh, 0, 104)
	if err != nil || len(block) != 104 {
		t.Fatalf("Read = %d bytes, %v", len(block), err)
	}
	for i := 0; i < 100; i++ {
		if block[i] != 0 {
			t.Fatalf("hole byte %d = %d", i, block[i])
		}
	}
	if string(block[100:]) != "tail" {
		t.Errorf("tail = %q", block[100:])
	}
}

func TestConcurrentNFSClients(t *testing.T) {
	f, c, root := start(t)
	fh, _ := c.Create(root, "shared")
	payload := bytes.Repeat([]byte("c"), 3*8192)
	if err := c.WriteAll(fh, payload); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			cl, err := nfs.Dial(f.Addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			r, err := cl.Mount("/")
			if err != nil {
				errs <- err
				return
			}
			h, _, err := cl.Lookup(r, "shared")
			if err != nil {
				errs <- err
				return
			}
			got, err := cl.ReadAll(h)
			if err == nil && !bytes.Equal(got, payload) {
				err = fmt.Errorf("corrupted read: %d bytes", len(got))
			}
			errs <- err
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
