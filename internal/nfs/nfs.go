// Package nfs implements the restricted subset of NFS version 2
// (RFC 1094) that NeST serves, together with the MOUNT v1 protocol,
// over Sun RPC on TCP. Each NFS block operation (an 8 KB READ or
// WRITE) becomes one common-interface request, which is why NFS is the
// paper's exemplar block-based protocol: the transfer manager must
// account strides by bytes or NFS is starved (paper §4.2), and FIFO
// scheduling disfavors it behind whole-file transfers (Figure 3).
//
// NeST 0.9 grants NFS clients anonymous access only.
package nfs

import (
	"crypto/sha256"
	"hash/fnv"
	"sync"

	"nest/internal/protocol"
	"nest/internal/storage"
)

// Program and version numbers.
const (
	NFSProgram   = 100003
	NFSVersion   = 2
	MountProgram = 100005
	MountVersion = 1
)

// NFS v2 procedures (the supported subset).
const (
	ProcNull    = 0
	ProcGetattr = 1
	ProcSetattr = 2
	ProcLookup  = 4
	ProcRead    = 6
	ProcWrite   = 8
	ProcCreate  = 9
	ProcRemove  = 10
	ProcRename  = 11
	ProcMkdir   = 14
	ProcRmdir   = 15
	ProcReaddir = 16
	ProcStatfs  = 17
)

// MOUNT v1 procedures.
const (
	MountNull   = 0
	MountMnt    = 1
	MountUmnt   = 3
	MountExport = 5
)

// NFS status codes (RFC 1094).
const (
	OK          = 0
	ErrPerm     = 1
	ErrNoEnt    = 2
	ErrIO       = 5
	ErrAcces    = 13
	ErrExist    = 17
	ErrNotDir   = 20
	ErrIsDir    = 21
	ErrNoSpc    = 28
	ErrNotEmpty = 66
	ErrDQuot    = 69
	ErrStale    = 70
)

// FHSize is the NFS v2 file handle size.
const FHSize = 32

// FH is an NFS v2 file handle.
type FH [FHSize]byte

// codeToStatus maps common-interface reply codes to NFS statuses.
func codeToStatus(code int) uint32 {
	switch code {
	case protocol.CodeOK:
		return OK
	case protocol.CodeNotFound:
		return ErrNoEnt
	case protocol.CodePermission:
		return ErrAcces
	case protocol.CodeExists:
		return ErrExist
	case protocol.CodeNotDir:
		return ErrNotDir
	case protocol.CodeIsDir:
		return ErrIsDir
	case protocol.CodeNotEmpty:
		return ErrNotEmpty
	case protocol.CodeNoSpace, protocol.CodeNoLot:
		return ErrDQuot
	}
	return ErrIO
}

// fhTable maps file handles to paths. Handles are derived
// deterministically from paths, so the table mainly guards against
// fabricated (stale) handles.
type fhTable struct {
	mu    sync.Mutex
	paths map[FH]string
}

func newFHTable() *fhTable {
	return &fhTable{paths: make(map[FH]string)}
}

// handleFor registers and returns the handle of a path.
func (t *fhTable) handleFor(path string) FH {
	path = storage.Clean(path)
	fh := FH(sha256.Sum256([]byte("nest-fh:" + path)))
	t.mu.Lock()
	t.paths[fh] = path
	t.mu.Unlock()
	return fh
}

// pathFor resolves a handle; ok is false for handles never issued.
func (t *fhTable) pathFor(fh FH) (string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.paths[fh]
	return p, ok
}

// fileID derives the fattr fileid for a path.
func fileID(path string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(storage.Clean(path)))
	id := h.Sum32()
	if id == 0 {
		id = 1
	}
	return id
}
