package nfs

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"path"
	"time"

	"nest/internal/gsi"
	"nest/internal/protocol"
	"nest/internal/storage"
	"nest/internal/sunrpc"
	"nest/internal/xdr"
)

// Handler is the NFS+MOUNT protocol module. The file-handle table is
// shared across sessions, as handles must remain valid across client
// reconnects.
type Handler struct {
	fhs *fhTable
}

// NewHandler returns the NFS protocol handler.
func NewHandler() *Handler { return &Handler{fhs: newFHTable()} }

// Proto implements protocol.Handler.
func (h *Handler) Proto() string { return "nfs" }

// NewSession implements protocol.Handler. NFS clients are anonymous
// (paper §3: only Chirp and GridFTP carry GSI).
func (h *Handler) NewSession(conn net.Conn) (protocol.Session, error) {
	return &session{conn: conn, fhs: h.fhs}, nil
}

// rpcState is the per-call context threaded through Request.Handle.
type rpcState struct {
	xid   uint32
	prog  uint32
	proc  uint32
	path  string
	data  []byte        // WRITE payload
	buf   *bytes.Buffer // READ staging
	count int64         // READDIR cookie (starting index)
}

type session struct {
	conn net.Conn
	fhs  *fhTable
}

// Proto implements protocol.Session.
func (s *session) Proto() string { return "nfs" }

// User implements protocol.Session.
func (s *session) User() string { return gsi.Anonymous }

// Close implements protocol.Session.
func (s *session) Close() error { return s.conn.Close() }

func (s *session) writeRecord(rec []byte) error {
	return xdr.WriteRecord(s.conn, rec)
}

// Next implements protocol.Session: read RPC calls until one maps to a
// common-interface request; session-level procedures (NULL, UMNT,
// EXPORT, unsupported procs) are answered inline.
func (s *session) Next() (*protocol.Request, error) {
	for {
		rec, err := xdr.ReadRecord(s.conn, sunrpc.MaxRecord)
		if err != nil {
			return nil, err
		}
		call, rejection, err := sunrpc.ParseCall(rec)
		if err != nil {
			return nil, err
		}
		if rejection != nil {
			if err := s.writeRecord(rejection); err != nil {
				return nil, err
			}
			continue
		}
		req, inline, err := s.translate(call)
		if err != nil {
			return nil, err
		}
		if inline != nil {
			if err := s.writeRecord(inline); err != nil {
				return nil, err
			}
			continue
		}
		return req, nil
	}
}

// translate maps one RPC call to a Request, or produces an inline
// reply record.
func (s *session) translate(call *sunrpc.Call) (*protocol.Request, []byte, error) {
	st := &rpcState{xid: call.XID, prog: call.Prog, proc: call.Proc}
	req := &protocol.Request{Proto: "nfs", User: gsi.Anonymous, Handle: st}
	switch call.Prog {
	case MountProgram:
		if call.Vers != MountVersion {
			return nil, sunrpc.ProgUnavailReply(call.XID), nil
		}
		switch call.Proc {
		case MountNull, MountUmnt:
			return nil, sunrpc.SuccessReply(call.XID, nil), nil
		case MountExport:
			e := xdr.NewEncoder()
			e.Bool(true) // one export
			e.String("/")
			e.Bool(true) // one group
			e.String("*")
			e.Bool(false) // end groups
			e.Bool(false) // end exports
			return nil, sunrpc.SuccessReply(call.XID, e.Bytes()), nil
		case MountMnt:
			dir, err := call.Args.String(1024)
			if err != nil {
				return nil, sunrpc.GarbageArgsReply(call.XID), nil
			}
			req.Op = protocol.OpStat
			req.Path = dir
			st.path = storage.Clean(dir)
			return req, nil, nil
		}
		return nil, sunrpc.ProcUnavailReply(call.XID), nil
	case NFSProgram:
		if call.Vers != NFSVersion {
			return nil, sunrpc.ProgUnavailReply(call.XID), nil
		}
		return s.translateNFS(call, st, req)
	}
	return nil, sunrpc.ProgUnavailReply(call.XID), nil
}

func (s *session) translateNFS(call *sunrpc.Call, st *rpcState, req *protocol.Request) (*protocol.Request, []byte, error) {
	readFH := func() (string, []byte) {
		raw, err := call.Args.FixedOpaque(FHSize)
		if err != nil {
			return "", sunrpc.GarbageArgsReply(call.XID)
		}
		p, ok := s.fhs.pathFor(FH(raw))
		if !ok {
			return "", statusReply(call.XID, ErrStale)
		}
		return p, nil
	}
	readName := func() (string, []byte) {
		name, err := call.Args.String(255)
		if err != nil {
			return "", sunrpc.GarbageArgsReply(call.XID)
		}
		return name, nil
	}
	switch call.Proc {
	case ProcNull:
		return nil, sunrpc.SuccessReply(call.XID, nil), nil
	case ProcGetattr, ProcSetattr:
		p, inline := readFH()
		if inline != nil {
			return nil, inline, nil
		}
		// SETATTR is accepted but attribute changes are ignored (the
		// NeST subset); both return current attributes.
		req.Op = protocol.OpStat
		req.Path = p
		st.path = p
		return req, nil, nil
	case ProcLookup:
		dir, inline := readFH()
		if inline != nil {
			return nil, inline, nil
		}
		name, inline := readName()
		if inline != nil {
			return nil, inline, nil
		}
		req.Op = protocol.OpLookup
		req.Path = path.Join(dir, name)
		st.path = storage.Clean(req.Path)
		return req, nil, nil
	case ProcRead:
		p, inline := readFH()
		if inline != nil {
			return nil, inline, nil
		}
		offset, err1 := call.Args.Uint32()
		count, err2 := call.Args.Uint32()
		if _, err3 := call.Args.Uint32(); err1 != nil || err2 != nil || err3 != nil {
			return nil, sunrpc.GarbageArgsReply(call.XID), nil
		}
		if count > protocol.NFSBlockSize {
			count = protocol.NFSBlockSize
		}
		req.Op = protocol.OpGet
		req.Path = p
		req.Offset = int64(offset)
		req.Length = int64(count)
		st.path = p
		return req, nil, nil
	case ProcWrite:
		p, inline := readFH()
		if inline != nil {
			return nil, inline, nil
		}
		if _, err := call.Args.Uint32(); err != nil { // beginoffset
			return nil, sunrpc.GarbageArgsReply(call.XID), nil
		}
		offset, err1 := call.Args.Uint32()
		if _, err := call.Args.Uint32(); err != nil { // totalcount
			return nil, sunrpc.GarbageArgsReply(call.XID), nil
		}
		data, err2 := call.Args.Opaque(protocol.NFSBlockSize)
		if err1 != nil || err2 != nil {
			return nil, sunrpc.GarbageArgsReply(call.XID), nil
		}
		req.Op = protocol.OpPut
		req.Path = p
		req.Offset = int64(offset)
		req.Size = int64(len(data))
		st.path = p
		st.data = data
		return req, nil, nil
	case ProcCreate, ProcMkdir:
		dir, inline := readFH()
		if inline != nil {
			return nil, inline, nil
		}
		name, inline := readName()
		if inline != nil {
			return nil, inline, nil
		}
		// The trailing sattr is ignored (subset).
		st.path = storage.Clean(path.Join(dir, name))
		if call.Proc == ProcMkdir {
			req.Op = protocol.OpMkdir
		} else {
			req.Op = protocol.OpPut
			req.Size = 0
		}
		req.Path = st.path
		return req, nil, nil
	case ProcRemove, ProcRmdir:
		dir, inline := readFH()
		if inline != nil {
			return nil, inline, nil
		}
		name, inline := readName()
		if inline != nil {
			return nil, inline, nil
		}
		if call.Proc == ProcRmdir {
			req.Op = protocol.OpRmdir
		} else {
			req.Op = protocol.OpRemove
		}
		req.Path = path.Join(dir, name)
		return req, nil, nil
	case ProcRename:
		// Not part of the NeST subset.
		return nil, statusReply(call.XID, ErrAcces), nil
	case ProcReaddir:
		p, inline := readFH()
		if inline != nil {
			return nil, inline, nil
		}
		cookieRaw, err := call.Args.FixedOpaque(4)
		if err != nil {
			return nil, sunrpc.GarbageArgsReply(call.XID), nil
		}
		req.Op = protocol.OpList
		req.Path = p
		st.path = p
		st.count = int64(uint32(cookieRaw[0])<<24 | uint32(cookieRaw[1])<<16 |
			uint32(cookieRaw[2])<<8 | uint32(cookieRaw[3]))
		return req, nil, nil
	case ProcStatfs:
		if _, inline := readFH(); inline != nil {
			return nil, inline, nil
		}
		req.Op = protocol.OpStatfs
		return req, nil, nil
	}
	return nil, sunrpc.ProcUnavailReply(call.XID), nil
}

// statusReply builds a status-only NFS result record.
func statusReply(xid uint32, status uint32) []byte {
	e := xdr.NewEncoder()
	e.Uint32(status)
	return sunrpc.SuccessReply(xid, e.Bytes())
}

// encodeFattr writes an RFC 1094 fattr for the given file info.
func encodeFattr(e *xdr.Encoder, p string, size int64, isDir bool, mod time.Duration) {
	if isDir {
		e.Uint32(2)       // NFDIR
		e.Uint32(0o40755) // mode
	} else {
		e.Uint32(1)        // NFREG
		e.Uint32(0o100644) // mode
	}
	e.Uint32(1) // nlink
	e.Uint32(0) // uid
	e.Uint32(0) // gid
	e.Uint32(uint32(size))
	e.Uint32(protocol.NFSBlockSize) // blocksize
	e.Uint32(0)                     // rdev
	e.Uint32(uint32((size + 511) / 512))
	e.Uint32(1) // fsid
	e.Uint32(fileID(p))
	sec := uint32(mod / time.Second)
	usec := uint32((mod % time.Second) / time.Microsecond)
	e.Uint32(sec)
	e.Uint32(usec) // atime
	e.Uint32(sec)
	e.Uint32(usec) // mtime
	e.Uint32(sec)
	e.Uint32(usec) // ctime
}

// Reply implements protocol.Session: encode the proc-appropriate RPC
// result.
func (s *session) Reply(req *protocol.Request, rep *protocol.Reply) error {
	st, ok := req.Handle.(*rpcState)
	if !ok {
		return fmt.Errorf("nfs: reply without rpc state")
	}
	if st.prog == MountProgram {
		return s.replyMount(st, rep)
	}
	if !rep.OK() {
		return s.writeRecord(statusReply(st.xid, codeToStatus(rep.Code)))
	}
	e := xdr.NewEncoder()
	e.Uint32(OK)
	switch st.proc {
	case ProcGetattr, ProcSetattr:
		encodeFattr(e, st.path, rep.Info.Size, rep.Info.IsDir, rep.Info.ModTime)
	case ProcLookup:
		fh := s.fhs.handleFor(st.path)
		e.FixedOpaque(fh[:])
		encodeFattr(e, st.path, rep.Info.Size, rep.Info.IsDir, rep.Info.ModTime)
	case ProcRead:
		var data []byte
		if st.buf != nil {
			data = st.buf.Bytes()
		}
		size := req.Offset + int64(len(data)) // best-effort post-read size
		encodeFattr(e, st.path, size, false, 0)
		e.Opaque(data)
	case ProcWrite:
		size := req.Offset + req.Size
		encodeFattr(e, st.path, size, false, 0)
	case ProcCreate, ProcMkdir:
		fh := s.fhs.handleFor(st.path)
		e.FixedOpaque(fh[:])
		size := int64(0)
		encodeFattr(e, st.path, size, st.proc == ProcMkdir, 0)
	case ProcRemove, ProcRmdir:
		// status only
	case ProcReaddir:
		start := st.count
		for i, entry := range rep.Entries {
			if int64(i) < start {
				continue
			}
			e.Bool(true)
			e.Uint32(fileID(path.Join(st.path, entry.Name)))
			e.String(entry.Name)
			cookie := uint32(i + 1)
			e.FixedOpaque([]byte{
				byte(cookie >> 24), byte(cookie >> 16), byte(cookie >> 8), byte(cookie),
			})
		}
		e.Bool(false) // no more entries
		e.Bool(true)  // eof
	case ProcStatfs:
		total := int64(0)
		if rep.Info != nil {
			total = rep.Info.Size
		}
		e.Uint32(protocol.NFSBlockSize)   // tsize
		e.Uint32(4096)                    // bsize
		e.Uint32(uint32(total / 4096))    // blocks
		e.Uint32(uint32(rep.Size / 4096)) // bfree
		e.Uint32(uint32(rep.Size / 4096)) // bavail
	default:
		return s.writeRecord(sunrpc.ProcUnavailReply(st.xid))
	}
	return s.writeRecord(sunrpc.SuccessReply(st.xid, e.Bytes()))
}

func (s *session) replyMount(st *rpcState, rep *protocol.Reply) error {
	e := xdr.NewEncoder()
	if !rep.OK() {
		e.Uint32(codeToStatus(rep.Code))
		return s.writeRecord(sunrpc.SuccessReply(st.xid, e.Bytes()))
	}
	if rep.Info != nil && !rep.Info.IsDir {
		e.Uint32(ErrNotDir)
		return s.writeRecord(sunrpc.SuccessReply(st.xid, e.Bytes()))
	}
	fh := s.fhs.handleFor(st.path)
	e.Uint32(OK)
	e.FixedOpaque(fh[:])
	return s.writeRecord(sunrpc.SuccessReply(st.xid, e.Bytes()))
}

// SendData implements protocol.Session: READ data is staged in memory
// (a block is at most 8 KB) and framed into the RPC reply by Reply.
func (s *session) SendData(req *protocol.Request, size int64) (io.WriteCloser, error) {
	st := req.Handle.(*rpcState)
	st.buf = &bytes.Buffer{}
	if size > 0 {
		// Pre-size the staging buffer so zero-copy extent chunks land in
		// one write without intermediate growth copies.
		st.buf.Grow(int(size))
	}
	return protocol.NopWriteCloser(st.buf), nil
}

// RecvData implements protocol.Session: WRITE payloads were already
// decoded from the call record.
func (s *session) RecvData(req *protocol.Request) (io.ReadCloser, error) {
	st := req.Handle.(*rpcState)
	return io.NopCloser(bytes.NewReader(st.data)), nil
}
