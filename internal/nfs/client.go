package nfs

import (
	"fmt"
	"time"

	"nest/internal/protocol"
	"nest/internal/sunrpc"
	"nest/internal/xdr"
)

// Fattr is the decoded subset of RFC 1094 file attributes clients use.
type Fattr struct {
	IsDir  bool
	Size   int64
	FileID uint32
	MTime  time.Duration
}

// Error is an NFS-level failure.
type Error struct {
	Proc   string
	Status uint32
}

func (e *Error) Error() string {
	return fmt.Sprintf("nfs: %s failed with status %d", e.Proc, e.Status)
}

// Client speaks NFS v2 + MOUNT v1 over one RPC connection.
type Client struct {
	rpc *sunrpc.Client
}

// Dial connects to a NeST NFS endpoint.
func Dial(addr string) (*Client, error) {
	rpc, err := sunrpc.Dial(addr)
	if err != nil {
		return nil, err
	}
	rpc.Cred = sunrpc.Cred{Flavor: sunrpc.AuthUnix, Machine: "nest-client", UID: 0, GID: 0}
	return &Client{rpc: rpc}, nil
}

// NewClient wraps an existing RPC client.
func NewClient(rpc *sunrpc.Client) *Client { return &Client{rpc: rpc} }

// Close releases the connection.
func (c *Client) Close() error { return c.rpc.Close() }

func decodeFattr(d *xdr.Decoder) (Fattr, error) {
	var vals [10]uint32
	ftype, err := d.Uint32()
	if err != nil {
		return Fattr{}, err
	}
	for i := range vals {
		if vals[i], err = d.Uint32(); err != nil {
			return Fattr{}, err
		}
	}
	// vals: mode nlink uid gid size blocksize rdev blocks fsid fileid
	var times [6]uint32
	for i := range times {
		if times[i], err = d.Uint32(); err != nil {
			return Fattr{}, err
		}
	}
	return Fattr{
		IsDir:  ftype == 2,
		Size:   int64(vals[4]),
		FileID: vals[9],
		MTime:  time.Duration(times[2])*time.Second + time.Duration(times[3])*time.Microsecond,
	}, nil
}

func (c *Client) call(prog, vers, proc uint32, args *xdr.Encoder) (*xdr.Decoder, error) {
	var raw []byte
	if args != nil {
		raw = args.Bytes()
	}
	return c.rpc.Call(prog, vers, proc, raw)
}

// statusCall issues an RPC and consumes the leading status word,
// mapping NFS failures to *Error.
func (c *Client) statusCall(name string, prog, vers, proc uint32, args *xdr.Encoder) (*xdr.Decoder, error) {
	d, err := c.call(prog, vers, proc, args)
	if err != nil {
		return nil, err
	}
	st, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if st != OK {
		return nil, &Error{Proc: name, Status: st}
	}
	return d, nil
}

// Mount obtains the root file handle for dir.
func (c *Client) Mount(dir string) (FH, error) {
	args := xdr.NewEncoder()
	args.String(dir)
	d, err := c.statusCall("mount", MountProgram, MountVersion, MountMnt, args)
	if err != nil {
		return FH{}, err
	}
	raw, err := d.FixedOpaque(FHSize)
	if err != nil {
		return FH{}, err
	}
	return FH(raw), nil
}

// Unmount notifies the server (a no-op in NeST).
func (c *Client) Unmount(dir string) error {
	args := xdr.NewEncoder()
	args.String(dir)
	_, err := c.call(MountProgram, MountVersion, MountUmnt, args)
	return err
}

func fhArgs(fh FH) *xdr.Encoder {
	e := xdr.NewEncoder()
	e.FixedOpaque(fh[:])
	return e
}

// Getattr fetches a file's attributes.
func (c *Client) Getattr(fh FH) (Fattr, error) {
	d, err := c.statusCall("getattr", NFSProgram, NFSVersion, ProcGetattr, fhArgs(fh))
	if err != nil {
		return Fattr{}, err
	}
	return decodeFattr(d)
}

// Lookup resolves name within the directory dir.
func (c *Client) Lookup(dir FH, name string) (FH, Fattr, error) {
	args := fhArgs(dir)
	args.String(name)
	d, err := c.statusCall("lookup", NFSProgram, NFSVersion, ProcLookup, args)
	if err != nil {
		return FH{}, Fattr{}, err
	}
	raw, err := d.FixedOpaque(FHSize)
	if err != nil {
		return FH{}, Fattr{}, err
	}
	attr, err := decodeFattr(d)
	return FH(raw), attr, err
}

// Read fetches up to count bytes at offset (count capped at the NFS
// block size by the server).
func (c *Client) Read(fh FH, offset uint32, count uint32) ([]byte, error) {
	args := fhArgs(fh)
	args.Uint32(offset)
	args.Uint32(count)
	args.Uint32(count) // totalcount (unused)
	d, err := c.statusCall("read", NFSProgram, NFSVersion, ProcRead, args)
	if err != nil {
		return nil, err
	}
	if _, err := decodeFattr(d); err != nil {
		return nil, err
	}
	return d.Opaque(protocol.NFSBlockSize)
}

// Write stores data at offset.
func (c *Client) Write(fh FH, offset uint32, data []byte) (Fattr, error) {
	args := fhArgs(fh)
	args.Uint32(0) // beginoffset
	args.Uint32(offset)
	args.Uint32(uint32(len(data))) // totalcount
	args.Opaque(data)
	d, err := c.statusCall("write", NFSProgram, NFSVersion, ProcWrite, args)
	if err != nil {
		return Fattr{}, err
	}
	return decodeFattr(d)
}

// Create makes an empty file in dir.
func (c *Client) Create(dir FH, name string) (FH, error) {
	args := fhArgs(dir)
	args.String(name)
	encodeSattr(args)
	d, err := c.statusCall("create", NFSProgram, NFSVersion, ProcCreate, args)
	if err != nil {
		return FH{}, err
	}
	raw, err := d.FixedOpaque(FHSize)
	if err != nil {
		return FH{}, err
	}
	return FH(raw), nil
}

// Mkdir makes a directory in dir.
func (c *Client) Mkdir(dir FH, name string) (FH, error) {
	args := fhArgs(dir)
	args.String(name)
	encodeSattr(args)
	d, err := c.statusCall("mkdir", NFSProgram, NFSVersion, ProcMkdir, args)
	if err != nil {
		return FH{}, err
	}
	raw, err := d.FixedOpaque(FHSize)
	if err != nil {
		return FH{}, err
	}
	return FH(raw), nil
}

// encodeSattr writes a "don't care" sattr (all -1).
func encodeSattr(e *xdr.Encoder) {
	for i := 0; i < 8; i++ {
		e.Uint32(0xffffffff)
	}
}

// Remove deletes a file from dir.
func (c *Client) Remove(dir FH, name string) error {
	args := fhArgs(dir)
	args.String(name)
	_, err := c.statusCall("remove", NFSProgram, NFSVersion, ProcRemove, args)
	return err
}

// Rmdir deletes a directory from dir.
func (c *Client) Rmdir(dir FH, name string) error {
	args := fhArgs(dir)
	args.String(name)
	_, err := c.statusCall("rmdir", NFSProgram, NFSVersion, ProcRmdir, args)
	return err
}

// Readdir lists all names in a directory (iterating server cookies).
func (c *Client) Readdir(fh FH) ([]string, error) {
	args := fhArgs(fh)
	args.FixedOpaque([]byte{0, 0, 0, 0})
	args.Uint32(protocol.NFSBlockSize)
	d, err := c.statusCall("readdir", NFSProgram, NFSVersion, ProcReaddir, args)
	if err != nil {
		return nil, err
	}
	var names []string
	for {
		more, err := d.Bool()
		if err != nil {
			return nil, err
		}
		if !more {
			break
		}
		if _, err := d.Uint32(); err != nil { // fileid
			return nil, err
		}
		name, err := d.String(255)
		if err != nil {
			return nil, err
		}
		if _, err := d.FixedOpaque(4); err != nil { // cookie
			return nil, err
		}
		names = append(names, name)
	}
	return names, nil
}

// StatfsResult reports filesystem capacity.
type StatfsResult struct {
	TransferSize uint32
	BlockSize    uint32
	Blocks       uint32
	Free         uint32
	Avail        uint32
}

// Statfs queries filesystem statistics.
func (c *Client) Statfs(fh FH) (StatfsResult, error) {
	d, err := c.statusCall("statfs", NFSProgram, NFSVersion, ProcStatfs, fhArgs(fh))
	if err != nil {
		return StatfsResult{}, err
	}
	var r StatfsResult
	for _, p := range []*uint32{&r.TransferSize, &r.BlockSize, &r.Blocks, &r.Free, &r.Avail} {
		if *p, err = d.Uint32(); err != nil {
			return r, err
		}
	}
	return r, nil
}

// ReadAll fetches a whole file block by block, the access pattern that
// makes NFS the paper's block-based protocol.
func (c *Client) ReadAll(fh FH) ([]byte, error) {
	var out []byte
	offset := uint32(0)
	for {
		block, err := c.Read(fh, offset, protocol.NFSBlockSize)
		if err != nil {
			return nil, err
		}
		out = append(out, block...)
		if len(block) < protocol.NFSBlockSize {
			return out, nil
		}
		offset += uint32(len(block))
	}
}

// WriteAll stores data block by block.
func (c *Client) WriteAll(fh FH, data []byte) error {
	for off := 0; off < len(data); off += protocol.NFSBlockSize {
		end := off + protocol.NFSBlockSize
		if end > len(data) {
			end = len(data)
		}
		if _, err := c.Write(fh, uint32(off), data[off:end]); err != nil {
			return err
		}
	}
	return nil
}
