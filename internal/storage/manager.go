package storage

import (
	"errors"
	"fmt"
	"strings"

	"nest/internal/acl"
	"nest/internal/classad"
	"nest/internal/lots"
	"nest/internal/protocol"
	"nest/internal/quota"
)

// Manager is NeST's storage manager: it virtualizes physical storage,
// executes non-transfer requests synchronously, enforces access
// control across all protocols, and admits transfers against lot
// guarantees. The dispatcher serializes calls into Execute; transfer
// approval may run concurrently with it, so Manager methods take no
// shared locks beyond those of their components.
type Manager struct {
	fs   FS
	acl  *acl.Table
	lots *lots.Manager
}

// NewManager wires a storage manager from its parts.
func NewManager(fs FS, table *acl.Table, lotMgr *lots.Manager) *Manager {
	m := &Manager{fs: fs, acl: table, lots: lotMgr}
	if lotMgr != nil {
		lotMgr.OnReclaim(m.reclaimLot)
	}
	return m
}

// FS exposes the underlying filesystem (examples and tests).
func (m *Manager) FS() FS { return m.fs }

// ACL exposes the access-control table.
func (m *Manager) ACL() *acl.Table { return m.acl }

// Lots exposes the lot manager.
func (m *Manager) Lots() *lots.Manager { return m.lots }

// reclaimLot deletes the files of a reclaimed best-effort lot.
func (m *Manager) reclaimLot(l *lots.Lot) {
	for path := range l.Files {
		m.fs.Remove(path)
	}
}

// errReply maps storage and lot errors to protocol replies.
func errReply(err error) *protocol.Reply {
	switch {
	case err == nil:
		return protocol.OKReply()
	case errors.Is(err, ErrNotFound), errors.Is(err, lots.ErrNotFound):
		return protocol.ErrReply(protocol.CodeNotFound, "%v", err)
	case errors.Is(err, ErrExists):
		return protocol.ErrReply(protocol.CodeExists, "%v", err)
	case errors.Is(err, ErrNotDir):
		return protocol.ErrReply(protocol.CodeNotDir, "%v", err)
	case errors.Is(err, ErrIsDir):
		return protocol.ErrReply(protocol.CodeIsDir, "%v", err)
	case errors.Is(err, ErrNotEmpty):
		return protocol.ErrReply(protocol.CodeNotEmpty, "%v", err)
	case errors.Is(err, ErrNoSpace), errors.Is(err, lots.ErrNoSpace),
		errors.Is(err, lots.ErrLotFull), errors.Is(err, quota.ErrOverQuota):
		return protocol.ErrReply(protocol.CodeNoSpace, "%v", err)
	case errors.Is(err, lots.ErrNoLot):
		return protocol.ErrReply(protocol.CodeNoLot, "%v", err)
	case errors.Is(err, lots.ErrNotOwner):
		return protocol.ErrReply(protocol.CodePermission, "%v", err)
	}
	return protocol.ErrReply(protocol.CodeInternal, "%v", err)
}

func lotInfo(info lots.Info) *protocol.LotInfo {
	return &protocol.LotInfo{
		ID:         info.ID,
		Owner:      info.Owner,
		Capacity:   info.Capacity,
		Used:       info.Used,
		Expires:    info.Expires,
		BestEffort: info.BestEffort,
	}
}

// Execute synchronously performs a non-transfer request. The
// dispatcher guarantees these execute in a serialized, thread-safe
// schedule (paper §2.1).
func (m *Manager) Execute(req *protocol.Request) *protocol.Reply {
	switch req.Op {
	case protocol.OpPing:
		return protocol.OKReply()
	case protocol.OpList:
		return m.list(req)
	case protocol.OpStat, protocol.OpLookup:
		return m.stat(req)
	case protocol.OpMkdir:
		return m.mkdir(req)
	case protocol.OpRmdir:
		return m.rmdir(req)
	case protocol.OpRemove:
		return m.remove(req)
	case protocol.OpLotCreate:
		return m.lotCreate(req)
	case protocol.OpLotRelease:
		return m.lotRelease(req)
	case protocol.OpLotRenew:
		return m.lotRenew(req)
	case protocol.OpLotStatus:
		return m.lotStatus(req)
	case protocol.OpLotAddMember:
		return m.lotMember(req, true)
	case protocol.OpLotRemoveMember:
		return m.lotMember(req, false)
	case protocol.OpACLSet:
		return m.aclSet(req)
	case protocol.OpACLGet:
		return m.aclGet(req)
	case protocol.OpStatfs:
		return m.statfs(req)
	}
	return protocol.ErrReply(protocol.CodeBadRequest, "storage: unsupported op %v", req.Op)
}

func (m *Manager) list(req *protocol.Request) *protocol.Reply {
	dir := Clean(req.Path)
	if !m.acl.Check(req.User, dir, acl.Lookup) {
		return protocol.ErrReply(protocol.CodePermission, "list %s: permission denied", dir)
	}
	infos, err := m.fs.List(dir)
	if err != nil {
		return errReply(err)
	}
	rep := protocol.OKReply()
	for _, info := range infos {
		rep.Entries = append(rep.Entries, protocol.FileInfo{
			Name: info.Name, Size: info.Size, IsDir: info.IsDir,
			ModTime: info.ModTime, Owner: info.Owner,
		})
	}
	return rep
}

func (m *Manager) stat(req *protocol.Request) *protocol.Reply {
	p := Clean(req.Path)
	dir, _ := Split(p)
	if !m.acl.Check(req.User, dir, acl.Lookup) {
		return protocol.ErrReply(protocol.CodePermission, "stat %s: permission denied", p)
	}
	info, err := m.fs.Stat(p)
	if err != nil {
		return errReply(err)
	}
	rep := protocol.OKReply()
	rep.Size = info.Size
	rep.Info = &protocol.FileInfo{
		Name: info.Name, Size: info.Size, IsDir: info.IsDir,
		ModTime: info.ModTime, Owner: info.Owner,
	}
	return rep
}

func (m *Manager) mkdir(req *protocol.Request) *protocol.Reply {
	p := Clean(req.Path)
	dir, _ := Split(p)
	if !m.acl.Check(req.User, dir, acl.Insert) {
		return protocol.ErrReply(protocol.CodePermission, "mkdir %s: permission denied", p)
	}
	return errReply(m.fs.Mkdir(p, req.User))
}

func (m *Manager) rmdir(req *protocol.Request) *protocol.Reply {
	p := Clean(req.Path)
	dir, _ := Split(p)
	if !m.acl.Check(req.User, dir, acl.Delete) {
		return protocol.ErrReply(protocol.CodePermission, "rmdir %s: permission denied", p)
	}
	return errReply(m.fs.Rmdir(p))
}

func (m *Manager) remove(req *protocol.Request) *protocol.Reply {
	p := Clean(req.Path)
	dir, _ := Split(p)
	if !m.acl.Check(req.User, dir, acl.Delete) {
		return protocol.ErrReply(protocol.CodePermission, "remove %s: permission denied", p)
	}
	if err := m.fs.Remove(p); err != nil {
		return errReply(err)
	}
	if m.lots != nil {
		m.lots.ReleaseFile(req.User, p)
	}
	return protocol.OKReply()
}

func (m *Manager) lotCreate(req *protocol.Request) *protocol.Reply {
	if m.lots == nil {
		return protocol.ErrReply(protocol.CodeBadRequest, "lots disabled")
	}
	info, err := m.lots.Create(req.User, req.LotBytes, req.LotDuration)
	if err != nil {
		return errReply(err)
	}
	rep := protocol.OKReply()
	rep.Lot = lotInfo(info)
	return rep
}

func (m *Manager) lotRelease(req *protocol.Request) *protocol.Reply {
	if m.lots == nil {
		return protocol.ErrReply(protocol.CodeBadRequest, "lots disabled")
	}
	return errReply(m.lots.Release(req.User, req.LotID))
}

func (m *Manager) lotRenew(req *protocol.Request) *protocol.Reply {
	if m.lots == nil {
		return protocol.ErrReply(protocol.CodeBadRequest, "lots disabled")
	}
	info, err := m.lots.Renew(req.User, req.LotID, req.LotDuration)
	if err != nil {
		return errReply(err)
	}
	rep := protocol.OKReply()
	rep.Lot = lotInfo(info)
	return rep
}

func (m *Manager) lotStatus(req *protocol.Request) *protocol.Reply {
	if m.lots == nil {
		return protocol.ErrReply(protocol.CodeBadRequest, "lots disabled")
	}
	info, err := m.lots.Lookup(req.LotID)
	if err != nil {
		return errReply(err)
	}
	if info.Owner != req.User && !m.lots.UsableBy(req.LotID, req.User) {
		return protocol.ErrReply(protocol.CodePermission, "lot %s: not owner or member", req.LotID)
	}
	rep := protocol.OKReply()
	rep.Lot = lotInfo(info)
	return rep
}

// lotMember edits group-lot membership (paper §5's planned group
// lots): the ACLUser field carries the member's name.
func (m *Manager) lotMember(req *protocol.Request, add bool) *protocol.Reply {
	if m.lots == nil {
		return protocol.ErrReply(protocol.CodeBadRequest, "lots disabled")
	}
	var err error
	if add {
		err = m.lots.AddMember(req.User, req.LotID, req.ACLUser)
	} else {
		err = m.lots.RemoveMember(req.User, req.LotID, req.ACLUser)
	}
	return errReply(err)
}

func (m *Manager) aclSet(req *protocol.Request) *protocol.Reply {
	dir := Clean(req.Path)
	if !m.acl.Check(req.User, dir, acl.Admin) {
		return protocol.ErrReply(protocol.CodePermission, "acl_set %s: permission denied", dir)
	}
	rights, err := acl.ParseRights(req.ACLRights)
	if err != nil && req.ACLRights != "" {
		return protocol.ErrReply(protocol.CodeBadRequest, "%v", err)
	}
	m.acl.Set(dir, req.ACLUser, rights)
	return protocol.OKReply()
}

func (m *Manager) aclGet(req *protocol.Request) *protocol.Reply {
	dir := Clean(req.Path)
	if !m.acl.Check(req.User, dir, acl.Lookup) {
		return protocol.ErrReply(protocol.CodePermission, "acl_get %s: permission denied", dir)
	}
	entries := m.acl.Get(dir)
	parts := make([]string, len(entries))
	for i, e := range entries {
		parts[i] = e.Principal + " " + e.Rights.String()
	}
	rep := protocol.OKReply()
	rep.Rights = strings.Join(parts, "\n")
	return rep
}

func (m *Manager) statfs(req *protocol.Request) *protocol.Reply {
	rep := protocol.OKReply()
	rep.Ad = m.Advertisement().String()
	rep.Size = m.fs.Free()
	rep.Info = &protocol.FileInfo{Name: "/", Size: m.fs.Total(), IsDir: true}
	return rep
}

// Advertisement builds the storage half of the NeST ClassAd the
// dispatcher periodically publishes into the Grid discovery system.
func (m *Manager) Advertisement() *classad.Ad {
	ad := classad.NewAd()
	ad.SetString("Type", "Storage")
	ad.SetInt("TotalDisk", m.fs.Total())
	ad.SetInt("FreeDisk", m.fs.Free())
	if m.lots != nil {
		ad.SetInt("GuaranteedSpace", m.lots.Guaranteed())
		ad.SetInt("GuaranteeableSpace", m.lots.Total()-m.lots.Guaranteed())
		ad.SetString("LotEnforcement", m.lots.Mode().String())
	}
	return ad
}

// PutTicket is an approved put: the open destination file plus the
// accounting needed to settle when the transfer completes.
type PutTicket struct {
	File    File
	req     *protocol.Request
	charged int64
	oldSize int64
}

// ApproveGet validates a read transfer and opens its source. It
// returns a nil reply on success, an error reply otherwise.
func (m *Manager) ApproveGet(req *protocol.Request) (File, int64, *protocol.Reply) {
	p := Clean(req.Path)
	dir, _ := Split(p)
	if !m.acl.Check(req.User, dir, acl.Read) {
		return nil, 0, protocol.ErrReply(protocol.CodePermission, "get %s: permission denied", p)
	}
	f, err := m.fs.Open(p)
	if err != nil {
		return nil, 0, errReply(err)
	}
	size := f.Size()
	length := req.Length
	if length <= 0 || req.Offset+length > size {
		length = size - req.Offset
	}
	if length < 0 {
		length = 0
	}
	return f, length, nil
}

// ApprovePut validates a write transfer, charges the writer's lot for
// the declared size (when known), and opens the destination.
func (m *Manager) ApprovePut(req *protocol.Request) (*PutTicket, *protocol.Reply) {
	p := Clean(req.Path)
	dir, _ := Split(p)
	existing, statErr := m.fs.Stat(p)
	var need acl.Rights = acl.Insert
	if statErr == nil && !existing.IsDir {
		need = acl.Write
	}
	if !m.acl.Check(req.User, dir, need) {
		return nil, protocol.ErrReply(protocol.CodePermission, "put %s: permission denied", p)
	}
	var oldSize int64
	if statErr == nil {
		oldSize = existing.Size
	}

	// Charge the guarantee up front when the size is declared. Block
	// writes (NFS) and unknown-length streams settle in FinishPut.
	var charged int64
	if m.lots != nil && req.Size > 0 && req.Offset == 0 {
		growth := req.Size
		if err := m.lots.ChargeWrite(req.User, req.LotID, p, growth); err != nil {
			return nil, errReply(err)
		}
		charged = growth
	}

	var f File
	var err error
	if req.Offset > 0 || (statErr == nil && req.Size < 0) {
		f, err = m.fs.OpenRW(p)
		if errors.Is(err, ErrNotFound) {
			f, err = m.fs.Create(p, req.User)
		}
	} else {
		f, err = m.fs.Create(p, req.User)
		if m.lots != nil && err == nil && req.Offset == 0 && oldSize > 0 {
			// Truncating rewrite: release the old bytes.
			m.lots.UnchargeFile(req.User, p, oldSize)
		}
	}
	if err != nil {
		if charged > 0 {
			m.lots.UnchargeFile(req.User, p, charged)
		}
		return nil, errReply(err)
	}
	return &PutTicket{File: f, req: req, charged: charged, oldSize: f.Size()}, nil
}

// FinishPut settles lot accounting after the data phase moved written
// bytes (growing the file from the ticket's original size) and returns
// the reply to send the client.
func (m *Manager) FinishPut(t *PutTicket, written int64, transferErr error) *protocol.Reply {
	defer t.File.Close()
	growth := t.File.Size() - t.oldSize
	if growth < 0 {
		growth = 0
	}
	if m.lots != nil {
		switch {
		case growth > t.charged:
			if err := m.lots.ChargeWrite(t.req.User, t.req.LotID, t.File.Path(), growth-t.charged); err != nil {
				// Over guarantee: trim the file back to what was paid for.
				t.File.Truncate(t.oldSize + t.charged)
				return errReply(err)
			}
		case growth < t.charged:
			m.lots.UnchargeFile(t.req.User, t.File.Path(), t.charged-growth)
		}
	}
	if transferErr != nil {
		return protocol.ErrReply(protocol.CodeInternal, "transfer failed: %v", transferErr)
	}
	rep := protocol.OKReply()
	rep.Size = written
	return rep
}

// Files returns up to max logical file paths (directories excluded),
// walking the namespace depth-first in sorted order. The dispatcher
// advertises this list as the appliance's replica catalog
// contribution; max bounds the advertisement size.
func (m *Manager) Files(max int) []string {
	if max <= 0 {
		return nil
	}
	var out []string
	var walk func(dir string) bool
	walk = func(dir string) bool {
		infos, err := m.fs.List(dir)
		if err != nil {
			return true
		}
		for _, info := range infos {
			if info.IsDir {
				if !walk(info.Path) {
					return false
				}
				continue
			}
			out = append(out, info.Path)
			if len(out) >= max {
				return false
			}
		}
		return true
	}
	walk("/")
	return out
}

// String describes the manager for logs.
func (m *Manager) String() string {
	return fmt.Sprintf("storage{total=%d free=%d}", m.fs.Total(), m.fs.Free())
}
