package storage

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func newTestLocalFS(t *testing.T, capacity int64) *LocalFS {
	t.Helper()
	l, err := NewLocalFS(t.TempDir(), capacity)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestLocalResolveConfinesHostileNames pins the path-escape defence:
// whatever name a client sends — dot-dot chains, absolute paths,
// backslashes, embedded NULs aside — resolve must land inside the
// root. This is the jail for every wire protocol above the store.
func TestLocalResolveConfinesHostileNames(t *testing.T) {
	l := newTestLocalFS(t, 1<<30)
	root := l.root + string(filepath.Separator)
	hostile := []string{
		"..",
		"../../etc/passwd",
		"/../..",
		"/..//../",
		"a/../../..",
		"a/b/../../../../x",
		"....//....//x",
		"/abs/path",
		"//double//slash",
		"..\\..\\windows\\system32",
		"a\\..\\..\\x",
		"\\\\server\\share",
		"./../.",
		"...",
		"..%2f..%2fx", // encoded dot-dot must NOT be decoded by the store
		strings.Repeat("../", 40) + "deep",
	}
	for _, name := range hostile {
		p := l.resolve(name)
		if p != l.root && !strings.HasPrefix(p, root) {
			t.Errorf("resolve(%q) = %q escapes root %q", name, p, l.root)
		}
	}

	// End to end: creating a hostile name must not place a file outside
	// the root directory.
	for _, name := range []string{"../../escape", "..\\..\\escape2"} {
		f, err := l.Create(name, "u")
		if err != nil {
			continue
		}
		f.WriteAt([]byte("x"), 0)
		f.Close()
	}
	outside, err := os.ReadDir(filepath.Dir(l.root))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range outside {
		if strings.Contains(e.Name(), "escape") {
			t.Fatalf("hostile create escaped root: %s", e.Name())
		}
	}
}

// TestLocalReadAtErrorMapping pins the satellite fix: ReadAt routes
// real I/O errors through mapErr exactly like WriteAt, and both honor
// the closed-handle and read-only contracts.
func TestLocalReadAtErrorMapping(t *testing.T) {
	l := newTestLocalFS(t, 1<<30)
	f, err := l.Create("/f", "u")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("payload"), 0); err != nil {
		t.Fatal(err)
	}

	ro, err := l.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ro.WriteAt([]byte("x"), 0); err != ErrReadOnly {
		t.Fatalf("read-only WriteAt err = %v, want ErrReadOnly", err)
	}
	if err := ro.Truncate(0); err != ErrReadOnly {
		t.Fatalf("read-only Truncate err = %v, want ErrReadOnly", err)
	}

	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := f.ReadAt(buf, 0); err != ErrClosed {
		t.Fatalf("closed ReadAt err = %v, want ErrClosed", err)
	}
	if _, err := f.WriteAt(buf, 0); err != ErrClosed {
		t.Fatalf("closed WriteAt err = %v, want ErrClosed", err)
	}
	if err := f.Close(); err != ErrClosed {
		t.Fatalf("double Close err = %v, want ErrClosed", err)
	}

	// A handle whose descriptor died underneath still maps to the
	// package error vocabulary, not a bare *os.PathError.
	stale, err := l.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	stale.(*localFile).f.Close() // kill the fd out from under the handle
	if _, err := stale.ReadAt(buf, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("dead-descriptor ReadAt err = %v, want ErrClosed", err)
	}
	stale.Close()
}

// TestLocalFreeAccounting pins the O(1) space accounting: the counter
// is seeded by the mount scan and maintained by write/truncate/remove
// — never recomputed by walking the tree.
func TestLocalFreeAccounting(t *testing.T) {
	dir := t.TempDir()
	// Pre-existing data is picked up by the mount scan.
	if err := os.WriteFile(filepath.Join(dir, "old"), make([]byte, 1000), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := NewLocalFS(dir, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Free(); got != 9_000 {
		t.Fatalf("Free after mount scan = %d, want 9000", got)
	}

	f, _ := l.Create("/new", "u")
	if _, err := f.WriteAt(make([]byte, 4000), 0); err != nil {
		t.Fatal(err)
	}
	if got := l.Free(); got != 5_000 {
		t.Fatalf("Free after write = %d, want 5000", got)
	}

	// Overlapping rewrite grows nothing.
	if _, err := f.WriteAt(make([]byte, 1000), 1000); err != nil {
		t.Fatal(err)
	}
	if got := l.Free(); got != 5_000 {
		t.Fatalf("Free after overlapping rewrite = %d, want 5000", got)
	}

	// Truncate both directions.
	if err := f.Truncate(6000); err != nil {
		t.Fatal(err)
	}
	if got := l.Free(); got != 3_000 {
		t.Fatalf("Free after truncate-up = %d, want 3000", got)
	}
	if err := f.Truncate(500); err != nil {
		t.Fatal(err)
	}
	if got := l.Free(); got != 8_500 {
		t.Fatalf("Free after truncate-down = %d, want 8500", got)
	}

	// Admission control uses the maintained counter.
	if _, err := f.WriteAt(make([]byte, 9000), 500); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("overcommit WriteAt err = %v, want ErrNoSpace", err)
	}
	if got := l.Free(); got != 8_500 {
		t.Fatalf("Free after rejected write = %d, want 8500 (reservation rolled back)", got)
	}
	f.Close()

	// Create-truncate of an existing file releases its bytes.
	g, _ := l.Create("/old", "u")
	if got := l.Free(); got != 9_500 {
		t.Fatalf("Free after create-truncate = %d, want 9500", got)
	}
	g.Close()
	l.Remove("/old")
	if err := l.Remove("/new"); err != nil {
		t.Fatal(err)
	}
	if got := l.Free(); got != 10_000 {
		t.Fatalf("Free after removes = %d, want 10000", got)
	}

	// The O(1) claim, allocation half: Free never allocates.
	if allocs := testing.AllocsPerRun(100, func() { l.Free() }); allocs != 0 {
		t.Errorf("Free allocates %v per call, want 0", allocs)
	}
}

// TestLocalFDCache exercises the descriptor cache: a close/open pair
// on the same path is a hit, Remove invalidates, and the LRU bound
// evicts.
func TestLocalFDCache(t *testing.T) {
	l := newTestLocalFS(t, 1<<30)
	writeLocal(t, l, "/hot", []byte("hot bytes"))

	s0 := LocalFSStats()
	f, err := l.Open("/hot")
	if err != nil {
		t.Fatal(err)
	}
	f.Close() // read-only descriptor parks in the cache
	g, err := l.Open("/hot")
	if err != nil {
		t.Fatal(err)
	}
	if got := LocalFSStats().FDCacheHits - s0.FDCacheHits; got != 1 {
		t.Fatalf("cache hits after reopen = %d, want 1", got)
	}
	// The cached descriptor still reads the right bytes.
	if got := readBack(t, g); string(got) != "hot bytes" {
		t.Fatalf("cache-hit read = %q", got)
	}
	g.Close()

	// Remove invalidates: the next open must not resurrect the dead
	// descriptor.
	if err := l.Remove("/hot"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Open("/hot"); err != ErrNotFound {
		t.Fatalf("open after remove = %v, want ErrNotFound", err)
	}

	// Create-truncate through the cache: a cached descriptor for a
	// rewritten path serves the new content (same inode, new bytes).
	writeLocal(t, l, "/rw", []byte("first version"))
	h, _ := l.Open("/rw")
	h.Close()
	writeLocal(t, l, "/rw", []byte("v2"))
	h2, err := l.Open("/rw")
	if err != nil {
		t.Fatal(err)
	}
	if got := readBack(t, h2); string(got) != "v2" {
		t.Fatalf("read after rewrite through cache = %q, want \"v2\"", got)
	}
	h2.Close()

	// LRU bound: shrink the cache and overflow it.
	l.SetFDCacheLimit(2)
	for _, name := range []string{"/e1", "/e2", "/e3"} {
		writeLocal(t, l, name, []byte("x"))
	}
	e0 := LocalFSStats().FDCacheEvictions
	for _, name := range []string{"/e1", "/e2", "/e3"} {
		f, err := l.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	if got := LocalFSStats().FDCacheEvictions - e0; got < 1 {
		t.Fatalf("evictions after overflow = %d, want >= 1", got)
	}

	// Disabled cache takes nothing.
	l.SetFDCacheLimit(0)
	m0 := LocalFSStats()
	f3, _ := l.Open("/e1")
	f3.Close()
	f4, _ := l.Open("/e1")
	f4.Close()
	if got := LocalFSStats().FDCacheHits - m0.FDCacheHits; got != 0 {
		t.Fatalf("cache hits with cache disabled = %d, want 0", got)
	}
}

// TestLocalSyncOnClose pins the durability knob: writable handles
// fsync on close when enabled, and never otherwise.
func TestLocalSyncOnClose(t *testing.T) {
	l := newTestLocalFS(t, 1<<30)
	s0 := LocalFSStats().Fsyncs
	writeLocal(t, l, "/nosync", []byte("x"))
	if got := LocalFSStats().Fsyncs - s0; got != 0 {
		t.Fatalf("fsyncs with knob off = %d, want 0", got)
	}

	l.SetSyncOnClose(true)
	writeLocal(t, l, "/sync", []byte("x"))
	if got := LocalFSStats().Fsyncs - s0; got != 1 {
		t.Fatalf("fsyncs with knob on = %d, want 1", got)
	}

	// Read-only closes never fsync.
	f, _ := l.Open("/sync")
	f.Close()
	if got := LocalFSStats().Fsyncs - s0; got != 1 {
		t.Fatalf("fsyncs after read-only close = %d, want 1", got)
	}
}

// TestLocalStaleHandleAfterRemove mirrors the MemFS contract: a handle
// open across a Remove observes an empty file, and recreating the path
// yields an independent file.
func TestLocalStaleHandleAfterRemove(t *testing.T) {
	l := newTestLocalFS(t, 1<<30)
	writeLocal(t, l, "/victim", []byte("doomed bytes"))

	stale, err := l.Open("/victim")
	if err != nil {
		t.Fatal(err)
	}
	defer stale.Close()
	if err := l.Remove("/victim"); err != nil {
		t.Fatal(err)
	}
	if got := stale.Size(); got != 0 {
		t.Fatalf("stale handle size after remove = %d, want 0", got)
	}
	if _, err := stale.ReadAt(make([]byte, 4), 0); err != io.EOF {
		t.Fatalf("stale handle ReadAt after remove = %v, want EOF", err)
	}

	// Recreate: fresh file, unrelated to the stale handle.
	writeLocal(t, l, "/victim", []byte("reborn"))
	fresh, err := l.Open("/victim")
	if err != nil {
		t.Fatal(err)
	}
	if got := readBack(t, fresh); string(got) != "reborn" {
		t.Fatalf("recreated file reads %q", got)
	}
	fresh.Close()
	if got := stale.Size(); got != 0 {
		t.Fatalf("stale handle sees recreated size %d, want 0", got)
	}
}

// TestLocalHandoffCounters checks that range operations account their
// fragments to the handoff/pooled counters (whichever path the
// platform takes) and that totals reconcile with the bytes moved.
func TestLocalHandoffCounters(t *testing.T) {
	l := newTestLocalFS(t, 1<<30)
	data := patternData(3*ExtentSize, 11)

	s0 := LocalFSStats()
	f, _ := l.Create("/c", "u")
	if n, err := f.(RangeReaderFrom).ReadRangeFrom(bytes.NewReader(data), 0, int64(len(data))); err != nil || n != int64(len(data)) {
		t.Fatalf("ReadRangeFrom = (%d, %v)", n, err)
	}
	var sink bytes.Buffer
	if n, err := f.(RangeWriterTo).WriteRangeTo(&sink, 0, int64(len(data))); err != nil || n != int64(len(data)) {
		t.Fatalf("WriteRangeTo = (%d, %v)", n, err)
	}
	f.Close()
	if !bytes.Equal(sink.Bytes(), data) {
		t.Fatal("round-trip mismatch")
	}

	s1 := LocalFSStats()
	moved := (s1.HandoffChunks - s0.HandoffChunks) + (s1.PooledChunks - s0.PooledChunks)
	if moved != 6 { // 3 extents in + 3 extents out
		t.Fatalf("handoff+pooled fragment count = %d, want 6", moved)
	}
}

// writeLocal creates path with the given content and closes it.
func writeLocal(t *testing.T, l *LocalFS, path string, data []byte) {
	t.Helper()
	f, err := l.Create(path, "u")
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > 0 {
		if _, err := f.WriteAt(data, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}
