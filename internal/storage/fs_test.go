package storage

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"nest/internal/sim"
)

const mb = sim.MB

// backends returns each FS implementation under test.
func backends(t *testing.T) map[string]FS {
	t.Helper()
	local, err := NewLocalFS(t.TempDir(), 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]FS{
		"memfs":   NewMemFS(nil, 1<<30),
		"localfs": local,
	}
}

func writeFile(t *testing.T, fs FS, name string, data []byte) {
	t.Helper()
	f, err := fs.Create(name, "tester")
	if err != nil {
		t.Fatalf("Create(%s): %v", name, err)
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatalf("WriteAt(%s): %v", name, err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close(%s): %v", name, err)
	}
}

func readFile(t *testing.T, fs FS, name string) []byte {
	t.Helper()
	f, err := fs.Open(name)
	if err != nil {
		t.Fatalf("Open(%s): %v", name, err)
	}
	defer f.Close()
	buf := make([]byte, f.Size())
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatalf("ReadAt(%s): %v", name, err)
	}
	return buf
}

func TestCreateReadBack(t *testing.T) {
	for name, fs := range backends(t) {
		t.Run(name, func(t *testing.T) {
			data := []byte("the quick brown fox")
			writeFile(t, fs, "/f.txt", data)
			if got := readFile(t, fs, "/f.txt"); !bytes.Equal(got, data) {
				t.Errorf("read back %q, want %q", got, data)
			}
			info, err := fs.Stat("/f.txt")
			if err != nil || info.Size != int64(len(data)) || info.IsDir {
				t.Errorf("Stat = %+v, %v", info, err)
			}
		})
	}
}

func TestCreateTruncatesExisting(t *testing.T) {
	for name, fs := range backends(t) {
		t.Run(name, func(t *testing.T) {
			writeFile(t, fs, "/f", []byte("long old content"))
			writeFile(t, fs, "/f", []byte("new"))
			if got := readFile(t, fs, "/f"); string(got) != "new" {
				t.Errorf("content = %q", got)
			}
		})
	}
}

func TestDirectories(t *testing.T) {
	for name, fs := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if err := fs.Mkdir("/d", "o"); err != nil {
				t.Fatal(err)
			}
			if err := fs.Mkdir("/d", "o"); err != ErrExists {
				t.Errorf("duplicate mkdir = %v", err)
			}
			if err := fs.Mkdir("/nope/x", "o"); err != ErrNotFound {
				t.Errorf("mkdir without parent = %v", err)
			}
			writeFile(t, fs, "/d/a", []byte("1"))
			writeFile(t, fs, "/d/b", []byte("22"))
			infos, err := fs.List("/d")
			if err != nil || len(infos) != 2 {
				t.Fatalf("List = %v, %v", infos, err)
			}
			if infos[0].Name != "a" || infos[1].Name != "b" {
				t.Errorf("List order = %v", infos)
			}
			if infos[1].Size != 2 {
				t.Errorf("b size = %d", infos[1].Size)
			}
			if err := fs.Rmdir("/d"); err != ErrNotEmpty {
				t.Errorf("rmdir non-empty = %v", err)
			}
			fs.Remove("/d/a")
			fs.Remove("/d/b")
			if err := fs.Rmdir("/d"); err != nil {
				t.Errorf("rmdir empty = %v", err)
			}
		})
	}
}

func TestErrorMapping(t *testing.T) {
	for name, fs := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := fs.Open("/missing"); err != ErrNotFound {
				t.Errorf("Open missing = %v", err)
			}
			if _, err := fs.Stat("/missing"); err != ErrNotFound {
				t.Errorf("Stat missing = %v", err)
			}
			if err := fs.Remove("/missing"); err != ErrNotFound {
				t.Errorf("Remove missing = %v", err)
			}
			fs.Mkdir("/d", "o")
			if _, err := fs.Open("/d"); err != ErrIsDir {
				t.Errorf("Open dir = %v", err)
			}
			if err := fs.Remove("/d"); err != ErrIsDir {
				t.Errorf("Remove dir = %v", err)
			}
			if _, err := fs.Create("/d", "o"); err != ErrIsDir {
				t.Errorf("Create over dir = %v", err)
			}
			writeFile(t, fs, "/f", []byte("x"))
			if err := fs.Rmdir("/f"); err != ErrNotDir {
				t.Errorf("Rmdir file = %v", err)
			}
			if _, err := fs.List("/f"); err != ErrNotDir {
				t.Errorf("List file = %v", err)
			}
		})
	}
}

func TestPathEscapePrevention(t *testing.T) {
	for name, fs := range backends(t) {
		t.Run(name, func(t *testing.T) {
			writeFile(t, fs, "/../../escape.txt", []byte("x"))
			// The dot-dot components must collapse inside the root.
			if _, err := fs.Stat("/escape.txt"); err != nil {
				t.Errorf("escaped path not cleaned into namespace: %v", err)
			}
		})
	}
}

func TestReadOnlyHandles(t *testing.T) {
	for name, fs := range backends(t) {
		t.Run(name, func(t *testing.T) {
			writeFile(t, fs, "/f", []byte("data"))
			f, err := fs.Open("/f")
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if _, err := f.WriteAt([]byte("no"), 0); err != ErrReadOnly {
				t.Errorf("WriteAt on read-only handle = %v", err)
			}
			if err := f.Truncate(0); err != ErrReadOnly {
				t.Errorf("Truncate on read-only handle = %v", err)
			}
		})
	}
}

func TestOpenRW(t *testing.T) {
	for name, fs := range backends(t) {
		t.Run(name, func(t *testing.T) {
			writeFile(t, fs, "/f", []byte("hello"))
			f, err := fs.OpenRW("/f")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteAt([]byte("J"), 0); err != nil {
				t.Fatal(err)
			}
			f.Close()
			if got := readFile(t, fs, "/f"); string(got) != "Jello" {
				t.Errorf("content = %q", got)
			}
		})
	}
}

func TestSparseWrite(t *testing.T) {
	for name, fs := range backends(t) {
		t.Run(name, func(t *testing.T) {
			f, err := fs.Create("/sparse", "o")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteAt([]byte("end"), 100); err != nil {
				t.Fatal(err)
			}
			if f.Size() != 103 {
				t.Errorf("Size = %d, want 103", f.Size())
			}
			buf := make([]byte, 3)
			if _, err := f.ReadAt(buf, 50); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, []byte{0, 0, 0}) {
				t.Errorf("hole = %v, want zeros", buf)
			}
			f.Close()
		})
	}
}

func TestTruncate(t *testing.T) {
	for name, fs := range backends(t) {
		t.Run(name, func(t *testing.T) {
			f, _ := fs.Create("/t", "o")
			f.WriteAt([]byte("0123456789"), 0)
			if err := f.Truncate(4); err != nil {
				t.Fatal(err)
			}
			if f.Size() != 4 {
				t.Errorf("Size = %d", f.Size())
			}
			if err := f.Truncate(8); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 8)
			f.ReadAt(buf, 0)
			if !bytes.Equal(buf, []byte{'0', '1', '2', '3', 0, 0, 0, 0}) {
				t.Errorf("after grow = %v", buf)
			}
			f.Close()
		})
	}
}

func TestMemFSCapacity(t *testing.T) {
	fs := NewMemFS(nil, 100)
	f, _ := fs.Create("/f", "o")
	if _, err := f.WriteAt(make([]byte, 60), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 60), 60); err != ErrNoSpace {
		t.Errorf("over-capacity write = %v", err)
	}
	if fs.Free() != 40 {
		t.Errorf("Free = %d, want 40", fs.Free())
	}
	f.Close()
	fs.Remove("/f")
	if fs.Free() != 100 {
		t.Errorf("Free after remove = %d", fs.Free())
	}
}

func TestClean(t *testing.T) {
	cases := map[string]string{
		"":        "/",
		"/":       "/",
		"a/b":     "/a/b",
		"/a//b/":  "/a/b",
		"/a/../b": "/b",
		"/../..":  "/",
		"a/./b":   "/a/b",
	}
	for in, want := range cases {
		if got := Clean(in); got != want {
			t.Errorf("Clean(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSplit(t *testing.T) {
	cases := []struct{ in, dir, base string }{
		{"/a/b/c", "/a/b", "c"},
		{"/a", "/", "a"},
		{"/", "/", "/"},
	}
	for _, c := range cases {
		dir, base := Split(c.in)
		if dir != c.dir || base != c.base {
			t.Errorf("Split(%q) = %q,%q want %q,%q", c.in, dir, base, c.dir, c.base)
		}
	}
}

// Property: memfs WriteAt then ReadAt returns the written bytes.
func TestQuickMemFSReadBack(t *testing.T) {
	fs := NewMemFS(nil, 1<<30)
	f, err := fs.Create("/q", "o")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	check := func(data []byte, off uint16) bool {
		if len(data) == 0 {
			return true
		}
		if _, err := f.WriteAt(data, int64(off)); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if _, err := f.ReadAt(got, int64(off)); err != nil && err != io.EOF {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}
