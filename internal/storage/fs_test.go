package storage

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"nest/internal/sim"
)

const mb = sim.MB

// backends returns each FS implementation under test.
func backends(t *testing.T) map[string]FS {
	t.Helper()
	local, err := NewLocalFS(t.TempDir(), 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]FS{
		"memfs":   NewMemFS(nil, 1<<30),
		"localfs": local,
	}
}

func writeFile(t *testing.T, fs FS, name string, data []byte) {
	t.Helper()
	f, err := fs.Create(name, "tester")
	if err != nil {
		t.Fatalf("Create(%s): %v", name, err)
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatalf("WriteAt(%s): %v", name, err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close(%s): %v", name, err)
	}
}

func readFile(t *testing.T, fs FS, name string) []byte {
	t.Helper()
	f, err := fs.Open(name)
	if err != nil {
		t.Fatalf("Open(%s): %v", name, err)
	}
	defer f.Close()
	buf := make([]byte, f.Size())
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatalf("ReadAt(%s): %v", name, err)
	}
	return buf
}

func TestCreateReadBack(t *testing.T) {
	for name, fs := range backends(t) {
		t.Run(name, func(t *testing.T) {
			data := []byte("the quick brown fox")
			writeFile(t, fs, "/f.txt", data)
			if got := readFile(t, fs, "/f.txt"); !bytes.Equal(got, data) {
				t.Errorf("read back %q, want %q", got, data)
			}
			info, err := fs.Stat("/f.txt")
			if err != nil || info.Size != int64(len(data)) || info.IsDir {
				t.Errorf("Stat = %+v, %v", info, err)
			}
		})
	}
}

func TestCreateTruncatesExisting(t *testing.T) {
	for name, fs := range backends(t) {
		t.Run(name, func(t *testing.T) {
			writeFile(t, fs, "/f", []byte("long old content"))
			writeFile(t, fs, "/f", []byte("new"))
			if got := readFile(t, fs, "/f"); string(got) != "new" {
				t.Errorf("content = %q", got)
			}
		})
	}
}

func TestDirectories(t *testing.T) {
	for name, fs := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if err := fs.Mkdir("/d", "o"); err != nil {
				t.Fatal(err)
			}
			if err := fs.Mkdir("/d", "o"); err != ErrExists {
				t.Errorf("duplicate mkdir = %v", err)
			}
			if err := fs.Mkdir("/nope/x", "o"); err != ErrNotFound {
				t.Errorf("mkdir without parent = %v", err)
			}
			writeFile(t, fs, "/d/a", []byte("1"))
			writeFile(t, fs, "/d/b", []byte("22"))
			infos, err := fs.List("/d")
			if err != nil || len(infos) != 2 {
				t.Fatalf("List = %v, %v", infos, err)
			}
			if infos[0].Name != "a" || infos[1].Name != "b" {
				t.Errorf("List order = %v", infos)
			}
			if infos[1].Size != 2 {
				t.Errorf("b size = %d", infos[1].Size)
			}
			if err := fs.Rmdir("/d"); err != ErrNotEmpty {
				t.Errorf("rmdir non-empty = %v", err)
			}
			fs.Remove("/d/a")
			fs.Remove("/d/b")
			if err := fs.Rmdir("/d"); err != nil {
				t.Errorf("rmdir empty = %v", err)
			}
		})
	}
}

func TestErrorMapping(t *testing.T) {
	for name, fs := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := fs.Open("/missing"); err != ErrNotFound {
				t.Errorf("Open missing = %v", err)
			}
			if _, err := fs.Stat("/missing"); err != ErrNotFound {
				t.Errorf("Stat missing = %v", err)
			}
			if err := fs.Remove("/missing"); err != ErrNotFound {
				t.Errorf("Remove missing = %v", err)
			}
			fs.Mkdir("/d", "o")
			if _, err := fs.Open("/d"); err != ErrIsDir {
				t.Errorf("Open dir = %v", err)
			}
			if err := fs.Remove("/d"); err != ErrIsDir {
				t.Errorf("Remove dir = %v", err)
			}
			if _, err := fs.Create("/d", "o"); err != ErrIsDir {
				t.Errorf("Create over dir = %v", err)
			}
			writeFile(t, fs, "/f", []byte("x"))
			if err := fs.Rmdir("/f"); err != ErrNotDir {
				t.Errorf("Rmdir file = %v", err)
			}
			if _, err := fs.List("/f"); err != ErrNotDir {
				t.Errorf("List file = %v", err)
			}
		})
	}
}

func TestPathEscapePrevention(t *testing.T) {
	for name, fs := range backends(t) {
		t.Run(name, func(t *testing.T) {
			writeFile(t, fs, "/../../escape.txt", []byte("x"))
			// The dot-dot components must collapse inside the root.
			if _, err := fs.Stat("/escape.txt"); err != nil {
				t.Errorf("escaped path not cleaned into namespace: %v", err)
			}
		})
	}
}

func TestReadOnlyHandles(t *testing.T) {
	for name, fs := range backends(t) {
		t.Run(name, func(t *testing.T) {
			writeFile(t, fs, "/f", []byte("data"))
			f, err := fs.Open("/f")
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if _, err := f.WriteAt([]byte("no"), 0); err != ErrReadOnly {
				t.Errorf("WriteAt on read-only handle = %v", err)
			}
			if err := f.Truncate(0); err != ErrReadOnly {
				t.Errorf("Truncate on read-only handle = %v", err)
			}
		})
	}
}

func TestOpenRW(t *testing.T) {
	for name, fs := range backends(t) {
		t.Run(name, func(t *testing.T) {
			writeFile(t, fs, "/f", []byte("hello"))
			f, err := fs.OpenRW("/f")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteAt([]byte("J"), 0); err != nil {
				t.Fatal(err)
			}
			f.Close()
			if got := readFile(t, fs, "/f"); string(got) != "Jello" {
				t.Errorf("content = %q", got)
			}
		})
	}
}

func TestSparseWrite(t *testing.T) {
	for name, fs := range backends(t) {
		t.Run(name, func(t *testing.T) {
			f, err := fs.Create("/sparse", "o")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteAt([]byte("end"), 100); err != nil {
				t.Fatal(err)
			}
			if f.Size() != 103 {
				t.Errorf("Size = %d, want 103", f.Size())
			}
			buf := make([]byte, 3)
			if _, err := f.ReadAt(buf, 50); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, []byte{0, 0, 0}) {
				t.Errorf("hole = %v, want zeros", buf)
			}
			f.Close()
		})
	}
}

func TestTruncate(t *testing.T) {
	for name, fs := range backends(t) {
		t.Run(name, func(t *testing.T) {
			f, _ := fs.Create("/t", "o")
			f.WriteAt([]byte("0123456789"), 0)
			if err := f.Truncate(4); err != nil {
				t.Fatal(err)
			}
			if f.Size() != 4 {
				t.Errorf("Size = %d", f.Size())
			}
			if err := f.Truncate(8); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 8)
			f.ReadAt(buf, 0)
			if !bytes.Equal(buf, []byte{'0', '1', '2', '3', 0, 0, 0, 0}) {
				t.Errorf("after grow = %v", buf)
			}
			f.Close()
		})
	}
}

func TestMemFSCapacity(t *testing.T) {
	fs := NewMemFS(nil, 100)
	f, _ := fs.Create("/f", "o")
	if _, err := f.WriteAt(make([]byte, 60), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 60), 60); err != ErrNoSpace {
		t.Errorf("over-capacity write = %v", err)
	}
	if fs.Free() != 40 {
		t.Errorf("Free = %d, want 40", fs.Free())
	}
	f.Close()
	fs.Remove("/f")
	if fs.Free() != 100 {
		t.Errorf("Free after remove = %d", fs.Free())
	}
}

func TestClean(t *testing.T) {
	cases := map[string]string{
		"":        "/",
		"/":       "/",
		"a/b":     "/a/b",
		"/a//b/":  "/a/b",
		"/a/../b": "/b",
		"/../..":  "/",
		"a/./b":   "/a/b",
	}
	for in, want := range cases {
		if got := Clean(in); got != want {
			t.Errorf("Clean(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSplit(t *testing.T) {
	cases := []struct{ in, dir, base string }{
		{"/a/b/c", "/a/b", "c"},
		{"/a", "/", "a"},
		{"/", "/", "/"},
	}
	for _, c := range cases {
		dir, base := Split(c.in)
		if dir != c.dir || base != c.base {
			t.Errorf("Split(%q) = %q,%q want %q,%q", c.in, dir, base, c.dir, c.base)
		}
	}
}

// TestClosedHandle pins the closed-handle contract on every backend:
// data operations on a closed handle fail with ErrClosed, as does a
// second Close.
func TestClosedHandle(t *testing.T) {
	for name, fs := range backends(t) {
		t.Run(name, func(t *testing.T) {
			writeFile(t, fs, "/f", []byte("data"))
			f, err := fs.OpenRW("/f")
			if err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if _, err := f.ReadAt(make([]byte, 4), 0); err != ErrClosed {
				t.Errorf("ReadAt on closed = %v, want ErrClosed", err)
			}
			if _, err := f.WriteAt([]byte("x"), 0); err != ErrClosed {
				t.Errorf("WriteAt on closed = %v, want ErrClosed", err)
			}
			if err := f.Truncate(0); err != ErrClosed {
				t.Errorf("Truncate on closed = %v, want ErrClosed", err)
			}
			if err := f.Close(); err != ErrClosed {
				t.Errorf("double Close = %v, want ErrClosed", err)
			}
		})
	}
}

// TestSparseAcrossExtents writes far past EOF so the hole spans
// multiple 64 KB extents, and checks the hole reads back as zeros in
// every extent it crosses — including recycled (dirty) pool blocks.
func TestSparseAcrossExtents(t *testing.T) {
	fs := NewMemFS(nil, 1<<30)
	// Dirty the pool first: fill and remove a file so its extents go
	// back full of non-zero bytes.
	junk := make([]byte, 4*ExtentSize)
	for i := range junk {
		junk[i] = 0xFF
	}
	writeFile(t, fs, "/junk", junk)
	if err := fs.Remove("/junk"); err != nil {
		t.Fatal(err)
	}

	f, err := fs.Create("/sparse", "o")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	off := int64(3*ExtentSize + 100)
	if _, err := f.WriteAt([]byte("tail"), off); err != nil {
		t.Fatal(err)
	}
	if got, want := f.Size(), off+4; got != want {
		t.Fatalf("Size = %d, want %d", got, want)
	}
	// Probe the hole at extent boundaries and interiors.
	for _, probe := range []int64{0, ExtentSize - 2, ExtentSize, 2*ExtentSize + 17, 3 * ExtentSize} {
		buf := []byte{1, 2, 3, 4}
		if _, err := f.ReadAt(buf, probe); err != nil {
			t.Fatalf("ReadAt(%d): %v", probe, err)
		}
		if !bytes.Equal(buf, []byte{0, 0, 0, 0}) {
			t.Errorf("hole at %d = %v, want zeros", probe, buf)
		}
	}
	buf := make([]byte, 4)
	if _, err := f.ReadAt(buf, off); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "tail" {
		t.Errorf("data = %q", buf)
	}
}

// TestTruncateRestoresUsed checks that grow/shrink cycles settle the
// space accounting exactly, and that a shrink-then-grow re-zeroes the
// abandoned tail of a partially kept extent.
func TestTruncateRestoresUsed(t *testing.T) {
	fs := NewMemFS(nil, 1<<30)
	f, err := fs.Create("/t", "o")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	data := make([]byte, 2*ExtentSize+500)
	for i := range data {
		data[i] = 0xAB
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if got := fs.Free(); got != 1<<30-int64(len(data)) {
		t.Fatalf("Free after write = %d", got)
	}
	// Shrink into the middle of extent 0, then grow back: everything
	// beyond the shrink point must read as zeros, not stale 0xAB.
	if err := f.Truncate(100); err != nil {
		t.Fatal(err)
	}
	if got := fs.Free(); got != 1<<30-100 {
		t.Fatalf("Free after shrink = %d", got)
	}
	if err := f.Truncate(ExtentSize + 200); err != nil {
		t.Fatal(err)
	}
	if got := fs.Free(); got != 1<<30-(ExtentSize+200) {
		t.Fatalf("Free after regrow = %d", got)
	}
	buf := make([]byte, ExtentSize+100)
	if _, err := f.ReadAt(buf, 100); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("stale byte %#x at offset %d after shrink+grow", b, 100+i)
		}
	}
	if err := f.Truncate(0); err != nil {
		t.Fatal(err)
	}
	if got := fs.Free(); got != 1<<30 {
		t.Fatalf("Free after truncate 0 = %d", got)
	}
}

// TestQuotaReserveRollback checks that failed reservations leave used
// untouched: an over-capacity WriteAt or Truncate must not leak
// reserved bytes, under sequential and concurrent pressure.
func TestQuotaReserveRollback(t *testing.T) {
	fs := NewMemFS(nil, 1000)
	f, err := fs.Create("/f", "o")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt(make([]byte, 600), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 600), 600); err != ErrNoSpace {
		t.Fatalf("over-capacity WriteAt = %v", err)
	}
	if err := f.Truncate(2000); err != ErrNoSpace {
		t.Fatalf("over-capacity Truncate = %v", err)
	}
	if got := fs.Free(); got != 400 {
		t.Fatalf("Free after failed reservations = %d, want 400", got)
	}
	// Concurrent writers fighting over the last 400 bytes: exactly one
	// 400-byte extension can win, and failures must roll back fully.
	var wg sync.WaitGroup
	var wins atomic.Int64
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := f.WriteAt(make([]byte, 400), 600); err == nil {
				wins.Add(1)
			}
		}()
	}
	wg.Wait()
	if wins.Load() < 1 {
		t.Error("no writer won the remaining space")
	}
	if got := fs.Free(); got != 0 {
		t.Fatalf("Free after concurrent contention = %d, want 0", got)
	}
	if err := f.Truncate(0); err != nil {
		t.Fatal(err)
	}
	if got := fs.Free(); got != 1000 {
		t.Fatalf("Free after cleanup = %d, want 1000", got)
	}
}

// TestConcurrentFileStress hammers the two-tier locking under -race:
// pumps on disjoint files, readers and writers sharing one file, a
// truncator, and a control-plane stat/list loop all run concurrently.
func TestConcurrentFileStress(t *testing.T) {
	for name, fs := range backends(t) {
		t.Run(name, func(t *testing.T) { runConcurrentFileStress(t, fs) })
	}
}

// runConcurrentFileStress hammers one backend with disjoint-file
// pumps, shared-file writers/readers/truncators, and a control-plane
// loop — the two-tier locking contract both backends share.
func runConcurrentFileStress(t *testing.T, fs FS) {
	const iters = 300
	var wg sync.WaitGroup

	// Disjoint-file pumps: each writes then reads back its own file and
	// must always observe its own bytes.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			name := fmt.Sprintf("/own%d", id)
			f, err := fs.Create(name, "o")
			if err != nil {
				t.Error(err)
				return
			}
			defer f.Close()
			pattern := byte(id + 1)
			buf := make([]byte, 1024)
			got := make([]byte, 1024)
			for i := range buf {
				buf[i] = pattern
			}
			for i := 0; i < iters; i++ {
				off := int64(i%7) * 1024
				if _, err := f.WriteAt(buf, off); err != nil {
					t.Error(err)
					return
				}
				if _, err := f.ReadAt(got, off); err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(got, buf) {
					t.Errorf("worker %d read back wrong bytes", id)
					return
				}
			}
		}(w)
	}

	// Shared-file writers, readers and a truncator on /shared.
	sf, err := fs.Create("/shared", "o")
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f, err := fs.OpenRW("/shared")
			if err != nil {
				t.Error(err)
				return
			}
			defer f.Close()
			buf := make([]byte, 512)
			for i := 0; i < iters; i++ {
				if _, err := f.WriteAt(buf, int64(i%5)*512); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		f, err := fs.Open("/shared")
		if err != nil {
			t.Error(err)
			return
		}
		defer f.Close()
		buf := make([]byte, 512)
		for i := 0; i < iters; i++ {
			if _, err := f.ReadAt(buf, int64(i%5)*512); err != nil && err != io.EOF {
				t.Error(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/3; i++ {
			if err := sf.Truncate(int64(i%3) * 700); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Control-plane loop: stats and lists must never block on data ops.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			fs.Stat("/shared")
			fs.List("/")
			fs.Free()
		}
	}()

	wg.Wait()
}

// Property: memfs WriteAt then ReadAt returns the written bytes.
func TestQuickMemFSReadBack(t *testing.T) {
	fs := NewMemFS(nil, 1<<30)
	f, err := fs.Create("/q", "o")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	check := func(data []byte, off uint16) bool {
		if len(data) == 0 {
			return true
		}
		if _, err := f.WriteAt(data, int64(off)); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if _, err := f.ReadAt(got, int64(off)); err != nil && err != io.EOF {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// TestExtentStats checks the package-wide extent allocator counters:
// writing a multi-extent file draws exactly its extent count from the
// pool, and removing it recycles every one of them. Counters are
// cumulative across all MemFS instances, so the test asserts deltas.
func TestExtentStats(t *testing.T) {
	fs := NewMemFS(nil, 1<<30)
	allocs0, recycles0 := ExtentStats()

	const nExtents = 3
	writeFile(t, fs, "/counted", make([]byte, nExtents*ExtentSize))
	allocs1, recycles1 := ExtentStats()
	if got := allocs1 - allocs0; got != nExtents {
		t.Errorf("allocs delta after write = %d, want %d", got, nExtents)
	}
	if recycles1 != recycles0 {
		t.Errorf("recycles moved on write: %d -> %d", recycles0, recycles1)
	}

	if err := fs.Remove("/counted"); err != nil {
		t.Fatal(err)
	}
	allocs2, recycles2 := ExtentStats()
	if allocs2 != allocs1 {
		t.Errorf("allocs moved on remove: %d -> %d", allocs1, allocs2)
	}
	if got := recycles2 - recycles1; got != nExtents {
		t.Errorf("recycles delta after remove = %d, want %d", got, nExtents)
	}
}
