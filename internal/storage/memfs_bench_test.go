package storage

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// benchChunk is the write granularity of the data-plane benchmarks; it
// matches protocol.ChunkSize (and the MemFS extent size), the unit the
// transfer pumps actually move.
const benchChunk = 64 * 1024

// BenchmarkSequentialWrite writes a whole file sequentially in
// chunk-size pieces, for growing file sizes. With amortized O(1)
// appends the reported MB/s stays roughly flat from 1 MB to 16 MB;
// a data plane that re-copies the file on growth degrades superlinearly
// instead.
func BenchmarkSequentialWrite(b *testing.B) {
	for _, mbs := range []int64{1, 4, 16} {
		size := mbs << 20
		b.Run(fmt.Sprintf("%dMB", mbs), func(b *testing.B) {
			fs := NewMemFS(nil, 1<<32)
			chunk := make([]byte, benchChunk)
			b.SetBytes(size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f, err := fs.Create("/bench", "o")
				if err != nil {
					b.Fatal(err)
				}
				for off := int64(0); off < size; off += benchChunk {
					if _, err := f.WriteAt(chunk, off); err != nil {
						b.Fatal(err)
					}
				}
				f.Close()
			}
		})
	}
}

// BenchmarkStatUnderDataLoad measures control-plane Stat latency while
// a background writer streams chunks into another file. With one
// filesystem-wide mutex every Stat waits behind the writer's 64 KB
// critical sections; with two-tier locking Stat takes only the
// namespace lock, which the data path never holds.
func BenchmarkStatUnderDataLoad(b *testing.B) {
	fs := NewMemFS(nil, 1<<32)
	if f, err := fs.Create("/target", "o"); err != nil {
		b.Fatal(err)
	} else {
		f.Close()
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		f, err := fs.Create("/hot", "o")
		if err != nil {
			return
		}
		defer f.Close()
		chunk := make([]byte, benchChunk)
		var off int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			f.WriteAt(chunk, off)
			off = (off + benchChunk) % (64 << 20)
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.Stat("/target"); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	<-done
}

// BenchmarkConcurrentFileRW measures the data plane under concurrent
// transfer pumps. "distinct" gives every goroutine its own file — the
// common multi-protocol case the paper's headline claims rest on —
// so with per-file locking the pumps proceed in parallel instead of
// serializing on a filesystem-wide mutex. "shared" points every
// goroutine at one file, the worst case that still must serialize, as
// a contention baseline.
func BenchmarkConcurrentFileRW(b *testing.B) {
	for _, mode := range []string{"distinct", "shared"} {
		b.Run(mode, func(b *testing.B) {
			fs := NewMemFS(nil, 1<<32)
			if f, err := fs.Create("/shared", "o"); err != nil {
				b.Fatal(err)
			} else {
				f.Close()
			}
			var nextID atomic.Int64
			b.SetBytes(2 * benchChunk) // one write + one read per op
			b.SetParallelism(8)        // pumps outnumber cores on a loaded appliance
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				var f File
				var err error
				if mode == "shared" {
					f, err = fs.OpenRW("/shared")
				} else {
					f, err = fs.Create(fmt.Sprintf("/f%d", nextID.Add(1)), "o")
				}
				if err != nil {
					b.Fatal(err)
				}
				defer f.Close()
				buf := make([]byte, benchChunk)
				var off int64
				for pb.Next() {
					if _, err := f.WriteAt(buf, off); err != nil {
						b.Fatal(err)
					}
					if _, err := f.ReadAt(buf, off); err != nil {
						b.Fatal(err)
					}
					off = (off + benchChunk) % (16 << 20)
				}
			})
		})
	}
}
