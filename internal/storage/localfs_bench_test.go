package storage

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
)

// The LocalFS data-plane benchmarks compare the extent-path rewrite
// against the seed implementation it replaced, over the same pump
// endpoints (SectionReader/OffsetWriter) the dispatcher uses. The seed
// is carried here as a test-only baseline — the same pattern as the
// scheduler oracle baselines — so the before/after numbers in
// docs/storage_bench.md stay reproducible. Run on tmpfs (e.g.
// TMPDIR=/dev/shm) to measure the data path rather than the disk.
//
// What the comparison isolates, per 64 KiB chunk of a GET: the seed
// path pays a pread syscall plus two copies (page cache → staging
// buffer → sink); the mapped handoff path pays one copy (page cache →
// sink). PUTs are symmetric: source → staging → pwrite versus source →
// mapped pages.

// seedLocalFS reproduces the pre-rewrite LocalFS exactly: bare
// descriptor wrappers with no per-file locking, fstat per Size, and a
// full-tree walk per Free call.
type seedLocalFS struct {
	root  string
	total int64
}

func (l *seedLocalFS) resolve(name string) string {
	return filepath.Join(l.root, filepath.FromSlash(Clean(name)))
}

func (l *seedLocalFS) Create(name string) (File, error) {
	f, err := os.OpenFile(l.resolve(name), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, mapErr(err)
	}
	return &seedLocalFile{f: f, path: Clean(name), writable: true}, nil
}

func (l *seedLocalFS) Free() int64 {
	var used int64
	filepath.Walk(l.root, func(_ string, info fs.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			used += info.Size()
		}
		return nil
	})
	free := l.total - used
	if free < 0 {
		free = 0
	}
	return free
}

type seedLocalFile struct {
	f        *os.File
	path     string
	writable bool
}

func (f *seedLocalFile) Path() string { return f.path }

func (f *seedLocalFile) Size() int64 {
	info, err := f.f.Stat()
	if err != nil {
		return 0
	}
	return info.Size()
}

func (f *seedLocalFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := f.f.ReadAt(p, off)
	if err != nil && errors.Is(err, fs.ErrClosed) {
		err = ErrClosed
	}
	return n, err
}

func (f *seedLocalFile) WriteAt(p []byte, off int64) (int, error) {
	if !f.writable {
		return 0, ErrReadOnly
	}
	n, err := f.f.WriteAt(p, off)
	return n, mapErr(err)
}

func (f *seedLocalFile) Truncate(n int64) error {
	if !f.writable {
		return ErrReadOnly
	}
	return mapErr(f.f.Truncate(n))
}

func (f *seedLocalFile) Close() error { return mapErr(f.f.Close()) }

// benchLocalFile opens a file of the given size through either
// implementation; the pump endpoints detect the handoff capability on
// the extent-path file and fall back to pooled staging on the seed.
func benchLocalFile(b *testing.B, impl string, size int64) File {
	b.Helper()
	dir := b.TempDir()
	var f File
	var err error
	switch impl {
	case "seed":
		f, err = (&seedLocalFS{root: dir, total: 1 << 32}).Create("/bench")
	case "extent":
		var l *LocalFS
		if l, err = NewLocalFS(dir, 1<<32); err == nil {
			f, err = l.Create("/bench", "o")
		}
	}
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i)
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		b.Fatal(err)
	}
	return f
}

// memcpySink consumes every chunk with one copy into a fixed buffer —
// the cost shape of a socket write, without the socket.
type memcpySink struct{ buf [ExtentSize]byte }

func (s *memcpySink) Write(p []byte) (int, error) {
	n := 0
	for n < len(p) {
		n += copy(s.buf[:], p[n:])
	}
	return n, nil
}

// BenchmarkLocalSequentialRead streams a whole file through the GET
// endpoint (SectionReader.WriteTo), steady state: the file stays hot
// across iterations, so the numbers isolate the per-chunk data path.
func BenchmarkLocalSequentialRead(b *testing.B) {
	for _, impl := range []string{"seed", "extent"} {
		for _, mbs := range []int64{1, 4, 16} {
			size := mbs << 20
			b.Run(fmt.Sprintf("%s/%dMB", impl, mbs), func(b *testing.B) {
				f := benchLocalFile(b, impl, size)
				defer f.Close()
				sink := &memcpySink{}
				b.SetBytes(size)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					n, err := NewSectionReader(f, 0, size).WriteTo(sink)
					if err != nil || n != size {
						b.Fatalf("WriteTo = (%d, %v)", n, err)
					}
				}
			})
		}
	}
}

// BenchmarkLocalSequentialWrite rewrites a whole file through the PUT
// endpoint (OffsetWriter.ReadFrom), steady state: the file is at full
// size, so no space reservation or extension happens and the numbers
// isolate the per-chunk landing path.
func BenchmarkLocalSequentialWrite(b *testing.B) {
	for _, impl := range []string{"seed", "extent"} {
		for _, mbs := range []int64{1, 4, 16} {
			size := mbs << 20
			b.Run(fmt.Sprintf("%s/%dMB", impl, mbs), func(b *testing.B) {
				f := benchLocalFile(b, impl, size)
				defer f.Close()
				data := make([]byte, size)
				src := bytes.NewReader(data)
				b.SetBytes(size)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					src.Reset(data)
					n, err := NewOffsetWriter(f, 0).ReadFrom(src)
					if err != nil || n != size {
						b.Fatalf("ReadFrom = (%d, %v)", n, err)
					}
				}
			})
		}
	}
}

// BenchmarkLocalFree pins the O(1) claim: the maintained counter is
// one atomic load (0 allocs/op, flat across file counts) where the
// seed walked the whole tree per call.
func BenchmarkLocalFree(b *testing.B) {
	for _, impl := range []string{"seed", "extent"} {
		for _, files := range []int{16, 256, 4096} {
			b.Run(fmt.Sprintf("%s/files=%d", impl, files), func(b *testing.B) {
				dir := b.TempDir()
				for i := 0; i < files; i++ {
					if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("f%d", i)), make([]byte, 1024), 0o644); err != nil {
						b.Fatal(err)
					}
				}
				var free func() int64
				switch impl {
				case "seed":
					free = (&seedLocalFS{root: dir, total: 1 << 32}).Free
				case "extent":
					l, err := NewLocalFS(dir, 1<<32)
					if err != nil {
						b.Fatal(err)
					}
					free = l.Free
				}
				want := int64(1<<32 - files*1024)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if got := free(); got != want {
						b.Fatalf("Free = %d, want %d", got, want)
					}
				}
			})
		}
	}
}
