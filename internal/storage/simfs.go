package storage

import (
	"io"
	"sync"
	"sync/atomic"
	"time"

	"nest/internal/cache"
	"nest/internal/quota"
	"nest/internal/sim"
)

// MemCopyMBps models the 2002-era memory-copy bandwidth of the server
// (buffer cache to user space); in-cache reads cost this rather than
// disk time.
const MemCopyMBps = 220.0

// DefaultDirtyLimit is the write-back buffer: bytes of dirty data the
// kernel lets accumulate before throttling writers to disk speed. Its
// size determines where quota overhead becomes visible in Figure 6.
const DefaultDirtyLimit int64 = 16 * sim.MB

// SimFS wraps an in-memory filesystem with a timing model of the
// paper's testbed: an LRU kernel buffer cache, a single spindle with
// positioning costs, write-back with a dirty limit, and optional quota
// bookkeeping overhead on the write path. It exercises the identical
// storage-manager and transfer-manager code as the live backends while
// letting experiments run in deterministic virtual time.
type SimFS struct {
	inner *MemFS
	host  *sim.Host
	cache *cache.Model
	quota *quota.Manager // nil disables quota effects

	// mu guards only flushFree (the single write-back drain horizon);
	// the tunables are atomic so the read path charges time without
	// taking any SimFS-wide lock, preserving the per-file parallelism
	// of the extent-backed MemFS underneath.
	mu         sync.Mutex
	flushFree  time.Duration // virtual time when write-back drains
	dirtyLimit atomic.Int64
	readAhead  atomic.Int64
}

// DefaultReadAhead is the sequential prefetch depth: on a cache miss
// the kernel fetches this much ahead, amortizing positioning time so
// interleaved sequential streams do not reduce the disk to
// seek-per-chunk throughput.
const DefaultReadAhead int64 = 1 * sim.MB

// NewSimFS builds a simulated filesystem on host with the given
// capacity. qm may be nil.
func NewSimFS(host *sim.Host, capacity int64, qm *quota.Manager) *SimFS {
	s := &SimFS{
		inner: NewMemFS(host.Clock, capacity),
		host:  host,
		cache: cache.New(host.Profile.CacheSize),
		quota: qm,
	}
	s.dirtyLimit.Store(DefaultDirtyLimit)
	s.readAhead.Store(DefaultReadAhead)
	return s
}

// Cache exposes the buffer-cache model (the gray-box probe target for
// cache-aware scheduling).
func (s *SimFS) Cache() *cache.Model { return s.cache }

// Quota returns the attached quota manager (may be nil).
func (s *SimFS) Quota() *quota.Manager { return s.quota }

// SetDirtyLimit overrides the write-back buffer size.
func (s *SimFS) SetDirtyLimit(n int64) { s.dirtyLimit.Store(n) }

// Warm loads a file's blocks into the cache model, for constructing
// the paper's "in-cache" workloads.
func (s *SimFS) Warm(name string) error {
	info, err := s.inner.Stat(name)
	if err != nil {
		return err
	}
	s.cache.Insert(Clean(name), 0, info.Size)
	return nil
}

// SetReadAhead overrides the sequential prefetch depth.
func (s *SimFS) SetReadAhead(n int64) { s.readAhead.Store(n) }

// chargeRead advances virtual time for a read of n bytes at off of a
// file whose total length is size.
func (s *SimFS) chargeRead(name string, off, n, size int64) {
	hit, miss := s.cache.Access(name, off, n)
	if hit > 0 {
		s.host.Clock.Sleep(memCopyTime(hit))
	}
	if miss > 0 {
		// A miss triggers sequential readahead beyond the requested
		// range, amortizing the positioning cost.
		ra := s.readAhead.Load()
		extra := int64(0)
		if ra > 0 {
			end := off + n + ra
			if end > size {
				end = size
			}
			extra = end - (off + n)
			if extra > 0 {
				s.cache.Insert(name, off+n, extra)
			}
		}
		s.host.Disk.Read(name, miss+extra)
	}
}

// chargeWrite advances virtual time for a write of n bytes: a memory
// copy into the cache, plus write-back throttling once the dirty limit
// is exceeded. Quota bookkeeping multiplies the drain cost.
func (s *SimFS) chargeWrite(name string, off, n int64) {
	s.cache.Insert(name, off, n)
	slowdown := 1.0
	if s.quota != nil {
		slowdown = s.quota.WriteSlowdown()
	}
	effMBps := s.host.Profile.DiskMBps / slowdown

	s.mu.Lock()
	now := s.host.Clock.Now()
	if s.flushFree < now {
		s.flushFree = now
	}
	s.flushFree += timeFor(n, effMBps)
	backlogAllowance := timeFor(s.dirtyLimit.Load(), effMBps)
	wake := s.flushFree - backlogAllowance
	s.mu.Unlock()

	if sc, ok := s.host.Clock.(*sim.VirtualClock); ok && wake > now {
		sc.SleepUntil(wake)
	} else if wake > now {
		s.host.Clock.Sleep(wake - now)
	}
	s.host.Clock.Sleep(memCopyTime(n))
}

func memCopyTime(n int64) time.Duration { return timeFor(n, MemCopyMBps) }

func timeFor(n int64, mbps float64) time.Duration {
	if mbps <= 0 || n <= 0 {
		return 0
	}
	return time.Duration(float64(n) / (mbps * sim.MB) * float64(time.Second))
}

// Create implements FS.
func (s *SimFS) Create(name, owner string) (File, error) {
	f, err := s.inner.Create(name, owner)
	if err != nil {
		return nil, err
	}
	s.cache.Invalidate(Clean(name))
	return &simFile{inner: f, fs: s}, nil
}

// Open implements FS.
func (s *SimFS) Open(name string) (File, error) {
	f, err := s.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &simFile{inner: f, fs: s}, nil
}

// OpenRW implements FS.
func (s *SimFS) OpenRW(name string) (File, error) {
	f, err := s.inner.OpenRW(name)
	if err != nil {
		return nil, err
	}
	return &simFile{inner: f, fs: s}, nil
}

// Stat implements FS.
func (s *SimFS) Stat(name string) (Info, error) { return s.inner.Stat(name) }

// List implements FS.
func (s *SimFS) List(name string) ([]Info, error) { return s.inner.List(name) }

// Mkdir implements FS.
func (s *SimFS) Mkdir(name, owner string) error { return s.inner.Mkdir(name, owner) }

// Rmdir implements FS.
func (s *SimFS) Rmdir(name string) error { return s.inner.Rmdir(name) }

// Remove implements FS.
func (s *SimFS) Remove(name string) error {
	if err := s.inner.Remove(name); err != nil {
		return err
	}
	s.cache.Invalidate(Clean(name))
	return nil
}

// Total implements FS.
func (s *SimFS) Total() int64 { return s.inner.Total() }

// Free implements FS.
func (s *SimFS) Free() int64 { return s.inner.Free() }

type simFile struct {
	inner File
	fs    *SimFS
}

func (f *simFile) Path() string { return f.inner.Path() }
func (f *simFile) Size() int64  { return f.inner.Size() }

func (f *simFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := f.inner.ReadAt(p, off)
	if n > 0 {
		f.fs.chargeRead(f.inner.Path(), off, int64(n), f.inner.Size())
	}
	return n, err
}

func (f *simFile) WriteAt(p []byte, off int64) (int, error) {
	n, err := f.inner.WriteAt(p, off)
	if n > 0 {
		f.fs.chargeWrite(f.inner.Path(), off, int64(n))
	}
	return n, err
}

// WriteRangeTo implements RangeWriterTo, delegating to the extent
// handoff of the wrapped MemFS file and charging virtual read time for
// the bytes actually delivered — the same per-call cache/disk
// accounting the pooled path pays per ReadAt, so zero-copy and pooled
// transfers are indistinguishable in virtual time.
func (f *simFile) WriteRangeTo(w io.Writer, off, n int64) (int64, error) {
	wn, err := f.inner.(RangeWriterTo).WriteRangeTo(w, off, n)
	if wn > 0 {
		f.fs.chargeRead(f.inner.Path(), off, wn, f.inner.Size())
	}
	return wn, err
}

// ReadRangeFrom implements RangeReaderFrom, delegating to the wrapped
// MemFS file and charging virtual write time (cache insert, write-back
// throttle, quota slowdown) for the bytes moved, mirroring the pooled
// path's per-WriteAt charges.
func (f *simFile) ReadRangeFrom(r io.Reader, off, limit int64) (int64, error) {
	n, err := f.inner.(RangeReaderFrom).ReadRangeFrom(r, off, limit)
	if n > 0 {
		f.fs.chargeWrite(f.inner.Path(), off, n)
	}
	return n, err
}

func (f *simFile) Truncate(n int64) error { return f.inner.Truncate(n) }
func (f *simFile) Close() error           { return f.inner.Close() }
