package storage

import (
	"io"

	"nest/internal/bufpool"
)

// RangeWriterTo is the read-side extent-handoff capability: a file that
// can hand its resident extent slices directly to a sink, with no
// intermediate copy. WriteRangeTo delivers up to n bytes starting at
// off, returning the bytes the sink accepted. It returns io.EOF when
// off is at or past EOF, or when fewer than n bytes were resident
// (after delivering the resident prefix), mirroring ReadAt; it returns
// io.ErrShortWrite when the sink accepts fewer bytes than offered
// without reporting its own error.
//
// Lock-hold discipline: implementations call w.Write while holding the
// file's read lock, so extent contents cannot be truncated or recycled
// mid-write. Sinks must therefore not retain the slice past Write, and
// a slow sink can hold the per-file lock for at most one call's worth
// of data — callers that need preemption granularity bound n.
type RangeWriterTo interface {
	WriteRangeTo(w io.Writer, off, n int64) (int64, error)
}

// RangeReaderFrom is the write-side extent-handoff capability: a file
// that fills its extents in place from a source. ReadRangeFrom issues
// reads directly into extent memory starting at off, moving at most
// limit bytes, and returns the bytes moved plus any error reported by
// the source (including io.EOF). A short source read returns early
// with a nil error rather than looping, so callers keep chunk-granular
// control over how long the file's write lock is held per call.
type RangeReaderFrom interface {
	ReadRangeFrom(r io.Reader, off, limit int64) (int64, error)
}

// SectionReader reads the byte range [off, off+n) of a File, like
// io.NewSectionReader, but additionally exposes the extent-handoff
// fast path when the underlying file supports it: the transfer pump's
// zero-copy loop calls WriteNextTo instead of Read, and whole-stream
// copiers (io.Copy) hit WriteTo. Not safe for concurrent use; each
// transfer owns its reader.
type SectionReader struct {
	f   File
	rt  RangeWriterTo // non-nil when f supports extent handoff
	off int64         // current position
	end int64         // section limit
}

// NewSectionReader returns a reader over the n bytes of f starting at
// off.
func NewSectionReader(f File, off, n int64) *SectionReader {
	sr := &SectionReader{f: f, off: off, end: off + n}
	if rt, ok := f.(RangeWriterTo); ok {
		sr.rt = rt
	}
	return sr
}

// Handoff reports whether WriteNextTo can move bytes without an
// intermediate buffer. When false, callers must use Read.
func (s *SectionReader) Handoff() bool { return s.rt != nil }

// Read implements io.Reader with io.SectionReader semantics.
func (s *SectionReader) Read(p []byte) (int, error) {
	if s.off >= s.end {
		return 0, io.EOF
	}
	if max := s.end - s.off; int64(len(p)) > max {
		p = p[:max]
	}
	n, err := s.f.ReadAt(p, s.off)
	s.off += int64(n)
	return n, err
}

// WriteNextTo hands the next run of resident extent bytes (at most
// limit) to w and advances the section position by the bytes w
// accepted. It returns io.EOF at the end of the section or of the
// file. Only valid when Handoff reports true.
func (s *SectionReader) WriteNextTo(w io.Writer, limit int64) (int64, error) {
	if s.off >= s.end {
		return 0, io.EOF
	}
	if max := s.end - s.off; limit > max {
		limit = max
	}
	n, err := s.rt.WriteRangeTo(w, s.off, limit)
	s.off += n
	return n, err
}

// WriteTo implements io.WriterTo so io.Copy moves the whole remaining
// section without allocating: via extent handoff when available,
// otherwise through a pooled chunk buffer. A file shorter than the
// section ends the copy cleanly (nil error), matching
// io.Copy(w, io.NewSectionReader(f, off, n)).
func (s *SectionReader) WriteTo(w io.Writer) (int64, error) {
	var total int64
	if s.rt != nil {
		for s.off < s.end {
			n, err := s.WriteNextTo(w, s.end-s.off)
			total += n
			if err == io.EOF {
				return total, nil
			}
			if err != nil {
				return total, err
			}
		}
		return total, nil
	}
	bp := bufpool.Get(ExtentSize)
	defer bufpool.Put(bp)
	for {
		n, rerr := s.Read(*bp)
		if n > 0 {
			wn, werr := w.Write((*bp)[:n])
			total += int64(wn)
			if werr != nil {
				return total, werr
			}
			if wn < n {
				return total, io.ErrShortWrite
			}
		}
		if rerr == io.EOF {
			return total, nil
		}
		if rerr != nil {
			return total, rerr
		}
	}
}

// OffsetWriter writes to a File at a moving offset, like
// io.NewOffsetWriter, but additionally exposes the extent-handoff fast
// path when the underlying file supports it: the transfer pump's
// zero-copy loop calls ReadNextFrom instead of Write, and whole-stream
// copiers (io.Copy) hit ReadFrom. Not safe for concurrent use.
type OffsetWriter struct {
	f   File
	rf  RangeReaderFrom // non-nil when f supports extent handoff
	off int64
}

// NewOffsetWriter returns a writer into f starting at off.
func NewOffsetWriter(f File, off int64) *OffsetWriter {
	ow := &OffsetWriter{f: f, off: off}
	if rf, ok := f.(RangeReaderFrom); ok {
		ow.rf = rf
	}
	return ow
}

// Handoff reports whether ReadNextFrom can move bytes without an
// intermediate buffer. When false, callers must use Write.
func (o *OffsetWriter) Handoff() bool { return o.rf != nil }

// Write implements io.Writer at the moving offset.
func (o *OffsetWriter) Write(p []byte) (int, error) {
	n, err := o.f.WriteAt(p, o.off)
	o.off += int64(n)
	return n, err
}

// ReadNextFrom fills the file's extents in place from r, moving at
// most limit bytes at the current offset, and advances by the bytes
// moved. Only valid when Handoff reports true.
func (o *OffsetWriter) ReadNextFrom(r io.Reader, limit int64) (int64, error) {
	n, err := o.rf.ReadRangeFrom(r, o.off, limit)
	o.off += n
	return n, err
}

// ReadFrom implements io.ReaderFrom so io.Copy moves the whole stream
// without allocating: via extent handoff when available, otherwise
// through a pooled chunk buffer.
func (o *OffsetWriter) ReadFrom(r io.Reader) (int64, error) {
	var total int64
	if o.rf != nil {
		for {
			n, err := o.ReadNextFrom(r, ExtentSize)
			total += n
			if err == io.EOF {
				return total, nil
			}
			if err != nil {
				return total, err
			}
		}
	}
	bp := bufpool.Get(ExtentSize)
	defer bufpool.Put(bp)
	for {
		n, rerr := r.Read(*bp)
		if n > 0 {
			wn, werr := o.Write((*bp)[:n])
			total += int64(wn)
			if werr != nil {
				return total, werr
			}
			if wn < n {
				return total, io.ErrShortWrite
			}
		}
		if rerr == io.EOF {
			return total, nil
		}
		if rerr != nil {
			return total, rerr
		}
	}
}
