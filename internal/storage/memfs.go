package storage

import (
	"sort"
	"strings"
	"sync"
	"time"

	"nest/internal/sim"
)

// MemFS is an in-memory filesystem backend. It backs unit tests, the
// JBOS baseline servers, and (wrapped by SimFS) the simulated
// appliance.
type MemFS struct {
	mu    sync.RWMutex
	clock sim.Clock
	root  *memNode
	total int64
	used  int64
}

type memNode struct {
	name     string
	isDir    bool
	owner    string
	modTime  time.Duration
	data     []byte
	children map[string]*memNode
}

// NewMemFS returns an empty filesystem with the given capacity. A nil
// clock uses a real clock for modification times.
func NewMemFS(clock sim.Clock, capacity int64) *MemFS {
	if clock == nil {
		clock = sim.NewRealClock()
	}
	return &MemFS{
		clock: clock,
		root:  &memNode{name: "/", isDir: true, children: make(map[string]*memNode)},
		total: capacity,
	}
}

// lookup walks to the node for a cleaned path.
func (fs *MemFS) lookup(name string) (*memNode, error) {
	name = Clean(name)
	if name == "/" {
		return fs.root, nil
	}
	node := fs.root
	for _, part := range strings.Split(strings.TrimPrefix(name, "/"), "/") {
		if !node.isDir {
			return nil, ErrNotDir
		}
		child, ok := node.children[part]
		if !ok {
			return nil, ErrNotFound
		}
		node = child
	}
	return node, nil
}

// lookupDir walks to the parent directory of a cleaned path.
func (fs *MemFS) lookupDir(name string) (*memNode, string, error) {
	dir, base := Split(name)
	node, err := fs.lookup(dir)
	if err != nil {
		return nil, "", err
	}
	if !node.isDir {
		return nil, "", ErrNotDir
	}
	return node, base, nil
}

// Create implements FS.
func (fs *MemFS) Create(name, owner string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, base, err := fs.lookupDir(name)
	if err != nil {
		return nil, err
	}
	if existing, ok := parent.children[base]; ok {
		if existing.isDir {
			return nil, ErrIsDir
		}
		fs.used -= int64(len(existing.data))
		existing.data = nil
		existing.modTime = fs.clock.Now()
		return &memFile{fs: fs, node: existing, path: Clean(name), writable: true}, nil
	}
	node := &memNode{name: base, owner: owner, modTime: fs.clock.Now()}
	parent.children[base] = node
	return &memFile{fs: fs, node: node, path: Clean(name), writable: true}, nil
}

// Open implements FS.
func (fs *MemFS) Open(name string) (File, error) {
	return fs.open(name, false)
}

// OpenRW implements FS.
func (fs *MemFS) OpenRW(name string) (File, error) {
	return fs.open(name, true)
}

func (fs *MemFS) open(name string, writable bool) (File, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	node, err := fs.lookup(name)
	if err != nil {
		return nil, err
	}
	if node.isDir {
		return nil, ErrIsDir
	}
	return &memFile{fs: fs, node: node, path: Clean(name), writable: writable}, nil
}

// Stat implements FS.
func (fs *MemFS) Stat(name string) (Info, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	node, err := fs.lookup(name)
	if err != nil {
		return Info{}, err
	}
	return fs.infoLocked(Clean(name), node), nil
}

func (fs *MemFS) infoLocked(path string, node *memNode) Info {
	return Info{
		Name:    node.name,
		Path:    path,
		Size:    int64(len(node.data)),
		IsDir:   node.isDir,
		Owner:   node.owner,
		ModTime: node.modTime,
	}
}

// List implements FS.
func (fs *MemFS) List(name string) ([]Info, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	node, err := fs.lookup(name)
	if err != nil {
		return nil, err
	}
	if !node.isDir {
		return nil, ErrNotDir
	}
	dir := Clean(name)
	var out []Info
	for child, n := range node.children {
		p := dir + "/" + child
		if dir == "/" {
			p = "/" + child
		}
		out = append(out, fs.infoLocked(p, n))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Mkdir implements FS.
func (fs *MemFS) Mkdir(name, owner string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, base, err := fs.lookupDir(name)
	if err != nil {
		return err
	}
	if _, ok := parent.children[base]; ok {
		return ErrExists
	}
	parent.children[base] = &memNode{
		name: base, isDir: true, owner: owner,
		modTime:  fs.clock.Now(),
		children: make(map[string]*memNode),
	}
	return nil
}

// Rmdir implements FS.
func (fs *MemFS) Rmdir(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, base, err := fs.lookupDir(name)
	if err != nil {
		return err
	}
	node, ok := parent.children[base]
	if !ok {
		return ErrNotFound
	}
	if !node.isDir {
		return ErrNotDir
	}
	if len(node.children) > 0 {
		return ErrNotEmpty
	}
	delete(parent.children, base)
	return nil
}

// Remove implements FS.
func (fs *MemFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, base, err := fs.lookupDir(name)
	if err != nil {
		return err
	}
	node, ok := parent.children[base]
	if !ok {
		return ErrNotFound
	}
	if node.isDir {
		return ErrIsDir
	}
	fs.used -= int64(len(node.data))
	delete(parent.children, base)
	return nil
}

// Total implements FS.
func (fs *MemFS) Total() int64 { return fs.total }

// Free implements FS.
func (fs *MemFS) Free() int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.total - fs.used
}

// memFile is an open handle on a memNode.
type memFile struct {
	fs       *MemFS
	node     *memNode
	path     string
	writable bool
	closed   bool
}

func (f *memFile) Path() string { return f.path }

func (f *memFile) Size() int64 {
	f.fs.mu.RLock()
	defer f.fs.mu.RUnlock()
	return int64(len(f.node.data))
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.RLock()
	defer f.fs.mu.RUnlock()
	if off >= int64(len(f.node.data)) {
		return 0, errEOF
	}
	n := copy(p, f.node.data[off:])
	if n < len(p) {
		return n, errEOF
	}
	return n, nil
}

func (f *memFile) WriteAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if !f.writable {
		return 0, ErrReadOnly
	}
	end := off + int64(len(p))
	grow := end - int64(len(f.node.data))
	if grow > 0 {
		if f.fs.used+grow > f.fs.total {
			return 0, ErrNoSpace
		}
		f.node.data = append(f.node.data, make([]byte, grow)...)
		f.fs.used += grow
	}
	copy(f.node.data[off:end], p)
	f.node.modTime = f.fs.clock.Now()
	return len(p), nil
}

func (f *memFile) Truncate(n int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if !f.writable {
		return ErrReadOnly
	}
	cur := int64(len(f.node.data))
	switch {
	case n < cur:
		f.node.data = f.node.data[:n]
		f.fs.used -= cur - n
	case n > cur:
		if f.fs.used+n-cur > f.fs.total {
			return ErrNoSpace
		}
		f.node.data = append(f.node.data, make([]byte, n-cur)...)
		f.fs.used += n - cur
	}
	f.node.modTime = f.fs.clock.Now()
	return nil
}

func (f *memFile) Close() error {
	f.closed = true
	return nil
}
