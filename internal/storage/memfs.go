package storage

import (
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nest/internal/bufpool"
	"nest/internal/sim"
)

// ExtentSize is the fixed block size backing MemFS file data. It
// matches protocol.ChunkSize, so extents live in the same 64 KB
// bufpool size class the transfer pumps draw their chunk buffers
// from: blocks freed by Truncate or Remove are recycled into the
// data plane instead of becoming garbage.
const ExtentSize = 64 * 1024

// MemFS is an in-memory filesystem backend. It backs unit tests, the
// JBOS baseline servers, and (wrapped by SimFS) the simulated
// appliance.
//
// Locking is two-tier. mu guards only the namespace tree — the
// children maps walked by lookup/create/remove/list. Each file node
// carries its own RWMutex for data operations, so reads and writes on
// distinct files never contend, and reads on one file overlap each
// other. Space accounting (used) is atomic with reserve/rollback
// semantics, so quota checks on the data path take no lock at all.
//
// Lock ordering: namespace before file, never the reverse. Namespace
// operations that touch file data (Create over an existing file,
// Remove) acquire node.mu while holding fs.mu; data operations
// (ReadAt/WriteAt/Truncate/Size) take only node.mu. No code path
// acquires fs.mu while holding a node lock.
type MemFS struct {
	mu    sync.RWMutex // namespace tree only
	clock sim.Clock
	root  *memNode
	total int64
	used  atomic.Int64 // logical bytes; reserve/rollback, never locked
}

// memNode is one file or directory.
//
// Invariant (files): every allocated extent byte at logical offset
// >= size is zero. Extents are cleared when drawn from the pool, and
// Truncate-shrink re-zeroes the tail of the last kept extent, so
// growth (sparse WriteAt past EOF, Truncate up) never has to zero-fill
// holes — they are already zero.
type memNode struct {
	// Immutable after creation.
	name  string
	isDir bool
	owner string

	// Directory tree, guarded by MemFS.mu.
	children map[string]*memNode

	// File data, guarded by mu. size and modTime are additionally
	// atomic so namespace reads (Stat, List) and Size never block on
	// in-flight data operations.
	mu      sync.RWMutex
	extents []*[]byte
	size    atomic.Int64
	modTime atomic.Int64 // time.Duration since the clock epoch
}

func (n *memNode) setModTime(t time.Duration) { n.modTime.Store(int64(t)) }
func (n *memNode) getModTime() time.Duration  { return time.Duration(n.modTime.Load()) }

// Extent allocator counters, exposed through ExtentStats for the
// observability layer. Package-wide atomics: the extent pool itself
// is shared process state (bufpool), so per-FS attribution would lie
// anyway.
var (
	statExtentAllocs   atomic.Int64
	statExtentRecycles atomic.Int64
)

// ExtentStats reports cumulative extent draws from and returns to the
// buffer pool across all MemFS instances.
func ExtentStats() (allocs, recycles int64) {
	return statExtentAllocs.Load(), statExtentRecycles.Load()
}

// newExtent draws a zeroed block from the shared buffer pool. Pooled
// buffers come back dirty, so clearing here is what maintains the
// zero-beyond-size invariant for sparse holes.
func newExtent() *[]byte {
	statExtentAllocs.Add(1)
	bp := bufpool.Get(ExtentSize)
	clear(*bp)
	return bp
}

// extentsFor returns the extent count covering n logical bytes.
func extentsFor(n int64) int {
	return int((n + ExtentSize - 1) / ExtentSize)
}

// ensureExtents grows the extent slice to cover end logical bytes.
// Caller holds n.mu exclusively.
func (n *memNode) ensureExtents(end int64) {
	for len(n.extents) < extentsFor(end) {
		n.extents = append(n.extents, newExtent())
	}
}

// ensureExtentsForWrite grows the extent slice to cover end logical
// bytes ahead of a copyIn of [off, end). Extents the write fully
// covers are left dirty — copyIn overwrites every byte under the same
// critical section — halving memory traffic on the hot sequential
// path; partially covered extents are cleared to keep the
// zero-beyond-size invariant for the hole below off and the tail
// beyond end. Caller holds n.mu exclusively.
func (n *memNode) ensureExtentsForWrite(off, end int64) {
	for len(n.extents) < extentsFor(end) {
		lo := int64(len(n.extents)) * ExtentSize
		statExtentAllocs.Add(1)
		bp := bufpool.Get(ExtentSize)
		if off > lo || end < lo+ExtentSize {
			clear(*bp)
		}
		n.extents = append(n.extents, bp)
	}
}

// shrink truncates the data to sz logical bytes, recycling whole freed
// extents through the pool and re-zeroing the abandoned tail of the
// last kept extent. Caller holds n.mu exclusively; caller settles the
// used accounting.
func (n *memNode) shrink(sz int64) {
	keep := extentsFor(sz)
	for i := keep; i < len(n.extents); i++ {
		statExtentRecycles.Add(1)
		bufpool.Put(n.extents[i])
		n.extents[i] = nil
	}
	n.extents = n.extents[:keep]
	if rem := sz % ExtentSize; rem != 0 {
		clear((*n.extents[keep-1])[rem:])
	}
	n.size.Store(sz)
}

// copyIn writes p at logical offset off across extent boundaries.
// Caller holds n.mu exclusively and has ensured coverage.
func (n *memNode) copyIn(p []byte, off int64) {
	for len(p) > 0 {
		ext := *n.extents[off/ExtentSize]
		c := copy(ext[off%ExtentSize:], p)
		p = p[c:]
		off += int64(c)
	}
}

// copyOut fills p from logical offset off across extent boundaries.
// Caller holds n.mu (shared suffices) and has bounds-checked [off,
// off+len(p)) against size.
func (n *memNode) copyOut(p []byte, off int64) {
	for len(p) > 0 {
		ext := *n.extents[off/ExtentSize]
		c := copy(p, ext[off%ExtentSize:])
		p = p[c:]
		off += int64(c)
	}
}

// NewMemFS returns an empty filesystem with the given capacity. A nil
// clock uses a real clock for modification times.
func NewMemFS(clock sim.Clock, capacity int64) *MemFS {
	if clock == nil {
		clock = sim.NewRealClock()
	}
	return &MemFS{
		clock: clock,
		root:  &memNode{name: "/", isDir: true, children: make(map[string]*memNode)},
		total: capacity,
	}
}

// reserve atomically claims n logical bytes against capacity, rolling
// the claim back if it would overcommit. It is the only admission
// check on the write path and takes no lock.
func (fs *MemFS) reserve(n int64) error {
	if n <= 0 {
		return nil
	}
	if fs.used.Add(n) > fs.total {
		fs.used.Add(-n)
		return ErrNoSpace
	}
	return nil
}

// release returns n reserved bytes.
func (fs *MemFS) release(n int64) {
	if n > 0 {
		fs.used.Add(-n)
	}
}

// lookup walks to the node for a cleaned path. It iterates path
// segments in place (no per-walk allocation — this runs under the
// namespace lock on every control-plane stat/list). Caller holds
// fs.mu.
func (fs *MemFS) lookup(name string) (*memNode, error) {
	name = Clean(name)
	node := fs.root
	rest := name[1:] // skip the leading "/"; empty for the root itself
	for rest != "" {
		seg := rest
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			seg, rest = rest[:i], rest[i+1:]
		} else {
			rest = ""
		}
		if !node.isDir {
			return nil, ErrNotDir
		}
		child, ok := node.children[seg]
		if !ok {
			return nil, ErrNotFound
		}
		node = child
	}
	return node, nil
}

// lookupDir walks to the parent directory of a cleaned path.
func (fs *MemFS) lookupDir(name string) (*memNode, string, error) {
	dir, base := Split(name)
	node, err := fs.lookup(dir)
	if err != nil {
		return nil, "", err
	}
	if !node.isDir {
		return nil, "", ErrNotDir
	}
	return node, base, nil
}

// Create implements FS.
func (fs *MemFS) Create(name, owner string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, base, err := fs.lookupDir(name)
	if err != nil {
		return nil, err
	}
	if existing, ok := parent.children[base]; ok {
		if existing.isDir {
			return nil, ErrIsDir
		}
		// Truncating rewrite: free the old data under the file lock
		// (namespace→file ordering) so concurrent readers of the old
		// handle see a clean cut, never recycled extents.
		existing.mu.Lock()
		fs.release(existing.size.Load())
		existing.shrink(0)
		existing.mu.Unlock()
		existing.setModTime(fs.clock.Now())
		return &memFile{fs: fs, node: existing, path: Clean(name), writable: true}, nil
	}
	node := &memNode{name: base, owner: owner}
	node.setModTime(fs.clock.Now())
	parent.children[base] = node
	return &memFile{fs: fs, node: node, path: Clean(name), writable: true}, nil
}

// Open implements FS.
func (fs *MemFS) Open(name string) (File, error) {
	return fs.open(name, false)
}

// OpenRW implements FS.
func (fs *MemFS) OpenRW(name string) (File, error) {
	return fs.open(name, true)
}

func (fs *MemFS) open(name string, writable bool) (File, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	node, err := fs.lookup(name)
	if err != nil {
		return nil, err
	}
	if node.isDir {
		return nil, ErrIsDir
	}
	return &memFile{fs: fs, node: node, path: Clean(name), writable: writable}, nil
}

// Stat implements FS.
func (fs *MemFS) Stat(name string) (Info, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	node, err := fs.lookup(name)
	if err != nil {
		return Info{}, err
	}
	return fs.info(Clean(name), node), nil
}

// info snapshots a node's metadata; size and modTime are atomic, so
// only the namespace lock (for tree reachability) is required.
func (fs *MemFS) info(path string, node *memNode) Info {
	return Info{
		Name:    node.name,
		Path:    path,
		Size:    node.size.Load(),
		IsDir:   node.isDir,
		Owner:   node.owner,
		ModTime: node.getModTime(),
	}
}

// List implements FS.
func (fs *MemFS) List(name string) ([]Info, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	node, err := fs.lookup(name)
	if err != nil {
		return nil, err
	}
	if !node.isDir {
		return nil, ErrNotDir
	}
	dir := Clean(name)
	var out []Info
	for child, n := range node.children {
		p := dir + "/" + child
		if dir == "/" {
			p = "/" + child
		}
		out = append(out, fs.info(p, n))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Mkdir implements FS.
func (fs *MemFS) Mkdir(name, owner string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, base, err := fs.lookupDir(name)
	if err != nil {
		return err
	}
	if _, ok := parent.children[base]; ok {
		return ErrExists
	}
	node := &memNode{
		name: base, isDir: true, owner: owner,
		children: make(map[string]*memNode),
	}
	node.setModTime(fs.clock.Now())
	parent.children[base] = node
	return nil
}

// Rmdir implements FS.
func (fs *MemFS) Rmdir(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, base, err := fs.lookupDir(name)
	if err != nil {
		return err
	}
	node, ok := parent.children[base]
	if !ok {
		return ErrNotFound
	}
	if !node.isDir {
		return ErrNotDir
	}
	if len(node.children) > 0 {
		return ErrNotEmpty
	}
	delete(parent.children, base)
	return nil
}

// Remove implements FS.
func (fs *MemFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, base, err := fs.lookupDir(name)
	if err != nil {
		return err
	}
	node, ok := parent.children[base]
	if !ok {
		return ErrNotFound
	}
	if node.isDir {
		return ErrIsDir
	}
	// Free the data under the file lock so in-flight readers finish
	// first; stale open handles then observe an empty file rather than
	// recycled extents.
	node.mu.Lock()
	fs.release(node.size.Load())
	node.shrink(0)
	node.mu.Unlock()
	delete(parent.children, base)
	return nil
}

// Total implements FS.
func (fs *MemFS) Total() int64 { return fs.total }

// Free implements FS.
func (fs *MemFS) Free() int64 { return fs.total - fs.used.Load() }

// memFile is an open handle on a memNode.
type memFile struct {
	fs       *MemFS
	node     *memNode
	path     string
	writable bool
	closed   atomic.Bool
}

func (f *memFile) Path() string { return f.path }

// Size reads the atomic length: no lock, valid even mid-write (a
// concurrent writer publishes size only after its data is in place).
func (f *memFile) Size() int64 { return f.node.size.Load() }

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	if f.closed.Load() {
		return 0, ErrClosed
	}
	f.node.mu.RLock()
	defer f.node.mu.RUnlock()
	size := f.node.size.Load()
	if off >= size {
		return 0, io.EOF
	}
	n := len(p)
	if int64(n) > size-off {
		n = int(size - off)
	}
	f.node.copyOut(p[:n], off)
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memFile) WriteAt(p []byte, off int64) (int, error) {
	if f.closed.Load() {
		return 0, ErrClosed
	}
	if !f.writable {
		return 0, ErrReadOnly
	}
	f.node.mu.Lock()
	defer f.node.mu.Unlock()
	size := f.node.size.Load()
	end := off + int64(len(p))
	if grow := end - size; grow > 0 {
		if err := f.fs.reserve(grow); err != nil {
			return 0, err
		}
		f.node.ensureExtentsForWrite(off, end)
		f.node.size.Store(end)
	}
	f.node.copyIn(p, off)
	f.node.setModTime(f.fs.clock.Now())
	return len(p), nil
}

// WriteRangeTo implements RangeWriterTo: it walks the resident extents
// covering [off, off+n) under the node's read lock and hands each
// fragment slice straight to w — the sink reads extent memory in
// place, with no staging copy. Requests past EOF (or clamped by it)
// report io.EOF after delivering the resident prefix, mirroring
// ReadAt.
//
// Lock-hold discipline: w.Write runs under node.mu.RLock, so a
// concurrent Truncate cannot recycle an extent out from under the
// sink. Other readers of the same file proceed (shared lock); writers
// wait for at most one call's worth of sink writes, so callers bound n
// (the transfer pump uses its chunk size).
func (f *memFile) WriteRangeTo(w io.Writer, off, n int64) (int64, error) {
	if f.closed.Load() {
		return 0, ErrClosed
	}
	if n <= 0 {
		return 0, nil
	}
	f.node.mu.RLock()
	defer f.node.mu.RUnlock()
	size := f.node.size.Load()
	if off >= size {
		return 0, io.EOF
	}
	req := n
	if n > size-off {
		n = size - off
	}
	var written int64
	for written < n {
		pos := off + written
		ext := *f.node.extents[pos/ExtentSize]
		frag := ext[pos%ExtentSize:]
		if rem := n - written; int64(len(frag)) > rem {
			frag = frag[:rem]
		}
		wn, err := w.Write(frag)
		written += int64(wn)
		if err != nil {
			return written, err
		}
		if wn < len(frag) {
			return written, io.ErrShortWrite
		}
	}
	if n < req {
		return written, io.EOF
	}
	return written, nil
}

// ReadRangeFrom implements RangeReaderFrom: it issues r.Read calls
// directly into extent memory at [off, off+limit), one extent fragment
// at a time, growing the file in place. Quota is reserved per fragment
// before the read and the unused remainder released after, so a short
// or failing source never leaves phantom usage; the size is published
// only after the bytes are in place, so concurrent ReadAt never
// observes unwritten extent memory as data. A short source read
// returns early (nil error) rather than blocking the file's write lock
// on a stalled source for more than one fragment.
func (f *memFile) ReadRangeFrom(r io.Reader, off, limit int64) (int64, error) {
	if f.closed.Load() {
		return 0, ErrClosed
	}
	if !f.writable {
		return 0, ErrReadOnly
	}
	if limit <= 0 {
		return 0, nil
	}
	f.node.mu.Lock()
	defer f.node.mu.Unlock()
	var moved int64
	for moved < limit {
		pos := off + moved
		fragEnd := (pos/ExtentSize + 1) * ExtentSize
		if end := off + limit; fragEnd > end {
			fragEnd = end
		}
		size := f.node.size.Load()
		if fragEnd > size {
			if err := f.fs.reserve(fragEnd - size); err != nil {
				f.touch(moved)
				return moved, err
			}
		}
		fresh := len(f.node.extents) // first extent index drawn below
		f.node.ensureExtentsForWrite(pos, fragEnd)
		ext := *f.node.extents[pos/ExtentSize]
		want := fragEnd - pos
		rn, rerr := r.Read(ext[pos%ExtentSize:][:want])
		newEnd := pos + int64(rn)
		if int64(rn) < want && int(pos/ExtentSize) >= fresh {
			// The fragment's extent came from the pool this call and was
			// left dirty for a full overwrite that fell short: re-zero
			// the unwritten tail to keep the zero-beyond-size invariant.
			clear(ext[pos%ExtentSize+int64(rn):])
		}
		if fragEnd > size {
			// Settle the reservation: keep only the growth actually
			// covered by bytes read, release the rest.
			high := newEnd
			if high < size {
				high = size
			}
			f.fs.release(fragEnd - high)
			if newEnd > size {
				f.node.size.Store(newEnd)
			}
		}
		moved += int64(rn)
		if rerr != nil {
			f.touch(moved)
			return moved, rerr
		}
		if int64(rn) < want {
			f.touch(moved)
			return moved, nil
		}
	}
	f.touch(moved)
	return moved, nil
}

// touch updates the modification time if a write moved bytes. Caller
// holds node.mu exclusively.
func (f *memFile) touch(moved int64) {
	if moved > 0 {
		f.node.setModTime(f.fs.clock.Now())
	}
}

func (f *memFile) Truncate(n int64) error {
	if f.closed.Load() {
		return ErrClosed
	}
	if !f.writable {
		return ErrReadOnly
	}
	f.node.mu.Lock()
	defer f.node.mu.Unlock()
	cur := f.node.size.Load()
	switch {
	case n < cur:
		f.node.shrink(n)
		f.fs.release(cur - n)
	case n > cur:
		if err := f.fs.reserve(n - cur); err != nil {
			return err
		}
		f.node.ensureExtents(n)
		f.node.size.Store(n)
	}
	f.node.setModTime(f.fs.clock.Now())
	return nil
}

func (f *memFile) Close() error {
	if f.closed.Swap(true) {
		return ErrClosed
	}
	return nil
}
