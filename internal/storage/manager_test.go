package storage

import (
	"io"
	"testing"
	"time"

	"nest/internal/acl"
	"nest/internal/lots"
	"nest/internal/protocol"
	"nest/internal/quota"
	"nest/internal/sim"
)

// newTestManager builds a manager over memfs with permissive root ACL
// and NeST-managed lots.
func newTestManager(clock sim.Clock) *Manager {
	if clock == nil {
		clock = sim.NewRealClock()
	}
	fs := NewMemFS(clock, 1000*mb)
	table := acl.NewTable(acl.AllRights, "anonymous")
	lotMgr := lots.NewManager(clock, 1000*mb, lots.NeSTManaged, nil)
	return NewManager(fs, table, lotMgr)
}

func req(op protocol.Op, user, path string) *protocol.Request {
	return &protocol.Request{Op: op, User: user, Path: path, Proto: "chirp"}
}

func TestExecuteMkdirListStat(t *testing.T) {
	m := newTestManager(nil)
	if rep := m.Execute(req(protocol.OpMkdir, "john", "/data")); !rep.OK() {
		t.Fatalf("mkdir: %+v", rep)
	}
	if rep := m.Execute(req(protocol.OpMkdir, "john", "/data")); rep.Code != protocol.CodeExists {
		t.Errorf("duplicate mkdir code = %d", rep.Code)
	}
	if rep := m.Execute(req(protocol.OpStat, "john", "/data")); !rep.OK() || !rep.Info.IsDir {
		t.Errorf("stat: %+v", rep)
	}
	rep := m.Execute(req(protocol.OpList, "john", "/"))
	if !rep.OK() || len(rep.Entries) != 1 || rep.Entries[0].Name != "data" {
		t.Errorf("list: %+v", rep)
	}
}

func TestExecutePermissionDenied(t *testing.T) {
	clock := sim.NewRealClock()
	fs := NewMemFS(clock, 1000*mb)
	table := acl.NewTable(acl.Read|acl.Lookup, "anonymous") // no insert at root
	m := NewManager(fs, table, nil)
	if rep := m.Execute(req(protocol.OpMkdir, "john", "/d")); rep.Code != protocol.CodePermission {
		t.Errorf("mkdir without insert = %d", rep.Code)
	}
	if rep := m.Execute(req(protocol.OpList, "john", "/")); !rep.OK() {
		t.Errorf("list with lookup: %+v", rep)
	}
	if rep := m.Execute(req(protocol.OpRemove, "john", "/x")); rep.Code != protocol.CodePermission {
		t.Errorf("remove without delete = %d", rep.Code)
	}
}

func TestACLManipulation(t *testing.T) {
	m := newTestManager(nil)
	m.Execute(req(protocol.OpMkdir, "john", "/priv"))
	r := req(protocol.OpACLSet, "john", "/priv")
	r.ACLUser = "john"
	r.ACLRights = "rlidwa"
	if rep := m.Execute(r); !rep.OK() {
		t.Fatalf("acl_set: %+v", rep)
	}
	// Now only john may act in /priv.
	if rep := m.Execute(req(protocol.OpList, "mary", "/priv")); rep.Code != protocol.CodePermission {
		t.Errorf("mary list = %d", rep.Code)
	}
	g := req(protocol.OpACLGet, "john", "/priv")
	rep := m.Execute(g)
	if !rep.OK() || rep.Rights != "john rlidwa" {
		t.Errorf("acl_get: %+v", rep)
	}
	// Non-admin cannot change the ACL.
	r2 := req(protocol.OpACLSet, "mary", "/priv")
	r2.ACLUser = "mary"
	r2.ACLRights = "rlidwa"
	if rep := m.Execute(r2); rep.Code != protocol.CodePermission {
		t.Errorf("mary acl_set = %d", rep.Code)
	}
}

func TestLotLifecycleViaRequests(t *testing.T) {
	m := newTestManager(nil)
	r := req(protocol.OpLotCreate, "john", "")
	r.LotBytes = 50 * mb
	r.LotDuration = time.Hour
	rep := m.Execute(r)
	if !rep.OK() || rep.Lot == nil || rep.Lot.Capacity != 50*mb {
		t.Fatalf("lot_create: %+v", rep)
	}
	id := rep.Lot.ID
	s := req(protocol.OpLotStatus, "john", "")
	s.LotID = id
	if rep := m.Execute(s); !rep.OK() || rep.Lot.ID != id {
		t.Errorf("lot_status: %+v", rep)
	}
	s.User = "mary"
	if rep := m.Execute(s); rep.Code != protocol.CodePermission {
		t.Errorf("foreign lot_status = %d", rep.Code)
	}
	rel := req(protocol.OpLotRelease, "john", "")
	rel.LotID = id
	if rep := m.Execute(rel); !rep.OK() {
		t.Errorf("lot_release: %+v", rep)
	}
	if rep := m.Execute(s); rep.Code != protocol.CodeNotFound {
		t.Errorf("status after release = %d", rep.Code)
	}
}

func TestStatfsAdvertisement(t *testing.T) {
	m := newTestManager(nil)
	rep := m.Execute(req(protocol.OpStatfs, "x", ""))
	if !rep.OK() || rep.Ad == "" {
		t.Fatalf("statfs: %+v", rep)
	}
	ad := m.Advertisement()
	if v, _ := ad.EvalAttr("Type", nil).StringVal(); v != "Storage" {
		t.Errorf("ad Type = %q", v)
	}
	if v, ok := ad.EvalAttr("TotalDisk", nil).IntVal(); !ok || v != 1000*mb {
		t.Errorf("ad TotalDisk = %d", v)
	}
}

// approvePut drives the put path: approve, write data, finish.
func approvePut(t *testing.T, m *Manager, r *protocol.Request, data []byte) *protocol.Reply {
	t.Helper()
	ticket, rep := m.ApprovePut(r)
	if rep != nil {
		return rep
	}
	n, err := ticket.File.WriteAt(data, r.Offset)
	return m.FinishPut(ticket, int64(n), err)
}

func TestPutGetRoundTrip(t *testing.T) {
	m := newTestManager(nil)
	// Need a lot to write into.
	lc := req(protocol.OpLotCreate, "john", "")
	lc.LotBytes = 10 * mb
	lc.LotDuration = time.Hour
	if rep := m.Execute(lc); !rep.OK() {
		t.Fatal(rep.Message)
	}

	pr := req(protocol.OpPut, "john", "/f.dat")
	pr.Size = 5
	if rep := approvePut(t, m, pr, []byte("hello")); !rep.OK() {
		t.Fatalf("put: %+v", rep)
	}

	gr := req(protocol.OpGet, "john", "/f.dat")
	f, size, errRep := m.ApproveGet(gr)
	if errRep != nil {
		t.Fatalf("get: %+v", errRep)
	}
	defer f.Close()
	if size != 5 {
		t.Errorf("size = %d", size)
	}
	buf := make([]byte, 5)
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Errorf("data = %q", buf)
	}
}

func TestPutWithoutLot(t *testing.T) {
	m := newTestManager(nil)
	pr := req(protocol.OpPut, "john", "/f")
	pr.Size = 100
	rep := approvePut(t, m, pr, make([]byte, 100))
	if rep.Code != protocol.CodeNoLot {
		t.Errorf("put without lot = %d (%s)", rep.Code, rep.Message)
	}
}

func TestPutOverLotTruncates(t *testing.T) {
	m := newTestManager(nil)
	lc := req(protocol.OpLotCreate, "john", "")
	lc.LotBytes = 1 * mb
	lc.LotDuration = time.Hour
	m.Execute(lc)
	// Undeclared-size put that exceeds the lot settles at FinishPut:
	// the file is trimmed back to the guaranteed bytes.
	pr := req(protocol.OpPut, "john", "/big")
	pr.Size = -1
	ticket, errRep := m.ApprovePut(pr)
	if errRep != nil {
		t.Fatalf("approve: %+v", errRep)
	}
	data := make([]byte, 2*mb)
	ticket.File.WriteAt(data, 0)
	rep := m.FinishPut(ticket, 2*mb, nil)
	if rep.Code != protocol.CodeNoSpace {
		t.Errorf("over-lot put = %d", rep.Code)
	}
	info, err := m.FS().Stat("/big")
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != 0 {
		t.Errorf("file size after failed settle = %d, want 0 (nothing charged)", info.Size)
	}
}

func TestPutDeclaredOverLotRejected(t *testing.T) {
	m := newTestManager(nil)
	lc := req(protocol.OpLotCreate, "john", "")
	lc.LotBytes = 1 * mb
	lc.LotDuration = time.Hour
	m.Execute(lc)
	pr := req(protocol.OpPut, "john", "/big")
	pr.Size = 2 * mb
	if _, rep := m.ApprovePut(pr); rep == nil || rep.Code != protocol.CodeNoSpace {
		t.Errorf("declared over-lot put = %+v", rep)
	}
}

func TestRewriteReleasesOldBytes(t *testing.T) {
	m := newTestManager(nil)
	lc := req(protocol.OpLotCreate, "john", "")
	lc.LotBytes = 1 * mb
	lc.LotDuration = time.Hour
	m.Execute(lc)
	pr := req(protocol.OpPut, "john", "/f")
	pr.Size = 512 * 1024
	if rep := approvePut(t, m, pr, make([]byte, 512*1024)); !rep.OK() {
		t.Fatalf("first put: %+v", rep)
	}
	// Rewriting the same file must not double-charge the lot.
	for i := 0; i < 3; i++ {
		if rep := approvePut(t, m, pr, make([]byte, 512*1024)); !rep.OK() {
			t.Fatalf("rewrite %d: %+v", i, rep)
		}
	}
	owned := m.Lots().Owned("john")
	if owned[0].Used != 512*1024 {
		t.Errorf("lot used = %d, want 512K", owned[0].Used)
	}
}

func TestRemoveReleasesLot(t *testing.T) {
	m := newTestManager(nil)
	lc := req(protocol.OpLotCreate, "john", "")
	lc.LotBytes = 1 * mb
	lc.LotDuration = time.Hour
	m.Execute(lc)
	pr := req(protocol.OpPut, "john", "/f")
	pr.Size = 1000
	approvePut(t, m, pr, make([]byte, 1000))
	if rep := m.Execute(req(protocol.OpRemove, "john", "/f")); !rep.OK() {
		t.Fatalf("remove: %+v", rep)
	}
	if used := m.Lots().Owned("john")[0].Used; used != 0 {
		t.Errorf("lot used after remove = %d", used)
	}
}

func TestGetRange(t *testing.T) {
	m := newTestManager(nil)
	lc := req(protocol.OpLotCreate, "john", "")
	lc.LotBytes = 1 * mb
	lc.LotDuration = time.Hour
	m.Execute(lc)
	pr := req(protocol.OpPut, "john", "/f")
	pr.Size = 10
	approvePut(t, m, pr, []byte("0123456789"))
	gr := req(protocol.OpGet, "john", "/f")
	gr.Offset = 4
	gr.Length = 3
	f, size, errRep := m.ApproveGet(gr)
	if errRep != nil {
		t.Fatal(errRep.Message)
	}
	defer f.Close()
	if size != 3 {
		t.Errorf("range size = %d", size)
	}
	// Range beyond EOF clamps.
	gr2 := req(protocol.OpGet, "john", "/f")
	gr2.Offset = 8
	gr2.Length = 100
	f2, size2, _ := m.ApproveGet(gr2)
	defer f2.Close()
	if size2 != 2 {
		t.Errorf("clamped size = %d", size2)
	}
}

func TestGetMissing(t *testing.T) {
	m := newTestManager(nil)
	_, _, rep := m.ApproveGet(req(protocol.OpGet, "john", "/nope"))
	if rep == nil || rep.Code != protocol.CodeNotFound {
		t.Errorf("get missing = %+v", rep)
	}
}

func TestReclaimDeletesFiles(t *testing.T) {
	clock := sim.NewVirtualClock()
	clock.Run(func() {
		m := newTestManager(clock)
		lc := req(protocol.OpLotCreate, "john", "")
		lc.LotBytes = 600 * mb
		lc.LotDuration = time.Minute
		rep := m.Execute(lc)
		pr := req(protocol.OpPut, "john", "/doomed")
		pr.Size = 500 * mb
		pr.LotID = rep.Lot.ID
		ticket, errRep := m.ApprovePut(pr)
		if errRep != nil {
			t.Fatalf("put: %+v", errRep)
		}
		ticket.File.Truncate(500 * mb)
		m.FinishPut(ticket, 500*mb, nil)
		clock.Sleep(2 * time.Minute)
		// A big new lot forces reclamation of john's expired lot, and
		// the storage manager deletes its files.
		lc2 := req(protocol.OpLotCreate, "mary", "")
		lc2.LotBytes = 900 * mb
		lc2.LotDuration = time.Hour
		if rep := m.Execute(lc2); !rep.OK() {
			t.Fatalf("mary's lot: %+v", rep)
		}
		if _, err := m.FS().Stat("/doomed"); err != ErrNotFound {
			t.Errorf("victim file survived reclamation: %v", err)
		}
	})
}

func TestSimFSTiming(t *testing.T) {
	clock := sim.NewVirtualClock()
	clock.Run(func() {
		host := sim.NewHost(clock, sim.LinuxGbE())
		qm := quota.NewManager(false)
		fs := NewSimFS(host, 10000*mb, qm)
		f, err := fs.Create("/f", "o")
		if err != nil {
			t.Fatal(err)
		}
		// Write 1MB: write-back absorbs it, only memcpy time passes.
		start := clock.Now()
		f.WriteAt(make([]byte, mb), 0)
		writeTime := clock.Now() - start
		if writeTime > 50*time.Millisecond {
			t.Errorf("buffered write took %v", writeTime)
		}
		f.Close()

		// Cold read of an uncached file costs disk time.
		fs.Cache().Clear()
		r, _ := fs.Open("/f")
		start = clock.Now()
		buf := make([]byte, mb)
		r.ReadAt(buf, 0)
		coldTime := clock.Now() - start
		// 1MB at 22MB/s is ~45ms plus seek.
		if coldTime < 40*time.Millisecond {
			t.Errorf("cold read too fast: %v", coldTime)
		}
		// Warm read hits the cache: memcpy speed.
		start = clock.Now()
		r.ReadAt(buf, 0)
		warmTime := clock.Now() - start
		if warmTime*5 > coldTime {
			t.Errorf("warm read %v not much faster than cold %v", warmTime, coldTime)
		}
		r.Close()
	})
}

func TestSimFSQuotaSlowdown(t *testing.T) {
	writeTime := func(enabled bool) time.Duration {
		clock := sim.NewVirtualClock()
		var elapsed time.Duration
		clock.Run(func() {
			host := sim.NewHost(clock, sim.LinuxGbE())
			qm := quota.NewManager(enabled)
			fs := NewSimFS(host, 10000*mb, qm)
			f, _ := fs.Create("/w", "o")
			start := clock.Now()
			chunk := make([]byte, mb)
			for i := int64(0); i < 100; i++ { // 100MB, past the dirty limit
				f.WriteAt(chunk, i*mb)
			}
			elapsed = clock.Now() - start
			f.Close()
		})
		return elapsed
	}
	off := writeTime(false)
	on := writeTime(true)
	ratio := float64(on) / float64(off)
	if ratio < 1.3 || ratio > 2.5 {
		t.Errorf("quota slowdown ratio = %.2f (on=%v off=%v), want ~1.9", ratio, on, off)
	}
}

func TestSimFSWarm(t *testing.T) {
	clock := sim.NewVirtualClock()
	clock.Run(func() {
		host := sim.NewHost(clock, sim.LinuxGbE())
		fs := NewSimFS(host, 10000*mb, nil)
		f, _ := fs.Create("/w", "o")
		f.Truncate(mb)
		f.Close()
		fs.Cache().Clear()
		if err := fs.Warm("/w"); err != nil {
			t.Fatal(err)
		}
		if r := fs.Cache().Residency("/w", 0, mb); r != 1 {
			t.Errorf("residency after Warm = %v", r)
		}
		if err := fs.Warm("/missing"); err == nil {
			t.Error("Warm of missing file succeeded")
		}
	})
}

func TestSimFSReadAhead(t *testing.T) {
	clock := sim.NewVirtualClock()
	clock.Run(func() {
		host := sim.NewHost(clock, sim.LinuxGbE())
		fs := NewSimFS(host, 1000*mb, nil)
		f, _ := fs.Create("/ra", "o")
		f.Truncate(4 * mb)
		f.Close()
		fs.Cache().Clear()

		r, _ := fs.Open("/ra")
		defer r.Close()
		buf := make([]byte, 64*1024)
		// First read misses and prefetches DefaultReadAhead bytes.
		r.ReadAt(buf, 0)
		if res := fs.Cache().Residency("/ra", 0, DefaultReadAhead); res < 0.99 {
			t.Errorf("residency after readahead = %v, want ~1", res)
		}
		reads, _ := host.Disk.Stats()
		if reads < DefaultReadAhead {
			t.Errorf("disk read %d bytes, want >= readahead %d", reads, DefaultReadAhead)
		}
		// The next sequential chunk is already resident: no extra disk.
		before := reads
		r.ReadAt(buf, 64*1024)
		reads, _ = host.Disk.Stats()
		if reads != before {
			t.Errorf("sequential read hit the disk: %d -> %d", before, reads)
		}
	})
}

func TestSimFSReadAheadClampsAtEOF(t *testing.T) {
	clock := sim.NewVirtualClock()
	clock.Run(func() {
		host := sim.NewHost(clock, sim.LinuxGbE())
		fs := NewSimFS(host, 1000*mb, nil)
		f, _ := fs.Create("/small", "o")
		f.Truncate(10 * 1024) // 10KB file, far below readahead depth
		f.Close()
		fs.Cache().Clear()
		r, _ := fs.Open("/small")
		defer r.Close()
		buf := make([]byte, 4096)
		r.ReadAt(buf, 0)
		reads, _ := host.Disk.Stats()
		// Prefetch must not exceed the file.
		if reads > 2*64*1024 {
			t.Errorf("disk read %d bytes for a 10KB file", reads)
		}
	})
}
