package storage

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// LocalFS serves the local filesystem rooted at a directory — the
// backend a production NeST runs on (paper §5: "in our current
// implementation, we currently use only the local filesystem").
type LocalFS struct {
	root  string
	total int64
	epoch time.Time
}

// NewLocalFS returns a backend rooted at dir, which must exist.
// capacity is the advertised total space (local filesystems do not
// expose a portable free-space call in the stdlib, so NeST tracks an
// administrative capacity).
func NewLocalFS(dir string, capacity int64) (*LocalFS, error) {
	info, err := os.Stat(dir)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return nil, ErrNotDir
	}
	return &LocalFS{root: dir, total: capacity, epoch: time.Now()}, nil
}

// resolve maps a cleaned virtual path under the root directory.
func (l *LocalFS) resolve(name string) string {
	return filepath.Join(l.root, filepath.FromSlash(Clean(name)))
}

func mapErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, fs.ErrNotExist):
		return ErrNotFound
	case errors.Is(err, fs.ErrExist):
		return ErrExists
	case errors.Is(err, fs.ErrClosed):
		return ErrClosed
	}
	return err
}

// Create implements FS.
func (l *LocalFS) Create(name, owner string) (File, error) {
	if info, err := os.Stat(l.resolve(name)); err == nil && info.IsDir() {
		return nil, ErrIsDir
	}
	f, err := os.OpenFile(l.resolve(name), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, mapErr(err)
	}
	return &localFile{f: f, path: Clean(name), writable: true}, nil
}

// Open implements FS.
func (l *LocalFS) Open(name string) (File, error) {
	f, err := os.Open(l.resolve(name))
	if err != nil {
		return nil, mapErr(err)
	}
	if info, err := f.Stat(); err == nil && info.IsDir() {
		f.Close()
		return nil, ErrIsDir
	}
	return &localFile{f: f, path: Clean(name)}, nil
}

// OpenRW implements FS.
func (l *LocalFS) OpenRW(name string) (File, error) {
	f, err := os.OpenFile(l.resolve(name), os.O_RDWR, 0)
	if err != nil {
		return nil, mapErr(err)
	}
	return &localFile{f: f, path: Clean(name), writable: true}, nil
}

// Stat implements FS.
func (l *LocalFS) Stat(name string) (Info, error) {
	info, err := os.Stat(l.resolve(name))
	if err != nil {
		return Info{}, mapErr(err)
	}
	return l.info(Clean(name), info), nil
}

func (l *LocalFS) info(path string, info fs.FileInfo) Info {
	name := info.Name()
	if path == "/" {
		name = "/"
	}
	return Info{
		Name:    name,
		Path:    path,
		Size:    info.Size(),
		IsDir:   info.IsDir(),
		ModTime: info.ModTime().Sub(l.epoch),
	}
}

// List implements FS.
func (l *LocalFS) List(name string) ([]Info, error) {
	entries, err := os.ReadDir(l.resolve(name))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, ErrNotFound
		}
		return nil, ErrNotDir
	}
	dir := Clean(name)
	out := make([]Info, 0, len(entries))
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			continue
		}
		p := dir + "/" + e.Name()
		if dir == "/" {
			p = "/" + e.Name()
		}
		out = append(out, l.info(p, info))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Mkdir implements FS.
func (l *LocalFS) Mkdir(name, owner string) error {
	return mapErr(os.Mkdir(l.resolve(name), 0o755))
}

// Rmdir implements FS.
func (l *LocalFS) Rmdir(name string) error {
	p := l.resolve(name)
	info, err := os.Stat(p)
	if err != nil {
		return mapErr(err)
	}
	if !info.IsDir() {
		return ErrNotDir
	}
	if entries, err := os.ReadDir(p); err == nil && len(entries) > 0 {
		return ErrNotEmpty
	}
	return mapErr(os.Remove(p))
}

// Remove implements FS.
func (l *LocalFS) Remove(name string) error {
	p := l.resolve(name)
	info, err := os.Stat(p)
	if err != nil {
		return mapErr(err)
	}
	if info.IsDir() {
		return ErrIsDir
	}
	return mapErr(os.Remove(p))
}

// Total implements FS.
func (l *LocalFS) Total() int64 { return l.total }

// Free implements FS.
func (l *LocalFS) Free() int64 {
	var used int64
	filepath.Walk(l.root, func(_ string, info fs.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			used += info.Size()
		}
		return nil
	})
	free := l.total - used
	if free < 0 {
		free = 0
	}
	return free
}

type localFile struct {
	f        *os.File
	path     string
	writable bool
}

func (f *localFile) Path() string { return f.path }

func (f *localFile) Size() int64 {
	info, err := f.f.Stat()
	if err != nil {
		return 0
	}
	return info.Size()
}

func (f *localFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := f.f.ReadAt(p, off)
	if err != nil && errors.Is(err, fs.ErrClosed) {
		err = ErrClosed
	}
	return n, err
}

func (f *localFile) WriteAt(p []byte, off int64) (int, error) {
	if !f.writable {
		return 0, ErrReadOnly
	}
	n, err := f.f.WriteAt(p, off)
	return n, mapErr(err)
}

func (f *localFile) Truncate(n int64) error {
	if !f.writable {
		return ErrReadOnly
	}
	return mapErr(f.f.Truncate(n))
}

func (f *localFile) Close() error { return mapErr(f.f.Close()) }
