package storage

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nest/internal/bufpool"
)

// DefaultFDCacheSize bounds the open-descriptor cache: read-only
// descriptors of recently closed files are kept so repeated GETs and
// re-opens of hot files skip the open/close syscall pair.
const DefaultFDCacheSize = 64

// DefaultLocalReadAhead is the sequential readahead hint window for
// streaming GETs: when the handoff read loop approaches the frontier
// of previously advised pages, the next window of this many bytes is
// madvised WILLNEED so the kernel stages it while the current chunk
// is on the wire. Sized to a few scheduler quanta.
const DefaultLocalReadAhead int64 = 1 << 20

// LocalFS counters, exposed through LocalFSStats for the observability
// layer. Package-wide atomics, like the extent allocator counters: the
// descriptor cache and data path are process-shared machinery.
var (
	statLocalFDHits      atomic.Int64
	statLocalFDMisses    atomic.Int64
	statLocalFDEvictions atomic.Int64
	statLocalPreads      atomic.Int64
	statLocalPwrites     atomic.Int64
	statLocalFsyncs      atomic.Int64
	statLocalHandoff     atomic.Int64
	statLocalPooled      atomic.Int64
)

// LocalStats is a snapshot of the cumulative LocalFS data-path
// counters across all instances.
type LocalStats struct {
	FDCacheHits      int64 // Opens served from the descriptor cache
	FDCacheMisses    int64 // Opens that paid the open syscall
	FDCacheEvictions int64 // cached descriptors closed by LRU pressure
	Preads           int64 // positioned read syscalls issued
	Pwrites          int64 // positioned write syscalls issued
	Fsyncs           int64 // fsyncs issued by the sync-on-close knob
	HandoffChunks    int64 // range fragments moved through mapped pages
	PooledChunks     int64 // range fragments staged through pooled buffers
}

// LocalFSStats reports the cumulative LocalFS counters.
func LocalFSStats() LocalStats {
	return LocalStats{
		FDCacheHits:      statLocalFDHits.Load(),
		FDCacheMisses:    statLocalFDMisses.Load(),
		FDCacheEvictions: statLocalFDEvictions.Load(),
		Preads:           statLocalPreads.Load(),
		Pwrites:          statLocalPwrites.Load(),
		Fsyncs:           statLocalFsyncs.Load(),
		HandoffChunks:    statLocalHandoff.Load(),
		PooledChunks:     statLocalPooled.Load(),
	}
}

// LocalFS serves the local filesystem rooted at a directory — the
// backend a production NeST runs on (paper §5: "in our current
// implementation, we currently use only the local filesystem").
//
// The data path mirrors the extent-based MemFS architecture:
//
//   - Locking is two-tier with the same lock order (namespace before
//     file, never the reverse). mu guards only the per-path node table;
//     each open file carries its own RWMutex for data operations, so
//     transfers on distinct files never contend and readers of one
//     file overlap each other.
//   - Space accounting is an atomic maintained counter with
//     reserve/rollback semantics, scanned once at mount — Free() is
//     O(1) and allocation-free instead of walking the tree.
//   - The extent-handoff capabilities (RangeWriterTo/RangeReaderFrom)
//     are implemented over a shared page mapping of the file when the
//     platform supports it: the page cache is the extent store, and
//     resident page slices are handed to the sink (or filled from the
//     source) with no staging copy and no per-chunk syscall. Where
//     mapping is unavailable the same loops stage through pooled
//     chunk buffers — still zero allocations per chunk.
//   - Read-only descriptors of closed files are kept in a bounded LRU
//     cache so repeated GETs of hot files skip open/close syscalls.
type LocalFS struct {
	root  string
	total int64
	epoch time.Time

	// mu guards the node table (and the open/create/remove decisions
	// that keep it consistent with the used counter). It is the
	// namespace tier of the two-tier locking; per-file data locks live
	// on the nodes.
	mu    sync.RWMutex
	nodes map[string]*localNode

	used        atomic.Int64 // logical bytes; reserve/rollback, never locked
	syncOnClose atomic.Bool
	readAhead   atomic.Int64

	fds fdCache
}

// localNode is the shared lock-and-size state of one open file. Nodes
// exist only while at least one handle is open; the table entry is
// dropped when the last handle closes, so the table is bounded by the
// open-handle count.
type localNode struct {
	name string

	// refs and unlinked are guarded by LocalFS.mu.
	refs     int
	unlinked bool

	// mu is the per-file data lock; size is additionally atomic so
	// Size/Stat never block on in-flight data operations.
	mu   sync.RWMutex
	size atomic.Int64

	// Page mapping of the file (platform-specific; nil where
	// unsupported). mapped/mapRW/mapBroken are guarded by mu; mapLen
	// mirrors len(mapped) atomically for the lock-free fast check in
	// ensureMapped.
	mapped    []byte
	mapRW     bool
	mapBroken atomic.Bool
	mapLen    atomic.Int64

	// raNext is the readahead frontier: file offset up to which
	// WILLNEED has been advised.
	raNext atomic.Int64
}

// NewLocalFS returns a backend rooted at dir, which must exist.
// capacity is the advertised total space (local filesystems do not
// expose a portable free-space call in the stdlib, so NeST tracks an
// administrative capacity). The tree under dir is walked once to seed
// the maintained used-bytes counter; every later Free() is O(1).
func NewLocalFS(dir string, capacity int64) (*LocalFS, error) {
	info, err := os.Stat(dir)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return nil, ErrNotDir
	}
	l := &LocalFS{
		root:  dir,
		total: capacity,
		epoch: time.Now(),
		nodes: make(map[string]*localNode),
	}
	l.used.Store(scanUsed(dir))
	l.readAhead.Store(DefaultLocalReadAhead)
	l.fds.init(DefaultFDCacheSize)
	return l, nil
}

// scanUsed sums regular-file sizes under root — the one O(tree) pass,
// paid at mount.
func scanUsed(root string) int64 {
	var used int64
	filepath.WalkDir(root, func(_ string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if info, err := d.Info(); err == nil {
			used += info.Size()
		}
		return nil
	})
	return used
}

// SetSyncOnClose toggles the durability knob: when on, writable
// handles fsync before closing so a crash after Close loses nothing.
func (l *LocalFS) SetSyncOnClose(on bool) { l.syncOnClose.Store(on) }

// SetReadAhead overrides the sequential readahead hint window for
// streaming reads (0 disables).
func (l *LocalFS) SetReadAhead(n int64) { l.readAhead.Store(n) }

// SetFDCacheLimit bounds the read-descriptor cache (0 disables it).
func (l *LocalFS) SetFDCacheLimit(n int) { l.fds.setLimit(n) }

// resolve maps a cleaned virtual path under the root directory. Clean
// collapses dot-dot segments against the virtual root before the path
// touches the host filesystem, so hostile names cannot escape it.
func (l *LocalFS) resolve(name string) string {
	return filepath.Join(l.root, filepath.FromSlash(Clean(name)))
}

func mapErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, fs.ErrNotExist):
		return ErrNotFound
	case errors.Is(err, fs.ErrExist):
		return ErrExists
	case errors.Is(err, fs.ErrClosed):
		return ErrClosed
	}
	return err
}

// reserve atomically claims n logical bytes against capacity, rolling
// the claim back if it would overcommit — identical admission
// semantics to MemFS, and the only space check on the write path.
func (l *LocalFS) reserve(n int64) error {
	if n <= 0 {
		return nil
	}
	if l.used.Add(n) > l.total {
		l.used.Add(-n)
		return ErrNoSpace
	}
	return nil
}

// release returns n reserved bytes.
func (l *LocalFS) release(n int64) {
	if n > 0 {
		l.used.Add(-n)
	}
}

// adopt returns the node for a cleaned path, creating it (with the
// given size) on first open and bumping the handle count. Caller holds
// l.mu exclusively.
func (l *LocalFS) adopt(cleaned string, size int64) *localNode {
	if node := l.nodes[cleaned]; node != nil {
		node.refs++
		return node
	}
	_, base := Split(cleaned)
	node := &localNode{name: base, refs: 1}
	node.size.Store(size)
	l.nodes[cleaned] = node
	return node
}

// Create implements FS.
func (l *LocalFS) Create(name, owner string) (File, error) {
	cleaned := Clean(name)
	p := l.resolve(cleaned)
	l.mu.Lock()
	defer l.mu.Unlock()
	if node := l.nodes[cleaned]; node != nil {
		// Truncating rewrite of an open file: cut the data under the
		// file lock (namespace→file ordering) so concurrent readers of
		// old handles see a clean cut.
		node.mu.Lock()
		f, err := os.OpenFile(p, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			node.mu.Unlock()
			return nil, mapErr(err)
		}
		l.release(node.size.Load())
		node.size.Store(0)
		node.raNext.Store(0)
		node.mu.Unlock()
		node.refs++
		return &localFile{fs: l, node: node, f: f, path: cleaned, writable: true}, nil
	}
	var oldSize int64
	if info, err := os.Stat(p); err == nil {
		if info.IsDir() {
			return nil, ErrIsDir
		}
		oldSize = info.Size()
	}
	f, err := os.OpenFile(p, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, mapErr(err)
	}
	l.release(oldSize)
	node := l.adopt(cleaned, 0)
	return &localFile{fs: l, node: node, f: f, path: cleaned, writable: true}, nil
}

// Open implements FS. Hot files hit the descriptor cache and skip the
// open syscall entirely.
func (l *LocalFS) Open(name string) (File, error) {
	cleaned := Clean(name)
	l.mu.Lock()
	defer l.mu.Unlock()
	if f := l.fds.take(cleaned); f != nil {
		statLocalFDHits.Add(1)
		node := l.nodes[cleaned]
		if node == nil {
			info, err := f.Stat()
			if err != nil {
				f.Close()
				return nil, mapErr(err)
			}
			node = l.adopt(cleaned, info.Size())
		} else {
			node.refs++
		}
		return &localFile{fs: l, node: node, f: f, path: cleaned}, nil
	}
	statLocalFDMisses.Add(1)
	f, err := os.Open(l.resolve(cleaned))
	if err != nil {
		return nil, mapErr(err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, mapErr(err)
	}
	if info.IsDir() {
		f.Close()
		return nil, ErrIsDir
	}
	node := l.nodes[cleaned]
	if node == nil {
		node = l.adopt(cleaned, info.Size())
	} else {
		node.refs++
	}
	return &localFile{fs: l, node: node, f: f, path: cleaned}, nil
}

// OpenRW implements FS.
func (l *LocalFS) OpenRW(name string) (File, error) {
	cleaned := Clean(name)
	p := l.resolve(cleaned)
	if info, err := os.Stat(p); err == nil && info.IsDir() {
		return nil, ErrIsDir
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	f, err := os.OpenFile(p, os.O_RDWR, 0)
	if err != nil {
		return nil, mapErr(err)
	}
	node := l.nodes[cleaned]
	if node == nil {
		info, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, mapErr(err)
		}
		node = l.adopt(cleaned, info.Size())
	} else {
		node.refs++
	}
	return &localFile{fs: l, node: node, f: f, path: cleaned, writable: true}, nil
}

// Stat implements FS. For open files the logical size comes from the
// node (atomic, never blocked by in-flight data operations, and never
// exposes a transient handoff pre-extension).
func (l *LocalFS) Stat(name string) (Info, error) {
	cleaned := Clean(name)
	info, err := os.Stat(l.resolve(cleaned))
	if err != nil {
		return Info{}, mapErr(err)
	}
	out := l.info(cleaned, info)
	if !info.IsDir() {
		l.mu.RLock()
		if node := l.nodes[cleaned]; node != nil {
			out.Size = node.size.Load()
		}
		l.mu.RUnlock()
	}
	return out, nil
}

func (l *LocalFS) info(path string, info fs.FileInfo) Info {
	name := info.Name()
	if path == "/" {
		name = "/"
	}
	return Info{
		Name:    name,
		Path:    path,
		Size:    info.Size(),
		IsDir:   info.IsDir(),
		ModTime: info.ModTime().Sub(l.epoch),
	}
}

// List implements FS.
func (l *LocalFS) List(name string) ([]Info, error) {
	entries, err := os.ReadDir(l.resolve(name))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, ErrNotFound
		}
		return nil, ErrNotDir
	}
	dir := Clean(name)
	out := make([]Info, 0, len(entries))
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			continue
		}
		p := dir + "/" + e.Name()
		if dir == "/" {
			p = "/" + e.Name()
		}
		out = append(out, l.info(p, info))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Mkdir implements FS.
func (l *LocalFS) Mkdir(name, owner string) error {
	return mapErr(os.Mkdir(l.resolve(name), 0o755))
}

// Rmdir implements FS.
func (l *LocalFS) Rmdir(name string) error {
	p := l.resolve(name)
	info, err := os.Stat(p)
	if err != nil {
		return mapErr(err)
	}
	if !info.IsDir() {
		return ErrNotDir
	}
	if entries, err := os.ReadDir(p); err == nil && len(entries) > 0 {
		return ErrNotEmpty
	}
	return mapErr(os.Remove(p))
}

// Remove implements FS. Like MemFS, stale open handles observe an
// empty file afterwards (the logical size is cut to zero under the
// file lock), and the path's node and cached descriptor are dropped so
// a recreated file starts fresh.
func (l *LocalFS) Remove(name string) error {
	cleaned := Clean(name)
	p := l.resolve(cleaned)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.fds.invalidate(cleaned)
	if node := l.nodes[cleaned]; node != nil {
		node.mu.Lock()
		if err := os.Remove(p); err != nil {
			node.mu.Unlock()
			return mapErr(err)
		}
		l.release(node.size.Load())
		node.size.Store(0)
		node.mu.Unlock()
		node.unlinked = true
		delete(l.nodes, cleaned)
		return nil
	}
	info, err := os.Stat(p)
	if err != nil {
		return mapErr(err)
	}
	if info.IsDir() {
		return ErrIsDir
	}
	if err := os.Remove(p); err != nil {
		return mapErr(err)
	}
	l.release(info.Size())
	return nil
}

// Total implements FS.
func (l *LocalFS) Total() int64 { return l.total }

// Free implements FS: one atomic load against the maintained counter,
// O(1) and allocation-free regardless of tree size.
func (l *LocalFS) Free() int64 {
	free := l.total - l.used.Load()
	if free < 0 {
		free = 0
	}
	return free
}

// closeHandle settles a handle's node bookkeeping: the node table
// entry drops with the last handle (tearing down the page mapping
// under the file lock so in-flight range operations drain first), and
// read-only descriptors of still-linked files go to the LRU cache
// instead of being closed.
func (l *LocalFS) closeHandle(f *localFile) error {
	l.mu.Lock()
	node := f.node
	node.refs--
	if node.refs == 0 {
		if l.nodes[f.path] == node {
			delete(l.nodes, f.path)
		}
		node.mu.Lock()
		node.munmapLocked()
		node.mu.Unlock()
	}
	cached := false
	if !f.writable && !node.unlinked {
		cached = l.fds.put(f.path, f.f)
	}
	l.mu.Unlock()
	if cached {
		return nil
	}
	return f.f.Close()
}

// localFile is an open handle: a descriptor plus the shared per-path
// node carrying the file's data lock and logical size.
type localFile struct {
	fs       *LocalFS
	node     *localNode
	f        *os.File
	path     string
	writable bool
	closed   atomic.Bool
}

func (f *localFile) Path() string { return f.path }

// Size reads the atomic logical length: no lock, no fstat syscall.
func (f *localFile) Size() int64 { return f.node.size.Load() }

func (f *localFile) ReadAt(p []byte, off int64) (int, error) {
	if f.closed.Load() {
		return 0, ErrClosed
	}
	f.node.mu.RLock()
	defer f.node.mu.RUnlock()
	size := f.node.size.Load()
	if off < 0 || off >= size {
		return 0, io.EOF
	}
	n := len(p)
	if int64(n) > size-off {
		n = int(size - off)
	}
	statLocalPreads.Add(1)
	rn, err := f.f.ReadAt(p[:n], off)
	if err != nil && err != io.EOF {
		return rn, mapErr(err)
	}
	if rn < len(p) {
		return rn, io.EOF
	}
	return rn, nil
}

func (f *localFile) WriteAt(p []byte, off int64) (int, error) {
	if f.closed.Load() {
		return 0, ErrClosed
	}
	if !f.writable {
		return 0, ErrReadOnly
	}
	f.node.mu.Lock()
	defer f.node.mu.Unlock()
	size := f.node.size.Load()
	end := off + int64(len(p))
	if grow := end - size; grow > 0 {
		if err := f.fs.reserve(grow); err != nil {
			return 0, err
		}
	}
	statLocalPwrites.Add(1)
	n, err := f.f.WriteAt(p, off)
	if end > size {
		// Settle the reservation against the bytes that landed.
		newEnd := off + int64(n)
		high := newEnd
		if high < size {
			high = size
		}
		f.fs.release(end - high)
		if newEnd > size {
			f.node.size.Store(newEnd)
		}
	}
	return n, mapErr(err)
}

func (f *localFile) Truncate(n int64) error {
	if f.closed.Load() {
		return ErrClosed
	}
	if !f.writable {
		return ErrReadOnly
	}
	f.node.mu.Lock()
	defer f.node.mu.Unlock()
	cur := f.node.size.Load()
	switch {
	case n > cur:
		if err := f.fs.reserve(n - cur); err != nil {
			return err
		}
		if err := f.f.Truncate(n); err != nil {
			f.fs.release(n - cur)
			return mapErr(err)
		}
	case n < cur:
		if err := f.f.Truncate(n); err != nil {
			return mapErr(err)
		}
		f.fs.release(cur - n)
	}
	f.node.size.Store(n)
	return nil
}

func (f *localFile) Close() error {
	if f.closed.Swap(true) {
		return ErrClosed
	}
	var syncErr error
	if f.writable && f.fs.syncOnClose.Load() {
		statLocalFsyncs.Add(1)
		syncErr = f.f.Sync()
	}
	closeErr := f.fs.closeHandle(f)
	if syncErr != nil {
		return mapErr(syncErr)
	}
	return mapErr(closeErr)
}

// WriteRangeTo implements RangeWriterTo with the same contract as the
// MemFS extent handoff: it walks the resident bytes covering
// [off, off+n) under the file's read lock, handing each extent-sized
// fragment to w — straight from the page mapping when available (no
// staging copy, no read syscall), otherwise through a pooled chunk
// buffer. Requests past EOF (or clamped by it) report io.EOF after
// delivering the resident prefix, mirroring ReadAt.
//
// Lock-hold discipline: w.Write runs under the file's read lock, so a
// concurrent Truncate cannot cut pages out from under the sink (the
// clamp to the locked-in size keeps every handed-out slice within the
// file). Callers bound n for preemption granularity, exactly as on
// MemFS.
func (f *localFile) WriteRangeTo(w io.Writer, off, n int64) (int64, error) {
	if f.closed.Load() {
		return 0, ErrClosed
	}
	if n <= 0 {
		return 0, nil
	}
	f.node.ensureMapped(f.f, f.writable, off+n)
	f.node.mu.RLock()
	defer f.node.mu.RUnlock()
	size := f.node.size.Load()
	if off >= size {
		return 0, io.EOF
	}
	req := n
	if n > size-off {
		n = size - off
	}
	f.maybeReadahead(off, n, size)
	var written int64
	var err error
	if m := f.node.mapped; int64(len(m)) >= off+n {
		written, err = writeRangeFrom(w, m[:off+n], off)
	} else {
		written, err = f.writeRangeStaged(w, off, n)
	}
	if err != nil {
		return written, err
	}
	if n < req {
		return written, io.EOF
	}
	return written, nil
}

// maybeReadahead advances the WILLNEED frontier ahead of a sequential
// read at [off, off+n). The frontier is advanced with a CAS so
// concurrent readers advise each window once; non-sequential access
// (far behind the frontier) is left to the kernel's own heuristics.
// Purely a hint: failures are ignored and the data path is unchanged.
func (f *localFile) maybeReadahead(off, n, size int64) {
	window := f.fs.readAhead.Load()
	if window <= 0 {
		return
	}
	m := f.node.mapped
	if m == nil {
		return
	}
	end := off + n
	for {
		next := f.node.raNext.Load()
		if end+window <= next || end < next-2*window {
			return
		}
		target := end + window
		if target > size {
			target = size
		}
		if t := int64(len(m)); target > t {
			target = t
		}
		if target <= next {
			return
		}
		if f.node.raNext.CompareAndSwap(next, target) {
			lo := next
			if lo < off {
				lo = off
			}
			if lo < target {
				adviseWillNeed(m, lo, target)
			}
			return
		}
	}
}

// writeRangeFrom hands data[off:] to w in extent-aligned fragments, so
// sinks observe the identical Write call sequence as the MemFS extent
// walk (protocol framing like MODE E emits one block per Write).
func writeRangeFrom(w io.Writer, data []byte, off int64) (int64, error) {
	var written int64
	end := int64(len(data))
	for pos := off; pos < end; {
		fragEnd := (pos/ExtentSize + 1) * ExtentSize
		if fragEnd > end {
			fragEnd = end
		}
		wn, err := w.Write(data[pos:fragEnd])
		written += int64(wn)
		pos += int64(wn)
		if err != nil {
			return written, err
		}
		if pos < fragEnd {
			return written, io.ErrShortWrite
		}
		statLocalHandoff.Add(1)
	}
	return written, nil
}

// writeRangeStaged is the portable fallback: pread each extent-aligned
// fragment into a pooled chunk buffer and hand that to w. Zero
// allocations per chunk at steady state.
func (f *localFile) writeRangeStaged(w io.Writer, off, n int64) (int64, error) {
	bp := bufpool.Get(ExtentSize)
	defer bufpool.Put(bp)
	buf := *bp
	var written int64
	for written < n {
		pos := off + written
		fragEnd := (pos/ExtentSize + 1) * ExtentSize
		if end := off + n; fragEnd > end {
			fragEnd = end
		}
		want := int(fragEnd - pos)
		statLocalPreads.Add(1)
		rn, rerr := f.f.ReadAt(buf[:want], pos)
		if rn > 0 {
			wn, werr := w.Write(buf[:rn])
			written += int64(wn)
			if werr != nil {
				return written, werr
			}
			if wn < rn {
				return written, io.ErrShortWrite
			}
			statLocalPooled.Add(1)
		}
		if rerr != nil && rerr != io.EOF {
			return written, mapErr(rerr)
		}
		if rn < want {
			// The file is shorter than the locked-in logical size —
			// possible only under external modification; surface EOF.
			return written, io.EOF
		}
	}
	return written, nil
}

// ReadRangeFrom implements RangeReaderFrom with the MemFS contract: it
// issues r.Read calls directly into the file's pages at
// [off, off+limit), one extent-aligned fragment at a time, growing the
// file in place. Capacity is reserved per fragment before the read and
// the unused remainder released after (a short or failing source never
// leaves phantom usage); the logical size is published only after the
// bytes are in place; a short source read returns early with a nil
// error so the file's write lock is held for at most one fragment per
// stall. When the page mapping is unavailable the fragment stages
// through a pooled buffer and lands via pwrite.
func (f *localFile) ReadRangeFrom(r io.Reader, off, limit int64) (int64, error) {
	if f.closed.Load() {
		return 0, ErrClosed
	}
	if !f.writable {
		return 0, ErrReadOnly
	}
	if limit <= 0 {
		return 0, nil
	}
	f.node.mu.Lock()
	defer f.node.mu.Unlock()
	f.node.remapLocked(f.f, true, off+limit)
	var bp *[]byte
	defer func() {
		if bp != nil {
			bufpool.Put(bp)
		}
	}()
	var moved int64
	for moved < limit {
		pos := off + moved
		fragEnd := (pos/ExtentSize + 1) * ExtentSize
		if end := off + limit; fragEnd > end {
			fragEnd = end
		}
		size := f.node.size.Load()
		if fragEnd > size {
			if err := f.fs.reserve(fragEnd - size); err != nil {
				return moved, err
			}
		}
		var rn int
		var rerr error
		if m := f.node.mapped; f.node.mapRW && int64(len(m)) >= fragEnd {
			// Zero-copy fill: extend the file so the pages are backed,
			// then read straight into the mapping.
			if fragEnd > size {
				if err := f.f.Truncate(fragEnd); err != nil {
					f.fs.release(fragEnd - size)
					return moved, mapErr(err)
				}
			}
			rn, rerr = r.Read(m[pos:fragEnd])
			newEnd := pos + int64(rn)
			if fragEnd > size {
				// Settle: keep only the growth covered by bytes read,
				// shrink the file back over the unread tail.
				high := newEnd
				if high < size {
					high = size
				}
				if high < fragEnd {
					f.f.Truncate(high)
				}
				f.fs.release(fragEnd - high)
				if newEnd > size {
					f.node.size.Store(newEnd)
				}
			}
			if rn > 0 {
				statLocalHandoff.Add(1)
			}
		} else {
			if bp == nil {
				bp = bufpool.Get(ExtentSize)
			}
			want := int(fragEnd - pos)
			rn, rerr = r.Read((*bp)[:want])
			var wn int
			var werr error
			if rn > 0 {
				statLocalPwrites.Add(1)
				wn, werr = f.f.WriteAt((*bp)[:rn], pos)
			}
			newEnd := pos + int64(wn)
			if fragEnd > size {
				high := newEnd
				if high < size {
					high = size
				}
				f.fs.release(fragEnd - high)
				if newEnd > size {
					f.node.size.Store(newEnd)
				}
			}
			if werr != nil {
				return moved + int64(wn), mapErr(werr)
			}
			if wn > 0 {
				statLocalPooled.Add(1)
			}
			rn = wn
		}
		moved += int64(rn)
		if rerr != nil {
			return moved, rerr
		}
		if pos+int64(rn) < fragEnd {
			return moved, nil
		}
	}
	return moved, nil
}
