//go:build linux

package storage

import (
	"math"
	"os"
	"syscall"
)

// On Linux the LocalFS handoff path maps the file MAP_SHARED and moves
// bytes through the mapping: the kernel page cache *is* the extent
// store, reads hand resident page slices straight to the sink, and
// writes land source bytes directly in the pages the kernel will write
// back. Compared to the staged path this removes one memcpy and one
// syscall per 64 KiB chunk — the same two costs the MemFS extent
// handoff removed from the wire path in PR 5.
//
// MAP_SHARED is coherent with pread/pwrite on the same file, so the
// mapped and staged paths can interleave freely (a handle whose
// mapping failed stages through pooled buffers against the same
// bytes). SIGBUS is impossible by construction: every access through
// the mapping is clamped to the node's logical size under the file
// lock, and the write path ftruncate-extends the file before touching
// new pages.

// maxMapBytes caps a single file mapping; files larger than this fall
// back to the staged path rather than exhausting address space.
const maxMapBytes = int64(1) << 40

// ensureMapped makes sure the node's mapping covers [0, end) if it
// can, taking the file lock only when the mapping must grow. Called
// lockless from the read path; mapLen mirrors len(mapped) atomically
// for the fast check.
func (n *localNode) ensureMapped(f *os.File, writable bool, end int64) {
	if n.mapLen.Load() >= end || n.mapBroken.Load() {
		return
	}
	n.mu.Lock()
	n.remapLocked(f, writable, end)
	n.mu.Unlock()
}

// remapLocked (re)establishes the mapping to cover [0, end). Caller
// holds n.mu exclusively. Growth is geometric and extent-rounded so a
// streaming transfer remaps O(log size) times, and the whole current
// file is mapped eagerly so readahead hints can run ahead of the
// transfer. A writable caller gets PROT_WRITE; a read-only caller
// growing an existing RW mapping cannot (the descriptor lacks write
// permission), so the mapping downgrades and the next write op remaps
// RW through its own read-write descriptor. mmap failure (e.g. ENOMEM,
// or a filesystem without shared mappings) marks the node broken and
// the handle falls back to staged I/O permanently.
func (n *localNode) remapLocked(f *os.File, writable bool, end int64) {
	if n.mapBroken.Load() || end <= 0 {
		return
	}
	cur := int64(len(n.mapped))
	if cur >= end && (n.mapRW || !writable) {
		return
	}
	target := end
	if s := n.size.Load(); target < s {
		target = s
	}
	if target < 2*cur {
		target = 2 * cur
	}
	target = (target + ExtentSize - 1) / ExtentSize * ExtentSize
	if target < cur {
		target = cur
	}
	if target > maxMapBytes || target > int64(math.MaxInt) {
		n.mapBroken.Store(true)
		return
	}
	prot := syscall.PROT_READ
	if writable {
		prot |= syscall.PROT_WRITE
	}
	m, err := syscall.Mmap(int(f.Fd()), 0, int(target), prot, syscall.MAP_SHARED)
	if err != nil {
		n.mapBroken.Store(true)
		return
	}
	if n.mapped != nil {
		syscall.Munmap(n.mapped)
	}
	n.mapped = m
	n.mapRW = writable
	n.mapLen.Store(int64(len(m)))
}

// munmapLocked tears down the mapping. Caller holds n.mu exclusively,
// so in-flight range operations have drained.
func (n *localNode) munmapLocked() {
	if n.mapped == nil {
		return
	}
	syscall.Munmap(n.mapped)
	n.mapped = nil
	n.mapRW = false
	n.mapLen.Store(0)
}

// pageMask caches the VM page size for aligning madvise ranges.
var pageMask = func() int64 { return int64(os.Getpagesize() - 1) }()

// adviseWillNeed hints the kernel to stage m[lo:hi) — the readahead
// window for a streaming GET. Best-effort: alignment is fixed up and
// errors ignored.
func adviseWillNeed(m []byte, lo, hi int64) {
	lo &^= pageMask
	if lo < 0 || hi <= lo || hi > int64(len(m)) {
		return
	}
	syscall.Madvise(m[lo:hi], syscall.MADV_WILLNEED)
}
