// Package storage implements NeST's storage manager (paper §5): it
// virtualizes the physical storage namespace behind a filesystem
// interface with pluggable backends (in-memory, local disk, simulated
// disk), executes non-transfer requests synchronously, enforces access
// control, and manages guaranteed storage space in the form of lots.
package storage

import (
	"errors"
	"io"
	"path"
	"strings"
	"time"
)

// Errors reported by filesystem backends.
var (
	ErrNotFound = errors.New("storage: no such file or directory")
	ErrExists   = errors.New("storage: file exists")
	ErrNotDir   = errors.New("storage: not a directory")
	ErrIsDir    = errors.New("storage: is a directory")
	ErrNotEmpty = errors.New("storage: directory not empty")
	ErrNoSpace  = errors.New("storage: no space left on device")
	ErrReadOnly = errors.New("storage: file opened read-only")
	ErrClosed   = errors.New("storage: file already closed")
)

// Info describes a file or directory.
type Info struct {
	Name    string // base name
	Path    string // full cleaned path
	Size    int64
	IsDir   bool
	Owner   string
	ModTime time.Duration
}

// File is an open file supporting random access, as required by
// block-based protocols (NFS).
type File interface {
	io.ReaderAt
	io.WriterAt
	io.Closer
	// Size returns the current length.
	Size() int64
	// Truncate sets the length to n.
	Truncate(n int64) error
	// Path returns the file's cleaned path.
	Path() string
}

// FS is the virtualized physical storage interface. Paths are
// slash-separated and rooted at "/"; backends clean them internally.
type FS interface {
	// Create makes (or truncates) a file owned by owner, open for
	// read/write.
	Create(name, owner string) (File, error)
	// Open opens an existing file for reading (writes fail).
	Open(name string) (File, error)
	// OpenRW opens an existing file for reading and writing.
	OpenRW(name string) (File, error)
	// Stat describes a file or directory.
	Stat(name string) (Info, error)
	// List returns directory entries sorted by name.
	List(name string) ([]Info, error)
	// Mkdir creates a directory (parents must exist).
	Mkdir(name, owner string) error
	// Rmdir removes an empty directory.
	Rmdir(name string) error
	// Remove deletes a file.
	Remove(name string) error
	// Total and Free report capacity in bytes.
	Total() int64
	Free() int64
}

// Clean canonicalizes a client-supplied path to an absolute,
// dot-dot-free form, preventing escape from the served namespace.
func Clean(name string) string {
	if !strings.HasPrefix(name, "/") {
		name = "/" + name
	}
	return path.Clean(name)
}

// Split returns the parent directory and base name of a cleaned path.
func Split(name string) (dir, base string) {
	name = Clean(name)
	dir, base = path.Split(name)
	if dir != "/" {
		dir = strings.TrimSuffix(dir, "/")
	}
	if base == "" {
		base = "/"
	}
	return dir, base
}
