package storage

// Range describes one stripe of a striped transfer: the byte span
// [Off, Off+N) of the file it moves.
type Range struct {
	Off int64
	N   int64
}

// PartitionStripes splits the n-byte span starting at off into at most
// w contiguous ranges for a striped transfer. Every internal boundary
// falls on an ExtentSize multiple relative to off, so no stripe
// straddles an extent and — with the pump's default chunk size equal to
// ExtentSize — every stripe moves whole chunks except the final
// stripe's tail. That alignment is what lets a striped transfer charge
// the scheduler byte-identically to a single-pump transfer (package
// transfer's equivalence suite).
//
// Spans smaller than two extents, and w < 2, yield a single range:
// striping cannot help when there is less than one extent per stripe.
func PartitionStripes(off, n int64, w int) []Range {
	if n <= 0 {
		return nil
	}
	extents := n / ExtentSize // whole extents in the span
	if int64(w) > extents {
		w = int(extents)
	}
	if w < 2 {
		return []Range{{Off: off, N: n}}
	}
	base := extents / int64(w)
	extra := extents % int64(w)
	out := make([]Range, 0, w)
	cur := off
	for i := 0; i < w; i++ {
		ext := base
		if int64(i) < extra {
			ext++
		}
		length := ext * ExtentSize
		if i == w-1 {
			// The last stripe absorbs the sub-extent tail.
			length = off + n - cur
		}
		out = append(out, Range{Off: cur, N: length})
		cur += length
	}
	return out
}
