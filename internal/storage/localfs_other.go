//go:build !linux

package storage

import "os"

// Portable stubs: without a shared page mapping the LocalFS range
// operations stage every fragment through pooled chunk buffers —
// still zero allocations per chunk, just one extra copy and syscall.

func (n *localNode) ensureMapped(f *os.File, writable bool, end int64) {}

func (n *localNode) remapLocked(f *os.File, writable bool, end int64) {}

func (n *localNode) munmapLocked() {}

func adviseWillNeed(m []byte, lo, hi int64) {}
