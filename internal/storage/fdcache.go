package storage

import (
	"container/list"
	"os"
	"sync"
)

// fdCache is a bounded LRU of read-only descriptors for recently
// closed files. Repeated GETs of a hot file re-use the descriptor
// instead of paying an open/close syscall pair per request. Entries
// are invalidated on Remove/Create so a cached descriptor never
// outlives the file it named.
//
// The cache has its own lock but is only ever called under LocalFS.mu
// (lock order: namespace, then cache) so take/put/invalidate serialize
// with the namespace operations that decide descriptor validity.
type fdCache struct {
	mu      sync.Mutex
	limit   int
	order   *list.List               // front = most recent; values are *fdEntry
	entries map[string]*list.Element // keyed by cleaned virtual path
}

type fdEntry struct {
	path string
	f    *os.File
}

func (c *fdCache) init(limit int) {
	c.limit = limit
	c.order = list.New()
	c.entries = make(map[string]*list.Element)
}

// setLimit re-bounds the cache, evicting down to the new limit.
func (c *fdCache) setLimit(limit int) {
	c.mu.Lock()
	c.limit = limit
	evicted := c.evictOverLocked()
	c.mu.Unlock()
	closeAll(evicted)
}

// take removes and returns the cached descriptor for path, or nil.
func (c *fdCache) take(path string) *os.File {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[path]
	if !ok {
		return nil
	}
	delete(c.entries, path)
	c.order.Remove(el)
	return el.Value.(*fdEntry).f
}

// put offers a read-only descriptor to the cache. It reports whether
// the cache took ownership; when false the caller must close f.
// A second descriptor for the same path replaces the first.
func (c *fdCache) put(path string, f *os.File) bool {
	c.mu.Lock()
	if c.limit <= 0 {
		c.mu.Unlock()
		return false
	}
	var displaced []*os.File
	if el, ok := c.entries[path]; ok {
		displaced = append(displaced, el.Value.(*fdEntry).f)
		c.order.Remove(el)
	}
	c.entries[path] = c.order.PushFront(&fdEntry{path: path, f: f})
	displaced = append(displaced, c.evictOverLocked()...)
	c.mu.Unlock()
	closeAll(displaced)
	return true
}

// invalidate drops any cached descriptor for path.
func (c *fdCache) invalidate(path string) {
	c.mu.Lock()
	el, ok := c.entries[path]
	if ok {
		delete(c.entries, path)
		c.order.Remove(el)
	}
	c.mu.Unlock()
	if ok {
		el.Value.(*fdEntry).f.Close()
	}
}

// evictOverLocked trims LRU entries beyond the limit, returning the
// displaced descriptors for the caller to close outside the lock.
func (c *fdCache) evictOverLocked() []*os.File {
	var out []*os.File
	for c.order.Len() > c.limit {
		el := c.order.Back()
		entry := el.Value.(*fdEntry)
		delete(c.entries, entry.path)
		c.order.Remove(el)
		out = append(out, entry.f)
		statLocalFDEvictions.Add(1)
	}
	return out
}

func closeAll(fs []*os.File) {
	for _, f := range fs {
		f.Close()
	}
}
