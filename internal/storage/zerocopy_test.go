package storage

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
)

// patternData returns n deterministic non-trivial bytes.
func patternData(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	p := make([]byte, n)
	rng.Read(p)
	return p
}

// readBack reads the whole file through ReadAt.
func readBack(t *testing.T, f File) []byte {
	t.Helper()
	out := make([]byte, f.Size())
	if len(out) == 0 {
		return out
	}
	if _, err := f.ReadAt(out, 0); err != nil && err != io.EOF {
		t.Fatalf("ReadAt: %v", err)
	}
	return out
}

// zcBackends returns each backend whose range-handoff data path is
// under test, built with the given capacity. Every contract pinned
// here must hold identically for the in-memory extent store and the
// disk-backed LocalFS.
func zcBackends(t *testing.T, capacity int64) map[string]FS {
	t.Helper()
	local, err := NewLocalFS(t.TempDir(), capacity)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]FS{
		"memfs":   NewMemFS(nil, capacity),
		"localfs": local,
	}
}

func TestWriteRangeToBasic(t *testing.T) {
	for name, fsys := range zcBackends(t, 1<<24) {
		t.Run(name, func(t *testing.T) {
			f, err := fsys.Create("/f", "u")
			if err != nil {
				t.Fatal(err)
			}
			// Span several extents with a non-aligned length.
			data := patternData(3*ExtentSize+777, 1)
			if _, err := f.WriteAt(data, 0); err != nil {
				t.Fatal(err)
			}

			rt := f.(RangeWriterTo)
			var sink bytes.Buffer
			// Walk in odd-sized chunks that straddle extent boundaries.
			var off int64
			for {
				n, err := rt.WriteRangeTo(&sink, off, 100_000)
				off += n
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatalf("WriteRangeTo: %v", err)
				}
			}
			if !bytes.Equal(sink.Bytes(), data) {
				t.Fatalf("handoff read mismatch: got %d bytes, want %d", sink.Len(), len(data))
			}

			// Past EOF reports io.EOF with nothing delivered.
			if n, err := rt.WriteRangeTo(&sink, int64(len(data)), 10); n != 0 || err != io.EOF {
				t.Fatalf("WriteRangeTo past EOF = (%d, %v), want (0, EOF)", n, err)
			}
		})
	}
}

// shortSink accepts at most cap bytes total, then errors.
type shortSink struct {
	bytes.Buffer
	budget int
	err    error
}

func (s *shortSink) Write(p []byte) (int, error) {
	if len(p) > s.budget {
		return 0, s.err
	}
	s.budget -= len(p)
	return s.Buffer.Write(p)
}

func TestWriteRangeToSinkError(t *testing.T) {
	for name, fsys := range zcBackends(t, 1<<24) {
		t.Run(name, func(t *testing.T) {
			f, _ := fsys.Create("/f", "u")
			data := patternData(2*ExtentSize, 2)
			f.WriteAt(data, 0)

			boom := errors.New("boom")
			sink := &shortSink{budget: ExtentSize, err: boom}
			n, err := f.(RangeWriterTo).WriteRangeTo(sink, 0, int64(len(data)))
			if err != boom {
				t.Fatalf("err = %v, want boom", err)
			}
			if n != ExtentSize {
				t.Fatalf("delivered %d bytes before sink error, want %d", n, ExtentSize)
			}
		})
	}
}

func TestReadRangeFromBasic(t *testing.T) {
	for name, fsys := range zcBackends(t, 1<<24) {
		t.Run(name, func(t *testing.T) {
			f, _ := fsys.Create("/f", "u")
			data := patternData(2*ExtentSize+4096, 3)

			rf := f.(RangeReaderFrom)
			src := bytes.NewReader(data)
			var off int64
			for {
				n, err := rf.ReadRangeFrom(src, off, 100_000)
				off += n
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatalf("ReadRangeFrom: %v", err)
				}
			}
			if off != int64(len(data)) {
				t.Fatalf("moved %d bytes, want %d", off, len(data))
			}
			if got := readBack(t, f); !bytes.Equal(got, data) {
				t.Fatal("handoff write mismatch")
			}
			if used := fsys.Total() - fsys.Free(); used != int64(len(data)) {
				t.Fatalf("used = %d, want %d", used, len(data))
			}
		})
	}
}

func TestReadRangeFromSparseOffset(t *testing.T) {
	for name, fsys := range zcBackends(t, 1<<24) {
		t.Run(name, func(t *testing.T) {
			f, _ := fsys.Create("/f", "u")
			data := patternData(ExtentSize+100, 4)
			off := int64(ExtentSize + ExtentSize/2) // hole below, unaligned start

			n, err := f.(RangeReaderFrom).ReadRangeFrom(bytes.NewReader(data), off, int64(len(data)))
			if err != nil && err != io.EOF {
				t.Fatal(err)
			}
			if n != int64(len(data)) {
				t.Fatalf("moved %d, want %d", n, len(data))
			}
			got := readBack(t, f)
			// The hole must read as zeros (zero-beyond-size invariant
			// held for extents drawn dirty from the pool; sparse file
			// holes on disk).
			for i := int64(0); i < off; i++ {
				if got[i] != 0 {
					t.Fatalf("hole byte %d = %d, want 0", i, got[i])
				}
			}
			if !bytes.Equal(got[off:], data) {
				t.Fatal("payload mismatch after sparse handoff write")
			}
		})
	}
}

// dribbleReader returns data in small uneven pieces, forcing short
// fragment reads.
type dribbleReader struct {
	data []byte
	step int
}

func (d *dribbleReader) Read(p []byte) (int, error) {
	if len(d.data) == 0 {
		return 0, io.EOF
	}
	n := d.step
	if n > len(p) {
		n = len(p)
	}
	if n > len(d.data) {
		n = len(d.data)
	}
	copy(p, d.data[:n])
	d.data = d.data[n:]
	return n, nil
}

func TestReadRangeFromShortReads(t *testing.T) {
	for name, fsys := range zcBackends(t, 1<<24) {
		t.Run(name, func(t *testing.T) {
			f, _ := fsys.Create("/f", "u")
			data := patternData(ExtentSize*2+123, 5)
			src := &dribbleReader{data: append([]byte(nil), data...), step: 1000}

			rf := f.(RangeReaderFrom)
			var off int64
			for {
				n, err := rf.ReadRangeFrom(src, off, ExtentSize)
				off += n
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
			}
			if off != int64(len(data)) {
				t.Fatalf("moved %d, want %d", off, len(data))
			}
			if got := readBack(t, f); !bytes.Equal(got, data) {
				t.Fatal("short-read handoff write mismatch")
			}
			// Short reads must not leak stale bytes past the published
			// size: a later Truncate-up sees zeros (dirty pool extents
			// zeroed on MemFS, ftruncate-shrink on LocalFS).
			if err := f.Truncate(int64(len(data)) + 500); err != nil {
				t.Fatal(err)
			}
			tail := make([]byte, 500)
			if _, err := f.ReadAt(tail, int64(len(data))); err != nil && err != io.EOF {
				t.Fatal(err)
			}
			for i, b := range tail {
				if b != 0 {
					t.Fatalf("tail byte %d = %d after truncate-up, want 0", i, b)
				}
			}
		})
	}
}

func TestReadRangeFromQuota(t *testing.T) {
	for name, fsys := range zcBackends(t, ExtentSize) { // capacity: exactly one extent
		t.Run(name, func(t *testing.T) {
			f, _ := fsys.Create("/f", "u")
			data := patternData(3*ExtentSize, 6)

			n, err := f.(RangeReaderFrom).ReadRangeFrom(bytes.NewReader(data), 0, int64(len(data)))
			if !errors.Is(err, ErrNoSpace) {
				t.Fatalf("err = %v, want ErrNoSpace", err)
			}
			if n != ExtentSize {
				t.Fatalf("moved %d before quota stop, want %d", n, ExtentSize)
			}
			// The failed fragment's reservation must have been rolled back.
			if free := fsys.Free(); free != 0 {
				t.Fatalf("free = %d after rollback, want 0", free)
			}
			if got := readBack(t, f); !bytes.Equal(got, data[:ExtentSize]) {
				t.Fatal("prefix mismatch after quota stop")
			}
		})
	}
}

func TestRangeHandoffClosedAndReadOnly(t *testing.T) {
	for name, fsys := range zcBackends(t, 1<<24) {
		t.Run(name, func(t *testing.T) {
			f, _ := fsys.Create("/f", "u")
			f.WriteAt([]byte("hello"), 0)

			ro, _ := fsys.Open("/f")
			if _, err := ro.(RangeReaderFrom).ReadRangeFrom(bytes.NewReader([]byte("x")), 0, 1); err != ErrReadOnly {
				t.Fatalf("read-only handoff write err = %v, want ErrReadOnly", err)
			}

			f.Close()
			if _, err := f.(RangeWriterTo).WriteRangeTo(io.Discard, 0, 5); err != ErrClosed {
				t.Fatalf("closed handoff read err = %v, want ErrClosed", err)
			}
			if _, err := f.(RangeReaderFrom).ReadRangeFrom(bytes.NewReader([]byte("x")), 0, 1); err != ErrClosed {
				t.Fatalf("closed handoff write err = %v, want ErrClosed", err)
			}
		})
	}
}

func TestSectionReaderHandoffAndFallback(t *testing.T) {
	for name, fsys := range zcBackends(t, 1<<24) {
		t.Run(name, func(t *testing.T) {
			f, _ := fsys.Create("/f", "u")
			data := patternData(ExtentSize+999, 7)
			f.WriteAt(data, 0)

			sr := NewSectionReader(f, 100, int64(len(data))-100)
			if !sr.Handoff() {
				t.Fatal("file section should support handoff")
			}
			var sink bytes.Buffer
			n, err := sr.WriteTo(&sink)
			if err != nil {
				t.Fatal(err)
			}
			if n != int64(len(data)-100) || !bytes.Equal(sink.Bytes(), data[100:]) {
				t.Fatalf("WriteTo moved %d bytes, mismatch", n)
			}

			// Section longer than the file ends cleanly, like
			// io.SectionReader under io.Copy.
			sr = NewSectionReader(f, 0, int64(len(data))+5000)
			sink.Reset()
			if n, err := sr.WriteTo(&sink); err != nil || n != int64(len(data)) {
				t.Fatalf("over-long section WriteTo = (%d, %v)", n, err)
			}
		})
	}
}

func TestOffsetWriterHandoff(t *testing.T) {
	for name, fsys := range zcBackends(t, 1<<24) {
		t.Run(name, func(t *testing.T) {
			f, _ := fsys.Create("/f", "u")
			data := patternData(2*ExtentSize+50, 8)

			ow := NewOffsetWriter(f, 10)
			if !ow.Handoff() {
				t.Fatal("file offset writer should support handoff")
			}
			n, err := io.Copy(ow, bytes.NewReader(data)) // hits ReadFrom
			if err != nil || n != int64(len(data)) {
				t.Fatalf("io.Copy via ReadFrom = (%d, %v)", n, err)
			}
			got := readBack(t, f)
			if !bytes.Equal(got[10:], data) {
				t.Fatal("offset handoff write mismatch")
			}
		})
	}
}

// TestWriteRangeToZeroAlloc pins the steady-state claim on both
// backends: handing resident extents (pool extents on MemFS, mapped
// page-cache slices on LocalFS) to a sink allocates nothing.
func TestWriteRangeToZeroAlloc(t *testing.T) {
	for name, fsys := range zcBackends(t, 1<<24) {
		t.Run(name, func(t *testing.T) {
			f, _ := fsys.Create("/f", "u")
			f.WriteAt(patternData(4*ExtentSize, 9), 0)
			rt := f.(RangeWriterTo)

			sweep := func() {
				var off int64
				for off < 4*ExtentSize {
					n, err := rt.WriteRangeTo(io.Discard, off, ExtentSize)
					if err != nil {
						t.Fatal(err)
					}
					off += n
				}
			}
			sweep() // warm: mapping established, readahead frontier advanced
			allocs := testing.AllocsPerRun(50, sweep)
			if allocs >= 1 {
				t.Errorf("WriteRangeTo allocates %v per 4-extent sweep, want 0", allocs)
			}
		})
	}
}
