package storage

import "testing"

func TestPartitionStripes(t *testing.T) {
	const E = ExtentSize
	cases := []struct {
		name string
		off  int64
		n    int64
		w    int
		want []Range
	}{
		{"zero", 0, 0, 4, nil},
		{"single-width", 0, 10 * E, 1, []Range{{0, 10 * E}}},
		{"sub-extent", 0, E - 1, 4, []Range{{0, E - 1}}},
		{"one-extent", 0, E, 4, []Range{{0, E}}},
		{"even", 0, 8 * E, 4, []Range{{0, 2 * E}, {2 * E, 2 * E}, {4 * E, 2 * E}, {6 * E, 2 * E}}},
		{"uneven", 0, 10 * E, 4, []Range{{0, 3 * E}, {3 * E, 3 * E}, {6 * E, 2 * E}, {8 * E, 2 * E}}},
		{"tail", 0, 10*E + 13, 4, []Range{{0, 3 * E}, {3 * E, 3 * E}, {6 * E, 2 * E}, {8 * E, 2*E + 13}}},
		{"width-exceeds-extents", 0, 3*E + 5, 8, []Range{{0, E}, {E, E}, {2 * E, E + 5}}},
		{"offset", 5 * E, 4 * E, 2, []Range{{5 * E, 2 * E}, {7 * E, 2 * E}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := PartitionStripes(c.off, c.n, c.w)
			if len(got) != len(c.want) {
				t.Fatalf("got %v, want %v", got, c.want)
			}
			for i := range got {
				if got[i] != c.want[i] {
					t.Fatalf("range %d: got %v, want %v", i, got, c.want)
				}
			}
			// Invariants: ranges tile [off, off+n) exactly, and every
			// internal boundary is extent-aligned relative to off.
			cur := c.off
			for i, r := range got {
				if r.Off != cur {
					t.Fatalf("range %d not contiguous: off %d, want %d", i, r.Off, cur)
				}
				if i < len(got)-1 && (r.Off+r.N-c.off)%ExtentSize != 0 {
					t.Fatalf("range %d boundary %d not extent-aligned", i, r.Off+r.N)
				}
				cur += r.N
			}
			if len(got) > 0 && cur != c.off+c.n {
				t.Fatalf("ranges end at %d, want %d", cur, c.off+c.n)
			}
		})
	}
}
