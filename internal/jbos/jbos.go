// Package jbos implements the paper's baseline: "Just a Bunch Of
// Servers" (paper §3) — independent single-protocol servers (stand-ins
// for wu-ftpd, Apache, the kernel nfsd and a lone Chirp server) that
// share nothing but the machine. Each JBOS server pumps data directly
// between storage and network with its own unbounded per-connection
// concurrency: there is no common transfer manager, so no cross-
// protocol scheduling, no proportional share and no cache-aware
// reordering is possible — exactly what Figures 3 and 4 compare NeST
// against.
package jbos

import (
	"io"
	"net"
	"sync"

	"nest/internal/protocol"
	"nest/internal/sim"
	"nest/internal/storage"
)

// Server is one native single-protocol server.
type Server struct {
	clock   sim.Clock
	store   *storage.Manager
	handler protocol.Handler
	ln      net.Listener
	mu      sync.Mutex
	// storageMu serializes metadata operations like a simple
	// single-threaded native server would.
	storageMu sync.Mutex
	sessions  map[protocol.Session]bool
	closed    bool
	wg        sync.WaitGroup
	moved     int64
}

// Serve runs handler as an independent native server on ln, reading
// and writing store directly.
func Serve(clock sim.Clock, store *storage.Manager, handler protocol.Handler, ln net.Listener) *Server {
	s := &Server{
		clock:    clock,
		store:    store,
		handler:  handler,
		ln:       ln,
		sessions: make(map[protocol.Session]bool),
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				sess, err := handler.NewSession(conn)
				if err != nil {
					conn.Close()
					return
				}
				s.serveSession(sess)
			}()
		}
	}()
	return s
}

// Proto returns the served protocol class.
func (s *Server) Proto() string { return s.handler.Proto() }

// Addr returns the listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Moved returns total transfer bytes served.
func (s *Server) Moved() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.moved
}

// Close stops the server.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	sessions := make([]protocol.Session, 0, len(s.sessions))
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	s.ln.Close()
	for _, sess := range sessions {
		sess.Close()
	}
	s.wg.Wait()
}

func (s *Server) track(sess protocol.Session) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.sessions[sess] = true
	return true
}

func (s *Server) untrack(sess protocol.Session) {
	s.mu.Lock()
	delete(s.sessions, sess)
	s.mu.Unlock()
}

// serveSession is a stripped-down dispatcher: requests execute
// immediately and transfers copy inline on the session goroutine.
func (s *Server) serveSession(sess protocol.Session) {
	defer sess.Close()
	if !s.track(sess) {
		return
	}
	defer s.untrack(sess)
	for {
		req, err := sess.Next()
		if err != nil {
			return
		}
		req.Proto = sess.Proto()
		req.User = sess.User()
		req.Arrived = s.clock.Now()
		switch {
		case req.Op == protocol.OpQuit:
			sess.Reply(req, protocol.OKReply())
			return
		case req.Op == protocol.OpGet:
			s.get(sess, req)
		case req.Op == protocol.OpPut:
			s.put(sess, req)
		default:
			s.storageMu.Lock()
			rep := s.store.Execute(req)
			s.storageMu.Unlock()
			if err := sess.Reply(req, rep); err != nil {
				return
			}
		}
	}
}

func (s *Server) get(sess protocol.Session, req *protocol.Request) {
	f, size, errRep := s.store.ApproveGet(req)
	if errRep != nil {
		sess.Reply(req, errRep)
		return
	}
	defer f.Close()
	sink, err := sess.SendData(req, size)
	if err != nil {
		return
	}
	// storage.SectionReader's WriteTo hands resident extents straight to
	// the sink (zero-copy) on MemFS/SimFS backends, and falls back to a
	// pooled chunk buffer elsewhere — never io.Copy's fresh 32 KB
	// allocation per transfer.
	n, err := io.Copy(sink, storage.NewSectionReader(f, req.Offset, size))
	sink.Close()
	s.mu.Lock()
	s.moved += n
	s.mu.Unlock()
	rep := protocol.OKReply()
	rep.Size = n
	if err != nil {
		rep = protocol.ErrReply(protocol.CodeInternal, "transfer failed: %v", err)
	}
	sess.Reply(req, rep)
}

func (s *Server) put(sess protocol.Session, req *protocol.Request) {
	ticket, errRep := s.store.ApprovePut(req)
	if errRep != nil {
		sess.Reply(req, errRep)
		return
	}
	src, err := sess.RecvData(req)
	if err != nil {
		s.store.FinishPut(ticket, 0, err)
		return
	}
	var reader io.Reader = src
	if req.Size >= 0 {
		reader = io.LimitReader(src, req.Size)
	}
	// storage.OffsetWriter's ReadFrom fills extents in place from the
	// connection on MemFS/SimFS backends, pooled-buffer copy elsewhere.
	n, err := io.Copy(storage.NewOffsetWriter(ticket.File, req.Offset), reader)
	src.Close()
	s.mu.Lock()
	s.moved += n
	s.mu.Unlock()
	rep := s.store.FinishPut(ticket, n, err)
	sess.Reply(req, rep)
}
