package jbos_test

import (
	"bytes"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"nest/internal/acl"
	"nest/internal/chirp"
	"nest/internal/ftp"
	"nest/internal/gsi"
	"nest/internal/httpx"
	"nest/internal/jbos"
	"nest/internal/lots"
	"nest/internal/nfs"
	"nest/internal/protocol"
	"nest/internal/sim"
	"nest/internal/storage"
)

// startJBOS serves one handler over a fresh native server with shared
// in-memory storage.
func startJBOS(t *testing.T, handler protocol.Handler) (*jbos.Server, *storage.Manager) {
	t.Helper()
	clock := sim.NewRealClock()
	fs := storage.NewMemFS(clock, 1<<30)
	table := acl.NewTable(acl.AllRights, gsi.Anonymous)
	lotMgr := lots.NewManager(clock, 1<<30, lots.NeSTManaged, nil)
	store := storage.NewManager(fs, table, lotMgr)
	lotMgr.Create(gsi.Anonymous, 100<<20, time.Hour)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := jbos.Serve(clock, store, handler, ln)
	t.Cleanup(srv.Close)
	return srv, store
}

func TestHTTPServer(t *testing.T) {
	srv, _ := startJBOS(t, httpx.NewHandler())
	payload := bytes.Repeat([]byte("apache-standin."), 5000)
	req, _ := http.NewRequest(http.MethodPut, "http://"+srv.Addr()+"/f", bytes.NewReader(payload))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	resp, err = http.Get("http://" + srv.Addr() + "/f")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(got, payload) {
		t.Fatal("HTTP round trip mismatch")
	}
	if srv.Moved() != 2*int64(len(payload)) {
		t.Errorf("Moved = %d, want %d", srv.Moved(), 2*len(payload))
	}
}

func TestFTPServer(t *testing.T) {
	srv, _ := startJBOS(t, ftp.NewHandler(ftp.Options{AllowAnon: true}))
	c, err := ftp.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Quit()
	if err := c.LoginAnonymous(); err != nil {
		t.Fatal(err)
	}
	payload := []byte("wu-ftpd standin data")
	if _, err := c.Stor("/f", bytes.NewReader(payload)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := c.Retr("/f", &buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), payload) {
		t.Fatal("FTP round trip mismatch")
	}
}

func TestNFSServer(t *testing.T) {
	srv, _ := startJBOS(t, nfs.NewHandler())
	c, err := nfs.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	root, err := c.Mount("/")
	if err != nil {
		t.Fatal(err)
	}
	fh, err := c.Create(root, "f")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("nfsd!"), 4000)
	if err := c.WriteAll(fh, payload); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadAll(fh)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("NFS round trip mismatch (%d bytes, %v)", len(got), err)
	}
}

func TestChirpServer(t *testing.T) {
	srv, _ := startJBOS(t, chirp.NewHandler(nil, true))
	c, err := chirp.Dial(srv.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.PutBytes("/f", []byte("native chirp"), ""); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("/f")
	if err != nil || string(got) != "native chirp" {
		t.Fatalf("Get = %q, %v", got, err)
	}
}

// TestIndependentServers runs three JBOS servers side by side over the
// same storage, as the mixed-workload JBOS configuration does.
func TestIndependentServers(t *testing.T) {
	clock := sim.NewRealClock()
	fs := storage.NewMemFS(clock, 1<<30)
	table := acl.NewTable(acl.AllRights, gsi.Anonymous)
	lotMgr := lots.NewManager(clock, 1<<30, lots.NeSTManaged, nil)
	store := storage.NewManager(fs, table, lotMgr)
	lotMgr.Create(gsi.Anonymous, 100<<20, time.Hour)

	var servers []*jbos.Server
	for _, h := range []protocol.Handler{
		httpx.NewHandler(),
		ftp.NewHandler(ftp.Options{AllowAnon: true}),
		chirp.NewHandler(nil, true),
	} {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := jbos.Serve(clock, store, h, ln)
		t.Cleanup(srv.Close)
		servers = append(servers, srv)
	}

	// Write through Chirp; read the same bytes through HTTP and FTP.
	cc, err := chirp.Dial(servers[2].Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	if err := cc.PutBytes("/shared", []byte("jbos-shared"), ""); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + servers[0].Addr() + "/shared")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(got) != "jbos-shared" {
		t.Errorf("HTTP read = %q", got)
	}
	fc, err := ftp.Dial(servers[1].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Quit()
	fc.LoginAnonymous()
	var buf bytes.Buffer
	if _, err := fc.Retr("/shared", &buf); err != nil || buf.String() != "jbos-shared" {
		t.Errorf("FTP read = %q, %v", buf.String(), err)
	}
}

// TestJBOSNoSharedScheduling documents the baseline's defining gap: two
// JBOS servers cannot coordinate bandwidth because each pumps its own
// transfers directly; there is no common transfer manager to carry a
// policy (paper §3's JBOS discussion). Structurally: the servers share
// only storage, and each reports only its own traffic.
func TestJBOSNoSharedScheduling(t *testing.T) {
	srvA, store := startJBOS(t, httpx.NewHandler())
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srvB := jbos.Serve(sim.NewRealClock(), store, chirp.NewHandler(nil, true), lnB)
	t.Cleanup(srvB.Close)

	cc, err := chirp.Dial(srvB.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	if err := cc.PutBytes("/x", []byte("12345"), ""); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srvA.Addr() + "/x")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(got) != "12345" {
		t.Fatalf("cross-server read = %q", got)
	}
	// Each server accounts only its own bytes: no shared manager.
	if srvA.Moved() != 5 {
		t.Errorf("http server moved %d, want 5 (its own GET only)", srvA.Moved())
	}
	if srvB.Moved() != 5 {
		t.Errorf("chirp server moved %d, want 5 (its own PUT only)", srvB.Moved())
	}
}
