package core_test

// End-to-end distributed-tracing tests: a client-minted trace context
// propagated over the real wire protocols must come back as ONE
// assembled tree spanning every appliance the request touched. These
// are the acceptance tests for DESIGN.md §15.

import (
	"bytes"
	"net"
	"strings"
	"testing"
	"time"

	"nest/internal/chirp"
	"nest/internal/classad"
	"nest/internal/core"
	"nest/internal/gridftp"
	"nest/internal/gsi"
	"nest/internal/obs"
	"nest/internal/replica"
)

// traceFleet starts n lot-free appliances sharing one CA, named so the
// merged tree shows which appliance recorded which span.
func traceFleet(t *testing.T, names ...string) ([]*core.Server, *gsi.Credential) {
	t.Helper()
	ca := gsi.NewCA("/CN=trace-test-ca", []byte("trace-secret"))
	cred := ca.Issue("/O=Grid/CN=mover", time.Hour, true)
	servers := make([]*core.Server, len(names))
	for i, name := range names {
		s, err := core.New(core.Config{Name: name, CA: ca, DisableLots: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		servers[i] = s
	}
	return servers, cred
}

// gatherTrace merges the client tracer's spans with every server's
// until pred accepts the merged set. Transfer-stage spans are recorded
// on the scheduling goroutine after the protocol reply is sent, so the
// merge has to poll briefly.
func gatherTrace(t *testing.T, trace uint64, ct *obs.Tracer, servers []*core.Server, pred func([]obs.Span) bool) []obs.Span {
	t.Helper()
	var spans []obs.Span
	deadline := time.Now().Add(5 * time.Second)
	for {
		spans = spans[:0]
		if ct != nil {
			spans = append(spans, ct.Spans(trace)...)
		}
		for _, s := range servers {
			spans = append(spans, s.Disp.Tracer().Spans(trace)...)
		}
		if pred(spans) {
			return spans
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %x never satisfied predicate; have %d spans:\n%s",
				trace, len(spans), obs.RenderTrace(spans))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func countStage(spans []obs.Span, stage string) int {
	n := 0
	for _, s := range spans {
		if s.Stage == stage {
			n++
		}
	}
	return n
}

// TestTraceChirpToGridFTPThirdParty drives the paper's canonical
// multi-protocol job under one trace: a Chirp read at the home
// appliance followed by a GridFTP third-party push to a second
// appliance. The client merges both appliances' span rings with its
// own and must see a single tree — every request span, on either
// appliance, parented under the client's root span.
func TestTraceChirpToGridFTPThirdParty(t *testing.T) {
	servers, cred := traceFleet(t, "madison", "argonne")
	madison, argonne := servers[0], servers[1]

	payload := bytes.Repeat([]byte("dataset-"), 8192)
	putFileCore(t, madison, cred, "/input.dat", payload)

	ct := obs.NewTracer("mgr", 64)
	trace := ct.NewTraceID()
	root := ct.NewSpanID()

	// Traced Chirp read at the home site.
	cc, err := chirp.Dial(madison.Addr("chirp"), cred)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	if ok, err := cc.SetTraceContext(trace, root); err != nil || !ok {
		t.Fatalf("chirp SetTraceContext = %v, %v", ok, err)
	}
	if _, err := cc.Get("/input.dat"); err != nil {
		t.Fatal(err)
	}

	// Traced third-party transfer madison -> argonne.
	src, err := gridftp.Dial(madison.Addr("gridftp"), cred)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Quit()
	dst, err := gridftp.Dial(argonne.Addr("gridftp"), cred)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Quit()
	if ok, err := src.SetTraceContext(trace, root); err != nil || !ok {
		t.Fatalf("src SetTraceContext = %v, %v", ok, err)
	}
	if ok, err := dst.SetTraceContext(trace, root); err != nil || !ok {
		t.Fatalf("dst SetTraceContext = %v, %v", ok, err)
	}
	if err := gridftp.ThirdParty(src, "/input.dat", dst, "/staged.dat"); err != nil {
		t.Fatal(err)
	}
	ct.Record(&obs.Span{Trace: trace, ID: root, Stage: "mgr.op", Op: "stage", Path: "/input.dat"})

	// The job produced three request spans: chirp get + gridftp get at
	// madison, gridftp put at argonne.
	spans := gatherTrace(t, trace, ct, servers, func(spans []obs.Span) bool {
		return countStage(spans, "request") >= 3
	})

	roots := obs.AssembleTrace(spans)
	if len(roots) != 1 {
		t.Fatalf("merged trace has %d roots, want 1:\n%s", len(roots), obs.RenderTrace(spans))
	}
	if roots[0].Span.Stage != "mgr.op" || roots[0].Span.Appliance != "mgr" {
		t.Fatalf("root is %s@%s, want mgr.op@mgr", roots[0].Span.Stage, roots[0].Span.Appliance)
	}
	want := map[string]bool{ // proto/op/appliance -> seen
		"chirp/get/madison":   false,
		"gridftp/get/madison": false,
		"gridftp/put/argonne": false,
	}
	for _, s := range spans {
		if s.Stage != "request" {
			continue
		}
		key := s.Proto + "/" + s.Op + "/" + s.Appliance
		if _, tracked := want[key]; tracked {
			want[key] = true
		}
		if s.Parent != root {
			t.Errorf("request span %s parented under %x, want client root %x", key, s.Parent, root)
		}
	}
	for key, seen := range want {
		if !seen {
			t.Errorf("no request span for %s in merged tree:\n%s", key, obs.RenderTrace(spans))
		}
	}
}

// TestTraceStripedGetSubPumps reads a multi-extent file over GridFTP
// MODE E with parallelism 4 under a trace: the server-side tree must
// show the data stage fanned into four stripe sub-pump spans, and the
// 226 reply must echo the trace id back to the trace-speaking client.
func TestTraceStripedGetSubPumps(t *testing.T) {
	servers, cred := traceFleet(t, "solo")
	solo := servers[0]

	payload := make([]byte, 7*64*1024+99)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	putFileCore(t, solo, cred, "/wide.dat", payload)

	ct := obs.NewTracer("mgr", 64)
	trace := ct.NewTraceID()
	root := ct.NewSpanID()

	c, err := gridftp.Dial(solo.Addr("gridftp"), cred)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Quit()
	if err := c.SetMode('E'); err != nil {
		t.Fatal(err)
	}
	if err := c.SetParallelism(4); err != nil {
		t.Fatal(err)
	}
	if ok, err := c.SetTraceContext(trace, root); err != nil || !ok {
		t.Fatalf("SetTraceContext = %v, %v", ok, err)
	}
	var buf bytes.Buffer
	if n, err := c.Retr("/wide.dat", &buf); err != nil || n != int64(len(payload)) {
		t.Fatalf("Retr = %d, %v", n, err)
	}
	if got := c.LastTrace(); got != trace {
		t.Fatalf("226 echoed trace %x, want %x", got, trace)
	}

	spans := gatherTrace(t, trace, nil, servers, func(spans []obs.Span) bool {
		return countStage(spans, "stripe") >= 4
	})
	var dataID uint64
	for _, s := range spans {
		if s.Stage == "data" {
			dataID = s.ID
		}
	}
	if dataID == 0 {
		t.Fatalf("no data span:\n%s", obs.RenderTrace(spans))
	}
	stripes := 0
	for _, s := range spans {
		if s.Stage != "stripe" {
			continue
		}
		stripes++
		if s.Parent != dataID {
			t.Errorf("stripe span parented under %x, want data span %x", s.Parent, dataID)
		}
	}
	if stripes != 4 {
		t.Errorf("trace has %d stripe spans, want 4:\n%s", stripes, obs.RenderTrace(spans))
	}
	if countStage(spans, "sched.wait") == 0 {
		t.Errorf("no sched.wait span:\n%s", obs.RenderTrace(spans))
	}
}

// stubCatalog serves a fixed ranking, letting the failover test pin a
// dead replica to the top without racing advertisement freshness.
type stubCatalog struct{ ads []*classad.Ad }

func (c stubCatalog) Replicas(string) ([]*classad.Ad, error) { return c.ads, nil }
func (c stubCatalog) Query(string) ([]*classad.Ad, error)    { return c.ads, nil }

// TestTraceFailoverFailedAttempt forces a replica fetch through a dead
// top-ranked holder: the assembled tree must keep the failed
// replica.attempt as a non-zero-code child next to the successful one,
// with the surviving appliance's request span nested under the attempt
// that reached it.
func TestTraceFailoverFailedAttempt(t *testing.T) {
	servers, cred := traceFleet(t, "east")
	east := servers[0]
	putFileCore(t, east, cred, "/rep/f.dat", []byte("replicated-bytes"))

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	ghost := classad.NewAd() // advertises top health, answers nothing
	ghost.SetString("Name", "ghost")
	ghost.SetString("Addr_chirp", deadAddr)
	ghost.SetReal("RecentBandwidthMBps", 500)
	ghost.SetReal("P99LatencyMs", 1)
	liveAd := classad.NewAd()
	liveAd.SetString("Name", "east")
	liveAd.SetString("Addr_chirp", east.Addr("chirp"))
	liveAd.SetReal("RecentBandwidthMBps", 1)
	liveAd.SetReal("P99LatencyMs", 200)

	sel := replica.NewSelector(stubCatalog{ads: []*classad.Ad{ghost, liveAd}}, cred, 7)
	ct := obs.NewTracer("client", 64)
	sel.SetTracer(ct)

	data, name, trace, err := sel.FetchTraced("/rep/f.dat", 0, 0)
	if err != nil || name != "east" {
		t.Fatalf("FetchTraced = %q from %q, %v", data, name, err)
	}
	if trace == 0 {
		t.Fatal("FetchTraced returned zero trace id")
	}

	spans := gatherTrace(t, trace, ct, servers, func(spans []obs.Span) bool {
		return countStage(spans, "request") >= 1 && countStage(spans, "replica.attempt") >= 2
	})

	roots := obs.AssembleTrace(spans)
	if len(roots) != 1 || roots[0].Span.Stage != "replica.fetch" {
		t.Fatalf("want single replica.fetch root:\n%s", obs.RenderTrace(spans))
	}
	fetch := roots[0].Span
	if fetch.Code != 0 {
		t.Fatalf("fetch span code = %d, want 0 (the fetch succeeded)", fetch.Code)
	}
	var failed, okAttempt *obs.Span
	for i := range spans {
		s := &spans[i]
		if s.Stage != "replica.attempt" {
			continue
		}
		if s.Parent != fetch.ID {
			t.Errorf("attempt span parented under %x, want fetch span %x", s.Parent, fetch.ID)
		}
		if s.Code != 0 {
			failed = s
		} else {
			okAttempt = s
		}
	}
	if failed == nil {
		t.Fatalf("failed attempt missing from tree:\n%s", obs.RenderTrace(spans))
	}
	if !strings.Contains(failed.Notes[0].Str, deadAddr) {
		t.Errorf("failed attempt notes %q do not name dead holder %s", failed.Notes[0].Str, deadAddr)
	}
	if okAttempt == nil {
		t.Fatalf("successful attempt missing from tree:\n%s", obs.RenderTrace(spans))
	}
	for _, s := range spans {
		if s.Stage == "request" && s.Parent != okAttempt.ID {
			t.Errorf("east request span parented under %x, want surviving attempt %x", s.Parent, okAttempt.ID)
		}
	}
}

// putFileCore writes path over an untraced Chirp session.
func putFileCore(t *testing.T, s *core.Server, cred *gsi.Credential, path string, data []byte) {
	t.Helper()
	c, err := chirp.Dial(s.Addr("chirp"), cred)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if i := strings.LastIndexByte(path, '/'); i > 0 {
		_ = c.Mkdir(path[:i]) // best-effort: may already exist
	}
	if err := c.PutBytes(path, data, ""); err != nil {
		t.Fatal(err)
	}
}
