package core_test

import (
	"bytes"
	"io"
	"net/http"
	"testing"
	"time"

	"nest/internal/acl"
	"nest/internal/chirp"
	"nest/internal/classad"
	"nest/internal/core"
	"nest/internal/ftp"
	"nest/internal/gridftp"
	"nest/internal/gsi"
	"nest/internal/nfs"
)

func startServer(t *testing.T, cfg core.Config) (*core.Server, *gsi.CA, *gsi.Credential) {
	t.Helper()
	ca := gsi.NewCA("/CN=core-test-ca", []byte("core-secret"))
	cred := ca.Issue("/O=Grid/CN=john", time.Hour, true)
	cfg.CA = ca
	s, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, ca, cred
}

// TestAllProtocolsOneFile is the appliance's signature behavior: the
// same file served concurrently over all five protocols through one
// server (paper §3).
func TestAllProtocolsOneFile(t *testing.T) {
	s, _, cred := startServer(t, core.Config{Name: "multi"})
	if _, err := s.GrantDefaultLot("john", 100<<20, time.Hour); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("one-file-five-protocols."), 10000)

	// Write via Chirp.
	cc, err := chirp.Dial(s.Addr("chirp"), cred)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	if err := cc.PutBytes("/shared.dat", payload, ""); err != nil {
		t.Fatal(err)
	}

	// Read via HTTP.
	resp, err := http.Get("http://" + s.Addr("http") + "/shared.dat")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(got, payload) {
		t.Error("HTTP read mismatch")
	}

	// Read via FTP.
	fc, err := ftp.Dial(s.Addr("ftp"))
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Quit()
	if err := fc.LoginAnonymous(); err != nil {
		t.Fatal(err)
	}
	var fbuf bytes.Buffer
	if _, err := fc.Retr("/shared.dat", &fbuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fbuf.Bytes(), payload) {
		t.Error("FTP read mismatch")
	}

	// Read via GridFTP with parallel streams.
	gc, err := gridftp.Dial(s.Addr("gridftp"), cred)
	if err != nil {
		t.Fatal(err)
	}
	defer gc.Quit()
	gc.SetMode('E')
	gc.SetParallelism(4)
	var gbuf bytes.Buffer
	if _, err := gc.Retr("/shared.dat", &gbuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gbuf.Bytes(), payload) {
		t.Error("GridFTP read mismatch")
	}

	// Read via NFS, block by block.
	nc, err := nfs.Dial(s.Addr("nfs"))
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	root, err := nc.Mount("/")
	if err != nil {
		t.Fatal(err)
	}
	fh, _, err := nc.Lookup(root, "shared.dat")
	if err != nil {
		t.Fatal(err)
	}
	ngot, err := nc.ReadAll(fh)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ngot, payload) {
		t.Error("NFS read mismatch")
	}
}

// TestACLEnforcedAcrossProtocols: an ACL set through Chirp binds HTTP,
// FTP and NFS clients too (paper §5: "policies are enforced across any
// and all protocols").
func TestACLEnforcedAcrossProtocols(t *testing.T) {
	s, _, cred := startServer(t, core.Config{Name: "aclsrv"})
	s.GrantDefaultLot("john", 10<<20, time.Hour)
	cc, err := chirp.Dial(s.Addr("chirp"), cred)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	if err := cc.Mkdir("/private"); err != nil {
		t.Fatal(err)
	}
	if err := cc.PutBytes("/private/secret", []byte("s3cret"), ""); err != nil {
		t.Fatal(err)
	}
	if err := cc.ACLSet("/private", "john", "rlidwa"); err != nil {
		t.Fatal(err)
	}

	// HTTP (anonymous) is denied.
	resp, err := http.Get("http://" + s.Addr("http") + "/private/secret")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 403 {
		t.Errorf("HTTP status = %d, want 403", resp.StatusCode)
	}

	// FTP (anonymous) is denied.
	fc, _ := ftp.Dial(s.Addr("ftp"))
	defer fc.Quit()
	fc.LoginAnonymous()
	var buf bytes.Buffer
	if _, err := fc.Retr("/private/secret", &buf); err == nil {
		t.Error("FTP read of protected file succeeded")
	}

	// NFS (anonymous) is denied: stat of the directory itself is
	// governed by the parent ACL, but listing or reading inside the
	// protected tree must fail.
	nc, _ := nfs.Dial(s.Addr("nfs"))
	defer nc.Close()
	root, _ := nc.Mount("/")
	if fh, _, err := nc.Lookup(root, "private"); err == nil {
		if _, err := nc.Readdir(fh); err == nil {
			t.Error("NFS readdir of protected dir succeeded")
		}
		if _, _, err := nc.Lookup(fh, "secret"); err == nil {
			t.Error("NFS lookup inside protected dir succeeded")
		}
	}

	// The owner still reads it over Chirp.
	if got, err := cc.Get("/private/secret"); err != nil || string(got) != "s3cret" {
		t.Errorf("owner read = %q, %v", got, err)
	}
}

func TestAdvertisement(t *testing.T) {
	s, _, _ := startServer(t, core.Config{Name: "adtest"})
	ad := s.Advertisement()
	if v, _ := ad.EvalAttr("Name", nil).StringVal(); v != "adtest" {
		t.Errorf("Name = %q", v)
	}
	protos, ok := ad.EvalAttr("Protocols", nil).ListVal()
	if !ok || len(protos) != 5 {
		t.Errorf("Protocols = %v", protos)
	}
	// The ad matches a request wanting NFS + space.
	request := classad.MustParse(`[
		NeedDisk = 1024;
		Requirements = member("nfs", other.Protocols) && other.FreeDisk >= NeedDisk
	]`)
	if !classad.Match(request, ad) {
		t.Errorf("advertisement does not match a compatible request:\n%s", ad)
	}
}

func TestPublishPeriodically(t *testing.T) {
	got := make(chan *classad.Ad, 4)
	s, _, _ := startServer(t, core.Config{
		Name:          "pub",
		Publish:       func(ad *classad.Ad) { got <- ad },
		PublishPeriod: 20 * time.Millisecond,
	})
	_ = s
	select {
	case ad := <-got:
		if v, _ := ad.EvalAttr("Type", nil).StringVal(); v != "Storage" {
			t.Errorf("published ad Type = %q", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no advertisement published")
	}
}

func TestSchedulerSelection(t *testing.T) {
	for _, kind := range []core.SchedulerKind{core.SchedFIFO, core.SchedStride, core.SchedCacheAware} {
		s, err := core.New(core.Config{Name: string(kind), Scheduler: kind,
			Tickets: map[string]int{"nfs": 200}})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if got := s.Xfer.Policy().Name(); got != string(kind) {
			t.Errorf("policy = %q, want %q", got, kind)
		}
		s.Close()
	}
}

func TestUnknownProtocolRejected(t *testing.T) {
	_, err := core.New(core.Config{Protocols: map[string]string{"gopher": ":0"}})
	if err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestLocalFSBackend(t *testing.T) {
	dir := t.TempDir()
	s, err := core.New(core.Config{Name: "local", DataDir: dir,
		RootRights: acl.AllRights})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.GrantDefaultLot("anonymous", 10<<20, time.Hour)
	cc, err := chirp.Dial(s.Addr("chirp"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	if err := cc.PutBytes("/diskfile", []byte("on real disk"), ""); err != nil {
		t.Fatal(err)
	}
	got, err := cc.Get("/diskfile")
	if err != nil || string(got) != "on real disk" {
		t.Errorf("Get = %q, %v", got, err)
	}

	// An HTTP GET drives the dispatcher's capability-detected transfer
	// endpoints against the disk file end to end.
	resp, err := http.Get("http://" + s.Addr("http") + "/diskfile")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "on real disk" {
		t.Errorf("HTTP GET from disk = %q", body)
	}

	// The LocalFS data-path counters are published on /metrics and on
	// /statusz (which appends the registry text).
	for _, ep := range []string{"/metrics", "/statusz"} {
		resp, err := http.Get("http://" + s.Addr("http") + ep)
		if err != nil {
			t.Fatal(err)
		}
		page, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		for _, metric := range []string{
			"nest_localfs_fd_cache_hits_total",
			"nest_localfs_fd_cache_misses_total",
			"nest_localfs_fd_cache_evictions_total",
			"nest_localfs_preads_total",
			"nest_localfs_pwrites_total",
			"nest_localfs_fsyncs_total",
			"nest_localfs_handoff_chunks_total",
			"nest_localfs_pooled_chunks_total",
		} {
			if !bytes.Contains(page, []byte(metric)) {
				t.Errorf("%s missing %s", ep, metric)
			}
		}
	}
}
