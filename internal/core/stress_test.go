package core_test

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"nest/internal/acl"
	"nest/internal/chirp"
	"nest/internal/core"
	"nest/internal/ftp"
	"nest/internal/gsi"
	"nest/internal/nfs"
)

// TestConcurrentMixedProtocolStress hammers one appliance with
// concurrent Chirp, HTTP, FTP and NFS clients reading and writing
// disjoint and shared files, verifying integrity end to end — the
// appliance's whole point is many protocols against one server at
// once.
func TestConcurrentMixedProtocolStress(t *testing.T) {
	ca := gsi.NewCA("/CN=stress-ca", []byte("stress"))
	cred := ca.Issue("/O=Grid/CN=john", time.Hour, true)
	srv, err := core.New(core.Config{Name: "stress", CA: ca, Slots: 32,
		RootRights: acl.AllRights})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.GrantDefaultLot("john", 200<<20, time.Hour); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.GrantDefaultLot(gsi.Anonymous, 200<<20, time.Hour); err != nil {
		t.Fatal(err)
	}

	// A shared file everyone reads.
	seed, err := chirp.Dial(srv.Addr("chirp"), cred)
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()
	shared := bytes.Repeat([]byte("shared-mixed-protocol-content."), 10000) // 300 KB
	if err := seed.PutBytes("/shared.bin", shared, ""); err != nil {
		t.Fatal(err)
	}

	const iterations = 6
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	fail := func(format string, args ...interface{}) {
		errs <- fmt.Errorf(format, args...)
	}

	// Chirp writers + readers on private files.
	for w := 0; w < 3; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := chirp.Dial(srv.Addr("chirp"), cred)
			if err != nil {
				fail("chirp dial: %v", err)
				return
			}
			defer c.Close()
			for i := 0; i < iterations; i++ {
				path := fmt.Sprintf("/c%d-%d", w, i)
				data := bytes.Repeat([]byte{byte('a' + w)}, 20000+i)
				if err := c.PutBytes(path, data, ""); err != nil {
					fail("chirp put %s: %v", path, err)
					return
				}
				got, err := c.Get(path)
				if err != nil || !bytes.Equal(got, data) {
					fail("chirp get %s: %d bytes, %v", path, len(got), err)
					return
				}
			}
		}()
	}

	// HTTP readers of the shared file.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{}
			for i := 0; i < iterations; i++ {
				resp, err := client.Get("http://" + srv.Addr("http") + "/shared.bin")
				if err != nil {
					fail("http get: %v", err)
					return
				}
				got, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if !bytes.Equal(got, shared) {
					fail("http body mismatch: %d bytes", len(got))
					return
				}
			}
		}()
	}

	// FTP stor/retr cycles.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := ftp.Dial(srv.Addr("ftp"))
		if err != nil {
			fail("ftp dial: %v", err)
			return
		}
		defer c.Quit()
		if err := c.LoginAnonymous(); err != nil {
			fail("ftp login: %v", err)
			return
		}
		for i := 0; i < iterations; i++ {
			data := bytes.Repeat([]byte("F"), 15000)
			if _, err := c.Stor(fmt.Sprintf("/ftp-%d", i), bytes.NewReader(data)); err != nil {
				fail("ftp stor: %v", err)
				return
			}
			var buf bytes.Buffer
			if _, err := c.Retr("/shared.bin", &buf); err != nil || !bytes.Equal(buf.Bytes(), shared) {
				fail("ftp retr shared: %d bytes, %v", buf.Len(), err)
				return
			}
		}
	}()

	// NFS block readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := nfs.Dial(srv.Addr("nfs"))
		if err != nil {
			fail("nfs dial: %v", err)
			return
		}
		defer c.Close()
		root, err := c.Mount("/")
		if err != nil {
			fail("nfs mount: %v", err)
			return
		}
		for i := 0; i < iterations; i++ {
			fh, _, err := c.Lookup(root, "shared.bin")
			if err != nil {
				fail("nfs lookup: %v", err)
				return
			}
			got, err := c.ReadAll(fh)
			if err != nil || !bytes.Equal(got, shared) {
				fail("nfs read: %d bytes, %v", len(got), err)
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Accounting stayed coherent under concurrency.
	stats := srv.Xfer.Metrics().Classes()
	for _, proto := range []string{"chirp", "http", "ftp", "nfs"} {
		if stats[proto].Requests == 0 {
			t.Errorf("no %s transfers recorded", proto)
		}
		if stats[proto].Errors != 0 {
			t.Errorf("%s transfer errors: %d", proto, stats[proto].Errors)
		}
	}
}
