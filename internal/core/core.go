// Package core assembles the NeST appliance: the dispatcher, storage
// manager, transfer manager and the five protocol handlers, wired per
// a single configuration (paper Figure 1). It is the programmatic face
// of the appliance; cmd/nestd is a thin flag wrapper around it.
package core

import (
	"fmt"
	"net"
	"time"

	"nest/internal/acl"
	"nest/internal/bufpool"
	"nest/internal/cache"
	"nest/internal/chirp"
	"nest/internal/classad"
	"nest/internal/connmgr"
	"nest/internal/dispatch"
	"nest/internal/ftp"
	"nest/internal/gridftp"
	"nest/internal/gsi"
	"nest/internal/httpx"
	"nest/internal/lots"
	"nest/internal/nfs"
	"nest/internal/obs"
	"nest/internal/protocol"
	"nest/internal/quota"
	"nest/internal/sched"
	"nest/internal/sim"
	"nest/internal/storage"
	"nest/internal/transfer"
)

// The cache-aware policy leans on the buffer-cache model advertising
// residency changes; keep the contract checked at compile time.
var _ sched.Generational = (*cache.Model)(nil)

// SchedulerKind selects the transfer manager's scheduling policy.
type SchedulerKind string

// Scheduling policies (paper §4.2).
const (
	SchedFIFO       SchedulerKind = "fifo"
	SchedStride     SchedulerKind = "stride"
	SchedCacheAware SchedulerKind = "cache-aware"
)

// Config describes one appliance.
type Config struct {
	// Name identifies the NeST in its published ClassAds.
	Name string

	// Clock drives time; nil uses the real clock.
	Clock sim.Clock

	// DataDir, when set, serves the local filesystem rooted there;
	// otherwise an in-memory filesystem is used (tests, examples).
	DataDir string
	// Capacity is the advertised storage capacity (default 1 GB).
	Capacity int64
	// SyncOnClose fsyncs files on close when serving a DataDir, trading
	// close latency for durability of completed PUTs.
	SyncOnClose bool

	// Anonymous root ACL rights (default: read+lookup for anyuser,
	// everything for authenticated users).
	RootRights     acl.Rights
	AuthUserRights acl.Rights

	// Lots. The default is NeST-managed per-lot accounting; set
	// QuotaBackedLots to delegate enforcement to the user-quota
	// subsystem instead (simpler, covers direct filesystem access, but
	// accounts per user — see the lots package).
	DisableLots     bool
	QuotaBackedLots bool
	// QuotaEnabled turns on the quota subsystem's enforcement and
	// write-path bookkeeping; implied by QuotaBackedLots.
	QuotaEnabled bool

	// Transfer manager.
	Scheduler   SchedulerKind
	Tickets     map[string]int // stride: protocol class -> tickets
	Model       transfer.ModelKind
	Slots       int
	ProcWorkers int

	// Security: the CA whose credentials Chirp and GridFTP accept.
	// Nil creates an ephemeral CA (anonymous-only service).
	CA *gsi.CA

	// Protocols maps protocol names ("chirp", "http", "ftp",
	// "gridftp", "nfs") to listen addresses. Empty enables all five on
	// ephemeral loopback ports.
	Protocols map[string]string

	// Discovery publication: when Publish is non-nil the dispatcher
	// periodically consolidates a ClassAd and hands it over.
	Publish       func(*classad.Ad)
	PublishPeriod time.Duration

	// SlowTrace overrides the duration above which a completed root
	// span is also indexed in the slow-trace ring (/traces, nestctl
	// traces -slow). Zero keeps the default.
	SlowTrace time.Duration

	// Connection front end (admission control, overload shedding, idle
	// parking — package connmgr). Zero values admit everything, never
	// shed and never reap; parking of idle Chirp/HTTP sessions is
	// always on unless the whole front end is disabled.
	MaxConnsPerProto int           // per-protocol connection quota (0: unlimited)
	MaxConnsPerUser  int           // per-principal connection quota (0: unlimited)
	ConnIdleTimeout  time.Duration // reap idle connections after this (0: never)
	ShedQueueDepth   int64         // shed when transfer queue depth exceeds this
	ShedP99          time.Duration // shed when merged request p99 exceeds this
	ShedInFlight     int64         // shed when in-flight transfers exceed this
	// DisableConnFront keeps the seed's goroutine-per-connection accept
	// path: no quotas, no shedding, no parking.
	DisableConnFront bool
}

// Server is a running NeST appliance.
type Server struct {
	cfg   Config
	clock sim.Clock

	Store *storage.Manager
	Xfer  *transfer.Manager
	Disp  *dispatch.Dispatcher
	Quota *quota.Manager
	Cache *cache.Model

	ca    *gsi.CA
	addrs map[string]string
}

// New assembles and starts an appliance.
func New(cfg Config) (*Server, error) {
	if cfg.Clock == nil {
		cfg.Clock = sim.NewRealClock()
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 1 << 30
	}
	if cfg.Name == "" {
		cfg.Name = "nest"
	}
	if cfg.RootRights == 0 {
		cfg.RootRights = acl.Read | acl.Lookup
	}
	if cfg.AuthUserRights == 0 {
		cfg.AuthUserRights = acl.AllRights
	}
	if cfg.Scheduler == "" {
		cfg.Scheduler = SchedFIFO
	}
	if cfg.Model == "" {
		cfg.Model = transfer.Adaptive
	}

	s := &Server{cfg: cfg, clock: cfg.Clock, addrs: make(map[string]string)}

	// Physical storage.
	var fs storage.FS
	s.Cache = cache.New(64 * sim.MB)
	if cfg.DataDir != "" {
		local, err := storage.NewLocalFS(cfg.DataDir, cfg.Capacity)
		if err != nil {
			return nil, fmt.Errorf("core: data dir: %w", err)
		}
		local.SetSyncOnClose(cfg.SyncOnClose)
		fs = local
	} else {
		fs = storage.NewMemFS(cfg.Clock, cfg.Capacity)
	}

	// Access control: AFS-style table with sensible defaults.
	table := acl.NewTable(cfg.RootRights, gsi.Anonymous)
	table.Set("/", acl.AuthUser, cfg.AuthUserRights)

	// Lots and quota.
	s.Quota = quota.NewManager(cfg.QuotaEnabled || cfg.QuotaBackedLots)
	var lotMgr *lots.Manager
	if !cfg.DisableLots {
		mode := lots.NeSTManaged
		if cfg.QuotaBackedLots {
			mode = lots.QuotaBacked
		}
		lotMgr = lots.NewManager(cfg.Clock, cfg.Capacity, mode, s.Quota)
	}
	s.Store = storage.NewManager(fs, table, lotMgr)

	// Scheduling policy.
	var policy sched.Policy
	switch cfg.Scheduler {
	case SchedStride:
		policy = sched.NewStride(cfg.Tickets)
	case SchedCacheAware:
		// The cache model is versioned (sched.Generational), so the
		// policy re-probes residency only when the model has changed.
		policy = sched.NewCacheAware(s.Cache, storage.MemCopyMBps, 22, 8*time.Millisecond)
	default:
		policy = sched.NewFIFO()
	}

	// Transfer manager (live mode: no modeled concurrency costs).
	xferOpts := transfer.Options{
		Clock:       cfg.Clock,
		Policy:      policy,
		Slots:       cfg.Slots,
		Model:       cfg.Model,
		ProcWorkers: cfg.ProcWorkers,
	}
	if cfg.Scheduler == SchedStride {
		// Proportional share allocates bandwidth at byte-quantum
		// granularity: transfers are preempted and re-picked so small
		// block requests are not pinned behind whole files.
		xferOpts.Quantum = 256 * 1024
	}
	s.Xfer = transfer.NewManager(xferOpts)

	s.Disp = dispatch.New(cfg.Clock, s.Store, s.Xfer)
	// Span appliance stamps make cross-appliance trees attributable.
	s.Disp.SetName(cfg.Name)
	if cfg.SlowTrace > 0 {
		s.Disp.SetSlowThreshold(cfg.SlowTrace)
	}
	if !cfg.DisableConnFront {
		// The shed signals are the dispatcher's own health facts — the
		// same ones the advertisement publishes to the Grid, so an
		// appliance refuses work by exactly the criteria the matchmaker
		// would use to route around it.
		s.Disp.SetConnManager(connmgr.New(connmgr.Config{
			Clock:          cfg.Clock,
			MaxPerProto:    cfg.MaxConnsPerProto,
			MaxPerUser:     cfg.MaxConnsPerUser,
			IdleTimeout:    cfg.ConnIdleTimeout,
			ShedQueueDepth: cfg.ShedQueueDepth,
			ShedP99:        cfg.ShedP99,
			ShedInFlight:   cfg.ShedInFlight,
			Signals: connmgr.Signals{
				QueueDepth: s.Xfer.QueueDepth,
				P99:        s.Disp.MergedP99,
				InFlight:   s.Xfer.Active,
			},
		}))
	}

	// Fold component health into the dispatcher's registry as pull-time
	// gauges: each component keeps its own atomic counters and pays
	// nothing until exposition.
	reg := s.Disp.Obs()
	reg.Func("nest_storage_total_bytes", fs.Total)
	reg.Func("nest_storage_free_bytes", fs.Free)
	reg.Func("nest_storage_extent_allocs_total", func() int64 { a, _ := storage.ExtentStats(); return a })
	reg.Func("nest_storage_extent_recycles_total", func() int64 { _, r := storage.ExtentStats(); return r })
	reg.Func("nest_localfs_fd_cache_hits_total", func() int64 { return storage.LocalFSStats().FDCacheHits })
	reg.Func("nest_localfs_fd_cache_misses_total", func() int64 { return storage.LocalFSStats().FDCacheMisses })
	reg.Func("nest_localfs_fd_cache_evictions_total", func() int64 { return storage.LocalFSStats().FDCacheEvictions })
	reg.Func("nest_localfs_preads_total", func() int64 { return storage.LocalFSStats().Preads })
	reg.Func("nest_localfs_pwrites_total", func() int64 { return storage.LocalFSStats().Pwrites })
	reg.Func("nest_localfs_fsyncs_total", func() int64 { return storage.LocalFSStats().Fsyncs })
	reg.Func("nest_localfs_handoff_chunks_total", func() int64 { return storage.LocalFSStats().HandoffChunks })
	reg.Func("nest_localfs_pooled_chunks_total", func() int64 { return storage.LocalFSStats().PooledChunks })
	reg.Func("nest_cache_hits_total", func() int64 { h, _ := s.Cache.Stats(); return h })
	reg.Func("nest_cache_misses_total", func() int64 { _, m := s.Cache.Stats(); return m })
	reg.Func("nest_bufpool_gets_total", func() int64 { return bufpool.Stats().Gets })
	reg.Func("nest_bufpool_puts_total", func() int64 { return bufpool.Stats().Puts })
	reg.Func("nest_bufpool_misses_total", func() int64 { return bufpool.Stats().Misses })
	reg.Func("nest_bufpool_bytes_recycled_total", func() int64 { return bufpool.Stats().BytesRecycled })
	reg.Func("nest_quota_charges_total", func() int64 { c, _ := s.Quota.Stats(); return c })
	reg.Func("nest_quota_rejects_total", func() int64 { _, r := s.Quota.Stats(); return r })
	if lotMgr != nil {
		reg.Func("nest_lot_guaranteed_bytes", lotMgr.Guaranteed)
		reg.Func("nest_lot_free_bytes", func() int64 { return lotMgr.Total() - lotMgr.Guaranteed() })
		reg.Func("nest_lot_creates_total", func() int64 { return lotMgr.Stats().Creates })
		reg.Func("nest_lot_create_rejects_total", func() int64 { return lotMgr.Stats().CreateRejects })
		reg.Func("nest_lot_charge_admits_total", func() int64 { return lotMgr.Stats().ChargeAdmits })
		reg.Func("nest_lot_charge_rejects_total", func() int64 { return lotMgr.Stats().ChargeRejects })
	}

	// Security.
	ca := cfg.CA
	if ca == nil {
		ca = gsi.NewCA("/O=NeST/CN=ephemeral-ca", []byte(cfg.Name+"-ephemeral"))
	}
	s.ca = ca
	verifier := gsi.NewVerifier(ca)

	// The HTTP handler doubles as the appliance's observability
	// surface: /statusz, /metrics and /healthz are answered by the
	// dispatcher before the path is treated as a file.
	httpHandler := httpx.NewHandler()
	httpHandler.SetStatus(s.Disp.StatusPage)

	handlers := map[string]protocol.Handler{
		chirp.Proto:   chirp.NewHandler(verifier, true),
		httpx.Proto:   httpHandler,
		ftp.Proto:     ftp.NewHandler(ftp.Options{AllowAnon: true}),
		gridftp.Proto: gridftp.NewHandler(verifier),
		"nfs":         nfs.NewHandler(),
	}

	protocols := cfg.Protocols
	if len(protocols) == 0 {
		protocols = map[string]string{
			chirp.Proto: "127.0.0.1:0", httpx.Proto: "127.0.0.1:0",
			ftp.Proto: "127.0.0.1:0", gridftp.Proto: "127.0.0.1:0",
			"nfs": "127.0.0.1:0",
		}
	}
	for proto, addr := range protocols {
		h, ok := handlers[proto]
		if !ok {
			s.Close()
			return nil, fmt.Errorf("core: unknown protocol %q", proto)
		}
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("core: listen %s (%s): %w", addr, proto, err)
		}
		s.addrs[proto] = ln.Addr().String()
		if s.Disp.Register(ln, proto) {
			go s.Disp.Serve(ln, h)
		}
	}

	if cfg.Publish != nil {
		period := cfg.PublishPeriod
		if period <= 0 {
			period = 10 * time.Second
		}
		s.Disp.Publish(cfg.Name, period, cfg.Publish)
	}
	return s, nil
}

// Addr returns the listen address of one protocol endpoint.
func (s *Server) Addr(proto string) string { return s.addrs[proto] }

// Protocols lists the enabled protocol names.
func (s *Server) Protocols() []string {
	out := make([]string, 0, len(s.addrs))
	for p := range s.addrs {
		out = append(out, p)
	}
	return out
}

// Name returns the appliance name.
func (s *Server) Name() string { return s.cfg.Name }

// CA returns the trust anchor the appliance's GSI protocols accept —
// the configured CA, or the ephemeral one created in its absence. The
// appliance mints service credentials (replication, health probes)
// from it.
func (s *Server) CA() *gsi.CA { return s.ca }

// GrantDefaultLot creates an administrator-granted lot for a user
// (paper §5: admins "can simultaneously make a set of default lots for
// users" when granting access).
func (s *Server) GrantDefaultLot(user string, capacity int64, duration time.Duration) (lots.Info, error) {
	if s.Store.Lots() == nil {
		return lots.Info{}, fmt.Errorf("core: lots disabled")
	}
	return s.Store.Lots().Create(user, capacity, duration)
}

// Advertisement builds the appliance's current ClassAd.
func (s *Server) Advertisement() *classad.Ad {
	return s.Disp.Advertisement(s.cfg.Name)
}

// Obs returns the appliance's metrics registry (the dispatcher's, with
// component gauges folded in).
func (s *Server) Obs() *obs.Registry { return s.Disp.Obs() }

// Close shuts the appliance down, draining in-flight transfers.
func (s *Server) Close() {
	if s.Disp != nil {
		s.Disp.Close()
	}
	if s.Xfer != nil {
		s.Xfer.Close()
	}
}
