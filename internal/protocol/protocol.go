// Package protocol defines NeST's common request interface: the
// protocol-independent request and reply objects that every protocol
// handler (Chirp, HTTP, FTP, GridFTP, NFS) translates its wire format
// to and from, and the virtual protocol connection (Session) through
// which the dispatcher drives clients. This layer plays the role the
// VFS layer plays in an operating system (paper, Section 3): the rest
// of NeST is written against it and shared by all protocols.
package protocol

import (
	"fmt"
	"io"
	"net"
	"time"
)

// Op enumerates the operations of the common request interface. Most
// request types are shared by all protocols (directory and file
// operations); lot management and ACL manipulation are reachable only
// through protocols with matching verbs (Chirp).
type Op int

// Common request operations.
const (
	OpNone Op = iota
	// Transfer requests, routed to the transfer manager.
	OpGet // read file data (whole file, or a block for NFS)
	OpPut // write file data
	// Non-transfer requests, executed synchronously by the storage
	// manager.
	OpList
	OpStat
	OpMkdir
	OpRmdir
	OpRemove
	OpLookup // NFS-only: resolve a name to a handle
	OpLotCreate
	OpLotRelease
	OpLotRenew
	OpLotStatus
	OpLotAddMember
	OpLotRemoveMember
	OpACLSet
	OpACLGet
	OpStatfs // server resource query
	OpPing
	OpQuit

	// OpCount is the number of ops; observability sizes fixed-width
	// per-op counter arrays with it so recording never allocates.
	OpCount
)

var opNames = map[Op]string{
	OpNone: "none", OpGet: "get", OpPut: "put", OpList: "list",
	OpStat: "stat", OpMkdir: "mkdir", OpRmdir: "rmdir",
	OpRemove: "remove", OpLookup: "lookup",
	OpLotCreate: "lot_create", OpLotRelease: "lot_release",
	OpLotRenew: "lot_renew", OpLotStatus: "lot_status",
	OpLotAddMember: "lot_add_member", OpLotRemoveMember: "lot_remove_member",
	OpACLSet: "acl_set", OpACLGet: "acl_get",
	OpStatfs: "statfs", OpPing: "ping", OpQuit: "quit",
}

// String names the op for logs and tests.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// IsTransfer reports whether the op moves file data and therefore is
// scheduled asynchronously by the transfer manager.
func (o Op) IsTransfer() bool { return o == OpGet || o == OpPut }

// IsReadOnly reports whether the op observes appliance state without
// mutating it. The dispatcher routes read-only ops through a shared
// (reader) lock so they execute concurrently across sessions, while
// mutating ops keep the paper's serialized schedule (§2.1). Transfer
// ops are not classified here: they follow the approval + transfer
// manager path.
func (o Op) IsReadOnly() bool {
	switch o {
	case OpPing, OpStat, OpLookup, OpList, OpStatfs, OpACLGet, OpLotStatus:
		return true
	}
	return false
}

// Reply codes of the common request interface.
const (
	CodeOK         = 0
	CodeNotFound   = 1
	CodeExists     = 2
	CodePermission = 3
	CodeNoSpace    = 4
	CodeBadRequest = 5
	CodeNotEmpty   = 6
	CodeNotDir     = 7
	CodeIsDir      = 8
	CodeInternal   = 9
	CodeNoLot      = 10
	// CodeBusy: the appliance refused the work to protect itself —
	// a connection quota is exhausted or the overload shedder is
	// active. Clients should back off and retry (HTTP maps it to
	// 503 + Retry-After, FTP to 421).
	CodeBusy = 11

	// CodeCount bounds the reply-code space; observability sizes
	// fixed-width per-code counter arrays with it so recording never
	// allocates.
	CodeCount = 12
)

var codeNames = map[int]string{
	CodeOK: "ok", CodeNotFound: "not found", CodeExists: "exists",
	CodePermission: "permission denied", CodeNoSpace: "no space",
	CodeBadRequest: "bad request", CodeNotEmpty: "not empty",
	CodeNotDir: "not a directory", CodeIsDir: "is a directory",
	CodeInternal: "internal error", CodeNoLot: "no lot",
	CodeBusy: "busy",
}

// CodeString names a reply code.
func CodeString(code int) string {
	if s, ok := codeNames[code]; ok {
		return s
	}
	return fmt.Sprintf("code(%d)", code)
}

var codeLabels = map[int]string{
	CodeOK: "ok", CodeNotFound: "not_found", CodeExists: "exists",
	CodePermission: "permission", CodeNoSpace: "no_space",
	CodeBadRequest: "bad_request", CodeNotEmpty: "not_empty",
	CodeNotDir: "not_dir", CodeIsDir: "is_dir",
	CodeInternal: "internal", CodeNoLot: "no_lot",
	CodeBusy: "busy",
}

// CodeLabel names a reply code as a metrics label (no spaces).
func CodeLabel(code int) string {
	if s, ok := codeLabels[code]; ok {
		return s
	}
	return fmt.Sprintf("code%d", code)
}

// Block and chunk sizes shared across the system.
const (
	// NFSBlockSize is the NFS v2 maximum read/write payload; NFS
	// clients issue one common-interface request per block, which is
	// why the stride scheduler must account by bytes (paper §4.2).
	NFSBlockSize = 8192
	// ChunkSize is the transfer manager's pump granularity for
	// file-based protocols.
	ChunkSize = 64 * 1024
)

// Request is the protocol-independent form of a client request.
type Request struct {
	Op    Op
	Proto string // protocol class: "chirp", "http", "ftp", "gridftp", "nfs"
	User  string // authenticated principal (GSI CN) or gsi.Anonymous

	Path    string
	NewPath string // rename destination (reserved)

	// Transfer geometry. Size is the client-declared length of a put
	// (-1 when unknown; the protocol frames the end of data). Offset
	// and Length select a byte range for block-based gets/puts; Length
	// zero on a get means "to end of file".
	Size   int64
	Offset int64
	Length int64
	// Stripes is the protocol handler's requested stripe width for the
	// data phase (FTP MODE E parallelism). Zero or one means a single
	// sequential stream; the dispatcher stripes only when the data
	// endpoints support it (StripeSink/StripeSource) and the size is
	// known.
	Stripes int

	// Lot management.
	LotID       string
	LotBytes    int64
	LotDuration time.Duration

	// ACL manipulation.
	ACLUser   string
	ACLRights string

	// Arrived is stamped by the dispatcher from the appliance clock.
	Arrived time.Duration

	// TraceID identifies the logical request across the fleet: protocol
	// handlers fill it when the peer propagated a trace context
	// (Trace-Context header, trcx command, SITE TRCX); the dispatcher
	// mints a fresh one otherwise, so every request has an identity.
	TraceID uint64
	// ParentSpan is the caller's span this request is causally nested
	// under, carried with TraceID in the propagated trace context (0
	// when the request is a trace root).
	ParentSpan uint64
	// SpanID is this request's own span identity, minted by the
	// dispatcher; sub-stages (queue wait, data phase, stripes) parent
	// under it.
	SpanID uint64

	// Handle carries protocol-private per-request state (e.g., the RPC
	// transaction an NFS block request belongs to).
	Handle interface{}
}

// FileInfo describes one file or directory in replies.
type FileInfo struct {
	Name    string
	Size    int64
	IsDir   bool
	ModTime time.Duration // appliance clock time of last modification
	Owner   string
}

// LotInfo describes a storage guarantee in replies.
type LotInfo struct {
	ID         string
	Owner      string
	Capacity   int64
	Used       int64
	Expires    time.Duration
	BestEffort bool
}

// Reply is the protocol-independent response to a Request.
type Reply struct {
	Code    int
	Message string
	Size    int64      // object size for stat/get
	Info    *FileInfo  // stat result
	Entries []FileInfo // list result
	Lot     *LotInfo   // lot operations
	Ad      string     // statfs: the server's ClassAd text
	Rights  string     // acl_get
}

// OK reports whether the reply is a success.
func (r *Reply) OK() bool { return r.Code == CodeOK }

// ErrReply builds an error reply.
func ErrReply(code int, format string, args ...interface{}) *Reply {
	return &Reply{Code: code, Message: fmt.Sprintf(format, args...)}
}

// OKReply builds an empty success reply.
func OKReply() *Reply { return &Reply{Code: CodeOK} }

// Session is a virtual protocol connection: the dispatcher's view of
// one authenticated client, independent of wire protocol. A Session's
// methods are driven by a single dispatcher goroutine at a time.
type Session interface {
	// Proto returns the protocol class name.
	Proto() string
	// User returns the authenticated principal.
	User() string
	// Next parses the client's next request, blocking until one
	// arrives. It returns io.EOF when the client disconnects.
	Next() (*Request, error)
	// Reply transmits the response to a non-transfer request, or the
	// final status of a put.
	Reply(req *Request, rep *Reply) error
	// SendData begins the data phase of an approved get of size bytes:
	// the handler emits protocol framing and returns the body sink.
	// Closing the sink completes the framing.
	SendData(req *Request, size int64) (io.WriteCloser, error)
	// RecvData begins the data phase of an approved put: the handler
	// emits any go-ahead framing and returns the body source, which
	// yields exactly the put's bytes then io.EOF.
	RecvData(req *Request) (io.ReadCloser, error)
	// Close releases the connection.
	Close() error
}

// Handler is a protocol module: it owns one listening endpoint and
// wraps accepted connections into Sessions, performing its
// protocol-specific authentication (paper §3: authentication is per
// protocol handler).
type Handler interface {
	// Proto returns the protocol class name this handler serves.
	Proto() string
	// NewSession authenticates conn and returns its Session.
	NewSession(conn net.Conn) (Session, error)
}

// Parkable is the idle-parking capability a Session may expose when
// its wire format is framed request/response on a single connection
// (Chirp, HTTP): between requests — when Buffered reports no bytes
// already sitting in the session's read buffer — the dispatcher may
// register Conn with a readiness poller and release the serving
// goroutine, resuming the session when the next request arrives.
// Protocols with out-of-band state (FTP data connections, NFS RPC
// transactions) do not implement it and keep their goroutines.
type Parkable interface {
	// Conn returns the connection the poller should watch.
	Conn() net.Conn
	// Buffered reports bytes already read off the wire but not yet
	// parsed; a session with buffered bytes must not be parked (the
	// poller would never see them).
	Buffered() int
}

// StripeSink is the striped-get capability a SendData sink may expose
// (the FTP MODE E sender does): SinkAt returns an independent writer
// that frames its bytes at the given offset within the transfer
// payload, so concurrent stripe pumps can fan one file over parallel
// data connections. Writers for disjoint offsets are safe to use
// concurrently; Close on the parent sink still completes the framing
// after all stripe writers are done.
type StripeSink interface {
	SinkAt(off int64) io.Writer
}

// StripeSource is the striped-put capability a RecvData source may
// expose (the FTP MODE E receiver does): SetStripeBounds announces the
// payload offsets at which the transfer will be partitioned (incoming
// blocks straddling a bound are split on ingest), and SourceAt returns
// an independent reader over one payload range [off, off+n). Readers
// for disjoint ranges are safe to use concurrently.
type StripeSource interface {
	SetStripeBounds(bounds []int64)
	SourceAt(off, n int64) io.Reader
}

// NopWriteCloser wraps w with a no-op Close.
func NopWriteCloser(w io.Writer) io.WriteCloser { return nopWC{w} }

type nopWC struct{ io.Writer }

func (nopWC) Close() error { return nil }

// VectoredSink frames one response body with a prepared header that
// rides the first payload write as a single vectored write
// (net.Buffers, i.e. writev on TCP sockets): headers and zero-copy
// extent payloads reach the wire in one syscall without being
// concatenated into a staging buffer. If the body is empty, Close
// emits the header alone. The sink never closes the underlying
// writer; callers must not interleave other writes to w between the
// first Write and Close.
type VectoredSink struct {
	w      io.Writer
	header []byte
	bufs   net.Buffers
}

// NewVectoredSink returns a sink that prefixes the first write to w
// with header.
func NewVectoredSink(w io.Writer, header []byte) *VectoredSink {
	return &VectoredSink{w: w, header: header}
}

// Write implements io.Writer. The first call sends header+p as one
// vectored write; the return counts only payload bytes, so byte
// accounting upstream never includes framing.
func (v *VectoredSink) Write(p []byte) (int, error) {
	if v.header == nil {
		return v.w.Write(p)
	}
	hdr := v.header
	v.header = nil
	v.bufs = append(v.bufs[:0], hdr, p)
	n, err := v.bufs.WriteTo(v.w)
	n -= int64(len(hdr))
	if n < 0 {
		// The write died inside the header: no payload was accepted.
		if err == nil {
			err = io.ErrShortWrite
		}
		return 0, err
	}
	if err == nil && int(n) < len(p) {
		err = io.ErrShortWrite
	}
	return int(n), err
}

// Close flushes the header if no body write ever happened (zero-byte
// transfers still get framed). It does not close the underlying
// writer.
func (v *VectoredSink) Close() error {
	if v.header == nil {
		return nil
	}
	hdr := v.header
	v.header = nil
	_, err := v.w.Write(hdr)
	return err
}
