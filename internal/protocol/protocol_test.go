package protocol

import (
	"strings"
	"testing"
)

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		OpGet: "get", OpPut: "put", OpList: "list", OpLotCreate: "lot_create",
		OpACLSet: "acl_set", OpQuit: "quit", Op(999): "op(999)",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", int(op), got, want)
		}
	}
}

func TestIsTransfer(t *testing.T) {
	for _, op := range []Op{OpGet, OpPut} {
		if !op.IsTransfer() {
			t.Errorf("%v.IsTransfer() = false", op)
		}
	}
	for _, op := range []Op{OpList, OpStat, OpMkdir, OpLotCreate, OpACLGet, OpQuit} {
		if op.IsTransfer() {
			t.Errorf("%v.IsTransfer() = true", op)
		}
	}
}

func TestCodeString(t *testing.T) {
	if got := CodeString(CodeOK); got != "ok" {
		t.Errorf("CodeString(OK) = %q", got)
	}
	if got := CodeString(CodeNoLot); got != "no lot" {
		t.Errorf("CodeString(NoLot) = %q", got)
	}
	if got := CodeString(12345); !strings.Contains(got, "12345") {
		t.Errorf("CodeString(unknown) = %q", got)
	}
}

func TestReplyHelpers(t *testing.T) {
	ok := OKReply()
	if !ok.OK() || ok.Message != "" {
		t.Errorf("OKReply = %+v", ok)
	}
	e := ErrReply(CodeNotFound, "missing %s", "/f")
	if e.OK() || e.Code != CodeNotFound || e.Message != "missing /f" {
		t.Errorf("ErrReply = %+v", e)
	}
}

func TestNopWriteCloser(t *testing.T) {
	var sb strings.Builder
	wc := NopWriteCloser(&sb)
	if _, err := wc.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := wc.Close(); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "x" {
		t.Errorf("buffer = %q", sb.String())
	}
}
