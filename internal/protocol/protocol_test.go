package protocol

import (
	"strings"
	"testing"
)

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		OpGet: "get", OpPut: "put", OpList: "list", OpLotCreate: "lot_create",
		OpACLSet: "acl_set", OpQuit: "quit", Op(999): "op(999)",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", int(op), got, want)
		}
	}
}

func TestIsTransfer(t *testing.T) {
	for _, op := range []Op{OpGet, OpPut} {
		if !op.IsTransfer() {
			t.Errorf("%v.IsTransfer() = false", op)
		}
	}
	for _, op := range []Op{OpList, OpStat, OpMkdir, OpLotCreate, OpACLGet, OpQuit} {
		if op.IsTransfer() {
			t.Errorf("%v.IsTransfer() = true", op)
		}
	}
}

func TestIsReadOnly(t *testing.T) {
	readOnly := []Op{OpPing, OpStat, OpLookup, OpList, OpStatfs, OpACLGet, OpLotStatus}
	for _, op := range readOnly {
		if !op.IsReadOnly() {
			t.Errorf("%v.IsReadOnly() = false", op)
		}
		if op.IsTransfer() {
			t.Errorf("%v is both read-only and transfer", op)
		}
	}
	mutating := []Op{
		OpMkdir, OpRmdir, OpRemove,
		OpLotCreate, OpLotRelease, OpLotRenew, OpLotAddMember, OpLotRemoveMember,
		OpACLSet,
	}
	for _, op := range mutating {
		if op.IsReadOnly() {
			t.Errorf("%v.IsReadOnly() = true, must stay on the serialized schedule", op)
		}
	}
	// Every named op is exactly one of: transfer, read-only, mutating
	// storage op, or the session-control none/quit pair. A new op that
	// falls through unclassified lands on the (safe) serialized path,
	// but must be added here deliberately.
	for op := range opNames {
		switch {
		case op == OpNone || op == OpQuit:
		case op.IsTransfer():
		case op.IsReadOnly():
		default:
			found := false
			for _, m := range mutating {
				if m == op {
					found = true
				}
			}
			if !found {
				t.Errorf("%v unclassified: add it to the read-only or mutating set", op)
			}
		}
	}
}

func TestCodeString(t *testing.T) {
	if got := CodeString(CodeOK); got != "ok" {
		t.Errorf("CodeString(OK) = %q", got)
	}
	if got := CodeString(CodeNoLot); got != "no lot" {
		t.Errorf("CodeString(NoLot) = %q", got)
	}
	if got := CodeString(12345); !strings.Contains(got, "12345") {
		t.Errorf("CodeString(unknown) = %q", got)
	}
}

func TestReplyHelpers(t *testing.T) {
	ok := OKReply()
	if !ok.OK() || ok.Message != "" {
		t.Errorf("OKReply = %+v", ok)
	}
	e := ErrReply(CodeNotFound, "missing %s", "/f")
	if e.OK() || e.Code != CodeNotFound || e.Message != "missing /f" {
		t.Errorf("ErrReply = %+v", e)
	}
}

func TestNopWriteCloser(t *testing.T) {
	var sb strings.Builder
	wc := NopWriteCloser(&sb)
	if _, err := wc.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := wc.Close(); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "x" {
		t.Errorf("buffer = %q", sb.String())
	}
}
