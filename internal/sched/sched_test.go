package sched

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func unit(class string, bytes, seq int64) *Unit {
	return &Unit{Class: class, Bytes: bytes, Seq: seq}
}

// pickOnce mirrors the retired snapshot Pick for tests written against
// it: offer the units, take one admission decision, withdraw the rest.
func pickOnce(p Policy, now time.Duration, units ...*Unit) (*Unit, time.Duration) {
	for _, u := range units {
		p.Add(u)
	}
	got, wait := p.Next(now)
	for _, u := range units {
		if u != got {
			p.Remove(u)
		}
	}
	return got, wait
}

func TestFIFOPicksLowestSeq(t *testing.T) {
	p := NewFIFO()
	got, wait := pickOnce(p, 0, unit("a", 10, 3), unit("b", 10, 1), unit("c", 10, 2))
	if got == nil || got.Seq != 1 || wait != 0 {
		t.Errorf("pick = %+v, %v; want seq 1, 0", got, wait)
	}
	if got, _ := p.Next(0); got != nil {
		t.Errorf("Next(empty) = %+v", got)
	}
}

func TestFIFOOutOfOrderArrival(t *testing.T) {
	p := NewFIFO()
	for _, seq := range []int64{5, 2, 9, 1, 7} {
		p.Add(unit("x", 10, seq))
	}
	want := []int64{1, 2, 5, 7, 9}
	for _, w := range want {
		u, _ := p.Next(0)
		if u == nil || u.Seq != w {
			t.Fatalf("Next = %+v, want seq %d", u, w)
		}
	}
	if p.Len() != 0 {
		t.Errorf("Len = %d after draining", p.Len())
	}
}

func TestFIFORemove(t *testing.T) {
	p := NewFIFO()
	u1, u2, u3 := unit("x", 10, 1), unit("x", 10, 2), unit("x", 10, 3)
	p.Add(u1)
	p.Add(u2)
	p.Add(u3)
	p.Remove(u2)
	p.Remove(u1)
	if got, _ := p.Next(0); got != u3 {
		t.Errorf("Next = %+v, want the surviving unit", got)
	}
	if p.Len() != 0 {
		t.Errorf("Len = %d", p.Len())
	}
}

// drive repeatedly schedules from a fixed backlog where every class
// always has work, returning bytes delivered per class.
func drive(p Policy, classes map[string]int64, rounds int) map[string]int64 {
	delivered := make(map[string]int64)
	seq := int64(0)
	for i := 0; i < rounds; i++ {
		var units []*Unit
		for _, class := range SortedClasses(toFloat(classes)) {
			seq++
			units = append(units, unit(class, classes[class], seq))
		}
		got, _ := pickOnce(p, time.Duration(i), units...)
		if got == nil {
			continue
		}
		delivered[got.Class] += got.Bytes
	}
	return delivered
}

func toFloat(m map[string]int64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = float64(v)
	}
	return out
}

func TestStrideEqualTickets(t *testing.T) {
	p := NewStride(map[string]int{"a": 100, "b": 100})
	delivered := drive(p, map[string]int64{"a": 1000, "b": 1000}, 1000)
	ratio := float64(delivered["a"]) / float64(delivered["b"])
	if ratio < 0.99 || ratio > 1.01 {
		t.Errorf("equal tickets ratio = %v (%v)", ratio, delivered)
	}
}

func TestStrideProportionalTickets(t *testing.T) {
	p := NewStride(map[string]int{"a": 300, "b": 100})
	delivered := drive(p, map[string]int64{"a": 1000, "b": 1000}, 4000)
	ratio := float64(delivered["a"]) / float64(delivered["b"])
	if ratio < 2.9 || ratio > 3.1 {
		t.Errorf("3:1 tickets ratio = %v (%v)", ratio, delivered)
	}
}

// TestStrideByteBasedEqualizesBlockProtocols is the paper's central
// stride property: a block protocol issuing 8KB requests gets the same
// *bandwidth* as a file protocol issuing 1MB requests at equal
// tickets, because strides are charged by bytes.
func TestStrideByteBasedEqualizesBlockProtocols(t *testing.T) {
	p := NewStride(map[string]int{"nfs": 100, "http": 100})
	delivered := drive(p, map[string]int64{"nfs": 8 * 1024, "http": 1024 * 1024}, 20000)
	ratio := float64(delivered["nfs"]) / float64(delivered["http"])
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("byte-based bandwidth ratio = %v (%v)", ratio, delivered)
	}
}

// With request-based charging (the ablation) NFS gets equal *requests*
// and therefore 128x less bandwidth.
func TestStrideRequestBasedStarvesBlockProtocols(t *testing.T) {
	p := NewStride(map[string]int{"nfs": 100, "http": 100})
	p.ChargeByBytes = false
	delivered := drive(p, map[string]int64{"nfs": 8 * 1024, "http": 1024 * 1024}, 20000)
	ratio := float64(delivered["nfs"]) / float64(delivered["http"])
	if ratio > 0.05 {
		t.Errorf("request-based ratio = %v, expected NFS starved", ratio)
	}
}

func TestStrideNewClassJoinsAtMinPass(t *testing.T) {
	p := NewStride(map[string]int{"a": 100, "b": 100})
	// Run a alone for a while.
	for i := 0; i < 100; i++ {
		pickOnce(p, 0, unit("a", 1000, int64(i)))
	}
	// b arrives; it must not monopolize by having banked zero pass.
	delivered := drive(p, map[string]int64{"a": 1000, "b": 1000}, 1000)
	ratio := float64(delivered["b"]) / float64(delivered["a"])
	if ratio > 1.1 {
		t.Errorf("late joiner got banked credit: ratio = %v", ratio)
	}
}

func TestStrideWorkConserving(t *testing.T) {
	p := NewStride(map[string]int{"a": 100, "b": 400})
	// b is owed service but only a has pending work: serve a anyway.
	pickOnce(p, 0, unit("a", 100, 1), unit("b", 100, 2)) // seed passes
	got, wait := pickOnce(p, 0, unit("a", 100, 3))
	if got == nil || got.Class != "a" || wait != 0 {
		t.Errorf("work-conserving pick = %+v, %v", got, wait)
	}
}

func TestStrideNonWorkConservingWaits(t *testing.T) {
	p := NewStride(map[string]int{"a": 100, "b": 400})
	p.IdleWait = 10 * time.Millisecond
	// Seed both classes.
	for i := 0; i < 10; i++ {
		got, _ := pickOnce(p, 0, unit("a", 1000, 1), unit("b", 1000, 2))
		if got == nil {
			t.Fatal("pick failed during seeding")
		}
	}
	// Advance a's pass so the absent b is strictly owed service, then
	// offer only a: the scheduler must hold the server for b...
	for i := 0; i < 3; i++ {
		pickOnce(p, time.Second, unit("a", 100000, int64(10+i)))
	}
	got, wait := pickOnce(p, time.Second, unit("a", 1000, 99))
	if got != nil || wait != 10*time.Millisecond {
		t.Fatalf("expected idle hold, got %+v wait=%v", got, wait)
	}
	// ...but give up after IdleWait and serve the competitor.
	got, _ = pickOnce(p, time.Second+11*time.Millisecond, unit("a", 1000, 100))
	if got == nil || got.Class != "a" {
		t.Errorf("after IdleWait: pick = %+v, want class a", got)
	}
}

// TestStrideIdleScanDeterministic pins the non-work-conserving scan's
// behavior when two classes are starved at once: the scan visits
// classes in sorted name order, so the class with the strictly minimal
// pass arms the wake timer, the waits returned are exact, and the
// whole trace is identical run to run. (The scan previously ranged
// over a map, so the bookkeeping — and the returned wait — could
// differ between runs.)
func TestStrideIdleScanDeterministic(t *testing.T) {
	ms := time.Millisecond
	trace := func() []time.Duration {
		p := NewStride(map[string]int{"a": 100, "b": 100, "c": 100})
		p.IdleWait = 10 * ms
		seq := int64(0)
		nu := func(class string, bytes int64) *Unit {
			seq++
			return unit(class, bytes, seq)
		}
		// Seed passes: b lowest (10), a next (20), c far ahead (5000).
		pickOnce(p, 0, nu("b", 1_000))
		pickOnce(p, 0, nu("a", 2_000))
		pickOnce(p, 0, nu("c", 500_000))
		// Now a and b are both starved below c; only c has work.
		var waits []time.Duration
		for _, now := range []time.Duration{0, 3 * ms, 6 * ms, 12 * ms, 15 * ms} {
			_, wait := pickOnce(p, now, nu("c", 1_000))
			waits = append(waits, wait)
		}
		return waits
	}

	first := trace()
	// b (strict minimum) arms the timer at now=0 and holds the server
	// until the 10ms grace expires; after that competitors are served.
	want := []time.Duration{10 * ms, 7 * ms, 4 * ms, 0, 0}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("trace = %v, want %v", first, want)
		}
	}
	for run := 0; run < 20; run++ {
		if got := trace(); len(got) != len(first) {
			t.Fatalf("trace length changed")
		} else {
			for i := range got {
				if got[i] != first[i] {
					t.Fatalf("run %d diverged: %v vs %v", run, got, first)
				}
			}
		}
	}
}

func TestCacheAwarePrefersResident(t *testing.T) {
	probe := fakeProbe{"/hot": 1.0, "/cold": 0.0}
	p := NewCacheAware(probe, 200, 20, 8*time.Millisecond)
	got, _ := pickOnce(p, 0,
		&Unit{Class: "x", Bytes: 1 << 20, Path: "/cold", Seq: 1},
		&Unit{Class: "x", Bytes: 1 << 20, Path: "/hot", Seq: 2},
	)
	if got == nil || got.Path != "/hot" {
		t.Errorf("pick = %+v, want the cache-resident request", got)
	}
}

func TestCacheAwarePrefersSmallerOnEqualResidency(t *testing.T) {
	probe := fakeProbe{"/a": 0.0, "/b": 0.0}
	p := NewCacheAware(probe, 200, 20, 8*time.Millisecond)
	got, _ := pickOnce(p, 0,
		&Unit{Class: "x", Bytes: 10 << 20, Path: "/a", Seq: 1},
		&Unit{Class: "x", Bytes: 1 << 20, Path: "/b", Seq: 2},
	)
	if got == nil || got.Path != "/b" {
		t.Errorf("pick = %+v, want the shorter job", got)
	}
}

func TestCacheAwareNilProbe(t *testing.T) {
	p := NewCacheAware(nil, 200, 20, 0)
	if got, _ := pickOnce(p, 0, unit("x", 100, 1)); got == nil {
		t.Error("nil-probe pick returned nothing")
	}
}

// TestCacheAwareInvalidation: when a versioned residency model
// changes, cached estimates are recomputed, so a request that went
// cold loses its place to one that became hot.
func TestCacheAwareInvalidation(t *testing.T) {
	probe := &genProbe{res: map[string]float64{"/x": 1.0, "/y": 0.0}}
	p := NewCacheAware(probe, 200, 20, 8*time.Millisecond)
	ux := &Unit{Class: "c", Bytes: 1 << 20, Path: "/x", Seq: 1}
	uy := &Unit{Class: "c", Bytes: 1 << 20, Path: "/y", Seq: 2}
	p.Add(ux)
	p.Add(uy)
	// The model flips before any admission: /y is now the hit.
	probe.res["/x"], probe.res["/y"] = 0.0, 1.0
	probe.gen++
	if got, _ := p.Next(0); got != uy {
		t.Errorf("Next = %+v, want the newly resident request", got)
	}
	p.Remove(ux)
}

// genProbe is a mutable residency model with a version counter.
type genProbe struct {
	res map[string]float64
	gen uint64
}

func (p *genProbe) Residency(path string, off, n int64) float64 { return p.res[path] }
func (p *genProbe) Generation() uint64                          { return p.gen }

type fakeProbe map[string]float64

func (f fakeProbe) Residency(path string, off, n int64) float64 { return f[path] }

func TestFairnessIdeal(t *testing.T) {
	if f := Fairness([]float64{1, 1, 1, 1}); math.Abs(f-1) > 1e-9 {
		t.Errorf("Fairness(ideal) = %v", f)
	}
	if f := Fairness(nil); f != 1 {
		t.Errorf("Fairness(nil) = %v", f)
	}
	if f := Fairness([]float64{0, 0}); f != 1 {
		t.Errorf("Fairness(zeros) = %v", f)
	}
}

func TestFairnessSkewed(t *testing.T) {
	f := Fairness([]float64{1, 1, 1, 0.2})
	if f > 0.95 || f < 0.5 {
		t.Errorf("Fairness(skewed) = %v, want noticeably below 1", f)
	}
	// One component hogging everything approaches 1/N.
	f = Fairness([]float64{1, 0, 0, 0})
	if math.Abs(f-0.25) > 1e-9 {
		t.Errorf("Fairness(monopoly) = %v, want 0.25", f)
	}
}

// Property: Jain's index is always in (0, 1] and scale-invariant.
func TestQuickFairnessProperties(t *testing.T) {
	f := func(xs []uint8) bool {
		if len(xs) == 0 {
			return true
		}
		vals := make([]float64, len(xs))
		scaled := make([]float64, len(xs))
		for i, x := range xs {
			vals[i] = float64(x)
			scaled[i] = float64(x) * 7.5
		}
		a, b := Fairness(vals), Fairness(scaled)
		return a > 0 && a <= 1+1e-9 && math.Abs(a-b) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: stride with equal tickets and equal bytes alternates
// between classes (no starvation window longer than one pick).
func TestQuickStrideAlternation(t *testing.T) {
	p := NewStride(map[string]int{"a": 100, "b": 100})
	last := ""
	for i := 0; i < 100; i++ {
		got, _ := pickOnce(p, 0, unit("a", 500, int64(2*i)), unit("b", 500, int64(2*i+1)))
		if got == nil {
			t.Fatal("no pick")
		}
		if got.Class == last {
			t.Fatalf("round %d: class %q served twice in a row", i, last)
		}
		last = got.Class
	}
}

func TestSortedClasses(t *testing.T) {
	m := map[string]float64{"zeta": 1, "alpha": 2, "mid": 3}
	got := SortedClasses(m)
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedClasses = %v", got)
		}
	}
}

func TestCacheAwareEstimate(t *testing.T) {
	probe := fakeProbe{"/hot": 1.0, "/cold": 0.0, "/half": 0.5}
	p := NewCacheAware(probe, 200, 20, 8*time.Millisecond)
	hot := p.Estimate(&Unit{Path: "/hot", Bytes: 10 << 20})
	cold := p.Estimate(&Unit{Path: "/cold", Bytes: 10 << 20})
	half := p.Estimate(&Unit{Path: "/half", Bytes: 10 << 20})
	if !(hot < half && half < cold) {
		t.Errorf("estimates not ordered: hot=%v half=%v cold=%v", hot, half, cold)
	}
	// Cold estimates include the positioning cost.
	if cold < 8*time.Millisecond {
		t.Errorf("cold estimate %v misses seek", cold)
	}
}

func TestStrideZeroTicketsIgnored(t *testing.T) {
	p := NewStride(map[string]int{"a": 0, "b": 100})
	if p.Tickets("a") != DefaultTickets {
		t.Errorf("zero tickets not defaulted: %d", p.Tickets("a"))
	}
	if p.Tickets("unlisted") != DefaultTickets {
		t.Errorf("unlisted tickets = %d", p.Tickets("unlisted"))
	}
}

func TestStrideEmptyPending(t *testing.T) {
	p := NewStride(nil)
	if got, wait := p.Next(0); got != nil || wait != 0 {
		t.Errorf("Next(empty) = %+v, %v", got, wait)
	}
}

// TestStrideLenTracksMembership: Add/Remove/Next keep the queued count
// and per-class sub-queues consistent.
func TestStrideLenTracksMembership(t *testing.T) {
	p := NewStride(nil)
	units := []*Unit{unit("a", 10, 1), unit("b", 10, 2), unit("a", 10, 3)}
	for _, u := range units {
		p.Add(u)
	}
	if p.Len() != 3 {
		t.Fatalf("Len = %d", p.Len())
	}
	p.Remove(units[2])
	if p.Len() != 2 {
		t.Fatalf("Len after Remove = %d", p.Len())
	}
	if got, _ := p.Next(0); got == nil {
		t.Fatal("Next returned nothing")
	}
	if got, _ := p.Next(0); got == nil {
		t.Fatal("Next returned nothing")
	}
	if got, _ := p.Next(0); got != nil {
		t.Fatalf("Next on drained = %+v", got)
	}
	if p.Len() != 0 {
		t.Errorf("Len = %d after draining", p.Len())
	}
}
