package sched

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func unit(class string, bytes, seq int64) *Unit {
	return &Unit{Class: class, Bytes: bytes, Seq: seq}
}

func TestFIFOPicksLowestSeq(t *testing.T) {
	p := NewFIFO()
	pending := []*Unit{unit("a", 10, 3), unit("b", 10, 1), unit("c", 10, 2)}
	idx, wait := p.Pick(pending, 0)
	if idx != 1 || wait != 0 {
		t.Errorf("Pick = %d, %v; want 1, 0", idx, wait)
	}
	if idx, _ := p.Pick(nil, 0); idx != -1 {
		t.Errorf("Pick(empty) = %d", idx)
	}
}

// drive repeatedly schedules from a fixed backlog where every class
// always has work, returning bytes delivered per class.
func drive(p Policy, classes map[string]int64, rounds int) map[string]int64 {
	delivered := make(map[string]int64)
	seq := int64(0)
	for i := 0; i < rounds; i++ {
		var pending []*Unit
		for _, class := range SortedClasses(toFloat(classes)) {
			seq++
			pending = append(pending, unit(class, classes[class], seq))
		}
		idx, _ := p.Pick(pending, time.Duration(i))
		if idx < 0 {
			continue
		}
		delivered[pending[idx].Class] += pending[idx].Bytes
	}
	return delivered
}

func toFloat(m map[string]int64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = float64(v)
	}
	return out
}

func TestStrideEqualTickets(t *testing.T) {
	p := NewStride(map[string]int{"a": 100, "b": 100})
	delivered := drive(p, map[string]int64{"a": 1000, "b": 1000}, 1000)
	ratio := float64(delivered["a"]) / float64(delivered["b"])
	if ratio < 0.99 || ratio > 1.01 {
		t.Errorf("equal tickets ratio = %v (%v)", ratio, delivered)
	}
}

func TestStrideProportionalTickets(t *testing.T) {
	p := NewStride(map[string]int{"a": 300, "b": 100})
	delivered := drive(p, map[string]int64{"a": 1000, "b": 1000}, 4000)
	ratio := float64(delivered["a"]) / float64(delivered["b"])
	if ratio < 2.9 || ratio > 3.1 {
		t.Errorf("3:1 tickets ratio = %v (%v)", ratio, delivered)
	}
}

// TestStrideByteBasedEqualizesBlockProtocols is the paper's central
// stride property: a block protocol issuing 8KB requests gets the same
// *bandwidth* as a file protocol issuing 1MB requests at equal
// tickets, because strides are charged by bytes.
func TestStrideByteBasedEqualizesBlockProtocols(t *testing.T) {
	p := NewStride(map[string]int{"nfs": 100, "http": 100})
	delivered := drive(p, map[string]int64{"nfs": 8 * 1024, "http": 1024 * 1024}, 20000)
	ratio := float64(delivered["nfs"]) / float64(delivered["http"])
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("byte-based bandwidth ratio = %v (%v)", ratio, delivered)
	}
}

// With request-based charging (the ablation) NFS gets equal *requests*
// and therefore 128x less bandwidth.
func TestStrideRequestBasedStarvesBlockProtocols(t *testing.T) {
	p := NewStride(map[string]int{"nfs": 100, "http": 100})
	p.ChargeByBytes = false
	delivered := drive(p, map[string]int64{"nfs": 8 * 1024, "http": 1024 * 1024}, 20000)
	ratio := float64(delivered["nfs"]) / float64(delivered["http"])
	if ratio > 0.05 {
		t.Errorf("request-based ratio = %v, expected NFS starved", ratio)
	}
}

func TestStrideNewClassJoinsAtMinPass(t *testing.T) {
	p := NewStride(map[string]int{"a": 100, "b": 100})
	// Run a alone for a while.
	for i := 0; i < 100; i++ {
		p.Pick([]*Unit{unit("a", 1000, int64(i))}, 0)
	}
	// b arrives; it must not monopolize by having banked zero pass.
	delivered := drive(p, map[string]int64{"a": 1000, "b": 1000}, 1000)
	ratio := float64(delivered["b"]) / float64(delivered["a"])
	if ratio > 1.1 {
		t.Errorf("late joiner got banked credit: ratio = %v", ratio)
	}
}

func TestStrideWorkConserving(t *testing.T) {
	p := NewStride(map[string]int{"a": 100, "b": 400})
	// b is owed service but only a has pending work: serve a anyway.
	p.Pick([]*Unit{unit("a", 100, 1), unit("b", 100, 2)}, 0) // seed passes
	idx, wait := p.Pick([]*Unit{unit("a", 100, 3)}, 0)
	if idx != 0 || wait != 0 {
		t.Errorf("work-conserving Pick = %d, %v", idx, wait)
	}
}

func TestStrideNonWorkConservingWaits(t *testing.T) {
	p := NewStride(map[string]int{"a": 100, "b": 400})
	p.IdleWait = 10 * time.Millisecond
	// Seed both classes.
	pend := []*Unit{unit("a", 1000, 1), unit("b", 1000, 2)}
	for i := 0; i < 10; i++ {
		idx, _ := p.Pick(pend, 0)
		if idx < 0 {
			t.Fatal("pick failed during seeding")
		}
	}
	// Advance a's pass so the absent b is strictly owed service, then
	// offer only a: the scheduler must hold the server for b...
	for i := 0; i < 3; i++ {
		p.Pick([]*Unit{unit("a", 100000, int64(10+i))}, time.Second)
	}
	idx, wait := p.Pick([]*Unit{unit("a", 1000, 99)}, time.Second)
	if idx != -1 || wait != 10*time.Millisecond {
		t.Fatalf("expected idle hold, got idx=%d wait=%v", idx, wait)
	}
	// ...but give up after IdleWait and serve the competitor.
	idx, _ = p.Pick([]*Unit{unit("a", 1000, 100)}, time.Second+11*time.Millisecond)
	if idx != 0 {
		t.Errorf("after IdleWait: idx = %d, want 0", idx)
	}
}

func TestCacheAwarePrefersResident(t *testing.T) {
	probe := fakeProbe{"/hot": 1.0, "/cold": 0.0}
	p := NewCacheAware(probe, 200, 20, 8*time.Millisecond)
	pending := []*Unit{
		{Class: "x", Bytes: 1 << 20, Path: "/cold", Seq: 1},
		{Class: "x", Bytes: 1 << 20, Path: "/hot", Seq: 2},
	}
	idx, _ := p.Pick(pending, 0)
	if idx != 1 {
		t.Errorf("Pick = %d, want the cache-resident request", idx)
	}
}

func TestCacheAwarePrefersSmallerOnEqualResidency(t *testing.T) {
	probe := fakeProbe{"/a": 0.0, "/b": 0.0}
	p := NewCacheAware(probe, 200, 20, 8*time.Millisecond)
	pending := []*Unit{
		{Class: "x", Bytes: 10 << 20, Path: "/a", Seq: 1},
		{Class: "x", Bytes: 1 << 20, Path: "/b", Seq: 2},
	}
	idx, _ := p.Pick(pending, 0)
	if idx != 1 {
		t.Errorf("Pick = %d, want the shorter job", idx)
	}
}

func TestCacheAwareNilProbe(t *testing.T) {
	p := NewCacheAware(nil, 200, 20, 0)
	if idx, _ := p.Pick([]*Unit{unit("x", 100, 1)}, 0); idx != 0 {
		t.Errorf("nil-probe Pick = %d", idx)
	}
}

type fakeProbe map[string]float64

func (f fakeProbe) Residency(path string, off, n int64) float64 { return f[path] }

func TestFairnessIdeal(t *testing.T) {
	if f := Fairness([]float64{1, 1, 1, 1}); math.Abs(f-1) > 1e-9 {
		t.Errorf("Fairness(ideal) = %v", f)
	}
	if f := Fairness(nil); f != 1 {
		t.Errorf("Fairness(nil) = %v", f)
	}
	if f := Fairness([]float64{0, 0}); f != 1 {
		t.Errorf("Fairness(zeros) = %v", f)
	}
}

func TestFairnessSkewed(t *testing.T) {
	f := Fairness([]float64{1, 1, 1, 0.2})
	if f > 0.95 || f < 0.5 {
		t.Errorf("Fairness(skewed) = %v, want noticeably below 1", f)
	}
	// One component hogging everything approaches 1/N.
	f = Fairness([]float64{1, 0, 0, 0})
	if math.Abs(f-0.25) > 1e-9 {
		t.Errorf("Fairness(monopoly) = %v, want 0.25", f)
	}
}

// Property: Jain's index is always in (0, 1] and scale-invariant.
func TestQuickFairnessProperties(t *testing.T) {
	f := func(xs []uint8) bool {
		if len(xs) == 0 {
			return true
		}
		vals := make([]float64, len(xs))
		scaled := make([]float64, len(xs))
		for i, x := range xs {
			vals[i] = float64(x)
			scaled[i] = float64(x) * 7.5
		}
		a, b := Fairness(vals), Fairness(scaled)
		return a > 0 && a <= 1+1e-9 && math.Abs(a-b) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: stride with equal tickets and equal bytes alternates
// between classes (no starvation window longer than one pick).
func TestQuickStrideAlternation(t *testing.T) {
	p := NewStride(map[string]int{"a": 100, "b": 100})
	last := ""
	for i := 0; i < 100; i++ {
		pending := []*Unit{unit("a", 500, int64(2*i)), unit("b", 500, int64(2*i+1))}
		idx, _ := p.Pick(pending, 0)
		if pending[idx].Class == last {
			t.Fatalf("round %d: class %q served twice in a row", i, last)
		}
		last = pending[idx].Class
	}
}

func TestSortedClasses(t *testing.T) {
	m := map[string]float64{"zeta": 1, "alpha": 2, "mid": 3}
	got := SortedClasses(m)
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedClasses = %v", got)
		}
	}
}

func TestCacheAwareEstimate(t *testing.T) {
	probe := fakeProbe{"/hot": 1.0, "/cold": 0.0, "/half": 0.5}
	p := NewCacheAware(probe, 200, 20, 8*time.Millisecond)
	hot := p.Estimate(&Unit{Path: "/hot", Bytes: 10 << 20})
	cold := p.Estimate(&Unit{Path: "/cold", Bytes: 10 << 20})
	half := p.Estimate(&Unit{Path: "/half", Bytes: 10 << 20})
	if !(hot < half && half < cold) {
		t.Errorf("estimates not ordered: hot=%v half=%v cold=%v", hot, half, cold)
	}
	// Cold estimates include the positioning cost.
	if cold < 8*time.Millisecond {
		t.Errorf("cold estimate %v misses seek", cold)
	}
}

func TestStrideZeroTicketsIgnored(t *testing.T) {
	p := NewStride(map[string]int{"a": 0, "b": 100})
	if p.Tickets("a") != DefaultTickets {
		t.Errorf("zero tickets not defaulted: %d", p.Tickets("a"))
	}
	if p.Tickets("unlisted") != DefaultTickets {
		t.Errorf("unlisted tickets = %d", p.Tickets("unlisted"))
	}
}

func TestStrideEmptyPending(t *testing.T) {
	p := NewStride(nil)
	if idx, wait := p.Pick(nil, 0); idx != -1 || wait != 0 {
		t.Errorf("Pick(empty) = %d, %v", idx, wait)
	}
}
