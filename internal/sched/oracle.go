package sched

import (
	"math"
	"sort"
	"time"
)

// This file retains the snapshot-based policy formulations that the
// incremental implementations replaced: pick the best index out of a
// freshly built []*Unit, scanning every pending transfer per
// admission. They are kept verbatim (modulo the deterministic sorted
// idle scan, mirrored in both formulations) as reference oracles: the
// equivalence tests replay randomized workloads through an oracle and
// its incremental counterpart and assert byte-for-byte identical
// decisions, and the scheduler benchmarks measure them as the
// before-side baseline. Nothing outside tests constructs them.

// refPolicy is the retired snapshot scheduling interface.
type refPolicy interface {
	name() string
	// pick returns the index of the unit to admit next, or -1 to leave
	// the server idle; a non-zero wait asks the manager to retry after
	// that delay even if no transfer completes.
	pick(pending []*Unit, now time.Duration) (idx int, wait time.Duration)
}

// refFIFO is the linear-scan arrival-order picker.
type refFIFO struct{}

func (*refFIFO) name() string { return "fifo" }

func (*refFIFO) pick(pending []*Unit, _ time.Duration) (int, time.Duration) {
	if len(pending) == 0 {
		return -1, 0
	}
	best := 0
	for i, u := range pending {
		if u.Seq < pending[best].Seq {
			best = i
		}
	}
	return best, 0
}

// refStride is the snapshot stride scheduler: per-admission it rescans
// the pending set for present classes, joins newcomers at the minimum
// pass, and linear-scans for the lowest-(pass, Seq) unit.
type refStride struct {
	tickets       map[string]int
	pass          map[string]float64
	chargeByBytes bool
	idleWait      time.Duration
	// waitingSince tracks, per class, when the class began being
	// waited for; prevents unbounded waiting.
	waitingSince map[string]time.Duration
}

func newRefStride(tickets map[string]int) *refStride {
	t := make(map[string]int, len(tickets))
	for k, v := range tickets {
		if v > 0 {
			t[k] = v
		}
	}
	return &refStride{
		tickets:       t,
		pass:          make(map[string]float64),
		chargeByBytes: true,
		waitingSince:  make(map[string]time.Duration),
	}
}

func (s *refStride) name() string { return "stride" }

func (s *refStride) ticketsFor(class string) int {
	if t, ok := s.tickets[class]; ok {
		return t
	}
	return DefaultTickets
}

func (s *refStride) pick(pending []*Unit, now time.Duration) (int, time.Duration) {
	if len(pending) == 0 {
		return -1, 0
	}
	// The pass of classes with pending work; new or returning classes
	// join at the current minimum so they cannot claim banked credit.
	minPass := math.Inf(1)
	present := make(map[string]bool)
	for _, u := range pending {
		present[u.Class] = true
	}
	for class := range present {
		if p, ok := s.pass[class]; ok && p < minPass {
			minPass = p
		}
	}
	if math.IsInf(minPass, 1) {
		minPass = 0
	}
	for class := range present {
		if _, ok := s.pass[class]; !ok {
			s.pass[class] = minPass
		}
	}

	// Non-work-conserving: if some known class is owed service (its
	// pass is strictly minimal among all classes) but has nothing
	// pending, hold the server briefly for it. Classes are visited in
	// sorted name order so the scan is deterministic.
	if s.idleWait > 0 {
		names := make([]string, 0, len(s.pass))
		for class := range s.pass {
			names = append(names, class)
		}
		sort.Strings(names)
		for _, class := range names {
			p := s.pass[class]
			if present[class] {
				delete(s.waitingSince, class)
				continue
			}
			owed := true
			for other, op := range s.pass {
				if other != class && op <= p {
					owed = false
					break
				}
			}
			if !owed {
				delete(s.waitingSince, class)
				continue
			}
			since, started := s.waitingSince[class]
			if !started {
				s.waitingSince[class] = now
				return -1, s.idleWait
			}
			if now-since < s.idleWait {
				return -1, s.idleWait - (now - since)
			}
			// Waited long enough; fall through and serve a competitor.
		}
	}

	// Work-conserving core: admit the pending unit of the lowest-pass
	// class (FIFO within the class).
	best := -1
	for i, u := range pending {
		if best == -1 {
			best = i
			continue
		}
		bp, up := s.pass[pending[best].Class], s.pass[u.Class]
		if up < bp || (up == bp && u.Seq < pending[best].Seq) {
			best = i
		}
	}
	u := pending[best]
	charge := float64(u.Bytes)
	if !s.chargeByBytes {
		charge = 64 * 1024 // one nominal request quantum
	}
	if charge < 1 {
		charge = 1
	}
	s.pass[u.Class] += charge / float64(s.ticketsFor(u.Class))
	delete(s.waitingSince, u.Class)
	return best, 0
}

// refCacheAware re-estimates every pending unit against the live probe
// on each admission and linear-scans for the minimum.
type refCacheAware struct {
	probe    Residency
	memMBps  float64
	diskMBps float64
	seek     time.Duration
}

func (*refCacheAware) name() string { return "cache-aware" }

func (c *refCacheAware) estimate(u *Unit) time.Duration {
	return estimate(c.probe, c.memMBps, c.diskMBps, c.seek, u)
}

func (c *refCacheAware) pick(pending []*Unit, _ time.Duration) (int, time.Duration) {
	if len(pending) == 0 {
		return -1, 0
	}
	best := 0
	bestEst := c.estimate(pending[0])
	for i := 1; i < len(pending); i++ {
		est := c.estimate(pending[i])
		if est < bestEst || (est == bestEst && pending[i].Seq < pending[best].Seq) {
			best, bestEst = i, est
		}
	}
	return best, 0
}
