package sched

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// The equivalence harness replays one randomized workload — arrivals,
// cancellations, admissions, quantum-style re-queues, residency churn,
// and advancing time — simultaneously through an incremental policy
// and its retained snapshot oracle, asserting the two make
// byte-for-byte identical decisions at every step. Stride passes and
// idle-wait bookkeeping stay in lockstep exactly because every
// decision matches, so a single divergence cascades and is caught
// immediately.

type eqScenario struct {
	name string
	// mk builds a fresh incremental policy, its oracle, and an
	// optional mutator that perturbs shared policy inputs (the
	// residency model) mid-workload.
	mk func() (Policy, refPolicy, func(rng *rand.Rand))
}

// mutProbe is a mutable residency model shared by an incremental
// policy and its oracle; the versioned variant advances a generation
// counter on every change, the unversioned one relies on the policy
// re-probing each admission.
type mutProbe struct {
	res map[string]float64
}

func (p *mutProbe) Residency(path string, off, n int64) float64 { return p.res[path] }

type versionedProbe struct {
	*mutProbe
	gen uint64
}

func (p *versionedProbe) Generation() uint64 { return p.gen }

var eqClasses = []string{"chirp", "ftp", "gridftp", "http", "nfs"}
var eqPaths = []string{"/a", "/b", "/c", "/d", "/e", "/f"}

func newMutProbe() *mutProbe {
	p := &mutProbe{res: map[string]float64{}}
	for i, path := range eqPaths {
		p.res[path] = float64(i%3) / 2
	}
	return p
}

func eqScenarios() []eqScenario {
	tickets := map[string]int{"chirp": 300, "gridftp": 100, "http": 200, "nfs": 400}
	mkStride := func(byBytes bool, idle time.Duration) func() (Policy, refPolicy, func(*rand.Rand)) {
		return func() (Policy, refPolicy, func(*rand.Rand)) {
			inc := NewStride(tickets)
			inc.ChargeByBytes = byBytes
			inc.IdleWait = idle
			ref := newRefStride(tickets)
			ref.chargeByBytes = byBytes
			ref.idleWait = idle
			return inc, ref, nil
		}
	}
	return []eqScenario{
		{
			name: "fifo",
			mk: func() (Policy, refPolicy, func(*rand.Rand)) {
				return NewFIFO(), &refFIFO{}, nil
			},
		},
		{name: "stride-bytes", mk: mkStride(true, 0)},
		{name: "stride-requests", mk: mkStride(false, 0)},
		{name: "stride-idlewait", mk: mkStride(true, 4*time.Millisecond)},
		{name: "stride-requests-idlewait", mk: mkStride(false, 4*time.Millisecond)},
		{
			name: "cache-aware-versioned",
			mk: func() (Policy, refPolicy, func(*rand.Rand)) {
				probe := &versionedProbe{mutProbe: newMutProbe()}
				inc := NewCacheAware(probe, 200, 20, 8*time.Millisecond)
				ref := &refCacheAware{probe: probe, memMBps: 200, diskMBps: 20, seek: 8 * time.Millisecond}
				mutate := func(rng *rand.Rand) {
					probe.res[eqPaths[rng.Intn(len(eqPaths))]] = float64(rng.Intn(5)) / 4
					probe.gen++
				}
				return inc, ref, mutate
			},
		},
		{
			name: "cache-aware-reprobe",
			mk: func() (Policy, refPolicy, func(*rand.Rand)) {
				probe := newMutProbe()
				inc := NewCacheAware(probe, 200, 20, 8*time.Millisecond)
				ref := &refCacheAware{probe: probe, memMBps: 200, diskMBps: 20, seek: 8 * time.Millisecond}
				mutate := func(rng *rand.Rand) {
					probe.res[eqPaths[rng.Intn(len(eqPaths))]] = float64(rng.Intn(5)) / 4
				}
				return inc, ref, mutate
			},
		},
	}
}

func TestOracleEquivalence(t *testing.T) {
	for _, sc := range eqScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 6; seed++ {
				runEquivalence(t, sc, seed, 4000)
				if t.Failed() {
					return
				}
			}
		})
	}
}

func runEquivalence(t *testing.T, sc eqScenario, seed int64, steps int) {
	t.Helper()
	inc, ref, mutate := sc.mk()
	rng := rand.New(rand.NewSource(seed))
	var pending []*Unit
	seq := int64(0)
	now := time.Duration(0)
	fail := func(format string, args ...any) {
		t.Fatalf("[%s seed=%d] %s", sc.name, seed, fmt.Sprintf(format, args...))
	}
	admit := func() {
		idx, refWait := ref.pick(pending, now)
		got, incWait := inc.Next(now)
		if incWait != refWait {
			fail("wait mismatch: incremental %v, oracle %v", incWait, refWait)
		}
		if idx < 0 {
			if got != nil {
				fail("oracle idled, incremental admitted seq %d", got.Seq)
			}
			return
		}
		want := pending[idx]
		if got != want {
			fail("admission mismatch: incremental %+v, oracle seq %d", got, want.Seq)
		}
		pending = append(pending[:idx], pending[idx+1:]...)
		// Quantum-style re-queue: the admitted transfer returns with a
		// fresh sequence number and fewer remaining bytes.
		if rng.Intn(3) == 0 && want.Bytes > 1 {
			seq++
			want.Seq = seq
			want.Bytes -= want.Bytes / 2
			pending = append(pending, want)
			inc.Add(want)
		}
	}
	for step := 0; step < steps; step++ {
		op := rng.Intn(10)
		switch {
		case op < 4: // arrival
			seq++
			u := &Unit{
				Class:  eqClasses[rng.Intn(len(eqClasses))],
				Bytes:  int64(rng.Intn(1 << 20)),
				Path:   eqPaths[rng.Intn(len(eqPaths))],
				Offset: int64(rng.Intn(1 << 20)),
				Seq:    seq,
			}
			pending = append(pending, u)
			inc.Add(u)
		case op < 5 && len(pending) > 0: // cancellation
			i := rng.Intn(len(pending))
			u := pending[i]
			pending = append(pending[:i], pending[i+1:]...)
			inc.Remove(u)
		case op < 9: // admission decision
			admit()
		default: // environment churn
			if mutate != nil {
				mutate(rng)
			}
		}
		if inc.Len() != len(pending) {
			fail("Len = %d, want %d", inc.Len(), len(pending))
		}
		now += time.Duration(rng.Intn(int(2 * time.Millisecond)))
	}
	// Drain: every remaining decision must also match.
	for len(pending) > 0 {
		before := len(pending)
		admit()
		if len(pending) >= before {
			now += time.Millisecond // idle hold: let the grace expire
		}
	}
}
