// Package sched implements the transfer manager's scheduling policies
// (paper §4.2). Because NeST controls all on-going requests across all
// protocols, it can reorder them: first-come-first-served (the
// default), proportional-share stride scheduling with byte-based
// accounting across protocol classes, and cache-aware scheduling that
// approximates shortest-job-first using the gray-box buffer-cache
// model.
//
// The policies are incrementally indexed: the pending set lives inside
// the policy and is updated by Add/Remove, so an admission decision
// costs O(1) for FIFO, O(log C) in the number of active classes for
// stride, and O(log n) for cache-aware — instead of the snapshot
// formulation's O(n) rebuild and linear scan per admission. The
// snapshot formulation is retained verbatim in oracle.go as the
// reference the equivalence tests replay against.
package sched

import (
	"sort"
	"time"
)

// Unit is one schedulable transfer as the policies see it. The
// submitter owns the exported fields; they identify the unit and must
// stay fixed while it is queued. Between Add and the Next or Remove
// that takes it back out, the owning policy additionally uses the
// unexported intrusive fields, so a unit may be queued under at most
// one policy at a time. Units are reusable: after admission the
// submitter may update Bytes and Seq and Add the same unit again
// (byte-quantum preemption re-queues transfers this way). A striped
// transfer's W concurrent stripes share its single unit: every quantum
// re-queue updates this one unit with the aggregate remainder, so
// policies price a striped transfer exactly like an unstriped one and
// intra-file parallelism is invisible to scheduling.
type Unit struct {
	Class  string // protocol class ("chirp", "nfs", ...)
	Bytes  int64  // bytes this unit will move
	Path   string // file touched, for cache prediction
	Offset int64
	Seq    int64 // arrival order, assigned by the transfer manager
	// Owner is an opaque back-pointer for the submitter's use — the
	// transfer manager stores the *Transfer the unit schedules, so no
	// side table is needed to map a decision back to its transfer.
	// Policies never touch it.
	Owner any

	// Intrusive queue links and heap slot, owned by the queued-under
	// policy. Keeping them inside the unit is what makes admission
	// allocation-free: policies never wrap units in container nodes.
	next, prev *Unit
	heapIdx    int
	est        time.Duration // cached service-time estimate (cache-aware)
}

// Policy maintains the pending transfer set incrementally. All methods
// are called from the transfer manager's single scheduling goroutine:
//
//   - Add inserts a unit into the pending set.
//   - Remove withdraws a unit that was added but not yet admitted.
//   - Next admits the best pending unit, removing it from the set and
//     charging any policy accounting, or returns nil to leave the
//     server idle; nil with a non-zero wait asks the manager to retry
//     after that delay even if no transfer completes (used by the
//     non-work-conserving stride variant).
//   - Len reports how many units are queued.
type Policy interface {
	Name() string
	Add(*Unit)
	Remove(*Unit)
	Next(now time.Duration) (*Unit, time.Duration)
	Len() int
}

// FIFO serves requests strictly in arrival order. Because block-based
// protocols re-enter the queue for every block, FIFO disfavors them
// behind whole-file transfers — the effect visible in Figure 3's mixed
// workload. The queue is an intrusive list ordered by Seq, so with the
// manager's monotonically increasing sequence numbers both admission
// and arrival are O(1) with zero allocations.
type FIFO struct {
	q unitList
}

// NewFIFO returns the first-come-first-served policy.
func NewFIFO() *FIFO { return &FIFO{} }

// Name implements Policy.
func (*FIFO) Name() string { return "fifo" }

// Add implements Policy.
func (f *FIFO) Add(u *Unit) { f.q.insertBySeq(u) }

// Remove implements Policy.
func (f *FIFO) Remove(u *Unit) { f.q.remove(u) }

// Len implements Policy.
func (f *FIFO) Len() int { return f.q.n }

// Next implements Policy: pop the lowest-Seq unit.
func (f *FIFO) Next(time.Duration) (*Unit, time.Duration) {
	return f.q.popFront(), 0
}

// Fairness computes Jain's fairness index over per-class ratios of
// delivered to desired allocation (paper §7.2, footnote 2): 1.0 is an
// ideal proportional allocation.
func Fairness(deliveredToDesired []float64) float64 {
	if len(deliveredToDesired) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range deliveredToDesired {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(deliveredToDesired)) * sumSq)
}

// SortedClasses returns the keys of a per-class map in sorted order,
// for deterministic iteration over class-keyed results (used by the
// qos example and by tests when rendering fair comparisons).
func SortedClasses(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
