// Package sched implements the transfer manager's scheduling policies
// (paper §4.2). Because NeST controls all on-going requests across all
// protocols, it can reorder them: first-come-first-served (the
// default), proportional-share stride scheduling with byte-based
// accounting across protocol classes, and cache-aware scheduling that
// approximates shortest-job-first using the gray-box buffer-cache
// model.
package sched

import (
	"math"
	"sort"
	"time"
)

// Unit is one schedulable transfer as the policies see it.
type Unit struct {
	Class  string // protocol class ("chirp", "nfs", ...)
	Bytes  int64  // bytes this unit will move
	Path   string // file touched, for cache prediction
	Offset int64
	Seq    int64 // arrival order, assigned by the transfer manager
}

// Policy orders pending transfers. Pick returns the index of the unit
// to admit next, or -1 to leave the server idle; a non-zero wait asks
// the manager to retry after that delay even if no transfer completes
// (used by the non-work-conserving stride variant). Pick is called
// from a single scheduling goroutine.
type Policy interface {
	Name() string
	Pick(pending []*Unit, now time.Duration) (idx int, wait time.Duration)
}

// FIFO serves requests strictly in arrival order. Because block-based
// protocols re-enter the queue for every block, FIFO disfavors them
// behind whole-file transfers — the effect visible in Figure 3's mixed
// workload.
type FIFO struct{}

// NewFIFO returns the first-come-first-served policy.
func NewFIFO() *FIFO { return &FIFO{} }

// Name implements Policy.
func (*FIFO) Name() string { return "fifo" }

// Pick implements Policy.
func (*FIFO) Pick(pending []*Unit, _ time.Duration) (int, time.Duration) {
	if len(pending) == 0 {
		return -1, 0
	}
	best := 0
	for i, u := range pending {
		if u.Seq < pending[best].Seq {
			best = i
		}
	}
	return best, 0
}

// Stride is the proportional-share stride scheduler (Waldspurger &
// Weihl) with byte-based strides: each admission advances its class's
// pass by bytes/tickets, so a class issuing many small block requests
// (NFS) receives the same bandwidth as one issuing few large requests
// at equal tickets (paper §4.2).
type Stride struct {
	tickets map[string]int
	pass    map[string]float64
	// ChargeByBytes selects byte-based strides (the paper's design).
	// When false, every admission charges one request — the ablation
	// showing why request-based accounting starves block protocols.
	ChargeByBytes bool
	// IdleWait, when positive, makes the scheduler non-work-conserving:
	// if the lowest-pass class has no pending request, the server
	// waits up to IdleWait for one to arrive before scheduling a
	// competitor (paper §7.2's proposed fix for the 1:1:1:4 case).
	IdleWait time.Duration
	// deficit tracks, per class, the virtual time the class was last
	// deferred for; prevents unbounded waiting.
	waitingSince map[string]time.Duration
}

// NewStride builds a stride scheduler with per-class ticket counts.
// Classes not listed receive DefaultTickets.
func NewStride(tickets map[string]int) *Stride {
	t := make(map[string]int, len(tickets))
	for k, v := range tickets {
		if v > 0 {
			t[k] = v
		}
	}
	return &Stride{
		tickets:       t,
		pass:          make(map[string]float64),
		ChargeByBytes: true,
		waitingSince:  make(map[string]time.Duration),
	}
}

// DefaultTickets is the ticket count for classes without an explicit
// allocation.
const DefaultTickets = 100

// Name implements Policy.
func (s *Stride) Name() string { return "stride" }

// Tickets returns the allocation for class.
func (s *Stride) Tickets(class string) int {
	if t, ok := s.tickets[class]; ok {
		return t
	}
	return DefaultTickets
}

// Pick implements Policy.
func (s *Stride) Pick(pending []*Unit, now time.Duration) (int, time.Duration) {
	if len(pending) == 0 {
		return -1, 0
	}
	// The pass of classes with pending work; new or returning classes
	// join at the current minimum so they cannot claim banked credit.
	minPass := math.Inf(1)
	present := make(map[string]bool)
	for _, u := range pending {
		present[u.Class] = true
	}
	for class := range present {
		if p, ok := s.pass[class]; ok && p < minPass {
			minPass = p
		}
	}
	if math.IsInf(minPass, 1) {
		minPass = 0
	}
	for class := range present {
		if _, ok := s.pass[class]; !ok {
			s.pass[class] = minPass
		}
	}

	// Non-work-conserving: if some known class is owed service (its
	// pass is strictly minimal among all classes) but has nothing
	// pending, hold the server briefly for it.
	if s.IdleWait > 0 {
		for class, p := range s.pass {
			if present[class] {
				delete(s.waitingSince, class)
				continue
			}
			owed := true
			for other, op := range s.pass {
				if other != class && op <= p {
					owed = false
					break
				}
			}
			if !owed {
				delete(s.waitingSince, class)
				continue
			}
			since, started := s.waitingSince[class]
			if !started {
				s.waitingSince[class] = now
				return -1, s.IdleWait
			}
			if now-since < s.IdleWait {
				return -1, s.IdleWait - (now - since)
			}
			// Waited long enough; fall through and serve a competitor.
		}
	}

	// Work-conserving core: admit the pending unit of the lowest-pass
	// class (FIFO within the class).
	best := -1
	for i, u := range pending {
		if best == -1 {
			best = i
			continue
		}
		bp, up := s.pass[pending[best].Class], s.pass[u.Class]
		if up < bp || (up == bp && u.Seq < pending[best].Seq) {
			best = i
		}
	}
	u := pending[best]
	charge := float64(u.Bytes)
	if !s.ChargeByBytes {
		charge = 64 * 1024 // one nominal request quantum
	}
	if charge < 1 {
		charge = 1
	}
	s.pass[u.Class] += charge / float64(s.Tickets(u.Class))
	delete(s.waitingSince, u.Class)
	return best, 0
}

// Residency is the gray-box probe the cache-aware policy consults
// (implemented by the buffer-cache model).
type Residency interface {
	Residency(path string, off, n int64) float64
}

// CacheAware schedules predicted cache hits before disk-bound requests,
// approximating shortest-job-first: it improves client response time
// and server throughput by reducing contention for secondary storage
// (paper §4.2; Burnett et al. 2002).
type CacheAware struct {
	probe    Residency
	memMBps  float64
	diskMBps float64
	seek     time.Duration
}

// NewCacheAware builds the policy around a residency probe and the
// service-rate estimates used to rank requests.
func NewCacheAware(probe Residency, memMBps, diskMBps float64, seek time.Duration) *CacheAware {
	return &CacheAware{probe: probe, memMBps: memMBps, diskMBps: diskMBps, seek: seek}
}

// Name implements Policy.
func (*CacheAware) Name() string { return "cache-aware" }

// Estimate predicts the service time of a unit from its residency.
func (c *CacheAware) Estimate(u *Unit) time.Duration {
	r := 1.0
	if c.probe != nil {
		r = c.probe.Residency(u.Path, u.Offset, u.Bytes)
	}
	memBytes := r * float64(u.Bytes)
	diskBytes := (1 - r) * float64(u.Bytes)
	est := time.Duration(memBytes / (c.memMBps * 1024 * 1024) * float64(time.Second))
	if diskBytes > 0 {
		est += c.seek + time.Duration(diskBytes/(c.diskMBps*1024*1024)*float64(time.Second))
	}
	return est
}

// Pick implements Policy.
func (c *CacheAware) Pick(pending []*Unit, _ time.Duration) (int, time.Duration) {
	if len(pending) == 0 {
		return -1, 0
	}
	best := 0
	bestEst := c.Estimate(pending[0])
	for i := 1; i < len(pending); i++ {
		est := c.Estimate(pending[i])
		if est < bestEst || (est == bestEst && pending[i].Seq < pending[best].Seq) {
			best, bestEst = i, est
		}
	}
	return best, 0
}

// Fairness computes Jain's fairness index over per-class ratios of
// delivered to desired allocation (paper §7.2, footnote 2): 1.0 is an
// ideal proportional allocation.
func Fairness(deliveredToDesired []float64) float64 {
	if len(deliveredToDesired) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range deliveredToDesired {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(deliveredToDesired)) * sumSq)
}

// SortBydes is a test helper exposing deterministic ordering of class
// names (fair comparisons in benches).
func SortedClasses(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
