package sched

import (
	"math"
	"sort"
	"time"
)

// Stride is the proportional-share stride scheduler (Waldspurger &
// Weihl) with byte-based strides: each admission advances its class's
// pass by bytes/tickets, so a class issuing many small block requests
// (NFS) receives the same bandwidth as one issuing few large requests
// at equal tickets (paper §4.2).
//
// The pending set is indexed as per-class FIFO sub-queues under a
// min-pass heap over the classes, so admission costs O(log C) in the
// number of classes with pending work — the heap minimum is exactly
// the unit the snapshot formulation found by scanning every pending
// transfer. Only the non-work-conserving IdleWait scan still walks the
// (small, bounded) class table, in sorted name order so its decisions
// are deterministic.
type Stride struct {
	// ChargeByBytes selects byte-based strides (the paper's design).
	// When false, every admission charges one request — the ablation
	// showing why request-based accounting starves block protocols.
	ChargeByBytes bool
	// IdleWait, when positive, makes the scheduler non-work-conserving:
	// if the lowest-pass class has no pending request, the server
	// waits up to IdleWait for one to arrive before scheduling a
	// competitor (paper §7.2's proposed fix for the 1:1:1:4 case).
	IdleWait time.Duration

	tickets map[string]int
	classes map[string]*strideClass
	// names holds every known class name in sorted order, so the
	// IdleWait scan visits starved classes deterministically.
	names []string
	// h indexes the classes with pending work and an assigned pass,
	// keyed (pass, front Seq).
	h classHeap
	// uninit lists classes with pending work whose pass has not been
	// assigned yet; they join at the pass minimum on the next
	// admission, exactly when the snapshot formulation assigned it, so
	// they cannot claim banked credit.
	uninit []*strideClass
	queued int
}

// strideClass is the per-class scheduling state. The pass survives the
// class going idle (an entry is never deleted), which is what the
// join-at-minimum rule protects against exploiting.
type strideClass struct {
	name    string
	pass    float64
	hasPass bool
	q       unitList
	heapIdx int  // slot in Stride.h, -1 while absent
	pending bool // on Stride.uninit awaiting pass assignment
	// waiting/since track the idle-wait timer for this class; see
	// idleScan. Prevents unbounded waiting for a starved class.
	waiting bool
	since   time.Duration
}

// NewStride builds a stride scheduler with per-class ticket counts.
// Classes not listed receive DefaultTickets.
func NewStride(tickets map[string]int) *Stride {
	t := make(map[string]int, len(tickets))
	for k, v := range tickets {
		if v > 0 {
			t[k] = v
		}
	}
	return &Stride{
		tickets:       t,
		ChargeByBytes: true,
		classes:       make(map[string]*strideClass),
	}
}

// DefaultTickets is the ticket count for classes without an explicit
// allocation.
const DefaultTickets = 100

// Name implements Policy.
func (s *Stride) Name() string { return "stride" }

// Len implements Policy.
func (s *Stride) Len() int { return s.queued }

// Tickets returns the allocation for class.
func (s *Stride) Tickets(class string) int {
	if t, ok := s.tickets[class]; ok {
		return t
	}
	return DefaultTickets
}

// class returns the state for a class name, creating it on first use.
func (s *Stride) class(name string) *strideClass {
	c := s.classes[name]
	if c == nil {
		c = &strideClass{name: name, heapIdx: -1}
		s.classes[name] = c
		i := sort.SearchStrings(s.names, name)
		s.names = append(s.names, "")
		copy(s.names[i+1:], s.names[i:])
		s.names[i] = name
	}
	return c
}

// Add implements Policy.
func (s *Stride) Add(u *Unit) {
	c := s.class(u.Class)
	wasEmpty := c.q.n == 0
	oldFront := c.q.front
	c.q.insertBySeq(u)
	s.queued++
	switch {
	case wasEmpty && c.hasPass:
		s.h.push(c)
	case wasEmpty:
		if !c.pending {
			c.pending = true
			s.uninit = append(s.uninit, c)
		}
	case c.heapIdx >= 0 && c.q.front != oldFront:
		// An out-of-order arrival became the class's head: re-key.
		s.h.fix(c.heapIdx)
	}
}

// Remove implements Policy.
func (s *Stride) Remove(u *Unit) {
	c := s.classes[u.Class]
	wasFront := c.q.front == u
	c.q.remove(u)
	s.queued--
	if c.q.n == 0 {
		if c.heapIdx >= 0 {
			s.h.removeAt(c.heapIdx)
		} else if c.pending {
			c.pending = false
			for i, pc := range s.uninit {
				if pc == c {
					s.uninit = append(s.uninit[:i], s.uninit[i+1:]...)
					break
				}
			}
		}
		return
	}
	if wasFront && c.heapIdx >= 0 {
		s.h.fix(c.heapIdx)
	}
}

// Next implements Policy.
func (s *Stride) Next(now time.Duration) (*Unit, time.Duration) {
	if s.queued == 0 {
		return nil, 0
	}
	// Classes that gained work since the last admission join at the
	// current minimum pass among classes with pending work (0 if none
	// has an assigned pass yet), so they cannot claim banked credit.
	if len(s.uninit) > 0 {
		min := 0.0
		if len(s.h) > 0 {
			min = s.h[0].pass
		}
		for _, c := range s.uninit {
			c.pass, c.hasPass, c.pending = min, true, false
			s.h.push(c)
		}
		s.uninit = s.uninit[:0]
	}

	if s.IdleWait > 0 {
		if wait, hold := s.idleScan(now); hold {
			return nil, wait
		}
	}

	// Work-conserving core: admit the pending unit of the lowest-pass
	// class (FIFO within the class) — the heap top.
	c := s.h[0]
	u := c.q.popFront()
	s.queued--
	charge := float64(u.Bytes)
	if !s.ChargeByBytes {
		charge = 64 * 1024 // one nominal request quantum
	}
	if charge < 1 {
		charge = 1
	}
	c.pass += charge / float64(s.Tickets(c.name))
	c.waiting = false
	if c.q.n == 0 {
		s.h.removeAt(0)
	} else {
		s.h.fix(0)
	}
	return u, 0
}

// idleScan implements the non-work-conserving variant: if some known
// class is strictly owed service (its pass is lower than every other
// class's) but has nothing pending, hold the server for up to IdleWait
// for a request of its to arrive. Classes are visited in sorted name
// order, so which starved class arms the wake timer — and the wait
// returned — is deterministic (the scan previously ranged over a map).
// Once a class has been waited for a full IdleWait the scan falls
// through and a competitor is served.
func (s *Stride) idleScan(now time.Duration) (time.Duration, bool) {
	// Only the unique holder of the strictly minimal pass can be owed.
	min := math.Inf(1)
	minCount := 0
	for _, c := range s.classes {
		if !c.hasPass {
			continue
		}
		if c.pass < min {
			min, minCount = c.pass, 1
		} else if c.pass == min {
			minCount++
		}
	}
	for _, name := range s.names {
		c := s.classes[name]
		if !c.hasPass {
			continue
		}
		if c.q.n > 0 {
			c.waiting = false
			continue
		}
		if minCount != 1 || c.pass != min {
			c.waiting = false
			continue
		}
		if !c.waiting {
			c.waiting = true
			c.since = now
			return s.IdleWait, true
		}
		if now-c.since < s.IdleWait {
			return s.IdleWait - (now - c.since), true
		}
		// Waited long enough; fall through and serve a competitor.
	}
	return 0, false
}
