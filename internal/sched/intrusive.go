package sched

// Intrusive containers backing the incremental policies. The element
// pointers live inside Unit and strideClass themselves, so queue and
// heap maintenance allocates nothing and membership updates (Remove of
// an arbitrary queued unit, heap re-key after a pass charge) are found
// by the stored index instead of a search.

// unitList is an intrusive doubly-linked list of units kept ordered by
// Seq. The transfer manager assigns monotonically increasing sequence
// numbers, so insertBySeq appends at the back in O(1) there; arbitrary
// insertion orders remain correct, costing the distance from the back.
type unitList struct {
	front, back *Unit
	n           int
}

func (l *unitList) insertBySeq(u *Unit) {
	at := l.back
	for at != nil && at.Seq > u.Seq {
		at = at.prev
	}
	u.prev = at
	if at == nil {
		u.next = l.front
		if l.front != nil {
			l.front.prev = u
		} else {
			l.back = u
		}
		l.front = u
	} else {
		u.next = at.next
		if at.next != nil {
			at.next.prev = u
		} else {
			l.back = u
		}
		at.next = u
	}
	l.n++
}

func (l *unitList) remove(u *Unit) {
	if u.prev != nil {
		u.prev.next = u.next
	} else {
		l.front = u.next
	}
	if u.next != nil {
		u.next.prev = u.prev
	} else {
		l.back = u.prev
	}
	u.next, u.prev = nil, nil
	l.n--
}

func (l *unitList) popFront() *Unit {
	u := l.front
	if u != nil {
		l.remove(u)
	}
	return u
}

// unitHeap is a min-heap of units keyed by (est, Seq) — the cache-aware
// policy's order. Each unit records its slot in heapIdx.
type unitHeap []*Unit

func (h unitHeap) less(i, j int) bool {
	a, b := h[i], h[j]
	if a.est != b.est {
		return a.est < b.est
	}
	return a.Seq < b.Seq
}

func (h unitHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}

func (h *unitHeap) push(u *Unit) {
	u.heapIdx = len(*h)
	*h = append(*h, u)
	h.up(u.heapIdx)
}

// removeAt detaches and returns the unit at slot i (i == 0 pops the
// minimum).
func (h *unitHeap) removeAt(i int) *Unit {
	hh := *h
	n := len(hh) - 1
	u := hh[i]
	if i != n {
		hh.swap(i, n)
	}
	hh[n] = nil
	*h = hh[:n]
	if i < n {
		h.fix(i)
	}
	u.heapIdx = -1
	return u
}

func (h unitHeap) fix(i int) {
	h.down(i)
	h.up(i)
}

// reinit restores the heap invariant after every key changed at once
// (estimate invalidation).
func (h unitHeap) reinit() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

func (h unitHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h unitHeap) down(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h.less(r, l) {
			m = r
		}
		if !h.less(m, i) {
			return
		}
		h.swap(i, m)
		i = m
	}
}

// classHeap is a min-heap of stride classes with pending work, keyed by
// (pass, front unit Seq) — exactly the order the snapshot scan
// minimized over all pending units, since each class's sub-queue is
// FIFO. Every member has a non-empty sub-queue.
type classHeap []*strideClass

func (h classHeap) less(i, j int) bool {
	a, b := h[i], h[j]
	if a.pass != b.pass {
		return a.pass < b.pass
	}
	return a.q.front.Seq < b.q.front.Seq
}

func (h classHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}

func (h *classHeap) push(c *strideClass) {
	c.heapIdx = len(*h)
	*h = append(*h, c)
	h.up(c.heapIdx)
}

func (h *classHeap) removeAt(i int) *strideClass {
	hh := *h
	n := len(hh) - 1
	c := hh[i]
	if i != n {
		hh.swap(i, n)
	}
	hh[n] = nil
	*h = hh[:n]
	if i < n {
		h.fix(i)
	}
	c.heapIdx = -1
	return c
}

func (h classHeap) fix(i int) {
	h.down(i)
	h.up(i)
}

func (h classHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h classHeap) down(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h.less(r, l) {
			m = r
		}
		if !h.less(m, i) {
			return
		}
		h.swap(i, m)
		i = m
	}
}
