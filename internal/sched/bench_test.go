package sched

import (
	"fmt"
	"testing"
	"time"
)

// The admission benchmarks measure one steady-state scheduling
// decision at a fixed queue depth: admit the best unit, then re-queue
// it with a fresh sequence number (exactly the manager's byte-quantum
// preemption pattern). BenchmarkSchedulerAdmit exercises the
// incremental policies; BenchmarkSchedulerAdmitSnapshot replays the
// retired formulation — rebuild the []*Unit snapshot, linear-scan,
// splice — as the before-side baseline recorded in
// docs/sched_bench.md.

var benchTickets = map[string]int{"chirp": 300, "gridftp": 100, "http": 200, "nfs": 400}

// benchProbe is a static versioned residency model: deterministic
// estimates with no churn, so cache-aware admission stays on its
// indexed fast path (the churn path is covered by the equivalence
// tests).
type benchProbe struct{}

func (benchProbe) Residency(path string, off, n int64) float64 {
	return float64(len(path)%4) / 4
}

func (benchProbe) Generation() uint64 { return 1 }

var benchDepths = []int{64, 1024, 8192}

func benchUnits(depth int) []*Unit {
	classes := []string{"chirp", "gridftp", "http", "nfs"}
	units := make([]*Unit, depth)
	for i := range units {
		units[i] = &Unit{
			Class: classes[i%len(classes)],
			Bytes: int64(8<<10 + (i%64)<<10),
			Path:  fmt.Sprintf("/f%03d", i%128),
			Seq:   int64(i + 1),
		}
	}
	return units
}

func benchPolicies() []struct {
	name string
	mk   func() Policy
} {
	return []struct {
		name string
		mk   func() Policy
	}{
		{"fifo", func() Policy { return NewFIFO() }},
		{"stride", func() Policy { return NewStride(benchTickets) }},
		{"cache-aware", func() Policy {
			return NewCacheAware(benchProbe{}, 200, 20, 8*time.Millisecond)
		}},
	}
}

func BenchmarkSchedulerAdmit(b *testing.B) {
	for _, pol := range benchPolicies() {
		for _, depth := range benchDepths {
			b.Run(fmt.Sprintf("%s/depth-%d", pol.name, depth), func(b *testing.B) {
				p := pol.mk()
				units := benchUnits(depth)
				for _, u := range units {
					p.Add(u)
				}
				seq := int64(depth)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					u, _ := p.Next(0)
					seq++
					u.Seq = seq
					p.Add(u)
				}
			})
		}
	}
}

func benchOracles() []struct {
	name string
	mk   func() refPolicy
} {
	return []struct {
		name string
		mk   func() refPolicy
	}{
		{"fifo", func() refPolicy { return &refFIFO{} }},
		{"stride", func() refPolicy { return newRefStride(benchTickets) }},
		{"cache-aware", func() refPolicy {
			return &refCacheAware{probe: benchProbe{}, memMBps: 200, diskMBps: 20, seek: 8 * time.Millisecond}
		}},
	}
}

func BenchmarkSchedulerAdmitSnapshot(b *testing.B) {
	for _, pol := range benchOracles() {
		for _, depth := range benchDepths {
			b.Run(fmt.Sprintf("%s/depth-%d", pol.name, depth), func(b *testing.B) {
				p := pol.mk()
				transfers := benchUnits(depth)
				seq := int64(depth)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					// The retired manager rebuilt the unit snapshot from
					// its pending transfers on every admission.
					pending := make([]*Unit, len(transfers))
					for j, t := range transfers {
						pending[j] = &Unit{
							Class:  t.Class,
							Bytes:  t.Bytes,
							Path:   t.Path,
							Offset: t.Offset,
							Seq:    t.Seq,
						}
					}
					idx, _ := p.pick(pending, 0)
					seq++
					transfers[idx].Seq = seq // re-queue in place
				}
			})
		}
	}
}
