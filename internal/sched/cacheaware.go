package sched

import "time"

// Residency is the gray-box probe the cache-aware policy consults
// (implemented by the buffer-cache model).
type Residency interface {
	Residency(path string, off, n int64) float64
}

// Generational is optionally implemented by a Residency probe that
// versions its contents: the counter advances whenever predicted
// residency may have changed. The cache-aware policy caches per-unit
// service-time estimates against this generation and re-probes only
// when it moves, making admission O(log n) while the model is stable.
// Probes without Generation are conservatively re-probed on every
// admission (the snapshot formulation's cost), since cached estimates
// could otherwise go stale undetected.
type Generational interface {
	Generation() uint64
}

// CacheAware schedules predicted cache hits before disk-bound requests,
// approximating shortest-job-first: it improves client response time
// and server throughput by reducing contention for secondary storage
// (paper §4.2; Burnett et al. 2002). Pending units sit in a min-heap
// keyed by cached service-time estimate (ties broken by arrival
// order); estimates are invalidated wholesale when the residency
// model's generation changes.
type CacheAware struct {
	probe    Residency
	gen      Generational // probe's version counter, nil if unversioned
	memMBps  float64
	diskMBps float64
	seek     time.Duration

	h       unitHeap
	lastGen uint64
}

// NewCacheAware builds the policy around a residency probe and the
// service-rate estimates used to rank requests.
func NewCacheAware(probe Residency, memMBps, diskMBps float64, seek time.Duration) *CacheAware {
	c := &CacheAware{probe: probe, memMBps: memMBps, diskMBps: diskMBps, seek: seek}
	if g, ok := probe.(Generational); ok {
		c.gen = g
		c.lastGen = g.Generation()
	}
	return c
}

// Name implements Policy.
func (*CacheAware) Name() string { return "cache-aware" }

// Len implements Policy.
func (c *CacheAware) Len() int { return len(c.h) }

// Estimate predicts the service time of a unit from its residency.
func (c *CacheAware) Estimate(u *Unit) time.Duration {
	return estimate(c.probe, c.memMBps, c.diskMBps, c.seek, u)
}

// estimate is the shared service-time model; the reference oracle uses
// the identical computation so the equivalence tests compare exact
// durations.
func estimate(probe Residency, memMBps, diskMBps float64, seek time.Duration, u *Unit) time.Duration {
	r := 1.0
	if probe != nil {
		r = probe.Residency(u.Path, u.Offset, u.Bytes)
	}
	memBytes := r * float64(u.Bytes)
	diskBytes := (1 - r) * float64(u.Bytes)
	est := time.Duration(memBytes / (memMBps * 1024 * 1024) * float64(time.Second))
	if diskBytes > 0 {
		est += seek + time.Duration(diskBytes/(diskMBps*1024*1024)*float64(time.Second))
	}
	return est
}

// Add implements Policy.
func (c *CacheAware) Add(u *Unit) {
	u.est = c.Estimate(u)
	c.h.push(u)
}

// Remove implements Policy.
func (c *CacheAware) Remove(u *Unit) {
	c.h.removeAt(u.heapIdx)
}

// Next implements Policy: pop the minimum-estimate unit after
// re-validating cached estimates against the residency model.
func (c *CacheAware) Next(time.Duration) (*Unit, time.Duration) {
	if len(c.h) == 0 {
		return nil, 0
	}
	c.refresh()
	return c.h.removeAt(0), 0
}

// refresh re-estimates every queued unit when the residency model has
// changed since estimates were cached. With a nil probe estimates
// depend only on the unit itself and never go stale; with a versioned
// probe the whole pass is skipped while the generation holds.
func (c *CacheAware) refresh() {
	if c.probe == nil {
		return
	}
	if c.gen != nil {
		g := c.gen.Generation()
		if g == c.lastGen {
			return
		}
		c.lastGen = g
	}
	for _, u := range c.h {
		u.est = c.Estimate(u)
	}
	c.h.reinit()
}
