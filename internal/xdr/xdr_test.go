package xdr

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestScalarRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.Uint32(0xdeadbeef)
	e.Int32(-42)
	e.Uint64(1 << 40)
	e.Int64(-(1 << 40))
	e.Bool(true)
	e.Bool(false)
	d := NewDecoder(e.Bytes())
	if v, err := d.Uint32(); err != nil || v != 0xdeadbeef {
		t.Errorf("Uint32 = %x, %v", v, err)
	}
	if v, err := d.Int32(); err != nil || v != -42 {
		t.Errorf("Int32 = %d, %v", v, err)
	}
	if v, err := d.Uint64(); err != nil || v != 1<<40 {
		t.Errorf("Uint64 = %d, %v", v, err)
	}
	if v, err := d.Int64(); err != nil || v != -(1<<40) {
		t.Errorf("Int64 = %d, %v", v, err)
	}
	if v, err := d.Bool(); err != nil || !v {
		t.Errorf("Bool = %v, %v", v, err)
	}
	if v, err := d.Bool(); err != nil || v {
		t.Errorf("Bool = %v, %v", v, err)
	}
	if d.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", d.Remaining())
	}
}

func TestOpaquePadding(t *testing.T) {
	for n := 0; n <= 9; n++ {
		e := NewEncoder()
		p := bytes.Repeat([]byte{0xab}, n)
		e.Opaque(p)
		if e.Len()%4 != 0 {
			t.Errorf("n=%d: encoded length %d not 4-aligned", n, e.Len())
		}
		d := NewDecoder(e.Bytes())
		got, err := d.Opaque(0)
		if err != nil || !bytes.Equal(got, p) {
			t.Errorf("n=%d: Opaque round trip failed: %v", n, err)
		}
		if d.Remaining() != 0 {
			t.Errorf("n=%d: %d bytes left over", n, d.Remaining())
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	f := func(s string) bool {
		e := NewEncoder()
		e.String(s)
		d := NewDecoder(e.Bytes())
		got, err := d.String(0)
		return err == nil && got == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOpaqueLimit(t *testing.T) {
	e := NewEncoder()
	e.Opaque(make([]byte, 100))
	d := NewDecoder(e.Bytes())
	if _, err := d.Opaque(50); err == nil {
		t.Error("Opaque over limit did not fail")
	}
}

func TestShortBuffer(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	if _, err := d.Uint32(); err != ErrShortBuffer {
		t.Errorf("Uint32 on short buffer: %v", err)
	}
	d2 := NewDecoder([]byte{0, 0, 0, 8, 1, 2})
	if _, err := d2.Opaque(0); err != ErrShortBuffer {
		t.Errorf("Opaque on short buffer: %v", err)
	}
}

func TestInvalidBool(t *testing.T) {
	e := NewEncoder()
	e.Uint32(7)
	d := NewDecoder(e.Bytes())
	if _, err := d.Bool(); err == nil {
		t.Error("Bool(7) did not fail")
	}
}

func TestNegativeFixedOpaque(t *testing.T) {
	d := NewDecoder(nil)
	if _, err := d.FixedOpaque(-1); err == nil {
		t.Error("FixedOpaque(-1) did not fail")
	}
}

func TestRecordMarking(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello rpc world")
	if err := WriteRecord(&buf, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRecord(&buf, 0)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("ReadRecord = %q, %v", got, err)
	}
}

func TestRecordFragments(t *testing.T) {
	// Hand-build a two-fragment record.
	var buf bytes.Buffer
	buf.Write([]byte{0x00, 0x00, 0x00, 0x03}) // not last, len 3
	buf.WriteString("abc")
	buf.Write([]byte{0x80, 0x00, 0x00, 0x02}) // last, len 2
	buf.WriteString("de")
	got, err := ReadRecord(&buf, 0)
	if err != nil || string(got) != "abcde" {
		t.Fatalf("fragmented ReadRecord = %q, %v", got, err)
	}
}

func TestRecordSizeLimit(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRecord(&buf, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRecord(&buf, 50); err == nil {
		t.Error("oversized record did not fail")
	}
}

func TestQuickOpaqueRoundTrip(t *testing.T) {
	f := func(p []byte) bool {
		e := NewEncoder()
		e.Opaque(p)
		d := NewDecoder(e.Bytes())
		got, err := d.Opaque(0)
		return err == nil && bytes.Equal(got, p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
