// Package xdr implements the External Data Representation encoding
// (RFC 1014) used by Sun RPC and NFS: big-endian 4-byte alignment,
// 32/64-bit integers, opaque byte sequences and counted arrays.
package xdr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
)

// ErrShortBuffer reports a decode past the end of input.
var ErrShortBuffer = errors.New("xdr: short buffer")

// Encoder appends XDR-encoded values to a buffer.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes.
func (e *Encoder) Len() int { return len(e.buf) }

// Uint32 encodes a 32-bit unsigned integer.
func (e *Encoder) Uint32(v uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

// Int32 encodes a 32-bit signed integer.
func (e *Encoder) Int32(v int32) { e.Uint32(uint32(v)) }

// Uint64 encodes a 64-bit unsigned integer (XDR hyper).
func (e *Encoder) Uint64(v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

// Int64 encodes a 64-bit signed integer.
func (e *Encoder) Int64(v int64) { e.Uint64(uint64(v)) }

// Bool encodes a boolean as 0 or 1.
func (e *Encoder) Bool(v bool) {
	if v {
		e.Uint32(1)
	} else {
		e.Uint32(0)
	}
}

// FixedOpaque encodes bytes without a length prefix, padded to 4 bytes.
func (e *Encoder) FixedOpaque(p []byte) {
	e.buf = append(e.buf, p...)
	for len(e.buf)%4 != 0 {
		e.buf = append(e.buf, 0)
	}
}

// Opaque encodes a variable-length byte sequence with length prefix.
func (e *Encoder) Opaque(p []byte) {
	e.Uint32(uint32(len(p)))
	e.FixedOpaque(p)
}

// String encodes a string as variable-length opaque.
func (e *Encoder) String(s string) { e.Opaque([]byte(s)) }

// Decoder consumes XDR-encoded values from a buffer.
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder wraps p for decoding.
func NewDecoder(p []byte) *Decoder { return &Decoder{buf: p} }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Uint32 decodes a 32-bit unsigned integer.
func (d *Decoder) Uint32() (uint32, error) {
	if d.Remaining() < 4 {
		return 0, ErrShortBuffer
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v, nil
}

// Int32 decodes a 32-bit signed integer.
func (d *Decoder) Int32() (int32, error) {
	v, err := d.Uint32()
	return int32(v), err
}

// Uint64 decodes a 64-bit unsigned integer.
func (d *Decoder) Uint64() (uint64, error) {
	if d.Remaining() < 8 {
		return 0, ErrShortBuffer
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v, nil
}

// Int64 decodes a 64-bit signed integer.
func (d *Decoder) Int64() (int64, error) {
	v, err := d.Uint64()
	return int64(v), err
}

// Bool decodes a boolean.
func (d *Decoder) Bool() (bool, error) {
	v, err := d.Uint32()
	if err != nil {
		return false, err
	}
	switch v {
	case 0:
		return false, nil
	case 1:
		return true, nil
	}
	return false, fmt.Errorf("xdr: invalid boolean %d", v)
}

// FixedOpaque decodes n bytes plus padding.
func (d *Decoder) FixedOpaque(n int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("xdr: negative opaque length %d", n)
	}
	padded := (n + 3) &^ 3
	if d.Remaining() < padded {
		return nil, ErrShortBuffer
	}
	p := make([]byte, n)
	copy(p, d.buf[d.off:d.off+n])
	d.off += padded
	return p, nil
}

// Opaque decodes a length-prefixed byte sequence, enforcing maxLen
// (use 0 for no limit).
func (d *Decoder) Opaque(maxLen int) ([]byte, error) {
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if maxLen > 0 && int(n) > maxLen {
		return nil, fmt.Errorf("xdr: opaque length %d exceeds limit %d", n, maxLen)
	}
	if int(n) > d.Remaining() {
		return nil, ErrShortBuffer
	}
	return d.FixedOpaque(int(n))
}

// String decodes a length-prefixed string.
func (d *Decoder) String(maxLen int) (string, error) {
	p, err := d.Opaque(maxLen)
	return string(p), err
}

// ReadRecord reads one RPC record-marking frame from r: a 4-byte
// header whose top bit flags the final fragment and whose low 31 bits
// give the fragment length. Fragments are concatenated.
func ReadRecord(r io.Reader, maxSize int) ([]byte, error) {
	var rec []byte
	for {
		var hdr [4]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil, err
		}
		h := binary.BigEndian.Uint32(hdr[:])
		last := h&0x80000000 != 0
		n := int(h & 0x7fffffff)
		if maxSize > 0 && len(rec)+n > maxSize {
			return nil, fmt.Errorf("xdr: record exceeds %d bytes", maxSize)
		}
		frag := make([]byte, n)
		if _, err := io.ReadFull(r, frag); err != nil {
			return nil, err
		}
		rec = append(rec, frag...)
		if last {
			return rec, nil
		}
	}
}

// WriteRecord writes p to w as a single final record-marking fragment.
// Marker and payload go out as one vectored write (writev when w is a
// TCP connection), so the record never crosses the wire in two
// segments nor gets concatenated in user space.
func WriteRecord(w io.Writer, p []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(p))|0x80000000)
	bufs := net.Buffers{hdr[:], p}
	n, err := bufs.WriteTo(w)
	if err == nil && n < int64(len(hdr)+len(p)) {
		return io.ErrShortWrite
	}
	return err
}
