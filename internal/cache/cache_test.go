package cache

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestAccessHitMiss(t *testing.T) {
	m := New(10 * BlockSize)
	hit, miss := m.Access("a", 0, 4*BlockSize)
	if hit != 0 || miss != 4*BlockSize {
		t.Errorf("cold access: hit=%d miss=%d", hit, miss)
	}
	hit, miss = m.Access("a", 0, 4*BlockSize)
	if hit != 4*BlockSize || miss != 0 {
		t.Errorf("warm access: hit=%d miss=%d", hit, miss)
	}
	h, ms := m.Stats()
	if h != 4 || ms != 4 {
		t.Errorf("Stats = %d,%d, want 4,4", h, ms)
	}
}

func TestLRUEviction(t *testing.T) {
	m := New(4 * BlockSize)
	m.Access("a", 0, 4*BlockSize) // fills cache
	m.Access("b", 0, 2*BlockSize) // evicts a's two oldest blocks
	if r := m.Residency("b", 0, 2*BlockSize); r != 1 {
		t.Errorf("b residency = %v, want 1", r)
	}
	if r := m.Residency("a", 0, 4*BlockSize); r != 0.5 {
		t.Errorf("a residency = %v, want 0.5", r)
	}
	// Touching a's surviving blocks protects them.
	m.Access("a", 2*BlockSize, 2*BlockSize)
	m.Access("c", 0, 2*BlockSize) // evicts b now
	if r := m.Residency("a", 2*BlockSize, 2*BlockSize); r != 1 {
		t.Errorf("refreshed a blocks evicted: residency = %v", r)
	}
	if r := m.Residency("b", 0, 2*BlockSize); r != 0 {
		t.Errorf("b residency = %v, want 0", r)
	}
}

func TestResidencyDoesNotPerturb(t *testing.T) {
	m := New(2 * BlockSize)
	m.Access("a", 0, 2*BlockSize)
	for i := 0; i < 10; i++ {
		m.Residency("zzz", 0, 100*BlockSize)
	}
	if r := m.Residency("a", 0, 2*BlockSize); r != 1 {
		t.Errorf("probe perturbed the model: a residency = %v", r)
	}
	if m.Used() != 2*BlockSize {
		t.Errorf("Used = %d", m.Used())
	}
}

func TestInsertPopulates(t *testing.T) {
	m := New(8 * BlockSize)
	m.Insert("w", 0, 3*BlockSize)
	hit, miss := m.Access("w", 0, 3*BlockSize)
	if hit != 3*BlockSize || miss != 0 {
		t.Errorf("after Insert: hit=%d miss=%d", hit, miss)
	}
}

func TestInvalidate(t *testing.T) {
	m := New(8 * BlockSize)
	m.Insert("x", 0, 4*BlockSize)
	m.Insert("y", 0, 2*BlockSize)
	m.Invalidate("x")
	if r := m.Residency("x", 0, 4*BlockSize); r != 0 {
		t.Errorf("x residency after invalidate = %v", r)
	}
	if r := m.Residency("y", 0, 2*BlockSize); r != 1 {
		t.Errorf("y residency disturbed = %v", r)
	}
	if m.Used() != 2*BlockSize {
		t.Errorf("Used = %d, want %d", m.Used(), 2*BlockSize)
	}
}

func TestClear(t *testing.T) {
	m := New(8 * BlockSize)
	m.Insert("x", 0, 4*BlockSize)
	m.Clear()
	if m.Used() != 0 {
		t.Errorf("Used after Clear = %d", m.Used())
	}
}

func TestPartialBlocks(t *testing.T) {
	m := New(8 * BlockSize)
	// A 1-byte read still occupies one block.
	_, miss := m.Access("t", 0, 1)
	if miss != BlockSize {
		t.Errorf("miss = %d, want one block", miss)
	}
	// Reading a range spanning a block boundary touches two blocks.
	hit, miss := m.Access("t", BlockSize-1, 2)
	if hit != BlockSize || miss != BlockSize {
		t.Errorf("boundary access hit=%d miss=%d", hit, miss)
	}
}

func TestZeroLengthAccess(t *testing.T) {
	m := New(4 * BlockSize)
	hit, miss := m.Access("z", 0, 0)
	if hit != 0 || miss != 0 {
		t.Errorf("zero access: %d,%d", hit, miss)
	}
	if r := m.Residency("z", 0, 0); r != 1 {
		t.Errorf("zero residency = %v, want 1 (vacuous)", r)
	}
}

func TestCacheSmallerThanBlock(t *testing.T) {
	m := New(BlockSize / 2)
	m.Access("a", 0, BlockSize)
	if m.Used() != 0 {
		t.Errorf("undersized cache stored data: Used = %d", m.Used())
	}
}

// Property: Used never exceeds capacity.
func TestQuickUsedBounded(t *testing.T) {
	f := func(ops []uint16) bool {
		m := New(7 * BlockSize)
		for i, op := range ops {
			file := fmt.Sprintf("f%d", op%5)
			off := int64(op%3) * BlockSize
			n := int64(op%4+1) * BlockSize
			if i%2 == 0 {
				m.Access(file, off, n)
			} else {
				m.Insert(file, off, n)
			}
			if m.Used() > m.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: hit+miss from Access equals the block-rounded span.
func TestQuickAccessAccounting(t *testing.T) {
	f := func(off uint16, n uint16) bool {
		m := New(1 << 30)
		o, ln := int64(off), int64(n)
		hit, miss := m.Access("f", o, ln)
		if ln == 0 {
			return hit == 0 && miss == 0
		}
		first, last := o/BlockSize, (o+ln-1)/BlockSize
		return hit+miss == (last-first+1)*BlockSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestGenerationTracksResidencyChanges: the version counter advances
// exactly when the set of modeled-resident blocks can have changed, so
// the cache-aware scheduler invalidates estimates neither too rarely
// (stale predictions) nor on every probe (no fast path).
func TestGenerationTracksResidencyChanges(t *testing.T) {
	m := New(4 * BlockSize)
	g0 := m.Generation()
	m.Access("a", 0, 2*BlockSize) // faults blocks in
	g1 := m.Generation()
	if g1 == g0 {
		t.Fatal("generation did not advance on fault")
	}
	m.Access("a", 0, 2*BlockSize) // pure hits
	if m.Generation() != g1 {
		t.Error("generation advanced on a pure hit")
	}
	m.Residency("a", 0, 2*BlockSize) // probes never perturb
	if m.Generation() != g1 {
		t.Error("generation advanced on a probe")
	}
	m.Insert("b", 0, BlockSize)
	g2 := m.Generation()
	if g2 == g1 {
		t.Error("generation did not advance on insert")
	}
	m.Invalidate("a")
	g3 := m.Generation()
	if g3 == g2 {
		t.Error("generation did not advance on invalidate")
	}
	m.Invalidate("a") // nothing left to drop
	if m.Generation() != g3 {
		t.Error("generation advanced on a no-op invalidate")
	}
	m.Clear()
	if m.Generation() == g3 {
		t.Error("generation did not advance on clear")
	}
}
