// Package cache implements NeST's gray-box model of the kernel buffer
// cache (Arpaci-Dusseau & Arpaci-Dusseau, SOSP 2001; Burnett et al.,
// USENIX 2002). NeST cannot see inside the kernel, so it maintains an
// LRU model of which file blocks are likely resident and consults it
// for cache-aware scheduling: requests predicted to hit are serviced
// before requests that would stall on the disk. In simulation the same
// model doubles as the kernel cache itself.
package cache

import (
	"container/list"
	"sync"
)

// BlockSize is the modeling granularity. The real kernel caches 4 KB
// pages; modeling at 64 KB keeps bookkeeping cheap with no loss for
// whole-file workloads.
const BlockSize = 64 * 1024

type blockKey struct {
	file  string
	index int64
}

// Model tracks probable buffer-cache contents with LRU replacement.
// All methods are safe for concurrent use.
type Model struct {
	mu       sync.RWMutex
	capacity int64 // bytes
	used     int64
	lru      *list.List // front = most recent; values are blockKey
	index    map[blockKey]*list.Element

	hits   int64
	misses int64
	// gen advances whenever the set of modeled-resident blocks changes
	// (faults, evictions, invalidations) — not on pure hits or probes,
	// which leave residency untouched. The cache-aware scheduler keys
	// cached service-time estimates off it (sched.Generational), so
	// admissions re-probe only when a prediction may actually differ.
	gen uint64
}

// New returns a model of a cache holding capacity bytes.
func New(capacity int64) *Model {
	return &Model{
		capacity: capacity,
		lru:      list.New(),
		index:    make(map[blockKey]*list.Element),
	}
}

// Capacity returns the modeled cache size in bytes.
func (m *Model) Capacity() int64 { return m.capacity }

// Used returns the bytes currently modeled as resident.
func (m *Model) Used() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.used
}

// Stats returns cumulative block hits and misses recorded by Access.
func (m *Model) Stats() (hits, misses int64) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.hits, m.misses
}

// Generation implements sched.Generational: it reports a counter that
// advances whenever predicted residency may have changed, letting the
// cache-aware policy invalidate cached estimates precisely instead of
// re-probing every pending request on each admission.
func (m *Model) Generation() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.gen
}

func blockRange(off, n int64) (first, last int64) {
	if n <= 0 {
		return 0, -1
	}
	return off / BlockSize, (off + n - 1) / BlockSize
}

// Access models a read of [off, off+n) of file: resident blocks are
// refreshed, missing blocks are faulted in (evicting LRU blocks). It
// returns the byte counts that hit and missed, which the simulated
// filesystem converts into memory-copy versus disk time.
func (m *Model) Access(file string, off, n int64) (hit, miss int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	first, last := blockRange(off, n)
	for b := first; b <= last; b++ {
		key := blockKey{file, b}
		if e, ok := m.index[key]; ok {
			m.lru.MoveToFront(e)
			m.hits++
			hit += BlockSize
		} else {
			m.insertLocked(key)
			m.misses++
			miss += BlockSize
		}
	}
	return hit, miss
}

// Insert models data entering the cache without a read (e.g., writes
// populating the page cache).
func (m *Model) Insert(file string, off, n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	first, last := blockRange(off, n)
	for b := first; b <= last; b++ {
		key := blockKey{file, b}
		if e, ok := m.index[key]; ok {
			m.lru.MoveToFront(e)
			continue
		}
		m.insertLocked(key)
	}
}

func (m *Model) insertLocked(key blockKey) {
	m.gen++
	for m.used+BlockSize > m.capacity && m.lru.Len() > 0 {
		oldest := m.lru.Back()
		delete(m.index, oldest.Value.(blockKey))
		m.lru.Remove(oldest)
		m.used -= BlockSize
	}
	if m.used+BlockSize > m.capacity {
		return // cache smaller than one block
	}
	m.index[key] = m.lru.PushFront(key)
	m.used += BlockSize
}

// Residency predicts, without perturbing the model, what fraction of
// [off, off+n) of file is cache-resident. The cache-aware scheduler
// uses this probe to approximate shortest-job-first (paper §4.2).
func (m *Model) Residency(file string, off, n int64) float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	first, last := blockRange(off, n)
	if last < first {
		return 1
	}
	resident := 0
	total := 0
	for b := first; b <= last; b++ {
		total++
		if _, ok := m.index[blockKey{file, b}]; ok {
			resident++
		}
	}
	return float64(resident) / float64(total)
}

// Invalidate drops all modeled blocks of file (e.g., after removal).
func (m *Model) Invalidate(file string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for e := m.lru.Front(); e != nil; {
		next := e.Next()
		if e.Value.(blockKey).file == file {
			delete(m.index, e.Value.(blockKey))
			m.lru.Remove(e)
			m.used -= BlockSize
			m.gen++
		}
		e = next
	}
}

// Clear empties the model.
func (m *Model) Clear() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lru.Init()
	m.index = make(map[blockKey]*list.Element)
	m.used = 0
	m.gen++
}
