package httpx_test

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"

	"nest/internal/httpx"
	"nest/internal/nesttest"
)

func start(t *testing.T) (*nesttest.Fixture, *http.Client, string) {
	t.Helper()
	f := nesttest.Start(t, httpx.NewHandler(), nesttest.Options{})
	f.GrantLot(t, "anonymous", 100*nesttest.MB)
	client := &http.Client{}
	return f, client, "http://" + f.Addr
}

func TestPutGetRoundTrip(t *testing.T) {
	_, client, base := start(t)
	payload := bytes.Repeat([]byte("http-data."), 10000)
	req, _ := http.NewRequest(http.MethodPut, base+"/f.bin", bytes.NewReader(payload))
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 201 {
		t.Fatalf("PUT status = %d", resp.StatusCode)
	}

	resp, err = client.Get(base + "/f.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET status = %d", resp.StatusCode)
	}
	got, err := io.ReadAll(resp.Body)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("GET body mismatch: %d bytes, %v", len(got), err)
	}
	if resp.ContentLength != int64(len(payload)) {
		t.Errorf("Content-Length = %d", resp.ContentLength)
	}
}

func TestHead(t *testing.T) {
	_, client, base := start(t)
	req, _ := http.NewRequest(http.MethodPut, base+"/h", strings.NewReader("12345"))
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = client.Head(base + "/h")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || resp.ContentLength != 5 {
		t.Errorf("HEAD = %d, len %d", resp.StatusCode, resp.ContentLength)
	}
}

func TestGetMissing(t *testing.T) {
	_, client, base := start(t)
	resp, err := client.Get(base + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
}

func TestDelete(t *testing.T) {
	_, client, base := start(t)
	req, _ := http.NewRequest(http.MethodPut, base+"/d", strings.NewReader("x"))
	resp, _ := client.Do(req)
	resp.Body.Close()
	req, _ = http.NewRequest(http.MethodDelete, base+"/d", nil)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 204 {
		t.Errorf("DELETE status = %d", resp.StatusCode)
	}
	resp, _ = client.Get(base + "/d")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("GET after DELETE = %d", resp.StatusCode)
	}
}

func TestKeepAliveSequence(t *testing.T) {
	_, client, base := start(t)
	// Several requests over one connection (http.Client pools).
	for i := 0; i < 5; i++ {
		path := fmt.Sprintf("%s/k%d", base, i)
		req, _ := http.NewRequest(http.MethodPut, path, strings.NewReader("abc"))
		resp, err := client.Do(req)
		if err != nil {
			t.Fatalf("PUT %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		resp, err = client.Get(path)
		if err != nil {
			t.Fatalf("GET %d: %v", i, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(body) != "abc" {
			t.Fatalf("GET %d body = %q", i, body)
		}
	}
}

func TestRejectedPutKeepsConnection(t *testing.T) {
	f := nesttest.Start(t, httpx.NewHandler(), nesttest.Options{}) // no lot granted
	client := &http.Client{}
	base := "http://" + f.Addr
	req, _ := http.NewRequest(http.MethodPut, base+"/f", strings.NewReader("data"))
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 507 {
		t.Errorf("PUT without lot = %d, want 507", resp.StatusCode)
	}
	// The same pooled connection still serves requests (body drained).
	resp, err = client.Get(base + "/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

func TestMethodNotAllowed(t *testing.T) {
	_, client, base := start(t)
	req, _ := http.NewRequest(http.MethodPost, base+"/x", strings.NewReader("x"))
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Errorf("POST status = %d", resp.StatusCode)
	}
}

func TestPermissionDenied(t *testing.T) {
	f, client, base := start(t)
	// Lock down the tree for anyone but a GSI user.
	f.Store.ACL().Set("/", "system:anyuser", 0)
	f.Store.ACL().Set("/", "john", 0x3f)
	resp, err := client.Get(base + "/whatever")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 403 {
		t.Errorf("status = %d, want 403", resp.StatusCode)
	}
}

// TestHTTP10ClosesConnection: an HTTP/1.0 request is served and the
// connection closed afterward.
func TestHTTP10ClosesConnection(t *testing.T) {
	f := nesttest.Start(t, httpx.NewHandler(), nesttest.Options{})
	f.GrantLot(t, "anonymous", nesttest.MB)
	conn, err := net.Dial("tcp", f.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "PUT /ten HTTP/1.0\r\nContent-Length: 3\r\n\r\nxyz")
	resp, err := io.ReadAll(conn) // server closes after the response
	if err != nil {
		t.Fatal(err)
	}
	text := string(resp)
	if !strings.Contains(text, "201") {
		t.Errorf("response:\n%s", text)
	}
	if !strings.Contains(text, "Connection: close") {
		t.Errorf("HTTP/1.0 response not marked close:\n%s", text)
	}
}

// TestPipelinedGets issues two requests back to back on one raw
// connection (keep-alive framing must be exact).
func TestPipelinedGets(t *testing.T) {
	f := nesttest.Start(t, httpx.NewHandler(), nesttest.Options{})
	f.GrantLot(t, "anonymous", nesttest.MB)
	client := &http.Client{}
	req, _ := http.NewRequest(http.MethodPut, "http://"+f.Addr+"/p", strings.NewReader("pipelined"))
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	conn, err := net.Dial("tcp", f.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET /p HTTP/1.1\r\nHost: x\r\n\r\nGET /p HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
	all, _ := io.ReadAll(conn)
	if got := strings.Count(string(all), "200 OK"); got != 2 {
		t.Errorf("pipelined responses = %d, want 2:\n%s", got, all)
	}
	if got := strings.Count(string(all), "pipelined"); got != 2 {
		t.Errorf("bodies = %d, want 2", got)
	}
}

// startWithStatus wires the fixture dispatcher's status pages into the
// HTTP handler, as core does for a full appliance.
func startWithStatus(t *testing.T) (*nesttest.Fixture, *http.Client, string) {
	t.Helper()
	h := httpx.NewHandler()
	f := nesttest.Start(t, h, nesttest.Options{})
	h.SetStatus(f.Disp.StatusPage)
	f.GrantLot(t, "anonymous", 100*nesttest.MB)
	return f, &http.Client{}, "http://" + f.Addr
}

func get(t *testing.T, client *http.Client, url string) (int, string) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestStatusEndpoints(t *testing.T) {
	_, client, base := startWithStatus(t)

	// Generate some traffic so the pages show live counts.
	req, _ := http.NewRequest(http.MethodPut, base+"/obs.bin", strings.NewReader("observed payload"))
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if code, _ := get(t, client, base+"/obs.bin"); code != 200 {
		t.Fatalf("GET file = %d", code)
	}

	code, body := get(t, client, base+"/healthz")
	if code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body = get(t, client, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"nest_dispatch_latency_transfer_ns_count",
		"nest_transfer_queue_depth",
		`nest_dispatch_op_total{proto="http",op="get"}`,
		`nest_dispatch_op_total{proto="http",op="put"}`,
		`nest_dispatch_bytes_total{proto="http"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body = get(t, client, base+"/statusz")
	if code != 200 {
		t.Fatalf("/statusz = %d", code)
	}
	for _, want := range []string{
		"NeST appliance status",
		"dispatch latency",
		"per-protocol requests",
		"http",
		"slow traces",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/statusz missing %q", want)
		}
	}

	// Status paths are introspection, not files: a PUT to /metrics is a
	// normal (storable) file op, and its content must not shadow the
	// metrics page on GET.
	req, _ = http.NewRequest(http.MethodPut, base+"/metrics", strings.NewReader("shadow"))
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if _, body := get(t, client, base+"/metrics"); body == "shadow" {
		t.Error("file content shadowed the metrics page")
	}
}

func TestStatusConcurrentScrape(t *testing.T) {
	_, client, base := startWithStatus(t)
	req, _ := http.NewRequest(http.MethodPut, base+"/c.bin", strings.NewReader("concurrent"))
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// Scrapers and file readers race; under -race this exercises the
	// registry snapshot, trace rings and copy-on-write proto stats.
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := &http.Client{}
			for j := 0; j < 16; j++ {
				for _, p := range []string{"/metrics", "/statusz", "/c.bin"} {
					resp, err := c.Get(base + p)
					if err != nil {
						errs <- err
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != 200 {
						errs <- fmt.Errorf("GET %s = %d", p, resp.StatusCode)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
