// Package httpx implements NeST's HTTP/1.1 protocol handler (RFC 2068
// subset): GET, HEAD and PUT with persistent connections, mapped onto
// the common request interface. NeST 0.9 grants HTTP clients anonymous
// access only (paper §3). The server side is hand-rolled rather than
// delegating to net/http so that data movement flows through the
// transfer manager like every other protocol.
package httpx

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"

	"nest/internal/gsi"
	"nest/internal/protocol"
)

// Proto is the protocol class name.
const Proto = "http"

// StatusFunc answers an observability path ("/statusz", "/metrics",
// "/healthz") with a plain-text page, or reports false so the path
// falls through to normal file handling.
type StatusFunc func(path string) (string, bool)

// Handler is the HTTP protocol module.
type Handler struct {
	// status, when set, intercepts GETs for observability pages before
	// they are mapped to protocol ops. Atomic so SetStatus is safe
	// after sessions have started.
	status atomic.Pointer[StatusFunc]
}

// NewHandler returns the HTTP handler.
func NewHandler() *Handler { return &Handler{} }

// SetStatus installs the observability page callback. Safe to call at
// any time; nil disables interception.
func (h *Handler) SetStatus(fn StatusFunc) {
	if fn == nil {
		h.status.Store(nil)
		return
	}
	h.status.Store(&fn)
}

// Proto implements protocol.Handler.
func (h *Handler) Proto() string { return Proto }

// NewSession implements protocol.Handler. HTTP needs no handshake;
// every client is anonymous.
func (h *Handler) NewSession(conn net.Conn) (protocol.Session, error) {
	return &session{
		h:    h,
		conn: conn,
		br:   bufio.NewReader(conn),
		bw:   bufio.NewWriter(conn),
	}, nil
}

type session struct {
	h    *Handler
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	// close10 marks a connection that must close after the response
	// (HTTP/1.0 or Connection: close).
	close10 bool
	// head marks that the current request was HEAD: status and headers
	// only.
	head bool
	// inData marks a get whose framing SendData already wrote.
	inData *protocol.Request
	// body is the unread remainder of the current request's body, to
	// be drained before the next request on errors.
	body io.Reader
}

// Proto implements protocol.Session.
func (s *session) Proto() string { return Proto }

// User implements protocol.Session.
func (s *session) User() string { return gsi.Anonymous }

// Close implements protocol.Session.
func (s *session) Close() error { return s.conn.Close() }

// Conn implements protocol.Parkable: a keep-alive HTTP session is
// framed request/response, so it may be parked between requests.
func (s *session) Conn() net.Conn { return s.conn }

// Buffered implements protocol.Parkable.
func (s *session) Buffered() int { return s.br.Buffered() }

// Next implements protocol.Session: parse one HTTP request head.
// Observability paths are answered here directly (they are appliance
// introspection, not file operations) and the session moves on to the
// next request.
func (s *session) Next() (*protocol.Request, error) {
	for {
		req, served, err := s.next1()
		if err != nil {
			return nil, err
		}
		if served {
			continue
		}
		return req, nil
	}
}

// next1 parses one HTTP request head. served reports that the request
// was an observability page answered in-line.
func (s *session) next1() (req *protocol.Request, served bool, err error) {
	if s.body != nil {
		// Previous request's body was not consumed (rejected put):
		// drain it to keep the connection parseable.
		if _, err := io.Copy(io.Discard, s.body); err != nil {
			return nil, false, err
		}
		s.body = nil
	}
	if s.close10 {
		return nil, false, io.EOF
	}
	line, err := s.readLine()
	if err != nil {
		return nil, false, err
	}
	parts := strings.Fields(line)
	if len(parts) != 3 {
		s.writeSimple(400, "malformed request line")
		return nil, false, fmt.Errorf("httpx: malformed request line %q", line)
	}
	method, rawPath, version := parts[0], parts[1], parts[2]
	if version == "HTTP/1.0" {
		s.close10 = true
	}
	headers, err := s.readHeaders()
	if err != nil {
		return nil, false, err
	}
	if strings.EqualFold(headers["connection"], "close") {
		s.close10 = true
	}
	u, err := url.ParseRequestURI(rawPath)
	if err != nil {
		s.writeSimple(400, "bad path")
		return nil, false, fmt.Errorf("httpx: bad path %q", rawPath)
	}
	if method == "GET" && s.h != nil {
		if fp := s.h.status.Load(); fp != nil {
			if page, ok := (*fp)(u.Path); ok {
				if err := s.serveStatus(page); err != nil {
					return nil, false, err
				}
				return nil, true, nil
			}
		}
	}
	req = &protocol.Request{Proto: Proto, User: gsi.Anonymous, Path: u.Path}
	// Trace-Context is the distributed-tracing extension header:
	// "<trace-hex>.<parent-span-hex>". Unknown headers were always
	// ignored, so old clients and servers interoperate unchanged.
	if tc := headers["trace-context"]; tc != "" {
		if dot := strings.IndexByte(tc, '.'); dot > 0 {
			trace, err1 := strconv.ParseUint(tc[:dot], 16, 64)
			parent, err2 := strconv.ParseUint(tc[dot+1:], 16, 64)
			if err1 == nil && err2 == nil {
				req.TraceID, req.ParentSpan = trace, parent
			}
		}
	}
	s.head = false
	switch method {
	case "GET":
		req.Op = protocol.OpGet
	case "HEAD":
		req.Op = protocol.OpStat
		s.head = true
	case "PUT":
		req.Op = protocol.OpPut
		n, err := strconv.ParseInt(headers["content-length"], 10, 64)
		if err != nil || n < 0 {
			s.writeSimple(411, "length required")
			return nil, false, fmt.Errorf("httpx: missing Content-Length")
		}
		req.Size = n
		s.body = io.LimitReader(s.br, n)
	case "DELETE":
		req.Op = protocol.OpRemove
	default:
		s.writeSimple(405, "method not allowed")
		return nil, false, fmt.Errorf("httpx: method %q not allowed", method)
	}
	return req, false, nil
}

func (s *session) readLine() (string, error) {
	line, err := s.br.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

func (s *session) readHeaders() (map[string]string, error) {
	headers := make(map[string]string)
	for {
		line, err := s.readLine()
		if err != nil {
			return nil, err
		}
		if line == "" {
			return headers, nil
		}
		i := strings.IndexByte(line, ':')
		if i < 0 {
			continue
		}
		headers[strings.ToLower(strings.TrimSpace(line[:i]))] = strings.TrimSpace(line[i+1:])
	}
}

func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 201:
		return "Created"
	case 204:
		return "No Content"
	case 400:
		return "Bad Request"
	case 403:
		return "Forbidden"
	case 404:
		return "Not Found"
	case 405:
		return "Method Not Allowed"
	case 409:
		return "Conflict"
	case 411:
		return "Length Required"
	case 507:
		return "Insufficient Storage"
	case 500:
		return "Internal Server Error"
	case 503:
		return "Service Unavailable"
	}
	return "Error"
}

func codeToStatus(code int) int {
	switch code {
	case protocol.CodeOK:
		return 200
	case protocol.CodeNotFound:
		return 404
	case protocol.CodePermission:
		return 403
	case protocol.CodeNoSpace, protocol.CodeNoLot:
		return 507
	case protocol.CodeExists, protocol.CodeNotEmpty, protocol.CodeIsDir, protocol.CodeNotDir:
		return 409
	case protocol.CodeBadRequest:
		return 400
	case protocol.CodeBusy:
		return 503
	}
	return 500
}

func (s *session) writeHead(status int, length int64, extra string) error {
	conn := "keep-alive"
	if s.close10 {
		conn = "close"
	}
	_, err := fmt.Fprintf(s.bw,
		"HTTP/1.1 %d %s\r\nServer: NeST/0.9\r\nContent-Length: %d\r\nConnection: %s\r\n%s\r\n",
		status, statusText(status), length, conn, extra)
	return err
}

func (s *session) writeSimple(status int, msg string) error {
	if status == 204 {
		// 204 responses carry no body (RFC 2068 §10.2.5).
		if err := s.writeHead(status, 0, ""); err != nil {
			return err
		}
		return s.bw.Flush()
	}
	body := msg + "\n"
	if err := s.writeHead(status, int64(len(body)), "Content-Type: text/plain\r\n"); err != nil {
		return err
	}
	if _, err := s.bw.WriteString(body); err != nil {
		return err
	}
	return s.bw.Flush()
}

// serveStatus answers an observability page in-line.
func (s *session) serveStatus(page string) error {
	if err := s.writeHead(200, int64(len(page)), "Content-Type: text/plain; charset=utf-8\r\n"); err != nil {
		return err
	}
	if _, err := s.bw.WriteString(page); err != nil {
		return err
	}
	return s.bw.Flush()
}

// Reply implements protocol.Session.
func (s *session) Reply(req *protocol.Request, rep *protocol.Reply) error {
	if s.inData == req {
		s.inData = nil
		if rep.OK() {
			return nil
		}
		return fmt.Errorf("httpx: transfer failed mid-stream: %s", rep.Message)
	}
	if !rep.OK() {
		return s.writeSimple(codeToStatus(rep.Code), rep.Message)
	}
	switch req.Op {
	case protocol.OpStat: // HEAD
		if err := s.writeHead(200, rep.Info.Size, "Content-Type: application/octet-stream\r\n"); err != nil {
			return err
		}
		return s.bw.Flush()
	case protocol.OpPut:
		return s.writeSimple(201, fmt.Sprintf("stored %d bytes", rep.Size))
	case protocol.OpRemove:
		return s.writeSimple(204, "")
	}
	return s.writeSimple(200, "ok")
}

// SendData implements protocol.Session: response head then the body.
// The head is not staged through the buffered writer: it goes out with
// the first body chunk as one vectored write to the connection, so
// zero-copy extent payloads skip the bufio copy entirely.
func (s *session) SendData(req *protocol.Request, size int64) (io.WriteCloser, error) {
	if err := s.bw.Flush(); err != nil {
		return nil, err
	}
	conn := "keep-alive"
	if s.close10 {
		conn = "close"
	}
	head := fmt.Appendf(nil,
		"HTTP/1.1 200 OK\r\nServer: NeST/0.9\r\nContent-Length: %d\r\nConnection: %s\r\nContent-Type: application/octet-stream\r\n\r\n",
		size, conn)
	s.inData = req
	return protocol.NewVectoredSink(s.conn, head), nil
}

// RecvData implements protocol.Session: the request body.
func (s *session) RecvData(req *protocol.Request) (io.ReadCloser, error) {
	body := s.body
	s.body = nil
	if body == nil {
		body = strings.NewReader("")
	}
	return io.NopCloser(body), nil
}
