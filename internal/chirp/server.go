package chirp

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"time"

	"nest/internal/gsi"
	"nest/internal/protocol"
)

// Handler is the Chirp protocol module.
type Handler struct {
	verifier  *gsi.Verifier
	allowAnon bool
}

// NewHandler returns a Chirp handler verifying GSI tokens against v.
// When allowAnon is true, "auth anonymous" is accepted and mapped to
// the anonymous principal.
func NewHandler(v *gsi.Verifier, allowAnon bool) *Handler {
	return &Handler{verifier: v, allowAnon: allowAnon}
}

// Proto implements protocol.Handler.
func (h *Handler) Proto() string { return Proto }

// NewSession implements protocol.Handler: greet, then authenticate.
func (h *Handler) NewSession(conn net.Conn) (protocol.Session, error) {
	s := &session{
		conn: conn,
		br:   bufio.NewReader(conn),
		bw:   bufio.NewWriter(conn),
	}
	if err := s.writeLine(Greeting); err != nil {
		return nil, err
	}
	line, err := s.readLine()
	if err != nil {
		return nil, err
	}
	toks := splitLine(line)
	if len(toks) < 2 || toks[0] != "auth" {
		s.writeLine("-ERR 3 expected auth")
		return nil, fmt.Errorf("chirp: client did not authenticate")
	}
	switch toks[1] {
	case "gsi":
		if len(toks) != 3 || h.verifier == nil {
			s.writeLine("-ERR 3 gsi unavailable")
			return nil, fmt.Errorf("chirp: gsi auth unavailable")
		}
		user, err := h.verifier.Authenticate(toks[2])
		if err != nil {
			s.writeLine("-ERR 3 authentication failed")
			return nil, err
		}
		s.user = user
	case "anonymous":
		if !h.allowAnon {
			s.writeLine("-ERR 3 anonymous access disabled")
			return nil, fmt.Errorf("chirp: anonymous access disabled")
		}
		s.user = gsi.Anonymous
	default:
		s.writeLine("-ERR 5 unknown auth mechanism")
		return nil, fmt.Errorf("chirp: unknown auth mechanism %q", toks[1])
	}
	if err := s.writeLine("+OK user " + escape(s.user)); err != nil {
		return nil, err
	}
	return s, nil
}

// session is one authenticated Chirp connection.
type session struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	user string
	// inData marks a get whose success framing was already sent by
	// SendData, so the dispatcher's final Reply is suppressed.
	inData *protocol.Request
	// Sticky trace context set by the "trcx" extension command: every
	// subsequent request joins the caller's trace (until replaced or
	// cleared with "trcx 0 0"). Old clients never send trcx; old
	// servers answer it "-ERR 5 unknown command", which clients treat
	// as "peer doesn't trace" — the wire format stays compatible both
	// ways.
	trcTrace  uint64
	trcParent uint64
}

func (s *session) readLine() (string, error) {
	line, err := s.br.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

func (s *session) writeLine(line string) error {
	if _, err := s.bw.WriteString(line + "\n"); err != nil {
		return err
	}
	return s.bw.Flush()
}

// Proto implements protocol.Session.
func (s *session) Proto() string { return Proto }

// User implements protocol.Session.
func (s *session) User() string { return s.user }

// Close implements protocol.Session.
func (s *session) Close() error { return s.conn.Close() }

// Conn implements protocol.Parkable: Chirp is framed request/response
// on one connection, so idle sessions may be parked between requests.
func (s *session) Conn() net.Conn { return s.conn }

// Buffered implements protocol.Parkable.
func (s *session) Buffered() int { return s.br.Buffered() }

// Next implements protocol.Session.
func (s *session) Next() (*protocol.Request, error) {
	for {
		line, err := s.readLine()
		if err != nil {
			return nil, err
		}
		toks := splitLine(line)
		if len(toks) == 0 {
			continue
		}
		// The trace-context extension is consumed inside the session: it
		// carries identity for later requests, not work for the
		// dispatcher.
		if strings.ToLower(toks[0]) == "trcx" {
			var werr error
			if err := s.setTraceContext(toks); err != nil {
				werr = s.writeLine("-ERR 5 " + escape(err.Error()))
			} else {
				werr = s.writeLine("+OK")
			}
			if werr != nil {
				return nil, werr
			}
			continue
		}
		req, err := s.parse(toks)
		if err != nil {
			if werr := s.writeLine("-ERR 5 " + escape(err.Error())); werr != nil {
				return nil, werr
			}
			continue
		}
		req.TraceID = s.trcTrace
		req.ParentSpan = s.trcParent
		return req, nil
	}
}

// setTraceContext parses "trcx <trace-hex> <parent-span-hex>".
func (s *session) setTraceContext(toks []string) error {
	if len(toks) != 3 {
		return fmt.Errorf("trcx: want trace and parent span ids")
	}
	trace, err := strconv.ParseUint(toks[1], 16, 64)
	if err != nil {
		return fmt.Errorf("trcx: bad trace id")
	}
	parent, err := strconv.ParseUint(toks[2], 16, 64)
	if err != nil {
		return fmt.Errorf("trcx: bad parent span id")
	}
	s.trcTrace, s.trcParent = trace, parent
	return nil
}

func (s *session) parse(toks []string) (*protocol.Request, error) {
	cmd := strings.ToLower(toks[0])
	path := func(i int) (string, error) {
		if len(toks) <= i {
			return "", fmt.Errorf("%s: missing path", cmd)
		}
		return unescape(toks[i])
	}
	num := func(i int, what string) (int64, error) {
		if len(toks) <= i {
			return 0, fmt.Errorf("%s: missing %s", cmd, what)
		}
		return parseInt(toks[i])
	}
	req := &protocol.Request{Proto: Proto, User: s.user}
	var err error
	switch cmd {
	case "ping":
		req.Op = protocol.OpPing
	case "quit":
		req.Op = protocol.OpQuit
	case "mkdir":
		req.Op = protocol.OpMkdir
		req.Path, err = path(1)
	case "rmdir":
		req.Op = protocol.OpRmdir
		req.Path, err = path(1)
	case "rm":
		req.Op = protocol.OpRemove
		req.Path, err = path(1)
	case "ls":
		req.Op = protocol.OpList
		req.Path, err = path(1)
	case "stat":
		req.Op = protocol.OpStat
		req.Path, err = path(1)
	case "get":
		req.Op = protocol.OpGet
		if req.Path, err = path(1); err != nil {
			return nil, err
		}
		if len(toks) >= 4 {
			if req.Offset, err = num(2, "offset"); err != nil {
				return nil, err
			}
			req.Length, err = num(3, "length")
		}
	case "put":
		req.Op = protocol.OpPut
		if req.Path, err = path(1); err != nil {
			return nil, err
		}
		if req.Size, err = num(2, "size"); err != nil {
			return nil, err
		}
		if len(toks) >= 4 {
			req.LotID = toks[3]
		}
	case "lot_create":
		req.Op = protocol.OpLotCreate
		if req.LotBytes, err = num(1, "bytes"); err != nil {
			return nil, err
		}
		var secs int64
		if secs, err = num(2, "duration"); err != nil {
			return nil, err
		}
		req.LotDuration = time.Duration(secs) * time.Second
	case "lot_release":
		req.Op = protocol.OpLotRelease
		if len(toks) < 2 {
			return nil, fmt.Errorf("lot_release: missing id")
		}
		req.LotID = toks[1]
	case "lot_renew":
		req.Op = protocol.OpLotRenew
		if len(toks) < 3 {
			return nil, fmt.Errorf("lot_renew: missing id or duration")
		}
		req.LotID = toks[1]
		var secs int64
		if secs, err = parseInt(toks[2]); err != nil {
			return nil, err
		}
		req.LotDuration = time.Duration(secs) * time.Second
	case "lot_status":
		req.Op = protocol.OpLotStatus
		if len(toks) < 2 {
			return nil, fmt.Errorf("lot_status: missing id")
		}
		req.LotID = toks[1]
	case "lot_add_member", "lot_remove_member":
		if cmd == "lot_add_member" {
			req.Op = protocol.OpLotAddMember
		} else {
			req.Op = protocol.OpLotRemoveMember
		}
		if len(toks) < 3 {
			return nil, fmt.Errorf("%s: want id and user", cmd)
		}
		req.LotID = toks[1]
		if req.ACLUser, err = unescape(toks[2]); err != nil {
			return nil, err
		}
	case "acl_set":
		req.Op = protocol.OpACLSet
		if req.Path, err = path(1); err != nil {
			return nil, err
		}
		if len(toks) < 4 {
			return nil, fmt.Errorf("acl_set: want dir principal rights")
		}
		if req.ACLUser, err = unescape(toks[2]); err != nil {
			return nil, err
		}
		req.ACLRights = toks[3]
		if req.ACLRights == "-" {
			req.ACLRights = ""
		}
	case "acl_get":
		req.Op = protocol.OpACLGet
		req.Path, err = path(1)
	case "statfs":
		req.Op = protocol.OpStatfs
	default:
		return nil, fmt.Errorf("unknown command %q", cmd)
	}
	if err != nil {
		return nil, err
	}
	return req, nil
}

// Reply implements protocol.Session.
func (s *session) Reply(req *protocol.Request, rep *protocol.Reply) error {
	if s.inData == req {
		s.inData = nil
		if rep.OK() {
			return nil // get framing already complete
		}
		// Mid-stream failure: the byte count promised to the client
		// cannot be honored; drop the connection.
		return fmt.Errorf("chirp: transfer failed mid-stream: %s", rep.Message)
	}
	if !rep.OK() {
		return s.writeLine(fmt.Sprintf("-ERR %d %s", rep.Code, escape(rep.Message)))
	}
	switch req.Op {
	case protocol.OpList:
		if err := s.writeLine(fmt.Sprintf("+OK %d", len(rep.Entries))); err != nil {
			return err
		}
		for _, e := range rep.Entries {
			kind := "f"
			if e.IsDir {
				kind = "d"
			}
			if _, err := fmt.Fprintf(s.bw, "%s %d %s\n", kind, e.Size, escape(e.Name)); err != nil {
				return err
			}
		}
		return s.bw.Flush()
	case protocol.OpStat:
		info := rep.Info
		kind := "f"
		if info.IsDir {
			kind = "d"
		}
		return s.writeLine(fmt.Sprintf("+OK %s %d %s", kind, info.Size, escape(info.Name)))
	case protocol.OpPut:
		return s.writeLine(fmt.Sprintf("+OK %d", rep.Size))
	case protocol.OpLotCreate, protocol.OpLotRenew, protocol.OpLotStatus:
		l := rep.Lot
		state := "active"
		if l.BestEffort {
			state = "besteffort"
		}
		return s.writeLine(fmt.Sprintf("+OK %s %d %d %d %s",
			l.ID, l.Capacity, l.Used, int64(l.Expires/time.Millisecond), state))
	case protocol.OpACLGet:
		lines := []string{}
		if rep.Rights != "" {
			lines = strings.Split(rep.Rights, "\n")
		}
		if err := s.writeLine(fmt.Sprintf("+OK %d", len(lines))); err != nil {
			return err
		}
		for _, l := range lines {
			if _, err := fmt.Fprintf(s.bw, "%s\n", l); err != nil {
				return err
			}
		}
		return s.bw.Flush()
	case protocol.OpStatfs:
		ad := rep.Ad
		if err := s.writeLine(fmt.Sprintf("+OK %d", len(ad))); err != nil {
			return err
		}
		if _, err := s.bw.WriteString(ad); err != nil {
			return err
		}
		return s.bw.Flush()
	}
	return s.writeLine("+OK")
}

// SendData implements protocol.Session: "+OK <size>" then raw bytes.
// The framing line is not written here: it rides the first payload
// write as one vectored write straight to the connection, so zero-copy
// extent chunks go out header+payload in a single writev instead of
// being copied through the session's buffered writer.
func (s *session) SendData(req *protocol.Request, size int64) (io.WriteCloser, error) {
	if err := s.bw.Flush(); err != nil {
		return nil, err
	}
	s.inData = req
	return protocol.NewVectoredSink(s.conn, []byte(fmt.Sprintf("+OK %d\n", size))), nil
}

// RecvData implements protocol.Session: "+DATA" go-ahead, then the
// client's size raw bytes.
func (s *session) RecvData(req *protocol.Request) (io.ReadCloser, error) {
	if err := s.writeLine("+DATA"); err != nil {
		return nil, err
	}
	return io.NopCloser(io.LimitReader(s.br, req.Size)), nil
}
