package chirp

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"time"

	"nest/internal/bufpool"
	"nest/internal/classad"
	"nest/internal/gsi"
	"nest/internal/protocol"
)

// Lot describes a storage guarantee as reported by the server.
type Lot struct {
	ID         string
	Capacity   int64
	Used       int64
	Expires    time.Duration
	BestEffort bool
}

// Entry is one directory listing line.
type Entry struct {
	Name  string
	Size  int64
	IsDir bool
}

// Client is a Chirp client connection.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	user string
	// noTrcx marks a server that rejected the trcx trace-context
	// extension (a seed-protocol peer); further contexts are skipped
	// silently rather than re-probed.
	noTrcx bool
}

// ErrBusy reports the appliance refused the connection to protect
// itself: a connection quota is exhausted or the overload shedder is
// active. Callers should back off and retry, or pick another replica.
var ErrBusy = errors.New("chirp: server busy")

// Dial connects and authenticates. A nil credential requests anonymous
// access.
func Dial(addr string, cred *gsi.Credential) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c, err := NewClient(conn, cred)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// NewClient authenticates over an established connection.
func NewClient(conn net.Conn, cred *gsi.Credential) (*Client, error) {
	c := &Client{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
	greeting, err := c.readLine()
	if err != nil {
		return nil, err
	}
	if !strings.HasPrefix(greeting, "+OK") {
		if strings.HasPrefix(greeting, "-ERR "+strconv.Itoa(protocol.CodeBusy)+" ") {
			return nil, ErrBusy
		}
		return nil, fmt.Errorf("chirp: unexpected greeting %q", greeting)
	}
	if cred != nil {
		err = c.writeLine("auth gsi " + cred.Token())
	} else {
		err = c.writeLine("auth anonymous")
	}
	if err != nil {
		return nil, err
	}
	toks, err := c.readReply()
	if err != nil {
		return nil, err
	}
	if len(toks) >= 2 && toks[0] == "user" {
		c.user, _ = unescape(toks[1])
	}
	return c, nil
}

// User returns the principal the server authenticated us as.
func (c *Client) User() string { return c.user }

// Close tears down the connection (politely when possible).
func (c *Client) Close() error {
	c.writeLine("quit")
	return c.conn.Close()
}

func (c *Client) readLine() (string, error) {
	line, err := c.br.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

func (c *Client) writeLine(line string) error {
	if _, err := c.bw.WriteString(line + "\n"); err != nil {
		return err
	}
	return c.bw.Flush()
}

// readReply consumes one reply line, returning its tokens after the
// +OK marker, or an *Error for -ERR.
func (c *Client) readReply() ([]string, error) {
	line, err := c.readLine()
	if err != nil {
		return nil, err
	}
	toks := splitLine(line)
	if len(toks) == 0 {
		return nil, fmt.Errorf("chirp: empty reply")
	}
	switch toks[0] {
	case "+OK", "+DATA":
		return toks[1:], nil
	case "-ERR":
		e := &Error{Code: protocol.CodeInternal, Message: "unknown error"}
		if len(toks) >= 2 {
			if code, err := parseInt(toks[1]); err == nil {
				e.Code = int(code)
			}
		}
		if len(toks) >= 3 {
			if msg, err := unescape(strings.Join(toks[2:], " ")); err == nil {
				e.Message = msg
			}
		}
		return nil, e
	}
	return nil, fmt.Errorf("chirp: malformed reply %q", line)
}

// simple issues a command expecting a bare +OK.
func (c *Client) simple(cmd string) error {
	if err := c.writeLine(cmd); err != nil {
		return err
	}
	_, err := c.readReply()
	return err
}

// Ping checks liveness.
func (c *Client) Ping() error { return c.simple("ping") }

// SetTraceContext propagates a distributed-tracing context: subsequent
// requests on this connection join the given trace as children of the
// parent span (sticky until replaced; zeros clear it). A server that
// predates the extension answers -ERR; the client notes it and skips
// quietly from then on, so tracing degrades to a local tree instead of
// failing the request. It reports whether the peer accepted the
// context.
func (c *Client) SetTraceContext(trace, parent uint64) (bool, error) {
	if c.noTrcx {
		return false, nil
	}
	err := c.simple(fmt.Sprintf("trcx %x %x", trace, parent))
	if err == nil {
		return true, nil
	}
	if _, ok := err.(*Error); ok {
		c.noTrcx = true
		return false, nil
	}
	return false, err
}

// Mkdir creates a directory.
func (c *Client) Mkdir(path string) error { return c.simple("mkdir " + escape(path)) }

// Rmdir removes an empty directory.
func (c *Client) Rmdir(path string) error { return c.simple("rmdir " + escape(path)) }

// Remove deletes a file.
func (c *Client) Remove(path string) error { return c.simple("rm " + escape(path)) }

// List returns directory entries.
func (c *Client) List(path string) ([]Entry, error) {
	if err := c.writeLine("ls " + escape(path)); err != nil {
		return nil, err
	}
	toks, err := c.readReply()
	if err != nil {
		return nil, err
	}
	if len(toks) < 1 {
		return nil, fmt.Errorf("chirp: ls reply missing count")
	}
	n, err := parseInt(toks[0])
	if err != nil {
		return nil, err
	}
	entries := make([]Entry, 0, n)
	for i := int64(0); i < n; i++ {
		line, err := c.readLine()
		if err != nil {
			return nil, err
		}
		f := splitLine(line)
		if len(f) != 3 {
			return nil, fmt.Errorf("chirp: malformed ls entry %q", line)
		}
		size, err := parseInt(f[1])
		if err != nil {
			return nil, err
		}
		name, err := unescape(f[2])
		if err != nil {
			return nil, err
		}
		entries = append(entries, Entry{Name: name, Size: size, IsDir: f[0] == "d"})
	}
	return entries, nil
}

// Stat describes one file or directory.
func (c *Client) Stat(path string) (Entry, error) {
	if err := c.writeLine("stat " + escape(path)); err != nil {
		return Entry{}, err
	}
	toks, err := c.readReply()
	if err != nil {
		return Entry{}, err
	}
	if len(toks) != 3 {
		return Entry{}, fmt.Errorf("chirp: malformed stat reply")
	}
	size, err := parseInt(toks[1])
	if err != nil {
		return Entry{}, err
	}
	name, err := unescape(toks[2])
	if err != nil {
		return Entry{}, err
	}
	return Entry{Name: name, Size: size, IsDir: toks[0] == "d"}, nil
}

// GetTo streams path's contents into w, returning the byte count.
func (c *Client) GetTo(path string, w io.Writer) (int64, error) {
	if err := c.writeLine("get " + escape(path)); err != nil {
		return 0, err
	}
	return c.recvBody(w)
}

// GetRange streams length bytes from offset.
func (c *Client) GetRange(path string, offset, length int64, w io.Writer) (int64, error) {
	if err := c.writeLine(fmt.Sprintf("get %s %d %d", escape(path), offset, length)); err != nil {
		return 0, err
	}
	return c.recvBody(w)
}

func (c *Client) recvBody(w io.Writer) (int64, error) {
	toks, err := c.readReply()
	if err != nil {
		return 0, err
	}
	if len(toks) < 1 {
		return 0, fmt.Errorf("chirp: get reply missing size")
	}
	size, err := parseInt(toks[0])
	if err != nil {
		return 0, err
	}
	// CopyBuffer with a pooled chunk avoids io.CopyN's per-call 32 KB
	// allocation on the body path.
	buf := bufpool.Get(protocol.ChunkSize)
	defer bufpool.Put(buf)
	n, err := io.CopyBuffer(w, io.LimitReader(c.br, size), *buf)
	if err == nil && n < size {
		err = io.EOF // match io.CopyN: short body is an error
	}
	return n, err
}

// Get fetches a whole file into memory.
func (c *Client) Get(path string) ([]byte, error) {
	var sb strings.Builder
	if _, err := c.GetTo(path, &sb); err != nil {
		return nil, err
	}
	return []byte(sb.String()), nil
}

// Put streams size bytes from r into path. lotID may be empty.
func (c *Client) Put(path string, r io.Reader, size int64, lotID string) (int64, error) {
	cmd := fmt.Sprintf("put %s %d", escape(path), size)
	if lotID != "" {
		cmd += " " + lotID
	}
	if err := c.writeLine(cmd); err != nil {
		return 0, err
	}
	// Go-ahead ("+DATA") or an error.
	if _, err := c.readReply(); err != nil {
		return 0, err
	}
	if _, err := io.CopyN(c.bw, r, size); err != nil {
		return 0, err
	}
	if err := c.bw.Flush(); err != nil {
		return 0, err
	}
	toks, err := c.readReply()
	if err != nil {
		return 0, err
	}
	if len(toks) < 1 {
		return 0, fmt.Errorf("chirp: put reply missing size")
	}
	return parseInt(toks[0])
}

// PutBytes uploads a byte slice.
func (c *Client) PutBytes(path string, data []byte, lotID string) error {
	_, err := c.Put(path, strings.NewReader(string(data)), int64(len(data)), lotID)
	return err
}

func (c *Client) lotReply() (Lot, error) {
	toks, err := c.readReply()
	if err != nil {
		return Lot{}, err
	}
	if len(toks) != 5 {
		return Lot{}, fmt.Errorf("chirp: malformed lot reply %v", toks)
	}
	capacity, err1 := parseInt(toks[1])
	used, err2 := parseInt(toks[2])
	expires, err3 := parseInt(toks[3])
	if err1 != nil || err2 != nil || err3 != nil {
		return Lot{}, fmt.Errorf("chirp: malformed lot numbers %v", toks)
	}
	return Lot{
		ID:         toks[0],
		Capacity:   capacity,
		Used:       used,
		Expires:    time.Duration(expires) * time.Millisecond,
		BestEffort: toks[4] == "besteffort",
	}, nil
}

// LotCreate guarantees capacity bytes for duration.
func (c *Client) LotCreate(capacity int64, duration time.Duration) (Lot, error) {
	if err := c.writeLine(fmt.Sprintf("lot_create %d %d", capacity, int64(duration/time.Second))); err != nil {
		return Lot{}, err
	}
	return c.lotReply()
}

// LotStatus fetches one lot.
func (c *Client) LotStatus(id string) (Lot, error) {
	if err := c.writeLine("lot_status " + id); err != nil {
		return Lot{}, err
	}
	return c.lotReply()
}

// LotRenew extends a lot from now.
func (c *Client) LotRenew(id string, duration time.Duration) (Lot, error) {
	if err := c.writeLine(fmt.Sprintf("lot_renew %s %d", id, int64(duration/time.Second))); err != nil {
		return Lot{}, err
	}
	return c.lotReply()
}

// LotAddMember grants user write access to a group lot.
func (c *Client) LotAddMember(id, user string) error {
	return c.simple(fmt.Sprintf("lot_add_member %s %s", id, escape(user)))
}

// LotRemoveMember revokes a group-lot membership.
func (c *Client) LotRemoveMember(id, user string) error {
	return c.simple(fmt.Sprintf("lot_remove_member %s %s", id, escape(user)))
}

// LotRelease terminates a lot.
func (c *Client) LotRelease(id string) error {
	return c.simple("lot_release " + id)
}

// ACLSet grants principal rights on dir ("-" clears the entry).
func (c *Client) ACLSet(dir, principal, rights string) error {
	if rights == "" {
		rights = "-"
	}
	return c.simple(fmt.Sprintf("acl_set %s %s %s", escape(dir), escape(principal), rights))
}

// ACLGet lists the explicit ACL entries on dir as "principal rights"
// lines.
func (c *Client) ACLGet(dir string) ([]string, error) {
	if err := c.writeLine("acl_get " + escape(dir)); err != nil {
		return nil, err
	}
	toks, err := c.readReply()
	if err != nil {
		return nil, err
	}
	if len(toks) < 1 {
		return nil, fmt.Errorf("chirp: acl_get reply missing count")
	}
	n, err := parseInt(toks[0])
	if err != nil {
		return nil, err
	}
	lines := make([]string, 0, n)
	for i := int64(0); i < n; i++ {
		line, err := c.readLine()
		if err != nil {
			return nil, err
		}
		lines = append(lines, line)
	}
	return lines, nil
}

// Statfs fetches the server's resource advertisement.
func (c *Client) Statfs() (*classad.Ad, error) {
	if err := c.writeLine("statfs"); err != nil {
		return nil, err
	}
	toks, err := c.readReply()
	if err != nil {
		return nil, err
	}
	if len(toks) < 1 {
		return nil, fmt.Errorf("chirp: statfs reply missing length")
	}
	n, err := parseInt(toks[0])
	if err != nil {
		return nil, err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(c.br, buf); err != nil {
		return nil, err
	}
	return classad.Parse(string(buf))
}
