// Package chirp implements Chirp, NeST's native protocol (Thain et
// al., "Gathering at the Well", SC 2001): a line-oriented control
// protocol carrying the full common request interface, including the
// operations most file-transfer protocols lack — lot management and
// ACL manipulation (paper §3, §5). Authentication is GSI.
//
// Wire format: the server greets with "+OK NeST chirp 0.9"; the client
// authenticates with "auth gsi <token>" or "auth anonymous"; requests
// are single lines of space-separated, URL-escaped tokens; replies are
// "+OK ..." or "-ERR <code> <message>". Bulk data follows "get"
// replies and "put" go-aheads as raw bytes of the stated length.
package chirp

import (
	"fmt"
	"net/url"
	"strconv"
	"strings"
)

// Proto is the protocol class name.
const Proto = "chirp"

// Greeting is the server's hello line.
const Greeting = "+OK NeST chirp 0.9"

// Error is a Chirp-level failure carrying the common-interface code.
type Error struct {
	Code    int
	Message string
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("chirp: %s (code %d)", e.Message, e.Code)
}

// escape encodes a token for the wire (paths may contain spaces).
func escape(s string) string { return url.QueryEscape(s) }

// unescape decodes a wire token.
func unescape(s string) (string, error) { return url.QueryUnescape(s) }

// splitLine tokenizes a request or reply line.
func splitLine(line string) []string {
	return strings.Fields(strings.TrimRight(line, "\r\n"))
}

// parseInt parses a decimal int64 token.
func parseInt(tok string) (int64, error) {
	return strconv.ParseInt(tok, 10, 64)
}
