package chirp_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"nest/internal/chirp"
	"nest/internal/gsi"
	"nest/internal/nesttest"
	"nest/internal/protocol"
)

// start runs a Chirp appliance and returns a connected, GSI-
// authenticated client for user "john".
func start(t *testing.T, o nesttest.Options) (*nesttest.Fixture, *chirp.Client) {
	t.Helper()
	ca, cred := nesttest.NewCA("john")
	f := nesttest.Start(t, chirp.NewHandler(gsi.NewVerifier(ca), true), o)
	f.CA = ca
	c, err := chirp.Dial(f.Addr, cred)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return f, c
}

func TestAuthGSI(t *testing.T) {
	_, c := start(t, nesttest.Options{})
	if c.User() != "john" {
		t.Errorf("User = %q, want john", c.User())
	}
	if err := c.Ping(); err != nil {
		t.Errorf("Ping: %v", err)
	}
}

func TestAuthAnonymous(t *testing.T) {
	f, _ := start(t, nesttest.Options{})
	anon, err := chirp.Dial(f.Addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer anon.Close()
	if anon.User() != gsi.Anonymous {
		t.Errorf("User = %q", anon.User())
	}
}

func TestAuthRejectsBadToken(t *testing.T) {
	otherCA := gsi.NewCA("other", []byte("other-secret"))
	badCred := otherCA.Issue("/CN=mallory", time.Hour, false)
	f, _ := start(t, nesttest.Options{})
	if _, err := chirp.Dial(f.Addr, badCred); err == nil {
		t.Fatal("foreign credential accepted")
	}
}

func TestDirectoryOperations(t *testing.T) {
	_, c := start(t, nesttest.Options{})
	if err := c.Mkdir("/data"); err != nil {
		t.Fatal(err)
	}
	if err := c.Mkdir("/data"); err == nil {
		t.Error("duplicate mkdir succeeded")
	} else if ce, ok := err.(*chirp.Error); !ok || ce.Code != protocol.CodeExists {
		t.Errorf("duplicate mkdir error = %v", err)
	}
	entries, err := c.List("/")
	if err != nil || len(entries) != 1 || entries[0].Name != "data" || !entries[0].IsDir {
		t.Errorf("List = %v, %v", entries, err)
	}
	st, err := c.Stat("/data")
	if err != nil || !st.IsDir {
		t.Errorf("Stat = %v, %v", st, err)
	}
	if err := c.Rmdir("/data"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/data"); err == nil {
		t.Error("stat after rmdir succeeded")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	f, c := start(t, nesttest.Options{})
	f.GrantLot(t, "john", 10*nesttest.MB)
	payload := bytes.Repeat([]byte("nest!"), 50000) // 250 KB
	n, err := c.Put("/file.bin", bytes.NewReader(payload), int64(len(payload)), "")
	if err != nil || n != int64(len(payload)) {
		t.Fatalf("Put = %d, %v", n, err)
	}
	got, err := c.Get("/file.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("Get returned %d bytes, corrupted round trip", len(got))
	}
	// Connection remains usable after bulk data.
	if err := c.Ping(); err != nil {
		t.Errorf("Ping after transfer: %v", err)
	}
}

func TestGetRange(t *testing.T) {
	f, c := start(t, nesttest.Options{})
	f.GrantLot(t, "john", nesttest.MB)
	c.PutBytes("/r", []byte("0123456789"), "")
	var buf bytes.Buffer
	n, err := c.GetRange("/r", 3, 4, &buf)
	if err != nil || n != 4 || buf.String() != "3456" {
		t.Errorf("GetRange = %d %q, %v", n, buf.String(), err)
	}
}

func TestPutWithoutLot(t *testing.T) {
	_, c := start(t, nesttest.Options{})
	err := c.PutBytes("/f", []byte("x"), "")
	ce, ok := err.(*chirp.Error)
	if !ok || ce.Code != protocol.CodeNoLot {
		t.Errorf("put without lot = %v", err)
	}
	// Session survives the rejected put.
	if err := c.Ping(); err != nil {
		t.Errorf("Ping after rejection: %v", err)
	}
}

func TestLotVerbs(t *testing.T) {
	_, c := start(t, nesttest.Options{})
	lot, err := c.LotCreate(nesttest.MB, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if lot.Capacity != nesttest.MB || lot.BestEffort {
		t.Errorf("lot = %+v", lot)
	}
	if err := c.PutBytes("/f", []byte("hello"), lot.ID); err != nil {
		t.Fatal(err)
	}
	st, err := c.LotStatus(lot.ID)
	if err != nil || st.Used != 5 {
		t.Errorf("LotStatus = %+v, %v", st, err)
	}
	renewed, err := c.LotRenew(lot.ID, 2*time.Hour)
	if err != nil || renewed.Expires <= st.Expires {
		t.Errorf("LotRenew = %+v, %v", renewed, err)
	}
	if err := c.LotRelease(lot.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.LotStatus(lot.ID); err == nil {
		t.Error("status of released lot succeeded")
	}
}

func TestACLVerbs(t *testing.T) {
	f, c := start(t, nesttest.Options{})
	f.GrantLot(t, "john", nesttest.MB)
	if err := c.Mkdir("/sec"); err != nil {
		t.Fatal(err)
	}
	if err := c.ACLSet("/sec", "john", "rlidwa"); err != nil {
		t.Fatal(err)
	}
	lines, err := c.ACLGet("/sec")
	if err != nil || len(lines) != 1 || lines[0] != "john rlidwa" {
		t.Errorf("ACLGet = %v, %v", lines, err)
	}
	// Anonymous is now locked out of /sec but not of /.
	anon, err := chirp.Dial(f.Addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer anon.Close()
	if _, err := anon.List("/sec"); err == nil {
		t.Error("anonymous listed a protected directory")
	}
	if _, err := anon.List("/"); err != nil {
		t.Errorf("anonymous list of / failed: %v", err)
	}
	// Clearing the entry restores inheritance.
	if err := c.ACLSet("/sec", "john", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := anon.List("/sec"); err != nil {
		t.Errorf("list after ACL clear: %v", err)
	}
}

func TestStatfs(t *testing.T) {
	_, c := start(t, nesttest.Options{})
	ad, err := c.Statfs()
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := ad.EvalAttr("Type", nil).StringVal(); v != "Storage" {
		t.Errorf("ad Type = %q", v)
	}
	if _, ok := ad.EvalAttr("FreeDisk", nil).IntVal(); !ok {
		t.Error("ad missing FreeDisk")
	}
}

func TestPathsWithSpaces(t *testing.T) {
	f, c := start(t, nesttest.Options{})
	f.GrantLot(t, "john", nesttest.MB)
	if err := c.Mkdir("/my dir"); err != nil {
		t.Fatal(err)
	}
	if err := c.PutBytes("/my dir/a file.txt", []byte("spaced"), ""); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("/my dir/a file.txt")
	if err != nil || string(got) != "spaced" {
		t.Errorf("Get = %q, %v", got, err)
	}
	entries, err := c.List("/my dir")
	if err != nil || len(entries) != 1 || entries[0].Name != "a file.txt" {
		t.Errorf("List = %v, %v", entries, err)
	}
}

func TestUnknownCommandKeepsSession(t *testing.T) {
	f, c := start(t, nesttest.Options{})
	_ = f
	// Issue garbage through a second raw connection path: the client
	// has no raw hook, so use Remove on a missing file plus a bad
	// command via Stat of an empty path to provoke errors.
	if err := c.Remove("/missing"); err == nil {
		t.Error("remove missing succeeded")
	}
	if err := c.Ping(); err != nil {
		t.Errorf("session dead after error: %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	f, c := start(t, nesttest.Options{})
	f.GrantLot(t, "john", 100*nesttest.MB)
	c.PutBytes("/shared", bytes.Repeat([]byte("z"), 100_000), "")
	const n = 8
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			cl, err := chirp.Dial(f.Addr, nil)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for j := 0; j < 5; j++ {
				got, err := cl.Get("/shared")
				if err != nil {
					errs <- err
					return
				}
				if len(got) != 100_000 {
					errs <- strings.NewReader("").UnreadByte() // placeholder non-nil
					return
				}
			}
			errs <- nil
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestGroupLotOverChirp(t *testing.T) {
	ca, johnCred := nesttest.NewCA("john")
	maryCred := ca.Issue("/O=Grid/CN=mary", time.Hour, false)
	f := nesttest.Start(t, chirp.NewHandler(gsi.NewVerifier(ca), true), nesttest.Options{})
	john, err := chirp.Dial(f.Addr, johnCred)
	if err != nil {
		t.Fatal(err)
	}
	defer john.Close()
	mary, err := chirp.Dial(f.Addr, maryCred)
	if err != nil {
		t.Fatal(err)
	}
	defer mary.Close()

	lot, err := john.LotCreate(nesttest.MB, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// Mary cannot use or inspect the lot yet.
	if err := mary.PutBytes("/m1", []byte("x"), lot.ID); err == nil {
		t.Fatal("non-member wrote into foreign lot")
	}
	if _, err := mary.LotStatus(lot.ID); err == nil {
		t.Fatal("non-member read foreign lot status")
	}
	// Owner grants membership; mary can write into and inspect it.
	if err := john.LotAddMember(lot.ID, "mary"); err != nil {
		t.Fatal(err)
	}
	if err := mary.PutBytes("/m1", []byte("group data"), lot.ID); err != nil {
		t.Fatalf("member put: %v", err)
	}
	st, err := mary.LotStatus(lot.ID)
	if err != nil || st.Used != 10 {
		t.Errorf("member LotStatus = %+v, %v", st, err)
	}
	// Mary cannot manage membership or release.
	if err := mary.LotAddMember(lot.ID, "eve"); err == nil {
		t.Error("member edited membership")
	}
	if err := mary.LotRelease(lot.ID); err == nil {
		t.Error("member released the lot")
	}
	// Revocation is immediate.
	if err := john.LotRemoveMember(lot.ID, "mary"); err != nil {
		t.Fatal(err)
	}
	if err := mary.PutBytes("/m2", []byte("x"), lot.ID); err == nil {
		t.Error("revoked member still writes")
	}
}
