package chirp_test

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"nest/internal/chirp"
	"nest/internal/nesttest"
)

// rawDial opens an anonymous raw-wire Chirp session for protocol-level
// failure injection.
func rawDial(t *testing.T, addr string) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	br := bufio.NewReader(conn)
	if _, err := br.ReadString('\n'); err != nil { // greeting
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "auth anonymous\n")
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	return conn, br
}

func expectLine(t *testing.T, br *bufio.Reader, prefix string) string {
	t.Helper()
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("reading reply: %v", err)
	}
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("reply %q, want prefix %q", strings.TrimSpace(line), prefix)
	}
	return strings.TrimSpace(line)
}

// TestPutClientDiesMidTransfer: a client that promises 1 MB, sends a
// fraction and disconnects must not corrupt lot accounting — the
// storage manager settles the put with what actually arrived.
func TestPutClientDiesMidTransfer(t *testing.T) {
	f := nesttest.Start(t, chirp.NewHandler(nil, true), nesttest.Options{})
	f.GrantLot(t, "anonymous", 10*nesttest.MB)
	conn, br := rawDial(t, f.Addr)
	fmt.Fprintf(conn, "put /partial %d\n", nesttest.MB)
	expectLine(t, br, "+DATA")
	conn.Write(make([]byte, 1000)) // a fraction of the promised MB
	conn.Close()

	// The session ends server-side; accounting must settle. Poll
	// briefly for the dispatcher to finish the aborted transfer.
	deadline := time.Now().Add(5 * time.Second)
	for {
		lots := f.Store.Lots().Owned("anonymous")
		if len(lots) == 1 && lots[0].Used <= 1000 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lot accounting did not settle: %+v", lots)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The server remains healthy for other clients.
	c, err := chirp.Dial(f.Addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.PutBytes("/after", []byte("alive"), ""); err != nil {
		t.Fatalf("put after aborted transfer: %v", err)
	}
}

// TestMalformedCommands: garbage lines produce -ERR replies but never
// kill the session.
func TestMalformedCommands(t *testing.T) {
	f := nesttest.Start(t, chirp.NewHandler(nil, true), nesttest.Options{})
	conn, br := rawDial(t, f.Addr)
	for _, line := range []string{
		"frobnicate /x",
		"put",
		"put /x notanumber",
		"get",
		"lot_create 10",
		"lot_renew lot1",
		"acl_set /x john",
	} {
		fmt.Fprintf(conn, "%s\n", line)
		expectLine(t, br, "-ERR")
	}
	fmt.Fprintf(conn, "ping\n")
	expectLine(t, br, "+OK")
}

// TestAuthRequiredBeforeCommands: the handler refuses sessions that
// skip authentication.
func TestAuthRequiredBeforeCommands(t *testing.T) {
	f := nesttest.Start(t, chirp.NewHandler(nil, true), nesttest.Options{})
	conn, err := net.Dial("tcp", f.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	br.ReadString('\n') // greeting
	fmt.Fprintf(conn, "ls /\n")
	line, err := br.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, "-ERR") {
		t.Fatalf("unauthenticated command got %q, %v", line, err)
	}
	// The server closed the session; subsequent reads hit EOF.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := br.ReadString('\n'); err == nil {
		t.Fatal("session stayed open without authentication")
	}
}

// TestGetSizeExact: the byte count in the get header matches the body
// exactly even for empty files.
func TestGetSizeExact(t *testing.T) {
	f := nesttest.Start(t, chirp.NewHandler(nil, true), nesttest.Options{})
	f.GrantLot(t, "anonymous", nesttest.MB)
	c, err := chirp.Dial(f.Addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.PutBytes("/empty", nil, ""); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("/empty")
	if err != nil || len(got) != 0 {
		t.Errorf("Get(empty) = %d bytes, %v", len(got), err)
	}
	if err := c.Ping(); err != nil {
		t.Errorf("session dead after empty get: %v", err)
	}
}
