package replica_test

import (
	"bytes"
	"math/rand"
	"net"
	pathpkg "path"
	"testing"
	"time"

	"nest/internal/chirp"
	"nest/internal/classad"
	"nest/internal/core"
	"nest/internal/discovery"
	"nest/internal/gsi"
	"nest/internal/obs"
	"nest/internal/replica"
)

func healthAd(name string, bw, lat float64, queue int64) *classad.Ad {
	ad := classad.NewAd()
	ad.SetString("Name", name)
	ad.SetReal("RecentBandwidthMBps", bw)
	ad.SetReal("P99LatencyMs", lat)
	ad.SetInt("QueueDepth", queue)
	return ad
}

func TestScoreOrdering(t *testing.T) {
	fast := healthAd("fast", 100, 5, 0)
	slow := healthAd("slow", 10, 5, 0)
	busy := healthAd("busy", 100, 5, 8)
	laggy := healthAd("laggy", 100, 500, 0)
	if replica.Score(fast) <= replica.Score(slow) {
		t.Error("bandwidth not rewarded")
	}
	if replica.Score(fast) <= replica.Score(busy) {
		t.Error("queue depth not penalized")
	}
	if replica.Score(fast) <= replica.Score(laggy) {
		t.Error("tail latency not penalized")
	}
	// An idle appliance with no samples still scores above zero.
	if replica.Score(classad.NewAd()) <= 0 {
		t.Error("attribute-free ad scored <= 0")
	}
}

func TestRankTieBreakSpreads(t *testing.T) {
	ads := []*classad.Ad{healthAd("a", 1, 1, 0), healthAd("b", 1, 1, 0), healthAd("c", 1, 1, 0)}
	// Deterministic without an rng.
	first := replica.Name(replica.Rank(ads, nil)[0])
	if first != "a" {
		t.Errorf("nil-rng Rank first = %q", first)
	}
	// With an rng, equal-score replicas rotate across selections.
	rng := rand.New(rand.NewSource(1))
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		seen[replica.Name(replica.Rank(ads, rng)[0])] = true
	}
	if len(seen) < 2 {
		t.Errorf("tie-break never varied: %v", seen)
	}
	// A strictly better replica still wins every time.
	ads = append(ads, healthAd("best", 50, 1, 0))
	for i := 0; i < 16; i++ {
		if got := replica.Name(replica.Rank(ads, rng)[0]); got != "best" {
			t.Fatalf("Rank ignored score: first = %q", got)
		}
	}
}

// TestPickWeighted: score-proportional selection spreads load across
// healthy holders but starves one whose advertised health collapsed.
func TestPickWeighted(t *testing.T) {
	if replica.Pick(nil, nil) != nil {
		t.Fatal("Pick of no ads should be nil")
	}
	ads := []*classad.Ad{
		healthAd("good-1", 30, 1, 0),
		healthAd("good-2", 30, 1, 0),
		healthAd("sick", 0, 5000, 40), // collapsed: tiny score
	}
	// nil rng degenerates to the deterministic best.
	if got := replica.Name(replica.Pick(ads, nil)); got != "good-1" && got != "good-2" {
		t.Errorf("nil-rng Pick = %q, want a healthy holder", got)
	}
	rng := rand.New(rand.NewSource(7))
	picks := map[string]int{}
	for i := 0; i < 400; i++ {
		picks[replica.Name(replica.Pick(ads, rng))]++
	}
	if picks["good-1"] == 0 || picks["good-2"] == 0 {
		t.Errorf("weighted pick never spread: %v", picks)
	}
	if picks["sick"] > 20 { // ~0.2%% expected; 5%% is already generous
		t.Errorf("collapsed holder drew %d/400 picks: %v", picks["sick"], picks)
	}
}

// fleet starts n live loopback appliances sharing one CA, all
// publishing into one in-process collector.
func fleet(t *testing.T, n int, names ...string) (*discovery.Collector, []*core.Server, *gsi.Credential) {
	t.Helper()
	ca := gsi.NewCA("/CN=replica-test-ca", []byte("replica-secret"))
	cred := ca.Issue("/O=Grid/CN=mover", time.Hour, true)
	collector := discovery.NewCollector(nil, 0)
	servers := make([]*core.Server, n)
	for i := range servers {
		s, err := core.New(core.Config{
			Name:        names[i],
			CA:          ca,
			DisableLots: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		servers[i] = s
	}
	return collector, servers, cred
}

func advertise(t *testing.T, collector *discovery.Collector, servers ...*core.Server) {
	t.Helper()
	for _, s := range servers {
		if err := collector.Advertise(s.Advertisement()); err != nil {
			t.Fatal(err)
		}
	}
}

func putFile(t *testing.T, s *core.Server, cred *gsi.Credential, path string, data []byte) {
	t.Helper()
	c, err := chirp.Dial(s.Addr("chirp"), cred)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if dir := pathpkg.Dir(path); dir != "/" && dir != "." {
		_ = c.Mkdir(dir) // best-effort: may already exist
	}
	if err := c.PutBytes(path, data, ""); err != nil {
		t.Fatal(err)
	}
}

func getFile(s *core.Server, cred *gsi.Credential, path string) ([]byte, error) {
	c, err := chirp.Dial(s.Addr("chirp"), cred)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	return c.Get(path)
}

// TestReplicationMirrorsHotFiles: a file that gets hot on one
// appliance is mirrored to the healthiest peers until the replication
// factor is met, and a met factor starts no further transfers.
func TestReplicationMirrorsHotFiles(t *testing.T) {
	collector, servers, cred := fleet(t, 3, "alpha", "beta", "gamma")
	a, b, c := servers[0], servers[1], servers[2]

	data := bytes.Repeat([]byte("hot-data\n"), 4096)
	putFile(t, a, cred, "/pub/hot.dat", data)
	putFile(t, a, cred, "/pub/cold.dat", []byte("cold"))

	// Heat /pub/hot.dat with repeated GETs; /pub/cold.dat stays cold.
	for i := 0; i < 4; i++ {
		if _, err := getFile(a, cred, "/pub/hot.dat"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := getFile(a, cred, "/pub/cold.dat"); err != nil {
		t.Fatal(err)
	}

	advertise(t, collector, a, b, c)

	mgr, err := replica.NewManager(replica.Config{
		Name:        "alpha",
		Factor:      3,
		Catalog:     replica.CollectorCatalog{C: collector},
		Hot:         a.Disp.HotPaths,
		SelfGridFTP: a.Addr("gridftp"),
		Cred:        cred,
		MinHeat:     2,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	mgr.Register(reg)

	mgr.Tick()
	mgr.Close() // waits for in-flight mirrors

	for _, peer := range []*core.Server{b, c} {
		got, err := getFile(peer, cred, "/pub/hot.dat")
		if err != nil {
			t.Fatalf("hot file missing on %s: %v", peer.Name(), err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("mirrored copy on %s differs (%d bytes, want %d)", peer.Name(), len(got), len(data))
		}
		if _, err := getFile(peer, cred, "/pub/cold.dat"); err == nil {
			t.Errorf("cold file mirrored to %s", peer.Name())
		}
	}

	// The peers' refreshed ads now list the copy; a met factor is idle.
	advertise(t, collector, a, b, c)
	if got := collector.ReplicaHolders("/pub/hot.dat"); len(got) != 3 {
		t.Fatalf("holders after mirroring = %v", got)
	}
	mgr2, err := replica.NewManager(replica.Config{
		Name:        "alpha",
		Factor:      3,
		Catalog:     replica.CollectorCatalog{C: collector},
		Hot:         a.Disp.HotPaths,
		SelfGridFTP: a.Addr("gridftp"),
		Cred:        cred,
		MinHeat:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg2 := obs.NewRegistry()
	mgr2.Register(reg2)
	mgr2.Tick()
	mgr2.Close()
	if v := reg2.Value("nest_replica_attempts_total"); v != 0 {
		t.Errorf("met factor still started %d mirrors", v)
	}
}

// TestFailedMirrorLeavesNoStub: a mirror whose STOR dies mid-transfer
// (here: the destination enforces lots and the mover holds none) must
// not leave a truncated file behind — the peer would advertise the
// stub as a replica, masking the deficit while serving corrupt bytes.
func TestFailedMirrorLeavesNoStub(t *testing.T) {
	ca := gsi.NewCA("/CN=replica-test-ca", []byte("replica-secret"))
	cred := ca.Issue("/O=Grid/CN=mover", time.Hour, true)
	collector := discovery.NewCollector(nil, 0)
	src, err := core.New(core.Config{Name: "src", CA: ca, DisableLots: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(src.Close)
	dst, err := core.New(core.Config{Name: "dst", CA: ca}) // lots enforced
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dst.Close)

	data := bytes.Repeat([]byte("stub-check\n"), 1024)
	putFile(t, src, cred, "/hot.dat", data)
	for i := 0; i < 3; i++ {
		if _, err := getFile(src, cred, "/hot.dat"); err != nil {
			t.Fatal(err)
		}
	}
	advertise(t, collector, src, dst)

	mgr, err := replica.NewManager(replica.Config{
		Name:        "src",
		Factor:      2,
		Catalog:     replica.CollectorCatalog{C: collector},
		Hot:         src.Disp.HotPaths,
		SelfGridFTP: src.Addr("gridftp"),
		Cred:        cred,
		MinHeat:     2,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	mgr.Register(reg)
	mgr.Tick()
	mgr.Close()

	if v := reg.Value("nest_replica_failures_total"); v != 1 {
		t.Fatalf("failures_total = %d, want 1 (lot-less STOR must fail)", v)
	}
	if got, err := getFile(dst, cred, "/hot.dat"); err == nil {
		t.Fatalf("failed mirror left a %d-byte stub on the destination", len(got))
	}
	// The destination's refreshed ad must not claim the file either.
	advertise(t, collector, src, dst)
	if holders := collector.ReplicaHolders("/hot.dat"); len(holders) != 1 || holders[0] != "src" {
		t.Fatalf("holders after failed mirror = %v, want [src]", holders)
	}
}

// TestFailoverZeroFailedGets: with two live replicas, killing one
// mid-workload must not fail a single client GET — the selector falls
// through the ranking to the survivor.
func TestFailoverZeroFailedGets(t *testing.T) {
	collector, servers, cred := fleet(t, 2, "east", "west")
	data := []byte("replicated payload")
	for _, s := range servers {
		putFile(t, s, cred, "/f.dat", data)
	}
	advertise(t, collector, servers...)

	sel := replica.NewSelector(replica.CollectorCatalog{C: collector}, cred, 7)
	reg := obs.NewRegistry()
	sel.Register(reg)

	served := map[string]bool{}
	for i := 0; i < 20; i++ {
		if i == 5 {
			servers[1].Close() // kill "west" mid-workload; its ad is still fresh
		}
		got, name, err := sel.Fetch("/f.dat")
		if err != nil {
			t.Fatalf("GET %d failed during failover: %v", i, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("GET %d returned %d bytes", i, len(got))
		}
		served[name] = true
	}
	if !served["east"] {
		t.Errorf("surviving replica never served: %v", served)
	}
	if v := reg.Value("nest_replica_selects_total"); v != 20 {
		t.Errorf("selects_total = %d, want 20", v)
	}
}

// TestSelectorMiss: a path no fresh appliance holds is a catalog miss.
func TestSelectorMiss(t *testing.T) {
	collector := discovery.NewCollector(nil, 0)
	sel := replica.NewSelector(replica.CollectorCatalog{C: collector}, nil, 1)
	if _, _, err := sel.Fetch("/nowhere"); err == nil {
		t.Fatal("fetch of unknown path succeeded")
	}
}

// TestRetryBackoff: a mirror toward a dead peer fails, is not retried
// inside the backoff window, is retried after it, and Reconcile
// forgets the cooldown entirely.
func TestRetryBackoff(t *testing.T) {
	collector, servers, cred := fleet(t, 1, "solo")
	a := servers[0]
	putFile(t, a, cred, "/h.dat", []byte("x"))
	for i := 0; i < 3; i++ {
		if _, err := getFile(a, cred, "/h.dat"); err != nil {
			t.Fatal(err)
		}
	}
	advertise(t, collector, a)

	// A peer ad whose GridFTP endpoint is a dead address.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()
	ghost := classad.NewAd()
	ghost.SetString("Name", "ghost")
	ghost.SetString("Addr_gridftp", deadAddr)
	if err := collector.Advertise(ghost); err != nil {
		t.Fatal(err)
	}

	mgr, err := replica.NewManager(replica.Config{
		Name:        "solo",
		Factor:      2,
		Catalog:     replica.CollectorCatalog{C: collector},
		Hot:         a.Disp.HotPaths,
		SelfGridFTP: a.Addr("gridftp"),
		Cred:        cred,
		MinHeat:     2,
		Backoff:     100 * time.Millisecond,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	mgr.Register(reg)
	defer mgr.Close()

	waitFor := func(metric string, want int64) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for reg.Value(metric) < want {
			if time.Now().After(deadline) {
				t.Fatalf("%s = %d, want >= %d", metric, reg.Value(metric), want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	mgr.Tick()
	waitFor("nest_replica_failures_total", 1)

	// Inside the backoff window: the pair is skipped, not re-dialed.
	mgr.Tick()
	waitFor("nest_replica_skips_total", 1)
	if v := reg.Value("nest_replica_attempts_total"); v != 1 {
		t.Fatalf("attempts inside backoff = %d, want 1", v)
	}

	// Past the backoff window: retried.
	time.Sleep(250 * time.Millisecond)
	mgr.Tick()
	waitFor("nest_replica_retries_total", 1)
	waitFor("nest_replica_failures_total", 2)

	// Reconcile wipes the (now longer) cooldown and retries at once.
	mgr.Reconcile()
	waitFor("nest_replica_failures_total", 3)
}
