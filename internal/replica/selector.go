package replica

import (
	"fmt"
	"math/rand"
	"sync"

	"nest/internal/chirp"
	"nest/internal/classad"
	"nest/internal/gsi"
	"nest/internal/obs"
)

// Selector resolves logical file names through the replica catalog and
// fetches from the healthiest advertised holder, failing over down the
// ranking when a replica does not answer. It is the client-side half
// of federation: a reader names a file, not an appliance.
type Selector struct {
	cat  Catalog
	cred *gsi.Credential

	mu  sync.Mutex // guards rng (rand.Rand is not concurrency-safe)
	rng *rand.Rand

	selects   obs.Counter // successful selections
	failovers obs.Counter // replicas skipped after a fetch failure
	misses    obs.Counter // paths with no fresh holder
}

// NewSelector builds a selector over a catalog. seed feeds the
// tie-break shuffle; any value works, fixed seeds make tests
// deterministic.
func NewSelector(cat Catalog, cred *gsi.Credential, seed int64) *Selector {
	return &Selector{cat: cat, cred: cred, rng: rand.New(rand.NewSource(seed))}
}

// Register exposes the selector's counters on a metrics registry.
func (s *Selector) Register(reg *obs.Registry) {
	reg.Func("nest_replica_selects_total", s.selects.Value)
	reg.Func("nest_replica_failovers_total", s.failovers.Value)
	reg.Func("nest_replica_select_misses_total", s.misses.Value)
}

// Candidates returns the fresh holders of path, best replica first.
func (s *Selector) Candidates(path string) ([]*classad.Ad, error) {
	ads, err := s.cat.Replicas(path)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return Rank(ads, s.rng), nil
}

// Fetch resolves path through the catalog and reads it from the
// best-ranked replica, falling through the ranking on per-replica
// failure. It returns the file contents and the name of the appliance
// that served them.
func (s *Selector) Fetch(path string) ([]byte, string, error) {
	cands, err := s.Candidates(path)
	if err != nil {
		return nil, "", err
	}
	if len(cands) == 0 {
		s.misses.Inc()
		return nil, "", fmt.Errorf("replica: no fresh holder for %s", path)
	}
	var lastErr error
	for i, ad := range cands {
		addr := Addr(ad, "chirp")
		if addr == "" {
			continue
		}
		data, err := s.fetchFrom(addr, path)
		if err != nil {
			lastErr = err
			continue
		}
		s.selects.Inc()
		s.failovers.Add(int64(i))
		return data, Name(ad), nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("replica: no holder of %s advertises a chirp endpoint", path)
	}
	return nil, "", fmt.Errorf("replica: all %d holders of %s failed: %w", len(cands), path, lastErr)
}

func (s *Selector) fetchFrom(addr, path string) ([]byte, error) {
	c, err := chirp.Dial(addr, s.cred)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	return c.Get(path)
}
