package replica

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"nest/internal/chirp"
	"nest/internal/classad"
	"nest/internal/gsi"
	"nest/internal/obs"
)

// Selector resolves logical file names through the replica catalog and
// fetches from the healthiest advertised holder, failing over down the
// ranking when a replica does not answer. It is the client-side half
// of federation: a reader names a file, not an appliance.
type Selector struct {
	cat  Catalog
	cred *gsi.Credential

	mu  sync.Mutex // guards rng (rand.Rand is not concurrency-safe)
	rng *rand.Rand

	selects   obs.Counter // successful selections
	failovers obs.Counter // replicas skipped after a fetch failure
	misses    obs.Counter // paths with no fresh holder

	// tracer, when set, records a replica.fetch span per Fetch with one
	// replica.attempt child per holder tried, and propagates the trace
	// to each holder over chirp.
	tracer *obs.Tracer
	epoch  time.Time // span time base (matches Span.Start semantics)
}

// NewSelector builds a selector over a catalog. seed feeds the
// tie-break shuffle; any value works, fixed seeds make tests
// deterministic.
func NewSelector(cat Catalog, cred *gsi.Credential, seed int64) *Selector {
	return &Selector{cat: cat, cred: cred, rng: rand.New(rand.NewSource(seed)), epoch: time.Now()}
}

// SetTracer enables span recording for fetches. Call before serving.
func (s *Selector) SetTracer(t *obs.Tracer) { s.tracer = t }

// Register exposes the selector's counters on a metrics registry.
func (s *Selector) Register(reg *obs.Registry) {
	reg.Func("nest_replica_selects_total", s.selects.Value)
	reg.Func("nest_replica_failovers_total", s.failovers.Value)
	reg.Func("nest_replica_select_misses_total", s.misses.Value)
}

// Candidates returns the fresh holders of path, best replica first.
func (s *Selector) Candidates(path string) ([]*classad.Ad, error) {
	ads, err := s.cat.Replicas(path)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return Rank(ads, s.rng), nil
}

// Fetch resolves path through the catalog and reads it from the
// best-ranked replica, falling through the ranking on per-replica
// failure. It returns the file contents and the name of the appliance
// that served them.
func (s *Selector) Fetch(path string) ([]byte, string, error) {
	data, name, _, err := s.FetchTraced(path, 0, 0)
	return data, name, err
}

// FetchTraced is Fetch carrying explicit trace context: the fetch span
// parents under (trace, parent) when given, or mints a fresh trace when
// trace is zero and a tracer is installed. It additionally returns the
// trace id (zero when untraced) so callers can render the tree.
func (s *Selector) FetchTraced(path string, trace, parent uint64) (data []byte, name string, traceID uint64, err error) {
	t := s.tracer
	var fetchID uint64
	var begin time.Duration
	if t != nil {
		if trace == 0 {
			trace = t.NewTraceID()
		}
		fetchID = t.NewSpanID()
		begin = time.Since(s.epoch)
	}
	data, name, code, tried, err := s.fetch(path, trace, fetchID)
	if t != nil {
		t.Record(&obs.Span{
			Trace: trace, ID: fetchID, Parent: parent,
			Stage: "replica.fetch", Proto: "chirp", Op: "get", Path: path,
			Code: code, Bytes: int64(len(data)),
			Start: begin, Dur: time.Since(s.epoch) - begin,
			Notes: [2]obs.SpanNote{{Key: "holder", Str: name}, {Key: "tried", Num: int64(tried)}},
		})
		traceID = trace
	}
	return data, name, traceID, err
}

// fetch runs the failover loop, recording one replica.attempt child
// span per holder tried when tracing is on. code is the fetch span's
// outcome (0 success, 1 failure); tried counts holders contacted.
func (s *Selector) fetch(path string, trace, fetchID uint64) (data []byte, name string, code, tried int, err error) {
	cands, err := s.Candidates(path)
	if err != nil {
		return nil, "", 1, 0, err
	}
	if len(cands) == 0 {
		s.misses.Inc()
		return nil, "", 1, 0, fmt.Errorf("replica: no fresh holder for %s", path)
	}
	var lastErr error
	for i, ad := range cands {
		addr := Addr(ad, "chirp")
		if addr == "" {
			continue
		}
		tried++
		data, err := s.fetchFrom(addr, path, trace, fetchID)
		if err != nil {
			lastErr = err
			continue
		}
		s.selects.Inc()
		s.failovers.Add(int64(i))
		return data, Name(ad), 0, tried, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("replica: no holder of %s advertises a chirp endpoint", path)
	}
	return nil, "", 1, tried, fmt.Errorf("replica: all %d holders of %s failed: %w", len(cands), path, lastErr)
}

// fetchFrom reads path from one holder. With tracing on it records a
// replica.attempt child span — failed attempts stay in the tree with a
// non-zero code, which is how failover becomes visible — and propagates
// the trace to the holder so the remote request span joins the tree.
func (s *Selector) fetchFrom(addr, path string, trace, fetchID uint64) (data []byte, err error) {
	t := s.tracer
	if t != nil {
		attemptID := t.NewSpanID()
		parent := fetchID
		begin := time.Since(s.epoch)
		defer func() {
			code := 0
			if err != nil {
				code = 1
			}
			t.Record(&obs.Span{
				Trace: trace, ID: attemptID, Parent: parent,
				Stage: "replica.attempt", Proto: "chirp", Op: "get", Path: path,
				Code: code, Bytes: int64(len(data)),
				Start: begin, Dur: time.Since(s.epoch) - begin,
				Notes: [2]obs.SpanNote{{Key: "addr", Str: addr}},
			})
		}()
		fetchID = attemptID // remote request span parents under the attempt
	}
	c, err := chirp.Dial(addr, s.cred)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	if t != nil {
		if _, err := c.SetTraceContext(trace, fetchID); err != nil {
			return nil, err
		}
	}
	return c.Get(path)
}
