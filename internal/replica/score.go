// Package replica implements the replication-manager half of NeST's
// federation story (the EU DataGrid data-management split the paper
// anticipates in §5): each appliance watches the per-file GET demand
// its dispatcher records, decides which hot files are under-replicated
// against the collector's replica catalog, and mirrors them to healthy
// peers with pull-based third-party GridFTP transfers. The same
// health-ranking drives client-side replica selection: given the set
// of appliances holding a file, prefer the one advertising the most
// spare capacity right now.
package replica

import (
	"math/rand"
	"sort"

	"nest/internal/classad"
	"nest/internal/discovery"
)

// Catalog is the replica-location lookup shared by the selector and
// the manager: which appliances hold a logical path, and what does the
// fleet look like overall. *discovery.Client implements it over the
// collector wire protocol; CollectorCatalog adapts an in-process
// collector.
type Catalog interface {
	// Replicas returns the fresh ads of the appliances holding path.
	Replicas(path string) ([]*classad.Ad, error)
	// Query returns the fresh ads matching constraint ("" for all).
	Query(constraint string) ([]*classad.Ad, error)
}

// CollectorCatalog adapts an in-process *discovery.Collector to the
// Catalog interface (tests and single-process federations).
type CollectorCatalog struct{ C *discovery.Collector }

func (cc CollectorCatalog) Replicas(path string) ([]*classad.Ad, error) {
	return cc.C.ReplicaAds(path), nil
}

func (cc CollectorCatalog) Query(constraint string) ([]*classad.Ad, error) {
	return cc.C.Query(constraint)
}

// Name returns the appliance name an ad advertises.
func Name(ad *classad.Ad) string {
	s, _ := ad.EvalAttr("Name", nil).StringVal()
	return s
}

// Addr returns the endpoint an ad advertises for one protocol (the
// Addr_<proto> attribute the dispatcher stamps), or "" when the
// appliance does not serve that protocol.
func Addr(ad *classad.Ad, proto string) string {
	s, _ := ad.EvalAttr("Addr_"+proto, nil).StringVal()
	return s
}

func realAttr(ad *classad.Ad, attr string) float64 {
	v := ad.EvalAttr(attr, nil)
	if r, ok := v.RealVal(); ok {
		return r
	}
	if i, ok := v.IntVal(); ok {
		return float64(i)
	}
	return 0
}

// Score reduces an appliance's advertised health to a single figure of
// merit for replica ranking: recently observed bandwidth rewarded,
// queue depth and tail latency penalized. The +1 terms keep idle
// appliances (no traffic yet, so no bandwidth sample) comparable
// instead of collapsing to zero, and make the score monotone in each
// input.
func Score(ad *classad.Ad) float64 {
	bw := realAttr(ad, "RecentBandwidthMBps")
	lat := realAttr(ad, "P99LatencyMs")
	queue := realAttr(ad, "QueueDepth")
	if bw < 0 {
		bw = 0
	}
	if lat < 0 {
		lat = 0
	}
	if queue < 0 {
		queue = 0
	}
	return (1 + bw) / ((1 + queue) * (1 + lat/100))
}

// Rank orders ads best-replica-first by Score. Ties — the common case
// in a fresh fleet, where every appliance advertises identical health —
// break randomly via a pre-shuffle under a stable sort, so repeated
// selections spread load instead of dog-piling the lexicographically
// first appliance. A nil rng skips the shuffle (deterministic order
// for tests). The input slice is not modified.
func Rank(ads []*classad.Ad, rng *rand.Rand) []*classad.Ad {
	out := make([]*classad.Ad, len(ads))
	copy(out, ads)
	if rng != nil {
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	}
	sort.SliceStable(out, func(i, j int) bool { return Score(out[i]) > Score(out[j]) })
	return out
}

// Pick selects one holder at random with probability proportional to
// its health score. Strict argmax routing herds every concurrent
// client onto the same momentarily-best appliance for a full
// advertisement period (the health signal is stale between ads);
// score-weighted spreading keeps a whole fleet busy while still
// starving appliances whose advertised health has collapsed. A nil rng
// degenerates to the deterministic best, as does an all-zero score
// set. Returns nil for an empty slice.
func Pick(ads []*classad.Ad, rng *rand.Rand) *classad.Ad {
	if len(ads) == 0 {
		return nil
	}
	if rng == nil {
		return Rank(ads, nil)[0]
	}
	scores := make([]float64, len(ads))
	total := 0.0
	for i, ad := range ads {
		if s := Score(ad); s > 0 {
			scores[i] = s
			total += s
		}
	}
	if total <= 0 {
		return ads[rng.Intn(len(ads))]
	}
	x := rng.Float64() * total
	for i, s := range scores {
		if x -= s; x <= 0 && s > 0 {
			return ads[i]
		}
	}
	return ads[len(ads)-1]
}
