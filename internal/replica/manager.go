package replica

import (
	"fmt"
	"math/rand"
	"path"
	"strings"
	"sync"
	"time"

	"nest/internal/classad"
	"nest/internal/gridftp"
	"nest/internal/gsi"
	"nest/internal/obs"
	"nest/internal/sim"
)

// Defaults for Config fields left zero.
const (
	DefaultInterval      = 2 * time.Second
	DefaultHotK          = 32
	DefaultMinHeat       = 2
	DefaultMaxConcurrent = 2
	DefaultMaxRetries    = 4
	DefaultBackoff       = 250 * time.Millisecond
	DefaultSuccessGrace  = 30 * time.Second
)

// maxBackoff caps the exponential retry backoff per path×peer.
const maxBackoff = 30 * time.Second

// Config parameterizes a replication manager.
type Config struct {
	// Name is this appliance's advertised ClassAd name; the manager
	// never mirrors to itself and counts itself as a holder of every
	// file it is asked to replicate (its own heat proves possession
	// before the next advertisement lists the file).
	Name string
	// Factor is the desired number of appliances holding each hot file
	// (including this one). <= 1 disables replication.
	Factor int
	// Catalog locates current holders and candidate peers.
	Catalog Catalog
	// Hot returns the k most-demanded local files (the dispatcher's
	// HotPaths method).
	Hot func(k int) []obs.HeatEntry
	// SelfGridFTP is this appliance's own GridFTP endpoint — the source
	// side of every mirror it orchestrates.
	SelfGridFTP string
	// Cred authenticates the control connections to both endpoints.
	Cred *gsi.Credential
	// Clock schedules ticks, backoff and mirror goroutines (virtual in
	// simulation). Defaults to a real clock.
	Clock sim.Clock
	// Interval is the demand-evaluation period.
	Interval time.Duration
	// HotK bounds how many hot files each tick considers.
	HotK int
	// MinHeat is the GET count below which a file is not worth
	// mirroring.
	MinHeat int64
	// MaxConcurrent bounds simultaneous mirror transfers.
	MaxConcurrent int
	// MaxRetries bounds attempts per path×peer before the pair is
	// parked at the maximum backoff.
	MaxRetries int
	// Backoff is the base retry delay after a failed mirror; it doubles
	// per consecutive failure up to maxBackoff.
	Backoff time.Duration
	// SuccessGrace suppresses re-mirroring a path×peer after success
	// until the peer's own advertisement lists the copy.
	SuccessGrace time.Duration
	// StripeWidth > 1 moves replicas with striped MODE E transfers.
	StripeWidth int
	// Seed feeds peer-ranking tie-breaks.
	Seed int64
	// Logf receives diagnostics; nil silences.
	Logf func(format string, args ...any)
}

// Manager watches local GET heat and keeps hot files replicated across
// the fleet. One runs inside each appliance (nestd -replicate N); the
// fleet needs no coordinator beyond the collector, because every
// manager works from the same catalog and the catalog is self-healing
// (entries expire with the advertisement that produced them, so an
// appliance restart or crash re-opens the replication decision within
// one ClassAd lifetime — that is the whole reconciliation story).
type Manager struct {
	cfg Config

	sem chan struct{} // bounds concurrent mirror transfers

	mu        sync.Mutex
	rng       *rand.Rand
	inflight  map[string]bool          // path|peer with a mirror running
	fails     map[string]int           // consecutive failures per path|peer
	coolUntil map[string]time.Duration // clock time before which path|peer is not retried
	closed    bool

	wg sync.WaitGroup

	attempts  obs.Counter // mirror transfers started
	successes obs.Counter // mirror transfers completed
	failures  obs.Counter // mirror transfers failed
	retries   obs.Counter // failed pairs re-attempted after backoff
	skips     obs.Counter // considerations suppressed (inflight or cooling)

	// tracer, when set, mints one trace per mirror and propagates it to
	// both endpoints so the source RETR and destination STOR request
	// spans assemble under a single replica.mirror root.
	tracer *obs.Tracer
}

// NewManager builds a replication manager; Run starts it.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("replica: Config.Name required")
	}
	if cfg.Catalog == nil || cfg.Hot == nil {
		return nil, fmt.Errorf("replica: Config.Catalog and Config.Hot required")
	}
	if cfg.SelfGridFTP == "" {
		return nil, fmt.Errorf("replica: Config.SelfGridFTP required")
	}
	if cfg.Clock == nil {
		cfg.Clock = sim.NewRealClock()
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.HotK <= 0 {
		cfg.HotK = DefaultHotK
	}
	if cfg.MinHeat <= 0 {
		cfg.MinHeat = DefaultMinHeat
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = DefaultMaxConcurrent
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = DefaultMaxRetries
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = DefaultBackoff
	}
	if cfg.SuccessGrace <= 0 {
		cfg.SuccessGrace = DefaultSuccessGrace
	}
	return &Manager{
		cfg:       cfg,
		sem:       make(chan struct{}, cfg.MaxConcurrent),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		inflight:  make(map[string]bool),
		fails:     make(map[string]int),
		coolUntil: make(map[string]time.Duration),
	}, nil
}

// SetTracer enables span recording for mirrors. Call before Run.
func (m *Manager) SetTracer(t *obs.Tracer) { m.tracer = t }

// Register exposes the manager's counters on a metrics registry.
func (m *Manager) Register(reg *obs.Registry) {
	reg.Func("nest_replica_attempts_total", m.attempts.Value)
	reg.Func("nest_replica_success_total", m.successes.Value)
	reg.Func("nest_replica_failures_total", m.failures.Value)
	reg.Func("nest_replica_retries_total", m.retries.Value)
	reg.Func("nest_replica_skips_total", m.skips.Value)
	reg.Func("nest_replica_inflight", func() int64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return int64(len(m.inflight))
	})
}

func (m *Manager) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// Run evaluates demand every Interval until Close. It blocks; start it
// with cfg.Clock.Go (or a plain goroutine under a real clock).
func (m *Manager) Run() {
	for {
		m.mu.Lock()
		closed := m.closed
		m.mu.Unlock()
		if closed {
			return
		}
		m.Tick()
		m.cfg.Clock.Sleep(m.cfg.Interval)
	}
}

// Close stops Run at its next iteration and waits for in-flight
// mirrors to drain.
func (m *Manager) Close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.wg.Wait()
}

// Reconcile clears all retry and cooldown state and re-evaluates
// demand immediately — called after a topology change the caller knows
// about (a peer restarted, an operator changed the factor) rather than
// waiting out backoffs that no longer describe the world.
func (m *Manager) Reconcile() {
	m.mu.Lock()
	m.fails = make(map[string]int)
	m.coolUntil = make(map[string]time.Duration)
	m.mu.Unlock()
	m.Tick()
}

// Tick runs one demand evaluation: for each locally hot file, count
// fresh holders in the catalog and start mirrors toward the
// healthiest non-holding peers until the replication factor is met.
func (m *Manager) Tick() {
	if m.cfg.Factor <= 1 {
		return
	}
	for _, e := range m.cfg.Hot(m.cfg.HotK) {
		if e.Count < m.cfg.MinHeat {
			continue // Hot is sorted by count; everything after is colder
		}
		m.consider(e.Key)
	}
}

func (m *Manager) consider(file string) {
	holderAds, err := m.cfg.Catalog.Replicas(file)
	if err != nil {
		m.logf("replica: catalog lookup %s: %v", file, err)
		return
	}
	holders := make(map[string]bool, len(holderAds)+1)
	for _, ad := range holderAds {
		holders[Name(ad)] = true
	}
	// The local heat map proves we hold the file even before our next
	// advertisement lists it.
	holders[m.cfg.Name] = true
	need := m.cfg.Factor - len(holders)
	if need <= 0 {
		return
	}
	all, err := m.cfg.Catalog.Query("")
	if err != nil {
		m.logf("replica: fleet query: %v", err)
		return
	}
	var peers []*classad.Ad
	for _, ad := range all {
		name := Name(ad)
		if name == "" || holders[name] || Addr(ad, "gridftp") == "" {
			continue
		}
		peers = append(peers, ad)
	}
	m.mu.Lock()
	ranked := Rank(peers, m.rng)
	m.mu.Unlock()
	for _, peer := range ranked {
		if need == 0 {
			return
		}
		if m.startMirror(file, peer) {
			need--
		}
	}
}

// startMirror launches one asynchronous mirror of file toward peer,
// unless that pair is already in flight or cooling down after a
// failure. It reports whether a transfer was started.
func (m *Manager) startMirror(file string, peer *classad.Ad) bool {
	peerName := Name(peer)
	addr := Addr(peer, "gridftp")
	key := file + "|" + peerName
	now := m.cfg.Clock.Now()
	m.mu.Lock()
	if m.closed || m.inflight[key] || now < m.coolUntil[key] {
		m.mu.Unlock()
		m.skips.Inc()
		return false
	}
	if m.fails[key] > 0 {
		m.retries.Inc()
	}
	m.inflight[key] = true
	m.mu.Unlock()

	m.wg.Add(1)
	m.cfg.Clock.Go(func() {
		defer m.wg.Done()
		m.sem <- struct{}{}
		defer func() { <-m.sem }()
		m.attempts.Inc()
		err := m.mirrorOnce(file, addr)
		m.finishMirror(key, file, peerName, err)
	})
	return true
}

func (m *Manager) finishMirror(key, file, peerName string, err error) {
	now := m.cfg.Clock.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.inflight, key)
	if err == nil {
		m.successes.Inc()
		delete(m.fails, key)
		// Until the peer's own advertisement lists the copy, the catalog
		// still reports it as a non-holder; the grace period keeps the
		// next ticks from mirroring the same file again.
		m.coolUntil[key] = now + m.cfg.SuccessGrace
		m.logf("replica: mirrored %s -> %s", file, peerName)
		return
	}
	m.failures.Inc()
	n := m.fails[key] + 1
	m.fails[key] = n
	backoff := m.cfg.Backoff << (n - 1)
	if backoff > maxBackoff || backoff <= 0 || n > m.cfg.MaxRetries {
		backoff = maxBackoff
	}
	m.coolUntil[key] = now + backoff
	m.logf("replica: mirror %s -> %s failed (attempt %d, next in %v): %v",
		file, peerName, n, backoff, err)
}

// mirrorOnce copies file from this appliance to the peer at addr with
// a third-party GridFTP transfer: the manager holds both control
// connections while the peer's data channel pulls the bytes straight
// from the source — the payload never passes through the manager.
func (m *Manager) mirrorOnce(file, addr string) (err error) {
	var trace, mirrorID uint64
	if t := m.tracer; t != nil {
		trace, mirrorID = t.NewTraceID(), t.NewSpanID()
		begin := m.cfg.Clock.Now()
		defer func() {
			code := 0
			if err != nil {
				code = 1
			}
			t.Record(&obs.Span{
				Trace: trace, ID: mirrorID,
				Stage: "replica.mirror", Proto: "gridftp", Op: "put", Path: file,
				Code: code, Start: begin, Dur: m.cfg.Clock.Now() - begin,
				Notes: [2]obs.SpanNote{{Key: "dst", Str: addr}},
			})
		}()
	}
	src, err := gridftp.Dial(m.cfg.SelfGridFTP, m.cfg.Cred)
	if err != nil {
		return fmt.Errorf("dial src: %w", err)
	}
	defer src.Quit()
	dst, err := gridftp.Dial(addr, m.cfg.Cred)
	if err != nil {
		return fmt.Errorf("dial dst: %w", err)
	}
	defer dst.Quit()
	if mirrorID != 0 {
		// Best-effort context hand-off: both endpoints' request spans
		// join the mirror's tree; peers without the extension just run
		// untraced.
		if _, err := src.SetTraceContext(trace, mirrorID); err != nil {
			return fmt.Errorf("src trace context: %w", err)
		}
		if _, err := dst.SetTraceContext(trace, mirrorID); err != nil {
			return fmt.Errorf("dst trace context: %w", err)
		}
	}
	mkdirAll(dst, path.Dir(file))
	if m.cfg.StripeWidth > 1 {
		err = gridftp.ThirdPartyStriped(src, file, dst, file, m.cfg.StripeWidth)
	} else {
		err = gridftp.ThirdParty(src, file, dst, file)
	}
	if err != nil {
		// A failed STOR can leave a truncated file behind, and the peer
		// would advertise that stub as a replica — masking the deficit
		// while serving corrupt bytes. Remove it so the catalog stays
		// honest and the next tick retries.
		_ = dst.Dele(file)
	}
	return err
}

// mkdirAll best-effort creates dir and its parents on an FTP peer;
// errors (typically "already exists") surface later as STOR failures
// if they matter.
func mkdirAll(c interface{ Mkd(string) error }, dir string) {
	if dir == "" || dir == "/" || dir == "." {
		return
	}
	var prefix string
	for _, seg := range strings.Split(strings.Trim(dir, "/"), "/") {
		prefix += "/" + seg
		_ = c.Mkd(prefix)
	}
}
