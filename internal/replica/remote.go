package replica

import (
	"sync"

	"nest/internal/classad"
	"nest/internal/discovery"
)

// RemoteCatalog is a Catalog over the collector wire protocol that an
// appliance process can share between its publisher loop and its
// replication manager: calls are serialized (the underlying client is
// a single framed connection) and a failed call redials once before
// giving up, so a collector restart costs one advertisement period
// instead of wedging the appliance's federation machinery forever.
type RemoteCatalog struct {
	addr string

	mu sync.Mutex
	c  *discovery.Client
}

// NewRemoteCatalog returns a lazy-dialing collector connection; no
// network traffic happens until the first call.
func NewRemoteCatalog(addr string) *RemoteCatalog {
	return &RemoteCatalog{addr: addr}
}

// do runs fn against a live client, dialing (or redialing after a
// failure) as needed. One retry on a fresh connection distinguishes a
// dead collector from a connection the collector's idle deadline
// already reaped.
func (r *RemoteCatalog) do(fn func(*discovery.Client) error) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for attempt := 0; ; attempt++ {
		if r.c == nil {
			c, err := discovery.DialClient(r.addr)
			if err != nil {
				return err
			}
			r.c = c
		}
		err := fn(r.c)
		if err == nil {
			return nil
		}
		r.c.Close()
		r.c = nil
		if attempt > 0 {
			return err
		}
	}
}

// Replicas implements Catalog.
func (r *RemoteCatalog) Replicas(path string) (ads []*classad.Ad, err error) {
	err = r.do(func(c *discovery.Client) error {
		ads, err = c.Replicas(path)
		return err
	})
	return ads, err
}

// Query implements Catalog.
func (r *RemoteCatalog) Query(constraint string) (ads []*classad.Ad, err error) {
	err = r.do(func(c *discovery.Client) error {
		ads, err = c.Query(constraint)
		return err
	})
	return ads, err
}

// Publish advertises an ad, redialing like every other call — the
// publisher side of an appliance's collector connection.
func (r *RemoteCatalog) Publish(ad *classad.Ad) error {
	return r.do(func(c *discovery.Client) error { return c.Publish(ad) })
}

// Close drops the connection; a later call redials.
func (r *RemoteCatalog) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.c != nil {
		r.c.Close()
		r.c = nil
	}
}
