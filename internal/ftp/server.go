package ftp

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"path"
	"strconv"
	"strings"
	"time"

	"nest/internal/gsi"
	"nest/internal/protocol"
)

// acceptTimeout bounds how long a transfer waits for its data
// connection(s).
const acceptTimeout = 30 * time.Second

// Options configures the FTP engine for plain-FTP or GridFTP service.
type Options struct {
	// ProtoName is the protocol class reported to the dispatcher
	// ("ftp" or "gridftp").
	ProtoName string
	// Verifier enables AUTH GSSAPI with GSI credentials.
	Verifier *gsi.Verifier
	// RequireGSI rejects USER/PASS logins (GridFTP policy: GSI only).
	RequireGSI bool
	// AllowAnon accepts anonymous USER/PASS logins (plain FTP policy).
	AllowAnon bool
	// EnableModeE advertises and accepts extended block mode.
	EnableModeE bool
}

// Handler is the FTP protocol module.
type Handler struct {
	opts Options
}

// NewHandler builds an FTP engine handler.
func NewHandler(opts Options) *Handler {
	if opts.ProtoName == "" {
		opts.ProtoName = Proto
	}
	return &Handler{opts: opts}
}

// Proto implements protocol.Handler.
func (h *Handler) Proto() string { return h.opts.ProtoName }

// NewSession implements protocol.Handler: greet and authenticate.
func (h *Handler) NewSession(conn net.Conn) (protocol.Session, error) {
	s := &session{
		opts: h.opts,
		conn: conn,
		br:   bufio.NewReader(conn),
		bw:   bufio.NewWriter(conn),
		cwd:  "/",
		mode: 'S',
		par:  1,
		allo: -1,
	}
	if err := s.reply(220, "NeST FTP server (%s) ready", h.opts.ProtoName); err != nil {
		return nil, err
	}
	if err := s.authenticate(); err != nil {
		return nil, err
	}
	return s, nil
}

// session is one authenticated FTP control connection.
type session struct {
	opts Options
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	user string
	cwd  string
	mode byte  // 'S' stream, 'E' extended block
	par  int   // parallel data streams (MODE E)
	allo int64 // size announced by ALLO for the next STOR; -1 when unset

	pasv   net.Listener // armed by PASV, consumed by the next transfer
	port   string       // armed by PORT, consumed by the next transfer
	dataLn net.Listener // listener a transfer is actively accepting on

	// Sticky trace context set by SITE TRCX: stamped on every request
	// until replaced. Sticky rather than one-shot because third-party
	// orchestration interleaves commands (SIZE between TRCX and RETR).
	trcTrace  uint64
	trcParent uint64
	sawTrcx   bool // peer speaks TRCX: safe to append trcx= reply tails

	inData *protocol.Request
	// dataErrReply overrides the post-transfer reply code on failures
	// detected while opening the data channel.
}

func (s *session) reply(code int, format string, args ...interface{}) error {
	if _, err := fmt.Fprintf(s.bw, "%d %s\r\n", code, fmt.Sprintf(format, args...)); err != nil {
		return err
	}
	return s.bw.Flush()
}

func (s *session) readCommand() (cmd, arg string, err error) {
	line, err := s.br.ReadString('\n')
	if err != nil {
		return "", "", err
	}
	line = strings.TrimRight(line, "\r\n")
	if i := strings.IndexByte(line, ' '); i >= 0 {
		return strings.ToUpper(line[:i]), line[i+1:], nil
	}
	return strings.ToUpper(line), "", nil
}

// authenticate drives the pre-session login exchange.
func (s *session) authenticate() error {
	gsiDone := false
	for {
		cmd, arg, err := s.readCommand()
		if err != nil {
			return err
		}
		switch cmd {
		case "AUTH":
			if !strings.EqualFold(arg, "GSSAPI") || s.opts.Verifier == nil {
				if err := s.reply(504, "unsupported security mechanism"); err != nil {
					return err
				}
				continue
			}
			if err := s.reply(334, "ADAT must follow"); err != nil {
				return err
			}
		case "ADAT":
			if s.opts.Verifier == nil {
				if err := s.reply(503, "AUTH first"); err != nil {
					return err
				}
				continue
			}
			user, err := s.opts.Verifier.Authenticate(arg)
			if err != nil {
				if rerr := s.reply(535, "GSSAPI authentication failed"); rerr != nil {
					return rerr
				}
				continue
			}
			s.user = user
			gsiDone = true
			if err := s.reply(235, "GSSAPI authentication successful"); err != nil {
				return err
			}
			return nil
		case "USER":
			if gsiDone {
				if err := s.reply(230, "already authenticated"); err != nil {
					return err
				}
				return nil
			}
			if s.opts.RequireGSI {
				if err := s.reply(530, "GSI authentication required"); err != nil {
					return err
				}
				continue
			}
			if !s.opts.AllowAnon || !strings.EqualFold(arg, "anonymous") {
				if err := s.reply(530, "only anonymous access permitted"); err != nil {
					return err
				}
				continue
			}
			if err := s.reply(331, "send password"); err != nil {
				return err
			}
		case "PASS":
			if s.opts.RequireGSI {
				if err := s.reply(530, "GSI authentication required"); err != nil {
					return err
				}
				continue
			}
			s.user = gsi.Anonymous
			if err := s.reply(230, "anonymous login ok"); err != nil {
				return err
			}
			return nil
		case "QUIT":
			s.reply(221, "goodbye")
			return io.EOF
		default:
			if err := s.reply(530, "please login first"); err != nil {
				return err
			}
		}
	}
}

// Proto implements protocol.Session.
func (s *session) Proto() string { return s.opts.ProtoName }

// User implements protocol.Session.
func (s *session) User() string { return s.user }

// Close implements protocol.Session.
func (s *session) Close() error {
	if s.pasv != nil {
		s.pasv.Close()
		s.pasv = nil
	}
	if s.dataLn != nil {
		s.dataLn.Close()
	}
	return s.conn.Close()
}

// resolve maps an FTP pathname against the working directory.
func (s *session) resolve(p string) string {
	if p == "" {
		return s.cwd
	}
	if strings.HasPrefix(p, "/") {
		return path.Clean(p)
	}
	return path.Clean(path.Join(s.cwd, p))
}

// Next implements protocol.Session: session-local commands are
// answered inline; storage and transfer commands become common
// requests.
func (s *session) Next() (*protocol.Request, error) {
	for {
		cmd, arg, err := s.readCommand()
		if err != nil {
			return nil, err
		}
		req := &protocol.Request{
			Proto:      s.opts.ProtoName,
			User:       s.user,
			TraceID:    s.trcTrace,
			ParentSpan: s.trcParent,
		}
		switch cmd {
		case "NOOP":
			err = s.reply(200, "ok")
		case "SYST":
			err = s.reply(215, "UNIX Type: L8 (NeST)")
		case "FEAT":
			feats := "211-SIZE\r\n211-PASV\r\n211-SITE TRCX\r\n"
			if s.opts.EnableModeE {
				feats += "211-MODE E\r\n211-PARALLEL\r\n"
			}
			if _, err = s.bw.WriteString(feats); err == nil {
				err = s.reply(211, "end")
			}
		case "TYPE":
			err = s.reply(200, "type set to %s", arg)
		case "MODE":
			m := strings.ToUpper(strings.TrimSpace(arg))
			switch {
			case m == "S":
				s.mode = 'S'
				err = s.reply(200, "mode set to S")
			case m == "E" && s.opts.EnableModeE:
				s.mode = 'E'
				err = s.reply(200, "mode set to E")
			default:
				err = s.reply(504, "unsupported mode %q", arg)
			}
		case "OPTS":
			err = s.handleOpts(arg)
		case "SITE":
			// SITE TRCX <trace-hex> <parent-span-hex> carries distributed
			// trace context. Servers without the extension answer any SITE
			// with 502, which clients treat as "peer does not trace".
			err = s.handleSite(arg)
		case "PWD":
			err = s.reply(257, "%q is the current directory", s.cwd)
		case "CWD":
			req.Op = protocol.OpStat
			req.Path = s.resolve(arg)
			req.Handle = tagCWD
			return req, nil
		case "CDUP":
			req.Op = protocol.OpStat
			req.Path = s.resolve("..")
			req.Handle = tagCWD
			return req, nil
		case "PASV":
			err = s.handlePasv()
		case "PORT":
			addr, perr := parseHostPort(arg)
			if perr != nil {
				err = s.reply(501, "%v", perr)
				break
			}
			s.port = addr
			err = s.reply(200, "PORT command successful")
		case "SPOR": // striped PORT: same single-address form here
			addr, perr := parseHostPort(arg)
			if perr != nil {
				err = s.reply(501, "%v", perr)
				break
			}
			s.port = addr
			err = s.reply(200, "SPOR command successful")
		case "SPAS":
			err = s.handlePasv() // single listener accepting stripes
		case "ALLO":
			// ALLO announces the size of the next STOR. Stream-mode FTP
			// frames the end of data by closing the connection, so the
			// size is advisory there — but a striped MODE E STOR needs it
			// up front to partition the file before data arrives.
			n, perr := strconv.ParseInt(strings.TrimSpace(arg), 10, 64)
			if perr != nil || n < 0 {
				err = s.reply(501, "bad ALLO size %q", arg)
				break
			}
			s.allo = n
			err = s.reply(200, "ALLO %d ok", n)
		case "RETR":
			req.Op = protocol.OpGet
			req.Path = s.resolve(arg)
			if s.mode == 'E' {
				req.Stripes = s.par
			}
			return req, nil
		case "STOR":
			req.Op = protocol.OpPut
			req.Path = s.resolve(arg)
			req.Size = s.allo
			s.allo = -1
			if s.mode == 'E' {
				req.Stripes = s.par
			}
			return req, nil
		case "LIST", "NLST":
			req.Op = protocol.OpList
			req.Path = s.resolve(arg)
			if cmd == "LIST" {
				req.Handle = tagLIST
			} else {
				req.Handle = tagNLST
			}
			return req, nil
		case "SIZE":
			req.Op = protocol.OpStat
			req.Path = s.resolve(arg)
			req.Handle = tagSIZE
			return req, nil
		case "DELE":
			req.Op = protocol.OpRemove
			req.Path = s.resolve(arg)
			return req, nil
		case "MKD":
			req.Op = protocol.OpMkdir
			req.Path = s.resolve(arg)
			return req, nil
		case "RMD":
			req.Op = protocol.OpRmdir
			req.Path = s.resolve(arg)
			return req, nil
		case "QUIT":
			req.Op = protocol.OpQuit
			return req, nil
		default:
			err = s.reply(502, "command %q not implemented", cmd)
		}
		if err != nil {
			return nil, err
		}
	}
}

// Handle tags distinguishing FTP commands that share a common op.
type handleTag int

const (
	tagNone handleTag = iota
	tagCWD
	tagSIZE
	tagLIST
	tagNLST
)

// handleSite dispatches SITE subcommands. Only TRCX (trace-context
// propagation) is understood; anything else gets the same 502 an
// extension-free server would send for SITE itself.
func (s *session) handleSite(arg string) error {
	toks := strings.Fields(arg)
	if len(toks) == 0 || !strings.EqualFold(toks[0], "TRCX") {
		return s.reply(502, "SITE subcommand not implemented")
	}
	if len(toks) != 3 {
		return s.reply(501, "usage: SITE TRCX <trace-hex> <parent-span-hex>")
	}
	trace, err1 := strconv.ParseUint(toks[1], 16, 64)
	parent, err2 := strconv.ParseUint(toks[2], 16, 64)
	if err1 != nil || err2 != nil {
		return s.reply(501, "bad trace context (want hex ids)")
	}
	s.trcTrace, s.trcParent = trace, parent
	s.sawTrcx = true
	return s.reply(200, "trace context set")
}

func (s *session) handleOpts(arg string) error {
	// "OPTS RETR Parallelism=n,n,n;" per the GridFTP draft.
	lower := strings.ToLower(arg)
	if i := strings.Index(lower, "parallelism="); i >= 0 && s.opts.EnableModeE {
		spec := strings.TrimSuffix(lower[i+len("parallelism="):], ";")
		first := strings.Split(spec, ",")[0]
		n, err := strconv.Atoi(strings.TrimSpace(first))
		if err != nil || n < 1 || n > 64 {
			return s.reply(501, "bad parallelism %q", arg)
		}
		s.par = n
		return s.reply(200, "parallelism set to %d", n)
	}
	return s.reply(501, "option not understood")
}

func (s *session) handlePasv() error {
	if s.pasv != nil {
		s.pasv.Close()
	}
	host, _, _ := net.SplitHostPort(s.conn.LocalAddr().String())
	ln, err := net.Listen("tcp4", net.JoinHostPort(host, "0"))
	if err != nil {
		return s.reply(425, "cannot open passive port: %v", err)
	}
	s.pasv = ln
	hp, err := hostPort(ln.Addr())
	if err != nil {
		ln.Close()
		s.pasv = nil
		return s.reply(425, "%v", err)
	}
	return s.reply(227, "Entering Passive Mode (%s)", hp)
}

// openDataConns establishes n data connections for the next transfer.
func (s *session) openDataConns(n int) ([]net.Conn, error) {
	if n < 1 {
		n = 1
	}
	if s.pasv != nil {
		ln := s.pasv
		s.pasv = nil
		s.dataLn = ln
		defer func() {
			s.dataLn = nil
			ln.Close()
		}()
		conns := make([]net.Conn, 0, n)
		for i := 0; i < n; i++ {
			if tl, ok := ln.(*net.TCPListener); ok {
				tl.SetDeadline(time.Now().Add(acceptTimeout))
			}
			conn, err := ln.Accept()
			if err != nil {
				for _, c := range conns {
					c.Close()
				}
				return nil, err
			}
			conns = append(conns, conn)
		}
		return conns, nil
	}
	if s.port != "" {
		addr := s.port
		s.port = ""
		conns := make([]net.Conn, 0, n)
		for i := 0; i < n; i++ {
			conn, err := net.DialTimeout("tcp", addr, acceptTimeout)
			if err != nil {
				for _, c := range conns {
					c.Close()
				}
				return nil, err
			}
			conns = append(conns, conn)
		}
		return conns, nil
	}
	return nil, fmt.Errorf("ftp: no data connection arranged (use PASV or PORT)")
}

// SendData implements protocol.Session for RETR.
func (s *session) SendData(req *protocol.Request, size int64) (io.WriteCloser, error) {
	par := 1
	if s.mode == 'E' {
		par = s.par
	}
	if err := s.reply(150, "opening data connection (%d bytes)", size); err != nil {
		return nil, err
	}
	conns, err := s.openDataConns(par)
	if err != nil {
		s.reply(425, "cannot open data connection: %v", err)
		return nil, err
	}
	s.inData = req
	if s.mode == 'E' {
		return newModeESender(conns), nil
	}
	return &connWriter{conn: conns[0]}, nil
}

// RecvData implements protocol.Session for STOR.
func (s *session) RecvData(req *protocol.Request) (io.ReadCloser, error) {
	if err := s.reply(150, "ready to receive data"); err != nil {
		return nil, err
	}
	if s.mode == 'E' {
		// Streams attach as they arrive; the count is announced by the
		// EOF block. With PASV we keep accepting in the background.
		recv := newModeEReceiver()
		if s.pasv != nil {
			ln := s.pasv
			s.pasv = nil
			go func() {
				defer ln.Close()
				var backoff time.Duration
				for {
					if tl, ok := ln.(*net.TCPListener); ok {
						tl.SetDeadline(time.Now().Add(acceptTimeout))
					}
					conn, err := ln.Accept()
					if err != nil {
						// A transient accept failure (aborted handshake in
						// the backlog, descriptor exhaustion) must not
						// strand the stripes still dialing in: back off
						// and retry. The deadline timeout and listener
						// close remain the loop's exits.
						var ne net.Error
						if !errors.Is(err, net.ErrClosed) && errors.As(err, &ne) && !ne.Timeout() {
							if backoff <= 0 {
								backoff = 5 * time.Millisecond
							} else if backoff < time.Second {
								backoff *= 2
							}
							time.Sleep(backoff)
							continue
						}
						return
					}
					backoff = 0
					recv.attach(conn)
				}
			}()
		} else {
			conns, err := s.openDataConns(s.par)
			if err != nil {
				s.reply(425, "cannot open data connection: %v", err)
				return nil, err
			}
			for _, c := range conns {
				recv.attach(c)
			}
		}
		s.inData = req
		return recv, nil
	}
	conns, err := s.openDataConns(1)
	if err != nil {
		s.reply(425, "cannot open data connection: %v", err)
		return nil, err
	}
	s.inData = req
	return &connReader{conn: conns[0]}, nil
}

// Reply implements protocol.Session.
func (s *session) Reply(req *protocol.Request, rep *protocol.Reply) error {
	if s.inData == req {
		s.inData = nil
		if rep.OK() {
			if s.sawTrcx && req.TraceID != 0 {
				// Echo the trace identity so orchestrators that did not
				// mint the trace themselves can still link this leg. Only
				// emitted once the peer has spoken TRCX, so sessions with
				// seed-era clients see byte-identical replies.
				return s.reply(226, "transfer complete (%d bytes) trcx=%x", rep.Size, req.TraceID)
			}
			return s.reply(226, "transfer complete (%d bytes)", rep.Size)
		}
		return s.reply(451, "transfer failed: %s", rep.Message)
	}
	tag, _ := req.Handle.(handleTag)
	if !rep.OK() {
		switch {
		case req.Op == protocol.OpPut && rep.Code == protocol.CodeNoSpace ||
			rep.Code == protocol.CodeNoLot:
			return s.reply(452, "insufficient storage: %s", rep.Message)
		case rep.Code == protocol.CodePermission:
			return s.reply(550, "permission denied: %s", rep.Message)
		default:
			return s.reply(550, "%s", rep.Message)
		}
	}
	switch req.Op {
	case protocol.OpQuit:
		return s.reply(221, "goodbye")
	case protocol.OpStat:
		switch tag {
		case tagCWD:
			if !rep.Info.IsDir {
				return s.reply(550, "%s: not a directory", req.Path)
			}
			s.cwd = req.Path
			return s.reply(250, "directory changed to %s", s.cwd)
		case tagSIZE:
			if rep.Info.IsDir {
				return s.reply(550, "%s: is a directory", req.Path)
			}
			return s.reply(213, "%d", rep.Info.Size)
		}
		return s.reply(213, "%d", rep.Size)
	case protocol.OpList:
		return s.sendListing(rep, tag == tagLIST)
	case protocol.OpMkdir:
		return s.reply(257, "%q created", req.Path)
	case protocol.OpRmdir, protocol.OpRemove:
		return s.reply(250, "ok")
	}
	return s.reply(200, "ok")
}

// sendListing performs the directory-listing data phase (FTP transfers
// listings over the data channel even though NeST treats them as
// storage requests).
func (s *session) sendListing(rep *protocol.Reply, long bool) error {
	if err := s.reply(150, "opening data connection for listing"); err != nil {
		return err
	}
	conns, err := s.openDataConns(1)
	if err != nil {
		return s.reply(425, "cannot open data connection: %v", err)
	}
	conn := conns[0]
	bw := bufio.NewWriter(conn)
	for _, e := range rep.Entries {
		var line string
		if long {
			kind := "-"
			if e.IsDir {
				kind = "d"
			}
			owner := e.Owner
			if owner == "" {
				owner = "nest"
			}
			line = fmt.Sprintf("%srw-r--r--   1 %-8s nest %12d Jan  1 00:00 %s\r\n",
				kind, owner, e.Size, e.Name)
		} else {
			line = e.Name + "\r\n"
		}
		if _, err := bw.WriteString(line); err != nil {
			conn.Close()
			return s.reply(451, "listing failed: %v", err)
		}
	}
	if err := bw.Flush(); err != nil {
		conn.Close()
		return s.reply(451, "listing failed: %v", err)
	}
	conn.Close()
	return s.reply(226, "listing complete")
}

// connWriter closes the data connection when the transfer ends (stream
// mode signals EOF by close).
type connWriter struct{ conn net.Conn }

func (w *connWriter) Write(p []byte) (int, error) { return w.conn.Write(p) }
func (w *connWriter) Close() error                { return w.conn.Close() }

// connReader reads until the peer closes (stream mode).
type connReader struct{ conn net.Conn }

func (r *connReader) Read(p []byte) (int, error) { return r.conn.Read(p) }
func (r *connReader) Close() error               { return r.conn.Close() }
