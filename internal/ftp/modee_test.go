package ftp

import (
	"bytes"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
	"testing/quick"
)

// pipeFanout wires a MODE E sender to a receiver over n in-memory
// stream pairs.
func pipeFanout(n int) (*modeESender, *modeEReceiver) {
	recv := newModeEReceiver()
	conns := make([]net.Conn, n)
	for i := range conns {
		a, b := net.Pipe()
		conns[i] = a
		recv.attach(b)
	}
	return newModeESender(conns), recv
}

func TestModeESingleStream(t *testing.T) {
	sender, recv := pipeFanout(1)
	payload := bytes.Repeat([]byte("mode-e"), 1000)
	go func() {
		sender.Write(payload)
		sender.Close()
	}()
	got, err := io.ReadAll(recv)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("reassembly = %d bytes, %v", len(got), err)
	}
}

func TestModeEEmptyTransfer(t *testing.T) {
	sender, recv := pipeFanout(3)
	go sender.Close() // EODs + EOF only
	got, err := io.ReadAll(recv)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty transfer = %d bytes, %v", len(got), err)
	}
}

func TestModeECloseIdempotent(t *testing.T) {
	sender, recv := pipeFanout(2)
	go func() {
		sender.Close()
		sender.Close() // second close is a no-op
	}()
	if _, err := io.ReadAll(recv); err != nil {
		t.Fatal(err)
	}
	recv.Close()
	recv.Close()
}

// Property: any payload split into arbitrary write sizes over an
// arbitrary stripe count reassembles exactly.
func TestQuickModeEReassembly(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(payload []byte, stripes8 uint8) bool {
		stripes := int(stripes8%5) + 1
		sender, recv := pipeFanout(stripes)
		go func() {
			rest := payload
			for len(rest) > 0 {
				n := rng.Intn(len(rest)) + 1
				sender.Write(rest[:n])
				rest = rest[n:]
			}
			sender.Close()
		}()
		got, err := io.ReadAll(recv)
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestModeEGapDetected(t *testing.T) {
	// A receiver that sees EOF+EODs but a missing block must report a
	// gap rather than returning short data silently.
	a, b := net.Pipe()
	recv := newModeEReceiver()
	recv.attach(b)
	go func() {
		// Block at offset 100 only: offset 0..99 never arrives.
		writeBlockHeader(a, blockHeader{Count: 4, Offset: 100})
		a.Write([]byte("data"))
		writeBlockHeader(a, blockHeader{Desc: DescEOD | DescEOF, Offset: 1})
		a.Close()
	}()
	_, err := io.ReadAll(recv)
	if err == nil {
		t.Fatal("gap not detected")
	}
}

func TestHostPortRoundTrip(t *testing.T) {
	addr := &net.TCPAddr{IP: net.IPv4(10, 1, 2, 3), Port: 51234}
	hp, err := hostPort(addr)
	if err != nil {
		t.Fatal(err)
	}
	back, err := parseHostPort(hp)
	if err != nil || back != "10.1.2.3:51234" {
		t.Fatalf("round trip = %q, %v", back, err)
	}
	for _, bad := range []string{"", "1,2,3", "1,2,3,4,5,999", "a,b,c,d,e,f"} {
		if _, err := parseHostPort(bad); err == nil {
			t.Errorf("parseHostPort(%q) succeeded", bad)
		}
	}
}

// TestModeEOutOfOrderReassembly delivers one payload's blocks shuffled
// across three streams, including one block transmitted twice at the
// same offset: the receiver must reassemble the exact byte stream,
// replacing (not duplicating) the retransmitted block. All blocks are
// ingested before the first Read so the duplicate deterministically
// lands on a still-pending offset.
func TestModeEOutOfOrderReassembly(t *testing.T) {
	payload := make([]byte, 10*1024)
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	recv := newModeEReceiver()
	conns := make([]net.Conn, 3)
	for i := range conns {
		a, b := net.Pipe()
		conns[i] = a
		recv.attach(b)
	}
	type blk struct {
		off  int
		data []byte
	}
	var blocks []blk
	for off := 0; off < len(payload); off += 1024 {
		blocks = append(blocks, blk{off, payload[off : off+1024]})
	}
	rng := rand.New(rand.NewSource(42))
	rng.Shuffle(len(blocks), func(i, j int) { blocks[i], blocks[j] = blocks[j], blocks[i] })
	for i, bl := range blocks {
		conn := conns[i%len(conns)]
		reps := 1
		if i == 4 {
			reps = 2 // duplicate offset from a "retransmitting" sender
		}
		for r := 0; r < reps; r++ {
			if err := writeBlockHeader(conn, blockHeader{Count: uint64(len(bl.data)), Offset: uint64(bl.off)}); err != nil {
				t.Fatal(err)
			}
			if _, err := conn.Write(bl.data); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, conn := range conns {
		h := blockHeader{Desc: DescEOD}
		if i == 0 {
			h.Desc |= DescEOF
			h.Offset = uint64(len(conns))
		}
		if err := writeBlockHeader(conn, h); err != nil {
			t.Fatal(err)
		}
	}
	got, err := io.ReadAll(recv)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("out-of-order reassembly: got %d bytes, want %d (equal=%v)",
			len(got), len(payload), bytes.Equal(got, payload))
	}
}

// TestModeEStripedSinkSource exercises the striped wire path end to
// end: two stripe writers (SinkAt) framing disjoint ranges concurrently
// over two connections, two range readers (SourceAt) consuming them
// concurrently on the receiving side.
func TestModeEStripedSinkSource(t *testing.T) {
	const half = 8192
	payload := make([]byte, 2*half)
	rng := rand.New(rand.NewSource(9))
	rng.Read(payload)
	sender, recv := pipeFanout(2)
	recv.SetStripeBounds([]int64{half})

	var writers sync.WaitGroup
	for i, wsize := range []int{1000, 777} {
		w := sender.SinkAt(int64(i * half))
		part := payload[i*half : (i+1)*half]
		writers.Add(1)
		go func(w io.Writer, part []byte, wsize int) {
			defer writers.Done()
			for len(part) > 0 {
				n := wsize
				if n > len(part) {
					n = len(part)
				}
				if _, err := w.Write(part[:n]); err != nil {
					t.Error(err)
					return
				}
				part = part[n:]
			}
		}(w, part, wsize)
	}
	go func() {
		writers.Wait()
		sender.Close()
	}()

	got := make([]byte, 2*half)
	var readers sync.WaitGroup
	for i := 0; i < 2; i++ {
		r := recv.SourceAt(int64(i*half), half)
		dst := got[i*half : (i+1)*half]
		readers.Add(1)
		go func(r io.Reader, dst []byte) {
			defer readers.Done()
			if _, err := io.ReadFull(r, dst); err != nil {
				t.Error(err)
				return
			}
			// The range reader must EOF exactly at the range end.
			if n, err := r.Read(make([]byte, 1)); n != 0 || err != io.EOF {
				t.Errorf("read past range end: n=%d err=%v", n, err)
			}
		}(r, dst)
	}
	readers.Wait()
	recv.Close()
	if !bytes.Equal(got, payload) {
		t.Fatal("striped sink/source round trip corrupted data")
	}
}

// TestModeEBoundSplitting feeds a *sequential* MODE E sender (blocks
// straddle stripe boundaries) into a receiver with stripe bounds set:
// ingest must split straddling blocks so each range reader sees exactly
// its bytes.
func TestModeEBoundSplitting(t *testing.T) {
	const bound = 4096
	payload := make([]byte, 3*bound)
	for i := range payload {
		payload[i] = byte(i)
	}
	sender, recv := pipeFanout(1)
	recv.SetStripeBounds([]int64{bound, 2 * bound})
	go func() {
		// 3000-byte writes never align with the 4096-byte bounds, so
		// most blocks straddle one (the last straddles none).
		rest := payload
		for len(rest) > 0 {
			n := 3000
			if n > len(rest) {
				n = len(rest)
			}
			if _, err := sender.Write(rest[:n]); err != nil {
				t.Error(err)
				return
			}
			rest = rest[n:]
		}
		sender.Close()
	}()
	got := make([]byte, len(payload))
	var readers sync.WaitGroup
	for i := 0; i < 3; i++ {
		r := recv.SourceAt(int64(i*bound), bound)
		dst := got[i*bound : (i+1)*bound]
		readers.Add(1)
		go func(r io.Reader, dst []byte) {
			defer readers.Done()
			if _, err := io.ReadFull(r, dst); err != nil {
				t.Error(err)
			}
		}(r, dst)
	}
	readers.Wait()
	recv.Close()
	if !bytes.Equal(got, payload) {
		t.Fatal("bound splitting corrupted data")
	}
}
