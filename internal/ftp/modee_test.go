package ftp

import (
	"bytes"
	"io"
	"math/rand"
	"net"
	"testing"
	"testing/quick"
)

// pipeFanout wires a MODE E sender to a receiver over n in-memory
// stream pairs.
func pipeFanout(n int) (*modeESender, *modeEReceiver) {
	recv := newModeEReceiver()
	conns := make([]net.Conn, n)
	for i := range conns {
		a, b := net.Pipe()
		conns[i] = a
		recv.attach(b)
	}
	return newModeESender(conns), recv
}

func TestModeESingleStream(t *testing.T) {
	sender, recv := pipeFanout(1)
	payload := bytes.Repeat([]byte("mode-e"), 1000)
	go func() {
		sender.Write(payload)
		sender.Close()
	}()
	got, err := io.ReadAll(recv)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("reassembly = %d bytes, %v", len(got), err)
	}
}

func TestModeEEmptyTransfer(t *testing.T) {
	sender, recv := pipeFanout(3)
	go sender.Close() // EODs + EOF only
	got, err := io.ReadAll(recv)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty transfer = %d bytes, %v", len(got), err)
	}
}

func TestModeECloseIdempotent(t *testing.T) {
	sender, recv := pipeFanout(2)
	go func() {
		sender.Close()
		sender.Close() // second close is a no-op
	}()
	if _, err := io.ReadAll(recv); err != nil {
		t.Fatal(err)
	}
	recv.Close()
	recv.Close()
}

// Property: any payload split into arbitrary write sizes over an
// arbitrary stripe count reassembles exactly.
func TestQuickModeEReassembly(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(payload []byte, stripes8 uint8) bool {
		stripes := int(stripes8%5) + 1
		sender, recv := pipeFanout(stripes)
		go func() {
			rest := payload
			for len(rest) > 0 {
				n := rng.Intn(len(rest)) + 1
				sender.Write(rest[:n])
				rest = rest[n:]
			}
			sender.Close()
		}()
		got, err := io.ReadAll(recv)
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestModeEGapDetected(t *testing.T) {
	// A receiver that sees EOF+EODs but a missing block must report a
	// gap rather than returning short data silently.
	a, b := net.Pipe()
	recv := newModeEReceiver()
	recv.attach(b)
	go func() {
		// Block at offset 100 only: offset 0..99 never arrives.
		writeBlockHeader(a, blockHeader{Count: 4, Offset: 100})
		a.Write([]byte("data"))
		writeBlockHeader(a, blockHeader{Desc: DescEOD | DescEOF, Offset: 1})
		a.Close()
	}()
	_, err := io.ReadAll(recv)
	if err == nil {
		t.Fatal("gap not detected")
	}
}

func TestHostPortRoundTrip(t *testing.T) {
	addr := &net.TCPAddr{IP: net.IPv4(10, 1, 2, 3), Port: 51234}
	hp, err := hostPort(addr)
	if err != nil {
		t.Fatal(err)
	}
	back, err := parseHostPort(hp)
	if err != nil || back != "10.1.2.3:51234" {
		t.Fatalf("round trip = %q, %v", back, err)
	}
	for _, bad := range []string{"", "1,2,3", "1,2,3,4,5,999", "a,b,c,d,e,f"} {
		if _, err := parseHostPort(bad); err == nil {
			t.Errorf("parseHostPort(%q) succeeded", bad)
		}
	}
}
