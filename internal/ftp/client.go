package ftp

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/textproto"
	"strconv"
	"strings"

	"nest/internal/bufpool"
	"nest/internal/gsi"
	"nest/internal/protocol"
)

// Client is an FTP/GridFTP control-connection client supporting stream
// and extended-block modes, parallel streams, and the split
// command/completion calls needed to orchestrate third-party
// transfers.
type Client struct {
	conn net.Conn
	text *textproto.Conn
	mode byte
	par  int
	// noTrcx marks a server that rejected SITE TRCX; further trace
	// context is skipped silently (old peers keep working untraced).
	noTrcx bool
	// lastTrace is the trace id echoed in the most recent 226 reply's
	// trcx= tail, or 0 when the server sent none.
	lastTrace uint64
}

// Dial connects to an FTP server and consumes the greeting.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, text: textproto.NewConn(conn), mode: 'S', par: 1}
	if _, _, err := c.text.ReadResponse(220); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// cmd sends one command and expects a reply in the given code class.
func (c *Client) cmd(expect int, format string, args ...interface{}) (int, string, error) {
	if err := c.text.PrintfLine(format, args...); err != nil {
		return 0, "", err
	}
	return c.text.ReadResponse(expect)
}

// LoginAnonymous performs the anonymous USER/PASS exchange.
func (c *Client) LoginAnonymous() error {
	if _, _, err := c.cmd(331, "USER anonymous"); err != nil {
		return err
	}
	_, _, err := c.cmd(230, "PASS nest@")
	return err
}

// LoginGSI performs the AUTH GSSAPI / ADAT exchange with a GSI
// credential.
func (c *Client) LoginGSI(cred *gsi.Credential) error {
	if _, _, err := c.cmd(334, "AUTH GSSAPI"); err != nil {
		return err
	}
	_, _, err := c.cmd(235, "ADAT %s", cred.Token())
	return err
}

// SetMode selects stream ('S') or extended block ('E') mode.
func (c *Client) SetMode(mode byte) error {
	_, _, err := c.cmd(200, "MODE %c", mode)
	if err == nil {
		c.mode = mode
	}
	return err
}

// SetParallelism asks for n parallel data streams. Parallelism only
// takes effect in MODE E, where blocks carry offsets and can ride any
// stream; in MODE S the data connection is a single unframed byte
// stream, so transfers ignore the setting and use one connection. The
// width is still recorded while in MODE S and applies once MODE E is
// selected. n < 1 is rejected locally without touching the wire.
func (c *Client) SetParallelism(n int) error {
	if n < 1 {
		return fmt.Errorf("ftp: parallelism %d out of range (want >= 1)", n)
	}
	_, _, err := c.cmd(200, "OPTS RETR Parallelism=%d,%d,%d;", n, n, n)
	if err == nil {
		c.par = n
	}
	return err
}

// Allo announces the size of the next STOR. A striped MODE E STOR
// needs the size before data arrives so the server can partition the
// file into stripe ranges; plain stream-mode uploads may skip it.
func (c *Client) Allo(size int64) error {
	_, _, err := c.cmd(200, "ALLO %d", size)
	return err
}

// Spas arms striped-passive mode and returns the server's data address;
// the peer may open any number of parallel connections to it (third-
// party orchestration: the destination listens, the source dials its
// stripe connections in).
func (c *Client) Spas() (string, error) {
	_, msg, err := c.cmd(227, "SPAS")
	if err != nil {
		return "", err
	}
	open := strings.IndexByte(msg, '(')
	closeP := strings.IndexByte(msg, ')')
	if open < 0 || closeP <= open {
		return "", fmt.Errorf("ftp: malformed SPAS reply %q", msg)
	}
	return parseHostPort(msg[open+1 : closeP])
}

// Spor points the server's next striped data connections at addr
// (host:port) — the address another server returned from Spas.
func (c *Client) Spor(addr string) error {
	hp, err := addrToHostPort(addr)
	if err != nil {
		return err
	}
	_, _, err = c.cmd(200, "SPOR %s", hp)
	return err
}

// SetTraceContext propagates distributed-trace context via SITE TRCX.
// The context is sticky on the server until replaced. Returns whether
// the peer accepted it: servers predating the extension answer 502 (or
// 501/504), which is remembered and the call becomes a silent no-op —
// tracing never breaks interop with old appliances. Only transport
// errors are returned.
func (c *Client) SetTraceContext(trace, parent uint64) (bool, error) {
	if c.noTrcx {
		return false, nil
	}
	_, _, err := c.cmd(200, "SITE TRCX %x %x", trace, parent)
	if err == nil {
		return true, nil
	}
	var te *textproto.Error
	if errors.As(err, &te) {
		c.noTrcx = true
		return false, nil
	}
	return false, err
}

// LastTrace returns the trace id the server echoed in its most recent
// 226 transfer-complete reply (the trcx= tail), or 0.
func (c *Client) LastTrace() uint64 { return c.lastTrace }

// readComplete consumes a 226 transfer-complete reply and captures the
// optional trcx= trace-id tail.
func (c *Client) readComplete() error {
	_, msg, err := c.text.ReadResponse(226)
	if err != nil {
		return err
	}
	c.lastTrace = 0
	if i := strings.LastIndex(msg, "trcx="); i >= 0 {
		if id, perr := strconv.ParseUint(strings.TrimSpace(msg[i+len("trcx="):]), 16, 64); perr == nil {
			c.lastTrace = id
		}
	}
	return nil
}

// Quit closes the session politely.
func (c *Client) Quit() error {
	c.cmd(221, "QUIT")
	return c.conn.Close()
}

// Pasv arms passive mode and returns the server's data address.
func (c *Client) Pasv() (string, error) {
	_, msg, err := c.cmd(227, "PASV")
	if err != nil {
		return "", err
	}
	open := strings.IndexByte(msg, '(')
	closeP := strings.IndexByte(msg, ')')
	if open < 0 || closeP <= open {
		return "", fmt.Errorf("ftp: malformed PASV reply %q", msg)
	}
	return parseHostPort(msg[open+1 : closeP])
}

// Port points the server's next data connection at addr (host:port).
func (c *Client) Port(addr string) error {
	hp, err := addrToHostPort(addr)
	if err != nil {
		return err
	}
	_, _, err = c.cmd(200, "PORT %s", hp)
	return err
}

func addrToHostPort(addr string) (string, error) {
	tcp, err := net.ResolveTCPAddr("tcp4", addr)
	if err != nil {
		return "", err
	}
	return hostPort(tcp)
}

// dialData opens n data connections to the server's passive address.
func (c *Client) dialData(n int) ([]net.Conn, error) {
	addr, err := c.Pasv()
	if err != nil {
		return nil, err
	}
	conns := make([]net.Conn, 0, n)
	for i := 0; i < n; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			for _, cc := range conns {
				cc.Close()
			}
			return nil, err
		}
		conns = append(conns, conn)
	}
	return conns, nil
}

// Retr downloads path into w, returning the byte count.
func (c *Client) Retr(path string, w io.Writer) (int64, error) {
	n := 1
	if c.mode == 'E' {
		n = c.par
	}
	conns, err := c.dialData(n)
	if err != nil {
		return 0, err
	}
	if _, _, err := c.cmd(150, "RETR %s", path); err != nil {
		for _, cc := range conns {
			cc.Close()
		}
		return 0, err
	}
	var moved int64
	if c.mode == 'E' {
		recv := newModeEReceiver()
		for _, cc := range conns {
			recv.attach(cc)
		}
		moved, err = io.Copy(w, recv)
		recv.Close()
	} else {
		moved, err = io.Copy(w, conns[0])
		conns[0].Close()
	}
	if err != nil {
		return moved, err
	}
	return moved, c.readComplete()
}

// Stor uploads r to path, returning the byte count.
func (c *Client) Stor(path string, r io.Reader) (int64, error) {
	n := 1
	if c.mode == 'E' {
		n = c.par
	}
	conns, err := c.dialData(n)
	if err != nil {
		return 0, err
	}
	if _, _, err := c.cmd(150, "STOR %s", path); err != nil {
		for _, cc := range conns {
			cc.Close()
		}
		return 0, err
	}
	var moved int64
	if c.mode == 'E' {
		sender := newModeESender(conns)
		moved, err = copyChunked(sender, r)
		if cerr := sender.Close(); err == nil {
			err = cerr
		}
	} else {
		moved, err = io.Copy(conns[0], r)
		if cerr := conns[0].Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return moved, err
	}
	return moved, c.readComplete()
}

// copyChunked feeds the MODE E sender in bounded writes so blocks stay
// reasonably sized. The chunk buffer is pooled: no 64 KB allocation
// per call.
func copyChunked(w io.Writer, r io.Reader) (int64, error) {
	bufp := bufpool.Get(protocol.ChunkSize)
	defer bufpool.Put(bufp)
	buf := *bufp
	var moved int64
	for {
		n, rerr := r.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return moved, werr
			}
			moved += int64(n)
		}
		if rerr == io.EOF {
			return moved, nil
		}
		if rerr != nil {
			return moved, rerr
		}
	}
}

// Nlst lists names in a directory.
func (c *Client) Nlst(path string) ([]string, error) {
	conns, err := c.dialData(1)
	if err != nil {
		return nil, err
	}
	if _, _, err := c.cmd(150, "NLST %s", path); err != nil {
		conns[0].Close()
		return nil, err
	}
	data, err := io.ReadAll(conns[0])
	conns[0].Close()
	if err != nil {
		return nil, err
	}
	if err := c.readComplete(); err != nil {
		return nil, err
	}
	var names []string
	for _, line := range strings.Split(string(data), "\r\n") {
		if line != "" {
			names = append(names, line)
		}
	}
	return names, nil
}

// Size returns a file's size via the SIZE extension.
func (c *Client) Size(path string) (int64, error) {
	_, msg, err := c.cmd(213, "SIZE %s", path)
	if err != nil {
		return 0, err
	}
	var n int64
	_, err = fmt.Sscanf(msg, "%d", &n)
	return n, err
}

// Dele removes a file.
func (c *Client) Dele(path string) error {
	_, _, err := c.cmd(250, "DELE %s", path)
	return err
}

// Mkd creates a directory.
func (c *Client) Mkd(path string) error {
	_, _, err := c.cmd(257, "MKD %s", path)
	return err
}

// Rmd removes a directory.
func (c *Client) Rmd(path string) error {
	_, _, err := c.cmd(250, "RMD %s", path)
	return err
}

// Cwd changes the working directory.
func (c *Client) Cwd(path string) error {
	_, _, err := c.cmd(250, "CWD %s", path)
	return err
}

// SetModeRaw issues MODE without tracking (tests).
func (c *Client) SetModeRaw(arg string) (int, string, error) {
	return c.cmd(0, "MODE %s", arg)
}

// BeginStor issues STOR and returns after the server's 150 go-ahead,
// leaving the completion reply pending (third-party orchestration: the
// data flows from another server).
func (c *Client) BeginStor(path string) error {
	_, _, err := c.cmd(150, "STOR %s", path)
	return err
}

// BeginRetr issues RETR and returns after the 150 go-ahead.
func (c *Client) BeginRetr(path string) error {
	_, _, err := c.cmd(150, "RETR %s", path)
	return err
}

// AwaitComplete consumes the pending 226 transfer-complete reply.
func (c *Client) AwaitComplete() error {
	return c.readComplete()
}
