package ftp

import (
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
)

// modeESender stripes written data across parallel streams as MODE E
// blocks: every Write becomes one block, assigned round-robin. Close
// emits EOD on every stream and EOF (carrying the stream count) on the
// first.
type modeESender struct {
	conns  []net.Conn
	next   int
	offset uint64
	closed bool
}

func newModeESender(conns []net.Conn) *modeESender {
	return &modeESender{conns: conns}
}

func (s *modeESender) Write(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	conn := s.conns[s.next%len(s.conns)]
	s.next++
	h := blockHeader{Count: uint64(len(p)), Offset: s.offset}
	if err := writeBlockHeader(conn, h); err != nil {
		return 0, err
	}
	if _, err := conn.Write(p); err != nil {
		return 0, err
	}
	s.offset += uint64(len(p))
	return len(p), nil
}

func (s *modeESender) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	var firstErr error
	for i, conn := range s.conns {
		h := blockHeader{Desc: DescEOD}
		if i == 0 {
			h.Desc |= DescEOF
			h.Offset = uint64(len(s.conns))
		}
		if err := writeBlockHeader(conn, h); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := conn.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// modeEReceiver reassembles MODE E blocks from parallel streams into a
// sequential byte stream (io.Reader), buffering out-of-order blocks
// until their offset is due. Streams may keep arriving (via attach)
// until the EOF block announces how many to expect.
type modeEReceiver struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending map[uint64][]byte // offset -> data
	nextOff uint64
	buf     []byte // current in-order run being consumed
	eods    int
	streams int // 0 until the EOF block announces the count
	err     error
	conns   []net.Conn
}

func newModeEReceiver() *modeEReceiver {
	r := &modeEReceiver{pending: make(map[uint64][]byte)}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// attach starts consuming blocks from one data stream.
func (r *modeEReceiver) attach(conn net.Conn) {
	r.mu.Lock()
	r.conns = append(r.conns, conn)
	r.mu.Unlock()
	go r.readStream(conn)
}

func (r *modeEReceiver) readStream(conn net.Conn) {
	for {
		h, err := readBlockHeader(conn)
		if err != nil {
			r.fail(fmt.Errorf("ftp: mode E stream: %w", err))
			return
		}
		var data []byte
		if h.Count > 0 {
			data = make([]byte, h.Count)
			if _, err := io.ReadFull(conn, data); err != nil {
				r.fail(fmt.Errorf("ftp: mode E payload: %w", err))
				return
			}
		}
		r.mu.Lock()
		if len(data) > 0 {
			r.pending[h.Offset] = data
		}
		if h.Desc&DescEOF != 0 {
			r.streams = int(h.Offset)
		}
		done := false
		if h.Desc&DescEOD != 0 {
			r.eods++
			done = true
		}
		r.cond.Broadcast()
		r.mu.Unlock()
		if done {
			return
		}
	}
}

func (r *modeEReceiver) fail(err error) {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.cond.Broadcast()
	r.mu.Unlock()
}

// finished reports (locked) whether all announced streams delivered
// their EOD.
func (r *modeEReceiver) finishedLocked() bool {
	return r.streams > 0 && r.eods >= r.streams
}

// Read implements io.Reader, delivering bytes in offset order.
func (r *modeEReceiver) Read(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if len(r.buf) == 0 {
			if data, ok := r.pending[r.nextOff]; ok {
				delete(r.pending, r.nextOff)
				r.nextOff += uint64(len(data))
				r.buf = data
			}
		}
		if len(r.buf) > 0 {
			n := copy(p, r.buf)
			r.buf = r.buf[n:]
			return n, nil
		}
		if r.err != nil {
			return 0, r.err
		}
		if r.finishedLocked() {
			if len(r.pending) > 0 {
				// Gap in offsets: data lost.
				offs := make([]uint64, 0, len(r.pending))
				for o := range r.pending {
					offs = append(offs, o)
				}
				sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
				return 0, fmt.Errorf("ftp: mode E gap at offset %d (next block %d)", r.nextOff, offs[0])
			}
			return 0, io.EOF
		}
		r.cond.Wait()
	}
}

// Close tears down all attached streams.
func (r *modeEReceiver) Close() error {
	r.mu.Lock()
	conns := r.conns
	r.conns = nil
	if r.err == nil && !r.finishedLocked() {
		r.err = io.ErrClosedPipe
	}
	r.cond.Broadcast()
	r.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	return nil
}
