package ftp

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"

	"nest/internal/bufpool"
)

// lockedConn serializes block writes on one data connection, so
// concurrent stripe writers sharing a connection never interleave a
// header with another block's payload.
type lockedConn struct {
	mu sync.Mutex
	c  net.Conn
}

// writeBlock frames p as one MODE E block at the given payload offset.
// The caller supplies its own header and vector scratch, so concurrent
// writers on the same connection contend only for the connection lock,
// and header+payload still leave as one vectored write (writev on TCP).
func (lc *lockedConn) writeBlock(hdr *[blockHeaderLen]byte, bufs *net.Buffers, off uint64, p []byte) error {
	hdr[0] = 0
	binary.BigEndian.PutUint64(hdr[1:9], uint64(len(p)))
	binary.BigEndian.PutUint64(hdr[9:17], off)
	*bufs = append((*bufs)[:0], hdr[:], p)
	lc.mu.Lock()
	_, err := bufs.WriteTo(lc.c)
	lc.mu.Unlock()
	return err
}

// modeESender stripes written data across parallel streams as MODE E
// blocks: every Write becomes one block, assigned round-robin. Close
// emits EOD on every stream and EOF (carrying the stream count) on the
// first. Header and payload go out as one vectored write (writev on
// TCP), so zero-copy extent chunks are never concatenated with their
// 17-byte block header in user space; hdr and bufs are reused scratch
// so the steady-state block path does not allocate.
//
// For striped transfers SinkAt hands out per-stripe writers instead:
// each stripe frames its own byte range on its own connection, and the
// sequential Write path goes unused.
type modeESender struct {
	conns      []*lockedConn
	next       int
	nextStripe int
	offset     uint64
	closed     bool
	hdr        [blockHeaderLen]byte
	bufs       net.Buffers
}

func newModeESender(conns []net.Conn) *modeESender {
	s := &modeESender{conns: make([]*lockedConn, len(conns))}
	for i, c := range conns {
		s.conns[i] = &lockedConn{c: c}
	}
	return s
}

func (s *modeESender) Write(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	conn := s.conns[s.next%len(s.conns)]
	s.next++
	if err := conn.writeBlock(&s.hdr, &s.bufs, s.offset, p); err != nil {
		return 0, err
	}
	s.offset += uint64(len(p))
	return len(p), nil
}

// SinkAt implements protocol.StripeSink: it returns a writer that
// frames its bytes as blocks addressed from the given payload offset.
// Stripes are assigned to data connections round-robin, so width W over
// N connections keeps all N busy. Call SinkAt before the stripe pumps
// start (the assignment cursor is not locked); the returned writers are
// then safe to use concurrently with each other.
func (s *modeESender) SinkAt(off int64) io.Writer {
	w := &stripeWriter{conn: s.conns[s.nextStripe%len(s.conns)], off: uint64(off)}
	s.nextStripe++
	return w
}

// stripeWriter frames one stripe's sequential writes as offset-addressed
// MODE E blocks on its assigned connection.
type stripeWriter struct {
	conn *lockedConn
	off  uint64
	hdr  [blockHeaderLen]byte
	bufs net.Buffers
}

func (w *stripeWriter) Write(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	if err := w.conn.writeBlock(&w.hdr, &w.bufs, w.off, p); err != nil {
		return 0, err
	}
	w.off += uint64(len(p))
	return len(p), nil
}

func (s *modeESender) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	var firstErr error
	for i, conn := range s.conns {
		h := blockHeader{Desc: DescEOD}
		if i == 0 {
			h.Desc |= DescEOF
			h.Offset = uint64(len(s.conns))
		}
		conn.mu.Lock()
		err := writeBlockHeader(conn.c, h)
		cerr := conn.c.Close()
		conn.mu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if cerr != nil && firstErr == nil {
			firstErr = cerr
		}
	}
	return firstErr
}

// modeEReceiver reassembles MODE E blocks from parallel streams into a
// sequential byte stream (io.Reader), buffering out-of-order blocks
// until their offset is due. Streams may keep arriving (via attach)
// until the EOF block announces how many to expect.
type modeEReceiver struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending map[uint64][]byte  // offset -> data
	backing map[uint64]*[]byte // offset -> pooled buffer behind pending data
	bounds  []uint64           // stripe partition offsets; blocks never straddle one
	nextOff uint64
	buf     []byte  // current in-order run being consumed
	bufp    *[]byte // pooled backing of buf; recycled once drained
	eods    int
	streams int // 0 until the EOF block announces the count
	err     error
	conns   []net.Conn
}

func newModeEReceiver() *modeEReceiver {
	r := &modeEReceiver{
		pending: make(map[uint64][]byte),
		backing: make(map[uint64]*[]byte),
	}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// attach starts consuming blocks from one data stream.
func (r *modeEReceiver) attach(conn net.Conn) {
	r.mu.Lock()
	r.conns = append(r.conns, conn)
	r.mu.Unlock()
	go r.readStream(conn)
}

func (r *modeEReceiver) readStream(conn net.Conn) {
	for {
		h, err := readBlockHeader(conn)
		if err != nil {
			r.fail(fmt.Errorf("ftp: mode E stream: %w", err))
			return
		}
		// Block payloads come from the shared buffer pool (heavy MODE E
		// senders emit one block per chunk, so a per-block make would
		// allocate the whole transfer again); the buffer is recycled as
		// soon as Read drains it, or by Close.
		var data []byte
		var datap *[]byte
		if h.Count > 0 {
			datap = bufpool.GetAtLeast(int(h.Count))
			data = *datap
			if _, err := io.ReadFull(conn, data); err != nil {
				bufpool.Put(datap)
				r.fail(fmt.Errorf("ftp: mode E payload: %w", err))
				return
			}
		}
		r.mu.Lock()
		if len(data) > 0 {
			r.ingestLocked(h.Offset, data, datap)
		}
		if h.Desc&DescEOF != 0 {
			r.streams = int(h.Offset)
		}
		done := false
		if h.Desc&DescEOD != 0 {
			r.eods++
			done = true
		}
		r.cond.Broadcast()
		r.mu.Unlock()
		if done {
			return
		}
	}
}

// ingestLocked files one arriving block into the reassembly map. When
// stripe bounds are set, a block straddling a bound is split so every
// stored block lies entirely within one stripe range — the first part
// keeps the original pooled backing (shrunk in place), the remainder is
// copied into a fresh pooled buffer and re-ingested (a block may cross
// several bounds). Caller holds r.mu.
func (r *modeEReceiver) ingestLocked(off uint64, data []byte, datap *[]byte) {
	for _, b := range r.bounds {
		if b > off && b < off+uint64(len(data)) {
			cut := b - off
			rest := data[cut:]
			restp := bufpool.GetAtLeast(len(rest))
			restData := (*restp)[:len(rest)]
			copy(restData, rest)
			r.storeLocked(off, data[:cut], datap)
			r.ingestLocked(b, restData, restp)
			return
		}
	}
	r.storeLocked(off, data, datap)
}

// storeLocked records a block, recycling any duplicate-offset block a
// misbehaving sender already delivered instead of leaking it from the
// pool. Caller holds r.mu.
func (r *modeEReceiver) storeLocked(off uint64, data []byte, datap *[]byte) {
	if prev, ok := r.backing[off]; ok {
		bufpool.Put(prev)
	}
	r.pending[off] = data
	r.backing[off] = datap
}

// SetStripeBounds implements protocol.StripeSource: it announces the
// payload offsets at which SourceAt range readers will partition the
// stream. Must be called before data arrives (the dispatcher does so
// between RecvData and starting the stripe pumps); blocks already
// ingested are not retroactively split.
func (r *modeEReceiver) SetStripeBounds(bounds []int64) {
	r.mu.Lock()
	r.bounds = r.bounds[:0]
	for _, b := range bounds {
		r.bounds = append(r.bounds, uint64(b))
	}
	r.mu.Unlock()
}

// SourceAt implements protocol.StripeSource: it returns a reader over
// the payload range [off, off+n), delivering that range's bytes in
// offset order and io.EOF at the range end. Readers for disjoint ranges
// are safe to use concurrently; interior range boundaries must have
// been announced via SetStripeBounds so no block straddles a range.
func (r *modeEReceiver) SourceAt(off, n int64) io.Reader {
	return &rangeReader{r: r, pos: uint64(off), end: uint64(off + n)}
}

// rangeReader consumes one stripe's payload range from the shared
// reassembly map. Each reader tracks its own in-order cursor; all
// coordination happens under the receiver's lock and cond.
type rangeReader struct {
	r    *modeEReceiver
	pos  uint64
	end  uint64
	buf  []byte
	bufp *[]byte
}

func (rr *rangeReader) Read(p []byte) (int, error) {
	r := rr.r
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if len(rr.buf) == 0 {
			rr.recycleLocked()
			if rr.pos >= rr.end {
				return 0, io.EOF
			}
			if data, ok := r.pending[rr.pos]; ok {
				delete(r.pending, rr.pos)
				rr.bufp = r.backing[rr.pos]
				delete(r.backing, rr.pos)
				if got := rr.pos + uint64(len(data)); got > rr.end {
					// A block crossing the range end means bounds were not
					// announced; fail loudly rather than deliver foreign bytes.
					bufpool.Put(rr.bufp)
					rr.bufp = nil
					return 0, fmt.Errorf("ftp: mode E block [%d,%d) crosses stripe end %d (missing SetStripeBounds?)", rr.pos, got, rr.end)
				}
				rr.pos += uint64(len(data))
				rr.buf = data
			}
		}
		if len(rr.buf) > 0 {
			n := copy(p, rr.buf)
			rr.buf = rr.buf[n:]
			if len(rr.buf) == 0 {
				rr.recycleLocked()
			}
			return n, nil
		}
		if r.err != nil {
			return 0, r.err
		}
		if r.finishedLocked() {
			return 0, fmt.Errorf("ftp: mode E gap at offset %d before stripe end %d", rr.pos, rr.end)
		}
		r.cond.Wait()
	}
}

// recycleLocked returns the drained block's pooled buffer. Caller holds
// the receiver's lock.
func (rr *rangeReader) recycleLocked() {
	if rr.bufp != nil {
		bufpool.Put(rr.bufp)
		rr.bufp = nil
		rr.buf = nil
	}
}

func (r *modeEReceiver) fail(err error) {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.cond.Broadcast()
	r.mu.Unlock()
}

// finished reports (locked) whether all announced streams delivered
// their EOD.
func (r *modeEReceiver) finishedLocked() bool {
	return r.streams > 0 && r.eods >= r.streams
}

// Read implements io.Reader, delivering bytes in offset order.
func (r *modeEReceiver) Read(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if len(r.buf) == 0 {
			r.recycleBufLocked()
			if data, ok := r.pending[r.nextOff]; ok {
				delete(r.pending, r.nextOff)
				r.bufp = r.backing[r.nextOff]
				delete(r.backing, r.nextOff)
				r.nextOff += uint64(len(data))
				r.buf = data
			}
		}
		if len(r.buf) > 0 {
			n := copy(p, r.buf)
			r.buf = r.buf[n:]
			if len(r.buf) == 0 {
				r.recycleBufLocked()
			}
			return n, nil
		}
		if r.err != nil {
			return 0, r.err
		}
		if r.finishedLocked() {
			if len(r.pending) > 0 {
				// Gap in offsets: data lost.
				offs := make([]uint64, 0, len(r.pending))
				for o := range r.pending {
					offs = append(offs, o)
				}
				sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
				return 0, fmt.Errorf("ftp: mode E gap at offset %d (next block %d)", r.nextOff, offs[0])
			}
			return 0, io.EOF
		}
		r.cond.Wait()
	}
}

// recycleBufLocked returns the drained in-order block's pooled buffer.
// Caller holds r.mu.
func (r *modeEReceiver) recycleBufLocked() {
	if r.bufp != nil {
		bufpool.Put(r.bufp)
		r.bufp = nil
		r.buf = nil
	}
}

// Close tears down all attached streams and recycles any block buffers
// still pending reassembly.
func (r *modeEReceiver) Close() error {
	r.mu.Lock()
	conns := r.conns
	r.conns = nil
	if r.err == nil && !r.finishedLocked() {
		r.err = io.ErrClosedPipe
	}
	r.recycleBufLocked()
	for off, bp := range r.backing {
		bufpool.Put(bp)
		delete(r.backing, off)
		delete(r.pending, off)
	}
	r.cond.Broadcast()
	r.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	return nil
}
