package ftp

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"

	"nest/internal/bufpool"
)

// modeESender stripes written data across parallel streams as MODE E
// blocks: every Write becomes one block, assigned round-robin. Close
// emits EOD on every stream and EOF (carrying the stream count) on the
// first. Header and payload go out as one vectored write (writev on
// TCP), so zero-copy extent chunks are never concatenated with their
// 17-byte block header in user space; hdr and bufs are reused scratch
// so the steady-state block path does not allocate.
type modeESender struct {
	conns  []net.Conn
	next   int
	offset uint64
	closed bool
	hdr    [blockHeaderLen]byte
	bufs   net.Buffers
}

func newModeESender(conns []net.Conn) *modeESender {
	return &modeESender{conns: conns}
}

func (s *modeESender) Write(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	conn := s.conns[s.next%len(s.conns)]
	s.next++
	s.hdr[0] = 0
	binary.BigEndian.PutUint64(s.hdr[1:9], uint64(len(p)))
	binary.BigEndian.PutUint64(s.hdr[9:17], s.offset)
	s.bufs = append(s.bufs[:0], s.hdr[:], p)
	if _, err := s.bufs.WriteTo(conn); err != nil {
		return 0, err
	}
	s.offset += uint64(len(p))
	return len(p), nil
}

func (s *modeESender) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	var firstErr error
	for i, conn := range s.conns {
		h := blockHeader{Desc: DescEOD}
		if i == 0 {
			h.Desc |= DescEOF
			h.Offset = uint64(len(s.conns))
		}
		if err := writeBlockHeader(conn, h); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := conn.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// modeEReceiver reassembles MODE E blocks from parallel streams into a
// sequential byte stream (io.Reader), buffering out-of-order blocks
// until their offset is due. Streams may keep arriving (via attach)
// until the EOF block announces how many to expect.
type modeEReceiver struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending map[uint64][]byte  // offset -> data
	backing map[uint64]*[]byte // offset -> pooled buffer behind pending data
	nextOff uint64
	buf     []byte  // current in-order run being consumed
	bufp    *[]byte // pooled backing of buf; recycled once drained
	eods    int
	streams int // 0 until the EOF block announces the count
	err     error
	conns   []net.Conn
}

func newModeEReceiver() *modeEReceiver {
	r := &modeEReceiver{
		pending: make(map[uint64][]byte),
		backing: make(map[uint64]*[]byte),
	}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// attach starts consuming blocks from one data stream.
func (r *modeEReceiver) attach(conn net.Conn) {
	r.mu.Lock()
	r.conns = append(r.conns, conn)
	r.mu.Unlock()
	go r.readStream(conn)
}

func (r *modeEReceiver) readStream(conn net.Conn) {
	for {
		h, err := readBlockHeader(conn)
		if err != nil {
			r.fail(fmt.Errorf("ftp: mode E stream: %w", err))
			return
		}
		// Block payloads come from the shared buffer pool (heavy MODE E
		// senders emit one block per chunk, so a per-block make would
		// allocate the whole transfer again); the buffer is recycled as
		// soon as Read drains it, or by Close.
		var data []byte
		var datap *[]byte
		if h.Count > 0 {
			datap = bufpool.GetAtLeast(int(h.Count))
			data = *datap
			if _, err := io.ReadFull(conn, data); err != nil {
				bufpool.Put(datap)
				r.fail(fmt.Errorf("ftp: mode E payload: %w", err))
				return
			}
		}
		r.mu.Lock()
		if len(data) > 0 {
			if prev, ok := r.backing[h.Offset]; ok {
				// Duplicate offset from a misbehaving sender: recycle the
				// replaced block instead of leaking it from the pool.
				bufpool.Put(prev)
			}
			r.pending[h.Offset] = data
			r.backing[h.Offset] = datap
		}
		if h.Desc&DescEOF != 0 {
			r.streams = int(h.Offset)
		}
		done := false
		if h.Desc&DescEOD != 0 {
			r.eods++
			done = true
		}
		r.cond.Broadcast()
		r.mu.Unlock()
		if done {
			return
		}
	}
}

func (r *modeEReceiver) fail(err error) {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.cond.Broadcast()
	r.mu.Unlock()
}

// finished reports (locked) whether all announced streams delivered
// their EOD.
func (r *modeEReceiver) finishedLocked() bool {
	return r.streams > 0 && r.eods >= r.streams
}

// Read implements io.Reader, delivering bytes in offset order.
func (r *modeEReceiver) Read(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if len(r.buf) == 0 {
			r.recycleBufLocked()
			if data, ok := r.pending[r.nextOff]; ok {
				delete(r.pending, r.nextOff)
				r.bufp = r.backing[r.nextOff]
				delete(r.backing, r.nextOff)
				r.nextOff += uint64(len(data))
				r.buf = data
			}
		}
		if len(r.buf) > 0 {
			n := copy(p, r.buf)
			r.buf = r.buf[n:]
			if len(r.buf) == 0 {
				r.recycleBufLocked()
			}
			return n, nil
		}
		if r.err != nil {
			return 0, r.err
		}
		if r.finishedLocked() {
			if len(r.pending) > 0 {
				// Gap in offsets: data lost.
				offs := make([]uint64, 0, len(r.pending))
				for o := range r.pending {
					offs = append(offs, o)
				}
				sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
				return 0, fmt.Errorf("ftp: mode E gap at offset %d (next block %d)", r.nextOff, offs[0])
			}
			return 0, io.EOF
		}
		r.cond.Wait()
	}
}

// recycleBufLocked returns the drained in-order block's pooled buffer.
// Caller holds r.mu.
func (r *modeEReceiver) recycleBufLocked() {
	if r.bufp != nil {
		bufpool.Put(r.bufp)
		r.bufp = nil
		r.buf = nil
	}
}

// Close tears down all attached streams and recycles any block buffers
// still pending reassembly.
func (r *modeEReceiver) Close() error {
	r.mu.Lock()
	conns := r.conns
	r.conns = nil
	if r.err == nil && !r.finishedLocked() {
		r.err = io.ErrClosedPipe
	}
	r.recycleBufLocked()
	for off, bp := range r.backing {
		bufpool.Put(bp)
		delete(r.backing, off)
		delete(r.pending, off)
	}
	r.cond.Broadcast()
	r.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	return nil
}
