package ftp_test

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"

	"nest/internal/ftp"
	"nest/internal/gsi"
	"nest/internal/nesttest"
	"nest/internal/transfer"
)

func start(t *testing.T) (*nesttest.Fixture, *ftp.Client) {
	t.Helper()
	f := nesttest.Start(t, ftp.NewHandler(ftp.Options{AllowAnon: true}), nesttest.Options{})
	f.GrantLot(t, gsi.Anonymous, 100*nesttest.MB)
	c, err := ftp.Dial(f.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.LoginAnonymous(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Quit() })
	return f, c
}

func TestStorRetrRoundTrip(t *testing.T) {
	_, c := start(t)
	payload := bytes.Repeat([]byte("ftp-data!"), 20000)
	n, err := c.Stor("/f.bin", bytes.NewReader(payload))
	if err != nil || n != int64(len(payload)) {
		t.Fatalf("Stor = %d, %v", n, err)
	}
	var buf bytes.Buffer
	n, err = c.Retr("/f.bin", &buf)
	if err != nil || n != int64(len(payload)) {
		t.Fatalf("Retr = %d, %v", n, err)
	}
	if !bytes.Equal(buf.Bytes(), payload) {
		t.Fatal("round trip corrupted data")
	}
}

func TestSize(t *testing.T) {
	_, c := start(t)
	c.Stor("/s", bytes.NewReader([]byte("12345678")))
	n, err := c.Size("/s")
	if err != nil || n != 8 {
		t.Errorf("Size = %d, %v", n, err)
	}
	if _, err := c.Size("/missing"); err == nil {
		t.Error("Size of missing file succeeded")
	}
}

func TestDirectoryCommands(t *testing.T) {
	_, c := start(t)
	if err := c.Mkd("/d"); err != nil {
		t.Fatal(err)
	}
	c.Stor("/d/a.txt", bytes.NewReader([]byte("a")))
	c.Stor("/d/b.txt", bytes.NewReader([]byte("b")))
	names, err := c.Nlst("/d")
	if err != nil || len(names) != 2 || names[0] != "a.txt" {
		t.Fatalf("Nlst = %v, %v", names, err)
	}
	// CWD + relative paths.
	if err := c.Cwd("/d"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := c.Retr("a.txt", &buf); err != nil || buf.String() != "a" {
		t.Fatalf("relative Retr = %q, %v", buf.String(), err)
	}
	if err := c.Cwd("/missing"); err == nil {
		t.Error("CWD to missing dir succeeded")
	}
	if err := c.Dele("/d/a.txt"); err != nil {
		t.Fatal(err)
	}
	if err := c.Rmd("/d"); err == nil {
		t.Error("RMD of non-empty dir succeeded")
	}
	c.Dele("/d/b.txt")
	if err := c.Rmd("/d"); err != nil {
		t.Fatal(err)
	}
}

func TestRetrMissing(t *testing.T) {
	_, c := start(t)
	var buf bytes.Buffer
	if _, err := c.Retr("/nope", &buf); err == nil {
		t.Error("Retr of missing file succeeded")
	}
	// Session is still usable.
	if err := c.Mkd("/after"); err != nil {
		t.Errorf("session dead after failed RETR: %v", err)
	}
}

func TestStorWithoutLotRejected(t *testing.T) {
	f := nesttest.Start(t, ftp.NewHandler(ftp.Options{AllowAnon: true}), nesttest.Options{})
	c, err := ftp.Dial(f.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Quit()
	if err := c.LoginAnonymous(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stor("/f", bytes.NewReader([]byte("x"))); err == nil {
		t.Error("Stor without a lot succeeded")
	}
}

func TestModeERejectedWhenDisabled(t *testing.T) {
	_, c := start(t) // plain FTP: MODE E off
	if err := c.SetMode('E'); err == nil {
		t.Error("MODE E accepted on plain FTP handler")
	}
}

func TestGSIRequiredRejectsAnonymous(t *testing.T) {
	ca, cred := nesttest.NewCA("john")
	f := nesttest.Start(t, ftp.NewHandler(ftp.Options{
		ProtoName:   "gridftp",
		Verifier:    gsi.NewVerifier(ca),
		RequireGSI:  true,
		EnableModeE: true,
	}), nesttest.Options{})
	c, err := ftp.Dial(f.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Quit()
	if err := c.LoginAnonymous(); err == nil {
		t.Fatal("anonymous login accepted on GSI-only server")
	}
	// GSI works on the same connection after the rejected USER.
	if err := c.LoginGSI(cred); err != nil {
		t.Fatal(err)
	}
}

func TestModeEParallelRoundTrip(t *testing.T) {
	ca, cred := nesttest.NewCA("john")
	f := nesttest.Start(t, ftp.NewHandler(ftp.Options{
		ProtoName:   "gridftp",
		Verifier:    gsi.NewVerifier(ca),
		RequireGSI:  true,
		EnableModeE: true,
	}), nesttest.Options{})
	f.GrantLot(t, "john", 100*nesttest.MB)
	c, err := ftp.Dial(f.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Quit()
	if err := c.LoginGSI(cred); err != nil {
		t.Fatal(err)
	}
	if err := c.SetMode('E'); err != nil {
		t.Fatal(err)
	}
	if err := c.SetParallelism(4); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("parallel-streams!"), 50000) // ~850KB
	n, err := c.Stor("/p.bin", bytes.NewReader(payload))
	if err != nil || n != int64(len(payload)) {
		t.Fatalf("Stor = %d, %v", n, err)
	}
	var buf bytes.Buffer
	n, err = c.Retr("/p.bin", &buf)
	if err != nil || n != int64(len(payload)) {
		t.Fatalf("Retr = %d, %v", n, err)
	}
	if !bytes.Equal(buf.Bytes(), payload) {
		t.Fatal("mode E round trip corrupted data")
	}
}

// rawControl opens a raw FTP control connection for protocol-level
// assertions.
func rawControl(t *testing.T, addr string) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	br := bufio.NewReader(conn)
	readReply(t, br) // 220 greeting
	return conn, br
}

func readReply(t *testing.T, br *bufio.Reader) string {
	t.Helper()
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("control read: %v", err)
	}
	return strings.TrimSpace(line)
}

func TestRawSessionCommands(t *testing.T) {
	f := nesttest.Start(t, ftp.NewHandler(ftp.Options{AllowAnon: true}), nesttest.Options{})
	conn, br := rawControl(t, f.Addr)
	send := func(cmd string) string {
		fmt.Fprintf(conn, "%s\r\n", cmd)
		return readReply(t, br)
	}
	if got := send("USER anonymous"); !strings.HasPrefix(got, "331") {
		t.Fatalf("USER: %q", got)
	}
	if got := send("PASS guest@"); !strings.HasPrefix(got, "230") {
		t.Fatalf("PASS: %q", got)
	}
	if got := send("SYST"); !strings.HasPrefix(got, "215") {
		t.Errorf("SYST: %q", got)
	}
	if got := send("TYPE I"); !strings.HasPrefix(got, "200") {
		t.Errorf("TYPE: %q", got)
	}
	if got := send("NOOP"); !strings.HasPrefix(got, "200") {
		t.Errorf("NOOP: %q", got)
	}
	if got := send("PWD"); !strings.HasPrefix(got, "257") {
		t.Errorf("PWD: %q", got)
	}
	if got := send("MODE Z"); !strings.HasPrefix(got, "504") {
		t.Errorf("MODE Z: %q", got)
	}
	if got := send("BOGUS"); !strings.HasPrefix(got, "502") {
		t.Errorf("BOGUS: %q", got)
	}
	// Approval precedes the data phase: a missing file fails with 550
	// even before any data connection is arranged.
	if got := send("RETR /x"); !strings.HasPrefix(got, "550") {
		t.Errorf("RETR of missing file: %q", got)
	}
	if got := send("QUIT"); !strings.HasPrefix(got, "221") {
		t.Errorf("QUIT: %q", got)
	}
}

func TestRejectedNonAnonymousUser(t *testing.T) {
	f := nesttest.Start(t, ftp.NewHandler(ftp.Options{AllowAnon: true}), nesttest.Options{})
	conn, br := rawControl(t, f.Addr)
	fmt.Fprintf(conn, "USER root\r\n")
	if got := readReply(t, br); !strings.HasPrefix(got, "530") {
		t.Errorf("USER root: %q", got)
	}
	// Anonymous still works on the same connection.
	fmt.Fprintf(conn, "USER anonymous\r\n")
	if got := readReply(t, br); !strings.HasPrefix(got, "331") {
		t.Errorf("USER anonymous after rejection: %q", got)
	}
}

func TestListLongFormat(t *testing.T) {
	f := nesttest.Start(t, ftp.NewHandler(ftp.Options{AllowAnon: true}), nesttest.Options{})
	f.GrantLot(t, gsi.Anonymous, nesttest.MB)
	c, err := ftp.Dial(f.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Quit()
	c.LoginAnonymous()
	c.Mkd("/dir")
	c.Stor("/hello.txt", bytes.NewReader([]byte("hello world!")))

	// Drive LIST through a raw data connection.
	conn, br := rawControl(t, f.Addr)
	fmt.Fprintf(conn, "USER anonymous\r\n")
	readReply(t, br)
	fmt.Fprintf(conn, "PASS x\r\n")
	readReply(t, br)
	fmt.Fprintf(conn, "PASV\r\n")
	pasv := readReply(t, br)
	open := strings.IndexByte(pasv, '(')
	closeP := strings.IndexByte(pasv, ')')
	if open < 0 || closeP < open {
		t.Fatalf("PASV reply %q", pasv)
	}
	parts := strings.Split(pasv[open+1:closeP], ",")
	var nums [6]int
	for i, p := range parts {
		fmt.Sscanf(strings.TrimSpace(p), "%d", &nums[i])
	}
	dataAddr := fmt.Sprintf("%d.%d.%d.%d:%d", nums[0], nums[1], nums[2], nums[3], nums[4]<<8|nums[5])
	data, err := net.Dial("tcp", dataAddr)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "LIST /\r\n")
	readReply(t, br) // 150
	listing, _ := io.ReadAll(data)
	data.Close()
	if got := readReply(t, br); !strings.HasPrefix(got, "226") {
		t.Fatalf("LIST completion: %q", got)
	}
	text := string(listing)
	if !strings.Contains(text, "hello.txt") || !strings.Contains(text, "dir") {
		t.Errorf("listing missing entries:\n%s", text)
	}
	// Long format: permissions column, dirs marked 'd', sizes present.
	for _, line := range strings.Split(strings.TrimSpace(text), "\r\n") {
		if strings.Contains(line, "dir") && !strings.HasPrefix(line, "d") {
			t.Errorf("directory line not marked: %q", line)
		}
		if strings.Contains(line, "hello.txt") && !strings.Contains(line, "12") {
			t.Errorf("file line missing size: %q", line)
		}
	}
}

func TestCdupAndPwd(t *testing.T) {
	f := nesttest.Start(t, ftp.NewHandler(ftp.Options{AllowAnon: true}), nesttest.Options{})
	f.GrantLot(t, gsi.Anonymous, nesttest.MB)
	c, err := ftp.Dial(f.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Quit()
	c.LoginAnonymous()
	c.Mkd("/a")
	c.Mkd("/a/b")
	if err := c.Cwd("/a/b"); err != nil {
		t.Fatal(err)
	}
	conn, br := rawControl(t, f.Addr)
	_ = conn
	_ = br
	// CDUP via the structured client: emulate with Cwd("..").
	if err := c.Cwd(".."); err != nil {
		t.Fatalf("Cwd(..): %v", err)
	}
	c.Stor("rel.txt", bytes.NewReader([]byte("x"))) // lands in /a
	var buf bytes.Buffer
	if _, err := c.Retr("/a/rel.txt", &buf); err != nil {
		t.Fatalf("relative stor landed wrong: %v", err)
	}
}

func TestRetrWithoutDataConnection(t *testing.T) {
	f := nesttest.Start(t, ftp.NewHandler(ftp.Options{AllowAnon: true}), nesttest.Options{})
	f.GrantLot(t, gsi.Anonymous, nesttest.MB)
	// Stage a real file first.
	c, err := ftp.Dial(f.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Quit()
	c.LoginAnonymous()
	c.Stor("/real", bytes.NewReader([]byte("data")))

	conn, br := rawControl(t, f.Addr)
	fmt.Fprintf(conn, "USER anonymous\r\n")
	readReply(t, br)
	fmt.Fprintf(conn, "PASS x\r\n")
	readReply(t, br)
	// RETR of an existing file without PASV/PORT: approval passes, the
	// data phase fails with 425 after the 150 go-ahead.
	fmt.Fprintf(conn, "RETR /real\r\n")
	if got := readReply(t, br); !strings.HasPrefix(got, "150") {
		t.Fatalf("RETR go-ahead: %q", got)
	}
	if got := readReply(t, br); !strings.HasPrefix(got, "425") {
		t.Fatalf("RETR data failure: %q", got)
	}
	// Session survives.
	fmt.Fprintf(conn, "NOOP\r\n")
	if got := readReply(t, br); !strings.HasPrefix(got, "200") {
		t.Errorf("NOOP after 425: %q", got)
	}
}

// TestSporStripedThirdPartyStyle drives SPAS/SPOR, the striped
// variants GridFTP uses for server-to-server transfers.
func TestSporStripedStorAndRetr(t *testing.T) {
	ca, cred := nesttest.NewCA("john")
	f := nesttest.Start(t, ftp.NewHandler(ftp.Options{
		ProtoName:   "gridftp",
		Verifier:    gsi.NewVerifier(ca),
		RequireGSI:  true,
		EnableModeE: true,
	}), nesttest.Options{})
	f.GrantLot(t, "john", 10*nesttest.MB)

	conn, br := rawControl(t, f.Addr)
	send := func(cmd string) string {
		fmt.Fprintf(conn, "%s\r\n", cmd)
		return readReply(t, br)
	}
	if got := send("AUTH GSSAPI"); !strings.HasPrefix(got, "334") {
		t.Fatalf("AUTH: %q", got)
	}
	if got := send("ADAT " + cred.Token()); !strings.HasPrefix(got, "235") {
		t.Fatalf("ADAT: %q", got)
	}
	if got := send("MODE E"); !strings.HasPrefix(got, "200") {
		t.Fatalf("MODE E: %q", got)
	}
	// SPAS behaves like PASV: one address accepting stripes.
	spas := send("SPAS")
	if !strings.HasPrefix(spas, "227") {
		t.Fatalf("SPAS: %q", spas)
	}
	// SPOR with a bad address errors cleanly.
	if got := send("SPOR 1,2,3"); !strings.HasPrefix(got, "501") {
		t.Errorf("malformed SPOR: %q", got)
	}
}

// TestSetParallelismValidation covers satellite guarantees of the
// parallelism knob: widths below 1 are rejected client-side without
// touching the wire, and a width set while in MODE S is simply ignored
// by stream-mode transfers (one connection, unframed bytes) until MODE
// E is selected.
func TestSetParallelismValidation(t *testing.T) {
	f := nesttest.Start(t, ftp.NewHandler(ftp.Options{
		AllowAnon:   true,
		EnableModeE: true,
	}), nesttest.Options{})
	f.GrantLot(t, gsi.Anonymous, 100*nesttest.MB)
	c, err := ftp.Dial(f.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Quit()
	if err := c.LoginAnonymous(); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, -1, -100} {
		if err := c.SetParallelism(n); err == nil {
			t.Errorf("SetParallelism(%d) accepted, want error", n)
		}
	}
	// Width recorded while still in MODE S: stream-mode transfers ignore
	// it and round-trip over a single connection.
	if err := c.SetParallelism(3); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("mode-s-ignores-width"), 5000)
	if n, err := c.Stor("/s.bin", bytes.NewReader(payload)); err != nil || n != int64(len(payload)) {
		t.Fatalf("Stor in mode S = %d, %v", n, err)
	}
	var buf bytes.Buffer
	if n, err := c.Retr("/s.bin", &buf); err != nil || n != int64(len(payload)) {
		t.Fatalf("Retr in mode S = %d, %v", n, err)
	}
	if !bytes.Equal(buf.Bytes(), payload) {
		t.Fatal("mode S round trip corrupted data")
	}
}

// TestStripedRetrStor drives intra-file parallelism over the loopback
// wire: with MODE E, width 4 and a multi-extent file, a RETR fans the
// file across four stripe pumps server-side (counted by the striped
// metrics), and a STOR preceded by ALLO stripes the receive path too.
func TestStripedRetrStor(t *testing.T) {
	ca, cred := nesttest.NewCA("john")
	f := nesttest.Start(t, ftp.NewHandler(ftp.Options{
		ProtoName:   "gridftp",
		Verifier:    gsi.NewVerifier(ca),
		RequireGSI:  true,
		EnableModeE: true,
	}), nesttest.Options{})
	f.GrantLot(t, "john", 100*nesttest.MB)
	c, err := ftp.Dial(f.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Quit()
	if err := c.LoginGSI(cred); err != nil {
		t.Fatal(err)
	}
	if err := c.SetMode('E'); err != nil {
		t.Fatal(err)
	}
	if err := c.SetParallelism(4); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 5*64*1024+1234) // 5 extents + a tail
	for i := range payload {
		payload[i] = byte(i * 7)
	}

	// Striped STOR: ALLO announces the size so the server can partition
	// the file before data arrives.
	before, _ := transfer.StripedStats()
	if err := c.Allo(int64(len(payload))); err != nil {
		t.Fatal(err)
	}
	if n, err := c.Stor("/big.bin", bytes.NewReader(payload)); err != nil || n != int64(len(payload)) {
		t.Fatalf("Stor = %d, %v", n, err)
	}
	afterStor, width := transfer.StripedStats()
	if afterStor != before+1 {
		t.Errorf("striped transfers after ALLO+STOR = %d, want %d", afterStor, before+1)
	}
	if width != 4 {
		t.Errorf("stripe width = %d, want 4", width)
	}

	// Striped RETR: the server knows the size, no ALLO needed.
	var buf bytes.Buffer
	if n, err := c.Retr("/big.bin", &buf); err != nil || n != int64(len(payload)) {
		t.Fatalf("Retr = %d, %v", n, err)
	}
	if afterRetr, _ := transfer.StripedStats(); afterRetr != afterStor+1 {
		t.Errorf("striped transfers after RETR = %d, want %d", afterRetr, afterStor+1)
	}
	if !bytes.Equal(buf.Bytes(), payload) {
		t.Fatal("striped round trip corrupted data")
	}

	// A STOR without ALLO (unknown size) must still work, sequentially.
	if n, err := c.Stor("/seq.bin", bytes.NewReader(payload)); err != nil || n != int64(len(payload)) {
		t.Fatalf("Stor without ALLO = %d, %v", n, err)
	}
	if afterSeq, _ := transfer.StripedStats(); afterSeq != afterStor+1 {
		t.Errorf("striped transfers after plain STOR = %d, want unchanged %d", afterSeq, afterStor+1)
	}
}
