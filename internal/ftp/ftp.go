// Package ftp implements the FTP protocol engine NeST uses for both
// plain FTP (RFC 959 subset, anonymous access) and GridFTP (Allcock et
// al.: GSI authentication via AUTH/ADAT, extended block MODE E with
// parallel data streams, and third-party transfers). The gridftp
// package wraps this engine with the Grid-facing configuration.
package ftp

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
)

// Proto is the plain-FTP protocol class name.
const Proto = "ftp"

// Mode E block descriptor bits (GridFTP extended block mode).
const (
	// DescEOD marks the final block on one data stream.
	DescEOD = 0x08
	// DescEOF carries, in its offset field, the number of data
	// streams (EOD blocks) the receiver must expect.
	DescEOF = 0x40
)

// blockHeaderLen is the wire size of a MODE E block header.
const blockHeaderLen = 17

// blockHeader is the 17-byte MODE E header: descriptor, byte count,
// offset.
type blockHeader struct {
	Desc   byte
	Count  uint64
	Offset uint64
}

func writeBlockHeader(w io.Writer, h blockHeader) error {
	var buf [blockHeaderLen]byte
	buf[0] = h.Desc
	binary.BigEndian.PutUint64(buf[1:9], h.Count)
	binary.BigEndian.PutUint64(buf[9:17], h.Offset)
	_, err := w.Write(buf[:])
	return err
}

func readBlockHeader(r io.Reader) (blockHeader, error) {
	var buf [blockHeaderLen]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return blockHeader{}, err
	}
	return blockHeader{
		Desc:   buf[0],
		Count:  binary.BigEndian.Uint64(buf[1:9]),
		Offset: binary.BigEndian.Uint64(buf[9:17]),
	}, nil
}

// hostPort formats an address for the PORT/PASV 227 h1,h2,h3,h4,p1,p2
// form.
func hostPort(addr net.Addr) (string, error) {
	tcp, ok := addr.(*net.TCPAddr)
	if !ok {
		return "", fmt.Errorf("ftp: non-TCP address %v", addr)
	}
	ip := tcp.IP.To4()
	if ip == nil {
		return "", fmt.Errorf("ftp: PASV requires IPv4, have %v", tcp.IP)
	}
	return fmt.Sprintf("%d,%d,%d,%d,%d,%d",
		ip[0], ip[1], ip[2], ip[3], tcp.Port>>8, tcp.Port&0xff), nil
}

// parseHostPort parses the h1,h2,h3,h4,p1,p2 form into host:port.
func parseHostPort(s string) (string, error) {
	parts := strings.Split(strings.TrimSpace(s), ",")
	if len(parts) != 6 {
		return "", fmt.Errorf("ftp: malformed host-port %q", s)
	}
	nums := make([]int, 6)
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 0 || n > 255 {
			return "", fmt.Errorf("ftp: malformed host-port %q", s)
		}
		nums[i] = n
	}
	return fmt.Sprintf("%d.%d.%d.%d:%d",
		nums[0], nums[1], nums[2], nums[3], nums[4]<<8|nums[5]), nil
}
