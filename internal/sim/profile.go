package sim

import "time"

// Profile describes the hardware and operating-system personality a
// simulated NeST runs on: network and disk characteristics plus the
// costs of the three concurrency mechanisms. The two stock profiles
// correspond to the paper's testbeds (Section 7): Linux 2.2.19 Pentiums
// with IBM 9LZX disks on Gigabit Ethernet, and Solaris 8 Netra T1s on
// 100 Mbit/s Ethernet.
type Profile struct {
	Name string

	// Network.
	LinkMBps float64       // effective shared-medium capacity
	RTT      time.Duration // small-message round trip

	// Disk.
	DiskMBps  float64
	Seek      time.Duration
	CacheSize int64 // kernel buffer-cache capacity in bytes

	// Concurrency mechanism costs.
	ThreadSpawn   time.Duration // create+destroy a kernel thread
	CtxSwitch     time.Duration // thread context switch, charged per chunk
	ProcSpawn     time.Duration // fork+exec handoff to a process worker
	ProcSwitch    time.Duration // process context switch, charged per chunk
	EventDispatch time.Duration // event-loop dispatch, charged per chunk

	// Per-request fixed server cost (accept, parse, respond).
	RequestCPU time.Duration
}

// LinuxGbE is the Linux 2.2.19 / Gigabit Ethernet cluster profile. The
// ~35 MB/s effective link matches the paper's observed in-cache peak
// (Figure 3); the disk matches an IBM 9LZX (~22 MB/s outer-zone,
// ~8.5 ms positioning). Linux 2.2 kernel threads are cheap relative to
// Solaris LWPs but still far from an event dispatch.
func LinuxGbE() Profile {
	return Profile{
		Name:          "linux-2.2-gbe",
		LinkMBps:      35.5,
		RTT:           180 * time.Microsecond,
		DiskMBps:      22,
		Seek:          8500 * time.Microsecond,
		CacheSize:     96 * MB,
		ThreadSpawn:   120 * time.Microsecond,
		CtxSwitch:     9 * time.Microsecond,
		ProcSpawn:     450 * time.Microsecond,
		ProcSwitch:    14 * time.Microsecond,
		EventDispatch: 3 * time.Microsecond,
		RequestCPU:    160 * time.Microsecond,
	}
}

// Solaris100 is the Solaris 8 Netra T1 / 100 Mbit Ethernet profile.
// Thread operations on Solaris 8 LWPs are markedly more expensive,
// which is why the event model wins on small in-cache requests
// (Figure 5, left).
func Solaris100() Profile {
	return Profile{
		Name:          "solaris-8-100mbit",
		LinkMBps:      11.2,
		RTT:           350 * time.Microsecond,
		DiskMBps:      18,
		Seek:          9500 * time.Microsecond,
		CacheSize:     64 * MB,
		ThreadSpawn:   900 * time.Microsecond,
		CtxSwitch:     45 * time.Microsecond,
		ProcSpawn:     2500 * time.Microsecond,
		ProcSwitch:    70 * time.Microsecond,
		EventDispatch: 6 * time.Microsecond,
		RequestCPU:    420 * time.Microsecond,
	}
}

// Host bundles the shared resources of one simulated machine.
type Host struct {
	Clock   Clock
	Profile Profile
	Link    *Link
	Disk    *Disk
	CPU     *CPU
}

// NewHost builds a host from a profile on the given clock.
func NewHost(clock Clock, p Profile) *Host {
	return &Host{
		Clock:   clock,
		Profile: p,
		Link:    NewLink(clock, p.LinkMBps, p.RTT),
		Disk:    NewDisk(clock, p.DiskMBps, p.Seek),
		CPU:     NewCPU(clock),
	}
}
