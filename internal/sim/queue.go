package sim

import "sync"

// Queue is an unbounded FIFO queue whose blocking Pop cooperates with a
// Clock, so virtual-time simulations can detect quiescence while a
// consumer waits. With a RealClock it behaves like an ordinary
// channel-backed queue.
type Queue[T any] struct {
	clock   Clock
	mu      sync.Mutex
	items   []T
	waiters []chan popResult[T]
	closed  bool
}

type popResult[T any] struct {
	v  T
	ok bool
}

// NewQueue returns an empty queue bound to clock.
func NewQueue[T any](clock Clock) *Queue[T] {
	return &Queue[T]{clock: clock}
}

// Push appends v. It reports false (dropping v) if the queue is closed.
// Push never blocks.
func (q *Queue[T]) Push(v T) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	if len(q.waiters) > 0 {
		ch := q.waiters[0]
		q.waiters = q.waiters[1:]
		q.mu.Unlock()
		q.clock.Unpark()
		ch <- popResult[T]{v: v, ok: true}
		return true
	}
	q.items = append(q.items, v)
	q.mu.Unlock()
	return true
}

// Pop removes and returns the head, blocking until an item arrives or
// the queue is closed. ok is false only when the queue is closed and
// drained.
func (q *Queue[T]) Pop() (v T, ok bool) {
	q.mu.Lock()
	if len(q.items) > 0 {
		v = q.items[0]
		q.items = q.items[1:]
		q.mu.Unlock()
		return v, true
	}
	if q.closed {
		q.mu.Unlock()
		return v, false
	}
	ch := make(chan popResult[T], 1)
	q.waiters = append(q.waiters, ch)
	q.mu.Unlock()
	q.clock.Park()
	r := <-ch
	return r.v, r.ok
}

// TryPop removes and returns the head without blocking.
func (q *Queue[T]) TryPop() (v T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return v, false
	}
	v = q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Close marks the queue closed and releases all blocked consumers with
// ok == false. Items already queued may still be drained with Pop.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	waiters := q.waiters
	q.waiters = nil
	q.mu.Unlock()
	for _, ch := range waiters {
		q.clock.Unpark()
		ch <- popResult[T]{}
	}
}

// WaitGroup is a clock-aware analogue of sync.WaitGroup.
type WaitGroup struct {
	clock Clock
	mu    sync.Mutex
	n     int
	done  []chan struct{}
}

// NewWaitGroup returns a WaitGroup bound to clock.
func NewWaitGroup(clock Clock) *WaitGroup { return &WaitGroup{clock: clock} }

// Add increments the counter by delta.
func (w *WaitGroup) Add(delta int) {
	w.mu.Lock()
	w.n += delta
	if w.n < 0 {
		w.mu.Unlock()
		panic("sim: negative WaitGroup counter")
	}
	var wake []chan struct{}
	if w.n == 0 {
		wake = w.done
		w.done = nil
	}
	w.mu.Unlock()
	for _, ch := range wake {
		w.clock.Unpark()
		ch <- struct{}{}
	}
}

// Done decrements the counter by one.
func (w *WaitGroup) Done() { w.Add(-1) }

// Wait blocks until the counter reaches zero.
func (w *WaitGroup) Wait() {
	w.mu.Lock()
	if w.n == 0 {
		w.mu.Unlock()
		return
	}
	ch := make(chan struct{}, 1)
	w.done = append(w.done, ch)
	w.mu.Unlock()
	w.clock.Park()
	<-ch
}

// Gate is a counting semaphore with clock-aware blocking Acquire.
type Gate struct {
	clock   Clock
	mu      sync.Mutex
	tokens  int
	waiters []chan struct{}
}

// NewGate returns a semaphore with n initial tokens.
func NewGate(clock Clock, n int) *Gate { return &Gate{clock: clock, tokens: n} }

// Acquire takes one token, blocking until one is available.
func (g *Gate) Acquire() {
	g.mu.Lock()
	if g.tokens > 0 {
		g.tokens--
		g.mu.Unlock()
		return
	}
	ch := make(chan struct{}, 1)
	g.waiters = append(g.waiters, ch)
	g.mu.Unlock()
	g.clock.Park()
	<-ch
}

// Release returns one token, waking a blocked Acquire if any.
func (g *Gate) Release() {
	g.mu.Lock()
	if len(g.waiters) > 0 {
		ch := g.waiters[0]
		g.waiters = g.waiters[1:]
		g.mu.Unlock()
		g.clock.Unpark()
		ch <- struct{}{}
		return
	}
	g.tokens++
	g.mu.Unlock()
}
