// Package sim provides the simulation substrate used by the NeST
// experiment harness: a virtual clock with managed goroutines,
// clock-aware synchronization primitives, and resource models for
// network links and disks.
//
// The same transfer-manager, scheduler, cache and quota code that runs
// the live appliance runs under this substrate; only the notion of time
// and the cost of I/O differ. With the RealClock all primitives degrade
// to their native Go equivalents, so live servers pay no simulation tax.
package sim

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Clock abstracts time for components that must run identically in live
// and simulated mode. Durations are relative to an arbitrary epoch.
type Clock interface {
	// Now returns the current time since the clock's epoch.
	Now() time.Duration
	// Sleep pauses the calling goroutine for d. Non-positive d returns
	// immediately (but still yields in virtual mode so other runnable
	// goroutines make progress deterministically).
	Sleep(d time.Duration)
	// Go runs fn in a new goroutine managed by this clock. All
	// goroutines that block on simulated resources must be started
	// through Go (or bracketed with BlockOn) so the virtual clock can
	// detect quiescence.
	Go(fn func())
	// Park marks the calling goroutine as blocked. The goroutine must
	// then wait for a signal from a waker that calls Unpark *before*
	// signaling; that handoff keeps the virtual clock's runnable count
	// exact so time never advances past a pending wake-up. The
	// clock-aware primitives in this package (Queue, Gate, WaitGroup)
	// encapsulate the pattern.
	Park()
	// Unpark accounts for one parked goroutine that the caller is about
	// to make runnable. Call it before delivering the wake-up signal.
	Unpark()
	// BlockOn marks the calling goroutine as blocked for the duration
	// of wait, for wakers that are not clock-aware. Because the clock
	// learns of the wake-up only after wait returns, virtual time may
	// advance slightly past the signal; use Park/Unpark (or the
	// primitives built on them) on simulation hot paths.
	BlockOn(wait func())
}

// RealClock is a Clock backed by wall-clock time. Its zero value is not
// usable; call NewRealClock.
type RealClock struct {
	epoch time.Time
}

// NewRealClock returns a Clock that reports real elapsed time.
func NewRealClock() *RealClock { return &RealClock{epoch: time.Now()} }

// Now returns wall-clock time elapsed since the clock was created.
func (c *RealClock) Now() time.Duration { return time.Since(c.epoch) }

// Sleep pauses for d of real time.
func (c *RealClock) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// Go starts fn as an ordinary goroutine.
func (c *RealClock) Go(fn func()) { go fn() }

// Park is a no-op for real time.
func (c *RealClock) Park() {}

// Unpark is a no-op for real time.
func (c *RealClock) Unpark() {}

// BlockOn simply invokes wait; real goroutines block natively.
func (c *RealClock) BlockOn(wait func()) { wait() }

// VirtualClock is a discrete-event virtual clock. Time advances only
// when every managed goroutine is blocked (sleeping or in BlockOn), at
// which point the clock jumps to the earliest pending wake-up. This
// yields deterministic, instantaneous simulation of long scenarios.
type VirtualClock struct {
	mu       sync.Mutex
	now      time.Duration
	active   int // runnable managed goroutines
	sleepers sleeperHeap
	seq      int64 // tie-breaker for deterministic wake order
}

type sleeper struct {
	wake time.Duration
	seq  int64
	ch   chan struct{}
}

type sleeperHeap []sleeper

func (h sleeperHeap) Len() int { return len(h) }
func (h sleeperHeap) Less(i, j int) bool {
	if h[i].wake != h[j].wake {
		return h[i].wake < h[j].wake
	}
	return h[i].seq < h[j].seq
}
func (h sleeperHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *sleeperHeap) Push(x interface{}) { *h = append(*h, x.(sleeper)) }
func (h *sleeperHeap) Pop() interface{} {
	old := *h
	n := len(old)
	s := old[n-1]
	*h = old[:n-1]
	return s
}

// NewVirtualClock returns a virtual clock positioned at time zero with
// no managed goroutines.
func NewVirtualClock() *VirtualClock { return &VirtualClock{} }

// Now returns the current virtual time.
func (c *VirtualClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep blocks the calling managed goroutine for d of virtual time.
func (c *VirtualClock) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	c.seq++
	s := sleeper{wake: c.now + d, seq: c.seq, ch: make(chan struct{})}
	heap.Push(&c.sleepers, s)
	c.active--
	c.maybeAdvanceLocked()
	c.mu.Unlock()
	<-s.ch
}

// SleepUntil blocks until virtual time t (no-op if t has passed).
func (c *VirtualClock) SleepUntil(t time.Duration) {
	c.mu.Lock()
	now := c.now
	c.mu.Unlock()
	c.Sleep(t - now)
}

// Go runs fn as a managed goroutine counted toward quiescence.
func (c *VirtualClock) Go(fn func()) {
	c.mu.Lock()
	c.active++
	c.mu.Unlock()
	go func() {
		defer c.exit()
		fn()
	}()
}

func (c *VirtualClock) exit() {
	c.mu.Lock()
	c.active--
	c.maybeAdvanceLocked()
	c.mu.Unlock()
}

// Park marks the calling goroutine blocked; a clock-aware waker must
// later call Unpark before signaling it.
func (c *VirtualClock) Park() {
	c.mu.Lock()
	c.active--
	c.maybeAdvanceLocked()
	c.mu.Unlock()
}

// Unpark accounts for one goroutine the caller is about to wake.
func (c *VirtualClock) Unpark() {
	c.mu.Lock()
	c.active++
	c.mu.Unlock()
}

// BlockOn marks the goroutine idle while wait runs, for wakers that are
// not clock-aware. Prefer the Park/Unpark-based primitives on hot
// paths; see the Clock interface documentation.
func (c *VirtualClock) BlockOn(wait func()) {
	c.Park()
	wait()
	c.mu.Lock()
	c.active++
	c.mu.Unlock()
}

// Run executes fn as the root managed goroutine and blocks the (real)
// caller until fn and every goroutine it spawned via Go have finished
// or are permanently blocked. It is the entry point for simulations.
func (c *VirtualClock) Run(fn func()) {
	done := make(chan struct{})
	c.Go(func() {
		defer close(done)
		fn()
	})
	<-done
}

// maybeAdvanceLocked advances virtual time when no goroutine is
// runnable. It wakes exactly one sleeper (the earliest); that sleeper
// becomes runnable and may in turn unblock others.
func (c *VirtualClock) maybeAdvanceLocked() {
	for c.active == 0 && c.sleepers.Len() > 0 {
		s := heap.Pop(&c.sleepers).(sleeper)
		if s.wake > c.now {
			c.now = s.wake
		}
		c.active++
		close(s.ch)
		return
	}
}

// String reports clock state for debugging.
func (c *VirtualClock) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return fmt.Sprintf("virtclock{now=%v active=%d sleepers=%d}", c.now, c.active, c.sleepers.Len())
}
