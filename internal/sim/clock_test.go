package sim

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestVirtualClockAdvancesOnSleep(t *testing.T) {
	c := NewVirtualClock()
	c.Run(func() {
		if c.Now() != 0 {
			t.Errorf("initial Now = %v, want 0", c.Now())
		}
		c.Sleep(5 * time.Second)
		if c.Now() != 5*time.Second {
			t.Errorf("Now after sleep = %v, want 5s", c.Now())
		}
	})
}

func TestVirtualClockNegativeSleep(t *testing.T) {
	c := NewVirtualClock()
	c.Run(func() {
		c.Sleep(-time.Second)
		if c.Now() != 0 {
			t.Errorf("Now = %v, want 0 after negative sleep", c.Now())
		}
	})
}

func TestVirtualClockConcurrentSleepers(t *testing.T) {
	c := NewVirtualClock()
	var order []int
	var mu sync.Mutex
	c.Run(func() {
		wg := NewWaitGroup(c)
		for i := 1; i <= 3; i++ {
			i := i
			wg.Add(1)
			c.Go(func() {
				defer wg.Done()
				c.Sleep(time.Duration(4-i) * time.Second) // 3s, 2s, 1s
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
			})
		}
		wg.Wait()
		if c.Now() != 3*time.Second {
			t.Errorf("Now = %v, want 3s", c.Now())
		}
	})
	want := []int{3, 2, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("wake order = %v, want %v", order, want)
		}
	}
}

func TestVirtualClockSleepUntil(t *testing.T) {
	c := NewVirtualClock()
	c.Run(func() {
		c.SleepUntil(2 * time.Second)
		if c.Now() != 2*time.Second {
			t.Errorf("Now = %v, want 2s", c.Now())
		}
		c.SleepUntil(time.Second) // in the past: no-op
		if c.Now() != 2*time.Second {
			t.Errorf("Now = %v after past SleepUntil, want 2s", c.Now())
		}
	})
}

func TestVirtualClockDeterministicTieBreak(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		c := NewVirtualClock()
		var order []int
		var mu sync.Mutex
		c.Run(func() {
			wg := NewWaitGroup(c)
			for i := 0; i < 4; i++ {
				i := i
				wg.Add(1)
				c.Go(func() {
					defer wg.Done()
					c.Sleep(time.Duration(i) * time.Millisecond)
					c.Sleep(time.Second) // all wake at distinct registration order
					mu.Lock()
					order = append(order, i)
					mu.Unlock()
				})
			}
			wg.Wait()
		})
		for i := range order {
			if order[i] != i {
				t.Fatalf("trial %d: order = %v, want sorted", trial, order)
			}
		}
	}
}

func TestRealClock(t *testing.T) {
	c := NewRealClock()
	start := c.Now()
	c.Sleep(10 * time.Millisecond)
	if c.Now()-start < 9*time.Millisecond {
		t.Errorf("real clock slept too little: %v", c.Now()-start)
	}
	done := make(chan struct{})
	c.Go(func() { close(done) })
	<-done
}

func TestQueueFIFO(t *testing.T) {
	c := NewVirtualClock()
	c.Run(func() {
		q := NewQueue[int](c)
		for i := 0; i < 10; i++ {
			if !q.Push(i) {
				t.Fatalf("Push(%d) failed", i)
			}
		}
		if q.Len() != 10 {
			t.Fatalf("Len = %d, want 10", q.Len())
		}
		for i := 0; i < 10; i++ {
			v, ok := q.Pop()
			if !ok || v != i {
				t.Fatalf("Pop = %d,%v, want %d,true", v, ok, i)
			}
		}
	})
}

func TestQueueBlockingPop(t *testing.T) {
	c := NewVirtualClock()
	c.Run(func() {
		q := NewQueue[string](c)
		got := make(chan string, 1)
		c.Go(func() {
			v, _ := q.Pop()
			got <- v
		})
		c.Go(func() {
			c.Sleep(time.Second)
			q.Push("hello")
		})
		var v string
		c.BlockOn(func() { v = <-got })
		if v != "hello" {
			t.Errorf("got %q, want hello", v)
		}
	})
}

func TestQueueClose(t *testing.T) {
	c := NewVirtualClock()
	c.Run(func() {
		q := NewQueue[int](c)
		q.Push(1)
		q.Close()
		if q.Push(2) {
			t.Error("Push succeeded on closed queue")
		}
		if v, ok := q.Pop(); !ok || v != 1 {
			t.Errorf("Pop = %d,%v, want 1,true (drain)", v, ok)
		}
		if _, ok := q.Pop(); ok {
			t.Error("Pop on drained closed queue reported ok")
		}
	})
}

func TestQueueCloseWakesWaiters(t *testing.T) {
	c := NewVirtualClock()
	c.Run(func() {
		q := NewQueue[int](c)
		woke := make(chan bool, 2)
		for i := 0; i < 2; i++ {
			c.Go(func() {
				_, ok := q.Pop()
				woke <- ok
			})
		}
		c.Sleep(time.Millisecond)
		q.Close()
		for i := 0; i < 2; i++ {
			var ok bool
			c.BlockOn(func() { ok = <-woke })
			if ok {
				t.Error("closed Pop reported ok = true")
			}
		}
	})
}

func TestQueueTryPop(t *testing.T) {
	c := NewVirtualClock()
	q := NewQueue[int](c)
	if _, ok := q.TryPop(); ok {
		t.Error("TryPop on empty queue reported ok")
	}
	q.Push(7)
	if v, ok := q.TryPop(); !ok || v != 7 {
		t.Errorf("TryPop = %d,%v, want 7,true", v, ok)
	}
}

func TestGate(t *testing.T) {
	c := NewVirtualClock()
	c.Run(func() {
		g := NewGate(c, 2)
		var inFlight, maxInFlight int32
		wg := NewWaitGroup(c)
		for i := 0; i < 8; i++ {
			wg.Add(1)
			c.Go(func() {
				defer wg.Done()
				g.Acquire()
				n := atomic.AddInt32(&inFlight, 1)
				for {
					m := atomic.LoadInt32(&maxInFlight)
					if n <= m || atomic.CompareAndSwapInt32(&maxInFlight, m, n) {
						break
					}
				}
				c.Sleep(time.Second)
				atomic.AddInt32(&inFlight, -1)
				g.Release()
			})
		}
		wg.Wait()
		if got := atomic.LoadInt32(&maxInFlight); got > 2 {
			t.Errorf("max concurrent holders = %d, want <= 2", got)
		}
		// 8 jobs, 2 wide, 1s each => 4s.
		if c.Now() != 4*time.Second {
			t.Errorf("elapsed = %v, want 4s", c.Now())
		}
	})
}

func TestLinkSerialization(t *testing.T) {
	c := NewVirtualClock()
	c.Run(func() {
		l := NewLink(c, 10, 0) // 10 MB/s
		wg := NewWaitGroup(c)
		for i := 0; i < 2; i++ {
			wg.Add(1)
			c.Go(func() {
				defer wg.Done()
				l.Send(10 * MB)
			})
		}
		wg.Wait()
		// Two 10MB sends on a 10MB/s shared link: 2 seconds.
		if got := c.Now(); got != 2*time.Second {
			t.Errorf("elapsed = %v, want 2s", got)
		}
		if l.Moved() != 20*MB {
			t.Errorf("Moved = %d, want %d", l.Moved(), 20*MB)
		}
	})
}

func TestLinkRoundTrip(t *testing.T) {
	c := NewVirtualClock()
	c.Run(func() {
		l := NewLink(c, 10, 2*time.Millisecond)
		l.RoundTrip(0)
		if c.Now() != 2*time.Millisecond {
			t.Errorf("elapsed = %v, want 2ms", c.Now())
		}
	})
}

func TestDiskSeekOnFileSwitch(t *testing.T) {
	c := NewVirtualClock()
	c.Run(func() {
		d := NewDisk(c, 10, 10*time.Millisecond)
		d.Read("a", 10*MB) // seek + 1s
		seq := c.Now()
		if seq != time.Second+10*time.Millisecond {
			t.Errorf("first read took %v, want 1.01s", seq)
		}
		d.Read("a", 10*MB) // sequential: no seek
		if got := c.Now() - seq; got != time.Second {
			t.Errorf("sequential read took %v, want 1s", got)
		}
		before := c.Now()
		d.Read("b", 1) // switch: seek again
		if got := c.Now() - before; got < 10*time.Millisecond {
			t.Errorf("switched read took %v, want >= seek 10ms", got)
		}
	})
}

func TestDiskWriteSlow(t *testing.T) {
	c := NewVirtualClock()
	c.Run(func() {
		d := NewDisk(c, 10, 0)
		d.Write("a", 10*MB)
		base := c.Now()
		d.WriteSlow("a", 10*MB, 1.5)
		if got := c.Now() - base; got != 1500*time.Millisecond {
			t.Errorf("slow write took %v, want 1.5s", got)
		}
		r, w := d.Stats()
		if r != 0 || w != 20*MB {
			t.Errorf("Stats = %d,%d, want 0,%d", r, w, 20*MB)
		}
	})
}

func TestHostProfiles(t *testing.T) {
	for _, p := range []Profile{LinuxGbE(), Solaris100()} {
		if p.LinkMBps <= 0 || p.DiskMBps <= 0 || p.CacheSize <= 0 {
			t.Errorf("%s: non-positive resource parameters: %+v", p.Name, p)
		}
		if p.EventDispatch >= p.ThreadSpawn {
			t.Errorf("%s: event dispatch should be cheaper than thread spawn", p.Name)
		}
		if p.ThreadSpawn >= p.ProcSpawn {
			t.Errorf("%s: thread spawn should be cheaper than process spawn", p.Name)
		}
		c := NewVirtualClock()
		h := NewHost(c, p)
		if h.Link.Capacity() != p.LinkMBps {
			t.Errorf("%s: link capacity mismatch", p.Name)
		}
	}
}

func TestDurationFor(t *testing.T) {
	if got := durationFor(10*MB, 10); got != time.Second {
		t.Errorf("durationFor(10MB,10) = %v, want 1s", got)
	}
	if got := durationFor(123, 0); got != 0 {
		t.Errorf("durationFor with zero rate = %v, want 0", got)
	}
}

func TestCPUSerializesWork(t *testing.T) {
	c := NewVirtualClock()
	c.Run(func() {
		cpu := NewCPU(c)
		wg := NewWaitGroup(c)
		for i := 0; i < 4; i++ {
			wg.Add(1)
			c.Go(func() {
				defer wg.Done()
				cpu.Work(time.Second)
			})
		}
		wg.Wait()
		// Four 1s jobs on one CPU serialize to 4s.
		if c.Now() != 4*time.Second {
			t.Errorf("elapsed = %v, want 4s", c.Now())
		}
		if cpu.Busy() != 4*time.Second {
			t.Errorf("Busy = %v, want 4s", cpu.Busy())
		}
	})
}

func TestCPUZeroWork(t *testing.T) {
	c := NewVirtualClock()
	c.Run(func() {
		cpu := NewCPU(c)
		cpu.Work(0)
		cpu.Work(-time.Second)
		if c.Now() != 0 || cpu.Busy() != 0 {
			t.Errorf("zero work advanced time: %v, busy %v", c.Now(), cpu.Busy())
		}
	})
}
