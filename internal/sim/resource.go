package sim

import (
	"sync"
	"time"
)

// MB is one binary megabyte, the unit the paper reports bandwidth in.
const MB = 1 << 20

// durationFor converts a byte count and a MB/s rate into a duration.
func durationFor(n int64, mbps float64) time.Duration {
	if mbps <= 0 {
		return 0
	}
	sec := float64(n) / (mbps * MB)
	return time.Duration(sec * float64(time.Second))
}

// Link models a shared network medium (e.g., the server's Ethernet
// segment) with a fixed capacity. Concurrent transfers serialize at
// chunk granularity, which approximates fair sharing of the wire while
// keeping the model deterministic.
type Link struct {
	clock Clock
	mu    sync.Mutex
	mbps  float64
	rtt   time.Duration
	free  time.Duration // time at which the medium is next idle
	moved int64         // total bytes carried
}

// NewLink returns a link with the given capacity in MB/s and round-trip
// latency.
func NewLink(clock Clock, mbps float64, rtt time.Duration) *Link {
	return &Link{clock: clock, mbps: mbps, rtt: rtt}
}

// RTT returns the link's round-trip latency.
func (l *Link) RTT() time.Duration { return l.rtt }

// Capacity returns the link's capacity in MB/s.
func (l *Link) Capacity() float64 { return l.mbps }

// Moved returns total bytes carried so far.
func (l *Link) Moved() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.moved
}

// Send blocks the caller while n bytes serialize onto the shared
// medium, honoring queueing behind bytes already committed.
func (l *Link) Send(n int64) {
	if n <= 0 {
		return
	}
	l.mu.Lock()
	now := l.clock.Now()
	start := l.free
	if now > start {
		start = now
	}
	end := start + durationFor(n, l.mbps)
	l.free = end
	l.moved += n
	l.mu.Unlock()
	l.clock.Sleep(end - now)
}

// RoundTrip charges one network round trip plus serialization of n
// payload bytes — the cost of a small RPC such as an NFS block request.
func (l *Link) RoundTrip(n int64) {
	l.Send(n)
	l.clock.Sleep(l.rtt)
}

// CPU models the server's processor as a serializing resource:
// concurrent requests queue for protocol parsing, checksumming and
// copy work. It is what bounds block-based and heavyweight protocols
// in Figure 3.
type CPU struct {
	clock Clock
	mu    sync.Mutex
	free  time.Duration
	busy  time.Duration // cumulative work executed
}

// NewCPU returns an idle CPU.
func NewCPU(clock Clock) *CPU { return &CPU{clock: clock} }

// Work blocks the caller while d of processor time executes, queueing
// behind work already committed.
func (c *CPU) Work(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	now := c.clock.Now()
	start := c.free
	if now > start {
		start = now
	}
	end := start + d
	c.free = end
	c.busy += d
	c.mu.Unlock()
	c.clock.Sleep(end - now)
}

// Busy returns cumulative executed work.
func (c *CPU) Busy() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.busy
}

// Disk models a single spindle with positioning time and sequential
// transfer bandwidth. Interleaved access to different files pays a
// positioning cost, which is what makes cache-aware scheduling and the
// threads-vs-events tradeoff visible.
type Disk struct {
	clock    Clock
	mu       sync.Mutex
	mbps     float64
	seek     time.Duration
	free     time.Duration
	lastFile string
	reads    int64
	writes   int64
}

// NewDisk returns a disk with sequential bandwidth in MB/s and average
// positioning (seek + rotation) time.
func NewDisk(clock Clock, mbps float64, seek time.Duration) *Disk {
	return &Disk{clock: clock, mbps: mbps, seek: seek}
}

// Bandwidth returns the disk's sequential bandwidth in MB/s.
func (d *Disk) Bandwidth() float64 { return d.mbps }

// Stats returns cumulative bytes read and written.
func (d *Disk) Stats() (reads, writes int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reads, d.writes
}

func (d *Disk) access(file string, n int64, write bool, slowdown float64) {
	if n <= 0 {
		return
	}
	d.mu.Lock()
	now := d.clock.Now()
	start := d.free
	if now > start {
		start = now
	}
	cost := durationFor(n, d.mbps)
	if slowdown > 1 {
		cost = time.Duration(float64(cost) * slowdown)
	}
	if file != d.lastFile {
		cost += d.seek
		d.lastFile = file
	}
	end := start + cost
	d.free = end
	if write {
		d.writes += n
	} else {
		d.reads += n
	}
	d.mu.Unlock()
	d.clock.Sleep(end - now)
}

// Read blocks while n bytes of file stream off the platter.
func (d *Disk) Read(file string, n int64) { d.access(file, n, false, 1) }

// Write blocks while n bytes of file stream onto the platter.
func (d *Disk) Write(file string, n int64) { d.access(file, n, true, 1) }

// WriteSlow is Write with a multiplicative slowdown factor; the quota
// subsystem uses it to model per-block quota-tree bookkeeping.
func (d *Disk) WriteSlow(file string, n int64, slowdown float64) {
	d.access(file, n, true, slowdown)
}
