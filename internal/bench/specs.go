// Package bench is NeST's experiment harness: it regenerates every
// figure in the paper's evaluation (Section 7) by driving the real
// scheduler, transfer-manager, cache and quota code under the
// deterministic simulation substrate, with protocol clients whose cost
// structure is calibrated to the paper's testbed. Absolute numbers are
// not expected to match a 2002 cluster; the shapes — who wins, by what
// factor, and where the crossovers fall — are.
package bench

import (
	"time"

	"nest/internal/protocol"
)

// ProtoSpec captures a protocol's cost structure as the simulated
// clients exercise it.
type ProtoSpec struct {
	Name string
	// BlockBased protocols issue one request per block (NFS); others
	// request whole files.
	BlockBased bool
	// BlockSize is the per-request payload for block-based protocols.
	BlockSize int64
	// PerRequestCPU is server processor time consumed per request
	// (parse, authenticate, set up): large for RPC-per-block NFS,
	// dominant for nothing else.
	PerRequestCPU time.Duration
	// PerChunkCPU is extra processor time per data chunk — GridFTP's
	// block framing, integrity and GSI wrapping costs live here.
	PerChunkCPU time.Duration
	// ChunkSize is the server's pump granularity for this protocol;
	// chunk-grained FIFO service on the wire is what disfavors
	// small-block protocols in mixed workloads (Figure 3).
	ChunkSize int
	// Outstanding is the client's pipelining depth (NFS read-ahead).
	Outstanding int
}

// Calibrated protocol specs for the Linux/GbE profile. Targets
// (Figure 3): Chirp and HTTP saturate the wire (~35 MB/s in-cache);
// GridFTP and NFS reach roughly half of that — GridFTP pays per-chunk
// processing, NFS pays an RPC per 8 KB block.
var (
	SpecChirp = ProtoSpec{
		Name:          "chirp",
		PerRequestCPU: 160 * time.Microsecond,
		ChunkSize:     32 * 1024,
		Outstanding:   1,
	}
	SpecHTTP = ProtoSpec{
		Name:          "http",
		PerRequestCPU: 180 * time.Microsecond,
		ChunkSize:     32 * 1024,
		Outstanding:   1,
	}
	SpecFTP = ProtoSpec{
		Name:          "ftp",
		PerRequestCPU: 600 * time.Microsecond, // control-channel chatter
		ChunkSize:     32 * 1024,
		Outstanding:   1,
	}
	SpecGridFTP = ProtoSpec{
		Name:          "gridftp",
		PerRequestCPU: 2 * time.Millisecond, // GSI handshake amortized
		PerChunkCPU:   3300 * time.Microsecond,
		ChunkSize:     64 * 1024,
		Outstanding:   1,
	}
	SpecNFS = ProtoSpec{
		Name:          "nfs",
		BlockBased:    true,
		BlockSize:     protocol.NFSBlockSize,
		PerRequestCPU: 430 * time.Microsecond,
		ChunkSize:     protocol.NFSBlockSize,
		Outstanding:   2,
	}
)

// MixedSpecs is the four-protocol workload of Figures 3 (last bars)
// and 4: Chirp, GridFTP, HTTP and NFS.
func MixedSpecs() []ProtoSpec {
	return []ProtoSpec{SpecChirp, SpecGridFTP, SpecHTTP, SpecNFS}
}

// AllSpecs returns every protocol spec.
func AllSpecs() []ProtoSpec {
	return []ProtoSpec{SpecChirp, SpecHTTP, SpecFTP, SpecGridFTP, SpecNFS}
}

// Workload defaults matching the paper (Figure 3 caption: four clients
// request 10 MB files for each protocol).
const (
	ClientsPerProtocol = 4
	FileSizeMB         = 10
	// FilesPerProtocol keeps the active file set within the modeled
	// buffer cache so the "in-cache" workloads really are in cache.
	FilesPerProtocol = 2
	// PacketSize is the wire granularity of the JBOS baseline, whose
	// kernel servers interleave at TCP-segment rather than user-level
	// chunk granularity (a few coalesced segments per send).
	PacketSize = 6000
)
