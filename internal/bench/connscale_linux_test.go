//go:build linux

package bench

import (
	"fmt"
	"net"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"nest/internal/core"
)

// TestConnScaleLiveIdle holds thousands of real idle TCP connections
// parked in a full appliance's epoll poller: goroutine count must be
// O(workers), not O(connections), and a parked session must still
// answer. Sized to the process descriptor limit (a loopback connection
// costs two descriptors in-process).
func TestConnScaleLiveIdle(t *testing.T) {
	if testing.Short() {
		t.Skip("live connection-scale test skipped in -short")
	}
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		t.Fatal(err)
	}
	n := int(rl.Cur)/2 - 1000
	if n > 8000 {
		n = 8000
	}
	if n < 500 {
		t.Skipf("descriptor limit %d too low for a scale test", rl.Cur)
	}

	srv, err := core.New(core.Config{
		Name:      "c100k",
		Protocols: map[string]string{"http": "127.0.0.1:0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := srv.Addr("http")

	conns := make([]net.Conn, 0, n)
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	for i := 0; i < n; i++ {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatalf("dial %d/%d: %v", i, n, err)
		}
		conns = append(conns, c)
	}

	cm := srv.Disp.ConnManager()
	deadline := time.Now().Add(30 * time.Second)
	for cm.Stats().ParkedNow < int64(n) {
		if time.Now().After(deadline) {
			st := cm.Stats()
			t.Fatalf("only %d/%d parked (active %d, admitted %d)", st.ParkedNow, n, st.Active, st.Admitted)
		}
		time.Sleep(10 * time.Millisecond)
	}
	gor := runtime.NumGoroutine()
	if gor >= n/10 {
		t.Errorf("%d goroutines while %d conns idle; expected O(workers)", gor, n)
	}

	// A parked session must wake and answer.
	probe := conns[len(conns)-1]
	probe.SetDeadline(time.Now().Add(10 * time.Second))
	fmt.Fprintf(probe, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
	buf := make([]byte, 512)
	nr, err := probe.Read(buf)
	if err != nil {
		t.Fatalf("read from parked conn: %v", err)
	}
	if resp := string(buf[:nr]); !strings.HasPrefix(resp, "HTTP/1.1 200") {
		t.Fatalf("parked conn answered %q", resp)
	}
	t.Logf("%d live conns parked with %d goroutines", n, gor)
}
