package bench

import "testing"

// TestFederationScaling: four replicas behind health-ranked selection
// must deliver at least 2.5x the single-appliance aggregate GET
// throughput (perfect scaling would be 4x; ranking staleness and
// tie-break herding cost some of it).
func TestFederationScaling(t *testing.T) {
	rows := FederationSweep()
	base, quad := rows[0], rows[len(rows)-1]
	if base.AggregateMBps < 25 {
		t.Errorf("1-replica aggregate = %.1f MB/s, want near wire speed (~35)", base.AggregateMBps)
	}
	if quad.AggregateMBps < 2.5*base.AggregateMBps {
		t.Errorf("4-replica aggregate = %.1f MB/s, want >= 2.5x the 1-replica %.1f",
			quad.AggregateMBps, base.AggregateMBps)
	}
	if mid := rows[1]; mid.AggregateMBps <= base.AggregateMBps {
		t.Errorf("2-replica aggregate = %.1f MB/s did not beat 1-replica %.1f",
			mid.AggregateMBps, base.AggregateMBps)
	}
}

// TestSelectionShiftsOffDegraded: with one of two replicas' links
// throttled to a tenth, live health ranking must route the clear
// majority of traffic to the healthy appliance — the advertised
// bandwidth/queue attributes, not static configuration, drive
// selection.
func TestSelectionShiftsOffDegraded(t *testing.T) {
	res := RunFederation(FederationOptions{Replicas: 2, Degraded: 1, DegradedMBps: 3.5})
	healthy, degraded := res.PerNode["nest-0"], res.PerNode["nest-1"]
	if healthy < 2*degraded {
		t.Errorf("traffic did not shift off the degraded replica: healthy %.1f MB/s vs degraded %.1f",
			healthy, degraded)
	}
	// The healthy appliance keeps delivering near wire speed — the
	// degraded peer throttles its own clients, not the fleet.
	if healthy < 25 {
		t.Errorf("healthy replica = %.1f MB/s, want near wire speed (~35)", healthy)
	}
}

// BenchmarkFederatedGets reports the 4-replica fleet's aggregate
// simulated GET throughput per iteration.
func BenchmarkFederatedGets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := RunFederation(FederationOptions{Replicas: 4, Degraded: -1})
		b.ReportMetric(res.AggregateMBps, "simMB/s")
		b.ReportMetric(float64(res.Gets), "gets")
	}
}
